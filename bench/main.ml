(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (§4) plus the ablations called out in DESIGN.md.

   Experiments (ids from DESIGN.md):
     F2  the 3-router topology comes up and converges (Figure 2)
     F1  concolic exploration systematically covers paths (Figure 1)
     E1  memory overhead of checkpoints and explorer clones (§4.1)
     E2  update throughput under full load, with/without exploration (§4.1)
     E3  update throughput in the realistic (live-tail) scenario (§4.1)
     E4  route-leak detection across filter configurations (§4.2)
     A1  ablation: selective vs whole-message symbolization (§3.2)
     A2  ablation: exploration search strategies
     P1  parallel exploration: worker scaling and solver-cache hit rate
     P2  parallel cross-domain probing: fan-out scaling and verdict-cache hit rate
     P3  probe RPC over the simulated wire: throughput vs link latency,
         retry/timeout behavior under slow links and partitions
         (machine-readable copy in BENCH_p3.json)
     P4  probe RPC under injected link faults: verdict completeness and
         retry amplification vs loss rate, with duplication and
         reordering on, at a fixed fault seed
         (machine-readable copy in BENCH_p4.json)
     P5  heterogeneous federation: probe throughput and verdict-cache
         hit rate over a BIRD-only fleet vs a mixed BIRD+Quagga fleet
         (machine-readable copy in BENCH_p5.json)
     P6  divergence panel: probe throughput vs panel size (1/2/3
         members) and the cost of delta-debugging a divergence down to
         a minimal repro (machine-readable copy in BENCH_p6.json)
     P7  incremental path-prefix solving: satisfied negations per
         second and time to full branch coverage on the F1 filter,
         from-scratch vs incremental
         (machine-readable copy in BENCH_p7.json)
     P8  config translation: per-dialect render/parse/realize cost for
         one operator intent, and divergence-hunt throughput over an
         intent-configured panel where the unstated policy default
         seeds a filter-interpreter divergence
         (machine-readable copy in BENCH_p8.json)
     P9  crash tolerance: verdict completeness under a seeded node-crash
         schedule, circuit-breaker fail-fast latency, time-to-recovery
         after a restart, and the retry-amplification delta from
         jittered backoff (machine-readable copy in BENCH_p9.json)
     P10 fleet scale: seeded topology generation at 1/4/16/64 domains,
         sustained update-stream throughput per domain, resident memory
         per domain, explorer-clone Loc-RIB structural sharing, and
         checkpoint-page dedup across the fleet's shared store
         (machine-readable copy in BENCH_p10.json)
   plus a Bechamel micro-benchmark suite for the hot paths.

   By default everything runs at a laptop-friendly scale; set
   DICE_BENCH_FULL=1 to use the paper's 319,355-prefix table (slow). *)

open Dice_inet
open Dice_bgp
open Dice_core
module Threerouter = Dice_topology.Threerouter
module Gen = Dice_trace.Gen
module Replay = Dice_trace.Replay
module Fork = Dice_checkpoint.Fork
module Explorer = Dice_concolic.Explorer
module Strategy = Dice_concolic.Strategy
module Coverage = Dice_concolic.Coverage

(* Figure-2 addressing, resolved through the topology spec *)
let tr_f2_spec = Threerouter.spec Threerouter.Correct
let tr_customer_addr = Dice_topology.Topology.Spec.address tr_f2_spec ~of_:"customer" ~toward:"provider"
let tr_internet_addr = Dice_topology.Topology.Spec.address tr_f2_spec ~of_:"internet" ~toward:"provider"


let full = Sys.getenv_opt "DICE_BENCH_FULL" <> None

let table_prefixes = if full then 319_355 else 8_000
let p = Prefix.of_string

let section id title =
  Printf.printf "\n=== %s: %s ===\n%!" id title

let row fmt = Printf.printf fmt

(* ------------------------------------------------------------------ *)
(* shared setup                                                        *)
(* ------------------------------------------------------------------ *)

let gen_trace ?(n = table_prefixes) () =
  Gen.generate { Gen.default_params with Gen.n_prefixes = n; duration = 900.0 }

let customer_route () =
  Route.make ~origin:Attr.Igp
    ~as_path:[ Asn.Path.Seq [ Threerouter.customer_as ] ]
    ~next_hop:tr_customer_addr ()

(* A provider router with established sessions and a loaded table, built
   directly (no simulated network) so big tables load fast. *)
let loaded_provider ?(filtering = Threerouter.Partially_correct) ?(n = table_prefixes) () =
  let r = Router.create (Threerouter.provider_config filtering) in
  let establish peer remote_as =
    ignore (Router.handle_event r ~peer Fsm.Manual_start);
    ignore (Router.handle_event r ~peer Fsm.Tcp_connected);
    ignore
      (Router.handle_msg r ~peer
         (Msg.Open
            { Msg.version = 4; my_as = remote_as land 0xFFFF; hold_time = 90;
              bgp_id = peer; capabilities = [ Msg.Cap_as4 remote_as ] }));
    ignore (Router.handle_msg r ~peer Msg.Keepalive)
  in
  establish tr_customer_addr Threerouter.customer_as;
  establish tr_internet_addr Threerouter.internet_as;
  (* the customer announces its own space, as in the testbed *)
  List.iter
    (fun prefix ->
      ignore
        (Router.handle_msg r ~peer:tr_customer_addr
           (Msg.Update
              { Msg.withdrawn = [];
                attrs = Route.to_attrs (customer_route ());
                nlri = [ prefix ];
              })))
    Threerouter.customer_prefixes;
  let trace = gen_trace ~n () in
  let progress =
    Replay.feed_dump r ~peer:tr_internet_addr
      ~next_hop:tr_internet_addr trace
  in
  (r, trace, progress)

let observe_and_cfg ?(mode = Symbolize.Selective) ?(runs = 256) router =
  let cfg =
    { Orchestrator.default_cfg with
      Orchestrator.exploration =
        { Orchestrator.default_exploration with
          Orchestrator.mode;
          explorer =
            { Explorer.default_config with Explorer.max_runs = runs; max_depth = 96 };
        };
    }
  in
  let dice = Orchestrator.create ~cfg (Speakers.bird router) in
  Orchestrator.observe dice ~peer:tr_customer_addr
    ~prefix:(p "203.0.113.0/24") ~route:(customer_route ());
  dice

(* ------------------------------------------------------------------ *)
(* F2: topology (Figure 2)                                             *)
(* ------------------------------------------------------------------ *)

let experiment_f2 () =
  section "F2" "experimental topology (paper Figure 2)";
  let topo = Threerouter.build Threerouter.Partially_correct in
  let t0 = Dice_sim.Network.now topo.Threerouter.net in
  Threerouter.start topo;
  let establish_time = Dice_sim.Network.now topo.Threerouter.net -. t0 in
  let n = Threerouter.load_table topo (gen_trace ~n:(min 4_000 table_prefixes) ()) in
  row "sessions established at the provider: %d (virtual %.2f s)\n"
    (List.length (Router.established_peers (Threerouter.provider_router topo)))
    establish_time;
  row "provider Loc-RIB after table load:    %d routes\n" n;
  row "customer sees (re-exported):          %d routes\n"
    (Rib.Loc.cardinal (Router.loc_rib (Router_node.router topo.Threerouter.customer)))

(* ------------------------------------------------------------------ *)
(* F1: concolic path exploration (Figure 1)                            *)
(* ------------------------------------------------------------------ *)

let sample_filter =
  Config_parser.parse_filter ~name:"bench"
    {|
    if net ~ [ 10.0.0.0/8{8,24}, 172.16.0.0/12{12,24}, 192.168.0.0/16+ ] then {
      if bgp_med > 50 then { bgp_local_pref = 80; accept; }
      bgp_local_pref = 120;
      accept;
    }
    if bgp_origin = 2 then reject;
    accept;
    |}

let filter_program ctx =
  let route =
    Route.make ~origin:Attr.Igp
      ~as_path:[ Asn.Path.Seq [ 64501; 64502 ] ]
      ~med:(Some 10)
      ~next_hop:(Ipv4.of_string "192.0.2.1") ()
  in
  let cr = Symbolize.croute ctx ~tag:"f1" ~prefix:(p "10.1.2.0/24") ~route in
  let cr =
    Croute.with_med cr (Dice_concolic.Engine.input ctx ~name:"f1.med" ~width:32 ~default:10L)
  in
  ignore (Filter_interp.run ctx ~source_as:64501 ~local_as:64510 sample_filter cr)

let experiment_f1 () =
  section "F1" "concolic predicate negation explores code paths (paper Figure 1)";
  let report =
    Explorer.explore ~config:{ Explorer.default_config with Explorer.max_runs = 64 }
      filter_program
  in
  row "%-6s %-14s %-12s %s\n" "run" "path-length" "new-dirs" "inputs (negated predicates -> new values)";
  List.iter
    (fun (r : Explorer.run) ->
      if r.Explorer.index < 10 then
        row "%-6d %-14d %-12d %s\n" r.Explorer.index r.Explorer.path_length
          r.Explorer.new_directions
          (String.concat ", "
             (List.map (fun (n, v) -> Printf.sprintf "%s=%Ld" n v) r.Explorer.assignment)))
    report.Explorer.runs;
  row "total: %d executions, %d distinct paths, %.1f%% branch-direction coverage\n"
    report.Explorer.executions report.Explorer.distinct_paths
    (100.0 *. Explorer.coverage_ratio report);
  row "negations: %d attempted, %d sat, %d unsat, %d gave up; %d divergences\n"
    report.Explorer.negations_attempted report.Explorer.negations_sat
    report.Explorer.negations_unsat report.Explorer.negations_gave_up
    report.Explorer.divergences

(* ------------------------------------------------------------------ *)
(* E1: memory overhead                                                 *)
(* ------------------------------------------------------------------ *)

let experiment_e1 () =
  section "E1" "memory overhead (paper §4.1: checkpoint 3.45%, clones +36.93% avg / 39% max)";
  (* page-fraction metrics need a realistically large address space; use a
     bigger table than the throughput experiments *)
  let router, trace, _ = loaded_provider ~n:(if full then table_prefixes else 64_000) () in
  row "table: %d routes; live image %d KiB\n"
    (Rib.Loc.cardinal (Router.loc_rib router))
    (Bytes.length (Router.snapshot router) / 1024);
  (* checkpoint, then let the live router process the 15-minute tail *)
  let mgr = Fork.create () in
  let cp = Fork.checkpoint mgr ~live_image:(Router.snapshot router) in
  let progress =
    Replay.feed_events router ~peer:tr_internet_addr
      ~next_hop:tr_internet_addr trace
  in
  let unique, fraction = Fork.checkpoint_stats cp ~live_image:(Router.snapshot router) in
  row "checkpoint unique pages after live processed %d updates: %d (%.2f%%)   [paper: 3.45%%]\n"
    progress.Replay.updates_sent unique (100.0 *. fraction);
  (* explorer clones *)
  let dice = observe_and_cfg router in
  let dice =
    Orchestrator.create
      ~cfg:
        { Orchestrator.default_cfg with
          Orchestrator.exploration =
            { Orchestrator.default_exploration with Orchestrator.clone_samples = 16 };
        }
      (Orchestrator.speaker dice)
  in
  Orchestrator.observe dice ~peer:tr_customer_addr
    ~prefix:(p "203.0.113.0/24") ~route:(customer_route ());
  let report = Orchestrator.explore dice in
  let stats = Dice_util.Stats.create () in
  List.iter
    (fun (sr : Orchestrator.seed_report) ->
      List.iter
        (fun (cs : Fork.clone_stats) ->
          Dice_util.Stats.add stats (100.0 *. cs.Fork.extra_fraction))
        sr.Orchestrator.clone_stats)
    report.Orchestrator.seed_reports;
  row "explorer clones sampled: %d; extra pages %.2f%% avg, %.2f%% max   [paper: 36.93%% avg, 39%% max]\n"
    (Dice_util.Stats.count stats) (Dice_util.Stats.mean stats) (Dice_util.Stats.max stats);
  (* page-size ablation for the checkpoint metric *)
  row "page-size sweep (checkpoint unique fraction):\n";
  List.iter
    (fun page_size ->
      let mgr = Fork.create ~page_size () in
      let cp = Fork.checkpoint mgr ~live_image:(Fork.checkpoint_image cp) in
      let u, f = Fork.checkpoint_stats cp ~live_image:(Router.snapshot router) in
      row "  %6d B pages: %5d unique (%.2f%%)\n" page_size u (100.0 *. f))
    [ 1024; 4096; 16384 ]

(* ------------------------------------------------------------------ *)
(* E2/E3: CPU overhead                                                 *)
(* ------------------------------------------------------------------ *)

let throughput ~with_exploration ~updates =
  (* Within-run comparison: replay [updates] announcements; at the
     midpoint DiCE checkpoints and explores (when enabled). The
     exploration itself runs off the critical path (the paper gives the
     explorer its own core), so the live node pays only for the freeze.
     Comparing the first half's throughput with the second half's, inside
     one run, removes cross-run heap and cache noise. *)
  let router, _, _ = loaded_provider ~n:(min 2_000 table_prefixes) () in
  let extra = gen_trace ~n:updates () in
  let dice = observe_and_cfg ~runs:48 router in
  (* warm up in both configurations: grow the heap with one throwaway
     exploration episode so heap-expansion effects do not differ between
     the control and the measured run *)
  Orchestrator.observe dice ~peer:tr_customer_addr
    ~prefix:(p "203.0.113.0/24") ~route:(customer_route ());
  ignore (Orchestrator.explore dice);
  Gc.full_major ();
  let t_start = ref 0.0 in
  let t_half_end = ref 0.0 in
  let t_second_start = ref 0.0 in
  let on_update i =
    if i = updates / 2 then begin
      t_half_end := Unix.gettimeofday ();
      if with_exploration then begin
        Orchestrator.observe dice ~peer:tr_customer_addr
          ~prefix:(p "203.0.113.0/24") ~route:(customer_route ());
        ignore (Orchestrator.explore dice)
      end;
      (* a forked explorer's allocations live in its own process; reclaim
         them off-path so the live half that follows starts from the same
         GC state in both configurations *)
      Gc.full_major ();
      t_second_start := Unix.gettimeofday ()
    end
  in
  t_start := Unix.gettimeofday ();
  let progress =
    Replay.feed_dump ~on_update router ~peer:tr_internet_addr
      ~next_hop:tr_internet_addr extra
  in
  let t_end = Unix.gettimeofday () in
  ignore progress;
  let first = float_of_int (updates / 2) /. (!t_half_end -. !t_start) in
  let second = float_of_int (updates - (updates / 2)) /. (t_end -. !t_second_start) in
  (first, second)

let experiment_e2 () =
  section "E2" "update throughput under full load (paper §4.1: 15.1 vs 13.9 upd/s, 8% impact)";
  let updates = if full then 100_000 else 30_000 in
  (* interleave control/exploration runs and correct each exploration
     run's half-ratio by its adjacent control run's — time-correlated
     machine drift cancels pairwise; report the median *)
  let pairs =
    List.init 5 (fun _ ->
        let ctl = throughput ~with_exploration:false ~updates in
        let ex = throughput ~with_exploration:true ~updates in
        (ctl, ex))
  in
  let corrected =
    List.map
      (fun ((cf, cs), (ef, es)) -> 100.0 *. (1.0 -. (es /. ef) /. (cs /. cf)))
      pairs
  in
  let med xs = List.nth (List.sort compare xs) (List.length xs / 2) in
  let cf, cs = List.nth pairs 2 |> fst in
  let ef, es = List.nth pairs 2 |> snd in
  row "control run:     first half %8.0f upd/s, second half %8.0f upd/s\n" cf cs;
  row "exploration run: first half %8.0f upd/s, second half %8.0f upd/s\n" ef es;
  row "per-pair corrected impacts: %s\n"
    (String.concat ", " (List.map (Printf.sprintf "%.1f%%") corrected));
  row "median drift-corrected impact of running exploration: %.1f%%   [paper: 8%%]\n"
    (med corrected)

let experiment_e3 () =
  section "E3" "realistic scenario: live 15-min tail (paper §4.1: 0.287 vs 0.272 upd/s, negligible)";
  (* The tail arrives at ~0.3 upd/s over a 900 s window, so the router is
     idle almost always; exploration consumes idle time. The effective
     service rate over the window is updates/900 s either way — what can
     differ is the busy time on the live path. *)
  let measure with_exploration =
    let router, trace, _ = loaded_provider ~n:(min 4_000 table_prefixes) () in
    let dice = observe_and_cfg ~runs:96 router in
    let critical = ref 0.0 in
    if with_exploration then begin
      Orchestrator.observe dice ~peer:tr_customer_addr
        ~prefix:(p "203.0.113.0/24") ~route:(customer_route ());
      let report = Orchestrator.explore dice in
      critical := report.Orchestrator.checkpoint_seconds
    end;
    let progress =
      Replay.feed_events router ~peer:tr_internet_addr
        ~next_hop:tr_internet_addr trace
    in
    let busy = progress.Replay.wall_seconds +. !critical in
    (progress.Replay.updates_sent, busy)
  in
  let n_base, busy_base = measure false in
  let n_dice, busy_dice = measure true in
  let window = 900.0 in
  row "tail: %d updates over a %.0f s window\n" n_base window;
  row "service rate without exploration: %.3f updates/s (live path busy %.4f%%)\n"
    (float_of_int n_base /. window)
    (100.0 *. busy_base /. window);
  row "service rate with exploration:    %.3f updates/s (live path busy %.4f%%)\n"
    (float_of_int n_dice /. window)
    (100.0 *. busy_dice /. window);
  row "impact on the service rate: %.2f%%   [paper: negligible]\n"
    (100.0 *. (1.0 -. (float_of_int n_dice /. float_of_int n_base)))

(* ------------------------------------------------------------------ *)
(* E4: route-leak detection                                            *)
(* ------------------------------------------------------------------ *)

let experiment_e4 () =
  section "E4" "detecting route leaks (paper §4.2: the YouTube/Pakistan Telecom scenario)";
  row "%-20s %-12s %-10s %-10s %-12s %s\n" "filtering" "executions" "hijacks" "leaks"
    "wall (s)" "leakable ranges";
  List.iter
    (fun filtering ->
      let router, _, _ = loaded_provider ~filtering ~n:(min 8_000 table_prefixes) () in
      let dice = observe_and_cfg ~runs:256 router in
      let report = Orchestrator.explore dice in
      let criticals, warnings =
        List.partition
          (fun (f : Checker.fault) -> f.Checker.severity = Checker.Critical)
          report.Orchestrator.faults
      in
      let executions =
        List.fold_left
          (fun acc (sr : Orchestrator.seed_report) ->
            acc + sr.Orchestrator.explorer.Explorer.executions)
          0 report.Orchestrator.seed_reports
      in
      let ranges =
        Hijack.leakable_summary report.Orchestrator.faults
        |> List.map (fun (q, _) -> Prefix.to_string q)
      in
      let shown =
        match ranges with
        | a :: b :: c :: _ :: _ -> String.concat " " [ a; b; c; "..." ]
        | l -> String.concat " " l
      in
      row "%-20s %-12d %-10d %-10d %-12.2f %s\n"
        (Threerouter.filtering_to_string filtering)
        executions (List.length criticals) (List.length warnings)
        report.Orchestrator.wall_seconds shown)
    [ Threerouter.Correct; Threerouter.Partially_correct; Threerouter.Missing ]

(* ------------------------------------------------------------------ *)
(* A1: symbolization ablation                                          *)
(* ------------------------------------------------------------------ *)

let experiment_a1 () =
  section "A1" "ablation: selective vs whole-message symbolization (paper §3.2)";
  row "%-16s %-12s %-16s %-10s %s\n" "mode" "executions" "reach-routing" "hijacks" "parser depths";
  List.iter
    (fun mode ->
      let router, _, _ = loaded_provider ~n:(min 4_000 table_prefixes) () in
      let dice = observe_and_cfg ~mode ~runs:192 router in
      let report = Orchestrator.explore dice in
      List.iter
        (fun (sr : Orchestrator.seed_report) ->
          let executions = sr.Orchestrator.explorer.Explorer.executions in
          let reached =
            match mode with
            | Symbolize.Selective -> executions  (* every input is a valid message *)
            | Symbolize.Whole_message ->
              List.fold_left
                (fun acc (k, c) -> if k = "valid-update" then acc + c else acc)
                0 sr.Orchestrator.depth_counts
          in
          let criticals =
            List.length
              (List.filter
                 (fun (f : Checker.fault) -> f.Checker.severity = Checker.Critical)
                 sr.Orchestrator.faults)
          in
          row "%-16s %-12d %-16s %-10d %s\n"
            (Symbolize.mode_to_string mode)
            executions
            (Printf.sprintf "%d (%.0f%%)" reached
               (100.0 *. float_of_int reached /. float_of_int (max 1 executions)))
            criticals
            (String.concat ", "
               (List.map (fun (k, c) -> Printf.sprintf "%s=%d" k c) sr.Orchestrator.depth_counts)))
        report.Orchestrator.seed_reports)
    [ Symbolize.Selective; Symbolize.Whole_message ]

(* ------------------------------------------------------------------ *)
(* A2: strategy ablation                                               *)
(* ------------------------------------------------------------------ *)

let experiment_a2 () =
  section "A2" "ablation: exploration search strategies";
  row "%-22s %-12s %-10s %-12s %s\n" "strategy" "executions" "paths" "coverage" "divergences";
  List.iter
    (fun strategy ->
      let report =
        Explorer.explore
          ~config:{ Explorer.default_config with Explorer.strategy; max_runs = 64 }
          filter_program
      in
      row "%-22s %-12d %-10d %-12s %d\n" (Strategy.to_string strategy)
        report.Explorer.executions report.Explorer.distinct_paths
        (Printf.sprintf "%.1f%%" (100.0 *. Explorer.coverage_ratio report))
        report.Explorer.divergences)
    [ Strategy.Dfs; Strategy.Generational; Strategy.Cover_new; Strategy.Random_negation 7L ]

(* ------------------------------------------------------------------ *)
(* P1: parallel exploration scaling                                    *)
(* ------------------------------------------------------------------ *)

let experiment_p1 () =
  section "P1" "parallel exploration: worker scaling and solver-cache effectiveness";
  row "machine offers %d domain(s); wall-clock speedups need more than one core\n"
    (Dice_exec.Pool.available_parallelism ());
  let config = { Explorer.default_config with Explorer.max_runs = 128 } in
  let time_median f =
    let s = Dice_util.Stats.create () in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      Dice_util.Stats.add s (Unix.gettimeofday () -. t0)
    done;
    Dice_util.Stats.median s
  in
  let base = time_median (fun () -> Explorer.explore ~config filter_program) in
  row "%-10s %-12s %-8s %-10s %-10s %s\n" "workers" "wall (ms)" "speedup" "paths"
    "coverage" "qcache hit rate";
  row "%-10s %-12.2f %-8s %-10s %-10s %s\n" "seq" (1000.0 *. base) "1.00x" "-" "-" "-";
  List.iter
    (fun jobs ->
      let qcache = Dice_exec.Qcache.create () in
      let report = ref None in
      let t =
        time_median (fun () ->
            report :=
              Some (Dice_exec.Explorer.run_parallel ~config ~qcache ~jobs filter_program))
      in
      let r = Option.get !report in
      row "%-10d %-12.2f %-8s %-10d %-10s %.1f%%\n" jobs (1000.0 *. t)
        (Printf.sprintf "%.2fx" (base /. t))
        r.Explorer.distinct_paths
        (Printf.sprintf "%.1f%%" (100.0 *. Explorer.coverage_ratio r))
        (100.0 *. Dice_exec.Qcache.hit_rate qcache))
    [ 1; 2; 4 ];
  (* cache sharing across explorations: the second exploration of the same
     program answers its solver queries from the first one's entries *)
  let shared = Dice_exec.Qcache.create () in
  ignore (Dice_exec.Explorer.run_parallel ~config ~qcache:shared ~jobs:2 filter_program);
  let cold_misses = Dice_exec.Qcache.misses shared in
  ignore (Dice_exec.Explorer.run_parallel ~config ~qcache:shared ~jobs:2 filter_program);
  row
    "shared cache, 2nd exploration: %d hits / %d misses overall (%.1f%% hit rate; cold \
     pass had %d misses)\n"
    (Dice_exec.Qcache.hits shared)
    (Dice_exec.Qcache.misses shared)
    (100.0 *. Dice_exec.Qcache.hit_rate shared)
    cold_misses;
  (* seed-level parallelism in the orchestrator: one domain per seed over
     the same live checkpoint *)
  let router, _, _ = loaded_provider ~n:(min 2_000 table_prefixes) () in
  row "%-28s %-12s %s\n" "orchestrator (4 seeds)" "wall (ms)" "speedup";
  let obase = ref Float.nan in
  List.iter
    (fun jobs ->
      let t =
        time_median (fun () ->
            let cfg =
              { Orchestrator.default_cfg with
                Orchestrator.exploration =
                  { Orchestrator.default_exploration with
                    Orchestrator.jobs;
                    explorer =
                      { Explorer.default_config with Explorer.max_runs = 64; max_depth = 96 };
                  };
              }
            in
            let dice = Orchestrator.create ~cfg (Speakers.bird router) in
            List.iter
              (fun prefix ->
                Orchestrator.observe dice ~peer:tr_customer_addr ~prefix
                  ~route:(customer_route ()))
              [ p "203.0.113.0/24"; p "203.0.112.0/24"; p "198.51.100.0/24";
                p "192.0.2.0/24" ];
            ignore (Orchestrator.explore dice))
      in
      if jobs = 1 then obase := t;
      row "%-28s %-12.2f %.2fx\n"
        (Printf.sprintf "  jobs=%d" jobs)
        (1000.0 *. t) (!obase /. t))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* P2: parallel cross-domain probing                                   *)
(* ------------------------------------------------------------------ *)

let experiment_p2 () =
  section "P2" "parallel cross-domain probing: fan-out scaling and verdict-cache hit rate";
  let explorer_side = Ipv4.of_string "10.0.2.1" in
  let collector = Ipv4.of_string "10.0.3.2" in
  let n_private = min 4_000 table_prefixes in
  (* each agent wraps a loaded upstream so a single probe (restore a clone
     of the whole table, import, inspect) costs milliseconds — the regime
     where fanning probes out over domains pays off *)
  let mk_agents n =
    List.init n (fun i ->
        let upstream =
          Router.create
            (Config_parser.parse
               (Printf.sprintf
                  "router id 10.0.2.2; local as %d;\n\
                   protocol bgp provider { neighbor 10.0.2.1 as %d; import all; export none; }\n\
                   protocol bgp collector { neighbor 10.0.3.2 as 64701; import all; export none; }"
                  (64700 + i) Threerouter.provider_as))
        in
        let establish peer remote_as =
          ignore (Router.handle_event upstream ~peer Fsm.Manual_start);
          ignore (Router.handle_event upstream ~peer Fsm.Tcp_connected);
          ignore
            (Router.handle_msg upstream ~peer
               (Msg.Open
                  { Msg.version = 4; my_as = remote_as land 0xFFFF; hold_time = 90;
                    bgp_id = peer; capabilities = [ Msg.Cap_as4 remote_as ] }));
          ignore (Router.handle_msg upstream ~peer Msg.Keepalive)
        in
        establish explorer_side Threerouter.provider_as;
        establish collector 64701;
        ignore
          (Replay.feed_dump upstream ~peer:collector ~next_hop:collector
             (Gen.generate
                { Gen.default_params with Gen.n_prefixes = n_private; collector_as = 64701 }));
        Distributed.agent
          ~name:(Printf.sprintf "upstream-%d" i)
          ~addr:tr_internet_addr ~explorer_addr:explorer_side
          (Distributed.Local (Speakers.bird upstream)))
  in
  let probe_msg i =
    Msg.Update
      { Msg.withdrawn = [];
        attrs =
          Route.to_attrs
            (Route.make ~origin:Attr.Igp
               ~as_path:
                 [ Asn.Path.Seq [ Threerouter.provider_as; Threerouter.customer_as ] ]
               ~next_hop:explorer_side ());
        nlri = [ p (Printf.sprintf "198.51.%d.0/24" (i mod 256)) ];
      }
  in
  let n_probes = 64 in
  row "machine offers %d domain(s); %d distinct probes across 2 agents per level\n"
    (Dice_exec.Pool.available_parallelism ()) (2 * n_probes);
  row "%-10s %-12s %-8s %s\n" "workers" "wall (ms)" "speedup" "verdicts";
  (* fresh agents per jobs level: a shared verdict cache would let later
     levels answer from memory and fake the scaling *)
  let base = ref Float.nan in
  List.iter
    (fun jobs ->
      let agents = mk_agents 2 in
      let reqs =
        List.concat_map
          (fun a -> List.init n_probes (fun i -> (a, explorer_side, probe_msg i)))
          agents
      in
      let t0 = Unix.gettimeofday () in
      let answers = Distributed.probe_all ~jobs reqs in
      let t = Unix.gettimeofday () -. t0 in
      if jobs = 1 then base := t;
      row "%-10d %-12.2f %-8s %d\n" jobs (1000.0 *. t)
        (Printf.sprintf "%.2fx" (!base /. t))
        (List.length (List.concat_map Distributed.verdicts answers)))
    [ 1; 2; 4 ];
  (* repeated-message workload: while the remote's live router stands
     still, re-probes of the same (from, message) pair answer from the
     per-agent verdict cache without touching a clone *)
  let agent = List.hd (mk_agents 1) in
  let distinct = 8 in
  let reqs =
    List.init (8 * distinct) (fun i -> (agent, explorer_side, probe_msg (i mod distinct)))
  in
  let t0 = Unix.gettimeofday () in
  ignore (Distributed.probe_all ~jobs:4 reqs);
  let s = Distributed.stats agent in
  row
    "repeated-message workload (%d probes of %d messages): %.2f ms, %d vcache hit(s) \
     (%.1f%% hit rate)\n"
    s.Distributed.probes distinct
    (1000.0 *. (Unix.gettimeofday () -. t0))
    s.Distributed.vcache_hits
    (100.0 *. s.Distributed.vcache_hit_rate)

(* ------------------------------------------------------------------ *)
(* P3: probe RPC over the wire, across link qualities                  *)
(* ------------------------------------------------------------------ *)

let experiment_p3 () =
  section "P3" "probe RPC throughput vs link latency (remote transport)";
  let explorer_side = Ipv4.of_string "10.0.2.1" in
  let collector = Ipv4.of_string "10.0.3.2" in
  let upstream =
    Router.create
      (Config_parser.parse
         (Printf.sprintf
            "router id 10.0.2.2; local as 64700;\n\
             protocol bgp provider { neighbor 10.0.2.1 as %d; import all; export none; }\n\
             protocol bgp collector { neighbor 10.0.3.2 as 64701; import all; export none; }"
            Threerouter.provider_as))
  in
  let establish peer remote_as =
    ignore (Router.handle_event upstream ~peer Fsm.Manual_start);
    ignore (Router.handle_event upstream ~peer Fsm.Tcp_connected);
    ignore
      (Router.handle_msg upstream ~peer
         (Msg.Open
            { Msg.version = 4; my_as = remote_as land 0xFFFF; hold_time = 90;
              bgp_id = peer; capabilities = [ Msg.Cap_as4 remote_as ] }));
    ignore (Router.handle_msg upstream ~peer Msg.Keepalive)
  in
  establish explorer_side Threerouter.provider_as;
  establish collector 64701;
  ignore
    (Replay.feed_dump upstream ~peer:collector ~next_hop:collector
       (Gen.generate
          { Gen.default_params with Gen.n_prefixes = min 2_000 table_prefixes;
            collector_as = 64701 }));
  let net = Dice_sim.Network.create () in
  let serving =
    Distributed.agent ~name:"upstream" ~addr:tr_internet_addr
      ~explorer_addr:explorer_side (Distributed.Local (Speakers.bird upstream))
  in
  let srv = Distributed.serve net serving in
  let cl = Probe_rpc.client net ~name:"bench-explorer" in
  let requests n =
    List.init n (fun i ->
        Probe_wire.canonical_request ~from:explorer_side
          (Msg.Update
             { Msg.withdrawn = [];
               attrs =
                 Route.to_attrs
                   (Route.make ~origin:Attr.Igp
                      ~as_path:
                        [ Asn.Path.Seq [ Threerouter.provider_as; Threerouter.customer_as ] ]
                      ~next_hop:explorer_side ());
               nlri = [ p (Printf.sprintf "198.51.%d.0/24" (i mod 256)) ];
             }))
  in
  let n_probes = 64 in
  (* a 20 ms timeout: plenty for the fast links, always too short for the
     first attempt over the slow one — retries and backoff must recover *)
  let config =
    { Probe_rpc.default_config with Probe_rpc.timeout = 0.02; retries = 3 }
  in
  row "%d probes per level, %d in flight, timeout %.0f ms, %d retries\n" n_probes
    config.Probe_rpc.max_in_flight
    (1000.0 *. config.Probe_rpc.timeout)
    config.Probe_rpc.retries;
  row "%-14s %-12s %-12s %-14s %-9s %s\n" "latency (ms)" "wall (ms)" "virtual (s)"
    "probes/s wall" "retries" "timeouts";
  let json_rows = ref [] in
  let level latency =
    Dice_sim.Network.connect net (Probe_rpc.client_node cl)
      (Probe_rpc.server_node srv) ~latency;
    let ep = Probe_rpc.endpoint ~config cl ~server:(Probe_rpc.server_node srv) in
    let v0 = Dice_sim.Network.now net in
    let t0 = Unix.gettimeofday () in
    let answers = Probe_rpc.call_batch ep (requests n_probes) in
    let wall = Unix.gettimeofday () -. t0 in
    let virt = Dice_sim.Network.now net -. v0 in
    let s = Probe_rpc.stats ep in
    assert (List.for_all (fun r -> r <> Probe_rpc.Timeout) answers);
    row "%-14.1f %-12.2f %-12.4f %-14.0f %-9d %d\n" (1000.0 *. latency)
      (1000.0 *. wall) virt
      (float_of_int n_probes /. wall)
      s.Probe_rpc.retries s.Probe_rpc.timeouts;
    json_rows :=
      Dice_util.Json.obj
        [ ("latency_s", Dice_util.Json.float latency);
          ("wall_s", Dice_util.Json.float wall);
          ("virtual_s", Dice_util.Json.float virt);
          ("probes", Dice_util.Json.int n_probes);
          ("throughput_wall_per_s", Dice_util.Json.float (float_of_int n_probes /. wall));
          ("retries", Dice_util.Json.int s.Probe_rpc.retries);
          ("timeouts", Dice_util.Json.int s.Probe_rpc.timeouts);
          ("declines", Dice_util.Json.int s.Probe_rpc.declines) ]
      :: !json_rows
  in
  List.iter level [ 0.0005; 0.005; 0.05 ];
  (* partition: every request exhausts its schedule and reports a timeout *)
  Dice_sim.Network.disconnect net (Probe_rpc.client_node cl) (Probe_rpc.server_node srv);
  let ep = Probe_rpc.endpoint ~config cl ~server:(Probe_rpc.server_node srv) in
  let v0 = Dice_sim.Network.now net in
  let answers = Probe_rpc.call_batch ep (requests 16) in
  let virt = Dice_sim.Network.now net -. v0 in
  let s = Probe_rpc.stats ep in
  assert (List.for_all (fun r -> r = Probe_rpc.Timeout) answers);
  row "partitioned link: %d/%d timed out after %d retries, %.3f virtual s, no hang\n"
    s.Probe_rpc.timeouts 16 s.Probe_rpc.retries virt;
  let json =
    Dice_util.Json.obj
      [ ("experiment", Dice_util.Json.string "p3");
        ("levels", Dice_util.Json.List (List.rev !json_rows));
        ( "partition",
          Dice_util.Json.obj
            [ ("probes", Dice_util.Json.int 16);
              ("timeouts", Dice_util.Json.int s.Probe_rpc.timeouts);
              ("retries", Dice_util.Json.int s.Probe_rpc.retries);
              ("virtual_s", Dice_util.Json.float virt) ] ) ]
  in
  let oc = open_out "BENCH_p3.json" in
  output_string oc (Dice_util.Json.to_string ~indent:true json);
  output_string oc "\n";
  close_out oc;
  row "wrote BENCH_p3.json\n"

(* ------------------------------------------------------------------ *)
(* P4: probe RPC under link faults, across loss rates                  *)
(* ------------------------------------------------------------------ *)

let experiment_p4 () =
  section "P4" "probe RPC under link faults: verdict completeness vs loss rate";
  let explorer_side = Ipv4.of_string "10.0.2.1" in
  let collector = Ipv4.of_string "10.0.3.2" in
  let upstream =
    Router.create
      (Config_parser.parse
         (Printf.sprintf
            "router id 10.0.2.2; local as 64700;\n\
             protocol bgp provider { neighbor 10.0.2.1 as %d; import all; export none; }\n\
             protocol bgp collector { neighbor 10.0.3.2 as 64701; import all; export none; }"
            Threerouter.provider_as))
  in
  let establish peer remote_as =
    ignore (Router.handle_event upstream ~peer Fsm.Manual_start);
    ignore (Router.handle_event upstream ~peer Fsm.Tcp_connected);
    ignore
      (Router.handle_msg upstream ~peer
         (Msg.Open
            { Msg.version = 4; my_as = remote_as land 0xFFFF; hold_time = 90;
              bgp_id = peer; capabilities = [ Msg.Cap_as4 remote_as ] }));
    ignore (Router.handle_msg upstream ~peer Msg.Keepalive)
  in
  establish explorer_side Threerouter.provider_as;
  establish collector 64701;
  ignore
    (Replay.feed_dump upstream ~peer:collector ~next_hop:collector
       (Gen.generate
          { Gen.default_params with Gen.n_prefixes = min 2_000 table_prefixes;
            collector_as = 64701 }));
  let requests n =
    List.init n (fun i ->
        Probe_wire.canonical_request ~from:explorer_side
          (Msg.Update
             { Msg.withdrawn = [];
               attrs =
                 Route.to_attrs
                   (Route.make ~origin:Attr.Igp
                      ~as_path:
                        [ Asn.Path.Seq [ Threerouter.provider_as; Threerouter.customer_as ] ]
                      ~next_hop:explorer_side ());
               nlri = [ p (Printf.sprintf "198.51.%d.0/24" (i mod 256)) ];
             }))
  in
  let n_probes = 128 in
  let fault_seed = 42L in
  let config =
    { Probe_rpc.default_config with Probe_rpc.timeout = 0.02; retries = 5 }
  in
  row "%d probes per level, duplicate=0.1, reorder window=2, fault seed %Ld, \
       timeout %.0f ms, %d retries\n"
    n_probes fault_seed
    (1000.0 *. config.Probe_rpc.timeout)
    config.Probe_rpc.retries;
  row "%-8s %-11s %-9s %-9s %-7s %-9s %-9s %s\n" "loss" "completed" "amplif."
    "timeouts" "dedup" "dropped" "dup'd" "reordered";
  let json_rows = ref [] in
  let level loss =
    (* a fresh wire per level, same upstream RIB behind it: the sweep
       measures the link, not the router *)
    let net = Dice_sim.Network.create () in
    Dice_sim.Network.set_fault_seed net fault_seed;
    let serving =
      Distributed.agent ~name:"upstream" ~addr:tr_internet_addr
        ~explorer_addr:explorer_side (Distributed.Local (Speakers.bird upstream))
    in
    let srv = Distributed.serve net serving in
    let cl = Probe_rpc.client net ~name:"bench-explorer" in
    Dice_sim.Network.connect net (Probe_rpc.client_node cl)
      (Probe_rpc.server_node srv) ~latency:0.001;
    Dice_sim.Network.set_faults net (Probe_rpc.client_node cl)
      (Probe_rpc.server_node srv)
      (Dice_sim.Faults.make ~drop:loss ~duplicate:0.1 ~reorder:2 ());
    let ep = Probe_rpc.endpoint ~config cl ~server:(Probe_rpc.server_node srv) in
    let answers = Probe_rpc.call_batch ep (requests n_probes) in
    ignore (Dice_sim.Network.run net);
    let s = Probe_rpc.stats ep in
    let completed =
      List.length (List.filter (fun r -> r <> Probe_rpc.Timeout) answers)
    in
    let amplification =
      float_of_int (n_probes + s.Probe_rpc.retries) /. float_of_int n_probes
    in
    row "%-8.2f %-11s %-9.2f %-9d %-7d %-9d %-9d %d\n" loss
      (Printf.sprintf "%d/%d" completed n_probes)
      amplification s.Probe_rpc.timeouts (Probe_rpc.dedup_hits srv)
      (Dice_sim.Network.messages_dropped net)
      (Dice_sim.Network.messages_duplicated net)
      (Dice_sim.Network.messages_reordered net);
    json_rows :=
      Dice_util.Json.obj
        [ ("loss", Dice_util.Json.float loss);
          ("probes", Dice_util.Json.int n_probes);
          ("completed", Dice_util.Json.int completed);
          ("retry_amplification", Dice_util.Json.float amplification);
          ("retries", Dice_util.Json.int s.Probe_rpc.retries);
          ("timeouts", Dice_util.Json.int s.Probe_rpc.timeouts);
          ("late_responses", Dice_util.Json.int s.Probe_rpc.late_responses);
          ("frames_executed", Dice_util.Json.int (Probe_rpc.frames_executed srv));
          ("dedup_hits", Dice_util.Json.int (Probe_rpc.dedup_hits srv));
          ("dropped", Dice_util.Json.int (Dice_sim.Network.messages_dropped net));
          ("duplicated", Dice_util.Json.int (Dice_sim.Network.messages_duplicated net));
          ("reordered", Dice_util.Json.int (Dice_sim.Network.messages_reordered net)) ]
      :: !json_rows
  in
  List.iter level [ 0.0; 0.1; 0.2; 0.3; 0.4 ];
  let json =
    Dice_util.Json.obj
      [ ("experiment", Dice_util.Json.string "p4");
        ("fault_seed", Dice_util.Json.string (Int64.to_string fault_seed));
        ("duplicate", Dice_util.Json.float 0.1);
        ("reorder_window", Dice_util.Json.int 2);
        ("levels", Dice_util.Json.List (List.rev !json_rows)) ]
  in
  let oc = open_out "BENCH_p4.json" in
  output_string oc (Dice_util.Json.to_string ~indent:true json);
  output_string oc "\n";
  close_out oc;
  row "wrote BENCH_p4.json\n"

(* ------------------------------------------------------------------ *)
(* P5: heterogeneous federation — mixed-fleet probing                  *)
(* ------------------------------------------------------------------ *)

let experiment_p5 () =
  section "P5" "heterogeneous federation: BIRD-only vs mixed BIRD+Quagga fleet";
  let explorer_side = Ipv4.of_string "10.0.2.1" in
  let collector = Ipv4.of_string "10.0.3.2" in
  let n_private = min 4_000 table_prefixes in
  (* one private table, replayed into every agent regardless of
     implementation: the fleets differ only in what answers the probes *)
  let private_table =
    Gen.to_updates
      (Gen.generate
         { Gen.default_params with Gen.n_prefixes = n_private; collector_as = 64701 })
      ~peer_as:64701 ~next_hop:collector
  in
  let mk_agent impl i =
    let intent =
      Intent.make ~router_id:(Ipv4.of_string "10.0.2.2") ~local_as:(64700 + i)
        ~sessions:
          [ Intent.session "provider" ~export:Intent.Block
              ~neighbor:explorer_side ~remote_as:Threerouter.provider_as;
            Intent.session "collector" ~export:Intent.Block ~neighbor:collector
              ~remote_as:64701 ]
        ()
    in
    let sp =
      match Speakers.create impl (Speaker.Intent intent) with
      | Some sp -> sp
      | None -> invalid_arg ("unknown speaker: " ^ impl)
    in
    Speaker.establish sp ~peer:explorer_side;
    Speaker.establish sp ~peer:collector;
    List.iter (fun m -> ignore (Speaker.feed sp ~peer:collector m)) private_table;
    Distributed.agent
      ~name:(Printf.sprintf "%s-%d" impl i)
      ~addr:tr_internet_addr ~explorer_addr:explorer_side
      (Distributed.Local sp)
  in
  let probe_msg i =
    Msg.Update
      { Msg.withdrawn = [];
        attrs =
          Route.to_attrs
            (Route.make ~origin:Attr.Igp
               ~as_path:
                 [ Asn.Path.Seq [ Threerouter.provider_as; Threerouter.customer_as ] ]
               ~next_hop:explorer_side ());
        nlri = [ p (Printf.sprintf "198.51.%d.0/24" (i mod 256)) ];
      }
  in
  let n_probes = 64 in
  let passes = 2 in
  row "%d private routes behind each agent; %d distinct probes x%d passes per agent, jobs=4\n"
    n_private n_probes passes;
  row "%-12s %-22s %-12s %-14s %-9s %s\n" "fleet" "speakers" "wall (ms)"
    "probes/s wall" "vcache" "hit rate";
  let json_rows = ref [] in
  let fleet name impls =
    let agents = List.mapi (fun i impl -> mk_agent impl i) impls in
    let reqs =
      (* the second pass re-probes the same messages: while the agents'
         live speakers stand still, it must answer from the vcache *)
      List.concat_map
        (fun a ->
          List.concat
            (List.init passes (fun _ ->
                 List.init n_probes (fun i -> (a, explorer_side, probe_msg i)))))
        agents
    in
    let t0 = Unix.gettimeofday () in
    let answers = Distributed.probe_all ~jobs:4 reqs in
    let wall = Unix.gettimeofday () -. t0 in
    let stats = List.map Distributed.stats agents in
    let probes = List.fold_left (fun a s -> a + s.Distributed.probes) 0 stats in
    let hits = List.fold_left (fun a s -> a + s.Distributed.vcache_hits) 0 stats in
    let hit_rate = float_of_int hits /. float_of_int (max 1 probes) in
    let verdicts = List.length (List.concat_map Distributed.verdicts answers) in
    row "%-12s %-22s %-12.2f %-14.0f %-9d %.1f%%\n" name (String.concat "+" impls)
      (1000.0 *. wall)
      (float_of_int probes /. wall)
      hits (100.0 *. hit_rate);
    json_rows :=
      Dice_util.Json.obj
        [ ("fleet", Dice_util.Json.string name);
          ("speakers", Dice_util.Json.List (List.map Dice_util.Json.string impls));
          ("probes", Dice_util.Json.int probes);
          ("wall_s", Dice_util.Json.float wall);
          ("throughput_wall_per_s", Dice_util.Json.float (float_of_int probes /. wall));
          ("vcache_hits", Dice_util.Json.int hits);
          ("vcache_hit_rate", Dice_util.Json.float hit_rate);
          ("verdicts", Dice_util.Json.int verdicts) ]
      :: !json_rows
  in
  fleet "bird-only" [ "bird"; "bird" ];
  fleet "mixed" [ "bird"; "quagga" ];
  let json =
    Dice_util.Json.obj
      [ ("experiment", Dice_util.Json.string "p5");
        ("private_routes", Dice_util.Json.int n_private);
        ("probes_per_agent", Dice_util.Json.int (n_probes * passes));
        ("fleets", Dice_util.Json.List (List.rev !json_rows)) ]
  in
  let oc = open_out "BENCH_p5.json" in
  output_string oc (Dice_util.Json.to_string ~indent:true json);
  output_string oc "\n";
  close_out oc;
  row "wrote BENCH_p5.json\n"

(* ------------------------------------------------------------------ *)
(* P6: divergence panel — throughput vs size, minimization cost        *)
(* ------------------------------------------------------------------ *)

let experiment_p6 () =
  section "P6" "divergence panel: probe throughput vs panel size; repro minimization cost";
  let explorer_side = Ipv4.of_string "10.0.2.1" in
  let collector = Ipv4.of_string "10.0.3.2" in
  let n_private = min 2_000 table_prefixes in
  let config_src =
    Printf.sprintf
      "router id 10.0.2.2; local as 64700;\n\
       protocol bgp provider { neighbor 10.0.2.1 as %d; import all; export none; }\n\
       protocol bgp collector { neighbor 10.0.3.2 as 64701; import all; export none; }"
      Threerouter.provider_as
  in
  let private_table =
    Gen.to_updates
      (Gen.generate
         { Gen.default_params with Gen.n_prefixes = n_private; collector_as = 64701 })
      ~peer_as:64701 ~next_hop:collector
  in
  (* identical state behind every member: same config text, same table —
     only the decision process differs *)
  let mk_member ?(table = private_table) impl =
    let sp = Speakers.create_exn impl (Speaker.Config (Config_parser.parse config_src)) in
    Speaker.establish sp ~peer:explorer_side;
    Speaker.establish sp ~peer:collector;
    List.iter (fun m -> ignore (Speaker.feed sp ~peer:collector m)) table;
    Distributed.agent ~name:impl ~addr:tr_internet_addr
      ~explorer_addr:explorer_side (Distributed.Local sp)
  in
  let probe_msg i =
    Msg.Update
      { Msg.withdrawn = [];
        attrs =
          Route.to_attrs
            (Route.make ~origin:Attr.Igp
               ~as_path:
                 [ Asn.Path.Seq [ Threerouter.provider_as; Threerouter.customer_as ] ]
               ~next_hop:explorer_side ());
        nlri = [ p (Printf.sprintf "198.51.%d.0/24" (i mod 256)) ];
      }
  in
  let n_probes = 64 in
  let exchanges = List.init n_probes (fun i -> (explorer_side, probe_msg i)) in
  row "%d private routes behind each member; %d probe exchanges, jobs=4\n"
    n_private n_probes;
  row "%-8s %-22s %-12s %-16s %s\n" "size" "members" "wall (ms)" "verdicts/s wall"
    "divergences";
  let json_sizes = ref [] in
  List.iter
    (fun impls ->
      (* fresh members per level: a shared verdict cache across levels
         would answer repeats from memory and fake the scaling *)
      let agents = List.map mk_member impls in
      let t0 = Unix.gettimeofday () in
      let ds = Panel.probe ~jobs:4 ~agents exchanges in
      let wall = Unix.gettimeofday () -. t0 in
      let verdicts = List.length impls * n_probes in
      row "%-8d %-22s %-12.2f %-16.0f %d\n" (List.length impls)
        (String.concat "+" impls) (1000.0 *. wall)
        (float_of_int verdicts /. wall)
        (List.length ds);
      json_sizes :=
        Dice_util.Json.obj
          [ ("members", Dice_util.Json.List (List.map Dice_util.Json.string impls));
            ("size", Dice_util.Json.int (List.length impls));
            ("probes", Dice_util.Json.int n_probes);
            ("verdicts", Dice_util.Json.int verdicts);
            ("wall_s", Dice_util.Json.float wall);
            ("throughput_wall_per_s", Dice_util.Json.float (float_of_int verdicts /. wall));
            ("divergences", Dice_util.Json.int (List.length ds)) ]
        :: !json_sizes)
    [ [ "bird" ]; [ "bird"; "quagga" ]; [ "bird"; "quagga"; "xorp" ] ];
  (* minimization cost: a seeded tie-break divergence (the incumbent's
     lower next hop keeps it installed under XORP's IGP-cost step while
     BIRD and Quagga fall through to peer identity) hidden in a schedule
     of noise announcements — delta-debug it down and time the whole
     shrink *)
  let incumbent =
    ( collector,
      Msg.Update
        { Msg.withdrawn = [];
          attrs =
            Route.to_attrs
              (Route.make ~origin:Attr.Igp
                 ~as_path:[ Asn.Path.Seq [ 64701; 64512 ] ]
                 ~next_hop:(Ipv4.of_string "10.0.0.1") ());
          nlri = [ p "203.0.113.0/24" ];
        } )
  in
  let trigger =
    ( explorer_side,
      Msg.Update
        { Msg.withdrawn = [];
          attrs =
            Route.to_attrs
              (Route.make ~origin:Attr.Igp ~med:(Some 50)
                 ~communities:[ Community.make 64510 77 ]
                 ~as_path:[ Asn.Path.Seq [ Threerouter.provider_as; 64512 ] ]
                 ~next_hop:explorer_side ());
          nlri = [ p "203.0.113.0/24" ];
        } )
  in
  let noise i =
    ( explorer_side,
      Msg.Update
        { Msg.withdrawn = [];
          attrs =
            Route.to_attrs
              (Route.make ~origin:Attr.Igp
                 ~as_path:[ Asn.Path.Seq [ Threerouter.provider_as; 64900 + i ] ]
                 ~next_hop:explorer_side ());
          nlri = [ p (Printf.sprintf "100.%d.0.0/16" (i mod 200)) ];
        } )
  in
  let schedule_len = 32 in
  let schedule =
    List.init schedule_len (fun i ->
        if i = schedule_len / 2 then trigger else noise i)
  in
  let agents = List.map (mk_member ~table:[ snd incumbent ]) Speakers.names in
  let hit =
    match
      List.find_opt
        (fun (d : Panel.divergence) -> Prefix.equal d.Panel.prefix (p "203.0.113.0/24"))
        (Panel.probe ~jobs:1 ~agents schedule)
    with
    | Some d -> { Panel.schedule; divergence = d }
    | None -> failwith "P6: seeded divergence did not fire"
  in
  let t0 = Unix.gettimeofday () in
  let minimal, st = Minimize.divergence ~jobs:1 ~agents hit in
  let wall = Unix.gettimeofday () -. t0 in
  let reproduced =
    List.exists
      (fun d -> Panel.signature d = Panel.signature hit.Panel.divergence)
      (Panel.probe ~jobs:1 ~agents minimal)
  in
  row
    "minimization: %d -> %d message(s), %d attribute shrink(s), %d predicate \
     test(s), %.2f ms wall (%s)\n"
    st.Minimize.initial_len
    (List.length minimal)
    st.Minimize.shrunk st.Minimize.tests (1000.0 *. wall)
    (if reproduced then "minimal schedule reproduces" else "REPRO LOST");
  let json =
    Dice_util.Json.obj
      [ ("experiment", Dice_util.Json.string "p6");
        ("private_routes", Dice_util.Json.int n_private);
        ("sizes", Dice_util.Json.List (List.rev !json_sizes));
        ( "minimize",
          Dice_util.Json.obj
            [ ("initial_len", Dice_util.Json.int st.Minimize.initial_len);
              ("final_len", Dice_util.Json.int (List.length minimal));
              ("attribute_shrinks", Dice_util.Json.int st.Minimize.shrunk);
              ("predicate_tests", Dice_util.Json.int st.Minimize.tests);
              ("wall_s", Dice_util.Json.float wall);
              ("reproduced", Dice_util.Json.bool reproduced) ] ) ]
  in
  let oc = open_out "BENCH_p6.json" in
  output_string oc (Dice_util.Json.to_string ~indent:true json);
  output_string oc "\n";
  close_out oc;
  row "wrote BENCH_p6.json\n"

(* ------------------------------------------------------------------ *)
(* P7: incremental path-prefix solving                                 *)
(* ------------------------------------------------------------------ *)

let experiment_p7 () =
  section "P7"
    "incremental path-prefix solving: negation throughput and time to full branch \
     coverage (F1 filter, generational search)";
  let measure ~incremental =
    let config =
      { Explorer.default_config with
        Explorer.strategy = Strategy.Generational;
        max_runs = 192;
        incremental;
      }
    in
    let report = Explorer.explore ~config filter_program in
    let total = Coverage.direction_count report.Explorer.coverage in
    (* the execution index at which cumulative new directions reach the
       final total: how much of the budget full branch coverage needed *)
    let runs_to_full =
      let cum = ref 0 and found = ref None in
      List.iter
        (fun (r : Explorer.run) ->
          cum := !cum + r.Explorer.new_directions;
          if !found = None && !cum >= total then found := Some (r.Explorer.index + 1))
        report.Explorer.runs;
      Option.value !found ~default:report.Explorer.executions
    in
    (* honest wall-clock for that milestone: a fresh exploration capped at
       exactly that many runs, timed end to end *)
    let t0 = Unix.gettimeofday () in
    ignore
      (Explorer.explore
         ~config:{ config with Explorer.max_runs = runs_to_full }
         filter_program);
    let time_to_full = Unix.gettimeofday () -. t0 in
    (report, runs_to_full, time_to_full)
  in
  let line label (report, runs_to_full, time_to_full) =
    let ss = report.Explorer.solver_stats in
    let neg_rate =
      float_of_int report.Explorer.negations_sat /. max 1e-9 report.Explorer.elapsed_s
    in
    let reuse_rate =
      float_of_int ss.Dice_concolic.Solver.prefix_reuses
      /. float_of_int (max 1 ss.Dice_concolic.Solver.calls)
    in
    row "%-14s %-14.0f %-12d %-14.2f %-12s %-10d %d\n" label neg_rate runs_to_full
      (1000.0 *. time_to_full)
      (Printf.sprintf "%.1f%%" (100.0 *. reuse_rate))
      ss.Dice_concolic.Solver.simplifications
      ss.Dice_concolic.Solver.first_violated_skips;
    (neg_rate, reuse_rate)
  in
  row "%-14s %-14s %-12s %-14s %-12s %-10s %s\n" "solver" "neg-sat/s" "runs-to-full"
    "time-to-full" "prefix-reuse" "simplif." "scan-skips";
  let before = measure ~incremental:false in
  let after = measure ~incremental:true in
  let before_rate, before_reuse = line "from-scratch" before in
  let after_rate, after_reuse = line "incremental" after in
  let json_side label (report, runs_to_full, time_to_full) rate reuse =
    let ss = report.Explorer.solver_stats in
    ( label,
      Dice_util.Json.obj
        [ ("negations_sat", Dice_util.Json.int report.Explorer.negations_sat);
          ("elapsed_s", Dice_util.Json.float report.Explorer.elapsed_s);
          ("negations_sat_per_s", Dice_util.Json.float rate);
          ("runs_to_full_coverage", Dice_util.Json.int runs_to_full);
          ("time_to_full_coverage_s", Dice_util.Json.float time_to_full);
          ("prefix_reuse_rate", Dice_util.Json.float reuse);
          ("prefix_reuses", Dice_util.Json.int ss.Dice_concolic.Solver.prefix_reuses);
          ("simplifications", Dice_util.Json.int ss.Dice_concolic.Solver.simplifications);
          ( "first_violated_skips",
            Dice_util.Json.int ss.Dice_concolic.Solver.first_violated_skips );
          ( "candidates_deduped",
            Dice_util.Json.int ss.Dice_concolic.Solver.candidates_deduped );
          ("distinct_paths", Dice_util.Json.int report.Explorer.distinct_paths);
          ( "coverage_ratio",
            Dice_util.Json.float (Explorer.coverage_ratio report) ) ] )
  in
  let json =
    Dice_util.Json.obj
      [ ("experiment", Dice_util.Json.string "p7");
        ("strategy", Dice_util.Json.string "generational");
        json_side "from_scratch" before before_rate before_reuse;
        json_side "incremental" after after_rate after_reuse;
        ( "speedup_negations_per_s",
          Dice_util.Json.float (after_rate /. max 1e-9 before_rate) ) ]
  in
  let oc = open_out "BENCH_p7.json" in
  output_string oc (Dice_util.Json.to_string ~indent:true json);
  output_string oc "\n";
  close_out oc;
  row "wrote BENCH_p7.json\n"

(* ------------------------------------------------------------------ *)
(* P8: config translation — dialect cost, intent-panel divergence hunt *)
(* ------------------------------------------------------------------ *)

let experiment_p8 () =
  section "P8"
    "config translation: per-dialect render/parse/realize cost; divergence hunt \
     over an intent-configured panel";
  let explorer_side = Ipv4.of_string "10.0.2.1" in
  let collector = Ipv4.of_string "10.0.3.2" in
  let pat base low high = { Filter.base = p base; low; high } in
  (* one operator intent, sized like a real edge policy: two prefix
     sets, a three-rule import policy whose default is deliberately
     unstated — the seeded filter-interpreter quirk *)
  let intent =
    Intent.make ~router_id:(Ipv4.of_string "10.0.2.2") ~local_as:64700
      ~prefix_sets:
        [ ("incumbents", [ pat "198.0.0.0/16" 16 16; pat "203.0.113.0/24" 24 24 ]);
          ("martians", [ pat "10.0.0.0/8" 8 32; pat "192.168.0.0/16" 16 32 ]) ]
      ~policies:
        [ Intent.policy "collector_in"
            [ Intent.deny ~matches:[ Intent.Prefixes "martians" ] ();
              Intent.permit
                ~matches:[ Intent.Prefixes "incumbents" ]
                ~actions:[ Intent.Set_local_pref 110 ] ();
              Intent.permit
                ~matches:[ Intent.Transits 64512 ]
                ~actions:[ Intent.Add_community (Community.make 64700 100) ] () ] ]
      ~sessions:
        [ Intent.session "provider" ~export:Intent.Block ~neighbor:explorer_side
            ~remote_as:Threerouter.provider_as;
          Intent.session "collector" ~import:(Intent.Apply "collector_in")
            ~neighbor:collector ~remote_as:64801 ]
      ()
  in
  let iters = 500 in
  row "%d translation iterations per dialect\n" iters;
  row "%-8s %-12s %-12s %-12s %s\n" "dialect" "rendered-b" "renders/s" "parses/s"
    "realizes/s";
  let json_dialects = ref [] in
  List.iter
    (fun name ->
      let (module D : Dialect.S) = Speakers.dialect_exn name in
      let text = D.render intent in
      let rate f =
        let t0 = Unix.gettimeofday () in
        for _ = 1 to iters do
          ignore (Sys.opaque_identity (f ()))
        done;
        float_of_int iters /. (Unix.gettimeofday () -. t0)
      in
      let renders = rate (fun () -> D.render intent) in
      let parses = rate (fun () -> D.parse text) in
      let realizes = rate (fun () -> Dialect.realize (module D) intent) in
      row "%-8s %-12d %-12.0f %-12.0f %.0f\n" name (String.length text) renders
        parses realizes;
      json_dialects :=
        Dice_util.Json.obj
          [ ("dialect", Dice_util.Json.string name);
            ("rendered_bytes", Dice_util.Json.int (String.length text));
            ("renders_per_s", Dice_util.Json.float renders);
            ("parses_per_s", Dice_util.Json.float parses);
            ("realizes_per_s", Dice_util.Json.float realizes) ]
        :: !json_dialects)
    Speakers.names;
  (* the same intent behind a full panel: XORP's default-accept admits
     collector routes the policy never matched, so its tables differ
     from BIRD's and Quagga's before the first probe arrives *)
  let incumbent prefix path =
    ( collector,
      Msg.Update
        { Msg.withdrawn = [];
          attrs =
            Route.to_attrs
              (Route.make ~origin:Attr.Igp ~as_path:[ Asn.Path.Seq path ]
                 ~next_hop:collector ());
          nlri = [ p prefix ];
        } )
  in
  let setup =
    [ incumbent "198.0.0.0/16" [ 64801; 64900 ];   (* matched: all members *)
      incumbent "198.0.0.0/8" [ 64801; 64901 ];    (* unmatched: xorp only *)
      incumbent "198.51.100.0/22" [ 64801; 64902 ] (* unmatched: xorp only *) ]
  in
  let members =
    List.map
      (fun name ->
        let sp = Speakers.create_exn name (Speaker.Intent intent) in
        Speaker.establish sp ~peer:explorer_side;
        Speaker.establish sp ~peer:collector;
        List.iter (fun (peer, msg) -> ignore (Speaker.feed sp ~peer msg)) setup;
        Distributed.agent ~name ~addr:tr_internet_addr
          ~explorer_addr:explorer_side (Distributed.Local sp))
      Speakers.names
  in
  let n_probes = 64 in
  let exchanges =
    (* half the probes land under the /22 the quirk admitted into XORP
       alone; the rest are uncontested *)
    List.init n_probes (fun i ->
        ( explorer_side,
          Msg.Update
            { Msg.withdrawn = [];
              attrs =
                Route.to_attrs
                  (Route.make ~origin:Attr.Igp
                     ~as_path:
                       [ Asn.Path.Seq
                           [ Threerouter.provider_as; Threerouter.customer_as ] ]
                     ~next_hop:explorer_side ());
              nlri = [ p (Printf.sprintf "198.51.%d.0/24" (96 + (i mod 8))) ];
            } ))
  in
  let t0 = Unix.gettimeofday () in
  let ds = Panel.probe ~jobs:4 ~agents:members exchanges in
  let wall = Unix.gettimeofday () -. t0 in
  let verdicts = List.length Speakers.names * n_probes in
  row
    "intent panel (%s): %d probes, %.2f ms wall, %.0f verdicts/s, %d divergence(s)\n"
    (String.concat "+" Speakers.names)
    n_probes (1000.0 *. wall)
    (float_of_int verdicts /. wall)
    (List.length ds);
  let json =
    Dice_util.Json.obj
      [ ("experiment", Dice_util.Json.string "p8");
        ( "translation",
          Dice_util.Json.obj
            [ ("iters", Dice_util.Json.int iters);
              ("dialects", Dice_util.Json.List (List.rev !json_dialects)) ] );
        ( "panel",
          Dice_util.Json.obj
            [ ( "members",
                Dice_util.Json.List (List.map Dice_util.Json.string Speakers.names) );
              ("probes", Dice_util.Json.int n_probes);
              ("wall_s", Dice_util.Json.float wall);
              ( "verdicts_per_s",
                Dice_util.Json.float (float_of_int verdicts /. wall) );
              ("divergences", Dice_util.Json.int (List.length ds)) ] ) ]
  in
  let oc = open_out "BENCH_p8.json" in
  output_string oc (Dice_util.Json.to_string ~indent:true json);
  output_string oc "\n";
  close_out oc;
  row "wrote BENCH_p8.json\n"

(* ------------------------------------------------------------------ *)
(* P9: crash tolerance — completeness, fail-fast, recovery, jitter     *)
(* ------------------------------------------------------------------ *)

let experiment_p9 () =
  section "P9"
    "crash tolerance: verdict completeness vs crash rate, breaker fail-fast \
     latency, time-to-recovery, jittered-backoff retry amplification";
  let explorer_side = Ipv4.of_string "10.0.2.1" in
  (* a deliberately small upstream behind each wire: the sweep measures
     the crash machinery, not the RIB *)
  let upstream () =
    let r =
      Router.create
        (Config_parser.parse
           (Printf.sprintf
              "router id 10.0.2.2; local as 64700;\n\
               protocol bgp provider { neighbor 10.0.2.1 as %d; import all; \
               export none; }"
              Threerouter.provider_as))
    in
    ignore (Router.handle_event r ~peer:explorer_side Fsm.Manual_start);
    ignore (Router.handle_event r ~peer:explorer_side Fsm.Tcp_connected);
    ignore
      (Router.handle_msg r ~peer:explorer_side
         (Msg.Open
            { Msg.version = 4; my_as = Threerouter.provider_as land 0xFFFF;
              hold_time = 90; bgp_id = explorer_side;
              capabilities = [ Msg.Cap_as4 Threerouter.provider_as ] }));
    ignore (Router.handle_msg r ~peer:explorer_side Msg.Keepalive);
    r
  in
  let requests n =
    List.init n (fun i ->
        Probe_wire.canonical_request ~from:explorer_side
          (Msg.Update
             { Msg.withdrawn = [];
               attrs =
                 Route.to_attrs
                   (Route.make ~origin:Attr.Igp
                      ~as_path:
                        [ Asn.Path.Seq
                            [ Threerouter.provider_as; Threerouter.customer_as ] ]
                      ~next_hop:explorer_side ());
               nlri = [ p (Printf.sprintf "198.51.%d.0/24" (i mod 256)) ];
             }))
  in
  let wire () =
    let net = Dice_sim.Network.create () in
    Dice_sim.Network.set_crash_seed net Dice_sim.Network.default_crash_seed;
    let serving =
      Distributed.agent ~name:"upstream" ~addr:tr_internet_addr
        ~explorer_addr:explorer_side
        (Distributed.Local (Speakers.bird (upstream ())))
    in
    let srv = Distributed.serve net serving in
    let cl = Probe_rpc.client net ~name:"bench-explorer" in
    Dice_sim.Network.connect net (Probe_rpc.client_node cl)
      (Probe_rpc.server_node srv) ~latency:0.001;
    (net, serving, srv, cl)
  in
  (* --- completeness vs crash rate, under the default crash seed --- *)
  let n_probes = 200 in
  let config =
    { Probe_rpc.default_config with
      Probe_rpc.timeout = 0.05; retries = 6; jitter = 0.1;
      breaker_threshold = 3; breaker_cooldown = 0.2 }
  in
  row "crash sweep: %d probes per level, downtime 0.1 s, crash seed %Ld\n"
    n_probes Dice_sim.Network.default_crash_seed;
  row "%-8s %-11s %-8s %-9s %-9s %-7s %s\n" "crash" "completed" "crashes"
    "restarts" "requeued" "incarn." "virtual-s";
  let json_sweep = ref [] in
  let crash_level rate =
    let net, serving, srv, cl = wire () in
    let harness = Distributed.Recovery.attach serving in
    Dice_sim.Network.set_restart_hook net (Probe_rpc.server_node srv) (fun () ->
        Distributed.Recovery.crash_restart harness);
    let _stop : unit -> unit =
      Probe_rpc.start_heartbeats ~until:60.0 srv
        ~to_:(Probe_rpc.client_node cl) ~period:0.05
        ~incarnation:(fun () -> Distributed.Recovery.incarnation harness)
        ~state_version:(fun () -> Distributed.Recovery.state_version harness)
    in
    if rate > 0.0 then
      Dice_sim.Network.set_node_faults net (Probe_rpc.server_node srv)
        (Dice_sim.Faults.node ~crash:rate ~downtime:0.1 ());
    let ep = Probe_rpc.endpoint ~config cl ~server:(Probe_rpc.server_node srv) in
    let v0 = Dice_sim.Network.now net in
    let answers = Probe_rpc.call_batch ep (requests n_probes) in
    let virt = Dice_sim.Network.now net -. v0 in
    ignore (Dice_sim.Network.run net);
    let completed =
      List.length (List.filter (fun r -> r <> Probe_rpc.Timeout) answers)
    in
    row "%-8.2f %-11s %-8d %-9d %-9d %-7d %.2f\n" rate
      (Printf.sprintf "%d/%d" completed n_probes)
      (Dice_sim.Network.node_crashes net)
      (Dice_sim.Network.node_restarts net)
      (Dice_sim.Network.messages_requeued net)
      (Distributed.Recovery.incarnation harness)
      virt;
    json_sweep :=
      Dice_util.Json.obj
        [ ("crash_rate", Dice_util.Json.float rate);
          ("probes", Dice_util.Json.int n_probes);
          ("completed", Dice_util.Json.int completed);
          ("crashes", Dice_util.Json.int (Dice_sim.Network.node_crashes net));
          ("restarts", Dice_util.Json.int (Dice_sim.Network.node_restarts net));
          ("requeued", Dice_util.Json.int (Dice_sim.Network.messages_requeued net));
          ("incarnation", Dice_util.Json.int (Distributed.Recovery.incarnation harness));
          ("virtual_s", Dice_util.Json.float virt) ]
      :: !json_sweep
  in
  List.iter crash_level [ 0.0; 0.05; 0.1; 0.2 ];
  (* --- breaker fail-fast: virtual seconds burned per probe at a dead
     member, closed vs open --- *)
  let fconfig =
    { Probe_rpc.default_config with
      Probe_rpc.timeout = 0.05; retries = 2; backoff = 2.0;
      breaker_threshold = 2; breaker_cooldown = 0.2 }
  in
  let net, _serving, srv, cl = wire () in
  let ep = Probe_rpc.endpoint ~config:fconfig cl ~server:(Probe_rpc.server_node srv) in
  let reqs = requests 16 in
  let timed f =
    let t0 = Dice_sim.Network.now net in
    ignore (f ());
    Dice_sim.Network.now net -. t0
  in
  Dice_sim.Network.pause_node net (Probe_rpc.server_node srv);
  (* two full-budget timeouts open the breaker *)
  let closed_lat =
    List.fold_left
      (fun acc r -> acc +. timed (fun () -> Probe_rpc.call ep r))
      0.0
      [ List.nth reqs 0; List.nth reqs 1 ]
    /. 2.0
  in
  let n_fast = 10 in
  let open_lat =
    List.fold_left
      (fun acc i -> acc +. timed (fun () -> Probe_rpc.call ep (List.nth reqs (2 + i))))
      0.0
      (List.init n_fast Fun.id)
    /. float_of_int n_fast
  in
  let fail_fast = (Probe_rpc.stats ep).Probe_rpc.fail_fast in
  row
    "fail-fast: closed-breaker probe burns %.3f virtual s, open-breaker %.4f \
     (%d declined locally)\n"
    closed_lat open_lat fail_fast;
  (* --- time-to-recovery: node resumes, cooldown passes, half-open
     trial heals — measured from resume to the first verdict --- *)
  Dice_sim.Network.resume_node net (Probe_rpc.server_node srv);
  ignore (Dice_sim.Network.run net);
  let t_resume = Dice_sim.Network.now net in
  let rec until_ok tries =
    match Probe_rpc.call ep (List.nth reqs 15) with
    | Probe_rpc.Verdicts _ -> Dice_sim.Network.now net
    | _ when tries = 0 -> Dice_sim.Network.now net
    | _ ->
      Dice_sim.Network.schedule net ~delay:0.05 (fun () -> ());
      ignore (Dice_sim.Network.run net);
      until_ok (tries - 1)
  in
  let recovery = until_ok 100 -. t_resume in
  row "time-to-recovery: %.3f virtual s from restart to the first verdict \
       (cooldown %.2f s, polling every 0.05 s)\n"
    recovery fconfig.Probe_rpc.breaker_cooldown;
  (* --- retry amplification: jittered vs synchronized backoff on a
     lossy (but crash-free) link, same fault seed --- *)
  let amplification jitter =
    let net, _serving, srv, cl = wire () in
    Dice_sim.Network.set_fault_seed net 42L;
    Dice_sim.Network.set_faults net (Probe_rpc.client_node cl)
      (Probe_rpc.server_node srv)
      (Dice_sim.Faults.make ~drop:0.3 ~duplicate:0.1 ~reorder:2 ());
    let config =
      { Probe_rpc.default_config with
        Probe_rpc.timeout = 0.02; retries = 5; jitter }
    in
    let ep = Probe_rpc.endpoint ~config cl ~server:(Probe_rpc.server_node srv) in
    ignore (Probe_rpc.call_batch ep (requests 128));
    ignore (Dice_sim.Network.run net);
    let s = Probe_rpc.stats ep in
    float_of_int (128 + s.Probe_rpc.retries) /. 128.0
  in
  let amp_sync = amplification 0.0 in
  let amp_jit = amplification 0.25 in
  row
    "retry amplification at 30%% loss: %.3f synchronized, %.3f with 0.25 \
     jitter (delta %+.3f)\n"
    amp_sync amp_jit (amp_jit -. amp_sync);
  let json =
    Dice_util.Json.obj
      [ ("experiment", Dice_util.Json.string "p9");
        ( "crash_seed",
          Dice_util.Json.string (Int64.to_string Dice_sim.Network.default_crash_seed) );
        ("crash_sweep", Dice_util.Json.List (List.rev !json_sweep));
        ( "fail_fast",
          Dice_util.Json.obj
            [ ("closed_probe_s", Dice_util.Json.float closed_lat);
              ("open_probe_s", Dice_util.Json.float open_lat);
              ("declined_locally", Dice_util.Json.int fail_fast) ] );
        ( "recovery",
          Dice_util.Json.obj
            [ ("cooldown_s", Dice_util.Json.float fconfig.Probe_rpc.breaker_cooldown);
              ("time_to_first_verdict_s", Dice_util.Json.float recovery) ] );
        ( "jitter",
          Dice_util.Json.obj
            [ ("amplification_synchronized", Dice_util.Json.float amp_sync);
              ("amplification_jittered", Dice_util.Json.float amp_jit);
              ("delta", Dice_util.Json.float (amp_jit -. amp_sync)) ] ) ]
  in
  let oc = open_out "BENCH_p9.json" in
  output_string oc (Dice_util.Json.to_string ~indent:true json);
  output_string oc "\n";
  close_out oc;
  row "wrote BENCH_p9.json\n"

(* ------------------------------------------------------------------ *)
(* P10: fleet-scale topology generation with shared-RIB memory         *)
(* ------------------------------------------------------------------ *)

let experiment_p10 () =
  section "P10" "fleet scale: updates/s per domain and resident memory per domain";
  let module Spec = Dice_topology.Topology.Spec in
  let module Tgen = Dice_topology.Gen in
  let module Fleet = Dice_topology.Fleet in
  let module Store = Dice_checkpoint.Store in
  let updates_per_domain = if full then 256 else 64 in
  let jobs = max 1 (min 4 (Dice_exec.Pool.available_parallelism ())) in
  let json_rows = ref [] in
  row "%-8s %-8s %12s %14s %14s %12s %10s\n" "domains" "links" "updates/s"
    "upd/s/domain" "words/domain" "rib-shared" "ckpt-dedup";
  List.iter
    (fun domains ->
      Gc.compact ();
      let before = (Gc.stat ()).Gc.live_words in
      let spec = Tgen.generate ~seed:31L ~domains () in
      let fl = Fleet.realize spec in
      Fleet.establish fl;
      let t0 = Unix.gettimeofday () in
      let st = Fleet.drive ~jobs ~updates_per_domain ~seed:31L fl in
      let wall = Unix.gettimeofday () -. t0 in
      Gc.compact ();
      let live_words = (Gc.stat ()).Gc.live_words - before in
      let words_per_domain = live_words / domains in
      let throughput = float_of_int st.Fleet.delivered /. wall in
      (* shared-RIB memory: how much of a mutated explorer clone's Loc-RIB
         is physically the live speaker's trie (first persistent-trie
         domain in the fleet) *)
      let shared, clone_nodes =
        match
          List.find_opt
            (fun (d : Spec.domain) -> d.Spec.speaker = "bird")
            spec.Spec.domains
        with
        | Some d -> Fleet.rib_sharing fl ~domain:d.Spec.name
        | None -> (0, 0)
      in
      let rib_shared =
        if clone_nodes = 0 then 0.0
        else float_of_int shared /. float_of_int clone_nodes
      in
      (* checkpoint pages content-deduped across the fleet's shared store:
         every domain captured live plus one mutated explorer clone *)
      Fleet.checkpoint_all ~clones:1 fl;
      let store = Fleet.store fl in
      let dedup = Store.dedup_ratio store in
      let resident = Store.resident_bytes store in
      Fleet.release_checkpoints fl;
      row "%-8d %-8d %12.0f %14.0f %14d %11.0f%% %9.0f%%\n" domains
        (List.length spec.Spec.links) throughput
        (throughput /. float_of_int domains)
        words_per_domain (100.0 *. rib_shared) (100.0 *. dedup);
      json_rows :=
        Dice_util.Json.obj
          [ ("domains", Dice_util.Json.int domains);
            ("links", Dice_util.Json.int (List.length spec.Spec.links));
            ("updates_fed", Dice_util.Json.int st.Fleet.fed);
            ("updates_delivered", Dice_util.Json.int st.Fleet.delivered);
            ("rounds", Dice_util.Json.int st.Fleet.rounds);
            ("wall_s", Dice_util.Json.float wall);
            ("updates_per_s", Dice_util.Json.float throughput);
            ("updates_per_s_per_domain", Dice_util.Json.float (throughput /. float_of_int domains));
            ("live_words_per_domain", Dice_util.Json.int words_per_domain);
            ("rib_clone_nodes", Dice_util.Json.int clone_nodes);
            ("rib_shared_nodes", Dice_util.Json.int shared);
            ("rib_shared_fraction", Dice_util.Json.float rib_shared);
            ("checkpoint_captures", Dice_util.Json.int (Store.captures store));
            ("checkpoint_dedup_ratio", Dice_util.Json.float dedup);
            ("checkpoint_resident_bytes", Dice_util.Json.int resident) ]
        :: !json_rows)
    [ 1; 4; 16; 64 ];
  let json =
    Dice_util.Json.obj
      [ ("experiment", Dice_util.Json.string "p10");
        ("updates_per_domain", Dice_util.Json.int updates_per_domain);
        ("jobs", Dice_util.Json.int jobs);
        ("fleets", Dice_util.Json.List (List.rev !json_rows)) ]
  in
  let oc = open_out "BENCH_p10.json" in
  output_string oc (Dice_util.Json.to_string ~indent:true json);
  output_char oc '\n';
  close_out oc;
  row "wrote BENCH_p10.json\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro_benchmarks () =
  section "micro" "hot-path micro-benchmarks (Bechamel, ns/op)";
  let open Bechamel in
  let router, _, _ = loaded_provider ~n:(min 2_000 table_prefixes) () in
  let announce_msg =
    Msg.Update
      { withdrawn = [];
        attrs = Route.to_attrs (customer_route ());
        nlri = [ p "203.0.113.0/24" ];
      }
  in
  let encoded = Msg.encode announce_msg in
  let live_image = Router.snapshot router in
  let loc = Router.loc_rib router in
  let solver_query () =
    let x = Dice_concolic.Sym.var ~name:"bx" ~width:32 in
    ignore
      (Dice_concolic.Solver.solve ~hint:(Hashtbl.create 0)
         [ { Dice_concolic.Path.expr =
               Dice_concolic.Sym.Binop
                 (Dice_concolic.Sym.Eq,
                  Dice_concolic.Sym.Binop
                    (Dice_concolic.Sym.And, Dice_concolic.Sym.of_var x,
                     Dice_concolic.Sym.const ~width:32 0xFFFF00L),
                  Dice_concolic.Sym.const ~width:32 0xAB00L);
             expected_nonzero = true;
           } ])
  in
  let tests =
    [ Test.make ~name:"update-processing (E2/E3 hot path)"
        (Staged.stage (fun () -> ignore (Router.handle_msg router ~peer:tr_internet_addr announce_msg)));
      Test.make ~name:"msg-decode"
        (Staged.stage (fun () -> ignore (Msg.decode encoded)));
      Test.make ~name:"msg-encode"
        (Staged.stage (fun () -> ignore (Msg.encode announce_msg)));
      Test.make ~name:"router-snapshot (checkpoint cost, E1)"
        (Staged.stage (fun () -> ignore (Router.snapshot router)));
      Test.make ~name:"cow-capture (E1)"
        (Staged.stage
           (let mgr = Fork.create () in
            fun () ->
              let cp = Fork.checkpoint mgr ~live_image in
              Fork.drop_checkpoint cp));
      Test.make ~name:"rib-longest-match"
        (Staged.stage (fun () -> ignore (Rib.Loc.longest_match (Ipv4.of_string "198.51.100.1") loc)));
      Test.make ~name:"solver-query (F1)" (Staged.stage solver_query);
      Test.make ~name:"filter-eval (concrete fast path)"
        (Staged.stage
           (let cr = Croute.of_route (p "10.1.2.0/24") (customer_route ()) in
            fun () ->
              ignore
                (Filter_interp.run (Dice_concolic.Engine.null ()) ~source_as:64501
                   ~local_as:64510 sample_filter cr)))
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (est :: _) -> est
            | Some [] | None -> Float.nan
          in
          row "%-42s %12.1f ns/op\n" name ns)
        analyzed)
    tests

(* ------------------------------------------------------------------ *)
(* X1/X2: the paper's envisioned extensions, measured                  *)
(* ------------------------------------------------------------------ *)

let experiment_x1 () =
  section "X1" "cross-domain exploration through a narrow interface (paper §2.4)";
  (* the upstream keeps its table private (export none): only remote
     probing can see origin conflicts *)
  let upstream =
    Router.create
      (Config_parser.parse
         {|
         router id 10.0.2.2;
         local as 64700;
         protocol bgp provider { neighbor 10.0.2.1 as 64510; import all; export none; }
         protocol bgp collector { neighbor 10.0.3.2 as 64701; import all; export none; }
         |})
  in
  let establish r peer remote_as =
    ignore (Router.handle_event r ~peer Fsm.Manual_start);
    ignore (Router.handle_event r ~peer Fsm.Tcp_connected);
    ignore
      (Router.handle_msg r ~peer
         (Msg.Open
            { Msg.version = 4; my_as = remote_as land 0xFFFF; hold_time = 90; bgp_id = peer;
              capabilities = [ Msg.Cap_as4 remote_as ] }));
    ignore (Router.handle_msg r ~peer Msg.Keepalive)
  in
  establish upstream (Ipv4.of_string "10.0.2.1") 64510;
  establish upstream (Ipv4.of_string "10.0.3.2") 64701;
  let private_trace =
    Gen.generate
      { Gen.default_params with Gen.n_prefixes = min 4_000 table_prefixes;
        collector_as = 64701 }
  in
  ignore
    (Replay.feed_dump upstream ~peer:(Ipv4.of_string "10.0.3.2")
       ~next_hop:(Ipv4.of_string "10.0.3.2") private_trace);
  (* the upstream also routes space inside the provider's leaky 198/8
     block — the routes the misconfiguration endangers *)
  List.iter
    (fun (prefix, origin) ->
      let route =
        Route.make ~origin:Attr.Igp
          ~as_path:[ Asn.Path.Seq [ 64701; origin ] ]
          ~next_hop:(Ipv4.of_string "10.0.3.2") ()
      in
      ignore
        (Router.handle_msg upstream ~peer:(Ipv4.of_string "10.0.3.2")
           (Msg.Update
              { Msg.withdrawn = []; attrs = Route.to_attrs route; nlri = [ p prefix ] })))
    [ ("198.0.0.0/16", 64999); ("198.32.0.0/14", 64998); ("198.128.0.0/12", 64997) ];
  let provider = Router.create (Threerouter.provider_config Threerouter.Partially_correct) in
  establish provider tr_customer_addr Threerouter.customer_as;
  establish provider tr_internet_addr Threerouter.internet_as;
  List.iter
    (fun prefix ->
      ignore
        (Router.handle_msg provider ~peer:tr_customer_addr
           (Msg.Update
              { Msg.withdrawn = []; attrs = Route.to_attrs (customer_route ());
                nlri = [ prefix ] })))
    Threerouter.customer_prefixes;
  let agent =
    Distributed.agent ~name:"upstream" ~addr:tr_internet_addr
      ~explorer_addr:(Ipv4.of_string "10.0.2.1")
      (Distributed.Local (Speakers.bird upstream))
  in
  let cfg =
    { Orchestrator.default_cfg with
      Orchestrator.checkers =
        [ Hijack.checker; Distributed.checker ~jobs:1 ~agents:[ agent ] ];
      exploration =
        { Orchestrator.default_exploration with
          Orchestrator.explorer =
            { Explorer.default_config with Explorer.max_runs = 256; max_depth = 96 };
        };
    }
  in
  let dice = Orchestrator.create ~cfg (Speakers.bird provider) in
  Orchestrator.observe dice ~peer:tr_customer_addr
    ~prefix:(p "203.0.113.0/24") ~route:(customer_route ());
  let report = Orchestrator.explore dice in
  let count name =
    List.length
      (List.filter (fun (f : Checker.fault) -> f.Checker.checker = name)
         report.Orchestrator.faults)
  in
  row "provider-local origin conflicts:        %d (its RIB is nearly empty)\n"
    (count "origin-hijack");
  row "remote origin conflicts (narrow iface): %d\n" (count "remote-origin-conflict");
  row "remote coverage leaks (narrow iface):   %d\n" (count "remote-coverage-leak");
  let s = Distributed.stats agent in
  row "remote agent: %d probes over %d checkpoint(s), zero state disclosed\n"
    s.Distributed.probes s.Distributed.checkpoints

let experiment_x2 () =
  section "X2" "operator-action validation (paper §5)";
  let router, _, _ = loaded_provider ~n:(min 4_000 table_prefixes) () in
  let seeds =
    List.map
      (fun prefix ->
        { Orchestrator.tag = "obs-" ^ Prefix.to_string prefix;
          peer = tr_customer_addr;
          prefix;
          route = customer_route ();
        })
      Threerouter.customer_prefixes
  in
  let vcfg =
    { Orchestrator.default_cfg with
      Orchestrator.exploration =
        { Orchestrator.default_exploration with
          Orchestrator.explorer =
            { Explorer.default_config with Explorer.max_runs = 160; max_depth = 96 };
        };
    }
  in
  row "%-42s %-14s %-7s %-11s %s\n" "proposed change" "verdict" "fixed" "introduced" "regressions";
  List.iter
    (fun (name, proposed) ->
      let c =
        Validate.config_change ~cfg:vcfg ~live:(Speakers.bird router)
          ~proposed:(Speaker.Config proposed) ~seeds ()
      in
      let verdict =
        match Validate.verdict c with
        | `Safe -> "SAFE"
        | `Ineffective -> "INEFFECTIVE"
        | `Harmful -> "HARMFUL"
      in
      row "%-42s %-14s %-7d %-11d %d\n" name verdict
        (List.length c.Validate.fixed)
        (List.length c.Validate.introduced)
        (List.length c.Validate.regressions))
    [ ("correct filter (pins the customer /22)", Threerouter.provider_config Threerouter.Correct);
      ("no change", Threerouter.provider_config Threerouter.Partially_correct);
      ( "import none (over-blocking)",
        Config_parser.parse
          (Printf.sprintf
             "router id 10.0.2.1; local as %d;\n\
              protocol bgp customer { neighbor 10.0.1.2 as %d; import none; export all; }\n\
              protocol bgp internet { neighbor 10.0.2.2 as %d; import all; export all; }\n\
              anycast [ 192.88.99.0/24 ];"
             Threerouter.provider_as Threerouter.customer_as Threerouter.internet_as) )
    ]

(* ------------------------------------------------------------------ *)

let () =
  Printf.printf "DiCE benchmark harness (%s scale)\n"
    (if full then "FULL paper" else "scaled-down; set DICE_BENCH_FULL=1 for 319,355 prefixes");
  experiment_f2 ();
  experiment_f1 ();
  experiment_e1 ();
  experiment_e2 ();
  experiment_e3 ();
  experiment_e4 ();
  experiment_a1 ();
  experiment_a2 ();
  experiment_p1 ();
  experiment_p2 ();
  experiment_p3 ();
  experiment_p4 ();
  experiment_p5 ();
  experiment_p6 ();
  experiment_p7 ();
  experiment_p8 ();
  experiment_p9 ();
  experiment_p10 ();
  experiment_x1 ();
  experiment_x2 ();
  micro_benchmarks ();
  print_newline ()
