type t = {
  mutable samples : float list;  (* reverse insertion order *)
  mutable n : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable mn : float;
  mutable mx : float;
}

let create () =
  { samples = []; n = 0; sum = 0.0; sumsq = 0.0; mn = Float.nan; mx = Float.nan }

let add t x =
  t.samples <- x :: t.samples;
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  t.sumsq <- t.sumsq +. (x *. x);
  if Float.is_nan t.mn || x < t.mn then t.mn <- x;
  if Float.is_nan t.mx || x > t.mx then t.mx <- x

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

let stddev t =
  if t.n < 2 then 0.0
  else
    let m = mean t in
    let var = (t.sumsq -. (float_of_int t.n *. m *. m)) /. float_of_int (t.n - 1) in
    if var < 0.0 then 0.0 else sqrt var

let min t = t.mn
let max t = t.mx

let percentile t p =
  if t.n = 0 then Float.nan
  else begin
    let a = Array.of_list t.samples in
    Array.sort compare a;
    (* Clamp instead of indexing out of bounds: p < 0, p > 100 and NaN all
       land on the nearest well-defined rank. *)
    let p = if Float.is_nan p then 0.0 else Float.max 0.0 (Float.min 100.0 p) in
    let rank = p /. 100.0 *. float_of_int (t.n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then a.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      (a.(lo) *. (1.0 -. frac)) +. (a.(hi) *. frac)
    end
  end

let median t = percentile t 50.0

let to_list t = List.rev t.samples

let summary t =
  if t.n = 0 then "n=0"
  else
    Printf.sprintf "n=%d mean=%.4g p50=%.4g p95=%.4g min=%.4g max=%.4g" t.n (mean t)
      (median t) (percentile t 95.0) t.mn t.mx
