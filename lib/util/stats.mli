(** Online and batch descriptive statistics used by the benchmark harness. *)

type t
(** An accumulator of float observations. Keeps all samples so percentiles
    are exact; experiments here are small enough for that to be fine. *)

val create : unit -> t

val add : t -> float -> unit
(** Record one observation. *)

val count : t -> int
val total : t -> float
val mean : t -> float
(** Mean of the observations; [0.] when empty. *)

val stddev : t -> float
(** Sample standard deviation; [0.] with fewer than two observations. *)

val min : t -> float
val max : t -> float
(** Extrema; [nan] when empty. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0,100\]], linear interpolation between
    closest ranks; [nan] when empty. Out-of-range and NaN [p] clamp to the
    nearest bound (so [percentile t 200.] is the maximum, not a crash). *)

val median : t -> float

val to_list : t -> float list
(** Observations in insertion order. *)

val summary : t -> string
(** One-line [n/mean/p50/p95/max] rendering for reports. *)
