(** XORP dialect: policy-statement terms in the curly-brace syntax.

    Documented quirks modeled here:
    - the policy framework {e accepts} routes no term matched, so an
      intent policy whose default is unstated lets unmatched routes
      through — the opposite of BIRD's fall-off-the-end reject and
      Quagga's implicit deny;
    - terms are stored in a name-keyed map and evaluated in
      {e lexicographic} name order, not file order. Rendered terms are
      named [t1..tN], so with eleven or more rules [t10] evaluates
      before [t2] and first-match can pick a different rule than the
      operator wrote. An explicit default renders as a matchless
      [zz_default] term, which sorts after every [tN]. *)

include Dice_bgp.Dialect.S
