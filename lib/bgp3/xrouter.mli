(** The XORP-flavored third speaker: the other half of the paper's
    heterogeneous triple (Cisco/XORP/BIRD behind one narrow interface).

    Like {!Dice_bgp2.Qrouter} it implements only what the SPEAKER
    interface requires, with its own internals everywhere the interface
    leaves room:

    - {b RIB layout}: balanced maps keyed by prefix (one RibIn/RibOut
      per peer plus the main table), in the spirit of XORP's
      plumbing-of-tables — not BIRD's shared prefix tries, not Zebra's
      hash buckets. Iteration is sorted, so snapshots are canonical by
      construction;
    - {b decision quirks}: {e deterministic-MED grouping} — candidates
      are grouped by neighboring AS, the best-MED candidate survives
      per group (missing MED = 0, the {e best}, the opposite default of
      the Quagga flavor's missing-as-worst), and only group survivors
      proceed to the remaining rules, so the outcome never depends on
      arrival order; and {e IGP-cost-before-peer-tie-breaks} — after
      eBGP-over-iBGP the router prefers the candidate with the lowest
      cost to its next hop (modeled deterministically as the numeric
      next-hop address) {e before} falling back to router id and peer
      address, where BIRD and Quagga go straight to the peer
      tie-breaks;
    - {b lazily materialized Adj-RIB-Out}: session establishment marks
      the peer up but builds no out-table; the RibOut materializes from
      the main table the first time a decision change must be pushed to
      that peer — XORP's background RibOut plumbing, collapsed to its
      observable effect;
    - {b sessions}: administratively established, like the Quagga
      flavor (the FSM is not part of the narrow interface).

    Checkpoints are eager linear images ("XRTRSNP1" magic) with the
    same framing conventions as the Quagga flavor's; the two formats
    are mutually alien on purpose — {!restore} rejects foreign magic.  *)

open Dice_inet
open Dice_bgp
open Dice_concolic

type t

val create : Config_types.t -> t
val config : t -> Config_types.t
val local_as : t -> int

val establish : t -> peer:Ipv4.t -> unit
(** Mark the session up. No initial-advertisement traffic is returned
    (session establishment is not exploration traffic), and — the lazy
    quirk — no Adj-RIB-Out is built yet.
    @raise Invalid_argument on an unconfigured peer. *)

val session_up : t -> peer:Ipv4.t -> bool

type import_outcome = {
  prefix : Prefix.t;
  accepted : bool;
  installed : bool;
  route : Route.t option;
  previous_best : Rib.Loc.entry option;
  outputs : (Ipv4.t * Msg.t) list;
}

val import_concolic : ctx:Engine.ctx -> t -> peer:Ipv4.t -> Croute.t -> import_outcome
(** One announcement through loop check, the shared (recording) policy
    interpreter, and the concrete XORP-flavored decision process.
    @raise Invalid_argument on an unconfigured peer. *)

val feed : ?ctx:Engine.ctx -> t -> peer:Ipv4.t -> Msg.t -> (Ipv4.t * Msg.t) list
(** Process one message: UPDATEs import/withdraw (treat-as-withdraw on
    malformed attributes), NOTIFICATION clears the session, OPEN and
    KEEPALIVE are ignored. *)

val table : t -> Rib.Loc.t
(** The main table materialized as the shared Loc-RIB view. *)

val best_route : t -> Prefix.t -> Rib.Loc.entry option
val learned_from : t -> peer:Ipv4.t -> Prefix.t -> bool
val updates_processed : t -> int

val snapshot : t -> bytes
(** Canonical eager image: equal states produce equal bytes. *)

val restore : Config_types.t -> bytes -> t
(** @raise Invalid_argument on foreign magic, truncation, or an image
    peer absent from [cfg]. *)

val clone : t -> t
(** An independent in-process copy sharing all route storage with the
    live router: the per-table maps are persistent, so the clone holds
    references and copies only the mutable per-peer cells —
    O(#peers). *)
