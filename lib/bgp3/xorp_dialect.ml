open Dice_inet
open Dice_bgp

let name = "xorp"

let quirks =
  [
    "the policy framework accepts routes no term matched: an unstated \
     policy default lets unmatched routes through";
    "terms evaluate in lexicographic name order, not file order: with \
     eleven or more rules t10 runs before t2";
  ]

(* ------------------------------------------------------------------ *)
(* Render                                                              *)
(* ------------------------------------------------------------------ *)

let pattern_str p = Format.asprintf "%a" Filter.pp_pattern p

let community_str c =
  Printf.sprintf "%d:%d" (Community.asn_part c) (Community.value_part c)

let render (intent : Intent.t) =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "# xorp dialect (rendered from intent)";
  line "policy {";
  List.iter
    (fun (set, pats) ->
      line "  network4_list %s {" set;
      List.iter (fun p -> line "    network %s;" (pattern_str p)) pats;
      line "  }")
    intent.Intent.prefix_sets;
  List.iter
    (fun (p : Intent.policy) ->
      line "  policy_statement %s {" p.policy_name;
      let term tname (matches : Intent.match_ list) (actions : Intent.action list)
          (decision : Intent.decision) =
        line "    term %s {" tname;
        if matches <> [] then begin
          line "      from {";
          List.iter
            (function
              | Intent.Prefixes set -> line "        network_list %s;" set
              | Intent.Transits n -> line "        as_path_contains %d;" n
              | Intent.Originated_by n -> line "        origin_as %d;" n
              | Intent.Path_longer_than n -> line "        path_length_gt %d;" n
              | Intent.Has_community c -> line "        community %s;" (community_str c))
            matches;
          line "      }"
        end;
        line "      then {";
        List.iter
          (function
            | Intent.Set_local_pref n -> line "        localpref %d;" n
            | Intent.Set_med n -> line "        med %d;" n
            | Intent.Add_community c -> line "        community_add %s;" (community_str c)
            | Intent.Delete_community c -> line "        community_del %s;" (community_str c)
            | Intent.Prepend n -> line "        prepend %d;" n)
          actions;
        line "        %s;" (match decision with Intent.Permit -> "accept" | Intent.Deny -> "reject");
        line "      }";
        line "    }"
      in
      List.iteri
        (fun i (r : Intent.rule) ->
          term (Printf.sprintf "t%d" (i + 1)) r.matches r.actions r.decision)
        p.rules;
      (* an unstated default renders as nothing: the policy framework's
         own default (accept) applies to routes no term matched *)
      (match p.default with
      | Some d -> term "zz_default" [] [] d
      | None -> ());
      line "  }")
    intent.policies;
  line "}";
  line "protocols {";
  line "  bgp {";
  line "    bgp_id %s;" (Ipv4.to_string intent.router_id);
  line "    local_as %d;" intent.local_as;
  List.iter
    (fun (s : Intent.session) ->
      line "    peer %s {" s.session_name;
      line "      neighbor %s;" (Ipv4.to_string s.neighbor);
      line "      as %d;" s.remote_as;
      let dir verb = function
        | Intent.Open -> line "      %s open;" verb
        | Intent.Block -> line "      %s block;" verb
        | Intent.Apply p -> line "      %s policy %s;" verb p
      in
      dir "import" s.import;
      dir "export" s.export;
      line "    }")
    intent.sessions;
  line "  }";
  if intent.statics <> [] then begin
    line "  static {";
    List.iter
      (fun (p, via) ->
        line "    route %s via %s;" (Prefix.to_string p) (Ipv4.to_string via))
      intent.statics;
    line "  }"
  end;
  line "}";
  List.iter (fun p -> line "anycast %s;" (Prefix.to_string p)) intent.anycast;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parse                                                               *)
(* ------------------------------------------------------------------ *)

module L = Config_lexer
module T = Token_stream

type raw_term = { conds : Filter.cond list; stmts : Filter.stmt list }

let parse_from st =
  let net_lists = ref [] in
  T.expect st L.LBRACE "'{'";
  let conds = ref [] in
  let rec go () =
    if T.peek st = L.RBRACE then T.advance st
    else begin
      (match T.next st with
      | L.IDENT "network_list" -> net_lists := T.ident st "network-list name" :: !net_lists
      | L.IDENT "as_path_contains" -> conds := Filter.Path_has (T.int_ st "AS number") :: !conds
      | L.IDENT "origin_as" ->
        conds :=
          Filter.Cmp (Filter.Ceq, Filter.Origin_as, Filter.Int_lit (T.int_ st "AS number"))
          :: !conds
      | L.IDENT "path_length_gt" ->
        conds :=
          Filter.Cmp (Filter.Cgt, Filter.Path_len, Filter.Int_lit (T.int_ st "length"))
          :: !conds
      | L.IDENT "community" -> conds := Filter.Has_community (T.community st) :: !conds
      | tk -> T.fail st (Printf.sprintf "unexpected %s in from block" (L.token_to_string tk)));
      T.expect st L.SEMI "';'";
      go ()
    end
  in
  go ();
  (List.rev !net_lists, List.rev !conds)

let parse_then st =
  T.expect st L.LBRACE "'{'";
  let stmts = ref [] in
  let verdict = ref None in
  let rec go () =
    if T.peek st = L.RBRACE then T.advance st
    else begin
      (match T.next st with
      | L.IDENT "localpref" ->
        stmts := Filter.Set_local_pref (Filter.Int_lit (T.int_ st "value")) :: !stmts
      | L.IDENT "med" -> stmts := Filter.Set_med (Filter.Int_lit (T.int_ st "value")) :: !stmts
      | L.IDENT "community_add" -> stmts := Filter.Add_community (T.community st) :: !stmts
      | L.IDENT "community_del" -> stmts := Filter.Delete_community (T.community st) :: !stmts
      | L.IDENT "prepend" -> stmts := Filter.Prepend (T.int_ st "prepend count") :: !stmts
      | L.IDENT "accept" -> verdict := Some Filter.Accept
      | L.IDENT "reject" -> verdict := Some Filter.Reject
      | tk -> T.fail st (Printf.sprintf "unexpected %s in then block" (L.token_to_string tk)));
      T.expect st L.SEMI "';'";
      go ()
    end
  in
  go ();
  match !verdict with
  | Some v -> List.rev !stmts @ [ v ]
  | None -> T.fail st "term has no accept/reject"

let parse_policy_statement st ~net_lists =
  let pname = T.ident st "policy-statement name" in
  T.expect st L.LBRACE "'{'";
  let terms = ref [] in
  let rec go () =
    if T.peek st = L.RBRACE then T.advance st
    else begin
      T.expect_ident st "term";
      let tname = T.ident st "term name" in
      T.expect st L.LBRACE "'{'";
      let froms = ref ([], []) in
      let thens = ref None in
      let rec term_items () =
        if T.peek st = L.RBRACE then T.advance st
        else begin
          (match T.next st with
          | L.IDENT "from" -> froms := parse_from st
          | L.IDENT "then" -> thens := Some (parse_then st)
          | tk -> T.fail st (Printf.sprintf "unexpected %s in term" (L.token_to_string tk)));
          term_items ()
        end
      in
      term_items ();
      let lists, conds = !froms in
      let conds =
        List.map
          (fun l ->
            match List.assoc_opt l net_lists with
            | Some pats -> Filter.Match_net pats
            | None -> T.fail st (Printf.sprintf "unknown network4_list %S" l))
          lists
        @ conds
      in
      (match !thens with
      | Some stmts -> terms := (tname, { conds; stmts }) :: !terms
      | None -> T.fail st (Printf.sprintf "term %s has no then block" tname));
      go ()
    end
  in
  go ();
  (* XORP quirk: terms live in a name-keyed map, so evaluation order is
     lexicographic in the term name, whatever order the file wrote. *)
  let terms = List.sort (fun (a, _) (b, _) -> String.compare a b) (List.rev !terms) in
  let rec body = function
    | [] -> [ Filter.Accept ] (* XORP quirk: unmatched routes pass *)
    | (_, { conds = []; stmts }) :: _ -> stmts
    | (_, { conds = c :: cs; stmts }) :: rest ->
      let cond = List.fold_left (fun acc c -> Filter.And (acc, c)) c cs in
      Filter.mk_if ~filter_name:pname cond stmts [] :: body rest
  in
  { Filter.name = pname; body = body terms }

let parse_policy_block st =
  T.expect st L.LBRACE "'{'";
  let net_lists = ref [] in
  let statements = ref [] in
  let rec go () =
    if T.peek st = L.RBRACE then T.advance st
    else begin
      (match T.next st with
      | L.IDENT "network4_list" ->
        let lname = T.ident st "network-list name" in
        T.expect st L.LBRACE "'{'";
        let pats = ref [] in
        let rec nets () =
          if T.peek st = L.RBRACE then T.advance st
          else begin
            T.expect_ident st "network";
            pats := T.pattern st :: !pats;
            T.expect st L.SEMI "';'";
            nets ()
          end
        in
        nets ();
        net_lists := (lname, List.rev !pats) :: !net_lists
      | L.IDENT "policy_statement" ->
        statements := parse_policy_statement st ~net_lists:!net_lists :: !statements
      | tk -> T.fail st (Printf.sprintf "unexpected %s in policy block" (L.token_to_string tk)));
      go ()
    end
  in
  go ();
  List.rev !statements

let parse_peer st ~filters =
  let pname = T.ident st "peer name" in
  T.expect st L.LBRACE "'{'";
  let neighbor = ref None in
  let remote_as = ref None in
  let import = ref Config_types.All in
  let export = ref Config_types.All in
  let policy_of () =
    match T.next st with
    | L.IDENT "open" -> Config_types.All
    | L.IDENT "block" -> Config_types.Nothing
    | L.IDENT "policy" -> begin
      let n = T.ident st "policy name" in
      match List.find_opt (fun (f : Filter.t) -> f.Filter.name = n) filters with
      | Some f -> Config_types.Use_filter f
      | None -> T.fail st (Printf.sprintf "unknown policy %S" n)
    end
    | tk -> T.fail st (Printf.sprintf "expected open/block/policy, got %s" (L.token_to_string tk))
  in
  let rec go () =
    if T.peek st = L.RBRACE then T.advance st
    else begin
      (match T.next st with
      | L.IDENT "neighbor" -> neighbor := Some (T.ip st "neighbor address")
      | L.IDENT "as" -> remote_as := Some (T.int_ st "AS number")
      | L.IDENT "import" -> import := policy_of ()
      | L.IDENT "export" -> export := policy_of ()
      | tk -> T.fail st (Printf.sprintf "unexpected %s in peer" (L.token_to_string tk)));
      T.expect st L.SEMI "';'";
      go ()
    end
  in
  go ();
  match (!neighbor, !remote_as) with
  | Some neighbor, Some remote_as ->
    {
      (Config_types.default_peer ~name:pname ~neighbor ~remote_as) with
      Config_types.import_policy = !import;
      export_policy = !export;
    }
  | _ -> T.fail st (Printf.sprintf "peer %s: missing neighbor or as" pname)

let parse src =
  let st = T.of_string src in
  let filters = ref [] in
  let peers = ref [] in
  let statics = ref [] in
  let anycast = ref [] in
  let router_id = ref None in
  let local_as = ref None in
  let rec bgp_items () =
    if T.peek st = L.RBRACE then T.advance st
    else begin
      (match T.next st with
      | L.IDENT "bgp_id" ->
        router_id := Some (T.ip st "router id");
        T.expect st L.SEMI "';'"
      | L.IDENT "local_as" ->
        local_as := Some (T.int_ st "AS number");
        T.expect st L.SEMI "';'"
      | L.IDENT "peer" -> peers := parse_peer st ~filters:!filters :: !peers
      | tk -> T.fail st (Printf.sprintf "unexpected %s in bgp block" (L.token_to_string tk)));
      bgp_items ()
    end
  in
  let rec static_items () =
    if T.peek st = L.RBRACE then T.advance st
    else begin
      T.expect_ident st "route";
      let p = T.prefix st "static route prefix" in
      T.expect_ident st "via";
      let via = T.ip st "next hop" in
      T.expect st L.SEMI "';'";
      statics := (p, via) :: !statics;
      static_items ()
    end
  in
  let rec protocols () =
    if T.peek st = L.RBRACE then T.advance st
    else begin
      (match T.next st with
      | L.IDENT "bgp" ->
        T.expect st L.LBRACE "'{'";
        bgp_items ()
      | L.IDENT "static" ->
        T.expect st L.LBRACE "'{'";
        static_items ()
      | tk -> T.fail st (Printf.sprintf "unexpected %s in protocols" (L.token_to_string tk)));
      protocols ()
    end
  in
  let rec top () =
    if T.at_eof st then ()
    else begin
      (match T.next st with
      | L.IDENT "policy" -> filters := !filters @ parse_policy_block st
      | L.IDENT "protocols" ->
        T.expect st L.LBRACE "'{'";
        protocols ()
      | L.IDENT "anycast" ->
        anycast := T.prefix st "anycast prefix" :: !anycast;
        T.expect st L.SEMI "';'"
      | tk -> T.fail st (Printf.sprintf "unexpected %s at top level" (L.token_to_string tk)));
      top ()
    end
  in
  top ();
  match (!router_id, !local_as) with
  | Some router_id, Some local_as ->
    Config_types.make ~router_id ~local_as ~peers:(List.rev !peers)
      ~static_routes:(List.rev !statics) ~filters:!filters
      ~anycast:(List.rev !anycast) ()
  | None, _ -> T.fail st "missing 'bgp_id'"
  | _, None -> T.fail st "missing 'local_as'"
