open Dice_inet
open Dice_bgp
open Dice_concolic
module Wbuf = Dice_wire.Wbuf
module Rbuf = Dice_wire.Rbuf

(* XORP-style state: one balanced map per table (RibIn/RibOut per peer,
   plus the main table), plumbed together by the decision process.
   Map iteration is sorted, so every serialization is canonical without
   an explicit sort pass. *)
module Pmap = Map.Make (struct
  type t = Prefix.t

  let compare = Prefix.compare
end)

type peer_st = {
  pcfg : Config_types.peer_cfg;
  mutable up : bool;
  mutable rin : Route.t Pmap.t;
  mutable rout : Route.t Pmap.t option;
      (* [None] until the first decision change must reach this peer —
         the lazily materialized Adj-RIB-Out *)
}

type t = {
  cfg : Config_types.t;
  peers : (Ipv4.t * peer_st) list;  (* sorted by address, fixed at create *)
  mutable main : Rib.Loc.entry Pmap.t;
  statics : (Prefix.t * Rib.Loc.entry) list;
  mutable updates : int;
}

let config t = t.cfg
let local_as t = t.cfg.Config_types.local_as
let updates_processed t = t.updates

let create cfg =
  let statics =
    List.map
      (fun (p, via) ->
        ( p,
          {
            Rib.Loc.route =
              Route.make ~origin:Attr.Igp ~as_path:Asn.Path.empty ~next_hop:via
                ~local_pref:(Some 100) ();
            src = Route.static_src;
          } ))
      cfg.Config_types.static_routes
  in
  let peers =
    List.map
      (fun pcfg ->
        (pcfg.Config_types.neighbor, { pcfg; up = false; rin = Pmap.empty; rout = None }))
      cfg.Config_types.peers
    |> List.sort (fun (a, _) (b, _) -> Ipv4.compare a b)
  in
  let main =
    List.fold_left (fun acc (p, e) -> Pmap.add p e acc) Pmap.empty statics
  in
  { cfg; peers; main; statics; updates = 0 }

let peer_exn t addr =
  match List.assoc_opt addr t.peers with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Xrouter: unknown peer %s" (Ipv4.to_string addr))

let session_up t ~peer =
  match List.assoc_opt peer t.peers with Some p -> p.up | None -> false

(* ------------------------------------------------------------------ *)
(* Decision process — the XORP flavor.                                 *)
(*                                                                     *)
(* Candidates are first grouped by neighboring AS and only the best    *)
(* candidate of each group survives (deterministic MED: the outcome    *)
(* never depends on arrival order; missing MED counts as 0, the BEST — *)
(* the opposite default of the Quagga flavor). Group survivors then    *)
(* compete without MED: local-pref, locally-originated, path length,   *)
(* ORIGIN, eBGP-over-iBGP, IGP cost to the next hop (modeled as the    *)
(* numeric next-hop address: lower is closer), and only then the peer  *)
(* tie-breaks (router id, then address) that BIRD and Quagga reach     *)
(* directly.                                                           *)
(* ------------------------------------------------------------------ *)

let missing_med_best = 0

let residual ~with_med ((ra, sa) : Route.t * Route.src) ((rb, sb) : Route.t * Route.src) =
  let lp r = Option.value r.Route.local_pref ~default:100 in
  let c = Int.compare (lp rb) (lp ra) in
  if c <> 0 then c
  else begin
    let c = Bool.compare (sb = Route.static_src) (sa = Route.static_src) in
    if c <> 0 then c
    else begin
      let c =
        Int.compare (Asn.Path.length ra.Route.as_path) (Asn.Path.length rb.Route.as_path)
      in
      if c <> 0 then c
      else begin
        let c =
          Int.compare (Attr.origin_code ra.Route.origin) (Attr.origin_code rb.Route.origin)
        in
        if c <> 0 then c
        else begin
          let med r = Option.value r.Route.med ~default:missing_med_best in
          let c = if with_med then Int.compare (med ra) (med rb) else 0 in
          if c <> 0 then c
          else begin
            let c = Bool.compare sb.Route.ebgp sa.Route.ebgp in
            if c <> 0 then c
            else begin
              let c = Ipv4.compare ra.Route.next_hop rb.Route.next_hop in
              if c <> 0 then c
              else begin
                let c = Ipv4.compare sa.Route.peer_bgp_id sb.Route.peer_bgp_id in
                if c <> 0 then c else Ipv4.compare sa.Route.peer_addr sb.Route.peer_addr
              end
            end
          end
        end
      end
    end
  end

let med_group ((r, s) : Route.t * Route.src) =
  if s = Route.static_src then -1
  else Option.value (Route.neighbor_as r) ~default:(-1)

let xcompare_group = residual ~with_med:true
let xcompare_winners = residual ~with_med:false

let src_of_peer t (p : peer_st) =
  {
    Route.peer_addr = p.pcfg.Config_types.neighbor;
    peer_asn = p.pcfg.Config_types.remote_as;
    peer_bgp_id = p.pcfg.Config_types.neighbor;
    ebgp = p.pcfg.Config_types.remote_as <> t.cfg.Config_types.local_as;
  }

let candidates t prefix =
  let from_static =
    match List.assoc_opt prefix t.statics with
    | Some e -> [ (e.Rib.Loc.route, e.Rib.Loc.src) ]
    | None -> []
  in
  List.fold_left
    (fun acc (_, p) ->
      match Pmap.find_opt prefix p.rin with
      | Some r -> (r, src_of_peer t p) :: acc
      | None -> acc)
    from_static t.peers

let decide t prefix =
  let cands = candidates t prefix in
  (* deterministic-MED grouping: one survivor per neighboring AS *)
  let groups = Hashtbl.create 4 in
  List.iter
    (fun c ->
      let g = med_group c in
      match Hashtbl.find_opt groups g with
      | Some best when xcompare_group best c <= 0 -> ()
      | Some _ | None -> Hashtbl.replace groups g c)
    cands;
  let winners = Hashtbl.fold (fun _ c acc -> c :: acc) groups [] in
  match List.sort xcompare_winners winners with
  | (route, src) :: _ -> Some { Rib.Loc.route; src }
  | [] -> None

(* ------------------------------------------------------------------ *)
(* Export path: standard BGP semantics (split horizon, NO_EXPORT /     *)
(* NO_ADVERTISE, eBGP prepend + next-hop-self + attribute strip), over *)
(* a lazily materialized RibOut.                                       *)
(* ------------------------------------------------------------------ *)

let export_view t (dst : peer_st) (route : Route.t) =
  let ebgp = dst.pcfg.Config_types.remote_as <> t.cfg.Config_types.local_as in
  if ebgp then
    {
      route with
      Route.as_path = Asn.Path.prepend t.cfg.Config_types.local_as route.Route.as_path;
      next_hop = t.cfg.Config_types.router_id;
      local_pref = None;
      med = None;
    }
  else route

let export_blocked (dst : peer_st) local_as (route : Route.t) (src : Route.src) =
  let ebgp = dst.pcfg.Config_types.remote_as <> local_as in
  src.Route.peer_addr = dst.pcfg.Config_types.neighbor (* split horizon *)
  || (ebgp && Route.has_community route Community.no_export)
  || Route.has_community route Community.no_advertise

(* What the export policy would put in [dst]'s RibOut for one main-table
   entry, or [None] if blocked/filtered. *)
let advert_for ?(ctx = Engine.null ()) t (dst : peer_st) prefix { Rib.Loc.route; src } =
  if export_blocked dst t.cfg.Config_types.local_as route src then None
  else begin
    let view = export_view t dst route in
    match
      Filter_interp.run_policy ctx ~source_as:src.Route.peer_asn
        ~local_as:t.cfg.Config_types.local_as dst.pcfg.Config_types.export_policy
        (Croute.of_route prefix view)
    with
    | Filter_interp.Accepted cr ->
      let _, r = Croute.to_route cr in
      Some r
    | Filter_interp.Rejected -> None
  end

(* The lazy quirk: the first time a decision change must reach [p], the
   whole RibOut materializes from the main table as it stood before the
   change — XORP's background RibOut plumbing, collapsed to the moment
   it becomes observable. The materialized entries were never emitted
   as messages: they stand for the initial table advertisement, which
   is session-establishment traffic the narrow interface never sees. *)
let ensure_rout t (p : peer_st) =
  if p.up && p.rout = None then
    p.rout <-
      Some
        (Pmap.fold
           (fun prefix e acc ->
             match advert_for t p prefix e with
             | Some r -> Pmap.add prefix r acc
             | None -> acc)
           t.main Pmap.empty)

let export_to ?(ctx = Engine.null ()) t (p : peer_st) prefix best =
  if not p.up then []
  else begin
    let rout = Option.value p.rout ~default:Pmap.empty in
    let previously = Pmap.find_opt prefix rout in
    let advert =
      match best with
      | None -> None
      | Some entry -> advert_for ~ctx t p prefix entry
    in
    match (previously, advert) with
    | None, None -> []
    | Some old, Some r when Route.equal old r -> []
    | _, Some r ->
      p.rout <- Some (Pmap.add prefix r rout);
      [ ( p.pcfg.Config_types.neighbor,
          Msg.Update { withdrawn = []; attrs = Route.to_attrs r; nlri = [ prefix ] } );
      ]
    | Some _, None ->
      p.rout <- Some (Pmap.remove prefix rout);
      [ ( p.pcfg.Config_types.neighbor,
          Msg.Update { withdrawn = [ prefix ]; attrs = []; nlri = [] } );
      ]
  end

let reconsider ?ctx t prefix =
  let old_best = Pmap.find_opt prefix t.main in
  let new_best = decide t prefix in
  let changed =
    match (old_best, new_best) with
    | None, None -> false
    | Some a, Some b -> not (Route.equal a.Rib.Loc.route b.Rib.Loc.route && a.src = b.src)
    | None, Some _ | Some _, None -> true
  in
  if changed then begin
    (* materialize pending RibOuts against the pre-change table, then
       install and push the diff *)
    List.iter (fun (_, p) -> ensure_rout t p) t.peers;
    (match new_best with
    | Some e -> t.main <- Pmap.add prefix e t.main
    | None -> t.main <- Pmap.remove prefix t.main);
    List.concat_map (fun (_, p) -> export_to ?ctx t p prefix new_best) t.peers
  end
  else []

(* ------------------------------------------------------------------ *)
(* Sessions: administratively established, no FSM.                     *)
(* ------------------------------------------------------------------ *)

let establish t ~peer =
  let p = peer_exn t peer in
  if not p.up then p.up <- true (* RibOut stays unmaterialized: the lazy quirk *)

let session_clear ?ctx t (p : peer_st) =
  let prefixes = Pmap.fold (fun prefix _ acc -> prefix :: acc) p.rin [] in
  p.up <- false;
  p.rin <- Pmap.empty;
  p.rout <- None;
  List.concat_map (fun prefix -> reconsider ?ctx t prefix) prefixes

(* ------------------------------------------------------------------ *)
(* Import path                                                         *)
(* ------------------------------------------------------------------ *)

type import_outcome = {
  prefix : Prefix.t;
  accepted : bool;
  installed : bool;
  route : Route.t option;
  previous_best : Rib.Loc.entry option;
  outputs : (Ipv4.t * Msg.t) list;
}

let import_concolic ~ctx t ~peer croute =
  let p = peer_exn t peer in
  t.updates <- t.updates + 1;
  let rejected () =
    {
      prefix = Croute.prefix_of croute;
      accepted = false;
      installed = false;
      route = None;
      previous_best = Pmap.find_opt (Croute.prefix_of croute) t.main;
      outputs = [];
    }
  in
  if Asn.Path.contains croute.Croute.as_path t.cfg.Config_types.local_as then rejected ()
  else begin
    match
      Filter_interp.run_policy ctx ~source_as:p.pcfg.Config_types.remote_as
        ~local_as:t.cfg.Config_types.local_as p.pcfg.Config_types.import_policy croute
    with
    | Filter_interp.Rejected -> rejected ()
    | Filter_interp.Accepted cr ->
      let cr =
        if cr.Croute.has_local_pref then cr
        else Croute.with_local_pref cr (Cval.concrete ~width:32 100L)
      in
      let prefix, route = Croute.to_route cr in
      (* past the shared policy interpreter the pipeline runs concretely,
         as in a federated peer DiCE cannot instrument *)
      let previous_best = Pmap.find_opt prefix t.main in
      p.rin <- Pmap.add prefix route p.rin;
      let outputs = reconsider ~ctx t prefix in
      let installed =
        match Pmap.find_opt prefix t.main with
        | Some e -> e.Rib.Loc.src.Route.peer_addr = peer && Route.equal e.Rib.Loc.route route
        | None -> false
      in
      { prefix; accepted = true; installed; route = Some route; previous_best; outputs }
  end

let process_update ~ctx t ~peer (u : Msg.update) =
  let p = peer_exn t peer in
  let outs = ref [] in
  let withdraw prefix =
    if Pmap.mem prefix p.rin then begin
      p.rin <- Pmap.remove prefix p.rin;
      outs := !outs @ reconsider ~ctx t prefix
    end
  in
  List.iter withdraw u.Msg.withdrawn;
  if u.Msg.nlri <> [] then begin
    match Route.of_attrs u.Msg.attrs with
    | Error _ -> List.iter withdraw u.Msg.nlri (* treat-as-withdraw *)
    | Ok route ->
      List.iter
        (fun prefix ->
          let outcome = import_concolic ~ctx t ~peer (Croute.of_route prefix route) in
          outs := !outs @ outcome.outputs;
          if not outcome.accepted then withdraw prefix)
        u.Msg.nlri
  end
  else t.updates <- t.updates + if u.Msg.withdrawn <> [] then 1 else 0;
  !outs

let feed ?(ctx = Engine.null ()) t ~peer msg =
  let p = peer_exn t peer in
  match msg with
  | Msg.Update u -> if p.up then process_update ~ctx t ~peer u else []
  | Msg.Notification _ ->
    t.updates <- t.updates + 1;
    session_clear ~ctx t p
  | Msg.Open _ | Msg.Keepalive -> []

(* ------------------------------------------------------------------ *)
(* State views                                                         *)
(* ------------------------------------------------------------------ *)

let table t = Pmap.fold Rib.Loc.set t.main Rib.Loc.empty
let best_route t prefix = Pmap.find_opt prefix t.main

let learned_from t ~peer prefix =
  match List.assoc_opt peer t.peers with
  | Some p -> Pmap.mem prefix p.rin
  | None -> false

(* ------------------------------------------------------------------ *)
(* Checkpointing: an eager linear image ("XRTRSNP1" magic), the same   *)
(* framing conventions as the Quagga flavor's but a mutually alien     *)
(* layout:                                                             *)
(*   u32 updates                                                       *)
(*   u16 #peers, each (map order = sorted by address):                 *)
(*     u32 address | u8 flags (bit0 up, bit1 RibOut materialized)      *)
(*     u16 #rin entries, each: prefix (u8 len, u32 network)            *)
(*       | u16 attr-bytes | encoded path attributes                    *)
(*     if materialized: u16 #rout entries, same shape                  *)
(*   u16 #main-table entries, each: prefix | attrs | u32 src address   *)
(*     | u32 src ASN | u32 src router id | u8 ebgp                     *)
(* ------------------------------------------------------------------ *)

let magic = "XRTRSNP1"

let put_prefix b prefix =
  Wbuf.u8 b (Prefix.len prefix);
  Wbuf.u32 b (Prefix.network prefix)

let get_prefix r =
  let len = Rbuf.u8 ~what:"prefix length" r in
  let network = Rbuf.u32 ~what:"prefix network" r in
  Prefix.make network len

let put_route b (route : Route.t) =
  let len_at = Wbuf.mark b in
  Wbuf.u16 b 0;
  Attr.encode_list ~as4:true b (Route.to_attrs route);
  Wbuf.patch_u16 b len_at (Wbuf.length b - len_at - 2)

let get_route r =
  let len = Rbuf.u16 ~what:"attr region length" r in
  let region = Rbuf.sub r len in
  match Attr.decode_list ~as4:true region with
  | Error e -> invalid_arg ("Xrouter.restore: bad attributes: " ^ Attr.error_to_string e)
  | Ok attrs -> begin
    match Route.of_attrs attrs with
    | Error e -> invalid_arg ("Xrouter.restore: bad route: " ^ Attr.error_to_string e)
    | Ok route -> route
  end

let put_adj b adj =
  Wbuf.u16 b (Pmap.cardinal adj);
  Pmap.iter
    (fun prefix route ->
      put_prefix b prefix;
      put_route b route)
    adj

let get_adj r =
  let n = Rbuf.u16 ~what:"adj entry count" r in
  let adj = ref Pmap.empty in
  for _ = 1 to n do
    let prefix = get_prefix r in
    adj := Pmap.add prefix (get_route r) !adj
  done;
  !adj

let snapshot t =
  let b = Wbuf.create ~capacity:1024 () in
  Wbuf.string b magic;
  Wbuf.u32 b t.updates;
  Wbuf.u16 b (List.length t.peers);
  List.iter
    (fun (addr, p) ->
      Wbuf.u32 b addr;
      Wbuf.u8 b ((if p.up then 1 else 0) lor (if p.rout <> None then 2 else 0));
      put_adj b p.rin;
      match p.rout with Some rout -> put_adj b rout | None -> ())
    t.peers;
  Wbuf.u16 b (Pmap.cardinal t.main);
  Pmap.iter
    (fun prefix (e : Rib.Loc.entry) ->
      put_prefix b prefix;
      put_route b e.Rib.Loc.route;
      Wbuf.u32 b e.Rib.Loc.src.Route.peer_addr;
      Wbuf.u32 b e.Rib.Loc.src.Route.peer_asn;
      Wbuf.u32 b e.Rib.Loc.src.Route.peer_bgp_id;
      Wbuf.u8 b (if e.Rib.Loc.src.Route.ebgp then 1 else 0))
    t.main;
  Wbuf.contents b

let restore cfg image =
  try
    let r = Rbuf.of_bytes image in
    let m = Bytes.to_string (Rbuf.take ~what:"magic" r 8) in
    if m <> magic then invalid_arg "Xrouter.restore: not an Xrouter image";
    let t = create cfg in
    t.main <- Pmap.empty;
    t.updates <- Rbuf.u32 ~what:"updates" r;
    let n_peers = Rbuf.u16 ~what:"peer count" r in
    for _ = 1 to n_peers do
      let addr = Rbuf.u32 ~what:"peer address" r in
      let p =
        match List.assoc_opt addr t.peers with
        | Some p -> p
        | None ->
          invalid_arg
            (Printf.sprintf "Xrouter.restore: image peer %s absent from config"
               (Ipv4.to_string addr))
      in
      let flags = Rbuf.u8 ~what:"peer flags" r in
      p.up <- flags land 1 = 1;
      p.rin <- get_adj r;
      p.rout <- (if flags land 2 = 2 then Some (get_adj r) else None)
    done;
    let n_main = Rbuf.u16 ~what:"table entry count" r in
    let main = ref Pmap.empty in
    for _ = 1 to n_main do
      let prefix = get_prefix r in
      let route = get_route r in
      let peer_addr = Rbuf.u32 ~what:"src address" r in
      let peer_asn = Rbuf.u32 ~what:"src asn" r in
      let peer_bgp_id = Rbuf.u32 ~what:"src router id" r in
      let ebgp = Rbuf.u8 ~what:"src ebgp flag" r = 1 in
      main :=
        Pmap.add prefix
          { Rib.Loc.route; src = { Route.peer_addr; peer_asn; peer_bgp_id; ebgp } }
          !main
    done;
    t.main <- !main;
    t
  with Rbuf.Truncated what -> invalid_arg ("Xrouter.restore: truncated image: " ^ what)

(* An independent in-process copy. The per-table balanced maps are
   persistent, so the clone holds references and copies only the mutable
   per-peer cells — O(#peers), all route storage physically shared. *)
let clone t =
  let peers =
    List.map
      (fun (addr, p) -> (addr, { pcfg = p.pcfg; up = p.up; rin = p.rin; rout = p.rout }))
      t.peers
  in
  { cfg = t.cfg; peers; main = t.main; statics = t.statics; updates = t.updates }
