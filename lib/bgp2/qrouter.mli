(** A compact Quagga-flavored BGP speaker — the deliberately heterogeneous
    second implementation behind the core's SPEAKER interface.

    The paper's evaluation federates BIRD with Cisco- and XORP-style
    peers; DiCE never instruments those, it only probes them through the
    narrow interface. [Qrouter] plays that role in this reproduction. It
    shares the wire vocabulary with [Dice_bgp] ([Msg], [Route], the
    policy interpreter) — as real implementations share the BGP RFCs —
    but is a different program:

    {b Different RIB layout.} Hash tables keyed by prefix for the
    per-peer RIBs and one flat hash table for the main table, in the
    Zebra tradition of per-prefix [bgp_node] buckets — not the
    persistent maps and stable-slot tries of [Dice_bgp.Router]. The
    [loc_rib] view required by SPEAKER is materialized on demand, O(n).

    {b Different decision tie-breaking order.} After local preference
    and local origination, Qrouter compares {e ORIGIN before AS-path
    length}, and breaks final ties on {e peer address before router
    id} — both swapped relative to [Dice_bgp.Decision]. Its MED quirks
    also differ: MED is always comparable across neighbor ASes and a
    missing MED ranks {e worst}, where BIRD defaults to same-AS-only
    comparison with missing-as-best. Identical inputs can therefore
    yield different best routes — exactly the cross-implementation
    divergence class the differential checker exists to surface.

    {b Own config quirks.} Sessions are administratively established
    ([establish] flips them up and primes the initial advertisement;
    there is no FSM) — OPEN and KEEPALIVE are accepted and ignored, a
    NOTIFICATION administratively clears the session. The import
    pipeline is not concolically instrumented beyond the shared policy
    interpreter: the decision process runs concretely, as it would in a
    closed-source federated peer. *)

open Dice_inet
open Dice_bgp
open Dice_concolic

type t

val create : Config_types.t -> t
(** Static routes enter the main table immediately, as locally
    originated (they win every tie-break against learned routes). *)

val config : t -> Config_types.t
val local_as : t -> int

(* ------------------------------------------------------------------ *)
(* Sessions *)

val establish : t -> peer:Ipv4.t -> unit
(** Administratively bring the session with [peer] up and advertise the
    current table to it (priming the Adj-RIB-Out; the advertisement
    itself is not returned — the session is assumed synchronized, as
    after a real initial exchange). Idempotent.
    @raise Invalid_argument if [peer] is not configured. *)

val session_up : t -> peer:Ipv4.t -> bool

val feed : ?ctx:Engine.ctx -> t -> peer:Ipv4.t -> Msg.t -> (Ipv4.t * Msg.t) list
(** Process one received message; returns the UPDATEs Qrouter would send
    in response. UPDATE on a down session is ignored; OPEN and KEEPALIVE
    are ignored; NOTIFICATION clears the session (withdrawing its routes
    from other peers). *)

(* ------------------------------------------------------------------ *)
(* Import path *)

type import_outcome = {
  prefix : Prefix.t;
  accepted : bool;
  installed : bool;
  route : Route.t option;
  previous_best : Rib.Loc.entry option;
  outputs : (Ipv4.t * Msg.t) list;
}
(** Structurally the same record as [Dice_core.Speaker.import_outcome];
    spelled out here because this library sits {e below} the core (the
    adapter in the core's speaker registry converts field by field). *)

val import_concolic : ctx:Engine.ctx -> t -> peer:Ipv4.t -> Croute.t -> import_outcome
(** One announcement through loop check, import policy (the shared,
    recording interpreter) and the concrete Quagga decision process. *)

(* ------------------------------------------------------------------ *)
(* State views *)

val table : t -> Rib.Loc.t
(** The main table as the shared view type, materialized on demand. *)

val best_route : t -> Prefix.t -> Rib.Loc.entry option
val learned_from : t -> peer:Ipv4.t -> Prefix.t -> bool
val updates_processed : t -> int

(* ------------------------------------------------------------------ *)
(* Checkpointing *)

val snapshot : t -> bytes
(** Serialize sessions, per-peer RIBs and the main table. Qrouter's own
    linear format — not interchangeable with [Dice_bgp.Router] images. *)

val restore : Config_types.t -> bytes -> t
(** @raise Invalid_argument on a corrupt or alien image, or one
    mentioning peers absent from [cfg]. *)

val clone : t -> t
(** An independent in-process copy of the live router. Quagga-style
    state is mutable hash tables, so buckets are copied eagerly (route
    values stay shared) — no serialization, unlike {!snapshot} +
    {!restore}. *)
