open Dice_inet
open Dice_bgp
open Dice_concolic
module Wbuf = Dice_wire.Wbuf
module Rbuf = Dice_wire.Rbuf

(* Zebra-style state: hash tables keyed by prefix, one bucket per table.
   No persistent structures, no slot bookkeeping — snapshots serialize
   eagerly (see the Checkpointing section). *)
type peer_st = {
  pcfg : Config_types.peer_cfg;
  mutable up : bool;
  rin : (Prefix.t, Route.t) Hashtbl.t;
  rout : (Prefix.t, Route.t) Hashtbl.t;
}

type t = {
  cfg : Config_types.t;
  peers : (Ipv4.t, peer_st) Hashtbl.t;
  main : (Prefix.t, Rib.Loc.entry) Hashtbl.t;
  statics : (Prefix.t * Rib.Loc.entry) list;
  mutable updates : int;
}

let config t = t.cfg
let local_as t = t.cfg.Config_types.local_as
let updates_processed t = t.updates

let create cfg =
  let statics =
    List.map
      (fun (p, via) ->
        ( p,
          {
            Rib.Loc.route =
              Route.make ~origin:Attr.Igp ~as_path:Asn.Path.empty ~next_hop:via
                ~local_pref:(Some 100) ();
            src = Route.static_src;
          } ))
      cfg.Config_types.static_routes
  in
  let t =
    { cfg; peers = Hashtbl.create 8; main = Hashtbl.create 64; statics; updates = 0 }
  in
  List.iter (fun (p, e) -> Hashtbl.replace t.main p e) statics;
  List.iter
    (fun pcfg ->
      Hashtbl.replace t.peers pcfg.Config_types.neighbor
        { pcfg; up = false; rin = Hashtbl.create 16; rout = Hashtbl.create 16 })
    cfg.Config_types.peers;
  t

let peer_exn t addr =
  match Hashtbl.find_opt t.peers addr with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Qrouter: unknown peer %s" (Ipv4.to_string addr))

let session_up t ~peer =
  match Hashtbl.find_opt t.peers peer with Some p -> p.up | None -> false

(* ------------------------------------------------------------------ *)
(* Decision process — the heterogeneity lives here.                    *)
(*                                                                     *)
(* Order: local-pref, locally-originated, ORIGIN, AS-path length, MED  *)
(* (always comparable, missing = worst), eBGP over iBGP, peer address, *)
(* router id. Relative to Dice_bgp.Decision: ORIGIN and path length    *)
(* are swapped, the final two tie-breaks are swapped, and the MED      *)
(* quirks are the opposite defaults.                                   *)
(* ------------------------------------------------------------------ *)

let missing_med_worst = 0xFFFF_FFFF

let qcompare ((ra, sa) : Route.t * Route.src) ((rb, sb) : Route.t * Route.src) =
  let lp r = Option.value r.Route.local_pref ~default:100 in
  let c = Int.compare (lp rb) (lp ra) in
  if c <> 0 then c
  else begin
    let c = Bool.compare (sb = Route.static_src) (sa = Route.static_src) in
    if c <> 0 then c
    else begin
      let c = Int.compare (Attr.origin_code ra.Route.origin) (Attr.origin_code rb.Route.origin) in
      if c <> 0 then c
      else begin
        let c =
          Int.compare (Asn.Path.length ra.Route.as_path) (Asn.Path.length rb.Route.as_path)
        in
        if c <> 0 then c
        else begin
          let med r = Option.value r.Route.med ~default:missing_med_worst in
          let c = Int.compare (med ra) (med rb) in
          if c <> 0 then c
          else begin
            let c = Bool.compare sb.Route.ebgp sa.Route.ebgp in
            if c <> 0 then c
            else begin
              let c = Int.compare sa.Route.peer_addr sb.Route.peer_addr in
              if c <> 0 then c
              else Int.compare sa.Route.peer_bgp_id sb.Route.peer_bgp_id
            end
          end
        end
      end
    end
  end

let src_of_peer t (p : peer_st) =
  {
    Route.peer_addr = p.pcfg.Config_types.neighbor;
    peer_asn = p.pcfg.Config_types.remote_as;
    peer_bgp_id = p.pcfg.Config_types.neighbor;
    ebgp = p.pcfg.Config_types.remote_as <> t.cfg.Config_types.local_as;
  }

let candidates t prefix =
  let from_static =
    match List.assoc_opt prefix t.statics with
    | Some e -> [ (e.Rib.Loc.route, e.Rib.Loc.src) ]
    | None -> []
  in
  Hashtbl.fold
    (fun _ p acc ->
      match Hashtbl.find_opt p.rin prefix with
      | Some r -> (r, src_of_peer t p) :: acc
      | None -> acc)
    t.peers from_static

let decide t prefix =
  match List.sort qcompare (candidates t prefix) with
  | (route, src) :: _ -> Some { Rib.Loc.route; src }
  | [] -> None

(* ------------------------------------------------------------------ *)
(* Export path — same BGP semantics as any conformant speaker: split   *)
(* horizon, NO_EXPORT/NO_ADVERTISE, eBGP prepend + next-hop-self +     *)
(* attribute strip, dedup against the Adj-RIB-Out.                     *)
(* ------------------------------------------------------------------ *)

let export_view t (dst : peer_st) (route : Route.t) =
  let ebgp = dst.pcfg.Config_types.remote_as <> t.cfg.Config_types.local_as in
  if ebgp then
    {
      route with
      Route.as_path = Asn.Path.prepend t.cfg.Config_types.local_as route.Route.as_path;
      next_hop = t.cfg.Config_types.router_id;
      local_pref = None;
      med = None;
    }
  else route

let export_blocked (dst : peer_st) local_as (route : Route.t) (src : Route.src) =
  let ebgp = dst.pcfg.Config_types.remote_as <> local_as in
  src.Route.peer_addr = dst.pcfg.Config_types.neighbor (* split horizon *)
  || (ebgp && Route.has_community route Community.no_export)
  || Route.has_community route Community.no_advertise

let export_to ?(ctx = Engine.null ()) t (dst : peer_st) prefix best =
  if not dst.up then []
  else begin
    let previously = Hashtbl.find_opt dst.rout prefix in
    let advert =
      match best with
      | None -> None
      | Some { Rib.Loc.route; src } ->
        if export_blocked dst t.cfg.Config_types.local_as route src then None
        else begin
          let view = export_view t dst route in
          let croute = Croute.of_route prefix view in
          match
            Filter_interp.run_policy ctx
              ~source_as:src.Route.peer_asn
              ~local_as:t.cfg.Config_types.local_as
              dst.pcfg.Config_types.export_policy croute
          with
          | Filter_interp.Accepted cr ->
            let _, r = Croute.to_route cr in
            Some r
          | Filter_interp.Rejected -> None
        end
    in
    match (previously, advert) with
    | None, None -> []
    | Some old, Some r when Route.equal old r -> []
    | _, Some r ->
      Hashtbl.replace dst.rout prefix r;
      [ ( dst.pcfg.Config_types.neighbor,
          Msg.Update { withdrawn = []; attrs = Route.to_attrs r; nlri = [ prefix ] } );
      ]
    | Some _, None ->
      Hashtbl.remove dst.rout prefix;
      [ ( dst.pcfg.Config_types.neighbor,
          Msg.Update { withdrawn = [ prefix ]; attrs = []; nlri = [] } );
      ]
  end

let export_all ?ctx t prefix best =
  Hashtbl.fold (fun _ dst acc -> acc @ export_to ?ctx t dst prefix best) t.peers []

let reconsider ?ctx t prefix =
  let old_best = Hashtbl.find_opt t.main prefix in
  let new_best = decide t prefix in
  let changed =
    match (old_best, new_best) with
    | None, None -> false
    | Some a, Some b -> not (Route.equal a.Rib.Loc.route b.Rib.Loc.route && a.src = b.src)
    | None, Some _ | Some _, None -> true
  in
  if changed then begin
    (match new_best with
    | Some e -> Hashtbl.replace t.main prefix e
    | None -> Hashtbl.remove t.main prefix);
    export_all ?ctx t prefix new_best
  end
  else []

(* ------------------------------------------------------------------ *)
(* Sessions: administratively established, no FSM.                     *)
(* ------------------------------------------------------------------ *)

let establish t ~peer =
  let p = peer_exn t peer in
  if not p.up then begin
    p.up <- true;
    (* Prime the Adj-RIB-Out as an initial exchange would; the messages
       themselves are the session-establishment traffic the core never
       forwards, so they are not returned. *)
    Hashtbl.iter (fun prefix entry -> ignore (export_to t p prefix (Some entry))) t.main
  end

let session_clear ?ctx t (p : peer_st) =
  let prefixes = Hashtbl.fold (fun prefix _ acc -> prefix :: acc) p.rin [] in
  p.up <- false;
  Hashtbl.reset p.rin;
  Hashtbl.reset p.rout;
  List.concat_map (fun prefix -> reconsider ?ctx t prefix) prefixes

(* ------------------------------------------------------------------ *)
(* Import path                                                         *)
(* ------------------------------------------------------------------ *)

type import_outcome = {
  prefix : Prefix.t;
  accepted : bool;
  installed : bool;
  route : Route.t option;
  previous_best : Rib.Loc.entry option;
  outputs : (Ipv4.t * Msg.t) list;
}

let import_concolic ~ctx t ~peer croute =
  let p = peer_exn t peer in
  t.updates <- t.updates + 1;
  let rejected () =
    {
      prefix = Croute.prefix_of croute;
      accepted = false;
      installed = false;
      route = None;
      previous_best = Hashtbl.find_opt t.main (Croute.prefix_of croute);
      outputs = [];
    }
  in
  if Asn.Path.contains croute.Croute.as_path t.cfg.Config_types.local_as then rejected ()
  else begin
    match
      Filter_interp.run_policy ctx
        ~source_as:p.pcfg.Config_types.remote_as
        ~local_as:t.cfg.Config_types.local_as
        p.pcfg.Config_types.import_policy croute
    with
    | Filter_interp.Rejected -> rejected ()
    | Filter_interp.Accepted cr ->
      let cr =
        if cr.Croute.has_local_pref then cr
        else Croute.with_local_pref cr (Cval.concrete ~width:32 100L)
      in
      let prefix, route = Croute.to_route cr in
      (* No concolic pre-decision here: past the shared policy
         interpreter the pipeline runs concretely, as in a federated
         peer DiCE cannot instrument. *)
      let previous_best = Hashtbl.find_opt t.main prefix in
      Hashtbl.replace p.rin prefix route;
      let outputs = reconsider ~ctx t prefix in
      let installed =
        match Hashtbl.find_opt t.main prefix with
        | Some e -> e.Rib.Loc.src.Route.peer_addr = peer && Route.equal e.Rib.Loc.route route
        | None -> false
      in
      { prefix; accepted = true; installed; route = Some route; previous_best; outputs }
  end

let process_update ~ctx t ~peer (u : Msg.update) =
  let p = peer_exn t peer in
  let outs = ref [] in
  let withdraw prefix =
    if Hashtbl.mem p.rin prefix then begin
      Hashtbl.remove p.rin prefix;
      outs := !outs @ reconsider ~ctx t prefix
    end
  in
  List.iter withdraw u.Msg.withdrawn;
  if u.Msg.nlri <> [] then begin
    match Route.of_attrs u.Msg.attrs with
    | Error _ -> List.iter withdraw u.Msg.nlri (* treat-as-withdraw *)
    | Ok route ->
      List.iter
        (fun prefix ->
          let outcome = import_concolic ~ctx t ~peer (Croute.of_route prefix route) in
          outs := !outs @ outcome.outputs;
          if not outcome.accepted then withdraw prefix)
        u.Msg.nlri
  end
  else t.updates <- t.updates + if u.Msg.withdrawn <> [] then 1 else 0;
  !outs

let feed ?(ctx = Engine.null ()) t ~peer msg =
  let p = peer_exn t peer in
  match msg with
  | Msg.Update u -> if p.up then process_update ~ctx t ~peer u else []
  | Msg.Notification _ ->
    t.updates <- t.updates + 1;
    session_clear ~ctx t p
  | Msg.Open _ | Msg.Keepalive -> []

(* ------------------------------------------------------------------ *)
(* State views                                                         *)
(* ------------------------------------------------------------------ *)

let table t = Hashtbl.fold Rib.Loc.set t.main Rib.Loc.empty
let best_route t prefix = Hashtbl.find_opt t.main prefix

let learned_from t ~peer prefix =
  match Hashtbl.find_opt t.peers peer with
  | Some p -> Hashtbl.mem p.rin prefix
  | None -> false

(* ------------------------------------------------------------------ *)
(* Checkpointing: an eager linear image. Layout ("QRTRSNP1" magic):    *)
(*   u32 updates                                                       *)
(*   u16 #peers, each (sorted by address):                             *)
(*     u32 address | u8 up | u16 #rin entries | u16 #rout entries      *)
(*     then each entry: prefix (u8 len, u32 network) | u16 attr-bytes  *)
(*     | encoded path attributes                                       *)
(*   u16 #main-table entries, each: prefix | attrs | u32 src address   *)
(*     | u32 src ASN | u32 src router id | u8 ebgp                     *)
(* ------------------------------------------------------------------ *)

let magic = "QRTRSNP1"

let put_prefix b prefix =
  Wbuf.u8 b (Prefix.len prefix);
  Wbuf.u32 b (Prefix.network prefix)

let get_prefix r =
  let len = Rbuf.u8 ~what:"prefix length" r in
  let network = Rbuf.u32 ~what:"prefix network" r in
  Prefix.make network len

let put_route b (route : Route.t) =
  let len_at = Wbuf.mark b in
  Wbuf.u16 b 0;
  Attr.encode_list ~as4:true b (Route.to_attrs route);
  Wbuf.patch_u16 b len_at (Wbuf.length b - len_at - 2)

let get_route r =
  let len = Rbuf.u16 ~what:"attr region length" r in
  let region = Rbuf.sub r len in
  match Attr.decode_list ~as4:true region with
  | Error e -> invalid_arg ("Qrouter.restore: bad attributes: " ^ Attr.error_to_string e)
  | Ok attrs -> begin
    match Route.of_attrs attrs with
    | Error e -> invalid_arg ("Qrouter.restore: bad route: " ^ Attr.error_to_string e)
    | Ok route -> route
  end

let sorted_entries tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot t =
  let b = Wbuf.create ~capacity:1024 () in
  Wbuf.string b magic;
  Wbuf.u32 b t.updates;
  let peers = sorted_entries t.peers in
  Wbuf.u16 b (List.length peers);
  List.iter
    (fun (addr, p) ->
      Wbuf.u32 b addr;
      Wbuf.u8 b (if p.up then 1 else 0);
      let put_adj tbl =
        let entries = sorted_entries tbl in
        Wbuf.u16 b (List.length entries);
        List.iter
          (fun (prefix, route) ->
            put_prefix b prefix;
            put_route b route)
          entries
      in
      put_adj p.rin;
      put_adj p.rout)
    peers;
  let entries = sorted_entries t.main in
  Wbuf.u16 b (List.length entries);
  List.iter
    (fun (prefix, (e : Rib.Loc.entry)) ->
      put_prefix b prefix;
      put_route b e.Rib.Loc.route;
      Wbuf.u32 b e.Rib.Loc.src.Route.peer_addr;
      Wbuf.u32 b e.Rib.Loc.src.Route.peer_asn;
      Wbuf.u32 b e.Rib.Loc.src.Route.peer_bgp_id;
      Wbuf.u8 b (if e.Rib.Loc.src.Route.ebgp then 1 else 0))
    entries;
  Wbuf.contents b

let restore cfg image =
  try
    let r = Rbuf.of_bytes image in
    let m = Bytes.to_string (Rbuf.take ~what:"magic" r 8) in
    if m <> magic then invalid_arg "Qrouter.restore: not a Qrouter image";
    let t = create cfg in
    Hashtbl.reset t.main;
    t.updates <- Rbuf.u32 ~what:"updates" r;
    let n_peers = Rbuf.u16 ~what:"peer count" r in
    for _ = 1 to n_peers do
      let addr = Rbuf.u32 ~what:"peer address" r in
      let p =
        match Hashtbl.find_opt t.peers addr with
        | Some p -> p
        | None ->
          invalid_arg
            (Printf.sprintf "Qrouter.restore: image peer %s absent from config"
               (Ipv4.to_string addr))
      in
      p.up <- Rbuf.u8 ~what:"session flag" r = 1;
      let get_adj tbl =
        let n = Rbuf.u16 ~what:"adj entry count" r in
        for _ = 1 to n do
          let prefix = get_prefix r in
          Hashtbl.replace tbl prefix (get_route r)
        done
      in
      get_adj p.rin;
      get_adj p.rout
    done;
    let n_main = Rbuf.u16 ~what:"table entry count" r in
    for _ = 1 to n_main do
      let prefix = get_prefix r in
      let route = get_route r in
      let peer_addr = Rbuf.u32 ~what:"src address" r in
      let peer_asn = Rbuf.u32 ~what:"src asn" r in
      let peer_bgp_id = Rbuf.u32 ~what:"src router id" r in
      let ebgp = Rbuf.u8 ~what:"src ebgp flag" r = 1 in
      Hashtbl.replace t.main prefix
        { Rib.Loc.route; src = { Route.peer_addr; peer_asn; peer_bgp_id; ebgp } }
    done;
    t
  with Rbuf.Truncated what -> invalid_arg ("Qrouter.restore: truncated image: " ^ what)

(* An independent in-process copy. Zebra-style state is mutable hash
   tables, so — true to the heterogeneity — there is nothing persistent
   to share: every bucket is copied eagerly. Still far cheaper than
   snapshot + parse (no serialization, route values are shared). *)
let clone t =
  let peers = Hashtbl.create (Hashtbl.length t.peers) in
  Hashtbl.iter
    (fun addr p ->
      Hashtbl.replace peers addr
        { pcfg = p.pcfg; up = p.up; rin = Hashtbl.copy p.rin; rout = Hashtbl.copy p.rout })
    t.peers;
  { cfg = t.cfg; peers; main = Hashtbl.copy t.main; statics = t.statics; updates = t.updates }
