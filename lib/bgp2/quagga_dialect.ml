open Dice_inet
open Dice_bgp

let name = "quagga"

let quirks =
  [
    "route-maps end in an implicit deny: an unstated policy default drops \
     unmatched routes";
    "prefix-list entries cannot match prefixes shorter than the listed \
     network: pattern lower bounds clamp up to the mask length";
  ]

let fail line msg = raise (Config_parser.Parse_error { line; msg })

(* ------------------------------------------------------------------ *)
(* Render                                                              *)
(* ------------------------------------------------------------------ *)

let community_str c =
  Printf.sprintf "%d:%d" (Community.asn_part c) (Community.value_part c)

(* The clamp quirk lives here: ge below the mask length is not
   expressible in a prefix-list entry, so the bound rises to the mask. *)
let entry_str (p : Filter.prefix_pattern) =
  let bl = Prefix.len p.base in
  let low = max p.low bl in
  if low = bl && p.high = bl then Prefix.to_string p.base
  else Printf.sprintf "%s ge %d le %d" (Prefix.to_string p.base) low p.high

(* Numbered match lists are allocated per (policy, rule) use site. *)
type lists = {
  mutable aspath : (int * [ `Transit of int | `Origin of int ]) list;
  mutable comm : (int * Community.t) list;
  mutable next : int;
}

let alloc l =
  let k = l.next in
  l.next <- k + 1;
  k

let block_rm = "rm_block_all"

let render (intent : Intent.t) =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "! quagga dialect (rendered from intent)";
  List.iter
    (fun (set, pats) ->
      List.iteri
        (fun i p -> line "ip prefix-list %s seq %d permit %s" set ((i + 1) * 5) (entry_str p))
        pats)
    intent.Intent.prefix_sets;
  let lists = { aspath = []; comm = []; next = 1 } in
  (* allocate the numbered lists in rule order so the text reads top down *)
  let rm_lines = Buffer.create 512 in
  let rm fmt = Printf.ksprintf (fun s -> Buffer.add_string rm_lines (s ^ "\n")) fmt in
  List.iter
    (fun (p : Intent.policy) ->
      let emit_rule i (r : Intent.rule) =
        rm "route-map %s %s %d" p.policy_name
          (match r.decision with Intent.Permit -> "permit" | Intent.Deny -> "deny")
          ((i + 1) * 10);
        List.iter
          (function
            | Intent.Prefixes set -> rm " match ip address prefix-list %s" set
            | Intent.Transits n ->
              let k = alloc lists in
              lists.aspath <- (k, `Transit n) :: lists.aspath;
              rm " match as-path %d" k
            | Intent.Originated_by n ->
              let k = alloc lists in
              lists.aspath <- (k, `Origin n) :: lists.aspath;
              rm " match as-path %d" k
            | Intent.Path_longer_than n -> rm " match as-path-length gt %d" n
            | Intent.Has_community c ->
              let k = alloc lists in
              lists.comm <- (k, c) :: lists.comm;
              rm " match community %d" k)
          r.matches;
        List.iter
          (function
            | Intent.Set_local_pref n -> rm " set local-preference %d" n
            | Intent.Set_med n -> rm " set metric %d" n
            | Intent.Add_community c -> rm " set community %s additive" (community_str c)
            | Intent.Delete_community c ->
              let k = alloc lists in
              lists.comm <- (k, c) :: lists.comm;
              rm " set comm-list %d delete" k
            | Intent.Prepend n ->
              if n > 0 then
                rm " set as-path prepend%s"
                  (String.concat ""
                     (List.init n (fun _ -> Printf.sprintf " %d" intent.local_as))))
          r.actions
      in
      List.iteri emit_rule p.rules;
      (* Quagga quirk: the implicit deny at route-map end stands in for
         both an explicit Deny default and an unstated one; only an
         explicit Permit default needs its own catch-all entry. *)
      match p.default with
      | Some Intent.Permit -> rm "route-map %s permit 65535" p.policy_name
      | Some Intent.Deny | None -> ())
    intent.policies;
  List.iter
    (fun (k, spec) ->
      match spec with
      | `Transit n -> line "ip as-path access-list %d permit _%d_" k n
      | `Origin n -> line "ip as-path access-list %d permit _%d$" k n)
    (List.rev lists.aspath);
  List.iter
    (fun (k, c) -> line "bgp community-list %d permit %s" k (community_str c))
    (List.rev lists.comm);
  Buffer.add_buffer b rm_lines;
  let needs_block =
    List.exists
      (fun (s : Intent.session) -> s.import = Intent.Block || s.export = Intent.Block)
      intent.sessions
  in
  if needs_block then line "route-map %s deny 10" block_rm;
  line "router bgp %d" intent.local_as;
  line " bgp router-id %s" (Ipv4.to_string intent.router_id);
  List.iter
    (fun (s : Intent.session) ->
      let ip = Ipv4.to_string s.neighbor in
      line " neighbor %s remote-as %d" ip s.remote_as;
      line " neighbor %s description %s" ip s.session_name;
      let dir verb = function
        | Intent.Open -> ()
        | Intent.Block -> line " neighbor %s route-map %s %s" ip block_rm verb
        | Intent.Apply p -> line " neighbor %s route-map %s %s" ip p verb
      in
      dir "in" s.import;
      dir "out" s.export)
    intent.sessions;
  List.iter (fun p -> line " bgp anycast %s" (Prefix.to_string p)) intent.anycast;
  List.iter
    (fun (p, via) ->
      line "ip route %s %s" (Prefix.to_string p) (Ipv4.to_string via))
    intent.statics;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parse                                                               *)
(* ------------------------------------------------------------------ *)

type raw_entry = { seq : int; pat : Filter.prefix_pattern }

type raw_seq = {
  rseq : int;
  rpermit : bool;
  mutable rmatches : (int * string list) list;  (* line, words after "match" *)
  mutable rsets : (int * string list) list;
}

type raw_neighbor = {
  mutable remote_as : int option;
  mutable descr : string option;
  mutable rm_in : string option;
  mutable rm_out : string option;
}

let int_of ln s what =
  match int_of_string_opt s with
  | Some n -> n
  | None -> fail ln (Printf.sprintf "expected %s, got %S" what s)

let ip_of ln s =
  match Ipv4.of_string_opt s with
  | Some a -> a
  | None -> fail ln (Printf.sprintf "expected an address, got %S" s)

let prefix_of ln s =
  match Prefix.of_string_opt s with
  | Some p -> p
  | None -> fail ln (Printf.sprintf "expected a prefix, got %S" s)

let community_of ln s =
  match String.index_opt s ':' with
  | Some i ->
    let a = int_of ln (String.sub s 0 i) "community AS part" in
    let v = int_of ln (String.sub s (i + 1) (String.length s - i - 1)) "community value" in
    if a > 0xFFFF || v > 0xFFFF then fail ln "community parts must be <= 65535";
    Community.make a v
  | None -> fail ln (Printf.sprintf "expected a:b community, got %S" s)

let parse src =
  let prefix_lists : (string, raw_entry list ref) Hashtbl.t = Hashtbl.create 8 in
  let aspath_lists : (int, [ `Transit of int | `Origin of int ]) Hashtbl.t =
    Hashtbl.create 8
  in
  let comm_lists : (int, Community.t) Hashtbl.t = Hashtbl.create 8 in
  let route_maps : (string, raw_seq list ref) Hashtbl.t = Hashtbl.create 8 in
  let rm_order : string list ref = ref [] in
  let neighbors : (Ipv4.t, raw_neighbor) Hashtbl.t = Hashtbl.create 8 in
  let nb_order : Ipv4.t list ref = ref [] in
  let local_as = ref None in
  let router_id = ref None in
  let statics = ref [] in
  let anycast = ref [] in
  let cur_rm : raw_seq option ref = ref None in
  let get tbl order key mk =
    match Hashtbl.find_opt tbl key with
    | Some v -> v
    | None ->
      let v = mk () in
      Hashtbl.add tbl key v;
      order := key :: !order;
      v
  in
  let handle ln words =
    match words with
    | [] -> ()
    | "ip" :: "prefix-list" :: set :: "seq" :: seq :: "permit" :: rest ->
      cur_rm := None;
      let seq = int_of ln seq "sequence number" in
      let pat =
        match rest with
        | [ p ] ->
          let base = prefix_of ln p in
          { Filter.base; low = Prefix.len base; high = Prefix.len base }
        | [ p; "ge"; lo; "le"; hi ] ->
          let base = prefix_of ln p in
          let low = int_of ln lo "ge bound" and high = int_of ln hi "le bound" in
          if low < Prefix.len base || low > high || high > 32 then
            fail ln "prefix-list bounds must satisfy masklen <= ge <= le <= 32";
          { Filter.base; low; high }
        | [ p; "ge"; lo ] ->
          let base = prefix_of ln p in
          let low = int_of ln lo "ge bound" in
          if low < Prefix.len base then fail ln "ge below the mask length";
          { Filter.base; low; high = 32 }
        | [ p; "le"; hi ] ->
          let base = prefix_of ln p in
          { Filter.base; low = Prefix.len base; high = int_of ln hi "le bound" }
        | _ -> fail ln "malformed prefix-list entry"
      in
      let l = get prefix_lists (ref []) set (fun () -> ref []) in
      l := { seq; pat } :: !l
    | [ "ip"; "as-path"; "access-list"; k; "permit"; re ] ->
      cur_rm := None;
      let k = int_of ln k "access-list number" in
      let n = String.length re in
      if n >= 3 && re.[0] = '_' && re.[n - 1] = '_' then
        Hashtbl.replace aspath_lists k
          (`Transit (int_of ln (String.sub re 1 (n - 2)) "AS number"))
      else if n >= 2 && re.[0] = '_' && re.[n - 1] = '$' then
        Hashtbl.replace aspath_lists k
          (`Origin (int_of ln (String.sub re 1 (n - 2)) "AS number"))
      else fail ln (Printf.sprintf "unsupported as-path regex %S (_N_ or _N$)" re)
    | [ "bgp"; "community-list"; k; "permit"; c ] ->
      cur_rm := None;
      Hashtbl.replace comm_lists (int_of ln k "community-list number") (community_of ln c)
    | [ "route-map"; rm; verdict; seq ] ->
      let rpermit =
        match verdict with
        | "permit" -> true
        | "deny" -> false
        | _ -> fail ln (Printf.sprintf "expected permit/deny, got %S" verdict)
      in
      let s = { rseq = int_of ln seq "sequence number"; rpermit; rmatches = []; rsets = [] } in
      let l = get route_maps rm_order rm (fun () -> ref []) in
      l := s :: !l;
      cur_rm := Some s
    | "match" :: rest -> begin
      match !cur_rm with
      | Some s -> s.rmatches <- (ln, rest) :: s.rmatches
      | None -> fail ln "match outside a route-map entry"
    end
    | "set" :: rest -> begin
      match !cur_rm with
      | Some s -> s.rsets <- (ln, rest) :: s.rsets
      | None -> fail ln "set outside a route-map entry"
    end
    | "router" :: "bgp" :: asn :: [] ->
      cur_rm := None;
      local_as := Some (int_of ln asn "AS number")
    | [ "bgp"; "router-id"; ip ] -> router_id := Some (ip_of ln ip)
    | [ "bgp"; "anycast"; p ] -> anycast := prefix_of ln p :: !anycast
    | "neighbor" :: ip :: rest -> begin
      cur_rm := None;
      let ip = ip_of ln ip in
      let nb =
        get neighbors nb_order ip (fun () ->
            { remote_as = None; descr = None; rm_in = None; rm_out = None })
      in
      match rest with
      | [ "remote-as"; asn ] -> nb.remote_as <- Some (int_of ln asn "AS number")
      | [ "description"; d ] -> nb.descr <- Some d
      | [ "route-map"; rm; "in" ] -> nb.rm_in <- Some rm
      | [ "route-map"; rm; "out" ] -> nb.rm_out <- Some rm
      | _ -> fail ln "malformed neighbor line"
    end
    | [ "ip"; "route"; p; via ] ->
      cur_rm := None;
      statics := (prefix_of ln p, ip_of ln via) :: !statics
    | w :: _ -> fail ln (Printf.sprintf "unexpected %S" w)
  in
  List.iteri
    (fun i raw ->
      let text =
        match String.index_opt raw '!' with
        | Some j -> String.sub raw 0 j
        | None -> raw
      in
      handle (i + 1)
        (List.filter (fun w -> w <> "") (String.split_on_char ' ' (String.trim text))))
    (String.split_on_char '\n' src);
  (* resolve route-maps into filters *)
  let filter_of_rm rm_name =
    let seqs =
      List.sort
        (fun a b -> compare a.rseq b.rseq)
        !(Hashtbl.find route_maps rm_name)
    in
    let cond_of (ln, words) =
      match words with
      | [ "ip"; "address"; "prefix-list"; set ] ->
        let entries =
          match Hashtbl.find_opt prefix_lists set with
          | Some l -> List.sort (fun a b -> compare a.seq b.seq) !l
          | None -> fail ln (Printf.sprintf "unknown prefix-list %S" set)
        in
        Filter.Match_net (List.map (fun e -> e.pat) entries)
      | [ "as-path"; k ] -> begin
        match Hashtbl.find_opt aspath_lists (int_of ln k "access-list number") with
        | Some (`Transit n) -> Filter.Path_has n
        | Some (`Origin n) -> Filter.Cmp (Filter.Ceq, Filter.Origin_as, Filter.Int_lit n)
        | None -> fail ln (Printf.sprintf "unknown as-path access-list %s" k)
      end
      | [ "as-path-length"; "gt"; n ] ->
        Filter.Cmp (Filter.Cgt, Filter.Path_len, Filter.Int_lit (int_of ln n "length"))
      | [ "community"; k ] -> begin
        match Hashtbl.find_opt comm_lists (int_of ln k "community-list number") with
        | Some c -> Filter.Has_community c
        | None -> fail ln (Printf.sprintf "unknown community-list %s" k)
      end
      | _ -> fail ln "unsupported match clause"
    in
    let stmt_of (ln, words) =
      match words with
      | [ "local-preference"; n ] ->
        Filter.Set_local_pref (Filter.Int_lit (int_of ln n "value"))
      | [ "metric"; n ] -> Filter.Set_med (Filter.Int_lit (int_of ln n "value"))
      | [ "community"; c; "additive" ] -> Filter.Add_community (community_of ln c)
      | [ "comm-list"; k; "delete" ] -> begin
        match Hashtbl.find_opt comm_lists (int_of ln k "community-list number") with
        | Some c -> Filter.Delete_community c
        | None -> fail ln (Printf.sprintf "unknown community-list %s" k)
      end
      | "as-path" :: "prepend" :: asns -> Filter.Prepend (List.length asns)
      | _ -> fail ln "unsupported set clause"
    in
    let rec body = function
      | [] -> [ Filter.Reject ] (* the implicit deny *)
      | s :: rest ->
        let verdict = if s.rpermit then Filter.Accept else Filter.Reject in
        let arm = List.map stmt_of (List.rev s.rsets) @ [ verdict ] in
        (match List.rev s.rmatches with
        | [] -> arm (* a matchless entry decides every route *)
        | m :: ms ->
          let cond =
            List.fold_left (fun acc m -> Filter.And (acc, cond_of m)) (cond_of m) ms
          in
          Filter.mk_if ~filter_name:rm_name cond arm [] :: body rest)
    in
    { Filter.name = rm_name; body = body seqs }
  in
  let filters = List.map filter_of_rm (List.rev !rm_order) in
  let policy_of ln = function
    | None -> Config_types.All
    | Some rm -> (
      match List.find_opt (fun (f : Filter.t) -> f.Filter.name = rm) filters with
      | Some f -> Config_types.Use_filter f
      | None -> fail ln (Printf.sprintf "unknown route-map %S" rm))
  in
  let peers =
    List.rev_map
      (fun ip ->
        let nb = Hashtbl.find neighbors ip in
        match nb.remote_as with
        | None -> fail 0 (Printf.sprintf "neighbor %s has no remote-as" (Ipv4.to_string ip))
        | Some remote_as ->
          let name =
            Option.value nb.descr ~default:("peer_" ^ Ipv4.to_string ip)
          in
          {
            (Config_types.default_peer ~name ~neighbor:ip ~remote_as) with
            Config_types.import_policy = policy_of 0 nb.rm_in;
            export_policy = policy_of 0 nb.rm_out;
          })
      !nb_order
  in
  match (!router_id, !local_as) with
  | Some router_id, Some local_as ->
    Config_types.make ~router_id ~local_as ~peers ~static_routes:(List.rev !statics)
      ~filters ~anycast:(List.rev !anycast) ()
  | None, _ -> fail 0 "missing 'bgp router-id'"
  | _, None -> fail 0 "missing 'router bgp <as>'"
