(** Quagga dialect: route-maps plus ip prefix-lists / as-path
    access-lists, in the flat line-oriented syntax.

    Documented quirks modeled here:
    - a route-map ends in an {e implicit deny}: whether the intent's
      policy default is [Deny] or unstated, unmatched routes are
      dropped;
    - prefix-list entries cannot match prefixes shorter than the listed
      network — a pattern's lower bound is clamped up to the mask
      length at render, so [10.0.0.0/8-] silently degrades to an exact
      [/8] match.

    Flavored extensions (kept lexable by the same line parser):
    [match as-path-length gt N] and [bgp anycast P]. *)

include Dice_bgp.Dialect.S
