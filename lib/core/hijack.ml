open Dice_inet
open Dice_bgp

let in_whitelist anycast prefix =
  List.exists (fun a -> Prefix.subsumes a prefix) anycast

let origin_of_entry (e : Rib.Loc.entry) = Route.origin_as e.Rib.Loc.route

let check (ctx : Checker.context) (outcome : Speaker.import_outcome) =
  if not outcome.Speaker.accepted then []
  else begin
    match outcome.Speaker.route with
    | None -> []
    | Some route -> begin
      let prefix = outcome.Speaker.prefix in
      if in_whitelist ctx.Checker.anycast prefix then []
      else begin
        let new_origin = Route.origin_as route in
        (* trusted pre-exploration routes covering the announced space *)
        let covering = Rib.Loc.covering prefix ctx.Checker.pre_loc_rib in
        let conflicting =
          List.filter
            (fun (_, e) ->
              match (origin_of_entry e, new_origin) with
              | Some old_as, Some new_as -> old_as <> new_as
              | Some _, None -> true
              | None, _ -> false)
            covering
        in
        let hijacks =
          List.map
            (fun (covered_prefix, e) ->
              let exact = Prefix.equal covered_prefix prefix in
              {
                Checker.checker = "origin-hijack";
                severity = Checker.Critical;
                prefix;
                description =
                  (if exact then "accepted announcement overrides the origin AS"
                   else "accepted more-specific announcement hijacks covering prefix");
                details =
                  [ ("existing-prefix", Prefix.to_string covered_prefix);
                    ( "trusted-origin",
                      match origin_of_entry e with
                      | Some a -> Asn.to_string a
                      | None -> "(local)" );
                    ( "explored-origin",
                      match new_origin with
                      | Some a -> Asn.to_string a
                      | None -> "(empty path)" );
                    ("via-peer", Ipv4.to_string ctx.Checker.peer);
                    ("peer-as", string_of_int ctx.Checker.peer_as);
                    ("installed", string_of_bool outcome.Speaker.installed);
                  ];
              })
            conflicting
        in
        (* filter-leak: accepted space nobody previously routed — the
           customer can inject arbitrary ranges through this session *)
        let leaks =
          if covering = [] && Rib.Loc.covered prefix ctx.Checker.pre_loc_rib = [] then
            [ {
                Checker.checker = "filter-leak";
                severity = Checker.Warning;
                prefix;
                description = "import policy accepts announcements for unheld address space";
                details =
                  [ ("via-peer", Ipv4.to_string ctx.Checker.peer);
                    ("peer-as", string_of_int ctx.Checker.peer_as);
                    ( "explored-origin",
                      match new_origin with
                      | Some a -> Asn.to_string a
                      | None -> "(empty path)" );
                  ];
              } ]
          else []
        in
        hijacks @ leaks
      end
    end
  end

let checker = { Checker.name = "origin-hijack"; check }

(* cross-implementation divergence reports describe how speakers
   disagree about an announcement, not address space an announcement
   could take over — they never make a range "leakable" *)
let divergence_checkers =
  [ "panel-tiebreak"; "panel-divergence";
    "cross-implementation-tiebreak"; "cross-implementation-divergence" ]

let leakable_summary faults =
  let tbl : (Prefix.t, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (f : Checker.fault) ->
      if not (List.mem f.Checker.checker divergence_checkers) then begin
        let cur = Option.value (Hashtbl.find_opt tbl f.prefix) ~default:0 in
        Hashtbl.replace tbl f.prefix (cur + 1)
      end)
    faults;
  Hashtbl.fold (fun p c acc -> (p, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Prefix.compare a b)
