open Dice_inet
open Dice_bgp

type severity =
  | Warning
  | Critical

type fault = {
  checker : string;
  severity : severity;
  prefix : Prefix.t;
  description : string;
  details : (string * string) list;
}

let fault_key f = Printf.sprintf "%s|%s|%s" f.checker (Prefix.to_string f.prefix) f.description

let pp_fault ppf f =
  Format.fprintf ppf "@[<v 2>[%s] %s: %s %s@,%a@]"
    (match f.severity with Warning -> "warning" | Critical -> "CRITICAL")
    f.checker (Prefix.to_string f.prefix) f.description
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf (k, v) ->
         Format.fprintf ppf "%s: %s" k v))
    f.details

type context = {
  pre_loc_rib : Rib.Loc.t;
  anycast : Prefix.t list;
  peer : Ipv4.t;
  peer_as : int;
}

type t = {
  name : string;
  check : context -> Speaker.import_outcome -> fault list;
}
