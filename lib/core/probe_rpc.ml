open Dice_inet
open Dice_bgp
module Network = Dice_sim.Network
module Rbuf = Dice_wire.Rbuf

type reply =
  | Reply of (Prefix.t * Probe_wire.verdict) list
  | Refuse of string

type server = {
  snet : Network.t;
  snode : Network.node_id;
  cache_cap : int;
  (* at-most-once execution: replies are cached per (requester, req_id)
     so a retried or duplicated request re-sends the recorded reply
     instead of re-probing — [order] bounds the cache FIFO-style *)
  cache : (Network.node_id * int, bytes) Hashtbl.t;
  order : (Network.node_id * int) Queue.t;
  mutable served : int;
  mutable executed : int;
  mutable dedup : int;
  mutable sbad : int;
}

let serve ?(dedup_cache = 512) net ~name ~answer =
  if dedup_cache < 0 then invalid_arg "Probe_rpc.serve: negative dedup cache";
  let node = Network.add_node net ~name ~handler:(fun _ ~self:_ ~from:_ _ -> ()) in
  let s =
    { snet = net;
      snode = node;
      cache_cap = dedup_cache;
      cache = Hashtbl.create (max 16 dedup_cache);
      order = Queue.create ();
      served = 0;
      executed = 0;
      dedup = 0;
      sbad = 0;
    }
  in
  let handler net ~self ~from:src b =
    match Probe_wire.decode b with
    | exception Rbuf.Truncated _ -> s.sbad <- s.sbad + 1
    | Probe_wire.Response _ | Probe_wire.Decline _ | Probe_wire.Error _ ->
      s.sbad <- s.sbad + 1
    | Probe_wire.Request { req_id; from; msg } ->
      s.served <- s.served + 1;
      let key = (src, req_id) in
      let reply_bytes =
        match Hashtbl.find_opt s.cache key with
        | Some cached ->
          s.dedup <- s.dedup + 1;
          cached
        | None ->
          s.executed <- s.executed + 1;
          let reply =
            match Msg.decode msg with
            | Error e ->
              Probe_wire.encode_error ~req_id
                ("undecodable probe message: " ^ Msg.error_to_string e)
            | Ok m -> begin
              match answer ~from m with
              | Reply verdicts -> Probe_wire.encode_response ~req_id verdicts
              | Refuse reason -> Probe_wire.encode_decline ~req_id reason
              | exception e -> Probe_wire.encode_error ~req_id (Printexc.to_string e)
            end
          in
          if s.cache_cap > 0 then begin
            if Queue.length s.order >= s.cache_cap then
              Hashtbl.remove s.cache (Queue.pop s.order);
            Hashtbl.replace s.cache key reply;
            Queue.push key s.order
          end;
          reply
      in
      (* the requester may have disconnected while we worked; a reply
         into the void is its problem (it will time out), not ours *)
      (try Network.send net ~src:self ~dst:src reply_bytes
       with Invalid_argument _ -> ())
  in
  Network.set_handler net node handler;
  s

let server_node s = s.snode
let frames_served s = s.served
let frames_executed s = s.executed
let dedup_hits s = s.dedup
let bad_frames s = s.sbad

type result =
  | Verdicts of (Prefix.t * Probe_wire.verdict) list
  | Declined of string
  | Timeout

type client = {
  net : Network.t;
  node : Network.node_id;
  pending : (int, result -> unit) Hashtbl.t;
  mutable next_id : int;
  mutable wire_errors : int;
  mutable late : int;
}

let client net ~name =
  let node = Network.add_node net ~name ~handler:(fun _ ~self:_ ~from:_ _ -> ()) in
  let c =
    { net; node; pending = Hashtbl.create 16; next_id = 0; wire_errors = 0; late = 0 }
  in
  let complete req_id r =
    match Hashtbl.find_opt c.pending req_id with
    | None ->
      (* duplicate or late response: the call already completed (or
         timed out) — drop and count, never apply twice *)
      c.late <- c.late + 1
    | Some k ->
      Hashtbl.remove c.pending req_id;
      k r
  in
  let handler _net ~self:_ ~from:_ b =
    match Probe_wire.decode b with
    | exception Rbuf.Truncated _ -> c.wire_errors <- c.wire_errors + 1
    | Probe_wire.Request _ -> c.wire_errors <- c.wire_errors + 1
    | Probe_wire.Response { req_id; verdicts } -> complete req_id (Verdicts verdicts)
    | Probe_wire.Decline { req_id; reason } -> complete req_id (Declined reason)
    | Probe_wire.Error { req_id; reason } ->
      complete req_id (Declined ("remote error: " ^ reason))
  in
  Network.set_handler net node handler;
  c

let client_node c = c.node

let fresh_id c =
  let id = c.next_id in
  c.next_id <- (c.next_id + 1) land 0xFFFFFFFF;
  id

type config = {
  timeout : float;
  retries : int;
  backoff : float;
  max_in_flight : int;
}

let default_config = { timeout = 1.0; retries = 2; backoff = 2.0; max_in_flight = 8 }

type endpoint = {
  ecl : client;
  server : Network.node_id;
  cfg : config;
  mutable calls : int;
  mutable retried : int;
  mutable timed_out : int;
  mutable declined : int;
}

let endpoint ?(config = default_config) ecl ~server =
  if config.timeout <= 0.0 then invalid_arg "Probe_rpc.endpoint: timeout must be positive";
  if config.retries < 0 then invalid_arg "Probe_rpc.endpoint: negative retries";
  if config.backoff < 1.0 then invalid_arg "Probe_rpc.endpoint: backoff below 1";
  if config.max_in_flight < 1 then invalid_arg "Probe_rpc.endpoint: empty in-flight window";
  { ecl; server; cfg = config; calls = 0; retried = 0; timed_out = 0; declined = 0 }

let endpoint_config ep = ep.cfg
let endpoint_link ep = (ep.ecl.net, ep.ecl.node, ep.server)

(* The simulated network is single-threaded; one domain pumps it at a
   time. The lock is re-entrant per domain so a probe issued from inside
   a network event (a daemon episode firing mid-pump) nests instead of
   deadlocking. *)
let rpc_lock = Mutex.create ()
let rpc_owner : int option Atomic.t = Atomic.make None

let with_rpc_lock f =
  let me = (Domain.self () :> int) in
  match Atomic.get rpc_owner with
  | Some owner when owner = me -> f ()
  | Some _ | None ->
    Mutex.lock rpc_lock;
    Atomic.set rpc_owner (Some me);
    Fun.protect
      ~finally:(fun () ->
        Atomic.set rpc_owner None;
        Mutex.unlock rpc_lock)
      f

let call_batch ep reqs =
  if reqs = [] then []
  else
    with_rpc_lock @@ fun () ->
    let c = ep.ecl in
    let net = c.net in
    let arr = Array.of_list reqs in
    let n = Array.length arr in
    let results = Array.make n Timeout in
    let completed = ref 0 in
    let inflight = ref 0 in
    let next = ref 0 in
    let finish i r =
      (match r with
      | Declined _ -> ep.declined <- ep.declined + 1
      | Timeout -> ep.timed_out <- ep.timed_out + 1
      | Verdicts _ -> ());
      results.(i) <- r;
      incr completed;
      decr inflight
    in
    let rec attempt req_id i k =
      (* a send over a cut link fails immediately; the timeout below
         still runs, so the attempt degrades instead of raising *)
      (try
         Network.send net ~src:c.node ~dst:ep.server
           (Probe_wire.encode_request ~req_id arr.(i))
       with Invalid_argument _ -> ());
      let expires = ep.cfg.timeout *. (ep.cfg.backoff ** float_of_int k) in
      Network.schedule net ~delay:expires (fun () ->
          if Hashtbl.mem c.pending req_id then begin
            if k < ep.cfg.retries then begin
              ep.retried <- ep.retried + 1;
              attempt req_id i (k + 1)
            end
            else begin
              Hashtbl.remove c.pending req_id;
              finish i Timeout
            end
          end)
    in
    let launch i =
      ep.calls <- ep.calls + 1;
      incr inflight;
      let req_id = fresh_id c in
      Hashtbl.replace c.pending req_id (fun r -> finish i r);
      attempt req_id i 0
    in
    while !completed < n do
      while !inflight < ep.cfg.max_in_flight && !next < n do
        launch !next;
        incr next
      done;
      if !completed < n && not (Network.step net) then begin
        (* unreachable while a timeout event is pending — but if the
           queue ever runs dry, fail every outstanding request rather
           than spin *)
        Hashtbl.reset c.pending;
        ep.timed_out <- ep.timed_out + (n - !completed);
        completed := n
      end
    done;
    Array.to_list results

let call ep req =
  match call_batch ep [ req ] with
  | [ r ] -> r
  | _ -> assert false

type stats = {
  calls : int;
  retries : int;
  timeouts : int;
  declines : int;
  wire_errors : int;
  late_responses : int;
}

let stats (ep : endpoint) =
  {
    calls = ep.calls;
    retries = ep.retried;
    timeouts = ep.timed_out;
    declines = ep.declined;
    wire_errors = ep.ecl.wire_errors;
    late_responses = ep.ecl.late;
  }
