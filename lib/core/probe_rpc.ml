open Dice_inet
open Dice_bgp
module Network = Dice_sim.Network
module Rbuf = Dice_wire.Rbuf
module Rng = Dice_util.Rng

type reply =
  | Reply of (Prefix.t * Probe_wire.verdict) list
  | Refuse of string

type server = {
  snet : Network.t;
  snode : Network.node_id;
  cache_cap : int;
  (* at-most-once execution: replies are cached per (requester, req_id)
     so a retried or duplicated request re-sends the recorded reply
     instead of re-probing — [order] bounds the cache FIFO-style *)
  cache : (Network.node_id * int, bytes) Hashtbl.t;
  order : (Network.node_id * int) Queue.t;
  mutable served : int;
  mutable executed : int;
  mutable dedup : int;
  mutable sbad : int;
  mutable beats : int;
}

let serve ?(dedup_cache = 512) net ~name ~answer =
  if dedup_cache < 0 then invalid_arg "Probe_rpc.serve: negative dedup cache";
  let node = Network.add_node net ~name ~handler:(fun _ ~self:_ ~from:_ _ -> ()) in
  let s =
    { snet = net;
      snode = node;
      cache_cap = dedup_cache;
      cache = Hashtbl.create (max 16 dedup_cache);
      order = Queue.create ();
      served = 0;
      executed = 0;
      dedup = 0;
      sbad = 0;
      beats = 0;
    }
  in
  let handler net ~self ~from:src b =
    match Probe_wire.decode b with
    | exception Rbuf.Truncated _ -> s.sbad <- s.sbad + 1
    | Probe_wire.Response _ | Probe_wire.Decline _ | Probe_wire.Error _
    | Probe_wire.Heartbeat _ ->
      s.sbad <- s.sbad + 1
    | Probe_wire.Request { req_id; from; msg } ->
      s.served <- s.served + 1;
      let key = (src, req_id) in
      let reply_bytes =
        match Hashtbl.find_opt s.cache key with
        | Some cached ->
          s.dedup <- s.dedup + 1;
          cached
        | None ->
          s.executed <- s.executed + 1;
          let reply =
            match Msg.decode msg with
            | Error e ->
              Probe_wire.encode_error ~req_id
                ("undecodable probe message: " ^ Msg.error_to_string e)
            | Ok m -> begin
              match answer ~from m with
              | Reply verdicts -> Probe_wire.encode_response ~req_id verdicts
              | Refuse reason -> Probe_wire.encode_decline ~req_id reason
              | exception e -> Probe_wire.encode_error ~req_id (Printexc.to_string e)
            end
          in
          if s.cache_cap > 0 then begin
            if Queue.length s.order >= s.cache_cap then
              Hashtbl.remove s.cache (Queue.pop s.order);
            Hashtbl.replace s.cache key reply;
            Queue.push key s.order
          end;
          reply
      in
      (* the requester may have disconnected while we worked; a reply
         into the void is its problem (it will time out), not ours *)
      (try Network.send net ~src:self ~dst:src reply_bytes
       with Invalid_argument _ -> ())
  in
  Network.set_handler net node handler;
  s

let server_node s = s.snode
let frames_served s = s.served
let frames_executed s = s.executed
let dedup_hits s = s.dedup
let bad_frames s = s.sbad
let heartbeats_sent s = s.beats

let start_heartbeats ?until s ~to_ ~period ~incarnation ~state_version =
  if not (period > 0.0 && period < Float.infinity) then
    invalid_arg "Probe_rpc.start_heartbeats: period must be positive and finite";
  let stopped = ref false in
  let seq = ref 0 in
  let rec beat () =
    let horizon_ok =
      match until with
      | Some u -> Network.now s.snet <= u
      | None -> true
    in
    if (not !stopped) && horizon_ok then begin
      (* a paused (crashed) or disconnected server simply misses the
         beat — that silence is the signal the monitor reads *)
      (try
         Network.send s.snet ~src:s.snode ~dst:to_
           (Probe_wire.encode_heartbeat ~seq:!seq ~incarnation:(incarnation ())
              ~state_version:(state_version ()));
         s.beats <- s.beats + 1
       with Invalid_argument _ -> ());
      incr seq;
      Network.schedule s.snet ~delay:period beat
    end
  in
  beat ();
  fun () -> stopped := true

type result =
  | Verdicts of (Prefix.t * Probe_wire.verdict) list
  | Declined of string
  | Timeout

type client = {
  net : Network.t;
  node : Network.node_id;
  pending : (int, result -> unit) Hashtbl.t;
  (* heartbeat routing: server node -> health monitors to feed (every
     endpoint on that server registers its own) *)
  watchers : (Network.node_id, Health.t) Hashtbl.t;
  mutable next_id : int;
  mutable wire_errors : int;
  mutable late : int;
}

let client net ~name =
  let node = Network.add_node net ~name ~handler:(fun _ ~self:_ ~from:_ _ -> ()) in
  let c =
    { net; node; pending = Hashtbl.create 16; watchers = Hashtbl.create 4;
      next_id = 0; wire_errors = 0; late = 0 }
  in
  let complete req_id r =
    match Hashtbl.find_opt c.pending req_id with
    | None ->
      (* duplicate or late response: the call already completed (or
         timed out) — drop and count, never apply twice *)
      c.late <- c.late + 1
    | Some k ->
      Hashtbl.remove c.pending req_id;
      k r
  in
  let handler net ~self:_ ~from b =
    match Probe_wire.decode b with
    | exception Rbuf.Truncated _ -> c.wire_errors <- c.wire_errors + 1
    | Probe_wire.Request _ -> c.wire_errors <- c.wire_errors + 1
    | Probe_wire.Response { req_id; verdicts } -> complete req_id (Verdicts verdicts)
    | Probe_wire.Decline { req_id; reason } -> complete req_id (Declined reason)
    | Probe_wire.Error { req_id; reason } ->
      complete req_id (Declined ("remote error: " ^ reason))
    | Probe_wire.Heartbeat { incarnation; state_version; _ } ->
      List.iter
        (fun h ->
          Health.note_heartbeat h ~now:(Network.now net) ~incarnation ~state_version)
        (Hashtbl.find_all c.watchers from)
  in
  Network.set_handler net node handler;
  c

let client_node c = c.node

let fresh_id c =
  let id = c.next_id in
  c.next_id <- (c.next_id + 1) land 0xFFFFFFFF;
  id

type config = {
  timeout : float;
  retries : int;
  backoff : float;
  max_in_flight : int;
  jitter : float;
  breaker_threshold : int;
  breaker_cooldown : float;
}

let default_config =
  { timeout = 1.0; retries = 2; backoff = 2.0; max_in_flight = 8;
    jitter = 0.0; breaker_threshold = 0; breaker_cooldown = 5.0 }

type breaker_state =
  | Closed
  | Open of { until : float; opens : int }
  | Half_open of { opens : int }

type endpoint = {
  ecl : client;
  server : Network.node_id;
  cfg : config;
  rng : Rng.t;  (* jitter draws: backoff and breaker cooldown *)
  health : Health.t;
  mutable calls : int;
  mutable retried : int;
  mutable timed_out : int;
  mutable declined : int;
  mutable fail_fast : int;
  mutable opens : int;
  mutable consec_timeouts : int;
  mutable breaker : breaker_state;
  mutable trial_in_flight : bool;  (* the single half-open trial *)
}

let default_endpoint_seed = 0x0D1CE9L

let endpoint ?(config = default_config) ?(seed = default_endpoint_seed) ecl ~server =
  if config.timeout <= 0.0 then invalid_arg "Probe_rpc.endpoint: timeout must be positive";
  if config.retries < 0 then invalid_arg "Probe_rpc.endpoint: negative retries";
  if config.backoff < 1.0 then invalid_arg "Probe_rpc.endpoint: backoff below 1";
  if config.max_in_flight < 1 then invalid_arg "Probe_rpc.endpoint: empty in-flight window";
  if not (config.jitter >= 0.0 && config.jitter < Float.infinity) then
    invalid_arg "Probe_rpc.endpoint: jitter must be finite and non-negative";
  if config.breaker_threshold < 0 then
    invalid_arg "Probe_rpc.endpoint: negative breaker threshold";
  if config.breaker_cooldown <= 0.0 then
    invalid_arg "Probe_rpc.endpoint: breaker cooldown must be positive";
  let health = Health.create ~now:(Network.now ecl.net)
      ~name:(Network.node_name ecl.net server) ()
  in
  Hashtbl.add ecl.watchers server health;
  { ecl; server; cfg = config; rng = Rng.create seed; health;
    calls = 0; retried = 0; timed_out = 0; declined = 0; fail_fast = 0; opens = 0;
    consec_timeouts = 0; breaker = Closed; trial_in_flight = false }

let endpoint_config ep = ep.cfg
let endpoint_link ep = (ep.ecl.net, ep.ecl.node, ep.server)
let endpoint_health ep = ep.health

let breaker_state ep =
  match ep.breaker with
  | Closed -> `Closed
  | Open _ -> `Open
  | Half_open _ -> `Half_open

(* The simulated network is single-threaded; one domain pumps it at a
   time. The lock is re-entrant per domain so a probe issued from inside
   a network event (a daemon episode firing mid-pump) nests instead of
   deadlocking. *)
let rpc_lock = Mutex.create ()
let rpc_owner : int option Atomic.t = Atomic.make None

let with_rpc_lock f =
  let me = (Domain.self () :> int) in
  match Atomic.get rpc_owner with
  | Some owner when owner = me -> f ()
  | Some _ | None ->
    Mutex.lock rpc_lock;
    Atomic.set rpc_owner (Some me);
    Fun.protect
      ~finally:(fun () ->
        Atomic.set rpc_owner None;
        Mutex.unlock rpc_lock)
      f

(* Breaker bookkeeping, shared by every call path. A wire-delivered
   answer (verdicts OR a decline: the server is alive either way) closes
   the breaker and resets the timeout streak; a timeout extends the
   streak and, at the threshold, opens the breaker for
   [cooldown * backoff^opens], jittered — during which probes fail fast
   as [Declined] without touching the wire. After the cooldown one
   half-open trial rides the link: success closes, another timeout
   reopens with a doubled cooldown. *)
let note_wire_answer ep =
  ep.consec_timeouts <- 0;
  ep.trial_in_flight <- false;
  (match ep.breaker with
  | Closed -> ()
  | Open _ | Half_open _ -> ep.breaker <- Closed);
  Health.note_ok ep.health ~now:(Network.now ep.ecl.net)

let note_wire_timeout ep =
  let now = Network.now ep.ecl.net in
  ep.consec_timeouts <- ep.consec_timeouts + 1;
  Health.note_timeout ep.health ~now;
  if ep.cfg.breaker_threshold > 0 then begin
    let open_after opens =
      let cooldown =
        let base = ep.cfg.breaker_cooldown *. (ep.cfg.backoff ** float_of_int (min opens 16)) in
        if ep.cfg.jitter > 0.0 then base *. (1.0 +. Rng.float ep.rng ep.cfg.jitter)
        else base
      in
      ep.opens <- ep.opens + 1;
      ep.breaker <- Open { until = now +. cooldown; opens = opens + 1 };
      Health.note_down ep.health ~now
    in
    match ep.breaker with
    | Half_open { opens } ->
      (* the trial itself timed out: back open, longer cooldown *)
      ep.trial_in_flight <- false;
      open_after opens
    | Closed when ep.consec_timeouts >= ep.cfg.breaker_threshold -> open_after 0
    | Closed | Open _ -> ()
  end

(* [`Send] puts the request on the wire; [`Fail_fast] answers it
   locally, without burning the timeout budget. *)
let breaker_gate ep =
  match ep.breaker with
  | Closed -> `Send
  | Open { until; opens } when Network.now ep.ecl.net >= until ->
    ep.breaker <- Half_open { opens };
    ep.trial_in_flight <- true;
    `Send
  | Open _ -> `Fail_fast
  | Half_open _ when not ep.trial_in_flight ->
    ep.trial_in_flight <- true;
    `Send
  | Half_open _ -> `Fail_fast

let call_batch ep reqs =
  if reqs = [] then []
  else
    with_rpc_lock @@ fun () ->
    let c = ep.ecl in
    let net = c.net in
    let arr = Array.of_list reqs in
    let n = Array.length arr in
    let results = Array.make n Timeout in
    let completed = ref 0 in
    let inflight = ref 0 in
    let next = ref 0 in
    let finish ?(wire = true) i r =
      (match r with
      | Declined _ ->
        ep.declined <- ep.declined + 1;
        if wire then note_wire_answer ep
      | Timeout ->
        ep.timed_out <- ep.timed_out + 1;
        if wire then note_wire_timeout ep
      | Verdicts _ -> if wire then note_wire_answer ep);
      results.(i) <- r;
      incr completed;
      decr inflight
    in
    let rec attempt req_id i k =
      (* a send over a cut link fails immediately; the timeout below
         still runs, so the attempt degrades instead of raising *)
      (try
         Network.send net ~src:c.node ~dst:ep.server
           (Probe_wire.encode_request ~req_id arr.(i))
       with Invalid_argument _ -> ());
      let expires =
        let base = ep.cfg.timeout *. (ep.cfg.backoff ** float_of_int k) in
        (* seeded jitter desynchronizes retries across endpoints after a
           shared blip; zero (the default) keeps the legacy schedule *)
        if ep.cfg.jitter > 0.0 then base *. (1.0 +. Rng.float ep.rng ep.cfg.jitter)
        else base
      in
      Network.schedule net ~delay:expires (fun () ->
          if Hashtbl.mem c.pending req_id then begin
            if k < ep.cfg.retries then begin
              ep.retried <- ep.retried + 1;
              attempt req_id i (k + 1)
            end
            else begin
              Hashtbl.remove c.pending req_id;
              finish i Timeout
            end
          end)
    in
    let launch i =
      ep.calls <- ep.calls + 1;
      incr inflight;
      match breaker_gate ep with
      | `Fail_fast ->
        ep.fail_fast <- ep.fail_fast + 1;
        finish ~wire:false i
          (Declined
             (Printf.sprintf "circuit open: %s is down"
                (Network.node_name net ep.server)))
      | `Send ->
        let req_id = fresh_id c in
        Hashtbl.replace c.pending req_id (fun r -> finish i r);
        attempt req_id i 0
    in
    while !completed < n do
      while !inflight < ep.cfg.max_in_flight && !next < n do
        launch !next;
        incr next
      done;
      if !completed < n && not (Network.step net) then begin
        (* unreachable while a timeout event is pending — but if the
           queue ever runs dry, fail every outstanding request rather
           than spin *)
        Hashtbl.reset c.pending;
        ep.timed_out <- ep.timed_out + (n - !completed);
        completed := n
      end
    done;
    Array.to_list results

let call ep req =
  match call_batch ep [ req ] with
  | [ r ] -> r
  | _ -> assert false

type stats = {
  calls : int;
  retries : int;
  timeouts : int;
  declines : int;
  wire_errors : int;
  late_responses : int;
  fail_fast : int;
  breaker_opens : int;
}

let stats (ep : endpoint) =
  {
    calls = ep.calls;
    retries = ep.retried;
    timeouts = ep.timed_out;
    declines = ep.declined;
    wire_errors = ep.ecl.wire_errors;
    late_responses = ep.ecl.late;
    fail_fast = ep.fail_fast;
    breaker_opens = ep.opens;
  }
