(** Cross-network exploration (the paper's §2.4 extension).

    Local exploration covers a single node's actions; their "far reaching
    consequences ... need to be observed from a system-wide perspective"
    (§2.1). The paper envisions letting exploration messages flow to other
    nodes "in a way that doesn't affect the live system": remote nodes
    checkpoint their state and process these messages in isolation over
    their checkpointed state, while confidentiality demands that "nodes
    only communicate state information through a narrow interface yet
    capable to allow us to detect faults" (§2.4).

    This module implements that design:

    - a {!agent} represents a cooperating remote node (a different
      administrative domain). It owns its live router and never exposes
      state or configuration;
    - {!probe} lets the exploring node submit one exploration message.
      The agent checkpoints its own live router, processes the message on
      an isolated clone, and answers with a {!verdict} {e per announced
      prefix} — three booleans and two counts. No RIB contents, no
      filters, no origin data cross the boundary;
    - probes are independent request/verdict exchanges over a narrow
      interface, so they shard naturally: {!probe_all} fans a batch out
      over the {!Dice_exec.Pool} worker pool, and each agent memoizes
      repeated verdict queries in a versioned {!Dice_exec.Vcache}
      (invalidated the moment the remote live router processes an
      update);
    - {!checker} packages remote probing as a fault checker: every
      message an exploration run would send to a neighbor with an agent
      is forwarded (from the interception sandbox, never the live
      network), and remote origin conflicts become system-wide fault
      reports. *)

open Dice_inet
open Dice_bgp

type agent

val agent : name:string -> addr:Ipv4.t -> explorer_addr:Ipv4.t -> Router.t -> agent
(** [agent ~name ~addr ~explorer_addr router]: a remote node that the
    exploring node reaches at [addr], running [router] as its live
    process, and that knows the exploring node as its neighbor
    [explorer_addr]. The agent checkpoints [router] lazily and
    re-checkpoints when the live router has processed new updates
    since. Agents are domain-safe: concurrent probes from worker domains
    share one checkpoint and count through atomic counters. *)

val agent_name : agent -> string
val agent_addr : agent -> Ipv4.t

type verdict = {
  accepted : bool;  (** the remote import policy accepted the route *)
  installed : bool;  (** it became the remote node's best route *)
  origin_conflict : bool;
      (** it overrides the origin AS of something the remote node already
          routes — detected {e at} the remote node, against state the
          local node cannot see *)
  covers_foreign : int;
      (** how many remote routes with other origins the announcement
          {e covers} (claims a super-block of) — the coverage-leak class:
          traffic for the uncovered gaps would divert to the announcer *)
  would_propagate : int;
      (** how many further sessions the remote node would re-advertise
          on — the blast radius *)
}

val probe : agent -> from:Ipv4.t -> Msg.t -> (Prefix.t * verdict) list
(** Submit one exploration message as if it arrived on the session with
    [from] (the exploring node's address on that peering). One
    [(prefix, verdict)] pair per announced prefix, in NLRI order — the
    pairing is what lets a multi-prefix exploratory UPDATE attribute each
    verdict to the remote prefix it concerns. Empty for non-UPDATE
    messages or pure withdrawals. The agent's live router is never
    mutated. Repeated probes of the same canonicalized [(from, message)]
    answer from the agent's verdict cache until the remote live router
    processes another update. *)

val probe_all :
  ?jobs:int -> (agent * Ipv4.t * Msg.t) list -> (Prefix.t * verdict) list list
(** [probe_all ~jobs reqs] probes every [(agent, from, msg)] request,
    sharding them across [jobs] worker domains ([1], the default, stays
    on the calling domain). Results are in request order regardless of
    schedule, and each equals what the corresponding sequential {!probe}
    would return. *)

val probes_performed : agent -> int
val checkpoints_taken : agent -> int

val vcache_hits : agent -> int
(** Probes answered from the agent's verdict cache. *)

val vcache_hit_rate : agent -> float
(** Fraction of probes answered from the verdict cache; [0.] before any
    probe. *)

val checker : ?jobs:int -> agents:agent list -> unit -> Checker.t
(** A {!Checker.t} that extends every exploration outcome across the
    network: each [To_peer] message the outcome would send to an agent's
    address is probed remotely — at every agent registered for that
    address, [jobs] probes at a time (default [1]). Findings carry the
    {e remote} prefix the verdict concerns (also under a [remote-prefix]
    detail, with the locally explored prefix under [local-prefix]):
    - [remote-origin-conflict] (critical): the explored announcement
      would override origins at the remote node — the local node could
      not have detected this, the conflicting route exists only in the
      remote RIB;
    - [remote-coverage-leak] (critical): the explored announcement claims
      a super-block of space the remote node routes to other origins;
    - [remote-propagation] (warning): the remote node would accept and
      re-advertise the exploratory route further ([would_propagate]
      sessions) — the leak crosses a second domain boundary. *)
