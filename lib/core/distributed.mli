(** Cross-network exploration (the paper's §2.4 extension), over a wire.

    Local exploration covers a single node's actions; their "far reaching
    consequences ... need to be observed from a system-wide perspective"
    (§2.1). The paper envisions letting exploration messages flow to
    other administrative domains "in a way that doesn't affect the live
    system", while confidentiality demands that "nodes only communicate
    state information through a narrow interface yet capable to allow us
    to detect faults" (§2.4).

    Here the narrow interface is a {e protocol}, not a convention:

    - {!Probe_wire} defines the only data that ever crosses a domain
      boundary — length-framed probe requests (claimed arrival session +
      encoded message) and responses (per-prefix {!verdict}s, declines,
      errors);
    - an {!agent} represents a cooperating remote node behind a
      {!transport}: [Local] (the remote's live router in this process —
      tests, benches, co-located domains) or [Remote] (a
      {!Probe_rpc.endpoint} reaching a node on a {!Dice_sim.Network}).
      {!probe}, {!probe_all} and {!checker} are transport-agnostic: the
      same exploration drives either;
    - in [Remote] mode, probes ride simulated links and inherit their
      latency and failures. Each request gets a virtual-time timeout,
      bounded retries with exponential backoff, and a bounded in-flight
      window ({!Probe_rpc.config}); a cut or slow link degrades the
      probe to a {!Timeout} {!outcome} instead of hanging or aborting
      exploration;
    - whatever the transport, the agent answering a probe checkpoints its
      own live router, processes the message on an isolated clone, and
      reveals only the verdict — no RIB contents, no filters, no origin
      data. Repeated probes of the same canonical request (the
      {!Probe_wire.canonical_request} bytes — the cache and the wire
      share one canonicalization) answer from a version-stamped
      {!Dice_exec.Vcache} beside the live router, evicted the moment the
      router processes an update;
    - {!checker} packages remote probing as a fault checker: every
      message an exploration run would send to a neighbor with an agent
      is forwarded (from the interception sandbox, never the live
      network), and remote origin conflicts become system-wide fault
      reports. *)

open Dice_inet
open Dice_bgp

type verdict = Probe_wire.verdict = {
  accepted : bool;
  installed : bool;
  origin_conflict : bool;
  covers_foreign : int;
  would_propagate : int;
}
(** {!Verdict.t}, re-exported (via {!Probe_wire.verdict}) so existing
    call sites keep compiling — see {!Verdict} for field semantics, the
    pretty-printer and the comparator. *)

type outcome = Probe_rpc.result =
  | Verdicts of (Prefix.t * verdict) list
      (** one verdict per announced prefix, in NLRI order — the pairing
          is what lets a multi-prefix exploratory UPDATE attribute each
          verdict to the remote prefix it concerns *)
  | Declined of string
      (** the agent answered but refused: non-announcement messages, or
          a remote error frame *)
  | Timeout
      (** all attempts expired — only [Remote] transports produce this *)

val verdicts : outcome -> (Prefix.t * verdict) list
(** The verdict list, empty for {!Declined}/{!Timeout}. *)

type transport =
  | Local of Speaker.instance
      (** the cooperating node's live speaker, probed in-process — the
          original path, kept for tests, benches and co-located domains.
          Any {!Speaker.S} implementation can sit here; mixed fleets put
          a different implementation behind each agent *)
  | Remote of Probe_rpc.endpoint
      (** a node on a simulated network, probed with wire frames; the
          only cross-domain data is what {!Probe_wire} can express *)

type agent

val agent : name:string -> addr:Ipv4.t -> explorer_addr:Ipv4.t -> transport -> agent
(** [agent ~name ~addr ~explorer_addr transport]: a remote node that the
    exploring node reaches at [addr] and that knows the exploring node
    as its neighbor [explorer_addr]. With a [Local] transport each probe
    runs over a disposable {!Speaker.clone} of the live speaker — an
    O(#peers) copy-on-write copy sharing all persistent route storage
    ({!Dice_inet.Prefix_trie} structural sharing), so probing never
    serializes the table; agents are domain-safe (cloning is mutexed,
    counters are atomic). With a [Remote] transport the agent holds no
    speaker at all — the serving side does (see {!serve}). *)

val agent_name : agent -> string
val agent_addr : agent -> Ipv4.t

val agent_explorer_addr : agent -> Ipv4.t
(** The exploring node's address on the peering — what probes built from
    exploration outputs claim as their arrival session. *)

val agent_transport : agent -> transport
(** Current transport. Mutable under the hood: {!Recovery.crash_restart}
    swaps a rebuilt speaker into a [Local] agent in place, so the
    agent's identity, caches and counters survive the restart. *)

val agent_health : agent -> Health.t
(** The agent's liveness monitor. For a [Remote] agent this {e is} the
    endpoint's monitor ({!Probe_rpc.endpoint_health}) — heartbeats and
    probe outcomes feed it in the RPC layer, never double-counted here.
    A [Local] agent gets its own monitor, which stays [Alive] (an
    in-process speaker has no wire to lose). *)

val serve : Dice_sim.Network.t -> agent -> Probe_rpc.server
(** Put a [Local] agent on the network: registers a node whose handler
    decodes probe request frames, probes the agent's live speaker, and
    answers with response/decline/error frames. The server is
    implementation-agnostic: it hosts whatever speaker the agent holds,
    answering the same unmodified {!Probe_wire} frames. The returned server's
    node id is what a {!Probe_rpc.endpoint} on the exploring side
    connects to.
    @raise Invalid_argument on a [Remote] agent (forwarding probes
    through a relay is not a thing the narrow interface allows). *)

val probe : agent -> from:Ipv4.t -> Msg.t -> outcome
(** Submit one exploration message as if it arrived on the session with
    [from] (the exploring node's address on that peering). The agent's
    live speaker is never mutated. Non-announcements decline without
    touching the wire. Over a [Remote] transport this drives the
    simulated network until the response or the final timeout fires —
    it never raises and never hangs. *)

val probe_all : ?jobs:int -> (agent * Ipv4.t * Msg.t) list -> outcome list
(** [probe_all ~jobs reqs] answers every [(agent, from, msg)] request,
    in request order regardless of schedule. [Local] requests shard
    across [jobs] worker domains ([1], the default, stays on the calling
    domain); [Remote] requests pipeline over each endpoint's in-flight
    window on the calling domain — the simulated network is
    single-threaded, so wire parallelism comes from overlapping
    requests on the link, not from worker domains. *)

type stats = {
  probes : int;  (** announcements submitted ({!probe} / {!probe_all}) *)
  checkpoints : int;
      (** distinct live-speaker versions probes cloned against — one
          burst of probes over an unchanged speaker is one logical
          checkpoint, however many clones it took *)
  clones : int;  (** explorer clones taken of the live speaker *)
  vcache_hits : int;  (** probes answered from the verdict cache *)
  vcache_hit_rate : float;  (** [0.] before any probe *)
  timeouts : int;  (** probes that exhausted all attempts *)
  declines : int;  (** probes answered with a decline *)
  retries : int;
      (** re-send attempts after a per-request timeout. {e Remote-only}:
          retries happen inside the RPC layer, below the probe/outcome
          level these counters live at, and a [Local] transport has no
          equivalent event — it stays [0] there by definition, not by
          omission. *)
}

val stats : agent -> stats
(** One snapshot of every per-agent counter. Every field except
    [retries] means the same thing on both transports: [probes],
    [declines] and [timeouts] are counted on the probing side from the
    {!outcome} of each submitted probe (a [Local] probe can simply never
    produce the [Timeout] outcome, so its count stays zero).
    [checkpoints], [vcache_hits] and [vcache_hit_rate] are properties of
    the agent that holds the live speaker: for a [Local] transport
    that is this agent; for a [Remote] transport they are zero {e here}
    and reported by the serving side, where the speaker is. *)

(** Agent crash recovery: surviving a node restart with bounded state.

    The crash model ({!Dice_sim.Network.pause_node} or a seeded
    {!Dice_sim.Faults.node} schedule) kills a serving node mid-hunt.
    A {!harness} attached to a [Local] agent keeps what recovery needs:
    the last {!Speaker.snapshot} of the live speaker plus a bounded
    journal of the updates fed since. When the journal reaches its cap
    it is folded into a fresh snapshot, so recovery always replays at
    most [journal_cap] updates and is always {e exact} — snapshot +
    journal is byte-equivalent state to the speaker that crashed.

    {!crash_restart} (typically wired as the node's
    {!Dice_sim.Network.set_restart_hook}) rebuilds the speaker from
    snapshot + journal, swaps it into the agent in place, drops the
    agent's checkpoint-image cache, epoch-invalidates its verdict cache
    (a rebuilt speaker's [updates_processed] can collide with a
    pre-crash version), and bumps the incarnation that the server's
    next heartbeat announces. *)
module Recovery : sig
  type harness

  val attach : ?journal_cap:int -> agent -> harness
  (** Snapshot the agent's live speaker and start journaling.
      [journal_cap] (default 64) bounds the replay.
      @raise Invalid_argument on a [Remote] agent or [journal_cap < 1]. *)

  val feed : harness -> peer:Ipv4.t -> Msg.t -> (Ipv4.t * Msg.t) list
  (** Feed the live speaker {e through the harness}: the update is
      journaled (or folded into a fresh snapshot at the cap) so recovery
      stays exact. Returns the speaker's outputs, like
      {!Speaker.feed}. *)

  val crash_restart : harness -> unit
  (** The restart: rebuild from snapshot + journal, swap the speaker
      into the agent, invalidate caches, bump the incarnation. *)

  val incarnation : harness -> int
  (** Restarts survived (0 before the first crash) — what heartbeats
      announce as the agent's life number. *)

  val restarts : harness -> int
  val snapshots : harness -> int
  (** Snapshots taken (the initial one plus each journal fold). *)

  val journal_length : harness -> int
  (** Updates currently in the journal (< [journal_cap]). *)

  val state_version : harness -> int
  (** The live speaker's [updates_processed] (0 on a [Remote] agent) —
      what heartbeats announce as the state version. *)
end

val checker : jobs:int -> agents:agent list -> Checker.t
(** A {!Checker.t} that extends every exploration outcome across the
    network: each message the outcome would send to an agent's address
    is probed remotely — at every agent registered for that
    address, through whatever transport each agent has. Unreachable
    agents degrade silently: a {!Timeout} or {!Declined} probe
    contributes no findings (and is visible in {!stats}); no exception
    escapes the checker. Findings carry the {e remote} prefix the
    verdict concerns (also under a [remote-prefix] detail, with the
    locally explored prefix under [local-prefix]):
    - [remote-origin-conflict] (critical): the explored announcement
      would override origins at the remote node — the local node could
      not have detected this, the conflicting route exists only in the
      remote RIB;
    - [remote-coverage-leak] (critical): the explored announcement claims
      a super-block of space the remote node routes to other origins;
    - [remote-propagation] (warning): the remote node would accept and
      re-advertise the exploratory route further ([would_propagate]
      sessions) — the leak crosses a second domain boundary. *)
