open Dice_inet
open Dice_bgp
module Wbuf = Dice_wire.Wbuf
module Rbuf = Dice_wire.Rbuf

let version = 2
let min_version = 1

type verdict = Verdict.t = {
  accepted : bool;
  installed : bool;
  origin_conflict : bool;
  covers_foreign : int;
  would_propagate : int;
}

type frame =
  | Request of { req_id : int; from : Ipv4.t; msg : bytes }
  | Response of { req_id : int; verdicts : (Prefix.t * verdict) list }
  | Decline of { req_id : int; reason : string }
  | Error of { req_id : int; reason : string }
  | Heartbeat of { seq : int; incarnation : int; state_version : int }

(* frame kinds on the wire *)
let k_request = 0
let k_response = 1
let k_decline = 2
let k_error = 3
let k_heartbeat = 4 (* version 2 and up *)

(* Anything malformed — truncation, alien version, unknown kind, bad
   field, trailing bytes — surfaces as the one exception decode is
   documented to raise. The payload carries field and offset, matching
   Rbuf's own failures. *)
let reject what (r : Rbuf.t) =
  raise (Rbuf.Truncated (Printf.sprintf "%s at byte %d" what (Rbuf.pos r)))

let addr_to_u32 a = Int32.to_int (Ipv4.to_int32 a) land 0xFFFFFFFF
let addr_of_u32 v = Ipv4.of_int32 (Int32.of_int v)

let canonical_request ~from msg =
  let body = Msg.encode msg in
  let w = Wbuf.create ~capacity:(8 + Bytes.length body) () in
  Wbuf.u32 w (addr_to_u32 from);
  Wbuf.u16 w (Bytes.length body);
  Wbuf.bytes w body;
  Wbuf.contents w

let frame ~kind ~req_id body =
  let w = Wbuf.create ~capacity:(10 + Bytes.length body) () in
  Wbuf.u8 w version;
  Wbuf.u8 w kind;
  Wbuf.u32 w req_id;
  Wbuf.u32 w (Bytes.length body);
  Wbuf.bytes w body;
  Wbuf.contents w

let encode_request ~req_id canonical = frame ~kind:k_request ~req_id canonical

let encode_verdict w (prefix, v) =
  Wbuf.u8 w (Prefix.len prefix);
  Wbuf.u32 w (addr_to_u32 (Prefix.network prefix));
  let flags =
    (if v.accepted then 1 else 0)
    lor (if v.installed then 2 else 0)
    lor if v.origin_conflict then 4 else 0
  in
  Wbuf.u8 w flags;
  Wbuf.u32 w v.covers_foreign;
  Wbuf.u32 w v.would_propagate

let encode_response ~req_id verdicts =
  let n = List.length verdicts in
  if n > 0xFFFF then invalid_arg "Probe_wire.encode_response: too many verdicts";
  let w = Wbuf.create () in
  Wbuf.u16 w n;
  List.iter (encode_verdict w) verdicts;
  frame ~kind:k_response ~req_id (Wbuf.contents w)

let encode_reason ~kind ~req_id reason =
  if String.length reason > 0xFFFF then invalid_arg "Probe_wire: reason too long";
  let w = Wbuf.create () in
  Wbuf.u16 w (String.length reason);
  Wbuf.string w reason;
  frame ~kind ~req_id (Wbuf.contents w)

let encode_decline ~req_id reason = encode_reason ~kind:k_decline ~req_id reason
let encode_error ~req_id reason = encode_reason ~kind:k_error ~req_id reason

let encode_heartbeat ~seq ~incarnation ~state_version =
  if incarnation < 0 || incarnation > 0xFFFFFFFF then
    invalid_arg "Probe_wire.encode_heartbeat: incarnation outside u32";
  if state_version < 0 || state_version > 0xFFFFFFFF then
    invalid_arg "Probe_wire.encode_heartbeat: state version outside u32";
  let w = Wbuf.create ~capacity:8 () in
  Wbuf.u32 w incarnation;
  Wbuf.u32 w state_version;
  frame ~kind:k_heartbeat ~req_id:(seq land 0xFFFFFFFF) (Wbuf.contents w)

let decode_request_body r =
  let from = addr_of_u32 (Rbuf.u32 ~what:"from" r) in
  let len = Rbuf.u16 ~what:"msg-len" r in
  let msg = Rbuf.take ~what:"msg" r len in
  (from, msg)

let decode_verdict r =
  let plen = Rbuf.u8 ~what:"prefix-len" r in
  if plen > 32 then reject "prefix-len" r;
  let prefix = Prefix.make (addr_of_u32 (Rbuf.u32 ~what:"prefix" r)) plen in
  let flags = Rbuf.u8 ~what:"flags" r in
  if flags land lnot 0x7 <> 0 then reject "flags" r;
  let covers_foreign = Rbuf.u32 ~what:"covers-foreign" r in
  let would_propagate = Rbuf.u32 ~what:"would-propagate" r in
  ( prefix,
    {
      accepted = flags land 1 <> 0;
      installed = flags land 2 <> 0;
      origin_conflict = flags land 4 <> 0;
      covers_foreign;
      would_propagate;
    } )

let decode_response_body r =
  let n = Rbuf.u16 ~what:"verdict-count" r in
  List.init n (fun _ -> decode_verdict r)

let decode_reason_body r =
  let len = Rbuf.u16 ~what:"reason-len" r in
  Bytes.to_string (Rbuf.take ~what:"reason" r len)

let decode_heartbeat_body ~seq r =
  let incarnation = Rbuf.u32 ~what:"incarnation" r in
  let state_version = Rbuf.u32 ~what:"state-version" r in
  Heartbeat { seq; incarnation; state_version }

let decode b =
  let r = Rbuf.of_bytes b in
  let v = Rbuf.u8 ~what:"version" r in
  if v < min_version || v > version then reject "version" r;
  let kind = Rbuf.u8 ~what:"kind" r in
  let req_id = Rbuf.u32 ~what:"req-id" r in
  let body_len = Rbuf.u32 ~what:"body-len" r in
  (* [sub] bounds the body: a length field the bytes cannot back fails
     here, before any body read; reads past [body_len] fail inside *)
  let body = Rbuf.sub r body_len in
  if not (Rbuf.eof r) then reject "trailing" r;
  let f =
    if kind = k_request then begin
      let from, msg = decode_request_body body in
      Request { req_id; from; msg }
    end
    else if kind = k_response then
      Response { req_id; verdicts = decode_response_body body }
    else if kind = k_decline then Decline { req_id; reason = decode_reason_body body }
    else if kind = k_error then Error { req_id; reason = decode_reason_body body }
    else if kind = k_heartbeat then begin
      (* version-gated: heartbeats entered the protocol at version 2 — a
         v1 frame claiming the kind is malformed, not merely new *)
      if v < 2 then reject "kind" r;
      decode_heartbeat_body ~seq:req_id body
    end
    else reject "kind" r
  in
  if not (Rbuf.eof body) then reject "body-trailing" body;
  f
