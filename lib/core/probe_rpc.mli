(** Probe RPC over the simulated network.

    {!Probe_wire} defines what crosses a domain boundary; this module
    moves it. An agent-side {!serve} registers a node on a
    {!Dice_sim.Network} and answers probe {!Probe_wire.Request} frames
    over its live router; an exploring-side {!endpoint} issues requests
    with fresh ids, per-request virtual-time timeouts (scheduled on the
    network clock via [Network.schedule]), bounded retries with
    exponential backoff, and a bounded in-flight window when batching.

    Failure degrades, never hangs: a dropped frame, a disconnected link,
    or a dead server turns the probe into a {!Timeout} result after the
    configured retries — no exception escapes a {!call}. Late responses
    to an earlier attempt of the same request still complete it (the
    request id is stable across retries), which is what lets backoff
    recover from a link whose round-trip exceeds the initial timeout.

    The protocol stays honest when the link misbehaves
    ({!Dice_sim.Faults}): execution is {e at most once} — the server
    keeps a bounded per-(requester, request-id) reply cache, so a
    retried or link-duplicated request re-sends the recorded reply
    instead of re-probing (no double-executed probes, no double-counted
    agent stats); the client completes each call at most once, dropping
    and counting duplicate or late responses ([late_responses]); and a
    corrupted frame surfaces as a counted malformed frame on whichever
    side received it ([bad_frames] / [wire_errors]) and is dropped —
    the attempt then times out and retries like a lost frame, rather
    than an exception escaping the event loop.

    The simulated network is single-threaded, so calls serialize: a
    global lock (re-entrant per domain) makes {!call}/{!call_batch} safe
    to reach from worker domains, at the price of no cross-domain
    parallelism for remote probes — parallelism on the wire comes from
    the in-flight window instead. *)

open Dice_inet
open Dice_bgp
module Network = Dice_sim.Network

(** {1 Agent side} *)

type reply =
  | Reply of (Prefix.t * Probe_wire.verdict) list
  | Refuse of string  (** answered with a {!Probe_wire.Decline} frame *)

type server

val serve :
  ?dedup_cache:int ->
  Network.t ->
  name:string ->
  answer:(from:Ipv4.t -> Msg.t -> reply) ->
  server
(** Register a node that answers probe frames. Each well-formed
    {!Probe_wire.Request} is decoded, answered via [answer], and the
    reply encoded back to the requester; an [answer] that raises becomes
    a {!Probe_wire.Error} frame (the exception never crosses the
    boundary, nor does it kill the node). Malformed or unexpected frames
    are counted and dropped.

    [dedup_cache] (default 512) bounds the at-most-once reply cache: the
    last [dedup_cache] replies are kept per server, keyed by
    (requester node, request id), and a request seen again answers from
    the cache without re-invoking [answer]. At-most-once execution is
    therefore guaranteed while a request id's reply is still cached —
    with the default bound, for any realistic retry window. [0] disables
    deduplication (every frame re-executes).
    @raise Invalid_argument if [dedup_cache] is negative. *)

val server_node : server -> Network.node_id
val frames_served : server -> int
(** Well-formed request frames answered so far (cache replays
    included). *)

val frames_executed : server -> int
(** Requests that actually invoked [answer]:
    [frames_served = frames_executed + dedup_hits]. *)

val dedup_hits : server -> int
(** Retried or duplicated requests answered from the reply cache
    without re-executing. *)

val bad_frames : server -> int
(** Malformed or unexpected frames dropped so far (a corrupted request
    frame lands here). *)

val heartbeats_sent : server -> int
(** Heartbeat frames this server actually put on the wire. *)

val start_heartbeats :
  ?until:float ->
  server ->
  to_:Network.node_id ->
  period:float ->
  incarnation:(unit -> int) ->
  state_version:(unit -> int) ->
  unit -> unit
(** Emit {!Probe_wire.Heartbeat} frames from the server to [to_] every
    [period] virtual seconds, reading [incarnation] and [state_version]
    fresh at each beat (so a crash-recovered agent announces its new
    life without re-wiring). A paused (crashed) or disconnected server
    misses its beats silently — that gap {e is} the liveness signal.
    Returns a stop thunk; beating also stops once virtual time passes
    [until] (without a horizon or a stop call, the recurring timer keeps
    [Network.run] alive forever — simulations should pass [until]).
    @raise Invalid_argument on a non-positive or non-finite [period]. *)

(** {1 Exploring side} *)

type client

val client : Network.t -> name:string -> client
(** Register the exploring node the responses come back to. *)

val client_node : client -> Network.node_id

type config = {
  timeout : float;  (** virtual seconds before an attempt expires *)
  retries : int;  (** re-sends after the first attempt *)
  backoff : float;  (** attempt [i] waits [timeout *. backoff ** i] *)
  max_in_flight : int;  (** outstanding requests per {!call_batch} *)
  jitter : float;
      (** seeded-jitter fraction: each backoff delay (and breaker
          cooldown) is scaled by a deterministic uniform draw from
          [\[1, 1 + jitter)]. [0.0] (the default) keeps the pure
          exponential schedule — synchronized retries across endpoints
          amplify load spikes after a shared-link blip; a small jitter
          desynchronizes them without losing replayability (the draws
          come from the endpoint's own seeded stream). *)
  breaker_threshold : int;
      (** consecutive timeouts before the circuit breaker opens;
          [0] (the default) disables the breaker entirely *)
  breaker_cooldown : float;
      (** base open duration: opening [k] (from 0) holds for
          [breaker_cooldown *. backoff ** k], jittered, before the
          half-open trial *)
}

val default_config : config
(** 1 s virtual timeout, 2 retries, 2.0 backoff, 8 in flight, no
    jitter, breaker disabled, 5 s base cooldown. *)

type endpoint

val endpoint :
  ?config:config -> ?seed:int64 -> client -> server:Network.node_id -> endpoint
(** A client's view of one remote agent. The link itself is the
    caller's to manage ([Network.connect]/[disconnect]) — probing a
    disconnected endpoint is exactly how a partition is simulated.
    [seed] (fixed default) seeds the endpoint's private jitter stream;
    equal seeds and call sequences replay identical backoff and
    cooldown schedules. Creating the endpoint also registers its
    {!Health} monitor for the server's heartbeats on this client. *)

val endpoint_config : endpoint -> config

val endpoint_link : endpoint -> Network.t * Network.node_id * Network.node_id
(** The wire under an endpoint: [(network, client node, server node)].
    This is the link to cut for a partition, or to hand a
    {!Dice_sim.Faults} model for chaos runs. *)

val endpoint_health : endpoint -> Health.t
(** The endpoint's liveness monitor: fed passively by the server's
    heartbeats arriving at this client, and actively by every probe
    outcome ({!Health.note_ok} on any wire answer,
    {!Health.note_timeout} on an exhausted request,
    {!Health.note_down} when the breaker opens). *)

val breaker_state : endpoint -> [ `Closed | `Open | `Half_open ]
(** Where the circuit breaker stands: [`Closed] (probes flow), [`Open]
    (probes fail fast as [Declined]), [`Half_open] (one trial probe is
    allowed through; others fail fast). Always [`Closed] while
    [breaker_threshold = 0]. *)

type result =
  | Verdicts of (Prefix.t * Probe_wire.verdict) list
  | Declined of string
      (** the agent answered but refused: decline or error frame *)
  | Timeout  (** all attempts expired — link down, lost, or too slow *)

val call : endpoint -> bytes -> result
(** [call ep canonical] probes with a {!Probe_wire.canonical_request}
    body, driving the network until the response or the last attempt's
    timeout fires. Never raises. *)

val call_batch : endpoint -> bytes list -> result list
(** Pipeline a batch over the endpoint's in-flight window: up to
    [max_in_flight] requests ride the link concurrently, each with its
    own timeout/retry schedule. Results are in request order. *)

type stats = {
  calls : int;  (** requests issued (batched or single) *)
  retries : int;  (** re-send attempts after a timeout *)
  timeouts : int;  (** requests that exhausted all attempts *)
  declines : int;  (** requests answered with decline/error frames *)
  wire_errors : int;
      (** malformed frames received by the client (a corrupted response
          lands here; the attempt retries via its timeout) *)
  late_responses : int;
      (** responses for an already-completed (or timed-out) call —
          duplicates and stragglers — dropped, never applied twice *)
  fail_fast : int;
      (** requests answered [Declined] locally by the open breaker,
          without touching the wire (counted in [calls] and [declines]
          too) *)
  breaker_opens : int;  (** times the breaker opened (re-opens included) *)
}

val stats : endpoint -> stats
