(** Per-endpoint liveness monitoring for the federated probe fleet.

    DiCE's online setting means a cooperating remote domain can crash,
    reboot, and come back mid-hunt. This monitor tracks each endpoint
    through three states — [Alive], [Suspect], [Down] — from two
    independent evidence streams:

    - {e passive}: {!Probe_wire.Heartbeat} frames
      ({!note_heartbeat}); a growing gap since the last one demotes
      through [Suspect] to [Down] ({!check});
    - {e active}: probe outcomes — a reply promotes back to [Alive]
      ({!note_ok}), a timeout demotes to [Suspect] ({!note_timeout}),
      and the circuit breaker opening declares [Down] ({!note_down}).

    Promotion always takes fresh positive evidence; silence only ever
    demotes. All timestamps are virtual network time, so health is as
    replayable as the fault schedule that drives it. Safe for concurrent
    use from worker domains. *)

type state = Alive | Suspect | Down

val state_to_string : state -> string
val pp_state : Format.formatter -> state -> unit

type config = {
  suspect_after : float;
      (** heartbeat-gap seconds before [Alive] demotes to [Suspect] *)
  down_after : float;  (** gap seconds before any state demotes to [Down] *)
  history : int;  (** state transitions retained (newest kept) *)
}

val default_config : config
(** 0.5 s to [Suspect], 2 s to [Down], 32 transitions of history. *)

type t

val create : ?config:config -> ?now:float -> name:string -> unit -> t
(** A fresh monitor, [Alive] as of [now] (default 0 — the virtual
    clock's origin).
    @raise Invalid_argument if [suspect_after] is non-positive,
    [down_after < suspect_after], or [history < 1]. *)

val name : t -> string
val config : t -> config

val note_heartbeat : t -> now:float -> incarnation:int -> state_version:int -> unit
(** A heartbeat arrived: refresh [last_seen], record the peer's
    incarnation (monotone: a late heartbeat from a previous life cannot
    roll it back) and state version, promote to [Alive]. *)

val note_ok : t -> now:float -> unit
(** A probe got a real answer: refresh [last_seen], promote to
    [Alive]. *)

val note_timeout : t -> now:float -> unit
(** A probe exhausted its retries: demote [Alive] to [Suspect]. One
    timeout never declares [Down] — that takes the breaker
    ({!note_down}) or a heartbeat gap ({!check}). *)

val note_down : t -> now:float -> unit
(** Declare the endpoint [Down] (the circuit breaker opening). *)

val check : t -> now:float -> state
(** Apply the heartbeat-gap rule at [now] and return the (possibly
    demoted) state: a gap beyond [down_after] is [Down], beyond
    [suspect_after] demotes [Alive] to [Suspect]. Never promotes. *)

val state : t -> state
(** Current state, without re-evaluating gaps. *)

val last_seen : t -> float
(** Virtual time of the last positive evidence. *)

val incarnation : t -> int
(** Highest incarnation heard from the endpoint (0 before any
    heartbeat). A bump means the remote agent crashed and recovered. *)

val state_version : t -> int
(** The endpoint's speaker version ([updates_processed]) as of the last
    heartbeat. *)

val transitions : t -> (float * state) list
(** State-transition history, oldest first, bounded by
    [config.history]. Includes the initial [(now, Alive)]. *)

type stats = {
  heartbeats : int;
  probes_ok : int;
  probe_timeouts : int;
  transitions : int;  (** total transitions, including beyond history *)
}

val stats : t -> stats
val pp : Format.formatter -> t -> unit
