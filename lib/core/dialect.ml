(* Re-export, same reason as Intent: Dice_core.Dialect is the public
   name for the translator signature the Speakers registry carries. *)
include Dice_bgp.Dialect
