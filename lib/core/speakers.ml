open Dice_inet
open Dice_bgp

(* The one concrete-implementation reference the core is allowed. *)
module Router = Dice_bgp.Router
module Qrouter = Dice_bgp2.Qrouter
module Xrouter = Dice_bgp3.Xrouter

module Bird = struct
  type t = Router.t

  let id = "bird"
  let dialect : (module Dialect.S) = (module Bird_dialect)
  let create (r : Speaker.realization) = Router.create r.Speaker.config

  let msgs_of outputs =
    List.filter_map
      (function Router.To_peer (dst, m) -> Some (dst, m) | _ -> None)
      outputs

  let establish t ~peer =
    match Config_types.find_peer (Router.config t) peer with
    | None ->
      invalid_arg (Printf.sprintf "Speakers.Bird: unknown peer %s" (Ipv4.to_string peer))
    | Some pcfg ->
      let remote_as = pcfg.Config_types.remote_as in
      ignore (Router.handle_event t ~peer Fsm.Manual_start);
      ignore (Router.handle_event t ~peer Fsm.Tcp_connected);
      ignore
        (Router.handle_msg t ~peer
           (Msg.Open
              {
                Msg.version = 4;
                my_as = remote_as land 0xFFFF;
                hold_time = 90;
                bgp_id = peer;
                capabilities = [ Msg.Cap_as4 remote_as ];
              }));
      ignore (Router.handle_msg t ~peer Msg.Keepalive)

  let feed ?ctx t ~peer msg = msgs_of (Router.handle_msg ?ctx t ~peer msg)

  let import_concolic ~ctx t ~peer croute =
    let o = Router.import_concolic ~ctx t ~peer croute in
    {
      Speaker.prefix = o.Router.prefix;
      accepted = o.Router.accepted;
      installed = o.Router.installed;
      route = o.Router.route;
      previous_best = o.Router.previous_best;
      outputs = msgs_of o.Router.outputs;
    }

  let loc_rib = Router.loc_rib
  let best_route = Router.best_route

  let learned_from t ~peer prefix =
    match Router.adj_rib_in t peer with
    | Some adj -> Rib.Adj.find_opt prefix adj <> None
    | None -> false

  let updates_processed = Router.updates_processed

  let freeze t =
    let image = Router.freeze t in
    fun () -> Router.serialize image

  let snapshot = Router.snapshot
  let restore (r : Speaker.realization) image = Router.restore r.Speaker.config image
  let clone = Router.clone
end

module Quagga = struct
  type t = Qrouter.t

  let id = "quagga"
  let dialect : (module Dialect.S) = (module Dice_bgp2.Quagga_dialect)
  let create (r : Speaker.realization) = Qrouter.create r.Speaker.config
  let establish t ~peer = Qrouter.establish t ~peer
  let feed ?ctx t ~peer msg = Qrouter.feed ?ctx t ~peer msg

  let import_concolic ~ctx t ~peer croute =
    let o = Qrouter.import_concolic ~ctx t ~peer croute in
    {
      Speaker.prefix = o.Qrouter.prefix;
      accepted = o.Qrouter.accepted;
      installed = o.Qrouter.installed;
      route = o.Qrouter.route;
      previous_best = o.Qrouter.previous_best;
      outputs = o.Qrouter.outputs;
    }

  let loc_rib = Qrouter.table
  let best_route = Qrouter.best_route
  let learned_from t ~peer prefix = Qrouter.learned_from t ~peer prefix
  let updates_processed = Qrouter.updates_processed

  (* No incremental freeze: serialize eagerly, hand back the bytes. *)
  let freeze t =
    let image = Qrouter.snapshot t in
    fun () -> image

  let snapshot = Qrouter.snapshot
  let restore (r : Speaker.realization) image = Qrouter.restore r.Speaker.config image
  let clone = Qrouter.clone
end

module Xorp = struct
  type t = Xrouter.t

  let id = "xorp"
  let dialect : (module Dialect.S) = (module Dice_bgp3.Xorp_dialect)
  let create (r : Speaker.realization) = Xrouter.create r.Speaker.config
  let establish t ~peer = Xrouter.establish t ~peer
  let feed ?ctx t ~peer msg = Xrouter.feed ?ctx t ~peer msg

  let import_concolic ~ctx t ~peer croute =
    let o = Xrouter.import_concolic ~ctx t ~peer croute in
    {
      Speaker.prefix = o.Xrouter.prefix;
      accepted = o.Xrouter.accepted;
      installed = o.Xrouter.installed;
      route = o.Xrouter.route;
      previous_best = o.Xrouter.previous_best;
      outputs = o.Xrouter.outputs;
    }

  let loc_rib = Xrouter.table
  let best_route = Xrouter.best_route
  let learned_from t ~peer prefix = Xrouter.learned_from t ~peer prefix
  let updates_processed = Xrouter.updates_processed

  (* No incremental freeze: serialize eagerly, hand back the bytes. *)
  let freeze t =
    let image = Xrouter.snapshot t in
    fun () -> image

  let snapshot = Xrouter.snapshot
  let restore (r : Speaker.realization) image = Xrouter.restore r.Speaker.config image
  let clone = Xrouter.clone
end

(* Pack an already-built router: the realization records its concrete
   config as the source (nothing was translated). *)
let concrete (module D : Dialect.S) config =
  { Speaker.source = Speaker.Config config; dialect = D.name; rendered = None; config }

let bird r =
  Speaker.pack (module Bird : Speaker.S with type t = Router.t)
    (concrete (module Bird_dialect) (Router.config r))
    r

let quagga q =
  Speaker.pack (module Quagga : Speaker.S with type t = Qrouter.t)
    (concrete (module Dice_bgp2.Quagga_dialect) (Qrouter.config q))
    q

let xorp x =
  Speaker.pack (module Xorp : Speaker.S with type t = Xrouter.t)
    (concrete (module Dice_bgp3.Xorp_dialect) (Xrouter.config x))
    x

let names = [ "bird"; "quagga"; "xorp" ]

let dialect name : (module Dialect.S) option =
  match name with
  | "bird" -> Some (module Bird_dialect)
  | "quagga" -> Some (module Dice_bgp2.Quagga_dialect)
  | "xorp" -> Some (module Dice_bgp3.Xorp_dialect)
  | _ -> None

let dialects = List.filter_map dialect names

let dialect_exn name =
  match dialect name with
  | Some d -> d
  | None ->
    invalid_arg
      (Printf.sprintf "unknown configuration dialect: %s (known: %s)" name
         (String.concat ", "
            (List.map (fun (module D : Dialect.S) -> D.name) dialects)))

let create name source =
  match name with
  | "bird" -> Some (Speaker.create (module Bird : Speaker.S with type t = Router.t) source)
  | "quagga" ->
    Some (Speaker.create (module Quagga : Speaker.S with type t = Qrouter.t) source)
  | "xorp" -> Some (Speaker.create (module Xorp : Speaker.S with type t = Xrouter.t) source)
  | _ -> None

let create_exn name source =
  match create name source with
  | Some sp -> sp
  | None ->
    invalid_arg
      (Printf.sprintf "unknown speaker implementation: %s (known: %s)" name
         (String.concat ", " names))
