open Dice_inet
open Dice_bgp

(* The one concrete-implementation reference the core is allowed. *)
module Router = Dice_bgp.Router
module Qrouter = Dice_bgp2.Qrouter

module Bird = struct
  type t = Router.t

  let id = "bird"
  let create = Router.create
  let config = Router.config

  let msgs_of outputs =
    List.filter_map
      (function Router.To_peer (dst, m) -> Some (dst, m) | _ -> None)
      outputs

  let establish t ~peer =
    match Config_types.find_peer (Router.config t) peer with
    | None ->
      invalid_arg (Printf.sprintf "Speakers.Bird: unknown peer %s" (Ipv4.to_string peer))
    | Some pcfg ->
      let remote_as = pcfg.Config_types.remote_as in
      ignore (Router.handle_event t ~peer Fsm.Manual_start);
      ignore (Router.handle_event t ~peer Fsm.Tcp_connected);
      ignore
        (Router.handle_msg t ~peer
           (Msg.Open
              {
                Msg.version = 4;
                my_as = remote_as land 0xFFFF;
                hold_time = 90;
                bgp_id = peer;
                capabilities = [ Msg.Cap_as4 remote_as ];
              }));
      ignore (Router.handle_msg t ~peer Msg.Keepalive)

  let feed ?ctx t ~peer msg = msgs_of (Router.handle_msg ?ctx t ~peer msg)

  let import_concolic ~ctx t ~peer croute =
    let o = Router.import_concolic ~ctx t ~peer croute in
    {
      Speaker.prefix = o.Router.prefix;
      accepted = o.Router.accepted;
      installed = o.Router.installed;
      route = o.Router.route;
      previous_best = o.Router.previous_best;
      outputs = msgs_of o.Router.outputs;
    }

  let loc_rib = Router.loc_rib
  let best_route = Router.best_route

  let learned_from t ~peer prefix =
    match Router.adj_rib_in t peer with
    | Some adj -> Rib.Adj.find_opt prefix adj <> None
    | None -> false

  let updates_processed = Router.updates_processed

  let freeze t =
    let image = Router.freeze t in
    fun () -> Router.serialize image

  let snapshot = Router.snapshot
  let restore = Router.restore
end

module Quagga = struct
  type t = Qrouter.t

  let id = "quagga"
  let create = Qrouter.create
  let config = Qrouter.config
  let establish t ~peer = Qrouter.establish t ~peer
  let feed ?ctx t ~peer msg = Qrouter.feed ?ctx t ~peer msg

  let import_concolic ~ctx t ~peer croute =
    let o = Qrouter.import_concolic ~ctx t ~peer croute in
    {
      Speaker.prefix = o.Qrouter.prefix;
      accepted = o.Qrouter.accepted;
      installed = o.Qrouter.installed;
      route = o.Qrouter.route;
      previous_best = o.Qrouter.previous_best;
      outputs = o.Qrouter.outputs;
    }

  let loc_rib = Qrouter.table
  let best_route = Qrouter.best_route
  let learned_from t ~peer prefix = Qrouter.learned_from t ~peer prefix
  let updates_processed = Qrouter.updates_processed

  (* No incremental freeze: serialize eagerly, hand back the bytes. *)
  let freeze t =
    let image = Qrouter.snapshot t in
    fun () -> image

  let snapshot = Qrouter.snapshot
  let restore = Qrouter.restore
end

let bird r = Speaker.pack (module Bird : Speaker.S with type t = Router.t) r
let quagga q = Speaker.pack (module Quagga : Speaker.S with type t = Qrouter.t) q
let names = [ "bird"; "quagga" ]

let create name cfg =
  match name with
  | "bird" -> Some (bird (Router.create cfg))
  | "quagga" -> Some (quagga (Qrouter.create cfg))
  | _ -> None
