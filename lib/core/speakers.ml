open Dice_inet
open Dice_bgp

(* The one concrete-implementation reference the core is allowed. *)
module Router = Dice_bgp.Router
module Qrouter = Dice_bgp2.Qrouter
module Xrouter = Dice_bgp3.Xrouter

module Bird = struct
  type t = Router.t

  let id = "bird"
  let create = Router.create
  let config = Router.config

  let msgs_of outputs =
    List.filter_map
      (function Router.To_peer (dst, m) -> Some (dst, m) | _ -> None)
      outputs

  let establish t ~peer =
    match Config_types.find_peer (Router.config t) peer with
    | None ->
      invalid_arg (Printf.sprintf "Speakers.Bird: unknown peer %s" (Ipv4.to_string peer))
    | Some pcfg ->
      let remote_as = pcfg.Config_types.remote_as in
      ignore (Router.handle_event t ~peer Fsm.Manual_start);
      ignore (Router.handle_event t ~peer Fsm.Tcp_connected);
      ignore
        (Router.handle_msg t ~peer
           (Msg.Open
              {
                Msg.version = 4;
                my_as = remote_as land 0xFFFF;
                hold_time = 90;
                bgp_id = peer;
                capabilities = [ Msg.Cap_as4 remote_as ];
              }));
      ignore (Router.handle_msg t ~peer Msg.Keepalive)

  let feed ?ctx t ~peer msg = msgs_of (Router.handle_msg ?ctx t ~peer msg)

  let import_concolic ~ctx t ~peer croute =
    let o = Router.import_concolic ~ctx t ~peer croute in
    {
      Speaker.prefix = o.Router.prefix;
      accepted = o.Router.accepted;
      installed = o.Router.installed;
      route = o.Router.route;
      previous_best = o.Router.previous_best;
      outputs = msgs_of o.Router.outputs;
    }

  let loc_rib = Router.loc_rib
  let best_route = Router.best_route

  let learned_from t ~peer prefix =
    match Router.adj_rib_in t peer with
    | Some adj -> Rib.Adj.find_opt prefix adj <> None
    | None -> false

  let updates_processed = Router.updates_processed

  let freeze t =
    let image = Router.freeze t in
    fun () -> Router.serialize image

  let snapshot = Router.snapshot
  let restore = Router.restore
end

module Quagga = struct
  type t = Qrouter.t

  let id = "quagga"
  let create = Qrouter.create
  let config = Qrouter.config
  let establish t ~peer = Qrouter.establish t ~peer
  let feed ?ctx t ~peer msg = Qrouter.feed ?ctx t ~peer msg

  let import_concolic ~ctx t ~peer croute =
    let o = Qrouter.import_concolic ~ctx t ~peer croute in
    {
      Speaker.prefix = o.Qrouter.prefix;
      accepted = o.Qrouter.accepted;
      installed = o.Qrouter.installed;
      route = o.Qrouter.route;
      previous_best = o.Qrouter.previous_best;
      outputs = o.Qrouter.outputs;
    }

  let loc_rib = Qrouter.table
  let best_route = Qrouter.best_route
  let learned_from t ~peer prefix = Qrouter.learned_from t ~peer prefix
  let updates_processed = Qrouter.updates_processed

  (* No incremental freeze: serialize eagerly, hand back the bytes. *)
  let freeze t =
    let image = Qrouter.snapshot t in
    fun () -> image

  let snapshot = Qrouter.snapshot
  let restore = Qrouter.restore
end

module Xorp = struct
  type t = Xrouter.t

  let id = "xorp"
  let create = Xrouter.create
  let config = Xrouter.config
  let establish t ~peer = Xrouter.establish t ~peer
  let feed ?ctx t ~peer msg = Xrouter.feed ?ctx t ~peer msg

  let import_concolic ~ctx t ~peer croute =
    let o = Xrouter.import_concolic ~ctx t ~peer croute in
    {
      Speaker.prefix = o.Xrouter.prefix;
      accepted = o.Xrouter.accepted;
      installed = o.Xrouter.installed;
      route = o.Xrouter.route;
      previous_best = o.Xrouter.previous_best;
      outputs = o.Xrouter.outputs;
    }

  let loc_rib = Xrouter.table
  let best_route = Xrouter.best_route
  let learned_from t ~peer prefix = Xrouter.learned_from t ~peer prefix
  let updates_processed = Xrouter.updates_processed

  (* No incremental freeze: serialize eagerly, hand back the bytes. *)
  let freeze t =
    let image = Xrouter.snapshot t in
    fun () -> image

  let snapshot = Xrouter.snapshot
  let restore = Xrouter.restore
end

let bird r = Speaker.pack (module Bird : Speaker.S with type t = Router.t) r
let quagga q = Speaker.pack (module Quagga : Speaker.S with type t = Qrouter.t) q
let xorp x = Speaker.pack (module Xorp : Speaker.S with type t = Xrouter.t) x
let names = [ "bird"; "quagga"; "xorp" ]

let create name cfg =
  match name with
  | "bird" -> Some (bird (Router.create cfg))
  | "quagga" -> Some (quagga (Qrouter.create cfg))
  | "xorp" -> Some (xorp (Xrouter.create cfg))
  | _ -> None

let create_exn name cfg =
  match create name cfg with
  | Some sp -> sp
  | None ->
    invalid_arg
      (Printf.sprintf "unknown speaker implementation: %s (known: %s)" name
         (String.concat ", " names))
