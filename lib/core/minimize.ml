open Dice_inet
open Dice_bgp

type stats = {
  tests : int;
  initial_len : int;
  final_len : int;
  shrunk : int;
}

(* Split [items] into [n] chunks whose lengths differ by at most one. *)
let split_chunks n items =
  let len = List.length items in
  let base = len / n and extra = len mod n in
  let rec take k = function
    | rest when k = 0 -> ([], rest)
    | [] -> ([], [])
    | x :: rest ->
      let h, t = take (k - 1) rest in
      (x :: h, t)
  in
  let rec go i items =
    if i = n then []
    else
      let size = base + if i < extra then 1 else 0 in
      let chunk, rest = take size items in
      chunk :: go (i + 1) rest
  in
  go 0 items

let complement_of i chunks = List.concat (List.filteri (fun j _ -> j <> i) chunks)

let ddmin p items =
  if not (p items) then
    invalid_arg "Minimize.ddmin: predicate does not hold on the input";
  let rec go items n =
    if List.length items <= 1 then items
    else begin
      let chunks = split_chunks n items in
      match List.find_opt p chunks with
      | Some chunk -> go chunk 2 (* reduce to subset, reset granularity *)
      | None -> (
        let complements = List.mapi (fun i _ -> complement_of i chunks) chunks in
        match List.find_opt p complements with
        | Some compl -> go compl (max (n - 1) 2)
        | None ->
          let len = List.length items in
          if n < len then go items (min len (2 * n)) (* refine *)
          else items (* 1-minimal at singleton granularity *))
    end
  in
  go items 2

(* ------------------------------------------------------------------ *)
(* Per-message attribute shrinking                                     *)
(* ------------------------------------------------------------------ *)

let drop_nth i l = List.filteri (fun j _ -> j <> i) l

(* Shorter variants of an AS_PATH that keep the endpoints: the first AS
   is what import policy and loop checks key on, the last is the origin
   — dropping either would change the question, not simplify it. *)
let shorten_path (path : Asn.Path.t) =
  let drop_extra_segments =
    match path with
    | _ :: _ :: _ -> [ [ List.hd path ] ]
    | _ -> []
  in
  let drop_middle =
    match path with
    | Asn.Path.Seq seq :: rest when List.length seq > 2 ->
      List.init
        (List.length seq - 2)
        (fun i -> Asn.Path.Seq (drop_nth (i + 1) seq) :: rest)
    | _ -> []
  in
  drop_extra_segments @ drop_middle

let shrink_update = function
  | Msg.Update u ->
    let with_attrs attrs = Msg.Update { u with attrs } in
    let drop_withdrawn =
      if u.Msg.withdrawn <> [] then [ Msg.Update { u with Msg.withdrawn = [] } ]
      else []
    in
    let droppable = function
      | Attr.Med _ | Attr.Local_pref _ | Attr.Atomic_aggregate
      | Attr.Aggregator _ | Attr.Communities _ | Attr.Unknown _ ->
        true
      | Attr.Origin _ | Attr.As_path _ | Attr.Next_hop _ -> false
    in
    let attr_drops =
      List.filteri (fun _ a -> droppable a) u.Msg.attrs
      |> List.map (fun a ->
             with_attrs (List.filter (fun a' -> a' != a) u.Msg.attrs))
    in
    let nlri_drops =
      if List.length u.Msg.nlri > 1 then
        List.mapi
          (fun i _ -> Msg.Update { u with Msg.nlri = drop_nth i u.Msg.nlri })
          u.Msg.nlri
      else []
    in
    let path_shrinks =
      List.concat_map
        (fun a ->
          match a with
          | Attr.As_path path ->
            List.map
              (fun shorter ->
                with_attrs
                  (List.map
                     (fun a' -> if a' == a then Attr.As_path shorter else a')
                     u.Msg.attrs))
              (shorten_path path)
          | _ -> [])
        u.Msg.attrs
    in
    drop_withdrawn @ attr_drops @ nlri_drops @ path_shrinks
  | Msg.Open _ | Msg.Notification _ | Msg.Keepalive -> []

let schedule ~predicate exchanges =
  let tests = ref 0 in
  let p s =
    incr tests;
    predicate s
  in
  if not (p exchanges) then
    invalid_arg "Minimize.schedule: predicate does not hold on the input schedule";
  let minimal =
    (* re-run the input check inside ddmin is wasteful; inline its loop
       by reusing ddmin on an already-validated schedule *)
    if exchanges = [] then []
    else ddmin (fun s -> s == exchanges || p s) exchanges
  in
  let shrunk = ref 0 in
  let arr = Array.of_list minimal in
  let current () = Array.to_list arr in
  (* Greedy per-position shrinking to a local fixpoint: accept a
     candidate, then re-shrink the same (now simpler) message. Each
     candidate is strictly simpler, so this terminates. *)
  let rec shrink_at i =
    let from, msg = arr.(i) in
    let rec try_candidates = function
      | [] -> ()
      | cand :: rest ->
        arr.(i) <- (from, cand);
        if p (current ()) then begin
          incr shrunk;
          shrink_at i
        end
        else begin
          arr.(i) <- (from, msg);
          try_candidates rest
        end
    in
    try_candidates (shrink_update msg)
  in
  Array.iteri (fun i _ -> shrink_at i) arr;
  ( current (),
    {
      tests = !tests;
      initial_len = List.length exchanges;
      final_len = Array.length arr;
      shrunk = !shrunk;
    } )

let divergence ~jobs ~agents (hit : Panel.hit) =
  let want = Panel.signature hit.Panel.divergence in
  let predicate s =
    s <> []
    && List.exists
         (fun d -> Panel.signature d = want)
         (Panel.probe ~jobs ~agents s)
  in
  schedule ~predicate hit.Panel.schedule
