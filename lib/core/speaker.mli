(** The SPEAKER abstraction: what the DiCE core requires of a BGP
    implementation — and nothing more.

    The paper's evaluation federates BIRD with Cisco- and XORP-style
    peers that DiCE never instruments; it only probes them through the
    narrow interface (§2.4). For the core to support that heterogeneity,
    no checker, orchestrator, or transport may depend on one
    implementation's internals — the same discipline as MODIST-style
    transparent interposition, where the testing layer sees an interface,
    never a daemon. {!S} is that interface:

    - {b realize a configuration}: every implementation interprets {e its
      own} dialect. A {!source} is what the operator supplied — a
      dialect-neutral {!Dice_bgp.Intent.t}, or an already-concrete
      {!Dice_bgp.Config_types.t} — and a {!realization} is that source
      pushed through the implementation's {!Dice_bgp.Dialect.S}
      translator: the rendered dialect text plus the configuration the
      implementation actually runs, quirks included. {!S.create} and
      {!S.restore} take the realization, so cloning and shadow-building
      never re-render on the hot path;
    - {b feed an update}: {!S.feed} processes one BGP message on a
      session and returns the messages the speaker would transmit —
      outputs are [(peer, message)] pairs, because messages are all the
      core ever forwards, intercepts, or counts; timers, socket
      operations and session transitions are implementation business;
    - {b snapshot / clone live state}: {!S.freeze} checkpoints the
      speaker instantly and returns a serialization thunk (run off the
      live node's critical path), {!S.snapshot} is the eager form, and
      {!S.restore} rebuilds an equivalent speaker — how checkpointed
      probing clones a cooperating node without touching it. The byte
      format is the implementation's own; the core treats it as opaque;
    - {b report per-prefix verdicts}: {!S.loc_rib}, {!S.best_route} and
      {!S.learned_from} expose exactly the read-only views the probe
      path needs to compute origin/best-route {!Verdict.t}s;
    - {b an update-version counter}: {!S.updates_processed} stamps
      verdict-cache entries ({!Dice_exec.Vcache}); when the live speaker
      processes an update, cached verdicts self-evict.

    An {!instance} packs a speaker module with its realization and a
    value of its state type (a first-class existential), so agents,
    orchestrators and fleets can mix implementations freely —
    [Distributed.Local] holds an instance, not a [Router.t]. The only
    module allowed to name a concrete implementation is the {!Speakers}
    registry. *)

open Dice_inet
open Dice_bgp
open Dice_concolic

type import_outcome = {
  prefix : Prefix.t;  (** concretized NLRI of the explored announcement *)
  accepted : bool;  (** survived loop check and import policy *)
  installed : bool;  (** won the decision process and entered the table *)
  route : Route.t option;  (** the concretized imported route, if accepted *)
  previous_best : Rib.Loc.entry option;
      (** the best-route entry for [prefix] before this import *)
  outputs : (Ipv4.t * Msg.t) list;
      (** export traffic this import would generate, per destination
          session — the implementation-neutral projection of whatever
          effect type the speaker uses internally *)
}
(** What one explored import did — the value every fault checker is
    written against ({!Checker.t}). *)

(** What the operator supplied. *)
type source =
  | Config of Config_types.t
      (** already concrete — bypasses translation (the pre-intent
          construction path, and what replayed artifacts from config
          text use) *)
  | Intent of Intent.t
      (** dialect-neutral intent — each implementation realizes it
          through its own translator *)

type realization = {
  source : source;
  dialect : string;  (** the translator's {!Dialect.S.name} *)
  rendered : string option;
      (** the dialect text, when the source was an intent; [None] when
          the source was already concrete *)
  config : Config_types.t;
      (** what the implementation actually runs — for an intent source
          this went through render {e and} parse, so the dialect's
          documented quirks are baked in *)
}
(** A source pushed through one implementation's dialect. Computed once
    at creation; {!restore_like} and the probe path reuse it verbatim,
    so the render/parse cost never lands on the exploration hot path. *)

val realize : (module Dialect.S) -> source -> realization
(** @raise Config_parser.Parse_error if the dialect mis-parses its own
    rendering — a translator bug worth failing loudly on. *)

(** The SPEAKER signature. *)
module type S = sig
  type t

  val id : string
  (** Implementation name ([bird], [quagga], ...) — what
      [detect-leaks --speaker] selects and fault reports cite. *)

  val dialect : (module Dialect.S)
  (** The implementation's configuration dialect — how this speaker
      family spells (and misreads) operator intent. *)

  val create : realization -> t
  (** Build a speaker from a realized configuration. An implementation
      is free to interpret knobs its own way (its "config quirks") but
      must honor the peer set and policies of [realization.config]. *)

  val establish : t -> peer:Ipv4.t -> unit
  (** Drive the session with [peer] to Established, including the
      initial table advertisement — by whatever mechanism the
      implementation uses (a full FSM handshake, an administrative
      flip). @raise Invalid_argument if [peer] is not configured. *)

  val feed : ?ctx:Engine.ctx -> t -> peer:Ipv4.t -> Msg.t -> (Ipv4.t * Msg.t) list
  (** Process one received message on the session with [peer]; returns
      the messages the speaker would send in response. [ctx] defaults to
      a null (non-recording) context. *)

  val import_concolic : ctx:Engine.ctx -> t -> peer:Ipv4.t -> Croute.t -> import_outcome
  (** Run one (symbolized) announcement through the full import path,
      recording path constraints via [ctx]. Mutates this speaker; during
      exploration, call it on a clone, never on the live instance.
      Implementations differ in how deeply their pipeline is
      instrumented — the shared policy interpreter always records; a
      foreign decision process may run concretely, exactly as DiCE
      cannot instrument a closed-source peer. @raise Invalid_argument if
      [peer] is not configured. *)

  val loc_rib : t -> Rib.Loc.t
  (** The selected best routes, as the shared view type — a {e view}:
      implementations with other internal layouts materialize it on
      demand. *)

  val best_route : t -> Prefix.t -> Rib.Loc.entry option

  val learned_from : t -> peer:Ipv4.t -> Prefix.t -> bool
  (** Whether [prefix] currently sits in the Adj-RIB-In (or equivalent)
      of the session with [peer] — the probe path's acceptance test. *)

  val updates_processed : t -> int
  (** Monotone update-version counter: must advance whenever processing
      a message may have changed answerable state. Verdict caches key
      their entries on it. *)

  val freeze : t -> unit -> bytes
  (** Checkpoint now, serialize later: the returned thunk produces the
      state as of the [freeze] call, whatever the live speaker does in
      between. Implementations with persistent structures freeze in
      O(#peers); others may serialize eagerly and return a constant
      thunk. *)

  val snapshot : t -> bytes
  (** [freeze t ()] — checkpoint and serialize in one step. *)

  val restore : realization -> bytes -> t
  (** Rebuild a speaker from a snapshot taken of a speaker {e of the
      same implementation} with the same peer set. The realization is
      reused as-is — no re-translation. @raise Invalid_argument on a
      corrupt or alien image. *)

  val clone : t -> t
  (** An independent in-process copy of the live speaker, sharing as
      much storage as the implementation's data structures allow —
      implementations backed by persistent structures (tries, balanced
      maps) share all route storage and copy only mutable cells
      (O(#peers)); mutable-table implementations copy buckets eagerly.
      Either way there is no serialization: this is the explorer-clone
      path, where per-clone memory should be the write set, not the
      table. Feeding the clone must never affect the original. *)
end

type instance = Inst : (module S with type t = 'a) * realization * 'a -> instance
(** A speaker module packed with its realization and state: the value
    the core passes around. Two instances of different implementations
    are the same type — which is the whole point. *)

val pack : (module S with type t = 'a) -> realization -> 'a -> instance

val create : (module S with type t = 'a) -> source -> instance
(** Realize [source] through the implementation's dialect and build the
    speaker — the one-step construction path. *)

(** {1 Instance operations}

    Each simply unpacks and delegates; they exist so call sites read as
    method calls instead of existential matches. *)

val id : instance -> string
val dialect : instance -> (module Dialect.S)
val realization : instance -> realization
val source : instance -> source

val config : instance -> Config_types.t
(** [(realization inst).config] — the configuration the implementation
    actually runs. *)

val intent : instance -> Intent.t option
(** The operator intent this speaker was realized from, if it was built
    from one ([None] for the concrete-config path). *)

val rendered : instance -> string option
(** The dialect text the intent rendered to, if any. *)

val establish : instance -> peer:Ipv4.t -> unit
val feed : ?ctx:Engine.ctx -> instance -> peer:Ipv4.t -> Msg.t -> (Ipv4.t * Msg.t) list

val import_concolic :
  ctx:Engine.ctx -> instance -> peer:Ipv4.t -> Croute.t -> import_outcome

val loc_rib : instance -> Rib.Loc.t
val best_route : instance -> Prefix.t -> Rib.Loc.entry option
val learned_from : instance -> peer:Ipv4.t -> Prefix.t -> bool
val updates_processed : instance -> int
val freeze : instance -> unit -> bytes
val snapshot : instance -> bytes

val clone : instance -> instance
(** {!S.clone} under the same module and realization — how a probe or an
    explorer takes a disposable copy of a live speaker without paying
    for a snapshot round-trip. *)

val restore_like : instance -> realization -> bytes -> instance
(** [restore_like inst real image] rebuilds from [image] with the {e
    same implementation} as [inst] — how the probe path clones a
    cooperating node (pass [realization inst] unchanged; nothing is
    re-rendered), and how validation builds a shadow speaker under a
    proposed realization, without either ever naming an
    implementation. *)

val rerealize : instance -> source -> realization
(** Push a {e new} source through this instance's dialect — what
    validation uses to realize a proposed configuration exactly as the
    live speaker's implementation would read it. *)
