(** The SPEAKER abstraction: what the DiCE core requires of a BGP
    implementation — and nothing more.

    The paper's evaluation federates BIRD with Cisco- and XORP-style
    peers that DiCE never instruments; it only probes them through the
    narrow interface (§2.4). For the core to support that heterogeneity,
    no checker, orchestrator, or transport may depend on one
    implementation's internals — the same discipline as MODIST-style
    transparent interposition, where the testing layer sees an interface,
    never a daemon. {!S} is that interface:

    - {b feed an update}: {!S.feed} processes one BGP message on a
      session and returns the messages the speaker would transmit —
      outputs are [(peer, message)] pairs, because messages are all the
      core ever forwards, intercepts, or counts; timers, socket
      operations and session transitions are implementation business;
    - {b snapshot / clone live state}: {!S.freeze} checkpoints the
      speaker instantly and returns a serialization thunk (run off the
      live node's critical path), {!S.snapshot} is the eager form, and
      {!S.restore} rebuilds an equivalent speaker — how checkpointed
      probing clones a cooperating node without touching it. The byte
      format is the implementation's own; the core treats it as opaque;
    - {b report per-prefix verdicts}: {!S.loc_rib}, {!S.best_route} and
      {!S.learned_from} expose exactly the read-only views the probe
      path needs to compute origin/best-route {!Verdict.t}s;
    - {b an update-version counter}: {!S.updates_processed} stamps
      verdict-cache entries ({!Dice_exec.Vcache}); when the live speaker
      processes an update, cached verdicts self-evict.

    An {!instance} packs a speaker module with a value of its state type
    (a first-class existential), so agents, orchestrators and fleets can
    mix implementations freely — [Distributed.Local] holds an instance,
    not a [Router.t]. The only module allowed to name a concrete
    implementation is the {!Speakers} registry. *)

open Dice_inet
open Dice_bgp
open Dice_concolic

type import_outcome = {
  prefix : Prefix.t;  (** concretized NLRI of the explored announcement *)
  accepted : bool;  (** survived loop check and import policy *)
  installed : bool;  (** won the decision process and entered the table *)
  route : Route.t option;  (** the concretized imported route, if accepted *)
  previous_best : Rib.Loc.entry option;
      (** the best-route entry for [prefix] before this import *)
  outputs : (Ipv4.t * Msg.t) list;
      (** export traffic this import would generate, per destination
          session — the implementation-neutral projection of whatever
          effect type the speaker uses internally *)
}
(** What one explored import did — the value every fault checker is
    written against ({!Checker.t}). *)

(** The SPEAKER signature. *)
module type S = sig
  type t

  val id : string
  (** Implementation name ([bird], [quagga], ...) — what
      [detect-leaks --speaker] selects and fault reports cite. *)

  val create : Config_types.t -> t
  (** Build a speaker from the shared configuration vocabulary. An
      implementation is free to interpret knobs its own way (its "config
      quirks") but must honor the peer set and policies. *)

  val config : t -> Config_types.t

  val establish : t -> peer:Ipv4.t -> unit
  (** Drive the session with [peer] to Established, including the
      initial table advertisement — by whatever mechanism the
      implementation uses (a full FSM handshake, an administrative
      flip). @raise Invalid_argument if [peer] is not configured. *)

  val feed : ?ctx:Engine.ctx -> t -> peer:Ipv4.t -> Msg.t -> (Ipv4.t * Msg.t) list
  (** Process one received message on the session with [peer]; returns
      the messages the speaker would send in response. [ctx] defaults to
      a null (non-recording) context. *)

  val import_concolic : ctx:Engine.ctx -> t -> peer:Ipv4.t -> Croute.t -> import_outcome
  (** Run one (symbolized) announcement through the full import path,
      recording path constraints via [ctx]. Mutates this speaker; during
      exploration, call it on a clone, never on the live instance.
      Implementations differ in how deeply their pipeline is
      instrumented — the shared policy interpreter always records; a
      foreign decision process may run concretely, exactly as DiCE
      cannot instrument a closed-source peer. @raise Invalid_argument if
      [peer] is not configured. *)

  val loc_rib : t -> Rib.Loc.t
  (** The selected best routes, as the shared view type — a {e view}:
      implementations with other internal layouts materialize it on
      demand. *)

  val best_route : t -> Prefix.t -> Rib.Loc.entry option

  val learned_from : t -> peer:Ipv4.t -> Prefix.t -> bool
  (** Whether [prefix] currently sits in the Adj-RIB-In (or equivalent)
      of the session with [peer] — the probe path's acceptance test. *)

  val updates_processed : t -> int
  (** Monotone update-version counter: must advance whenever processing
      a message may have changed answerable state. Verdict caches key
      their entries on it. *)

  val freeze : t -> unit -> bytes
  (** Checkpoint now, serialize later: the returned thunk produces the
      state as of the [freeze] call, whatever the live speaker does in
      between. Implementations with persistent structures freeze in
      O(#peers); others may serialize eagerly and return a constant
      thunk. *)

  val snapshot : t -> bytes
  (** [freeze t ()] — checkpoint and serialize in one step. *)

  val restore : Config_types.t -> bytes -> t
  (** Rebuild a speaker from a snapshot taken of a speaker {e of the
      same implementation} with the same peer set. @raise
      Invalid_argument on a corrupt or alien image. *)
end

type instance = Inst : (module S with type t = 'a) * 'a -> instance
(** A speaker module packed with its state: the value the core passes
    around. Two instances of different implementations are the same type
    — which is the whole point. *)

val pack : (module S with type t = 'a) -> 'a -> instance

(** {1 Instance operations}

    Each simply unpacks and delegates; they exist so call sites read as
    method calls instead of existential matches. *)

val id : instance -> string
val config : instance -> Config_types.t
val establish : instance -> peer:Ipv4.t -> unit
val feed : ?ctx:Engine.ctx -> instance -> peer:Ipv4.t -> Msg.t -> (Ipv4.t * Msg.t) list

val import_concolic :
  ctx:Engine.ctx -> instance -> peer:Ipv4.t -> Croute.t -> import_outcome

val loc_rib : instance -> Rib.Loc.t
val best_route : instance -> Prefix.t -> Rib.Loc.entry option
val learned_from : instance -> peer:Ipv4.t -> Prefix.t -> bool
val updates_processed : instance -> int
val freeze : instance -> unit -> bytes
val snapshot : instance -> bytes

val restore_like : instance -> Config_types.t -> bytes -> instance
(** [restore_like inst cfg image] rebuilds from [image] with the {e same
    implementation} as [inst] — how the probe path clones a cooperating
    node, and how validation builds a shadow speaker under a proposed
    configuration, without either ever naming an implementation. *)
