(** Fault checkers: the "notion of desired system behavior" DiCE evaluates
    each explored action against (paper §2.4).

    {2 Constructor convention}

    Every checker constructor in [lib/core] has one shape. A checker
    with nothing to configure is a plain value ({!Hijack.checker},
    {!Checks.next_hop_sanity}); one with parameters is a function of
    {e required labelled} arguments — no optional arguments, no trailing
    [unit]. Defaults are exported as values next to the constructor
    ({!Checks.default_bogons}, {!Checks.default_max_path_length},
    {!Checks.default_max_prefix_len}), so "the default" is spelled out
    at the call site instead of hidden behind a [?]. [Checks.standard]
    bundles the hygiene set with those defaults applied. *)

open Dice_inet
open Dice_bgp

type severity =
  | Warning
  | Critical

type fault = {
  checker : string;
  severity : severity;
  prefix : Prefix.t;  (** the prefix (range) the fault concerns *)
  description : string;
  details : (string * string) list;  (** key/value context for the report *)
}

val fault_key : fault -> string
(** Deduplication key: checker + prefix + description. *)

val pp_fault : Format.formatter -> fault -> unit

type context = {
  pre_loc_rib : Rib.Loc.t;
      (** the Loc-RIB as checkpointed, before exploration — the paper's
          "routes already in the routing table prior to starting
          exploration", assumed trustworthy *)
  anycast : Prefix.t list;  (** whitelist of legitimately multi-origin space *)
  peer : Ipv4.t;  (** session the explored announcement arrived on *)
  peer_as : int;
}

type t = {
  name : string;
  check : context -> Speaker.import_outcome -> fault list;
}
