(** Differential cross-implementation checking, pairwise.

    The paper's heterogeneous setup federates different BGP
    implementations and relies on the narrow interface meaning the same
    thing to all of them. This module turns that reliance into a check:
    probe {e two} speakers — typically a BIRD-flavored and a
    Quagga-flavored agent holding equivalent state — with {e identical}
    exploration messages, and compare the {!Verdict.t}s coming back.
    Where the implementations disagree, either one of them is wrong, or
    the network's behavior genuinely depends on which implementation a
    neighbor runs — both worth a report.

    This is now the two-member special case of the N-way {!Panel}:
    {!probe_pair} and {!checker} delegate to {!Panel.probe} and keep
    their historical report shape and fault names. From three members
    up, use {!Panel} directly — only a panel can {e outvote} the
    deviant implementation and name it.

    Divergences split in two classes:

    - {b tie-break divergences}: both speakers answered, agree on
      [accepted] and [origin_conflict] (the policy- and origin-level
      facts), but differ in [installed]/[covers_foreign]/
      [would_propagate] — the documented consequence of different
      decision tie-breaking orders (ORIGIN vs path length, peer address
      vs router id, MED quirks). Reported as warnings;
    - {b semantic divergences}: the speakers disagree on [accepted] or
      [origin_conflict], or one answered and the other declined — the
      narrow interface is not implementation-neutral for this input.
      Reported as critical. *)

open Dice_inet
open Dice_bgp

type divergence = {
  prefix : Prefix.t;
  left : Verdict.t option;  (** [None]: declined or timed out *)
  right : Verdict.t option;
  tie_break_only : bool;
}

val pp_divergence : Format.formatter -> divergence -> unit

val probe_pair :
  jobs:int ->
  left:Distributed.agent ->
  right:Distributed.agent ->
  (Ipv4.t * Msg.t) list ->
  divergence list
(** Probe both agents with every [(from, msg)] exchange and keep only
    the prefixes whose verdicts diverge. Prefixes on which both agents
    timed out or declined are not divergences (there is nothing to
    compare); one-sided answers are. The result is sorted by prefix
    (stably, via {!Panel.probe}), so reports are deterministic whatever
    the completion order under [jobs > 1]. *)

val checker : jobs:int -> left:Distributed.agent -> right:Distributed.agent -> Checker.t
(** A {!Checker.t} ([cross-implementation]) that replays every message
    an exploration outcome would send to {e either} agent's address
    against {e both} agents, and reports their disagreements:
    [cross-implementation-divergence] (critical) for semantic
    divergences, [cross-implementation-tiebreak] (warning) for
    tie-break-only ones. Details carry both speakers' verdicts under
    [left-]/[right-] prefixed keys plus each agent's name. *)
