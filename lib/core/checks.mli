(** Additional fault checkers, encoding standard inter-domain-routing
    hygiene. All are opt-in: add them to {!Orchestrator.cfg.checkers}
    alongside (or instead of) the {!Hijack.checker}. Like every checker,
    they judge {e explored} outcomes, so they flag what a session {e
    could} be made to accept — before any real announcement does it. *)

open Dice_inet

val default_bogons : Prefix.t list
(** Reserved / special-use space that must never be routed across domains:
    0.0.0.0/8, 10.0.0.0/8, 100.64.0.0/10, 127.0.0.0/8, 169.254.0.0/16,
    172.16.0.0/12, 192.0.0.0/24, 192.168.0.0/16, 198.18.0.0/15,
    224.0.0.0/4 and 240.0.0.0/4. (The documentation TEST-NETs are absent
    on purpose: the testbed uses them as stand-ins for public space.) *)

val bogon : bogons:Prefix.t list -> Checker.t
(** Critical fault for every accepted announcement inside bogon space —
    an import policy that can be made to accept a martian. Pass
    {!default_bogons} unless the deployment has its own list. *)

val default_max_path_length : int
(** [32] — the hop count past which {!path_sanity} calls a path absurd. *)

val path_sanity : max_length:int -> Checker.t
(** Warnings for accepted routes whose AS path is malformed in practice:
    contains AS 0 (RFC 7607), contains AS_TRANS (23456, must never
    appear as a real hop), or exceeds [max_length] hops. *)

val default_max_prefix_len : int
(** [24] — the conventional inter-domain specificity cutoff. *)

val prefix_length : max_len:int -> Checker.t
(** Warning for accepted announcements more specific than [max_len] —
    space conventionally filtered between domains; a policy that accepts
    /25+ invites deaggregation attacks. *)

val next_hop_sanity : Checker.t
(** Warning for accepted routes whose NEXT_HOP lies inside the announced
    prefix itself (self-referential forwarding) or in bogon space. *)

val standard : Checker.t list
(** [Hijack.checker] plus all of the above with defaults — a reasonable
    production set. *)
