(** The unified probe verdict: the one value a cooperating domain ever
    reveals about an exploration message.

    Three near-identical copies of this record used to live in the tree —
    [Distributed.verdict], the {!Probe_wire} response payload, and the
    ad-hoc key/value details the distributed checker attached to its
    findings. They are now all this module: [Probe_wire.verdict] and
    [Distributed.verdict] are re-exports of {!t}, checker findings render
    through {!to_details}, and every comparison goes through {!equal} /
    {!compare} — one pretty-printer, one comparator, one source of truth
    for what the narrow interface can say. *)

type t = {
  accepted : bool;  (** the remote import policy accepted the route *)
  installed : bool;  (** it became the remote node's best route *)
  origin_conflict : bool;
      (** it overrides the origin AS of something the remote node already
          routes — detected {e at} the remote node, against state the
          local node cannot see *)
  covers_foreign : int;
      (** how many remote routes with other origins the announcement
          {e covers} (claims a super-block of) — the coverage-leak class *)
  would_propagate : int;
      (** how many further sessions the remote node would re-advertise
          on — the blast radius *)
}

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order (accepted, installed, origin_conflict, covers_foreign,
    would_propagate, in that significance order) — what differential
    checking sorts and deduplicates by. *)

val pp : Format.formatter -> t -> unit
(** [accepted|installed|conflict covers=N propagates=N], compact enough
    for fault details and test failure messages. *)

val to_string : t -> string

val to_details : ?prefix:string -> t -> (string * string) list
(** The verdict as checker-finding key/value details, each key prefixed
    with [prefix] (default [""]) — e.g. [remote-] for the distributed
    checker, [bird-]/[quagga-] for the differential checker. *)
