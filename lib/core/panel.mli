(** The N-way differential panel: divergence hunting as a product.

    {!Differential} compares two speakers and can say {e that} they
    disagree; with three or more implementations behind identical
    state, the panel can say {e who} is wrong. Every member receives
    the same [(from, msg)] schedule through the existing
    {!Distributed} transport (Local or Remote — the panel never peeks
    past the narrow interface), each {!Verdict.t} field is put to a
    majority vote, and a divergence names its {b outlier} member(s):
    the implementations whose answer differs from the assembled
    majority. Divergences keep the pairwise taxonomy — {e tie-break}
    (all members agree on [accepted] and [origin_conflict], the
    policy- and origin-level facts, and differ only downstream of the
    decision process) versus {e semantic} (disagreement on those
    facts, or a member that declined while others answered).

    A confirmed divergence is made actionable by {!Minimize} (shrink
    the triggering schedule) and {!Artifact} (a versioned, replayable
    repro file any speaker subset can re-execute). *)

open Dice_inet
open Dice_bgp

(** How many members backed the vote. *)
type quorum =
  | Full  (** every panel member was live and eligible to vote *)
  | Degraded of string list
      (** the vote proceeded over a surviving strict majority; the
          listed members were {!Health.Down} and excluded (rather than
          polluting every prefix as "gave no answer" outliers) *)

type divergence = {
  prefix : Prefix.t;
  answers : (string * Verdict.t option) list;
      (** one per {e voting} member, in panel order: agent name and its
          verdict for [prefix] ([None]: declined, timed out, or
          answered without this prefix) *)
  majority : Verdict.t;
      (** field-wise majority over the answering members; a tied field
          takes the earliest answering member's value *)
  outliers : string list;
      (** members whose answer differs from [majority] (including
          members that gave no answer while others did), in panel
          order *)
  tie_break_only : bool;
  quorum : quorum;
      (** whether absent members were excluded from this vote — not
          part of {!signature}, so a degraded capture still matches
          its full-panel replay *)
}

val signature : divergence -> string
(** Stable identity of a divergence — prefix, classification, sorted
    outlier set — used to recognize "the same divergence" across
    minimization rounds and artifact replays. *)

val pp_divergence : Format.formatter -> divergence -> unit

val eligible : Distributed.agent list -> Distributed.agent list * Distributed.agent list
(** Split agents into [(live, down)] by {!Distributed.agent_health} —
    the {e one} health-based membership test. {!quorum_of} builds its
    vote on it, and a fleet's update-stream drive loop must use the
    same split, so a member marked {!Health.Down} is excluded from
    driving as well as from voting (a crashed domain never silently
    stalls the stream). *)

val quorum_of :
  Distributed.agent list ->
  [ `Full | `Degraded of string list | `Lost of string list ]
(** Consult each member's {!Distributed.agent_health}: [`Full] when
    nobody is {!Health.Down}; [`Degraded down] when some are but a
    strict majority survives (the panel can still out-vote the
    absentees); [`Lost down] when the survivors are not a strict
    majority — no vote over them deserves the name. *)

val probe :
  jobs:int ->
  agents:Distributed.agent list ->
  (Ipv4.t * Msg.t) list ->
  divergence list
(** Feed every panel member each [(from, msg)] exchange and keep only
    the prefixes whose verdicts diverge. The result is sorted by
    prefix (stably: equal prefixes keep schedule order), so reports
    are deterministic whatever the probe schedule under [jobs > 1].
    Probing never mutates the members' live speakers, so the same
    panel can be re-probed — that is what minimization leans on.

    Crash tolerance: members whose health monitor says {!Health.Down}
    are excluded from the vote while a strict majority survives, and
    every resulting divergence is tagged [Degraded]. With quorum lost
    the panel probes everyone anyway — pausing belongs to the hunt
    ({!hunt}'s [on_pause]), not to a one-shot probe.
    @raise Invalid_argument on an empty panel. *)

type hit = {
  schedule : (Ipv4.t * Msg.t) list;
      (** the probe exchanges that produced the divergence — the input
          {!Minimize.divergence} shrinks *)
  divergence : divergence;
}

val checker : jobs:int -> agents:Distributed.agent list -> Checker.t
(** A {!Checker.t} ([panel]) that replays every message an exploration
    outcome would send to any panel member's address against the whole
    panel and reports divergences: [panel-divergence] (critical) for
    semantic ones, [panel-tiebreak] (warning) for tie-break-only ones.
    Details carry each member's verdict under its agent-name prefix,
    the assembled [majority], and the [outliers]. *)

val hunt :
  ?on_pause:(string list -> unit) ->
  jobs:int ->
  agents:Distributed.agent list ->
  sink:(hit -> unit) ->
  unit ->
  Checker.t
(** {!checker}, but every divergence is also handed to [sink] together
    with the schedule that triggered it — the hook that lets a CLI or
    orchestrator collect repro candidates for minimization while the
    exploration runs.

    When quorum is lost (see {!quorum_of}) the checker probes nothing
    for that outcome and calls [on_pause] with the down members — the
    hunt is paused, not failed. It resumes by itself on the next
    outcome once recovery (or fresh heartbeats) brings enough members
    back to [Alive]. *)

(** Replayable divergence repros: a versioned, length-framed file
    format following the {!Probe_wire} conventions (magic + version
    byte, big-endian length-framed fields, loud
    {!Dice_wire.Rbuf.Truncated} on any malformed input, no trailing
    bytes). An artifact is self-contained: the speaker names, the
    shared configuration source, the state-priming setup schedule, the
    (minimized) probe schedule, and the expected divergence
    signature. *)
module Artifact : sig
  (** What the members were configured from. *)
  type config_source =
    | Config_text of string
        (** shared config text ({!Dice_bgp.Config_parser} syntax): every
            member runs the identical parsed configuration *)
    | Intent_text of string
        (** intent text ({!Intent.parse} syntax): every member realizes
            the intent through {e its own} dialect translator, quirks
            included — the replay rebuilds the same heterogeneous
            filter-interpreter panel *)

  type t = {
    speakers : string list;  (** panel members, by {!Speakers} name *)
    source : config_source;
    setup : (Ipv4.t * Msg.t) list;
        (** state priming: messages fed to each member (peer, msg)
            after establishing every configured session *)
    schedule : (Ipv4.t * Msg.t) list;  (** the probe exchanges *)
    signature : string;  (** expected {!signature} of the divergence *)
    absent : string list;
        (** members that were {!Health.Down} (excluded from the vote)
            when the divergence was captured — empty for a full-panel
            capture and for any pre-v3 artifact *)
  }

  val version : int
  (** Version 3 appends the [absent] member list (degraded captures);
      version 2 added the source kind; version-1 and version-2
      artifacts still decode (with [absent = \[\]]). *)

  val encode : t -> bytes
  (** Canonical bytes: equal artifacts encode identically. *)

  val decode : bytes -> t
  (** @raise Dice_wire.Rbuf.Truncated on truncation, foreign magic, an
      alien version, or trailing bytes. *)

  val save : string -> t -> unit
  val load : string -> t

  val build :
    ?speakers:string list -> t -> Distributed.agent list
  (** Rebuild the panel: create each speaker ({!Speakers.create_exn})
      from [config], establish every configured session, feed [setup],
      and wrap each as a [Local] agent named after its implementation.
      [speakers] selects a subset; the default is the members that
      actually voted ([speakers] minus [absent]) — a degraded capture
      replays the vote that happened, not the one that didn't. *)

  val replay : ?speakers:string list -> jobs:int -> t -> divergence list
  (** [build] then {!probe} the artifact's schedule — re-execution
      against any speaker subset. *)

  val reproduces : t -> divergence list -> bool
  (** Whether a replay's divergences contain the artifact's expected
      signature. *)
end
