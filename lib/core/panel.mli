(** The N-way differential panel: divergence hunting as a product.

    {!Differential} compares two speakers and can say {e that} they
    disagree; with three or more implementations behind identical
    state, the panel can say {e who} is wrong. Every member receives
    the same [(from, msg)] schedule through the existing
    {!Distributed} transport (Local or Remote — the panel never peeks
    past the narrow interface), each {!Verdict.t} field is put to a
    majority vote, and a divergence names its {b outlier} member(s):
    the implementations whose answer differs from the assembled
    majority. Divergences keep the pairwise taxonomy — {e tie-break}
    (all members agree on [accepted] and [origin_conflict], the
    policy- and origin-level facts, and differ only downstream of the
    decision process) versus {e semantic} (disagreement on those
    facts, or a member that declined while others answered).

    A confirmed divergence is made actionable by {!Minimize} (shrink
    the triggering schedule) and {!Artifact} (a versioned, replayable
    repro file any speaker subset can re-execute). *)

open Dice_inet
open Dice_bgp

type divergence = {
  prefix : Prefix.t;
  answers : (string * Verdict.t option) list;
      (** one per panel member, in panel order: agent name and its
          verdict for [prefix] ([None]: declined, timed out, or
          answered without this prefix) *)
  majority : Verdict.t;
      (** field-wise majority over the answering members; a tied field
          takes the earliest answering member's value *)
  outliers : string list;
      (** members whose answer differs from [majority] (including
          members that gave no answer while others did), in panel
          order *)
  tie_break_only : bool;
}

val signature : divergence -> string
(** Stable identity of a divergence — prefix, classification, sorted
    outlier set — used to recognize "the same divergence" across
    minimization rounds and artifact replays. *)

val pp_divergence : Format.formatter -> divergence -> unit

val probe :
  jobs:int ->
  agents:Distributed.agent list ->
  (Ipv4.t * Msg.t) list ->
  divergence list
(** Feed every panel member each [(from, msg)] exchange and keep only
    the prefixes whose verdicts diverge. The result is sorted by
    prefix (stably: equal prefixes keep schedule order), so reports
    are deterministic whatever the probe schedule under [jobs > 1].
    Probing never mutates the members' live speakers, so the same
    panel can be re-probed — that is what minimization leans on.
    @raise Invalid_argument on an empty panel. *)

type hit = {
  schedule : (Ipv4.t * Msg.t) list;
      (** the probe exchanges that produced the divergence — the input
          {!Minimize.divergence} shrinks *)
  divergence : divergence;
}

val checker : jobs:int -> agents:Distributed.agent list -> Checker.t
(** A {!Checker.t} ([panel]) that replays every message an exploration
    outcome would send to any panel member's address against the whole
    panel and reports divergences: [panel-divergence] (critical) for
    semantic ones, [panel-tiebreak] (warning) for tie-break-only ones.
    Details carry each member's verdict under its agent-name prefix,
    the assembled [majority], and the [outliers]. *)

val hunt :
  jobs:int -> agents:Distributed.agent list -> sink:(hit -> unit) -> Checker.t
(** {!checker}, but every divergence is also handed to [sink] together
    with the schedule that triggered it — the hook that lets a CLI or
    orchestrator collect repro candidates for minimization while the
    exploration runs. *)

(** Replayable divergence repros: a versioned, length-framed file
    format following the {!Probe_wire} conventions (magic + version
    byte, big-endian length-framed fields, loud
    {!Dice_wire.Rbuf.Truncated} on any malformed input, no trailing
    bytes). An artifact is self-contained: the speaker names, the
    shared configuration source, the state-priming setup schedule, the
    (minimized) probe schedule, and the expected divergence
    signature. *)
module Artifact : sig
  (** What the members were configured from. *)
  type config_source =
    | Config_text of string
        (** shared config text ({!Dice_bgp.Config_parser} syntax): every
            member runs the identical parsed configuration *)
    | Intent_text of string
        (** intent text ({!Intent.parse} syntax): every member realizes
            the intent through {e its own} dialect translator, quirks
            included — the replay rebuilds the same heterogeneous
            filter-interpreter panel *)

  type t = {
    speakers : string list;  (** panel members, by {!Speakers} name *)
    source : config_source;
    setup : (Ipv4.t * Msg.t) list;
        (** state priming: messages fed to each member (peer, msg)
            after establishing every configured session *)
    schedule : (Ipv4.t * Msg.t) list;  (** the probe exchanges *)
    signature : string;  (** expected {!signature} of the divergence *)
  }

  val version : int
  (** Version 2 adds the source kind; version-1 artifacts (config text
      only) still decode. *)

  val encode : t -> bytes
  (** Canonical bytes: equal artifacts encode identically. *)

  val decode : bytes -> t
  (** @raise Dice_wire.Rbuf.Truncated on truncation, foreign magic, an
      alien version, or trailing bytes. *)

  val save : string -> t -> unit
  val load : string -> t

  val build :
    ?speakers:string list -> t -> Distributed.agent list
  (** Rebuild the panel: create each speaker ({!Speakers.create_exn})
      from [config], establish every configured session, feed [setup],
      and wrap each as a [Local] agent named after its implementation.
      [speakers] selects a subset (default: all members). *)

  val replay : ?speakers:string list -> jobs:int -> t -> divergence list
  (** [build] then {!probe} the artifact's schedule — re-execution
      against any speaker subset. *)

  val reproduces : t -> divergence list -> bool
  (** Whether a replay's divergences contain the artifact's expected
      signature. *)
end
