open Dice_bgp

type comparison = {
  current_report : Orchestrator.report;
  proposed_report : Orchestrator.report;
  fixed : Checker.fault list;
  introduced : Checker.fault list;
  persisting : Checker.fault list;
  regressions : Orchestrator.seed list;
}

let same_peer_set a b =
  let key (p : Config_types.peer_cfg) = (p.Config_types.neighbor, p.Config_types.remote_as) in
  let sort cfg = List.sort compare (List.map key cfg.Config_types.peers) in
  sort a = sort b

let explore_with ?cfg speaker seeds =
  let dice = Orchestrator.create ?cfg speaker in
  List.iter
    (fun (s : Orchestrator.seed) ->
      Orchestrator.observe dice ~peer:s.Orchestrator.peer ~prefix:s.Orchestrator.prefix
        ~route:s.Orchestrator.route)
    seeds;
  Orchestrator.explore dice

let config_change ?cfg ~live ~proposed ~seeds () =
  (* realize the proposal through the live implementation's own dialect:
     the shadow must run what that implementation would read, quirks
     included, not what the operator meant *)
  let real = Speaker.rerealize live proposed in
  if not (same_peer_set (Speaker.config live) real.Speaker.config) then
    invalid_arg "Validate.config_change: the proposed configuration changes the peer set";
  let with_seeds (c : Orchestrator.cfg) =
    { c with
      Orchestrator.exploration =
        { c.Orchestrator.exploration with
          Orchestrator.max_seeds = max (List.length seeds) 1;
        };
    }
  in
  let cfg = Some (with_seeds (Option.value cfg ~default:Orchestrator.default_cfg)) in
  (* shadow speaker: live state under the proposed configuration, same
     implementation as the live one *)
  let shadow = Speaker.restore_like live real (Speaker.snapshot live) in
  let current_report = explore_with ?cfg live seeds in
  let proposed_report = explore_with ?cfg shadow seeds in
  let keys report =
    List.map
      (fun f -> (Checker.fault_key f, f))
      report.Orchestrator.faults
  in
  let cur = keys current_report and prop = keys proposed_report in
  let not_in other (k, _) = not (List.mem_assoc k other) in
  let fixed = List.filter (not_in prop) cur |> List.map snd in
  let introduced = List.filter (not_in cur) prop |> List.map snd in
  let persisting = List.filter (fun (k, _) -> List.mem_assoc k prop) cur |> List.map snd in
  (* a regression: the observed input accepted under current, rejected
     under proposed *)
  let accepted_by report =
    List.filter_map
      (fun (sr : Orchestrator.seed_report) ->
        if sr.Orchestrator.observed_accepted then Some sr.Orchestrator.seed.Orchestrator.tag
        else None)
      report.Orchestrator.seed_reports
  in
  let cur_ok = accepted_by current_report in
  let prop_ok = accepted_by proposed_report in
  let regressions =
    List.filter_map
      (fun (sr : Orchestrator.seed_report) ->
        let tag = sr.Orchestrator.seed.Orchestrator.tag in
        if List.mem tag cur_ok && not (List.mem tag prop_ok) then
          Some sr.Orchestrator.seed
        else None)
      current_report.Orchestrator.seed_reports
  in
  { current_report; proposed_report; fixed; introduced; persisting; regressions }

let verdict c =
  if c.introduced <> [] || c.regressions <> [] then `Harmful
  else if c.fixed = [] then `Ineffective
  else `Safe

let pp ppf c =
  let label = function
    | `Safe -> "SAFE: fixes faults without breaking observed traffic"
    | `Ineffective -> "INEFFECTIVE: changes nothing that exploration can see"
    | `Harmful -> "HARMFUL: introduces faults or breaks observed traffic"
  in
  Format.fprintf ppf "@[<v>config-change validation: %s@," (label (verdict c));
  Format.fprintf ppf "fixed: %d, introduced: %d, persisting: %d, regressions: %d@,"
    (List.length c.fixed) (List.length c.introduced) (List.length c.persisting)
    (List.length c.regressions);
  List.iter
    (fun f -> Format.fprintf ppf "  fixed      %a@," Checker.pp_fault f)
    c.fixed;
  List.iter
    (fun f -> Format.fprintf ppf "  introduced %a@," Checker.pp_fault f)
    c.introduced;
  List.iter
    (fun (s : Orchestrator.seed) ->
      Format.fprintf ppf "  regression: observed %s via %s now rejected@,"
        (Dice_inet.Prefix.to_string s.Orchestrator.prefix)
        (Dice_inet.Ipv4.to_string s.Orchestrator.peer))
    c.regressions;
  Format.fprintf ppf "@]"
