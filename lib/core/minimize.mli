(** Delta-debugging repro minimization: from "this 40-message schedule
    diverges" to a repro a human can read.

    Two shrinking layers, run in order:

    - {!ddmin} (Zeller/Hildebrandt's minimizing delta debugging) over
      the update {e schedule} — drop whole messages while the panel
      still reproduces the divergence;
    - per-message {e attribute} shrinking ({!shrink_update}) — strip
      withdrawn routes, droppable attributes (MED, LOCAL_PREF,
      communities, aggregator data, unknown optionals), surplus NLRI,
      and middle AS_PATH hops from each surviving message, greedily to
      a fixpoint.

    Both layers drive the same caller-supplied predicate, so the
    minimizer works for any reproduction test; {!divergence} wires it
    to a {!Panel} re-probe that checks for the original divergence
    {!Panel.signature}. Probing never mutates the panel's live
    speakers, which is what makes re-running the predicate hundreds of
    times against the same panel sound. *)

open Dice_inet
open Dice_bgp

type stats = {
  tests : int;  (** predicate evaluations across both layers *)
  initial_len : int;  (** schedule length before minimization *)
  final_len : int;  (** schedule length after {!ddmin} *)
  shrunk : int;  (** accepted per-message shrink steps *)
}

val ddmin : ('a list -> bool) -> 'a list -> 'a list
(** [ddmin p items]: a 1-minimal sublist of [items] satisfying [p] —
    removing any single remaining element breaks the predicate. Classic
    ddmin: try chunks, then complements, then double the granularity.
    @raise Invalid_argument if [p items] does not hold to begin with. *)

val shrink_update : Msg.t -> Msg.t list
(** Candidate one-step simplifications of a message, most aggressive
    first. Only [Update] messages shrink; anything else yields [[]].
    Each candidate is strictly simpler, so greedy acceptance
    terminates. *)

val schedule :
  predicate:((Ipv4.t * Msg.t) list -> bool) ->
  (Ipv4.t * Msg.t) list ->
  (Ipv4.t * Msg.t) list * stats
(** Run both layers against [predicate].
    @raise Invalid_argument if the predicate does not hold on the
    input schedule. *)

val divergence :
  jobs:int ->
  agents:Distributed.agent list ->
  Panel.hit ->
  (Ipv4.t * Msg.t) list * stats
(** Minimize a {!Panel.hunt} hit: the predicate re-probes the same
    panel with the candidate schedule and checks that some divergence
    with the original's {!Panel.signature} survives. The result is the
    schedule a replay artifact should carry. *)
