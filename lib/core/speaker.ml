open Dice_inet
open Dice_bgp
open Dice_concolic

type import_outcome = {
  prefix : Prefix.t;
  accepted : bool;
  installed : bool;
  route : Route.t option;
  previous_best : Rib.Loc.entry option;
  outputs : (Ipv4.t * Msg.t) list;
}

type source =
  | Config of Config_types.t
  | Intent of Intent.t

type realization = {
  source : source;
  dialect : string;
  rendered : string option;
  config : Config_types.t;
}

let realize (module D : Dialect.S) source =
  match source with
  | Config config -> { source; dialect = D.name; rendered = None; config }
  | Intent intent ->
    let text = D.render intent in
    { source; dialect = D.name; rendered = Some text; config = D.parse text }

module type S = sig
  type t

  val id : string
  val dialect : (module Dialect.S)
  val create : realization -> t
  val establish : t -> peer:Ipv4.t -> unit
  val feed : ?ctx:Engine.ctx -> t -> peer:Ipv4.t -> Msg.t -> (Ipv4.t * Msg.t) list
  val import_concolic : ctx:Engine.ctx -> t -> peer:Ipv4.t -> Croute.t -> import_outcome
  val loc_rib : t -> Rib.Loc.t
  val best_route : t -> Prefix.t -> Rib.Loc.entry option
  val learned_from : t -> peer:Ipv4.t -> Prefix.t -> bool
  val updates_processed : t -> int
  val freeze : t -> unit -> bytes
  val snapshot : t -> bytes
  val restore : realization -> bytes -> t
  val clone : t -> t
end

type instance = Inst : (module S with type t = 'a) * realization * 'a -> instance

let pack (type a) (m : (module S with type t = a)) real (state : a) = Inst (m, real, state)

let create (type a) (m : (module S with type t = a)) source =
  let (module M) = m in
  let real = realize M.dialect source in
  Inst (m, real, M.create real)

let id (Inst ((module M), _, _)) = M.id
let dialect (Inst ((module M), _, _)) = M.dialect
let realization (Inst (_, real, _)) = real
let source inst = (realization inst).source
let config inst = (realization inst).config
let rendered inst = (realization inst).rendered
let intent inst = match source inst with Intent i -> Some i | Config _ -> None
let establish (Inst ((module M), _, t)) ~peer = M.establish t ~peer
let feed ?ctx (Inst ((module M), _, t)) ~peer msg = M.feed ?ctx t ~peer msg

let import_concolic ~ctx (Inst ((module M), _, t)) ~peer cr =
  M.import_concolic ~ctx t ~peer cr

let loc_rib (Inst ((module M), _, t)) = M.loc_rib t
let best_route (Inst ((module M), _, t)) prefix = M.best_route t prefix
let learned_from (Inst ((module M), _, t)) ~peer prefix = M.learned_from t ~peer prefix
let updates_processed (Inst ((module M), _, t)) = M.updates_processed t
let freeze (Inst ((module M), _, t)) = M.freeze t
let snapshot (Inst ((module M), _, t)) = M.snapshot t

let restore_like (Inst ((module M), _, _)) real image =
  Inst ((module M), real, M.restore real image)

let clone (Inst ((module M), real, t)) = Inst ((module M), real, M.clone t)

let rerealize (Inst ((module M), _, _)) source = realize M.dialect source
