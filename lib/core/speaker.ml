open Dice_inet
open Dice_bgp
open Dice_concolic

type import_outcome = {
  prefix : Prefix.t;
  accepted : bool;
  installed : bool;
  route : Route.t option;
  previous_best : Rib.Loc.entry option;
  outputs : (Ipv4.t * Msg.t) list;
}

module type S = sig
  type t

  val id : string
  val create : Config_types.t -> t
  val config : t -> Config_types.t
  val establish : t -> peer:Ipv4.t -> unit
  val feed : ?ctx:Engine.ctx -> t -> peer:Ipv4.t -> Msg.t -> (Ipv4.t * Msg.t) list
  val import_concolic : ctx:Engine.ctx -> t -> peer:Ipv4.t -> Croute.t -> import_outcome
  val loc_rib : t -> Rib.Loc.t
  val best_route : t -> Prefix.t -> Rib.Loc.entry option
  val learned_from : t -> peer:Ipv4.t -> Prefix.t -> bool
  val updates_processed : t -> int
  val freeze : t -> unit -> bytes
  val snapshot : t -> bytes
  val restore : Config_types.t -> bytes -> t
end

type instance = Inst : (module S with type t = 'a) * 'a -> instance

let pack (type a) (m : (module S with type t = a)) (state : a) = Inst (m, state)
let id (Inst ((module M), _)) = M.id
let config (Inst ((module M), t)) = M.config t
let establish (Inst ((module M), t)) ~peer = M.establish t ~peer
let feed ?ctx (Inst ((module M), t)) ~peer msg = M.feed ?ctx t ~peer msg
let import_concolic ~ctx (Inst ((module M), t)) ~peer cr = M.import_concolic ~ctx t ~peer cr
let loc_rib (Inst ((module M), t)) = M.loc_rib t
let best_route (Inst ((module M), t)) prefix = M.best_route t prefix
let learned_from (Inst ((module M), t)) ~peer prefix = M.learned_from t ~peer prefix
let updates_processed (Inst ((module M), t)) = M.updates_processed t
let freeze (Inst ((module M), t)) = M.freeze t
let snapshot (Inst ((module M), t)) = M.snapshot t

let restore_like (Inst ((module M), _)) cfg image =
  Inst ((module M), M.restore cfg image)
