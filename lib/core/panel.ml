open Dice_inet
open Dice_bgp
module Wbuf = Dice_wire.Wbuf
module Rbuf = Dice_wire.Rbuf

type quorum =
  | Full
  | Degraded of string list

type divergence = {
  prefix : Prefix.t;
  answers : (string * Verdict.t option) list;
  majority : Verdict.t;
  outliers : string list;
  tie_break_only : bool;
  quorum : quorum;
}

let signature d =
  Printf.sprintf "%s|%s|%s"
    (Prefix.to_string d.prefix)
    (if d.tie_break_only then "tiebreak" else "semantic")
    (String.concat "," (List.sort compare d.outliers))

let pp_divergence ppf d =
  let pp_answer ppf (name, v) =
    Format.fprintf ppf "%-8s %a%s" (name ^ ":")
      (fun ppf -> function
        | Some v -> Verdict.pp ppf v
        | None -> Format.pp_print_string ppf "no answer")
      v
      (if List.mem name d.outliers then "   <- outlier" else "")
  in
  Format.fprintf ppf "@[<v 2>%s %s%s:@,%a@,%-8s %a@]"
    (Prefix.to_string d.prefix)
    (if d.tie_break_only then "tie-break divergence" else "divergence")
    (match d.quorum with
    | Full -> ""
    | Degraded absent ->
      Printf.sprintf " (degraded: %s down)" (String.concat "," absent))
    (Format.pp_print_list pp_answer) d.answers "majority:" Verdict.pp d.majority

(* Field-wise majority vote. Earliest occurrence wins a tie, so the
   result is deterministic in panel order (and, for a two-member
   panel, degenerates to "the first member's answer" exactly when the
   members split 1-1 — outlier naming is only meaningful from three
   members up, which is the point of the panel). *)
let plurality values =
  match values with
  | [] -> invalid_arg "Panel.plurality: no values"
  | first :: _ ->
    let count v = List.length (List.filter (( = ) v) values) in
    fst
      (List.fold_left
         (fun (bv, bc) v ->
           let c = count v in
           if c > bc then (v, c) else (bv, bc))
         (first, count first) values)

let majority_of answered =
  {
    Verdict.accepted = plurality (List.map (fun v -> v.Verdict.accepted) answered);
    installed = plurality (List.map (fun v -> v.Verdict.installed) answered);
    origin_conflict = plurality (List.map (fun v -> v.Verdict.origin_conflict) answered);
    covers_foreign = plurality (List.map (fun v -> v.Verdict.covers_foreign) answered);
    would_propagate = plurality (List.map (fun v -> v.Verdict.would_propagate) answered);
  }

(* The facts the decision process cannot touch: whether policy accepted
   the route and whether it conflicts with an installed origin.
   Conformant speakers must agree on these; everything downstream of
   the decision process ([installed], and through export also
   [covers_foreign]/[would_propagate]) may legitimately differ under
   different tie-breaking orders. *)
let tie_break_pair (a : Verdict.t) (b : Verdict.t) =
  a.Verdict.accepted = b.Verdict.accepted
  && a.Verdict.origin_conflict = b.Verdict.origin_conflict

let diverging prefix answers =
  let answered = List.filter_map snd answers in
  if answered = [] then None (* nothing crossed the interface anywhere *)
  else begin
    let all_equal =
      List.length answered = List.length answers
      && List.for_all (fun v -> Verdict.equal v (List.hd answered)) answered
    in
    if all_equal then None
    else begin
      let majority = majority_of answered in
      let outliers =
        List.filter_map
          (fun (name, v) ->
            match v with
            | None -> Some name
            | Some v -> if Verdict.equal v majority then None else Some name)
          answers
      in
      let tie_break_only =
        List.length answered = List.length answers
        && List.for_all (fun v -> tie_break_pair v (List.hd answered)) answered
      in
      Some { prefix; answers; majority; outliers; tie_break_only; quorum = Full }
    end
  end

(* Pair one exchange's outcomes prefix by prefix. Verdict lists follow
   NLRI order, but a declined member contributes nothing — index on
   the prefix instead of zipping. *)
let divergences_of agents outcomes =
  let vs = function
    | Distributed.Verdicts vs -> Some vs
    | Distributed.Declined _ | Distributed.Timeout -> None
  in
  let tagged = List.map2 (fun a o -> (Distributed.agent_name a, vs o)) agents outcomes in
  let prefixes =
    List.sort_uniq Prefix.compare
      (List.concat_map
         (fun (_, o) -> match o with Some vs -> List.map fst vs | None -> [])
         tagged)
  in
  List.filter_map
    (fun prefix ->
      diverging prefix
        (List.map
           (fun (name, o) ->
             (name, match o with Some vs -> List.assoc_opt prefix vs | None -> None))
           tagged))
    prefixes

let rec chunk n = function
  | [] -> []
  | l ->
    let rec take k = function
      | rest when k = 0 -> ([], rest)
      | [] -> invalid_arg "Panel.chunk: ragged outcome list"
      | x :: rest ->
        let h, t = take (k - 1) rest in
        (x :: h, t)
    in
    let h, t = take n l in
    h :: chunk n t

(* The one health-based membership split. Voting (quorum) and the
   fleet's update-stream drive loop must agree on who is out: a member
   the monitor marks [Down] is excluded from BOTH, or a crashed domain
   would silently stall the stream while still being skipped at the
   vote. *)
let eligible agents =
  List.partition
    (fun a -> Health.state (Distributed.agent_health a) <> Health.Down)
    agents

(* Quorum over live members: a panel can out-vote one crashed member,
   but a vote without a strict majority of members would let a minority
   (or a single survivor) masquerade as "the majority verdict". *)
let quorum_of agents =
  let live, down = eligible agents in
  match down with
  | [] -> `Full
  | _ ->
    let names = List.map Distributed.agent_name down in
    if 2 * List.length live > List.length agents then `Degraded names else `Lost names

let probe ~jobs ~agents exchanges =
  let n = List.length agents in
  if n = 0 then invalid_arg "Panel.probe: empty panel";
  (* Down members are excluded from the vote while a majority survives:
     their timeouts would otherwise read as "gave no answer" outliers
     and flood every prefix with spurious divergences. With quorum lost
     the panel probes everyone anyway — gating belongs to the hunt
     ({!make_checker} pauses), not to a one-shot probe. *)
  let voting, absent =
    match quorum_of agents with
    | `Degraded down -> (List.filter (fun a -> not (List.mem (Distributed.agent_name a) down)) agents, down)
    | `Full | `Lost _ -> (agents, [])
  in
  let vn = List.length voting in
  let reqs =
    List.concat_map (fun (from, msg) -> List.map (fun a -> (a, from, msg)) voting) exchanges
  in
  let answers = Distributed.probe_all ~jobs reqs in
  List.concat_map (divergences_of voting) (chunk vn answers)
  |> List.map (fun d ->
         match absent with
         | [] -> d
         | absent -> { d with quorum = Degraded absent })
  (* prefix-sorted, stably: reports are deterministic across runs and
     job counts, and equal prefixes keep schedule order *)
  |> List.stable_sort (fun a b -> Prefix.compare a.prefix b.prefix)

type hit = {
  schedule : (Ipv4.t * Msg.t) list;
  divergence : divergence;
}

let make_checker ?(on_pause = fun _ -> ()) ~jobs ~agents ~sink () =
  let name = "panel" in
  let addresses = List.map Distributed.agent_addr agents in
  let check (cctx : Checker.context) (outcome : Speaker.import_outcome) =
    if not outcome.Speaker.accepted then []
    else begin
      let exchanges =
        List.filter_map
          (fun (dst, out) ->
            match out with
            | Msg.Update _ when List.mem dst addresses ->
              (* every panel member hears the message on the same
                 claimed session: the exploring node's address as the
                 members know it *)
              Some
                (Distributed.agent_explorer_addr (List.hd agents), (out : Msg.t))
            | _ -> None)
          outcome.Speaker.outputs
      in
      let details_of d =
        [ ("panel", String.concat "," (List.map Distributed.agent_name agents));
          ("local-prefix", Prefix.to_string outcome.Speaker.prefix);
          ("via-peer", Ipv4.to_string cctx.Checker.peer);
          ("majority", Verdict.to_string d.majority);
          ("outliers", String.concat "," d.outliers);
        ]
        @ (match d.quorum with
          | Full -> []
          | Degraded absent -> [ ("quorum-absent", String.concat "," absent) ])
        @ List.concat_map
            (fun (member, v) ->
              match v with
              | Some v -> Verdict.to_details ~prefix:(member ^ "-") v
              | None -> [ (member ^ "-answer", "none") ])
            d.answers
      in
      (* Quorum loss pauses the hunt: a minority vote would produce
         verdicts no one should trust, so the checker reports nothing
         for this outcome and tells the caller who is down. Probing
         resumes by itself on the next outcome once recovery (or the
         health monitor's positive evidence) brings members back. *)
      match quorum_of agents with
      | `Lost down ->
        on_pause down;
        []
      | `Full | `Degraded _ ->
      let divergences = probe ~jobs ~agents exchanges in
      List.iter (fun divergence -> sink { schedule = exchanges; divergence }) divergences;
      List.map
        (fun d ->
          if d.tie_break_only then
            { Checker.checker = name ^ "-tiebreak";
              severity = Checker.Warning;
              prefix = d.prefix;
              description =
                Printf.sprintf
                  "panel splits on the decision process; outlier(s): %s"
                  (String.concat ", " d.outliers);
              details = details_of d;
            }
          else
            { Checker.checker = name ^ "-divergence";
              severity = Checker.Critical;
              prefix = d.prefix;
              description =
                Printf.sprintf
                  "panel disagrees across the narrow interface; outlier(s): %s"
                  (String.concat ", " d.outliers);
              details = details_of d;
            })
        divergences
    end
  in
  { Checker.name; check }

let checker ~jobs ~agents = make_checker ~jobs ~agents ~sink:(fun _ -> ()) ()
let hunt ?on_pause ~jobs ~agents ~sink () = make_checker ?on_pause ~jobs ~agents ~sink ()

(* ------------------------------------------------------------------ *)
(* Replay artifacts                                                    *)
(* ------------------------------------------------------------------ *)

module Artifact = struct
  type config_source =
    | Config_text of string
    | Intent_text of string

  type t = {
    speakers : string list;
    source : config_source;
    setup : (Ipv4.t * Msg.t) list;
    schedule : (Ipv4.t * Msg.t) list;
    signature : string;
    absent : string list;
  }

  let magic = "DICERPR1"
  let version = 3

  let put_string16 b s =
    if String.length s > 0xFFFF then invalid_arg "Panel.Artifact: string too long";
    Wbuf.u16 b (String.length s);
    Wbuf.string b s

  let get_string16 ~what r =
    let len = Rbuf.u16 ~what r in
    Bytes.to_string (Rbuf.take ~what r len)

  let put_exchanges b exchanges =
    if List.length exchanges > 0xFFFF then
      invalid_arg "Panel.Artifact: schedule too long";
    Wbuf.u16 b (List.length exchanges);
    List.iter
      (fun (addr, msg) ->
        Wbuf.u32 b addr;
        let encoded = Msg.encode msg in
        Wbuf.u16 b (Bytes.length encoded);
        Wbuf.bytes b encoded)
      exchanges

  let get_exchanges ~what r =
    let n = Rbuf.u16 ~what r in
    List.init n (fun _ ->
        let addr = Rbuf.u32 ~what:(what ^ " session") r in
        let len = Rbuf.u16 ~what:(what ^ " message length") r in
        let encoded = Rbuf.take ~what:(what ^ " message") r len in
        match Msg.decode encoded with
        | Ok msg -> (addr, msg)
        | Error e ->
          raise
            (Rbuf.Truncated
               (Printf.sprintf "%s message: %s" what (Msg.error_to_string e))))

  let encode t =
    let b = Wbuf.create ~capacity:1024 () in
    Wbuf.string b magic;
    Wbuf.u8 b version;
    Wbuf.u16 b (List.length t.speakers);
    List.iter (put_string16 b) t.speakers;
    let kind, text =
      match t.source with Config_text s -> (0, s) | Intent_text s -> (1, s)
    in
    Wbuf.u8 b kind;
    if String.length text > 0xFFFFFF then
      invalid_arg "Panel.Artifact: configuration too long";
    Wbuf.u32 b (String.length text);
    Wbuf.string b text;
    put_exchanges b t.setup;
    put_exchanges b t.schedule;
    put_string16 b t.signature;
    (* v3: members absent (Down) when the divergence was captured —
       appended last so the v1/v2 prefix layout is untouched *)
    if List.length t.absent > 0xFFFF then invalid_arg "Panel.Artifact: absent list too long";
    Wbuf.u16 b (List.length t.absent);
    List.iter (put_string16 b) t.absent;
    Wbuf.contents b

  let decode bytes =
    let r = Rbuf.of_bytes bytes in
    let m = Bytes.to_string (Rbuf.take ~what:"artifact magic" r 8) in
    if m <> magic then raise (Rbuf.Truncated "artifact magic: not a DiCE repro");
    let v = Rbuf.u8 ~what:"artifact version" r in
    if v < 1 || v > version then
      raise (Rbuf.Truncated (Printf.sprintf "artifact version: %d (want <= %d)" v version));
    let n_speakers = Rbuf.u16 ~what:"speaker count" r in
    let speakers = List.init n_speakers (fun _ -> get_string16 ~what:"speaker name" r) in
    (* v1 had no source kind: the field was always shared config text *)
    let kind = if v = 1 then 0 else Rbuf.u8 ~what:"source kind" r in
    let config_len = Rbuf.u32 ~what:"config length" r in
    let text = Bytes.to_string (Rbuf.take ~what:"config" r config_len) in
    let source =
      match kind with
      | 0 -> Config_text text
      | 1 -> Intent_text text
      | k -> raise (Rbuf.Truncated (Printf.sprintf "source kind: %d (want 0 or 1)" k))
    in
    let setup = get_exchanges ~what:"setup" r in
    let schedule = get_exchanges ~what:"schedule" r in
    let signature = get_string16 ~what:"signature" r in
    (* pre-v3 artifacts predate degraded captures: nobody was absent *)
    let absent =
      if v < 3 then []
      else begin
        let n = Rbuf.u16 ~what:"absent count" r in
        List.init n (fun _ -> get_string16 ~what:"absent member" r)
      end
    in
    if not (Rbuf.eof r) then
      raise (Rbuf.Truncated (Printf.sprintf "trailing bytes at %d" (Rbuf.pos r)));
    { speakers; source; setup; schedule; signature; absent }

  let save path t =
    let oc = open_out_bin path in
    output_bytes oc (encode t);
    close_out oc

  let load path =
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let bytes = really_input_string ic len in
    close_in ic;
    decode (Bytes.of_string bytes)

  let build ?speakers t =
    (* default to the members that actually voted: rebuilding the
       absent ones too would replay a vote that never happened and
       miss the recorded signature (their answers were excluded) *)
    let voting = List.filter (fun s -> not (List.mem s t.absent)) t.speakers in
    let selected =
      Option.value speakers ~default:(if voting = [] then t.speakers else voting)
    in
    List.iter
      (fun name ->
        if not (List.mem name t.speakers) then
          invalid_arg
            (Printf.sprintf "Panel.Artifact.build: %s is not a panel member (panel: %s)"
               name
               (String.concat ", " t.speakers)))
      selected;
    let source =
      match t.source with
      | Config_text text -> Speaker.Config (Config_parser.parse text)
      | Intent_text text -> Speaker.Intent (Intent.parse text)
    in
    let explorer_addr =
      match t.schedule with (from, _) :: _ -> from | [] -> Ipv4.zero
    in
    List.map
      (fun name ->
        (* each member realizes the source through its own dialect *)
        let sp = Speakers.create_exn name source in
        let cfg = Speaker.config sp in
        List.iter
          (fun (pcfg : Config_types.peer_cfg) ->
            Speaker.establish sp ~peer:pcfg.Config_types.neighbor)
          cfg.Config_types.peers;
        List.iter (fun (peer, msg) -> ignore (Speaker.feed sp ~peer msg)) t.setup;
        Distributed.agent ~name ~addr:cfg.Config_types.router_id ~explorer_addr
          (Distributed.Local sp))
      selected

  let replay ?speakers ~jobs t =
    probe ~jobs ~agents:(build ?speakers t) t.schedule

  let reproduces t divergences =
    List.exists (fun d -> signature d = t.signature) divergences
end
