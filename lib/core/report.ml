open Dice_inet
module Json = Dice_util.Json
module Explorer = Dice_concolic.Explorer
module Coverage = Dice_concolic.Coverage
module Solver = Dice_concolic.Solver

let severity_string = function
  | Checker.Warning -> "warning"
  | Checker.Critical -> "critical"

let fault_json (f : Checker.fault) =
  Json.obj
    [ ("checker", Json.string f.Checker.checker);
      ("severity", Json.string (severity_string f.Checker.severity));
      ("prefix", Json.string (Prefix.to_string f.Checker.prefix));
      ("description", Json.string f.Checker.description);
      ("details", Json.obj (List.map (fun (k, v) -> (k, Json.string v)) f.Checker.details))
    ]

let explorer_json (r : Explorer.report) =
  Json.obj
    [ ("executions", Json.int r.Explorer.executions);
      ("distinct_paths", Json.int r.Explorer.distinct_paths);
      ("negations_attempted", Json.int r.Explorer.negations_attempted);
      ("negations_sat", Json.int r.Explorer.negations_sat);
      ("negations_unsat", Json.int r.Explorer.negations_unsat);
      ("negations_gave_up", Json.int r.Explorer.negations_gave_up);
      ("divergences", Json.int r.Explorer.divergences);
      ("program_exns", Json.int r.Explorer.program_exns);
      ("covered_directions", Json.int (Coverage.direction_count r.Explorer.coverage));
      ("covered_sites", Json.int (Coverage.site_count r.Explorer.coverage));
      ("coverage_ratio", Json.float (Explorer.coverage_ratio r));
      ("solver_calls", Json.int r.Explorer.solver_stats.Solver.calls);
      ("solver_candidates_tried", Json.int r.Explorer.solver_stats.Solver.candidates_tried);
      ( "solver_candidates_deduped",
        Json.int r.Explorer.solver_stats.Solver.candidates_deduped );
      ("solver_prefix_reuses", Json.int r.Explorer.solver_stats.Solver.prefix_reuses);
      ("solver_simplifications", Json.int r.Explorer.solver_stats.Solver.simplifications);
      ( "solver_first_violated_skips",
        Json.int r.Explorer.solver_stats.Solver.first_violated_skips );
      ("elapsed_s", Json.float r.Explorer.elapsed_s)
    ]

let seed_report_json (sr : Orchestrator.seed_report) =
  Json.obj
    [ ("tag", Json.string sr.Orchestrator.seed.Orchestrator.tag);
      ("peer", Json.string (Ipv4.to_string sr.Orchestrator.seed.Orchestrator.peer));
      ("prefix", Json.string (Prefix.to_string sr.Orchestrator.seed.Orchestrator.prefix));
      ("exploration", explorer_json sr.Orchestrator.explorer);
      ("runs_accepted", Json.int sr.Orchestrator.runs_accepted);
      ("runs_rejected", Json.int sr.Orchestrator.runs_rejected);
      ("observed_accepted", Json.bool sr.Orchestrator.observed_accepted);
      ("intercepted_messages", Json.int sr.Orchestrator.intercepted);
      ( "parser_depths",
        Json.obj (List.map (fun (k, v) -> (k, Json.int v)) sr.Orchestrator.depth_counts) );
      ("faults", Json.list fault_json sr.Orchestrator.faults)
    ]

let leakable_json faults =
  Json.list
    (fun (prefix, count) ->
      Json.obj
        [ ("range", Json.string (Prefix.to_string prefix)); ("findings", Json.int count) ])
    (Hijack.leakable_summary faults)

let report_json (r : Orchestrator.report) =
  Json.obj
    [ ("seeds", Json.list seed_report_json r.Orchestrator.seed_reports);
      ("faults", Json.list fault_json r.Orchestrator.faults);
      ("leakable_ranges", leakable_json r.Orchestrator.faults);
      ("live_image_bytes", Json.int r.Orchestrator.live_image_bytes);
      ("checkpoint_pages", Json.int r.Orchestrator.checkpoint_pages);
      ("checkpoint_seconds", Json.float r.Orchestrator.checkpoint_seconds);
      ("wall_seconds", Json.float r.Orchestrator.wall_seconds)
    ]

let comparison_json (c : Validate.comparison) =
  let verdict =
    match Validate.verdict c with
    | `Safe -> "safe"
    | `Ineffective -> "ineffective"
    | `Harmful -> "harmful"
  in
  Json.obj
    [ ("verdict", Json.string verdict);
      ("fixed", Json.list fault_json c.Validate.fixed);
      ("introduced", Json.list fault_json c.Validate.introduced);
      ("persisting", Json.list fault_json c.Validate.persisting);
      ( "regressions",
        Json.list
          (fun (s : Orchestrator.seed) ->
            Json.obj
              [ ("prefix", Json.string (Prefix.to_string s.Orchestrator.prefix));
                ("peer", Json.string (Ipv4.to_string s.Orchestrator.peer)) ])
          c.Validate.regressions );
      ("current", report_json c.Validate.current_report);
      ("proposed", report_json c.Validate.proposed_report)
    ]

let counts (r : Orchestrator.report) =
  List.fold_left
    (fun (crit, warn) (f : Checker.fault) ->
      match f.Checker.severity with
      | Checker.Critical -> (crit + 1, warn)
      | Checker.Warning -> (crit, warn + 1))
    (0, 0) r.Orchestrator.faults

let to_text r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Format.asprintf "%a@." Orchestrator.pp_report r);
  (match Hijack.leakable_summary r.Orchestrator.faults with
  | [] -> Buffer.add_string buf "no leakable prefix ranges.\n"
  | ranges ->
    Buffer.add_string buf "leakable prefix ranges:\n";
    List.iter
      (fun (prefix, n) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-20s %d finding(s)\n" (Prefix.to_string prefix) n))
      ranges);
  Buffer.contents buf

let summary_line r =
  let crit, warn = counts r in
  let executions =
    List.fold_left
      (fun acc (sr : Orchestrator.seed_report) ->
        acc + sr.Orchestrator.explorer.Explorer.executions)
      0 r.Orchestrator.seed_reports
  in
  Printf.sprintf "dice: %d seed(s), %d executions, %d critical, %d warning, %.2fs"
    (List.length r.Orchestrator.seed_reports)
    executions crit warn r.Orchestrator.wall_seconds
