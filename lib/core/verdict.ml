type t = {
  accepted : bool;
  installed : bool;
  origin_conflict : bool;
  covers_foreign : int;
  would_propagate : int;
}

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) =
  let c = Bool.compare a.accepted b.accepted in
  if c <> 0 then c
  else begin
    let c = Bool.compare a.installed b.installed in
    if c <> 0 then c
    else begin
      let c = Bool.compare a.origin_conflict b.origin_conflict in
      if c <> 0 then c
      else begin
        let c = Int.compare a.covers_foreign b.covers_foreign in
        if c <> 0 then c else Int.compare a.would_propagate b.would_propagate
      end
    end
  end

let to_string v =
  Printf.sprintf "%s|%s|%s covers=%d propagates=%d"
    (if v.accepted then "accepted" else "rejected")
    (if v.installed then "installed" else "not-installed")
    (if v.origin_conflict then "conflict" else "no-conflict")
    v.covers_foreign v.would_propagate

let pp ppf v = Format.pp_print_string ppf (to_string v)

let to_details ?(prefix = "") v =
  [ (prefix ^ "accepted", string_of_bool v.accepted);
    (prefix ^ "installed", string_of_bool v.installed);
    (prefix ^ "origin-conflict", string_of_bool v.origin_conflict);
    (prefix ^ "covers-foreign", string_of_int v.covers_foreign);
    (prefix ^ "propagates-to", string_of_int v.would_propagate);
  ]
