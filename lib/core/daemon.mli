(** Continuous online testing.

    DiCE "continuously and automatically explores the system behavior, to
    check whether the system deviates from its desired behavior" (§1).
    This module closes the loop in the simulated deployment: attached to
    a live {!Router_node.t} (whose router it wraps as a BIRD speaker via
    the {!Speakers} registry), it taps every received UPDATE as an
    exploration seed (sampled), and periodically — in virtual time, off
    the message-processing path — checkpoints and explores, accumulating
    fault reports for the operator. The live node is never touched and
    no exploration message reaches the network. *)

open Dice_inet
open Dice_bgp

type cfg = {
  orchestrator : Orchestrator.cfg;
  explore_every : float;  (** virtual seconds between exploration episodes *)
  min_seeds : int;  (** skip an episode when fewer seeds are pending *)
  seed_sample : int;
      (** observe every [n]-th announcement; values [<= 1] (clamped by
          {!attach}) observe everything *)
  observe_peers : Ipv4.t list option;
      (** only tap these sessions; [None] taps every session *)
}

val default_cfg : cfg
(** Explore every 60 virtual seconds when at least one seed is pending,
    sampling every 16th announcement from every session, with
    {!Orchestrator.default_cfg}. *)

type t

val attach : ?cfg:cfg -> Router_node.t -> t
(** Start continuous testing on a node. Observation begins immediately;
    the first exploration episode is scheduled [explore_every] from now.
    [cfg.seed_sample] is validated here: non-positive values are clamped
    to 1 (observe every announcement). Cooperating remote agents in
    [cfg.orchestrator.agents] are forwarded to every exploration episode,
    so cross-domain probing happens continuously, not just in one-shot
    runs. *)

val stop : t -> unit
(** Stop scheduling further episodes (the current simulation keeps
    running). *)

val explorations : t -> int
(** Episodes that actually explored (had enough seeds). *)

val reports : t -> Orchestrator.report list
(** All episode reports, oldest first. *)

val faults : t -> Checker.fault list
(** Distinct faults across all episodes so far. *)

val observed : t -> int
(** Announcements tapped as seeds so far. *)

val on_fault : t -> (Checker.fault -> unit) -> unit
(** Notify the operator the moment a {e new} distinct fault is found. *)
