(** The probe wire protocol: what actually crosses a domain boundary.

    The paper's confidentiality requirement (§2.4) — cooperating domains
    "only communicate state information through a narrow interface" — is
    only a mechanism if the interface is a {e message format}, not a
    function signature. This module defines that format: length-framed,
    versioned, big-endian frames carrying probe requests (the claimed
    arrival session plus the encoded exploration message) and probe
    responses (per-prefix verdicts, or a decline/error). Everything a
    remote domain ever reveals is expressible in these frames; everything
    else stays home by construction.

    Framing: [version(u8) kind(u8) req_id(u32) body_len(u32) body]. A
    frame that is truncated, carries an alien version, an unknown kind, a
    malformed body, or trailing bytes fails loudly via
    {!Dice_wire.Rbuf.Truncated} — never a silent partial decode.

    The request body is also the {e canonical form} of a probe: verdict
    caches key on {!canonical_request} directly, so the cache and the
    wire share one canonicalization (two structurally different message
    ASTs that encode identically are the same probe on the wire {e and}
    in the cache). *)

open Dice_inet
open Dice_bgp

val version : int
(** Protocol version carried in every emitted frame (currently [2]).
    Version 2 added the {!Heartbeat} frame; frames from
    {!min_version} up still decode, with version-gated kinds — a
    heartbeat claiming version 1 is malformed. *)

val min_version : int
(** Oldest protocol version {!decode} still accepts (currently [1]). *)

type verdict = Verdict.t = {
  accepted : bool;
  installed : bool;
  origin_conflict : bool;
  covers_foreign : int;
  would_propagate : int;
}
(** The narrow interface itself: three booleans and two counts per
    announced prefix — {!Verdict.t}, re-exported here so wire code can
    keep writing [Probe_wire.verdict]. No RIB contents, no filters, no
    origin data cross the interface. *)

type frame =
  | Request of { req_id : int; from : Ipv4.t; msg : bytes }
      (** Probe one exploration message ([msg], BGP wire encoding) as if
          it arrived on the session with [from]. *)
  | Response of { req_id : int; verdicts : (Prefix.t * verdict) list }
      (** One verdict per announced prefix, in NLRI order. *)
  | Decline of { req_id : int; reason : string }
      (** The agent will not probe this message (e.g. it announces no
          prefixes). Not an error: the answer is "nothing to say". *)
  | Error of { req_id : int; reason : string }
      (** The agent failed to probe (undecodable message, internal
          failure). *)
  | Heartbeat of { seq : int; incarnation : int; state_version : int }
      (** Liveness beacon (protocol version 2+): the serving agent is
          up, on its [incarnation]-th life (bumped at each crash
          recovery), with its speaker at [state_version]
          ([updates_processed]). [seq] rides the frame's request-id slot
          as a monotone beacon counter. Still the narrow interface: two
          counters and a sequence number, no state. *)

val canonical_request : from:Ipv4.t -> Msg.t -> bytes
(** The canonical encoding of a probe request: [from] followed by the
    message's BGP wire encoding, length-framed. This is byte-for-byte the
    body of a {!Request} frame, and the key under which verdict caches
    memoize — one canonicalization for the wire and the cache. *)

val encode_request : req_id:int -> bytes -> bytes
(** [encode_request ~req_id canonical] frames a {!canonical_request}
    body. *)

val encode_response : req_id:int -> (Prefix.t * verdict) list -> bytes
val encode_decline : req_id:int -> string -> bytes
val encode_error : req_id:int -> string -> bytes

val encode_heartbeat : seq:int -> incarnation:int -> state_version:int -> bytes
(** @raise Invalid_argument if [incarnation] or [state_version] falls
    outside u32 range ([seq] is masked like every request id). *)

val decode : bytes -> frame
(** Decode one frame.
    @raise Dice_wire.Rbuf.Truncated on any malformed input: truncation,
    version or kind mismatch, out-of-range fields, or trailing bytes.
    Never raises anything else, never loops, never allocates
    proportionally to a length field that the body cannot back. *)
