(** Operator-action validation: test a proposed configuration change on a
    clone of live state {e before} committing it.

    The paper positions this as the natural extension of DiCE (§5): "our
    approach could be extended to explore system behavior under specific
    operator actions before they are introduced in the running system"
    (following Nagaraja et al.'s operator-mistake study, and Alimi et
    al.'s shadow configurations). The mechanics already exist: checkpoint
    live state, build a shadow speaker (same implementation as the live
    one) with the {e proposed} configuration over the checkpointed RIBs,
    and explore both configurations with the same seeds and budget. The comparison answers the two operator
    questions:
    - does the change close the holes? ({!comparison.fixed})
    - does it break legitimate announcements or open new holes?
      ({!comparison.regressions}, {!comparison.introduced}) *)

type comparison = {
  current_report : Orchestrator.report;  (** exploration under the running config *)
  proposed_report : Orchestrator.report;  (** exploration under the proposed config *)
  fixed : Checker.fault list;
      (** faults found under the current config that the proposed one
          eliminates *)
  introduced : Checker.fault list;
      (** faults that only appear under the proposed config *)
  persisting : Checker.fault list;
      (** faults present under both *)
  regressions : Orchestrator.seed list;
      (** observed (legitimate) inputs the running config accepts but the
          proposed config rejects — routine traffic the change would
          break *)
}

val config_change :
  ?cfg:Orchestrator.cfg ->
  live:Speaker.instance ->
  proposed:Speaker.source ->
  seeds:Orchestrator.seed list ->
  unit ->
  comparison
(** Explore [seeds] under both configurations, starting from the live
    speaker's current state. The proposed source is realized through the
    {e live implementation's own dialect} ({!Speaker.rerealize}) — the
    shadow runs what that implementation would read, quirks included.
    The live speaker is never mutated; the proposed configuration must
    keep the same peer set (addresses and AS numbers), as a real
    maintenance window would. [cfg]'s [max_seeds] is overridden to cover
    every seed given.
    @raise Invalid_argument if the proposed peers differ. *)

val verdict : comparison -> [ `Safe | `Ineffective | `Harmful ]
(** [`Harmful] if the change introduces faults or breaks observed
    traffic; [`Ineffective] if it fixes nothing (and harms nothing);
    [`Safe] otherwise. *)

val pp : Format.formatter -> comparison -> unit
