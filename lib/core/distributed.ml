open Dice_inet
open Dice_bgp

type verdict = Probe_wire.verdict = {
  accepted : bool;
  installed : bool;
  origin_conflict : bool;
  covers_foreign : int;
  would_propagate : int;
}

type outcome = Probe_rpc.result =
  | Verdicts of (Prefix.t * verdict) list
  | Declined of string
  | Timeout

let verdicts = function
  | Verdicts vs -> vs
  | Declined _ | Timeout -> []

type transport =
  | Local of Speaker.instance
  | Remote of Probe_rpc.endpoint

(* Verdicts are memoized per agent, keyed on the canonicalized probe —
   byte-for-byte the body of the wire request frame (two structurally
   different ASTs that encode identically are the same probe on the wire
   and in the cache). Entries are stamped with the live speaker's
   [updates_processed] version; when the remote node moves on, the next
   probe presents a newer version and the stale verdict evicts itself
   (see {!Dice_exec.Vcache}). The cache lives where the version is
   known: beside the live speaker. A [Local] agent consults it directly;
   a [Remote] agent's probes cross the wire and hit the same cache on
   the serving side. *)
type agent = {
  name : string;
  addr : Ipv4.t;
  explorer_addr : Ipv4.t;
  (* mutable so crash recovery can swap a rebuilt speaker in place — the
     agent's identity (name, addr, caches, counters) survives the
     restart, exactly like a rebooted router keeps its address *)
  mutable transport : transport;
  health : Health.t;
  lock : Mutex.t;  (* guards [cloned_version]; probes run on any worker domain *)
  mutable cloned_version : int option;  (* live version last cloned against *)
  probes : int Atomic.t;
  checkpoints : int Atomic.t;
  clones : int Atomic.t;
  declines : int Atomic.t;
  timeouts : int Atomic.t;
  vcache : (bytes, (Prefix.t * verdict) list) Dice_exec.Vcache.t;
}

let agent ~name ~addr ~explorer_addr transport =
  let health =
    match transport with
    (* a Remote agent's liveness is the endpoint's: one monitor, fed by
       the RPC layer, shared here — never double-counted *)
    | Remote ep -> Probe_rpc.endpoint_health ep
    | Local _ -> Health.create ~name ()
  in
  {
    name;
    addr;
    explorer_addr;
    transport;
    health;
    lock = Mutex.create ();
    cloned_version = None;
    probes = Atomic.make 0;
    checkpoints = Atomic.make 0;
    clones = Atomic.make 0;
    declines = Atomic.make 0;
    timeouts = Atomic.make 0;
    vcache = Dice_exec.Vcache.create ();
  }

let agent_name t = t.name
let agent_addr t = t.addr
let agent_explorer_addr t = t.explorer_addr
let agent_transport t = t.transport
let agent_health t = t.health

(* The remote node's explorer clone of its own state — taken by the
   agent, never shipped to the exploring node. The clone shares all
   persistent route storage with the live speaker (Prefix_trie
   structural sharing), so taking one is O(#peers): no serialization,
   no parse, per-clone memory is the probe's write set. The mutex
   covers the read of the live speaker's mutable cells; [checkpoints]
   keeps its historical meaning — distinct live-state versions cloned
   against — so one burst of probes against an unchanged speaker still
   counts as one logical checkpoint. *)
let take_clone t live =
  Mutex.lock t.lock;
  let version = Speaker.updates_processed live in
  (match t.cloned_version with
  | Some v when v = version -> ()
  | Some _ | None ->
    t.cloned_version <- Some version;
    Atomic.incr t.checkpoints);
  Atomic.incr t.clones;
  let clone = Speaker.clone live in
  Mutex.unlock t.lock;
  clone

let in_whitelist anycast prefix = List.exists (fun a -> Prefix.subsumes a prefix) anycast

let probe_uncached t live ~from (u : Msg.update) msg =
  let clone = take_clone t live in
  let pre = Speaker.loc_rib clone in
  let anycast = (Speaker.config live).Config_types.anycast in
  let announced_origin =
    match Route.of_attrs u.Msg.attrs with
    | Ok route -> Route.origin_as route
    | Error _ -> None
  in
  (* process over the isolated clone; outputs are never delivered *)
  let outs = Speaker.feed clone ~peer:from msg in
  List.map
    (fun prefix ->
      let accepted = Speaker.learned_from clone ~peer:from prefix in
      let installed =
        match Speaker.best_route clone prefix with
        | Some e -> e.Rib.Loc.src.Route.peer_addr = from
        | None -> false
      in
      let foreign_origin (e : Rib.Loc.entry) =
        match (Route.origin_as e.Rib.Loc.route, announced_origin) with
        | Some old_as, Some new_as -> old_as <> new_as
        | Some _, None -> true
        | None, _ -> false
      in
      let whitelisted = in_whitelist anycast prefix in
      let origin_conflict =
        accepted && (not whitelisted)
        && List.exists (fun (_, e) -> foreign_origin e) (Rib.Loc.covering prefix pre)
      in
      (* the announcement claims a super-block of space the remote node
         routes to other origins: a coverage leak (traffic for the
         uncovered gaps inside the block would be diverted) *)
      let covers_foreign =
        if accepted && not whitelisted then
          List.length
            (List.filter
               (fun ((q, e) : Prefix.t * Rib.Loc.entry) ->
                 (not (Prefix.equal q prefix)) && foreign_origin e)
               (Rib.Loc.covered prefix pre))
        else 0
      in
      let would_propagate =
        List.length
          (List.filter
             (fun (dst, out) ->
               match out with
               | Msg.Update u' -> dst <> from && List.mem prefix u'.Msg.nlri
               | Msg.Open _ | Msg.Notification _ | Msg.Keepalive -> false)
             outs)
      in
      (prefix, { accepted; installed; origin_conflict; covers_foreign; would_propagate }))
    u.Msg.nlri

(* Only announcements are probeable: anything else has no per-prefix
   verdict to give. Declining locally keeps [Local] and [Remote]
   transports equivalent — a server would answer the same decline frame,
   so the client never puts it on the wire. *)
let declinable msg =
  match msg with
  | Msg.Update u when u.Msg.nlri <> [] -> None
  | Msg.Update _ -> Some "message announces no prefixes"
  | Msg.Open _ | Msg.Notification _ | Msg.Keepalive -> Some "not an announcement"

let probe_local t live ~from u msg =
  let version = Speaker.updates_processed live in
  let key = Probe_wire.canonical_request ~from msg in
  match Dice_exec.Vcache.find t.vcache ~version key with
  | Some vs -> Verdicts vs
  | None ->
    let vs = probe_uncached t live ~from u msg in
    Dice_exec.Vcache.store t.vcache ~version key vs;
    Verdicts vs

(* Fold an outcome into the per-agent counters. Counting here — on the
   probing side, after the answer is known — is what makes the counters
   transport-uniform: a [Local] decline and a [Remote] decline frame both
   land in [declines], and [Timeout] (which only a wire can produce, but
   is counted the same way) in [timeouts]. *)
let count t outcome =
  (match outcome with
  | Declined _ -> Atomic.incr t.declines
  | Timeout -> Atomic.incr t.timeouts
  | Verdicts _ -> ());
  outcome

let probe t ~from msg =
  match declinable msg with
  | Some reason -> count t (Declined reason)
  | None -> begin
    Atomic.incr t.probes;
    match (t.transport, msg) with
    | Local live, Msg.Update u -> count t (probe_local t live ~from u msg)
    | Remote ep, _ -> count t (Probe_rpc.call ep (Probe_wire.canonical_request ~from msg))
    | Local _, (Msg.Open _ | Msg.Notification _ | Msg.Keepalive) ->
      (* unreachable: [declinable] admits only announcements *)
      count t (Declined "not an announcement")
  end

let serve net t =
  match t.transport with
  | Remote _ -> invalid_arg "Distributed.serve: agent is already remote"
  | Local _ ->
    Probe_rpc.serve net ~name:t.name ~answer:(fun ~from msg ->
        match probe t ~from msg with
        | Verdicts vs -> Probe_rpc.Reply vs
        | Declined reason -> Probe_rpc.Refuse reason
        | Timeout -> assert false (* a [Local] probe cannot time out *))

(* [probe_all] shards local probes over the worker pool; remote probes
   stay on the calling domain and pipeline over each endpoint's
   in-flight window instead (the simulated network is single-threaded).
   Results keep request order whatever the schedule. *)
let probe_all ?(jobs = 1) reqs =
  let indexed = List.mapi (fun i r -> (i, r)) reqs in
  let is_remote (_, (a, _, _)) =
    match a.transport with
    | Remote _ -> true
    | Local _ -> false
  in
  let remote, local = List.partition is_remote indexed in
  let n = List.length reqs in
  let results = Array.make n (Declined "") in
  (* remote: short-circuit declines, group wire-bound requests by
     endpoint, pipeline each group *)
  let groups : (Probe_rpc.endpoint * (int * agent * bytes) list ref) list ref = ref [] in
  List.iter
    (fun (i, (a, from, msg)) ->
      match declinable msg with
      | Some reason -> results.(i) <- count a (Declined reason)
      | None ->
        Atomic.incr a.probes;
        let ep =
          match a.transport with
          | Remote ep -> ep
          | Local _ -> assert false
        in
        let canonical = Probe_wire.canonical_request ~from msg in
        let cell =
          match List.assq_opt ep !groups with
          | Some cell -> cell
          | None ->
            let cell = ref [] in
            groups := !groups @ [ (ep, cell) ];
            cell
        in
        cell := (i, a, canonical) :: !cell)
    remote;
  List.iter
    (fun ((ep : Probe_rpc.endpoint), cell) ->
      let items = List.rev !cell in
      let answers = Probe_rpc.call_batch ep (List.map (fun (_, _, c) -> c) items) in
      List.iter2 (fun (i, a, _) r -> results.(i) <- count a r) items answers)
    !groups;
  (* local: the existing pool fan-out *)
  let local_answers =
    Dice_exec.Pool.map ~jobs:(max 1 jobs)
      (fun (i, (a, from, msg)) -> (i, probe a ~from msg))
      local
  in
  List.iter (fun (i, r) -> results.(i) <- r) local_answers;
  Array.to_list results

type stats = {
  probes : int;
  checkpoints : int;
  clones : int;
  vcache_hits : int;
  vcache_hit_rate : float;
  timeouts : int;
  declines : int;
  retries : int;
}

let stats t =
  let retries =
    match t.transport with
    | Local _ -> 0
    | Remote ep -> (Probe_rpc.stats ep).Probe_rpc.retries
  in
  {
    probes = Atomic.get t.probes;
    checkpoints = Atomic.get t.checkpoints;
    clones = Atomic.get t.clones;
    vcache_hits = Dice_exec.Vcache.hits t.vcache;
    vcache_hit_rate = Dice_exec.Vcache.hit_rate t.vcache;
    timeouts = Atomic.get t.timeouts;
    declines = Atomic.get t.declines;
    retries;
  }

(* ------------------------------------------------------------------ *)
(* Crash recovery                                                      *)
(* ------------------------------------------------------------------ *)

module Recovery = struct
  type harness = {
    agent : agent;
    journal_cap : int;
    lock : Mutex.t;
    mutable image : bytes;  (* last snapshot of the live speaker *)
    mutable rev_journal : (Ipv4.t * Msg.t) list;  (* updates since, newest first *)
    mutable journal_len : int;
    mutable incarnation : int;
    mutable restarts : int;
    mutable snapshots : int;
  }

  let live_of agent what =
    match agent.transport with
    | Local sp -> sp
    | Remote _ ->
      invalid_arg
        (Printf.sprintf "Distributed.Recovery.%s: %s is not a Local agent" what
           agent.name)

  let attach ?(journal_cap = 64) agent =
    if journal_cap < 1 then
      invalid_arg "Distributed.Recovery.attach: journal_cap must be >= 1";
    let sp = live_of agent "attach" in
    {
      agent;
      journal_cap;
      lock = Mutex.create ();
      image = Speaker.snapshot sp;
      rev_journal = [];
      journal_len = 0;
      incarnation = 0;
      restarts = 0;
      snapshots = 1;
    }

  (* Feed the live speaker and journal the update. When the journal
     hits its cap, fold it into a fresh snapshot instead of growing —
     recovery therefore always replays at most [journal_cap] updates,
     and is always exact: snapshot + journal IS the live state. *)
  let feed t ~peer msg =
    let sp = live_of t.agent "feed" in
    let outs = Speaker.feed sp ~peer msg in
    Mutex.lock t.lock;
    if t.journal_len + 1 >= t.journal_cap then begin
      t.image <- Speaker.snapshot sp;
      t.snapshots <- t.snapshots + 1;
      t.rev_journal <- [];
      t.journal_len <- 0
    end
    else begin
      t.rev_journal <- (peer, msg) :: t.rev_journal;
      t.journal_len <- t.journal_len + 1
    end;
    Mutex.unlock t.lock;
    outs

  let crash_restart t =
    let old = live_of t.agent "crash_restart" in
    Mutex.lock t.lock;
    let image = t.image and journal = List.rev t.rev_journal in
    Mutex.unlock t.lock;
    (* rebuild: restore the last snapshot, replay the bounded journal —
       the rebuilt speaker is state-identical to the one that crashed *)
    let sp = Speaker.restore_like old (Speaker.realization old) image in
    List.iter (fun (peer, msg) -> ignore (Speaker.feed sp ~peer msg)) journal;
    t.agent.transport <- Local sp;
    (* the recorded clone version belonged to the dead speaker *)
    Mutex.lock t.agent.lock;
    t.agent.cloned_version <- None;
    Mutex.unlock t.agent.lock;
    (* a rebuilt speaker can present an [updates_processed] counter that
       collides with a pre-crash version while holding different
       history — epoch-invalidate rather than trust the version stamp *)
    Dice_exec.Vcache.invalidate t.agent.vcache;
    Mutex.lock t.lock;
    t.incarnation <- t.incarnation + 1;
    t.restarts <- t.restarts + 1;
    Mutex.unlock t.lock

  let incarnation t =
    Mutex.lock t.lock;
    let v = t.incarnation in
    Mutex.unlock t.lock;
    v

  let restarts t =
    Mutex.lock t.lock;
    let v = t.restarts in
    Mutex.unlock t.lock;
    v

  let snapshots t =
    Mutex.lock t.lock;
    let v = t.snapshots in
    Mutex.unlock t.lock;
    v

  let journal_length t =
    Mutex.lock t.lock;
    let v = t.journal_len in
    Mutex.unlock t.lock;
    v

  let state_version t =
    match t.agent.transport with
    | Local sp -> Speaker.updates_processed sp
    | Remote _ -> 0
end

let checker ~jobs ~agents =
  let agents_of addr = List.filter (fun a -> a.addr = addr) agents in
  let check (cctx : Checker.context) (outcome : Speaker.import_outcome) =
    if not outcome.Speaker.accepted then []
    else begin
      (* Collect every (agent, message) pair first — probes are
         independent request/verdict exchanges, so they shard across
         worker domains (local transports) or pipeline over the wire
         (remote transports); [probe_all] keeps verdict order equal to
         request order, which keeps the merged finding list
         deterministic whatever the schedule. *)
      let requests =
        List.concat_map
          (fun (dst, out) ->
            match out with
            | Msg.Update _ -> List.map (fun a -> (a, (out : Msg.t))) (agents_of dst)
            | Msg.Open _ | Msg.Notification _ | Msg.Keepalive -> [])
          outcome.Speaker.outputs
      in
      let answers =
        probe_all ~jobs
          (List.map (fun (a, msg) -> (a, a.explorer_addr, msg)) requests)
      in
      List.concat
        (List.map2
           (fun (a, _msg) answer ->
             List.concat_map
               (fun (remote_prefix, v) ->
                 let base_details =
                   [ ("remote-node", a.name);
                     ("remote-prefix", Prefix.to_string remote_prefix);
                     ("local-prefix", Prefix.to_string outcome.Speaker.prefix);
                     ("via-peer", Ipv4.to_string cctx.Checker.peer);
                   ]
                   @ Verdict.to_details ~prefix:"remote-" v
                 in
                 let coverage =
                   if v.covers_foreign > 0 then
                     [ { Checker.checker = "remote-coverage-leak";
                         severity = Checker.Critical;
                         prefix = remote_prefix;
                         description =
                           Printf.sprintf
                             "explored announcement covers %d remote route(s) with other origins"
                             v.covers_foreign;
                         details = base_details;
                       } ]
                   else []
                 in
                 let conflicts =
                   if v.origin_conflict then
                     [ { Checker.checker = "remote-origin-conflict";
                         severity = Checker.Critical;
                         prefix = remote_prefix;
                         description =
                           "explored announcement overrides origins at a remote node";
                         details = base_details;
                       } ]
                   else []
                 in
                 let propagation =
                   if v.accepted && v.would_propagate > 0 then
                     [ { Checker.checker = "remote-propagation";
                         severity = Checker.Warning;
                         prefix = remote_prefix;
                         description =
                           "remote node would re-advertise the exploratory route";
                         details = base_details;
                       } ]
                   else []
                 in
                 conflicts @ coverage @ propagation)
               (* an unreachable or declining agent contributes no
                  findings — a timed-out probe degrades the check, it
                  never aborts the exploration *)
               (verdicts answer))
           requests answers)
    end
  in
  { Checker.name = "distributed"; check }
