open Dice_inet
open Dice_bgp

(* Verdicts are memoized per agent, keyed on the canonicalized probe —
   the session the message claims to arrive on plus the message's wire
   encoding (two structurally different ASTs that encode identically are
   the same probe). Entries are stamped with the live router's
   [updates_processed] version; when the remote node moves on, the next
   probe presents a newer version and the stale verdict evicts itself
   (see {!Dice_exec.Vcache}). *)
type vkey = Ipv4.t * bytes

type verdict = {
  accepted : bool;
  installed : bool;
  origin_conflict : bool;
  covers_foreign : int;
  would_propagate : int;
}

type agent = {
  name : string;
  addr : Ipv4.t;
  explorer_addr : Ipv4.t;
  live : Router.t;
  lock : Mutex.t;  (* guards [cache]; probes run on any worker domain *)
  mutable cache : (bytes * int) option;  (* image, updates counter at capture *)
  probes : int Atomic.t;
  checkpoints : int Atomic.t;
  vcache : (vkey, (Prefix.t * verdict) list) Dice_exec.Vcache.t;
}

let agent ~name ~addr ~explorer_addr live =
  {
    name;
    addr;
    explorer_addr;
    live;
    lock = Mutex.create ();
    cache = None;
    probes = Atomic.make 0;
    checkpoints = Atomic.make 0;
    vcache = Dice_exec.Vcache.create ();
  }

let agent_name t = t.name
let agent_addr t = t.addr

(* The remote node's checkpoint of its own state — taken by the agent,
   never shipped to the exploring node. The mutex covers the check-then-
   capture window so concurrent probes share one checkpoint instead of
   each taking their own. *)
let checkpoint_image t =
  Mutex.lock t.lock;
  let version = Router.updates_processed t.live in
  let image =
    match t.cache with
    | Some (image, v) when v = version -> image
    | Some _ | None ->
      let image = Router.snapshot t.live in
      t.cache <- Some (image, version);
      Atomic.incr t.checkpoints;
      image
  in
  Mutex.unlock t.lock;
  image

let in_whitelist anycast prefix = List.exists (fun a -> Prefix.subsumes a prefix) anycast

let probe_uncached t ~from (u : Msg.update) msg =
  let clone = Router.restore (Router.config t.live) (checkpoint_image t) in
  let pre = Router.loc_rib clone in
  let anycast = (Router.config t.live).Config_types.anycast in
  let announced_origin =
    match Route.of_attrs u.Msg.attrs with
    | Ok route -> Route.origin_as route
    | Error _ -> None
  in
  (* process over the isolated clone; outputs are never delivered *)
  let outs = Router.handle_msg clone ~peer:from msg in
  List.map
    (fun prefix ->
      let accepted =
        match Router.adj_rib_in clone from with
        | Some adj -> Rib.Adj.find_opt prefix adj <> None
        | None -> false
      in
      let installed =
        match Router.best_route clone prefix with
        | Some e -> e.Rib.Loc.src.Route.peer_addr = from
        | None -> false
      in
      let foreign_origin (e : Rib.Loc.entry) =
        match (Route.origin_as e.Rib.Loc.route, announced_origin) with
        | Some old_as, Some new_as -> old_as <> new_as
        | Some _, None -> true
        | None, _ -> false
      in
      let whitelisted = in_whitelist anycast prefix in
      let origin_conflict =
        accepted && (not whitelisted)
        && List.exists (fun (_, e) -> foreign_origin e) (Rib.Loc.covering prefix pre)
      in
      (* the announcement claims a super-block of space the remote node
         routes to other origins: a coverage leak (traffic for the
         uncovered gaps inside the block would be diverted) *)
      let covers_foreign =
        if accepted && not whitelisted then
          List.length
            (List.filter
               (fun ((q, e) : Prefix.t * Rib.Loc.entry) ->
                 (not (Prefix.equal q prefix)) && foreign_origin e)
               (Rib.Loc.covered prefix pre))
        else 0
      in
      let would_propagate =
        List.length
          (List.filter
             (fun o ->
               match o with
               | Router.To_peer (dst, Msg.Update u') ->
                 dst <> from && List.mem prefix u'.Msg.nlri
               | Router.To_peer _ | Router.Connect_request _ | Router.Close_connection _
               | Router.Set_timer _ | Router.Clear_timer _ | Router.Session_up _
               | Router.Session_down _ ->
                 false)
             outs)
      in
      (prefix, { accepted; installed; origin_conflict; covers_foreign; would_propagate }))
    u.Msg.nlri

let probe t ~from msg =
  match msg with
  | Msg.Update u when u.Msg.nlri <> [] -> begin
    Atomic.incr t.probes;
    let version = Router.updates_processed t.live in
    let key = (from, Msg.encode msg) in
    match Dice_exec.Vcache.find t.vcache ~version key with
    | Some verdicts -> verdicts
    | None ->
      let verdicts = probe_uncached t ~from u msg in
      Dice_exec.Vcache.store t.vcache ~version key verdicts;
      verdicts
  end
  | Msg.Update _ | Msg.Open _ | Msg.Notification _ | Msg.Keepalive -> []

let probe_all ?(jobs = 1) reqs =
  Dice_exec.Pool.map ~jobs:(max 1 jobs)
    (fun (a, from, msg) -> probe a ~from msg)
    reqs

let probes_performed t = Atomic.get t.probes
let checkpoints_taken t = Atomic.get t.checkpoints
let vcache_hits t = Dice_exec.Vcache.hits t.vcache
let vcache_hit_rate t = Dice_exec.Vcache.hit_rate t.vcache

let checker ?(jobs = 1) ~agents () =
  let agents_of addr = List.filter (fun a -> a.addr = addr) agents in
  let check (cctx : Checker.context) (outcome : Router.import_outcome) =
    if not outcome.Router.accepted then []
    else begin
      (* Collect every (agent, message) pair first — probes are
         independent request/verdict exchanges, so they shard across
         worker domains; [Pool.map] keeps verdict order equal to request
         order, which keeps the merged finding list deterministic
         whatever the schedule. *)
      let requests =
        List.concat_map
          (fun output ->
            match output with
            | Router.To_peer (dst, (Msg.Update _ as msg)) ->
              List.map (fun a -> (a, msg)) (agents_of dst)
            | Router.To_peer _ | Router.Connect_request _ | Router.Close_connection _
            | Router.Set_timer _ | Router.Clear_timer _ | Router.Session_up _
            | Router.Session_down _ ->
              [])
          outcome.Router.outputs
      in
      let verdicts =
        probe_all ~jobs
          (List.map (fun (a, msg) -> (a, a.explorer_addr, msg)) requests)
      in
      List.concat
        (List.map2
           (fun (a, _msg) per_prefix ->
             List.concat_map
               (fun (remote_prefix, v) ->
                 let base_details =
                   [ ("remote-node", a.name);
                     ("remote-prefix", Prefix.to_string remote_prefix);
                     ("local-prefix", Prefix.to_string outcome.Router.prefix);
                     ("remote-accepted", string_of_bool v.accepted);
                     ("remote-installed", string_of_bool v.installed);
                     ("propagates-to", string_of_int v.would_propagate);
                     ("via-peer", Ipv4.to_string cctx.Checker.peer);
                   ]
                 in
                 let coverage =
                   if v.covers_foreign > 0 then
                     [ { Checker.checker = "remote-coverage-leak";
                         severity = Checker.Critical;
                         prefix = remote_prefix;
                         description =
                           Printf.sprintf
                             "explored announcement covers %d remote route(s) with other origins"
                             v.covers_foreign;
                         details = base_details;
                       } ]
                   else []
                 in
                 let conflicts =
                   if v.origin_conflict then
                     [ { Checker.checker = "remote-origin-conflict";
                         severity = Checker.Critical;
                         prefix = remote_prefix;
                         description =
                           "explored announcement overrides origins at a remote node";
                         details = base_details;
                       } ]
                   else []
                 in
                 let propagation =
                   if v.accepted && v.would_propagate > 0 then
                     [ { Checker.checker = "remote-propagation";
                         severity = Checker.Warning;
                         prefix = remote_prefix;
                         description =
                           "remote node would re-advertise the exploratory route";
                         details = base_details;
                       } ]
                   else []
                 in
                 conflicts @ coverage @ propagation)
               per_prefix)
           requests verdicts)
    end
  in
  { Checker.name = "distributed"; check }
