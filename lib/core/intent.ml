(* Re-export: the intent IR lives in Dice_bgp (the dialect translators in
   lib/bgp{,2,3} need it below the core), but it is part of the core's
   public vocabulary — Dice_core.Intent is the name user code reaches
   for. [include] preserves type equality with Dice_bgp.Intent. *)
include Dice_bgp.Intent
