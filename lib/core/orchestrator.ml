open Dice_inet
open Dice_bgp
open Dice_concolic
module Fork = Dice_checkpoint.Fork

type seed = {
  tag : string;
  peer : Ipv4.t;
  prefix : Prefix.t;
  route : Route.t;
}

(* ------------------------------------------------------------------ *)
(* Configuration: three nested concern groups plus the checker list.   *)
(* Smart constructors validate; the records stay transparent so call   *)
(* sites can start from the default values and override with record    *)
(* update syntax.                                                      *)
(* ------------------------------------------------------------------ *)

type exploration = {
  explorer : Explorer.config;
  page_size : int;
  mode : Symbolize.mode;
  max_seeds : int;
  clone_samples : int;
  jobs : int;
}

type federation = {
  agents : Distributed.agent list;
  probe_jobs : int;
}

type faults = {
  probe : Dice_sim.Faults.t option;
  seed : int64;
  node : Dice_sim.Faults.node option;
  crash_seed : int64;
}

type cfg = {
  exploration : exploration;
  checkers : Checker.t list;
  federation : federation;
  faults : faults;
}

let exploration ~explorer ~page_size ~mode ~max_seeds ~clone_samples ~jobs =
  if page_size <= 0 then invalid_arg "Orchestrator.exploration: page_size must be positive";
  if max_seeds < 0 then invalid_arg "Orchestrator.exploration: max_seeds must be >= 0";
  if clone_samples < 0 then
    invalid_arg "Orchestrator.exploration: clone_samples must be >= 0";
  if jobs < 1 then invalid_arg "Orchestrator.exploration: jobs must be >= 1";
  { explorer; page_size; mode; max_seeds; clone_samples; jobs }

let federation ~agents ~probe_jobs =
  if probe_jobs < 1 then invalid_arg "Orchestrator.federation: probe_jobs must be >= 1";
  { agents; probe_jobs }

let faults ?node ?(crash_seed = Dice_sim.Network.default_crash_seed) ~probe ~seed () =
  (match probe with
  | Some f -> Dice_sim.Faults.validate f
  | None -> ());
  (match node with
  | Some nf -> Dice_sim.Faults.validate_node nf
  | None -> ());
  { probe; seed; node; crash_seed }

let default_exploration =
  {
    explorer = { Explorer.default_config with Explorer.max_runs = 96; max_depth = 64 };
    page_size = Dice_checkpoint.Page.default_size;
    mode = Symbolize.Selective;
    max_seeds = 4;
    clone_samples = 4;
    jobs = 1;
  }

let default_federation = { agents = []; probe_jobs = 1 }
let default_faults =
  { probe = None;
    seed = 42L;
    node = None;
    crash_seed = Dice_sim.Network.default_crash_seed;
  }

let default_cfg =
  {
    exploration = default_exploration;
    checkers = [ Hijack.checker ];
    federation = default_federation;
    faults = default_faults;
  }

type t = {
  live : Speaker.instance;
  cfg : cfg;
  mutable rev_seeds : seed list;
  mutable seed_counter : int;
}

let create ?(cfg = default_cfg) live =
  (* Chaos knobs: a link fault model in the config lands on every
     remote agent's probe link, a node crash model on every remote
     agent's serving node, each with its RNG reseeded so the whole run
     replays from [cfg.faults.seed] / [cfg.faults.crash_seed]. Local
     agents have no wire to perturb and no node to crash. *)
  (if cfg.faults.probe <> None || cfg.faults.node <> None then
     List.iter
       (fun a ->
         match Distributed.agent_transport a with
         | Distributed.Remote ep ->
           let net, cnode, snode = Probe_rpc.endpoint_link ep in
           (match cfg.faults.probe with
           | None -> ()
           | Some f ->
             Dice_sim.Network.set_fault_seed net cfg.faults.seed;
             Dice_sim.Network.set_faults net cnode snode f);
           (match cfg.faults.node with
           | None -> ()
           | Some nf ->
             Dice_sim.Network.set_crash_seed net cfg.faults.crash_seed;
             Dice_sim.Network.set_node_faults net snode nf)
         | Distributed.Local _ -> ())
       cfg.federation.agents);
  (* Cooperating remote agents become one more checker: every exploration
     outcome is probed across the domain boundary, [probe_jobs] probes at
     a time over the worker pool. *)
  let cfg =
    match cfg.federation.agents with
    | [] -> cfg
    | agents ->
      { cfg with
        checkers =
          cfg.checkers
          @ [ Distributed.checker ~jobs:cfg.federation.probe_jobs ~agents ];
      }
  in
  { live; cfg; rev_seeds = []; seed_counter = 0 }

let speaker t = t.live

let observe t ~peer ~prefix ~route =
  let tag = Printf.sprintf "seed%d" t.seed_counter in
  t.seed_counter <- t.seed_counter + 1;
  t.rev_seeds <- { tag; peer; prefix; route } :: t.rev_seeds

let observe_update t ~peer (u : Msg.update) =
  match Route.of_attrs u.Msg.attrs with
  | Error _ -> ()
  | Ok route -> List.iter (fun prefix -> observe t ~peer ~prefix ~route) u.Msg.nlri

let pending_seeds t = List.length t.rev_seeds

type seed_report = {
  seed : seed;
  explorer : Explorer.report;
  faults : Checker.fault list;
  intercepted : int;
  runs_accepted : int;
  runs_rejected : int;
  observed_accepted : bool;
  clone_stats : Fork.clone_stats list;
  depth_counts : (string * int) list;
}

type report = {
  seed_reports : seed_report list;
  faults : Checker.fault list;
  checkpoint_pages : int;
  live_image_bytes : int;
  wall_seconds : float;
  checkpoint_seconds : float;
}

(* Serialized engine metadata: the path condition buffers a forked explorer
   process keeps in memory — counted as part of the clone's CoW footprint,
   as they would be in a real fork-based explorer. *)
let engine_metadata ctx =
  let buf = Buffer.create 256 in
  List.iter
    (fun (e : Path.entry) ->
      Buffer.add_string buf (Path.Site.name e.Path.site);
      Buffer.add_string buf (Format.asprintf "%a" Path.pp_constr e.Path.constr))
    (Engine.path ctx);
  Bytes.of_string (Buffer.contents buf)

let dedup_faults faults =
  let seen = Hashtbl.create 32 in
  List.filter
    (fun f ->
      let key = Checker.fault_key f in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    faults

let explore_seed t ~checkpoint ~real ~pre_loc (s : seed) =
  let ex = t.cfg.exploration in
  let sandbox = Dice_sim.Isolation.create ~name:("dice-" ^ s.tag) in
  (* the engine's accumulated in-memory state (constraints recorded across
     all runs so far): part of a forked explorer's footprint *)
  let meta_buf = Buffer.create 1024 in
  (* a pristine clone image for (re)creating the exploration speaker *)
  let base_image = Fork.checkpoint_image checkpoint in
  let clone = ref (Speaker.restore_like t.live real base_image) in
  let dirty = ref false in
  let faults = ref [] in
  let accepted = ref 0 in
  let rejected = ref 0 in
  let observed_accepted = ref None in
  let clone_stats = ref [] in
  let sampled = ref 0 in
  let depth_tbl : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let checker_ctx peer_as =
    { Checker.pre_loc_rib = pre_loc;
      anycast = (Speaker.config t.live).Config_types.anycast;
      peer = s.peer;
      peer_as;
    }
  in
  let peer_as =
    match Config_types.find_peer (Speaker.config t.live) s.peer with
    | Some p -> p.Config_types.remote_as
    | None -> 0
  in
  let run_outcome ctx (outcome : Speaker.import_outcome) =
    (* the first run replays the observed input unmutated *)
    if !observed_accepted = None then observed_accepted := Some outcome.Speaker.accepted;
    Buffer.add_bytes meta_buf (engine_metadata ctx);
    List.iter
      (fun (_, _) -> Dice_sim.Isolation.send sandbox ~src:0 ~dst:0 Bytes.empty)
      outcome.Speaker.outputs;
    if outcome.Speaker.accepted then begin
      incr accepted;
      dirty := true;
      (* sample clone footprints at exponentially spaced points so the
         growth of the explorer's workspace over the whole exploration is
         captured, not just the first few runs *)
      let power_of_two n = n land (n - 1) = 0 in
      if !sampled < ex.clone_samples && power_of_two !accepted then begin
        incr sampled;
        let fclone = Fork.spawn checkpoint in
        let final =
          Bytes.cat (Speaker.snapshot !clone)
            (Bytes.of_string (Buffer.contents meta_buf))
        in
        clone_stats := Fork.finish fclone ~final_image:final :: !clone_stats
      end
    end
    else incr rejected;
    List.iter
      (fun (c : Checker.t) -> faults := c.Checker.check (checker_ctx peer_as) outcome @ !faults)
      t.cfg.checkers
  in
  let program ctx =
    if !dirty then begin
      clone := Speaker.restore_like t.live real base_image;
      dirty := false
    end;
    match ex.mode with
    | Symbolize.Selective ->
      let cr = Symbolize.croute ctx ~tag:s.tag ~prefix:s.prefix ~route:s.route in
      let outcome = Speaker.import_concolic ~ctx !clone ~peer:s.peer cr in
      run_outcome ctx outcome
    | Symbolize.Whole_message -> begin
      let observed =
        Msg.encode (Msg.Update { withdrawn = []; attrs = Route.to_attrs s.route; nlri = [ s.prefix ] })
      in
      let cvals = Symbolize.message_bytes ctx ~tag:s.tag observed in
      let depth = Concolic_parser.validate ctx cvals in
      let key = Concolic_parser.depth_to_string depth in
      Hashtbl.replace depth_tbl key
        (1 + Option.value (Hashtbl.find_opt depth_tbl key) ~default:0);
      match depth with
      | Concolic_parser.Valid_update -> begin
        let bytes = Symbolize.concretize_bytes cvals in
        match Msg.decode bytes with
        | Ok (Msg.Update u) when u.Msg.nlri <> [] -> begin
          match Route.of_attrs u.Msg.attrs with
          | Ok route ->
            List.iter
              (fun prefix ->
                let cr = Croute.of_route prefix route in
                let outcome = Speaker.import_concolic ~ctx !clone ~peer:s.peer cr in
                run_outcome ctx outcome)
              u.Msg.nlri
          | Error _ -> incr rejected
        end
        | Ok _ | Error _ -> incr rejected
      end
      | Concolic_parser.Bad_header | Concolic_parser.Bad_update_skeleton
      | Concolic_parser.Bad_attribute | Concolic_parser.Bad_nlri
      | Concolic_parser.Valid_other ->
        ()
    end
  in
  let explorer = Explorer.explore ~config:ex.explorer program in
  {
    seed = s;
    explorer;
    faults = dedup_faults (List.rev !faults);
    intercepted = Dice_sim.Isolation.count sandbox;
    runs_accepted = !accepted;
    runs_rejected = !rejected;
    observed_accepted = Option.value !observed_accepted ~default:false;
    clone_stats = List.rev !clone_stats;
    depth_counts =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) depth_tbl [] |> List.sort compare;
  }

let take n l =
  let rec go n l acc =
    if n = 0 then List.rev acc
    else begin
      match l with
      | [] -> List.rev acc
      | x :: rest -> go (n - 1) rest (x :: acc)
    end
  in
  go n l []

let explore t =
  let ex = t.cfg.exploration in
  let t0 = Unix.gettimeofday () in
  let real = Speaker.realization t.live in
  (* only this runs on the live node's critical path: freezing the
     process image — the in-process equivalent of fork()'s page-table
     copy; the speaker decides how cheap it can make it *)
  let serialize_frozen = Speaker.freeze t.live in
  let pre_loc = Speaker.loc_rib t.live in
  let checkpoint_seconds = Unix.gettimeofday () -. t0 in
  (* from here on the explorer does the work: serialization included *)
  let live_image = serialize_frozen () in
  let mgr = Fork.create ~page_size:ex.page_size () in
  let checkpoint = Fork.checkpoint mgr ~live_image in
  let seeds = take ex.max_seeds t.rev_seeds in
  t.rev_seeds <- [];
  (* Seed explorations are independent — each restores its own speaker from
     the shared checkpoint image — so they can run on separate domains.
     [Pool.map] keeps report order equal to seed order whatever the
     schedule. *)
  let seed_reports =
    Dice_exec.Pool.map ~jobs:(max 1 ex.jobs)
      (fun s -> explore_seed t ~checkpoint ~real ~pre_loc s)
      seeds
  in
  let all_faults =
    dedup_faults (List.concat_map (fun (r : seed_report) -> r.faults) seed_reports)
  in
  {
    seed_reports;
    faults = all_faults;
    checkpoint_pages =
      Dice_checkpoint.Page.count ~page_size:ex.page_size (Bytes.length live_image);
    live_image_bytes = Bytes.length live_image;
    wall_seconds = Unix.gettimeofday () -. t0;
    checkpoint_seconds;
  }

let pp_report ppf r =
  Format.fprintf ppf "@[<v>DiCE exploration report@,";
  Format.fprintf ppf "seeds explored: %d@," (List.length r.seed_reports);
  Format.fprintf ppf "live image: %d bytes (%d pages)@," r.live_image_bytes
    r.checkpoint_pages;
  List.iter
    (fun sr ->
      Format.fprintf ppf "@[<v 2>%s (%s observed on %s):@," sr.seed.tag
        (Prefix.to_string sr.seed.prefix)
        (Ipv4.to_string sr.seed.peer);
      Format.fprintf ppf "executions: %d, accepted: %d, rejected: %d@,"
        sr.explorer.Explorer.executions sr.runs_accepted sr.runs_rejected;
      Format.fprintf ppf "coverage: %d directions / %d sites@,"
        (Coverage.direction_count sr.explorer.Explorer.coverage)
        (Coverage.site_count sr.explorer.Explorer.coverage);
      let ss = sr.explorer.Explorer.solver_stats in
      Format.fprintf ppf
        "solver: %d calls, %d prefix reuses, %d simplifications, %d scan skips@,"
        ss.Dice_concolic.Solver.calls ss.Dice_concolic.Solver.prefix_reuses
        ss.Dice_concolic.Solver.simplifications
        ss.Dice_concolic.Solver.first_violated_skips;
      if sr.explorer.Explorer.program_exns > 0 then
        Format.fprintf ppf "program exceptions: %d@,"
          sr.explorer.Explorer.program_exns;
      if sr.depth_counts <> [] then
        Format.fprintf ppf "parser depths: %s@,"
          (String.concat ", "
             (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) sr.depth_counts));
      Format.fprintf ppf "faults: %d@]@," (List.length sr.faults))
    r.seed_reports;
  Format.fprintf ppf "@[<v 2>distinct faults (%d):@,%a@]@,"
    (List.length r.faults)
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Checker.pp_fault)
    r.faults;
  Format.fprintf ppf "wall time: %.2f s@]" r.wall_seconds
