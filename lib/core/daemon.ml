open Dice_inet
open Dice_bgp

type cfg = {
  orchestrator : Orchestrator.cfg;
  explore_every : float;
  min_seeds : int;
  seed_sample : int;
  observe_peers : Ipv4.t list option;
}

let default_cfg =
  {
    orchestrator = Orchestrator.default_cfg;
    explore_every = 60.0;
    min_seeds = 1;
    seed_sample = 16;
    observe_peers = None;
  }

type t = {
  cfg : cfg;
  node : Router_node.t;
  dice : Orchestrator.t;
  mutable running : bool;
  mutable episode_count : int;
  mutable rev_reports : Orchestrator.report list;
  mutable seen_faults : (string, unit) Hashtbl.t;
  mutable rev_faults : Checker.fault list;
  mutable observed : int;
  mutable announcement_counter : int;
  mutable fault_observers : (Checker.fault -> unit) list;
}

let observe_update t ~peer (u : Msg.update) =
  let tapped =
    match t.cfg.observe_peers with
    | None -> true
    | Some peers -> List.mem peer peers
  in
  if tapped && u.Msg.nlri <> [] then begin
    t.announcement_counter <- t.announcement_counter + 1;
    (* [attach] normalizes [seed_sample] to >= 1, but guard the modulus
       anyway: a zero here is a Division_by_zero on the live message path *)
    let sample = max 1 t.cfg.seed_sample in
    if t.announcement_counter mod sample = 0 || t.observed = 0 then begin
      t.observed <- t.observed + 1;
      Orchestrator.observe_update t.dice ~peer u
    end
  end

let run_episode t =
  if Orchestrator.pending_seeds t.dice >= t.cfg.min_seeds then begin
    t.episode_count <- t.episode_count + 1;
    let report = Orchestrator.explore t.dice in
    t.rev_reports <- report :: t.rev_reports;
    List.iter
      (fun f ->
        let key = Checker.fault_key f in
        if not (Hashtbl.mem t.seen_faults key) then begin
          Hashtbl.add t.seen_faults key ();
          t.rev_faults <- f :: t.rev_faults;
          List.iter (fun g -> g f) t.fault_observers
        end)
      report.Orchestrator.faults
  end

let rec schedule t =
  if t.running then
    Dice_sim.Network.schedule (Router_node.network t.node) ~delay:t.cfg.explore_every
      (fun () ->
        if t.running then begin
          run_episode t;
          schedule t
        end)

let attach ?(cfg = default_cfg) node =
  (* clamp rather than raise: a <= 0 sample means "observe everything",
     the closest sensible reading of the operator's intent *)
  let cfg = { cfg with seed_sample = max 1 cfg.seed_sample } in
  let t =
    {
      cfg;
      node;
      dice = Orchestrator.create ~cfg:cfg.orchestrator (Speakers.bird (Router_node.router node));
      running = true;
      episode_count = 0;
      rev_reports = [];
      seen_faults = Hashtbl.create 64;
      rev_faults = [];
      observed = 0;
      announcement_counter = 0;
      fault_observers = [];
    }
  in
  Router_node.on_update node (fun ~peer u -> observe_update t ~peer u);
  schedule t;
  t

let stop t = t.running <- false

let explorations t = t.episode_count
let reports t = List.rev t.rev_reports
let faults t = List.rev t.rev_faults
let observed t = t.observed

let on_fault t f = t.fault_observers <- t.fault_observers @ [ f ]
