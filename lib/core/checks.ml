open Dice_inet
open Dice_bgp

let default_bogons =
  List.map Prefix.of_string
    [ "0.0.0.0/8"; "10.0.0.0/8"; "100.64.0.0/10"; "127.0.0.0/8"; "169.254.0.0/16";
      "172.16.0.0/12"; "192.0.0.0/24"; "192.168.0.0/16"; "198.18.0.0/15"; "224.0.0.0/4";
      "240.0.0.0/4" ]

(* Checkers share this shape: look only at accepted outcomes, produce at
   most a few faults about the accepted route. *)
let on_accepted name f =
  let check (cctx : Checker.context) (outcome : Speaker.import_outcome) =
    if not outcome.Speaker.accepted then []
    else begin
      match outcome.Speaker.route with
      | None -> []
      | Some route -> f cctx outcome.Speaker.prefix route
    end
  in
  { Checker.name; check }

let fault ~checker ~severity ~prefix description details =
  { Checker.checker; severity; prefix; description; details }

let bogon ~bogons =
  on_accepted "bogon" (fun cctx prefix _route ->
      match List.find_opt (fun b -> Prefix.overlaps b prefix) bogons with
      | Some b ->
        [ fault ~checker:"bogon" ~severity:Checker.Critical ~prefix
            "import policy accepts reserved (bogon) address space"
            [ ("bogon-range", Prefix.to_string b);
              ("via-peer", Ipv4.to_string cctx.Checker.peer) ]
        ]
      | None -> [])

let default_max_path_length = 32

let path_sanity ~max_length =
  on_accepted "path-sanity" (fun cctx prefix route ->
      let path = route.Route.as_path in
      let issues = ref [] in
      if Asn.Path.contains path 0 then
        issues :=
          fault ~checker:"path-sanity" ~severity:Checker.Warning ~prefix
            "accepted route carries AS 0 in its path (RFC 7607)"
            [ ("via-peer", Ipv4.to_string cctx.Checker.peer) ]
          :: !issues;
      if Asn.Path.contains path 23456 then
        issues :=
          fault ~checker:"path-sanity" ~severity:Checker.Warning ~prefix
            "accepted route carries AS_TRANS as a real hop"
            [ ("via-peer", Ipv4.to_string cctx.Checker.peer) ]
          :: !issues;
      if Asn.Path.length path > max_length then
        issues :=
          fault ~checker:"path-sanity" ~severity:Checker.Warning ~prefix
            (Printf.sprintf "accepted route has an absurd AS path (%d hops)"
               (Asn.Path.length path))
            [ ("via-peer", Ipv4.to_string cctx.Checker.peer) ]
          :: !issues;
      List.rev !issues)

let default_max_prefix_len = 24

let prefix_length ~max_len =
  on_accepted "prefix-length" (fun cctx prefix _route ->
      if Prefix.len prefix > max_len then
        [ fault ~checker:"prefix-length" ~severity:Checker.Warning ~prefix
            (Printf.sprintf "import policy accepts announcements longer than /%d" max_len)
            [ ("via-peer", Ipv4.to_string cctx.Checker.peer) ]
        ]
      else [])

(* Next hops in RFC 1918 space are routine inside labs and private
   peerings; only the unambiguously impossible ranges are flagged. *)
let impossible_next_hops =
  List.map Prefix.of_string [ "0.0.0.0/8"; "127.0.0.0/8"; "224.0.0.0/4"; "240.0.0.0/4" ]

let next_hop_sanity =
  on_accepted "next-hop" (fun cctx prefix route ->
      let nh = route.Route.next_hop in
      let self_referential = Prefix.contains prefix nh in
      let in_bogon = List.exists (fun b -> Prefix.contains b nh) impossible_next_hops in
      if self_referential then
        [ fault ~checker:"next-hop" ~severity:Checker.Warning ~prefix
            "accepted route's NEXT_HOP lies inside the announced prefix"
            [ ("next-hop", Ipv4.to_string nh);
              ("via-peer", Ipv4.to_string cctx.Checker.peer) ]
        ]
      else if in_bogon then
        [ fault ~checker:"next-hop" ~severity:Checker.Warning ~prefix
            "accepted route's NEXT_HOP is in reserved space"
            [ ("next-hop", Ipv4.to_string nh);
              ("via-peer", Ipv4.to_string cctx.Checker.peer) ]
        ]
      else [])

let standard =
  [ Hijack.checker;
    bogon ~bogons:default_bogons;
    path_sanity ~max_length:default_max_path_length;
    prefix_length ~max_len:default_max_prefix_len;
    next_hop_sanity ]
