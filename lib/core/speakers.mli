(** The speaker registry: the {e only} module in the core allowed to
    name a concrete BGP implementation.

    Everything else in [Dice_core] programs against {!Speaker.S} /
    {!Speaker.instance}; this module adapts the implementations the tree
    ships — the instrumented BIRD-flavored [Dice_bgp.Router] and the
    heterogeneous Quagga-flavored [Dice_bgp2.Qrouter] — and looks them
    up by name for [detect-leaks --speaker] and per-agent fleet
    configuration. Adding a third implementation means adding one
    adapter here and nowhere else. *)

module Bird : Speaker.S with type t = Dice_bgp.Router.t
(** [Dice_bgp.Router] behind the SPEAKER interface. [establish] runs the
    real FSM handshake (ManualStart, transport up, OPEN with the peer's
    configured AS, KEEPALIVE); outputs are filtered to the [(peer,
    message)] pairs the interface speaks — timers and socket requests
    stay internal. *)

module Quagga : Speaker.S with type t = Dice_bgp2.Qrouter.t
(** [Dice_bgp2.Qrouter] behind the same interface — different RIB
    layout, different decision tie-breaking, administratively
    established sessions (see its own documentation). *)

val bird : Dice_bgp.Router.t -> Speaker.instance
val quagga : Dice_bgp2.Qrouter.t -> Speaker.instance

val create : string -> Dice_bgp.Config_types.t -> Speaker.instance option
(** [create name cfg] builds a fresh speaker by implementation name
    ([known names: {!names}]); [None] for an unknown name. *)

val names : string list
(** [["bird"; "quagga"]] — what [--speaker] accepts. *)
