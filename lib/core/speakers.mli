(** The speaker registry: the {e only} module in the core allowed to
    name a concrete BGP implementation.

    Everything else in [Dice_core] programs against {!Speaker.S} /
    {!Speaker.instance}; this module adapts the implementations the tree
    ships — the instrumented BIRD-flavored [Dice_bgp.Router] and the
    heterogeneous Quagga-flavored [Dice_bgp2.Qrouter], and the
    XORP-flavored [Dice_bgp3.Xrouter] that completes the paper's
    heterogeneous triple — and looks them up by name for
    [detect-leaks --speaker], [--panel] membership and per-agent fleet
    configuration. Adding a fourth implementation means adding one
    adapter here and nowhere else. *)

module Bird : Speaker.S with type t = Dice_bgp.Router.t
(** [Dice_bgp.Router] behind the SPEAKER interface. [establish] runs the
    real FSM handshake (ManualStart, transport up, OPEN with the peer's
    configured AS, KEEPALIVE); outputs are filtered to the [(peer,
    message)] pairs the interface speaks — timers and socket requests
    stay internal. *)

module Quagga : Speaker.S with type t = Dice_bgp2.Qrouter.t
(** [Dice_bgp2.Qrouter] behind the same interface — different RIB
    layout, different decision tie-breaking, administratively
    established sessions (see its own documentation). *)

module Xorp : Speaker.S with type t = Dice_bgp3.Xrouter.t
(** [Dice_bgp3.Xrouter] behind the same interface — map-based RIBs,
    deterministic-MED grouping, IGP-cost-before-peer tie-breaks, lazily
    materialized Adj-RIB-Out (see its own documentation). *)

val bird : Dice_bgp.Router.t -> Speaker.instance
val quagga : Dice_bgp2.Qrouter.t -> Speaker.instance
val xorp : Dice_bgp3.Xrouter.t -> Speaker.instance

val create : string -> Dice_bgp.Config_types.t -> Speaker.instance option
(** [create name cfg] builds a fresh speaker by implementation name
    ([known names: {!names}]); [None] for an unknown name. *)

val create_exn : string -> Dice_bgp.Config_types.t -> Speaker.instance
(** Like {!create}.
    @raise Invalid_argument on an unknown name, with the known-names
    list in the message — the error every CLI/registry caller should
    surface instead of rolling its own. *)

val names : string list
(** [["bird"; "quagga"; "xorp"]] — what [--speaker] and [--panel]
    accept. *)
