(** The speaker registry: the {e only} module in the core allowed to
    name a concrete BGP implementation.

    Everything else in [Dice_core] programs against {!Speaker.S} /
    {!Speaker.instance}; this module adapts the implementations the tree
    ships — the instrumented BIRD-flavored [Dice_bgp.Router] and the
    heterogeneous Quagga-flavored [Dice_bgp2.Qrouter], and the
    XORP-flavored [Dice_bgp3.Xrouter] that completes the paper's
    heterogeneous triple — and looks them up by name for
    [detect-leaks --speaker], [--panel] membership and per-agent fleet
    configuration. Each adapter carries its configuration dialect
    ({!Speaker.S.dialect}), so building a speaker from a
    {!Speaker.source} realizes the operator's intent through {e that
    implementation's} translator — one intent, per-member quirks. Adding
    a fourth implementation means adding one adapter (and its dialect)
    here and nowhere else. *)

module Bird : Speaker.S with type t = Dice_bgp.Router.t
(** [Dice_bgp.Router] behind the SPEAKER interface, configured in the
    BIRD dialect ({!Dice_bgp.Bird_dialect}). [establish] runs the real
    FSM handshake (ManualStart, transport up, OPEN with the peer's
    configured AS, KEEPALIVE); outputs are filtered to the [(peer,
    message)] pairs the interface speaks — timers and socket requests
    stay internal. *)

module Quagga : Speaker.S with type t = Dice_bgp2.Qrouter.t
(** [Dice_bgp2.Qrouter] behind the same interface — different RIB
    layout, different decision tie-breaking, administratively
    established sessions, route-map dialect
    ({!Dice_bgp2.Quagga_dialect}). *)

module Xorp : Speaker.S with type t = Dice_bgp3.Xrouter.t
(** [Dice_bgp3.Xrouter] behind the same interface — map-based RIBs,
    deterministic-MED grouping, IGP-cost-before-peer tie-breaks, lazily
    materialized Adj-RIB-Out, policy-term dialect
    ({!Dice_bgp3.Xorp_dialect}). *)

val bird : Dice_bgp.Router.t -> Speaker.instance
val quagga : Dice_bgp2.Qrouter.t -> Speaker.instance
val xorp : Dice_bgp3.Xrouter.t -> Speaker.instance
(** Pack an already-built router. The realization records the router's
    concrete configuration as its source — nothing was translated. *)

val create : string -> Speaker.source -> Speaker.instance option
(** [create name source] builds a fresh speaker by implementation name
    (known names: {!names}), realizing [source] through that
    implementation's dialect; [None] for an unknown name. *)

val create_exn : string -> Speaker.source -> Speaker.instance
(** Like {!create}.
    @raise Invalid_argument on an unknown name, with the known-names
    list in the message — the error every CLI/registry caller should
    surface instead of rolling its own. *)

val names : string list
(** [["bird"; "quagga"; "xorp"]] — what [--speaker] and [--panel]
    accept. *)

val dialect : string -> (module Dice_bgp.Dialect.S) option
(** The dialect an implementation name configures in. *)

val dialect_exn : string -> (module Dice_bgp.Dialect.S)
(** @raise Invalid_argument on an unknown name, enumerating the known
    dialects — the same discipline as {!create_exn}. *)

val dialects : (module Dice_bgp.Dialect.S) list
(** Every registered dialect, in {!names} order. *)
