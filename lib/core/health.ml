(* Per-endpoint liveness, fed from two independent signal sources: the
   passive heartbeat stream (gaps demote) and active probe outcomes
   (replies promote, timeouts and an open breaker demote). All times are
   the virtual network clock — health is as deterministic as the
   simulation feeding it. *)

type state = Alive | Suspect | Down

let state_to_string = function
  | Alive -> "alive"
  | Suspect -> "suspect"
  | Down -> "down"

let pp_state ppf s = Format.pp_print_string ppf (state_to_string s)

type config = {
  suspect_after : float;
  down_after : float;
  history : int;
}

let default_config = { suspect_after = 0.5; down_after = 2.0; history = 32 }

type t = {
  name : string;
  cfg : config;
  lock : Mutex.t;
  mutable state : state;
  mutable last_seen : float;  (* last heartbeat or successful probe *)
  mutable incarnation : int;
  mutable state_version : int;
  mutable heartbeats : int;
  mutable probes_ok : int;
  mutable probe_timeouts : int;
  mutable transitions : (float * state) list;  (* newest first, bounded *)
  mutable transition_count : int;
}

let create ?(config = default_config) ?(now = 0.0) ~name () =
  if config.suspect_after <= 0.0 then
    invalid_arg "Health.create: suspect_after must be positive";
  if config.down_after < config.suspect_after then
    invalid_arg "Health.create: down_after below suspect_after";
  if config.history < 1 then invalid_arg "Health.create: history must be >= 1";
  {
    name;
    cfg = config;
    lock = Mutex.create ();
    state = Alive;
    last_seen = now;
    incarnation = 0;
    state_version = 0;
    heartbeats = 0;
    probes_ok = 0;
    probe_timeouts = 0;
    transitions = [ (now, Alive) ];
    transition_count = 1;
  }

let name t = t.name
let config t = t.cfg

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let transition t ~now s =
  if t.state <> s then begin
    t.state <- s;
    t.transition_count <- t.transition_count + 1;
    t.transitions <- take t.cfg.history ((now, s) :: t.transitions)
  end

let note_heartbeat t ~now ~incarnation ~state_version =
  locked t @@ fun () ->
  t.heartbeats <- t.heartbeats + 1;
  t.last_seen <- max t.last_seen now;
  t.incarnation <- max t.incarnation incarnation;
  t.state_version <- state_version;
  transition t ~now Alive

let note_ok t ~now =
  locked t @@ fun () ->
  t.probes_ok <- t.probes_ok + 1;
  t.last_seen <- max t.last_seen now;
  transition t ~now Alive

(* One timeout is a smell, not a death: demote to [Suspect] and let
   either the breaker ({!note_down}) or the heartbeat gap make the
   [Down] call. A node already [Down] stays down. *)
let note_timeout t ~now =
  locked t @@ fun () ->
  t.probe_timeouts <- t.probe_timeouts + 1;
  if t.state = Alive then transition t ~now Suspect

let note_down t ~now =
  locked t @@ fun () -> transition t ~now Down

let check t ~now =
  locked t @@ fun () ->
  let gap = now -. t.last_seen in
  (* gaps only demote — promotion back to [Alive] takes fresh evidence
     (a heartbeat or a successful probe), never silence *)
  if gap > t.cfg.down_after then transition t ~now Down
  else if gap > t.cfg.suspect_after && t.state = Alive then transition t ~now Suspect;
  t.state

let state t = locked t @@ fun () -> t.state
let last_seen t = locked t @@ fun () -> t.last_seen
let incarnation t = locked t @@ fun () -> t.incarnation
let state_version t = locked t @@ fun () -> t.state_version

let transitions t = locked t @@ fun () -> List.rev t.transitions

type stats = {
  heartbeats : int;
  probes_ok : int;
  probe_timeouts : int;
  transitions : int;
}

let stats t =
  locked t @@ fun () ->
  {
    heartbeats = t.heartbeats;
    probes_ok = t.probes_ok;
    probe_timeouts = t.probe_timeouts;
    transitions = t.transition_count;
  }

let pp ppf t =
  Mutex.lock t.lock;
  let s = t.state and hb = t.heartbeats and inc = t.incarnation in
  let seen = t.last_seen in
  Mutex.unlock t.lock;
  Format.fprintf ppf "%s: %a (inc %d, %d heartbeats, last seen %.3fs)" t.name pp_state
    s inc hb seen
