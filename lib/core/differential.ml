open Dice_inet
open Dice_bgp

type divergence = {
  prefix : Prefix.t;
  left : Verdict.t option;
  right : Verdict.t option;
  tie_break_only : bool;
}

let pp_verdict_opt ppf = function
  | Some v -> Verdict.pp ppf v
  | None -> Format.pp_print_string ppf "no answer"

let pp_divergence ppf d =
  Format.fprintf ppf "@[<v 2>%s %s:@,left:  %a@,right: %a@]"
    (Prefix.to_string d.prefix)
    (if d.tie_break_only then "tie-break divergence" else "divergence")
    pp_verdict_opt d.left pp_verdict_opt d.right

(* A pairwise divergence is a two-member panel divergence projected by
   position: the first answer is [left], the second [right]. The
   classification carries over unchanged — {!Panel} computes
   [tie_break_only] with the same accepted/origin_conflict rule this
   module introduced. *)
let of_panel (d : Panel.divergence) =
  match d.Panel.answers with
  | [ (_, left); (_, right) ] ->
    { prefix = d.Panel.prefix; left; right; tie_break_only = d.Panel.tie_break_only }
  | _ -> assert false (* a two-agent panel answers two per prefix *)

let probe_pair ~jobs ~left ~right exchanges =
  List.map of_panel (Panel.probe ~jobs ~agents:[ left; right ] exchanges)

let checker ~jobs ~left ~right =
  let name = "cross-implementation" in
  let check (cctx : Checker.context) (outcome : Speaker.import_outcome) =
    if not outcome.Speaker.accepted then []
    else begin
      let addresses =
        [ Distributed.agent_addr left; Distributed.agent_addr right ]
      in
      let exchanges =
        List.filter_map
          (fun (dst, out) ->
            match out with
            | Msg.Update _ when List.mem dst addresses ->
              (* Both speakers hear the message on the same claimed
                 session: the exploring node's address as each agent
                 knows it. *)
              Some (Distributed.agent_explorer_addr left, (out : Msg.t))
            | _ -> None)
          outcome.Speaker.outputs
      in
      let details_of d =
        [ ("left-speaker", Distributed.agent_name left);
          ("right-speaker", Distributed.agent_name right);
          ("local-prefix", Prefix.to_string outcome.Speaker.prefix);
          ("via-peer", Ipv4.to_string cctx.Checker.peer);
        ]
        @ (match d.left with
          | Some v -> Verdict.to_details ~prefix:"left-" v
          | None -> [ ("left-answer", "none") ])
        @
        match d.right with
        | Some v -> Verdict.to_details ~prefix:"right-" v
        | None -> [ ("right-answer", "none") ]
      in
      List.map
        (fun d ->
          if d.tie_break_only then
            { Checker.checker = name ^ "-tiebreak";
              severity = Checker.Warning;
              prefix = d.prefix;
              description =
                "speakers agree on acceptance and origin but select different best routes";
              details = details_of d;
            }
          else
            { Checker.checker = name ^ "-divergence";
              severity = Checker.Critical;
              prefix = d.prefix;
              description = "speakers disagree across the narrow interface";
              details = details_of d;
            })
        (probe_pair ~jobs ~left ~right exchanges)
    end
  in
  { Checker.name; check }
