open Dice_inet
open Dice_bgp

type divergence = {
  prefix : Prefix.t;
  left : Verdict.t option;
  right : Verdict.t option;
  tie_break_only : bool;
}

let pp_verdict_opt ppf = function
  | Some v -> Verdict.pp ppf v
  | None -> Format.pp_print_string ppf "no answer"

let pp_divergence ppf d =
  Format.fprintf ppf "@[<v 2>%s %s:@,left:  %a@,right: %a@]"
    (Prefix.to_string d.prefix)
    (if d.tie_break_only then "tie-break divergence" else "divergence")
    pp_verdict_opt d.left pp_verdict_opt d.right

(* The facts the decision process cannot touch: whether policy accepted
   the route and whether it conflicts with an installed origin. Two
   conformant speakers must agree on these; everything downstream of the
   decision process ([installed], and through export also
   [covers_foreign]/[would_propagate]) may legitimately differ under
   different tie-breaking orders. *)
let tie_break_only (a : Verdict.t) (b : Verdict.t) =
  a.Verdict.accepted = b.Verdict.accepted
  && a.Verdict.origin_conflict = b.Verdict.origin_conflict

let diverging prefix left right =
  match (left, right) with
  | None, None -> None (* nothing crossed the interface on either side *)
  | (Some _ as l), None -> Some { prefix; left = l; right = None; tie_break_only = false }
  | None, (Some _ as r) -> Some { prefix; left = None; right = r; tie_break_only = false }
  | Some a, Some b ->
    if Verdict.equal a b then None
    else Some { prefix; left; right; tie_break_only = tie_break_only a b }

(* Pair the two agents' answers prefix by prefix. Verdict lists follow
   NLRI order, but a declined side contributes nothing — index on the
   prefix instead of zipping. *)
let pair_outcomes left_outcome right_outcome =
  let vs = function
    | Distributed.Verdicts vs -> vs
    | Distributed.Declined _ | Distributed.Timeout -> []
  in
  let lv = vs left_outcome and rv = vs right_outcome in
  let prefixes =
    List.sort_uniq Prefix.compare (List.map fst lv @ List.map fst rv)
  in
  List.filter_map
    (fun prefix ->
      diverging prefix (List.assoc_opt prefix lv) (List.assoc_opt prefix rv))
    prefixes

let probe_pair ~jobs ~left ~right exchanges =
  let reqs =
    List.concat_map
      (fun (from, msg) -> [ (left, from, msg); (right, from, msg) ])
      exchanges
  in
  let rec pair = function
    | l :: r :: rest -> (l, r) :: pair rest
    | [] -> []
    | [ _ ] -> assert false (* requests were emitted in pairs *)
  in
  List.concat_map
    (fun (l, r) -> pair_outcomes l r)
    (pair (Distributed.probe_all ~jobs reqs))

let checker ~jobs ~left ~right =
  let name = "cross-implementation" in
  let check (cctx : Checker.context) (outcome : Speaker.import_outcome) =
    if not outcome.Speaker.accepted then []
    else begin
      let addresses =
        [ Distributed.agent_addr left; Distributed.agent_addr right ]
      in
      let exchanges =
        List.filter_map
          (fun (dst, out) ->
            match out with
            | Msg.Update _ when List.mem dst addresses ->
              (* Both speakers hear the message on the same claimed
                 session: the exploring node's address as each agent
                 knows it. *)
              Some (Distributed.agent_explorer_addr left, (out : Msg.t))
            | _ -> None)
          outcome.Speaker.outputs
      in
      let details_of d =
        [ ("left-speaker", Distributed.agent_name left);
          ("right-speaker", Distributed.agent_name right);
          ("local-prefix", Prefix.to_string outcome.Speaker.prefix);
          ("via-peer", Ipv4.to_string cctx.Checker.peer);
        ]
        @ (match d.left with
          | Some v -> Verdict.to_details ~prefix:"left-" v
          | None -> [ ("left-answer", "none") ])
        @
        match d.right with
        | Some v -> Verdict.to_details ~prefix:"right-" v
        | None -> [ ("right-answer", "none") ]
      in
      List.map
        (fun d ->
          if d.tie_break_only then
            { Checker.checker = name ^ "-tiebreak";
              severity = Checker.Warning;
              prefix = d.prefix;
              description =
                "speakers agree on acceptance and origin but select different best routes";
              details = details_of d;
            }
          else
            { Checker.checker = name ^ "-divergence";
              severity = Checker.Critical;
              prefix = d.prefix;
              description = "speakers disagree across the narrow interface";
              details = details_of d;
            })
        (probe_pair ~jobs ~left ~right exchanges)
    end
  in
  { Checker.name; check }
