(** The DiCE orchestrator: the checkpoint–symbolize–explore–check loop
    (paper §2.3).

    Against a {e live} speaker (any {!Speaker.S} implementation) it:
    + takes a page-granular checkpoint of the live process image,
    + clones the checkpoint for exploration (copy-on-write),
    + feeds each clone a previously observed input with selected fields
      symbolized,
    + lets the concolic engine negate recorded branch predicates to
      systematically exercise the node's actions,
    + intercepts all messages the clones generate (isolation: the
      deployed system never sees exploration traffic), and
    + runs fault checkers against every explored outcome.

    The live speaker is never mutated: every exploration run executes on
    a restored clone (of the same implementation — cloning goes through
    {!Speaker.restore_like}). *)

open Dice_inet
open Dice_bgp
open Dice_concolic

type seed = {
  tag : string;
  peer : Ipv4.t;  (** session the input was observed on *)
  prefix : Prefix.t;
  route : Route.t;
}

(** {1 Configuration}

    Grouped by concern into nested records — what to explore and how
    hard ({!exploration}), which remote domains cooperate
    ({!federation}), and what chaos to inject on their wires
    ({!faults}) — following the constructor convention documented in
    {!Checker}: validating smart constructors with required labelled
    arguments, and defaults exported as values ({!default_exploration}
    and friends), so a call site writes
    [{ default_exploration with max_seeds = 8 }] or builds a validated
    record from scratch. *)

type exploration = {
  explorer : Explorer.config;
  page_size : int;
  mode : Symbolize.mode;
  max_seeds : int;  (** most recent seeds explored per {!explore} call *)
  clone_samples : int;  (** CoW-cost samples collected per seed *)
  jobs : int;
      (** worker domains for seed-level parallelism: each pending seed
          explores on its own speaker restored from the shared
          checkpoint, [jobs] at a time. [1] (the default) keeps
          everything on the calling domain. Report order always equals
          seed order. *)
}

type federation = {
  agents : Distributed.agent list;
      (** cooperating remote domains: when non-empty, a
          {!Distributed.checker} over these agents is appended to the
          checker list, so every exploration outcome is probed across
          the domain boundary. Mixed fleets are one list: each agent
          carries its own transport and, behind it, its own speaker
          implementation. *)
  probe_jobs : int;
      (** probes in flight at a time over the worker pool ([Local]
          agents) or the wire ([Remote] agents) *)
}

type faults = {
  probe : Dice_sim.Faults.t option;
      (** when set, this fault model is installed on every [Remote]
          agent's probe link at {!create} time — loss, duplication,
          reordering and corruption on the federated wire, with the RPC
          layer expected to stay correct under it. [None] (the default)
          leaves links as the caller wired them. Local agents are
          unaffected: they have no wire. *)
  seed : int64;
      (** seed for the probe networks' fault RNG streams (applied with
          [probe]); equal seeds replay identical fault schedules *)
  node : Dice_sim.Faults.node option;
      (** when set, this crash model is installed on every [Remote]
          agent's {e serving node} at {!create} time: frame arrivals at
          the node may crash it (buffering, not losing, in-flight
          frames) for [downtime] virtual seconds before the automatic
          restart fires the node's restart hook (typically a
          {!Distributed.Recovery.crash_restart}). [None] (the default)
          crashes nobody. *)
  crash_seed : int64;
      (** seed for the crash RNG stream (applied with [node], distinct
          from the link-fault stream so adding crashes does not reshuffle
          link faults); equal seeds replay identical crash schedules *)
}

type cfg = {
  exploration : exploration;
  checkers : Checker.t list;
  federation : federation;
  faults : faults;
}

val exploration :
  explorer:Explorer.config ->
  page_size:int ->
  mode:Symbolize.mode ->
  max_seeds:int ->
  clone_samples:int ->
  jobs:int ->
  exploration
(** Validating constructor. @raise Invalid_argument on a non-positive
    [page_size] or [jobs], or a negative [max_seeds]/[clone_samples]. *)

val federation : agents:Distributed.agent list -> probe_jobs:int -> federation
(** @raise Invalid_argument if [probe_jobs < 1]. *)

val faults :
  ?node:Dice_sim.Faults.node ->
  ?crash_seed:int64 ->
  probe:Dice_sim.Faults.t option ->
  seed:int64 ->
  unit ->
  faults
(** @raise Invalid_argument on an invalid fault model
    ({!Dice_sim.Faults.validate} / {!Dice_sim.Faults.validate_node}).
    [crash_seed] defaults to {!Dice_sim.Network.default_crash_seed}. *)

val default_exploration : exploration
(** DFS explorer (96 runs, depth 64), 4 KiB pages, selective
    symbolization, 4 seeds, 4 clone samples, 1 job. *)

val default_federation : federation
(** No agents, 1 probe job. *)

val default_faults : faults
(** No probe faults (seed 42), no node crashes (default crash seed). *)

val default_cfg : cfg
(** {!default_exploration} + the {!Hijack.checker} +
    {!default_federation} + {!default_faults}. *)

type t

val create : ?cfg:cfg -> Speaker.instance -> t
(** Attach DiCE to a live speaker. *)

val speaker : t -> Speaker.instance

val observe : t -> peer:Ipv4.t -> prefix:Prefix.t -> route:Route.t -> unit
(** Record an observed input as an exploration seed. *)

val observe_update : t -> peer:Ipv4.t -> Msg.update -> unit
(** Convenience: observe every announcement of an UPDATE. *)

val pending_seeds : t -> int

type seed_report = {
  seed : seed;
  explorer : Explorer.report;
  faults : Checker.fault list;
  intercepted : int;  (** exploration messages captured by the sandbox *)
  runs_accepted : int;  (** runs whose input survived import policy *)
  runs_rejected : int;
  observed_accepted : bool;
      (** whether the {e observed} (unmutated) input was accepted — run 0
          replays it; config-change validation uses this to detect
          regressions on legitimate traffic *)
  clone_stats : Dice_checkpoint.Fork.clone_stats list;
  depth_counts : (string * int) list;
      (** whole-message mode: how deep each run got into the parser *)
}

type report = {
  seed_reports : seed_report list;
  faults : Checker.fault list;  (** deduplicated across seeds *)
  checkpoint_pages : int;
  live_image_bytes : int;
  wall_seconds : float;
  checkpoint_seconds : float;
      (** the live node's critical-path share of [wall_seconds]: taking
          the checkpoint. Exploration itself runs off the critical path
          (on the paper's testbed, on other cores). *)
}

val explore : t -> report
(** Checkpoint the live speaker and explore the pending seeds (most
    recent [max_seeds]; the queue is drained). *)

val pp_report : Format.formatter -> report -> unit
