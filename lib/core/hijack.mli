(** The origin-misconfiguration / route-leak checker (paper §4.2).

    For each exploratory announcement, checks whether the route was
    accepted and "overrides the origin AS of a route already in the
    routing table prior to starting exploration" — the signature of the
    Pakistan Telecom / YouTube class of incidents. Prefixes inside the
    configured anycast whitelist are exempt (legitimately multi-origin).

    Two findings:
    - {e origin-hijack}: an accepted announcement claims, for existing
      address space, an origin AS different from the trusted one
      (same-prefix override, or a more-specific carve-out which wins by
      longest-prefix-match);
    - {e filter-leak}: an accepted announcement whose origin AS is the
      announcing customer itself but for address space the customer does
      not hold — the filter let it through, so the range is leakable. *)

val checker : Checker.t

val leakable_summary : Checker.fault list -> (Dice_inet.Prefix.t * int) list
(** Aggregate faults into (prefix range, fault count) pairs, sorted —
    "DiCE clearly states which prefix ranges can be leaked".
    Cross-implementation divergence reports ({!Panel},
    {!Differential}) are excluded: they describe speaker disagreement,
    not leakable address space. *)
