(** Branch-direction coverage accounting.

    Tracks which (site, direction) pairs executions have exercised —
    including branches taken on purely concrete data — so the explorer can
    tell when a negation would open genuinely new territory and when the
    aggregate constraint set has converged.

    Tables are safe to share between domains: every operation is serialized
    on an internal per-table mutex. *)

type t

val create : unit -> t

val record : t -> Path.Site.t -> bool -> bool
(** [record t site dir] marks the direction covered; returns [true] if it
    was new. *)

val covered : t -> Path.Site.t -> bool -> bool

val fully_covered : t -> Path.Site.t -> bool
(** Both directions seen. *)

val hits : t -> Path.Site.t -> bool -> int
(** How many times [record] has seen the (site, direction) pair — 0 when
    never covered. Merges and absorbs sum counts, so on a shared table this
    is the global frequency across all runs. *)

val hits_id : t -> int * bool -> int
(** {!hits} keyed by raw (site id, direction) — the form path entries
    carry. *)

val site_count : t -> int
(** Number of distinct sites seen at least once. *)

val direction_count : t -> int
(** Number of (site, direction) pairs seen. *)

val merge_into : dst:t -> t -> unit

val absorb : into:t -> t -> int
(** Like {!merge_into} but returns how many (site, direction) pairs were
    new to [into] — the per-run "new directions" count the parallel
    explorer credits to the run whose private table is absorbed. *)

val snapshot : t -> (int * bool) list
(** Covered (site id, direction) pairs, sorted. *)
