(* Coverage tables are shared by every run of an exploration — including
   runs executing concurrently on separate domains — so all access is
   serialized on a per-table mutex. *)

type t = { lock : Mutex.t; tbl : (int * bool, unit) Hashtbl.t }

let create () = { lock = Mutex.create (); tbl = Hashtbl.create 128 }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let record t site dir =
  let key = (Path.Site.id site, dir) in
  locked t (fun () ->
      if Hashtbl.mem t.tbl key then false
      else begin
        Hashtbl.add t.tbl key ();
        true
      end)

let covered t site dir = locked t (fun () -> Hashtbl.mem t.tbl (Path.Site.id site, dir))

let fully_covered t site = covered t site true && covered t site false

let site_count t =
  locked t (fun () ->
      let sites = Hashtbl.create 64 in
      Hashtbl.iter (fun (id, _) () -> Hashtbl.replace sites id ()) t.tbl;
      Hashtbl.length sites)

let direction_count t = locked t (fun () -> Hashtbl.length t.tbl)

let merge_into ~dst t =
  let pairs = locked t (fun () -> Hashtbl.fold (fun k () acc -> k :: acc) t.tbl []) in
  locked dst (fun () -> List.iter (fun k -> Hashtbl.replace dst.tbl k ()) pairs)

let absorb ~into t =
  let pairs = locked t (fun () -> Hashtbl.fold (fun k () acc -> k :: acc) t.tbl []) in
  locked into (fun () ->
      List.fold_left
        (fun fresh k ->
          if Hashtbl.mem into.tbl k then fresh
          else begin
            Hashtbl.add into.tbl k ();
            fresh + 1
          end)
        0 pairs)

let snapshot t =
  locked t (fun () -> Hashtbl.fold (fun k () acc -> k :: acc) t.tbl [])
  |> List.sort compare
