(* Coverage tables are shared by every run of an exploration — including
   runs executing concurrently on separate domains — so all access is
   serialized on a per-table mutex. *)

type t = { lock : Mutex.t; tbl : (int * bool, int) Hashtbl.t }

let create () = { lock = Mutex.create (); tbl = Hashtbl.create 128 }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let add_hits tbl key n =
  match Hashtbl.find_opt tbl key with
  | Some c -> Hashtbl.replace tbl key (c + n)
  | None -> Hashtbl.add tbl key n

let record t site dir =
  let key = (Path.Site.id site, dir) in
  locked t (fun () ->
      let fresh = not (Hashtbl.mem t.tbl key) in
      add_hits t.tbl key 1;
      fresh)

let covered t site dir = locked t (fun () -> Hashtbl.mem t.tbl (Path.Site.id site, dir))

let fully_covered t site = covered t site true && covered t site false

let hits t site dir =
  locked t (fun () ->
      Option.value (Hashtbl.find_opt t.tbl (Path.Site.id site, dir)) ~default:0)

let hits_id t key = locked t (fun () -> Option.value (Hashtbl.find_opt t.tbl key) ~default:0)

let site_count t =
  locked t (fun () ->
      let sites = Hashtbl.create 64 in
      Hashtbl.iter (fun (id, _) _ -> Hashtbl.replace sites id ()) t.tbl;
      Hashtbl.length sites)

let direction_count t = locked t (fun () -> Hashtbl.length t.tbl)

let merge_into ~dst t =
  let pairs = locked t (fun () -> Hashtbl.fold (fun k n acc -> (k, n) :: acc) t.tbl []) in
  locked dst (fun () -> List.iter (fun (k, n) -> add_hits dst.tbl k n) pairs)

let absorb ~into t =
  let pairs = locked t (fun () -> Hashtbl.fold (fun k n acc -> (k, n) :: acc) t.tbl []) in
  locked into (fun () ->
      List.fold_left
        (fun fresh (k, n) ->
          let was_fresh = not (Hashtbl.mem into.tbl k) in
          add_hits into.tbl k n;
          if was_fresh then fresh + 1 else fresh)
        0 pairs)

let snapshot t =
  locked t (fun () -> Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [])
  |> List.sort compare
