type t = {
  coeffs : (int * int64) list;
  const : int64;
  width : int;
}

let normalize width coeffs const =
  let merged : (int, int64) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (id, c) ->
      let cur = Option.value (Hashtbl.find_opt merged id) ~default:0L in
      Hashtbl.replace merged id (Sym.wrap width (Int64.add cur c)))
    coeffs;
  let coeffs =
    Hashtbl.fold (fun id c acc -> if Int64.equal c 0L then acc else (id, c) :: acc) merged []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  { coeffs; const = Sym.wrap width const; width }

let scale width k lin =
  normalize width
    (List.map (fun (id, c) -> (id, Sym.wrap width (Int64.mul k c))) lin.coeffs)
    (Int64.mul k lin.const)

let add width a b =
  normalize width (a.coeffs @ b.coeffs) (Int64.add a.const b.const)

let rec of_sym expr =
  let w = Sym.width expr in
  match expr with
  | Sym.Const c -> Some (normalize w [] c.value)
  | Sym.Var v -> Some (normalize w [ (v.Sym.id, 1L) ] 0L)
  | Sym.Unop (Sym.Neg, e) -> Option.map (scale w (-1L)) (of_sym e)
  | Sym.Unop ((Sym.Bnot | Sym.Lnot), _) -> None
  | Sym.Binop (Sym.Add, a, b) -> begin
    match (of_sym a, of_sym b) with
    | Some la, Some lb -> Some (add w la lb)
    | _, _ -> None
  end
  | Sym.Binop (Sym.Sub, a, b) -> begin
    match (of_sym a, of_sym b) with
    | Some la, Some lb -> Some (add w la (scale w (-1L) lb))
    | _, _ -> None
  end
  | Sym.Binop (Sym.Mul, Sym.Const k, e) | Sym.Binop (Sym.Mul, e, Sym.Const k) ->
    Option.map (scale w k.value) (of_sym e)
  | Sym.Binop (Sym.Shl, e, Sym.Const s) ->
    let shift = Int64.to_int s.value in
    if shift < 0 || shift >= 64 then Some (normalize w [] 0L)
    else Option.map (scale w (Int64.shift_left 1L shift)) (of_sym e)
  | Sym.Binop
      ( ( Sym.Mul | Sym.Udiv | Sym.Urem | Sym.And | Sym.Or | Sym.Xor | Sym.Shl | Sym.Lshr
        | Sym.Eq | Sym.Ne | Sym.Ult | Sym.Ule | Sym.Ugt | Sym.Uge ),
        _, _ ) ->
    None

let eval env t =
  List.fold_left
    (fun acc (id, c) ->
      let v = Option.value (Hashtbl.find_opt env id) ~default:0L in
      Sym.wrap t.width (Int64.add acc (Int64.mul c v)))
    t.const t.coeffs

let vars t = List.map fst t.coeffs

let is_constant t = t.coeffs = []

(* inverse of an odd value modulo 2^w *)
let odd_inverse a w =
  let x = ref a in
  for _ = 1 to 6 do
    x := Int64.mul !x (Int64.sub 2L (Int64.mul a !x))
  done;
  Sym.wrap w !x

let solve_for t ~var_id ~target ~env =
  match List.assoc_opt var_id t.coeffs with
  | None -> []
  | Some coeff ->
    (* residual = target - const - sum(other terms) *)
    let residual =
      List.fold_left
        (fun acc (id, c) ->
          if id = var_id then acc
          else begin
            let v = Option.value (Hashtbl.find_opt env id) ~default:0L in
            Sym.wrap t.width (Int64.sub acc (Int64.mul c v))
          end)
        (Sym.wrap t.width (Int64.sub target t.const))
        t.coeffs
    in
    let rec split c k = if Int64.logand c 1L = 1L then (c, k) else split (Int64.shift_right_logical c 1) (k + 1) in
    if Int64.equal coeff 0L then []
    else begin
      let odd, twos = split coeff 0 in
      if twos = 0 then [ Sym.wrap t.width (Int64.mul residual (odd_inverse odd t.width)) ]
      else begin
        let low_mask = Int64.sub (Int64.shift_left 1L twos) 1L in
        if not (Int64.equal (Int64.logand residual low_mask) 0L) then []
        else
          [ Sym.wrap t.width
              (Int64.mul
                 (Int64.shift_right_logical residual twos)
                 (odd_inverse odd t.width))
          ]
      end
    end

let point_solution t ~target =
  match t.coeffs with
  | [ (var_id, coeff) ] when Int64.logand coeff 1L = 1L ->
    (* odd coefficient: the map x -> coeff*x + const is a bijection mod
       2^width, so the equation has exactly one solution *)
    let residual = Sym.wrap t.width (Int64.sub target t.const) in
    Some (var_id, Sym.wrap t.width (Int64.mul residual (odd_inverse coeff t.width)))
  | _ -> None

let pp ppf t =
  let term (id, c) = Printf.sprintf "%Ld*v%d" c id in
  Format.fprintf ppf "%s + %Ld (mod 2^%d)"
    (String.concat " + " (List.map term t.coeffs))
    t.const t.width
