(** Exploration search strategies.

    The paper's engine (Oasis) "has multiple search strategies"; its default
    "attempts to cover all execution paths reachable by the set of
    controlled symbolic inputs". We provide that one plus the two classic
    alternatives the ablation (experiment A2) compares. *)

type t =
  | Dfs
      (** Depth-first path coverage: negate the deepest untried branch
          first; the default, matching Oasis/Crest. *)
  | Generational
      (** SAGE-style: each run expands every branch after its negation
          bound; children are prioritized by the new branch coverage their
          parent run contributed. *)
  | Random_negation of int64
      (** Negate uniformly random untried branches (seeded). *)
  | Cover_new
      (** Only negate branches whose opposite direction is not yet covered
          — a greedy branch-coverage strategy. *)

val coverage_bonus : hits:int -> int
(** Priority bonus for negating toward a direction the shared coverage
    table has seen [hits] times: 8 when never seen, 2 while still rare
    (fewer than 4 hits), 0 once hot. Added to the parent's new-directions
    score when the generational strategy enqueues children. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
