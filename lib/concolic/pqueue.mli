(** Deterministic priority queue for exploration worklists.

    An array-backed binary max-heap ordered by (priority descending, order
    ascending). With unique [order] values — the explorer uses a monotone
    counter — pop order is a pure function of the pushed set, so
    explorations replay identically regardless of heap internals. Both
    operations are O(log n), replacing the O(n) scan-and-filter worklists
    the explorer used previously. Not thread-safe; callers serialize. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> priority:int -> order:int -> 'a -> unit

val pop : 'a t -> 'a option
(** Highest priority; ties broken by lowest [order]. [None] when empty. *)

val length : 'a t -> int

val is_empty : 'a t -> bool
