type outcome =
  | Sat of Sym.env
  | Unsat
  | Gave_up

type stats = {
  mutable calls : int;
  mutable sat : int;
  mutable unsat : int;
  mutable gave_up : int;
  mutable candidates_tried : int;
  mutable candidates_deduped : int;
  mutable prefix_reuses : int;
  mutable simplifications : int;
  mutable first_violated_skips : int;
}

let stats_create () =
  {
    calls = 0;
    sat = 0;
    unsat = 0;
    gave_up = 0;
    candidates_tried = 0;
    candidates_deduped = 0;
    prefix_reuses = 0;
    simplifications = 0;
    first_violated_skips = 0;
  }

let global_stats = stats_create ()

let reset_stats () =
  global_stats.calls <- 0;
  global_stats.sat <- 0;
  global_stats.unsat <- 0;
  global_stats.gave_up <- 0;
  global_stats.candidates_tried <- 0;
  global_stats.candidates_deduped <- 0;
  global_stats.prefix_reuses <- 0;
  global_stats.simplifications <- 0;
  global_stats.first_violated_skips <- 0

let holds_all env cs = List.for_all (Path.constr_holds env) cs

(* ------------------------------------------------------------------ *)
(* Structural inversion                                                *)
(* ------------------------------------------------------------------ *)

(* Multiplicative inverse of an odd [a] modulo 2^w (Newton iteration). *)
let odd_inverse a w =
  let x = ref a in
  (* x := x * (2 - a*x) doubles correct bits; 6 rounds cover 64 bits *)
  for _ = 1 to 6 do
    x := Int64.mul !x (Int64.sub 2L (Int64.mul a !x))
  done;
  Sym.wrap w !x

let is_odd v = Int64.logand v 1L = 1L

(* Candidate values of the single free variable making [expr] (in which
   every other variable is already a constant) equal [target]. Sound but
   incomplete: all returned values are verified by the caller anyway.
   Linear terms are solved exactly first (modular inversion via
   {!Lincons}); the structural cases handle the non-linear operators. *)
let rec invert_eq expr target =
  let w = Sym.width expr in
  let target = Sym.wrap w target in
  match linear_solution expr target with
  | Some candidates -> candidates
  | None -> invert_eq_structural w expr target

and linear_solution expr target =
  match Lincons.of_sym expr with
  | Some lin when not (Lincons.is_constant lin) -> begin
    match Lincons.vars lin with
    | [ var_id ] -> Some (Lincons.solve_for lin ~var_id ~target ~env:(Hashtbl.create 0))
    | [] | _ :: _ :: _ -> None
  end
  | Some _ | None -> None

and invert_eq_structural w expr target =
  match expr with
  | Sym.Var _ -> [ target ]
  | Sym.Const c -> if Int64.equal c.value target then [ 0L ] else []
  | Sym.Unop (Sym.Neg, e) -> invert_eq e (Int64.neg target)
  | Sym.Unop (Sym.Bnot, e) -> invert_eq e (Int64.lognot target)
  | Sym.Unop (Sym.Lnot, e) ->
    (* Lnot e = target: target is 0 or 1 *)
    if Int64.equal target 1L then invert_eq e 0L
    else if Int64.equal target 0L then invert_nonzero e
    else []
  | Sym.Binop (op, a, b) -> invert_eq_binop w op a b target

and invert_eq_binop w op a b target =
  let const_side, expr_side, const_on_left =
    match (a, b) with
    | Sym.Const c, e -> (Some c.value, e, true)
    | e, Sym.Const c -> (Some c.value, e, false)
    | _, _ -> (None, a, false)
  in
  match (op, const_side) with
  | Sym.Add, Some c -> invert_eq expr_side (Int64.sub target c)
  | Sym.Sub, Some c ->
    if const_on_left then invert_eq expr_side (Int64.sub c target)
    else invert_eq expr_side (Int64.add target c)
  | Sym.Xor, Some c -> invert_eq expr_side (Int64.logxor target c)
  | Sym.Mul, Some c ->
    if is_odd c then invert_eq expr_side (Int64.mul target (odd_inverse c w))
    else if Int64.equal c 0L then if Int64.equal target 0L then [ 0L ] else []
    else begin
      (* factor out the power of two: c = c' * 2^t with c' odd *)
      let rec split c t = if is_odd c then (c, t) else split (Int64.shift_right_logical c 1) (t + 1) in
      let c', t = split c 0 in
      let low = Int64.logand target (Int64.sub (Int64.shift_left 1L t) 1L) in
      if not (Int64.equal low 0L) then []
      else
        invert_eq expr_side
          (Int64.mul (Int64.shift_right_logical target t) (odd_inverse c' w))
    end
  | Sym.Shl, Some c when not const_on_left ->
    let s = Int64.to_int c in
    if s < 0 || s >= 64 then if Int64.equal target 0L then [ 0L ] else []
    else begin
      let low_mask = Int64.sub (Int64.shift_left 1L s) 1L in
      if not (Int64.equal (Int64.logand target low_mask) 0L) then []
      else invert_eq expr_side (Int64.shift_right_logical target s)
    end
  | Sym.Lshr, Some c when not const_on_left ->
    let s = Int64.to_int c in
    if s < 0 || s >= 64 then if Int64.equal target 0L then [ 0L ] else []
    else begin
      let base = Int64.shift_left target s in
      let ones = Int64.sub (Int64.shift_left 1L s) 1L in
      invert_eq expr_side base @ invert_eq expr_side (Int64.logor base ones)
    end
  | Sym.And, Some m ->
    if not (Int64.equal (Int64.logand target (Int64.lognot m)) 0L) then []
    else begin
      let wm = Sym.wrap (Sym.width expr_side) (Int64.lognot m) in
      invert_eq expr_side target @ invert_eq expr_side (Int64.logor target wm)
    end
  | Sym.Or, Some m ->
    if not (Int64.equal (Int64.logand target m) m) then []
    else
      invert_eq expr_side (Int64.logand target (Int64.lognot m))
      @ invert_eq expr_side target
  | Sym.Eq, _ | Sym.Ne, _ | Sym.Ult, _ | Sym.Ule, _ | Sym.Ugt, _ | Sym.Uge, _ ->
    (* comparison produces 0/1; recurse as boolean *)
    if Int64.equal target 1L then invert_cmp op a b true
    else if Int64.equal target 0L then invert_cmp op a b false
    else []
  | _, _ -> []

(* Candidates making comparison [a op b] have the given truth value, where
   one side is constant. *)
and invert_cmp op a b want =
  let flip = function
    | Sym.Eq -> Sym.Ne
    | Sym.Ne -> Sym.Eq
    | Sym.Ult -> Sym.Uge
    | Sym.Ule -> Sym.Ugt
    | Sym.Ugt -> Sym.Ule
    | Sym.Uge -> Sym.Ult
    | op -> op
  in
  let op = if want then op else flip op in
  match (a, b) with
  | e, Sym.Const c -> invert_cmp_const e op c.value
  | Sym.Const c, e ->
    let mirror = function
      | Sym.Ult -> Sym.Ugt
      | Sym.Ule -> Sym.Uge
      | Sym.Ugt -> Sym.Ult
      | Sym.Uge -> Sym.Ule
      | op -> op
    in
    invert_cmp_const e (mirror op) c.value
  | _, _ -> []

(* Candidates for [e op k] (k constant on the right). *)
and invert_cmp_const e op k =
  let w = Sym.width e in
  let maxv = Sym.wrap w (-1L) in
  let u = Int64.unsigned_compare in
  match op with
  | Sym.Eq -> invert_eq e k
  | Sym.Ne ->
    List.concat_map (invert_eq e)
      [ Int64.add k 1L; Int64.sub k 1L; 0L; maxv; Int64.logxor k 1L ]
  | Sym.Ult ->
    if Int64.equal k 0L then []
    else List.concat_map (invert_eq e) [ Int64.sub k 1L; 0L; Int64.shift_right_logical k 1 ]
  | Sym.Ule -> List.concat_map (invert_eq e) [ k; 0L; Int64.sub k 1L ]
  | Sym.Ugt ->
    if u k maxv >= 0 then []
    else List.concat_map (invert_eq e) [ Int64.add k 1L; maxv ]
  | Sym.Uge -> List.concat_map (invert_eq e) [ k; maxv; Int64.add k 1L ]
  | _ -> []

(* Candidates making [expr] non-zero (boolean truth). *)
and invert_nonzero expr =
  match expr with
  | Sym.Binop (((Sym.Eq | Sym.Ne | Sym.Ult | Sym.Ule | Sym.Ugt | Sym.Uge) as op), a, b) ->
    invert_cmp op a b true
  | Sym.Binop (Sym.And, a, b) when Sym.width expr = 1 ->
    (* both conjuncts must hold; solve for whichever mentions the var *)
    invert_both a b true
  | Sym.Binop (Sym.Or, a, b) when Sym.width expr = 1 ->
    invert_nonzero_pick a b
  | Sym.Unop (Sym.Lnot, e) -> invert_eq e 0L
  | _ -> invert_cmp_const expr Sym.Ne 0L

and invert_zero expr =
  match expr with
  | Sym.Binop (((Sym.Eq | Sym.Ne | Sym.Ult | Sym.Ule | Sym.Ugt | Sym.Uge) as op), a, b) ->
    invert_cmp op a b false
  | Sym.Binop (Sym.Or, a, b) when Sym.width expr = 1 -> invert_both a b false
  | Sym.Binop (Sym.And, a, b) when Sym.width expr = 1 ->
    (* either conjunct zero suffices *)
    invert_zero_pick a b
  | Sym.Unop (Sym.Lnot, e) -> invert_nonzero e
  | _ -> invert_eq expr 0L

and invert_both a b want =
  (* conjunction (or joint falsity for Or): at most one side still mentions
     the variable (the other was substituted to a constant) *)
  let has_var e = Sym.vars e <> [] in
  let solve e = if want then invert_nonzero e else invert_zero e in
  match (has_var a, has_var b) with
  | true, false -> solve a
  | false, true -> solve b
  | true, true -> solve a @ solve b
  | false, false -> []

and invert_nonzero_pick a b = invert_both a b true @ []

and invert_zero_pick a b =
  let has_var e = Sym.vars e <> [] in
  (match has_var a with true -> invert_zero a | false -> [])
  @ (match has_var b with true -> invert_zero b | false -> [])

(* ------------------------------------------------------------------ *)
(* Fallback candidates                                                 *)
(* ------------------------------------------------------------------ *)

let constants_of expr =
  let acc = ref [] in
  let rec go = function
    | Sym.Const c -> acc := c.value :: !acc
    | Sym.Var _ -> ()
    | Sym.Unop (_, e) -> go e
    | Sym.Binop (_, a, b) ->
      go a;
      go b
  in
  go expr;
  !acc

(* The 48 deterministic samples depend only on the variable's width, so
   they are drawn once per width instead of once per candidate query (the
   old per-call [Rng.create 0x5EEDL] re-derived the identical block
   millions of times on big explorations). Drawn eagerly at module
   initialization: solvers run concurrently on several domains, and a
   plain immutable array needs no synchronization. *)
let sample_raw =
  let rng = Dice_util.Rng.create 0x5EEDL in
  Array.init 48 (fun _ -> Dice_util.Rng.int64 rng)

let sample_pool var_width = Array.to_list (Array.map (Sym.wrap var_width) sample_raw)

let fallback_candidates expr var_width hint_value =
  let maxv = Sym.wrap var_width (-1L) in
  let base =
    [ 0L; 1L; 2L; maxv; Int64.sub maxv 1L; hint_value; Int64.add hint_value 1L;
      Int64.sub hint_value 1L ]
  in
  let from_consts =
    List.concat_map
      (fun k -> [ k; Int64.add k 1L; Int64.sub k 1L ])
      (constants_of expr)
  in
  let powers =
    List.init (min var_width 32) (fun i -> Int64.shift_left 1L i)
  in
  base @ from_consts @ powers @ sample_pool var_width

(* ------------------------------------------------------------------ *)
(* Repair loop                                                         *)
(* ------------------------------------------------------------------ *)

(* Split width-1 conjunctions into separate constraints: "And(a,b) must be
   non-zero" is "a non-zero" and "b non-zero" (dually for a zero Or).
   The repair loop fixes one variable at a time, so conjuncts mentioning
   different variables must be separate constraints to be solvable. *)
let rec flatten (c : Path.constr) =
  match (c.Path.expr, c.Path.expected_nonzero) with
  | Sym.Binop (Sym.And, a, b), true when Sym.width c.Path.expr = 1 ->
    flatten { Path.expr = a; expected_nonzero = true }
    @ flatten { Path.expr = b; expected_nonzero = true }
  | Sym.Binop (Sym.Or, a, b), false when Sym.width c.Path.expr = 1 ->
    flatten { Path.expr = a; expected_nonzero = false }
    @ flatten { Path.expr = b; expected_nonzero = false }
  | Sym.Unop (Sym.Lnot, e), want -> flatten { Path.expr = e; expected_nonzero = not want }
  | _, _ -> [ c ]

(* ------------------------------------------------------------------ *)
(* Interval propagation                                                *)
(* ------------------------------------------------------------------ *)

(* Derive per-variable unsigned intervals from single-variable atoms of
   the form [v cmp k]. Used to prune candidate values, to enumerate tiny
   domains exhaustively, and to detect empty domains (UNSAT) without
   search. *)
let is_cmp_op = function
  | Sym.Eq | Sym.Ne | Sym.Ult | Sym.Ule | Sym.Ugt | Sym.Uge -> true
  | Sym.Add | Sym.Sub | Sym.Mul | Sym.Udiv | Sym.Urem | Sym.And | Sym.Or | Sym.Xor
  | Sym.Shl | Sym.Lshr ->
    false

let var_interval (c : Path.constr) =
  let interval_of op k width want =
    let maxv = Sym.wrap width (-1L) in
    let flip = function
      | Sym.Eq -> Sym.Ne
      | Sym.Ne -> Sym.Eq
      | Sym.Ult -> Sym.Uge
      | Sym.Ule -> Sym.Ugt
      | Sym.Ugt -> Sym.Ule
      | Sym.Uge -> Sym.Ult
      | op -> op
    in
    let op = if want then op else flip op in
    match op with
    | Sym.Eq -> Some (Interval.point k)
    | Sym.Ule -> Some (Interval.make 0L k)
    | Sym.Ult ->
      if Int64.equal k 0L then None (* empty; caller treats as contradiction *)
      else Some (Interval.make 0L (Int64.sub k 1L))
    | Sym.Uge -> Some (Interval.make k maxv)
    | Sym.Ugt ->
      if Int64.unsigned_compare k maxv >= 0 then None
      else Some (Interval.make (Int64.add k 1L) maxv)
    | Sym.Ne | Sym.Add | Sym.Sub | Sym.Mul | Sym.Udiv | Sym.Urem | Sym.And | Sym.Or
    | Sym.Xor | Sym.Shl | Sym.Lshr ->
      Some (Interval.full width)
  in
  (* Implied literal from a linear equality: [lin == k] with a single
     odd-coefficient variable pins it to the unique solution (a point
     interval), or proves a contradiction when the solution cannot fit the
     variable's width. *)
  let linear_point e k =
    match Lincons.of_sym e with
    | None -> None
    | Some lin ->
      let w = Sym.width e in
      let contradiction () =
        match Sym.vars e with
        | v :: _ -> Some (v, None)
        | [] -> None (* variable-free: the repair loop reports it *)
      in
      if not (Int64.equal (Sym.wrap w k) k) then
        (* the constant exceeds the term's domain: never equal *)
        contradiction ()
      else begin
        match Lincons.point_solution lin ~target:k with
        | None -> None
        | Some (var_id, value) -> begin
          match
            List.find_opt (fun (v : Sym.var) -> v.Sym.id = var_id) (Sym.vars e)
          with
          | None -> None
          | Some v ->
            (* unique mod 2^w; if it exceeds the variable's own domain the
               equality is unsatisfiable *)
            if Int64.equal (Sym.wrap v.Sym.width value) value then
              Some (v, Some (Interval.point value))
            else contradiction ()
        end
      end
  in
  match c.Path.expr with
  | Sym.Binop (op, Sym.Var v, Sym.Const k) when is_cmp_op op ->
    Some (v, interval_of op (Sym.wrap v.Sym.width k.value) v.Sym.width c.Path.expected_nonzero)
  | Sym.Binop (op, Sym.Const k, Sym.Var v) when is_cmp_op op ->
    let mirror = function
      | Sym.Ult -> Sym.Ugt
      | Sym.Ule -> Sym.Uge
      | Sym.Ugt -> Sym.Ult
      | Sym.Uge -> Sym.Ule
      | op -> op
    in
    Some
      (v, interval_of (mirror op) (Sym.wrap v.Sym.width k.value) v.Sym.width
           c.Path.expected_nonzero)
  | (Sym.Binop (Sym.Eq, e, Sym.Const k) | Sym.Binop (Sym.Eq, Sym.Const k, e))
    when c.Path.expected_nonzero ->
    linear_point e k.value
  | (Sym.Binop (Sym.Ne, e, Sym.Const k) | Sym.Binop (Sym.Ne, Sym.Const k, e))
    when not c.Path.expected_nonzero ->
    linear_point e k.value
  | _ -> None

(* [Ok bounds] with a table of per-variable intervals, or [Error ()] when
   some variable's domain is provably empty. *)
let propagate_intervals cs =
  let bounds : (int, Interval.t) Hashtbl.t = Hashtbl.create 8 in
  let contradiction = ref false in
  List.iter
    (fun c ->
      match var_interval c with
      | Some (v, Some ivl) -> begin
        match Hashtbl.find_opt bounds v.Sym.id with
        | None -> Hashtbl.replace bounds v.Sym.id ivl
        | Some existing -> begin
          match Interval.inter existing ivl with
          | Some merged -> Hashtbl.replace bounds v.Sym.id merged
          | None -> contradiction := true
        end
      end
      | Some (_, None) -> contradiction := true
      | None -> ())
    cs;
  if !contradiction then Error () else Ok bounds

(* ------------------------------------------------------------------ *)
(* Implied-literal propagation / constant substitution                  *)
(* ------------------------------------------------------------------ *)

(* Variables whose interval collapsed to a single value are implied
   literals: every occurrence can be substituted by the value. *)
let pinned_of_bounds bounds =
  let pinned : Sym.env = Hashtbl.create 8 in
  Hashtbl.iter
    (fun id ivl -> if Interval.is_point ivl then Hashtbl.replace pinned id ivl.Interval.lo)
    bounds;
  pinned

(* Substitute the pinned variables through [cs] and fold constants.
   Constraints that fold to a satisfied constant are dropped; one that
   folds to a violated constant proves the conjunction unsatisfiable
   ([Error ()]) — the pins are forced, so this is a real contradiction,
   not a search failure. Returns the simplified list and the index of the
   first constraint that changed ([None] when none did): a caller reusing
   a verified prefix must re-verify from that index, because substitution
   can only be trusted once the pinned values are installed in the env. *)
let simplify stats pinned cs =
  if Hashtbl.length pinned = 0 then Ok (cs, None)
  else begin
    let contradiction = ref false in
    let first_changed = ref None in
    let out = ref [] in
    let n = ref 0 in
    let changed_at i =
      stats.simplifications <- stats.simplifications + 1;
      match !first_changed with
      | None -> first_changed := Some i
      | Some _ -> ()
    in
    List.iter
      (fun (c : Path.constr) ->
        let reduced = Sym.subst_partial pinned c.Path.expr in
        if reduced == c.Path.expr then begin
          out := c :: !out;
          incr n
        end
        else begin
          match reduced with
          | Sym.Const k ->
            let truth = not (Int64.equal k.value 0L) in
            if truth = c.Path.expected_nonzero then changed_at !n
              (* constant-true under the forced pins: dropped *)
            else contradiction := true
          | reduced ->
            changed_at !n;
            out := { c with Path.expr = reduced } :: !out;
            incr n
        end)
      cs;
    if !contradiction then Error () else Ok (List.rev !out, !first_changed)
  end

(* ------------------------------------------------------------------ *)
(* Repair loop                                                         *)
(* ------------------------------------------------------------------ *)

(* The search core shared by {!solve} and {!Inc.solve}.

   [fprefix] are flattened constraints the caller asserts [env] already
   satisfies (the parent path's solved prefix); [frest] is the rest
   (typically the one negated branch predicate). The first-violated scan
   starts after the prefix and a per-variable dirty bound tracks how far
   back a repair can invalidate it: whenever the env binding of a
   variable changes, the scan start drops to the earliest constraint
   mentioning that variable, so constraints before the scan start always
   hold by construction and need no re-evaluation. *)
let solve_flat ~stats ~max_repairs ~env fprefix frest =
  match propagate_intervals (fprefix @ frest) with
  | Error () ->
    stats.unsat <- stats.unsat + 1;
    Unsat
  | Ok bounds -> begin
    let pinned = pinned_of_bounds bounds in
    match (simplify stats pinned fprefix, simplify stats pinned frest) with
    | Error (), _ | _, Error () ->
      stats.unsat <- stats.unsat + 1;
      Unsat
    | Ok (sprefix, prefix_changed), Ok (srest, _) ->
      let prefix_len = List.length sprefix in
      let arr = Array.of_list (sprefix @ srest) in
      let n = Array.length arr in
      (* earliest constraint index mentioning each variable *)
      let earliest : (int, int) Hashtbl.t = Hashtbl.create 16 in
      Array.iteri
        (fun i c ->
          List.iter
            (fun (v : Sym.var) ->
              if not (Hashtbl.mem earliest v.Sym.id) then
                Hashtbl.add earliest v.Sym.id i)
            (Sym.vars c.Path.expr))
        arr;
      let earliest_of id = Option.value (Hashtbl.find_opt earliest id) ~default:n in
      let start =
        match prefix_changed with
        | Some i -> min i prefix_len
        | None -> prefix_len
      in
      let scan_from = ref start in
      if start > 0 then stats.prefix_reuses <- stats.prefix_reuses + 1;
      let set_var id value =
        match Hashtbl.find_opt env id with
        | Some old when Int64.equal old value -> ()
        | _ ->
          Hashtbl.replace env id value;
          scan_from := min !scan_from (earliest_of id)
      in
      (* install the implied literals: the model must include them, and
         any prefix constraint they could affect was already counted by
         [prefix_changed] (substitution removed every occurrence) *)
      Hashtbl.iter set_var pinned;
      let first_violated () =
        stats.first_violated_skips <- stats.first_violated_skips + !scan_from;
        let rec go i =
          if i >= n then None
          else if Path.constr_holds env arr.(i) then go (i + 1)
          else Some i
        in
        go !scan_from
      in
      let tried : (int * int * int64, unit) Hashtbl.t = Hashtbl.create 64 in
      let seen_cand : (int64, unit) Hashtbl.t = Hashtbl.create 64 in
      let rec repair budget =
        if budget = 0 then begin
          stats.gave_up <- stats.gave_up + 1;
          Gave_up
        end
        else begin
          match first_violated () with
          | None ->
            stats.sat <- stats.sat + 1;
            Sat env
          | Some ci -> begin
            (* constraints before [ci] hold under the current env *)
            scan_from := ci;
            let c = arr.(ci) in
            let vs = Sym.vars c.Path.expr in
            if vs = [] then begin
              (* variable-free and violated: genuine contradiction *)
              stats.unsat <- stats.unsat + 1;
              Unsat
            end
            else begin
              (* Try to fix this constraint by adjusting one variable.

                 Strict phase: a candidate is accepted only if every
                 constraint up to and including [ci] holds afterwards —
                 plain coordinate descent would otherwise thrash between
                 this constraint and an earlier one over the same
                 variable. Relaxed phase (only if strict fails): accept a
                 candidate that satisfies just this constraint and let
                 later rounds repair the damage. *)
              let interval_for v =
                match Hashtbl.find_opt bounds v.Sym.id with
                | Some ivl -> ivl
                | None -> Interval.full v.Sym.width
              in
              let candidates_for v =
                let reduced = Sym.subst_eval_except env ~keep:v.Sym.id c.Path.expr in
                let derived =
                  if c.Path.expected_nonzero then invert_nonzero reduced
                  else invert_zero reduced
                in
                let hint_value =
                  match Hashtbl.find_opt env v.Sym.id with
                  | Some x -> x
                  | None -> 0L
                in
                let fall = fallback_candidates reduced v.Sym.width hint_value in
                let all = List.map (Sym.wrap v.Sym.width) (derived @ fall) in
                (* interval pruning: drop candidates outside the variable's
                   domain, seed the bounds themselves, and enumerate tiny
                   domains exhaustively *)
                let ivl = interval_for v in
                let enumerated =
                  if Interval.size_le ivl 48 then List.of_seq (Interval.to_seq ivl)
                  else []
                in
                let kept = List.filter (fun x -> Interval.mem x ivl) all in
                let cands =
                  (Interval.clamp ivl hint_value :: ivl.Interval.lo :: ivl.Interval.hi
                 :: kept)
                  @ enumerated
                in
                (* dedupe before the try-loop: the fallback block alone
                   repeats boundary values several times over *)
                Hashtbl.reset seen_cand;
                List.filter
                  (fun cand ->
                    if Hashtbl.mem seen_cand cand then begin
                      stats.candidates_deduped <- stats.candidates_deduped + 1;
                      false
                    end
                    else begin
                      Hashtbl.add seen_cand cand ();
                      true
                    end)
                  cands
              in
              let prefix_holds ~from upto =
                let rec go i = i > upto || (Path.constr_holds env arr.(i) && go (i + 1)) in
                go from
              in
              let try_candidate ~strict v ok cand =
                if ok then true
                else begin
                  let key = (ci + if strict then 0 else 1000000), v.Sym.id, cand in
                  if Hashtbl.mem tried key then false
                  else begin
                    Hashtbl.add tried key ();
                    stats.candidates_tried <- stats.candidates_tried + 1;
                    let saved = Hashtbl.find_opt env v.Sym.id in
                    Hashtbl.replace env v.Sym.id cand;
                    let ok_now =
                      if strict then
                        (* constraints below the dirty bound cannot be
                           affected: they held before and do not mention
                           [v] *)
                        prefix_holds
                          ~from:(min !scan_from (earliest_of v.Sym.id))
                          ci
                      else Path.constr_holds env c
                    in
                    if ok_now then begin
                      if strict then scan_from := ci + 1
                      else scan_from := min !scan_from (earliest_of v.Sym.id);
                      true
                    end
                    else begin
                      (match saved with
                      | Some x -> Hashtbl.replace env v.Sym.id x
                      | None -> Hashtbl.remove env v.Sym.id);
                      false
                    end
                  end
                end
              in
              let phase ~strict =
                List.fold_left
                  (fun fixed v ->
                    if fixed then true
                    else List.fold_left (try_candidate ~strict v) false (candidates_for v))
                  false vs
              in
              if phase ~strict:true || phase ~strict:false then repair (budget - 1)
              else begin
                (* No candidate for any variable even under the relaxed
                   rule. Only when the constraint has a single variable
                   whose interval domain was exhaustively enumerated is
                   this a proof of unsatisfiability; structural inversion
                   plus fallback candidates are incomplete, so anything
                   else is a search failure, not a refutation. *)
                let exhausted =
                  match vs with
                  | [ v ] -> Interval.size_le (interval_for v) 48
                  | [] | _ :: _ :: _ -> false
                in
                if exhausted then begin
                  stats.unsat <- stats.unsat + 1;
                  Unsat
                end
                else begin
                  stats.gave_up <- stats.gave_up + 1;
                  Gave_up
                end
              end
            end
          end
        end
      in
      repair max_repairs
  end

let count_call stats =
  stats.calls <- stats.calls + 1;
  if stats != global_stats then global_stats.calls <- global_stats.calls + 1

let solve ?(stats = global_stats) ?(max_repairs = 256) ~hint cs =
  count_call stats;
  let env : Sym.env = Hashtbl.copy hint in
  solve_flat ~stats ~max_repairs ~env [] (List.concat_map flatten cs)

module Inc = struct
  let solve ?(stats = global_stats) ?(max_repairs = 256) ~parent ~prefix rest =
    count_call stats;
    let env : Sym.env = Hashtbl.copy parent in
    solve_flat ~stats ~max_repairs ~env
      (List.concat_map flatten prefix)
      (List.concat_map flatten rest)
end
