module Space = struct
  type t = {
    lock : Mutex.t;  (* one space is shared by every run of an exploration,
                        including parallel runs on separate domains *)
    by_name : (string, Sym.var) Hashtbl.t;
    mutable rev_names : string list;
  }

  let create () =
    { lock = Mutex.create (); by_name = Hashtbl.create 32; rev_names = [] }

  let locked t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  let var t ~name ~width =
    locked t (fun () ->
        match Hashtbl.find_opt t.by_name name with
        | Some v ->
          if v.Sym.width <> width then
            invalid_arg
              (Printf.sprintf "Engine.Space.var: %s re-used with width %d (was %d)" name
                 width v.Sym.width);
          v
        | None ->
          let v = Sym.var ~name ~width in
          Hashtbl.add t.by_name name v;
          t.rev_names <- name :: t.rev_names;
          v)

  let find t name = locked t (fun () -> Hashtbl.find_opt t.by_name name)

  let names t = locked t (fun () -> List.rev t.rev_names)
end

type ctx = {
  recording : bool;
  space : Space.t option;
  overrides : Sym.env;
  concrete_env : Sym.env;
  mutable rev_path : Path.entry list;
  mutable rev_seeds : Path.constr list;
  coverage : Coverage.t option;
}

let create ?coverage ~space ~overrides () =
  {
    recording = true;
    space = Some space;
    overrides;
    concrete_env = Hashtbl.create 16;
    rev_path = [];
    rev_seeds = [];
    coverage;
  }

let null () =
  {
    recording = false;
    space = None;
    overrides = Hashtbl.create 0;
    concrete_env = Hashtbl.create 0;
    rev_path = [];
    rev_seeds = [];
    coverage = None;
  }

let recording t = t.recording

let input t ~name ~width ~default =
  if not t.recording then Cval.concrete ~width default
  else begin
    let space =
      match t.space with
      | Some s -> s
      | None -> assert false
    in
    let v = Space.var space ~name ~width in
    let conc =
      match Hashtbl.find_opt t.overrides v.Sym.id with
      | Some x -> Sym.wrap width x
      | None -> Sym.wrap width default
    in
    Hashtbl.replace t.concrete_env v.Sym.id conc;
    Cval.symbolic v conc
  end

let constrain t expr ~nonzero =
  if t.recording then
    t.rev_seeds <- { Path.expr; expected_nonzero = nonzero } :: t.rev_seeds

let branch t site cond =
  let taken = Cval.bool_of cond in
  if t.recording then begin
    (match t.coverage with
    | Some cov -> ignore (Coverage.record cov site taken)
    | None -> ());
    match Cval.sym cond with
    | Some expr ->
      t.rev_path <-
        { Path.site; constr = { Path.expr; expected_nonzero = taken } } :: t.rev_path
    | None -> ()
  end;
  taken

let branchf t name cond = branch t (Path.Site.intern name) cond

let env t = t.concrete_env

let path t = List.rev t.rev_path

let seed_constraints t = List.rev t.rev_seeds

let assignment t ~space =
  List.filter_map
    (fun name ->
      match Space.find space name with
      | Some v -> begin
        match Hashtbl.find_opt t.concrete_env v.Sym.id with
        | Some x -> Some (name, x)
        | None -> None
      end
      | None -> None)
    (Space.names space)
