type var = { id : int; name : string; width : int }

(* Variable ids must stay unique when several exploration domains register
   inputs concurrently, hence the atomic counter. *)
let next_id = Atomic.make 0

let check_width width =
  if width < 1 || width > 64 then invalid_arg "Sym.var: width must be in [1, 64]"

let var ~name ~width =
  check_width width;
  let id = Atomic.fetch_and_add next_id 1 in
  { id; name; width }

let var_named ~id ~name ~width =
  check_width width;
  let rec bump () =
    let cur = Atomic.get next_id in
    if id >= cur && not (Atomic.compare_and_set next_id cur (id + 1)) then bump ()
  in
  bump ();
  { id; name; width }

type unop = Neg | Bnot | Lnot

type binop =
  | Add | Sub | Mul | Udiv | Urem
  | And | Or | Xor | Shl | Lshr
  | Eq | Ne | Ult | Ule | Ugt | Uge

type t =
  | Const of { value : int64; width : int }
  | Var of var
  | Unop of unop * t
  | Binop of binop * t * t

let wrap w v =
  if w >= 64 then v else Int64.logand v (Int64.sub (Int64.shift_left 1L w) 1L)

let const ~width value =
  check_width width;
  Const { value = wrap width value; width }

let of_var v = Var v

let is_cmp = function
  | Eq | Ne | Ult | Ule | Ugt | Uge -> true
  | Add | Sub | Mul | Udiv | Urem | And | Or | Xor | Shl | Lshr -> false

let rec width = function
  | Const c -> c.width
  | Var v -> v.width
  | Unop (Lnot, _) -> 1
  | Unop ((Neg | Bnot), e) -> width e
  | Binop (op, a, b) -> if is_cmp op then 1 else max (width a) (width b)

type env = (int, int64) Hashtbl.t

let all_ones w = wrap w (-1L)

let apply_unop op w v =
  match op with
  | Neg -> wrap w (Int64.neg v)
  | Bnot -> wrap w (Int64.lognot v)
  | Lnot -> if v = 0L then 1L else 0L

let bool_val b = if b then 1L else 0L

let apply_binop op w a b =
  match op with
  | Add -> wrap w (Int64.add a b)
  | Sub -> wrap w (Int64.sub a b)
  | Mul -> wrap w (Int64.mul a b)
  | Udiv -> if b = 0L then all_ones w else Int64.unsigned_div a b
  | Urem -> if b = 0L then a else Int64.unsigned_rem a b
  | And -> Int64.logand a b
  | Or -> Int64.logor a b
  | Xor -> Int64.logxor a b
  | Shl ->
    let s = Int64.to_int b in
    if s < 0 || s >= 64 then 0L else wrap w (Int64.shift_left a s)
  | Lshr ->
    let s = Int64.to_int b in
    if s < 0 || s >= 64 then 0L else Int64.shift_right_logical a s
  | Eq -> bool_val (Int64.equal a b)
  | Ne -> bool_val (not (Int64.equal a b))
  | Ult -> bool_val (Int64.unsigned_compare a b < 0)
  | Ule -> bool_val (Int64.unsigned_compare a b <= 0)
  | Ugt -> bool_val (Int64.unsigned_compare a b > 0)
  | Uge -> bool_val (Int64.unsigned_compare a b >= 0)

let rec eval env t =
  match t with
  | Const c -> c.value
  | Var v -> begin
    match Hashtbl.find_opt env v.id with
    | Some x -> wrap v.width x
    | None -> 0L
  end
  | Unop (op, e) -> apply_unop op (width t) (eval env e)
  | Binop (op, a, b) -> apply_binop op (width t) (eval env a) (eval env b)

let vars t =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go = function
    | Const _ -> ()
    | Var v ->
      if not (Hashtbl.mem seen v.id) then begin
        Hashtbl.add seen v.id ();
        acc := v :: !acc
      end
    | Unop (_, e) -> go e
    | Binop (_, a, b) ->
      go a;
      go b
  in
  go t;
  List.rev !acc

let rec subst_eval_except env ~keep t =
  match t with
  | Const _ -> t
  | Var v -> if v.id = keep then t else Const { value = wrap v.width (eval env t); width = v.width }
  | Unop (op, e) -> begin
    match subst_eval_except env ~keep e with
    | Const c -> Const { value = apply_unop op (width t) c.value; width = width t }
    | e' -> Unop (op, e')
  end
  | Binop (op, a, b) -> begin
    match (subst_eval_except env ~keep a, subst_eval_except env ~keep b) with
    | Const ca, Const cb ->
      Const { value = apply_binop op (width t) ca.value cb.value; width = width t }
    | a', b' -> Binop (op, a', b')
  end

let rec subst_partial env t =
  match t with
  | Const _ -> t
  | Var v -> begin
    match Hashtbl.find_opt env v.id with
    | Some x -> Const { value = wrap v.width x; width = v.width }
    | None -> t
  end
  | Unop (op, e) -> begin
    match subst_partial env e with
    | Const c -> Const { value = apply_unop op (width t) c.value; width = width t }
    | e' -> if e' == e then t else Unop (op, e')
  end
  | Binop (op, a, b) -> begin
    match (subst_partial env a, subst_partial env b) with
    | Const ca, Const cb ->
      Const { value = apply_binop op (width t) ca.value cb.value; width = width t }
    | a', b' -> if a' == a && b' == b then t else Binop (op, a', b')
  end

let rec compare a b =
  match (a, b) with
  | Const x, Const y -> Stdlib.compare (x.value, x.width) (y.value, y.width)
  | Const _, _ -> -1
  | _, Const _ -> 1
  | Var x, Var y -> Int.compare x.id y.id
  | Var _, _ -> -1
  | _, Var _ -> 1
  | Unop (o1, e1), Unop (o2, e2) ->
    let c = Stdlib.compare o1 o2 in
    if c <> 0 then c else compare e1 e2
  | Unop _, _ -> -1
  | _, Unop _ -> 1
  | Binop (o1, a1, b1), Binop (o2, a2, b2) ->
    let c = Stdlib.compare o1 o2 in
    if c <> 0 then c
    else begin
      let c = compare a1 a2 in
      if c <> 0 then c else compare b1 b2
    end

let equal a b = compare a b = 0

let rec hash = function
  | Const c -> Hashtbl.hash (0, c.value, c.width)
  | Var v -> Hashtbl.hash (1, v.id)
  | Unop (op, e) -> Hashtbl.hash (2, op, hash e)
  | Binop (op, a, b) -> Hashtbl.hash (3, op, hash a, hash b)

let unop_str = function
  | Neg -> "-"
  | Bnot -> "~"
  | Lnot -> "!"

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Udiv -> "/u"
  | Urem -> "%u"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Shl -> "<<"
  | Lshr -> ">>u"
  | Eq -> "=="
  | Ne -> "!="
  | Ult -> "<u"
  | Ule -> "<=u"
  | Ugt -> ">u"
  | Uge -> ">=u"

let rec pp ppf = function
  | Const c -> Format.fprintf ppf "%Lu" c.value
  | Var v -> Format.fprintf ppf "%s" v.name
  | Unop (op, e) -> Format.fprintf ppf "%s(%a)" (unop_str op) pp e
  | Binop (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp a (binop_str op) pp b

let to_string t = Format.asprintf "%a" pp t
