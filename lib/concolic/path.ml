module Site = struct
  type t = { id : int; name : string }

  (* The registry is process-global and parallel explorations intern sites
     from several domains at once; every access goes through [lock]. *)
  let lock = Mutex.create ()
  let registry : (string, t) Hashtbl.t = Hashtbl.create 64
  let next = ref 0

  let locked f =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

  let make name =
    locked (fun () ->
        let id = !next in
        incr next;
        let t = { id; name } in
        (* keep the most recent site per name for [of_existing] *)
        Hashtbl.replace registry name t;
        t)

  let intern name =
    locked (fun () ->
        match Hashtbl.find_opt registry name with
        | Some t -> t
        | None ->
          let id = !next in
          incr next;
          let t = { id; name } in
          Hashtbl.replace registry name t;
          t)

  let of_existing name =
    locked (fun () ->
        match Hashtbl.find_opt registry name with
        | Some t -> t
        | None -> raise Not_found)

  let id t = t.id
  let name t = t.name
  let count () = locked (fun () -> !next)

  let pp ppf t = Format.fprintf ppf "%s#%d" t.name t.id
end

type constr = { expr : Sym.t; expected_nonzero : bool }

let negate c = { c with expected_nonzero = not c.expected_nonzero }

let constr_holds env c = Sym.eval env c.expr <> 0L = c.expected_nonzero

let pp_constr ppf c =
  if c.expected_nonzero then Sym.pp ppf c.expr
  else Format.fprintf ppf "!(%a)" Sym.pp c.expr

type entry = { site : Site.t; constr : constr }

type t = entry list

let length = List.length

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter (fun e -> Format.fprintf ppf "%a: %a@," Site.pp e.site pp_constr e.constr) t;
  Format.fprintf ppf "@]"

let signature t =
  List.fold_left
    (fun acc e ->
      let v =
        Int64.of_int ((Site.id e.site * 2) + if e.constr.expected_nonzero then 1 else 0)
      in
      Dice_util.Hashutil.combine acc v)
    0xCBF29CE484222325L t
