(** Linear normal form of symbolic terms, modulo [2^width].

    Many path constraints are linear in the inputs (offsets, sums,
    scalings); putting them in the canonical form
    [c1*x1 + ... + cn*xn + k (mod 2^w)] lets the solver compute exact
    solutions by modular inversion instead of searching candidates. *)

type t = private {
  coeffs : (int * int64) list;  (** (variable id, coefficient), id-sorted, no zero coeffs *)
  const : int64;
  width : int;
}

val of_sym : Sym.t -> t option
(** Structural linearity detection: constants, variables, [+], [-],
    negation, multiplication by a constant, and left shift by a constant
    are linear; anything else is not. All arithmetic is mod [2^width]
    (the max of the term's operand widths — the same semantics
    {!Sym.eval} uses). *)

val eval : Sym.env -> t -> int64

val vars : t -> int list
(** Variable ids, ascending. *)

val is_constant : t -> bool

val solve_for : t -> var_id:int -> target:int64 -> env:Sym.env -> int64 list
(** Values of the variable [var_id] that make the form evaluate to
    [target], with every other variable fixed by [env]. Exact when the
    variable's coefficient is odd (modular inverse); for an even
    coefficient [c = c'·2^t], solutions exist iff the residual is
    divisible by [2^t], and one representative is returned (all solutions
    differ in the top [t] bits, which the caller's verification pass will
    accept or reject). Empty when no solution exists or [var_id] does not
    occur. *)

val point_solution : t -> target:int64 -> (int * int64) option
(** [(var_id, value)] when the form mentions exactly one variable with an
    odd coefficient — then [coeff*x + const = target (mod 2^width)] has
    exactly one solution and the equality {e pins} the variable (an
    implied literal the solver propagates). [None] otherwise: with an even
    coefficient solutions are not unique, so no value may be pinned. *)

val pp : Format.formatter -> t -> unit
