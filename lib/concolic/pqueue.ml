(* Array-backed binary max-heap. The heap property compares (priority
   descending, order ascending); [order] values are expected unique, which
   makes pop order fully deterministic regardless of insertion order. *)

type 'a entry = { priority : int; order : int; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

(* true when [a] must pop before [b] *)
let before a b =
  if a.priority <> b.priority then a.priority > b.priority else a.order < b.order

let grow t =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let ncap = max 8 (cap * 2) in
    let data = Array.make ncap t.data.(0) in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if before t.data.(i) t.data.(p) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(p);
      t.data.(p) <- tmp;
      sift_up t p
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.len && before t.data.(l) t.data.(!best) then best := l;
  if r < t.len && before t.data.(r) t.data.(!best) then best := r;
  if !best <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!best);
    t.data.(!best) <- tmp;
    sift_down t !best
  end

let push t ~priority ~order value =
  let entry = { priority; order; value } in
  if Array.length t.data = 0 then begin
    t.data <- Array.make 8 entry;
    t.len <- 1
  end
  else begin
    grow t;
    t.data.(t.len) <- entry;
    t.len <- t.len + 1;
    sift_up t (t.len - 1)
  end

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      sift_down t 0
    end;
    (* overwrite the stale duplicate left at the freed slot *)
    t.data.(t.len) <- top;
    Some top.value
  end
