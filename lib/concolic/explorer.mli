(** The concolic exploration loop (paper Figure 1).

    Runs the program under test with concrete inputs, records the symbolic
    path condition, then repeatedly picks a recorded branch, negates its
    predicate, asks the solver for inputs reaching the other side, and
    re-executes — accumulating branch coverage and an aggregate set of
    discovered paths until the input space is exhausted or the budget runs
    out. *)

type program = Engine.ctx -> unit
(** The instrumented entry point — in DiCE terms, a message handler invoked
    over a cloned checkpoint. Exceptions escaping the program abort that run
    only (the path recorded so far still counts) and are tallied in
    [report.program_exns] — except [Stack_overflow] and [Out_of_memory],
    which indicate explorer-level resource exhaustion and are re-raised. *)

type config = {
  strategy : Strategy.t;
  max_runs : int;  (** total program executions, initial run included *)
  max_depth : int;  (** only the first [max_depth] branches are negated *)
  solver_max_repairs : int;
  incremental : bool;
      (** solve each negation incrementally from the parent run's
          environment ({!Solver.Inc}) instead of from scratch; on by
          default, off only for measurement *)
}

val default_config : config
(** DFS, 512 runs, depth 128, 256 solver repairs, incremental. *)

type run = {
  index : int;
  assignment : (string * int64) list;  (** inputs by name *)
  path_length : int;
  new_directions : int;  (** branch directions first covered by this run *)
  diverged : bool;
      (** the run did not follow the path the solver's model predicted *)
}

type report = {
  runs : run list;  (** chronological *)
  executions : int;
  distinct_paths : int;
  negations_attempted : int;
  negations_sat : int;
  negations_unsat : int;
  negations_gave_up : int;
  divergences : int;
  program_exns : int;  (** exceptions the program under test raised *)
  coverage : Coverage.t;
  solver_stats : Solver.stats;
  space : Engine.Space.t;
  elapsed_s : float;
}

val explore : ?config:config -> program -> report
(** Explore from scratch: the initial run uses every input's default
    value. *)

val attempt_key : Path.entry array -> int -> (int * bool) list
(** Identity of a negation attempt: the (site id, direction) sequence of
    the path prefix up to index [idx], with entry [idx]'s direction
    flipped. Structural, not hashed — two attempts have equal keys iff
    they request the same negated path, so distinct negations can never be
    dropped by a key collision. Exposed for the parallel executor
    ([Dice_exec]), whose shared dedup table must agree with the sequential
    explorer on attempt identity. *)

val coverage_ratio : report -> float
(** Covered (site, direction) pairs over [2 * sites seen] — a progress
    measure for the coverage experiments. *)

val pp_report : Format.formatter -> report -> unit
