(** The concolic exploration loop (paper Figure 1).

    Runs the program under test with concrete inputs, records the symbolic
    path condition, then repeatedly picks a recorded branch, negates its
    predicate, asks the solver for inputs reaching the other side, and
    re-executes — accumulating branch coverage and an aggregate set of
    discovered paths until the input space is exhausted or the budget runs
    out. *)

type program = Engine.ctx -> unit
(** The instrumented entry point — in DiCE terms, a message handler invoked
    over a cloned checkpoint. Exceptions escaping the program abort that run
    only (the path recorded so far still counts). *)

type config = {
  strategy : Strategy.t;
  max_runs : int;  (** total program executions, initial run included *)
  max_depth : int;  (** only the first [max_depth] branches are negated *)
  solver_max_repairs : int;
}

val default_config : config
(** DFS, 512 runs, depth 128, 256 solver repairs. *)

type run = {
  index : int;
  assignment : (string * int64) list;  (** inputs by name *)
  path_length : int;
  new_directions : int;  (** branch directions first covered by this run *)
  diverged : bool;
      (** the run did not follow the path the solver's model predicted *)
}

type report = {
  runs : run list;  (** chronological *)
  executions : int;
  distinct_paths : int;
  negations_attempted : int;
  negations_sat : int;
  negations_unsat : int;
  negations_gave_up : int;
  divergences : int;
  coverage : Coverage.t;
  solver_stats : Solver.stats;
  space : Engine.Space.t;
  elapsed_s : float;
}

val explore : ?config:config -> program -> report
(** Explore from scratch: the initial run uses every input's default
    value. *)

val attempt_key : Path.entry array -> int -> int64
(** Identity of a negation attempt: a hash of the branch-direction prefix
    of the path up to (and including, flipped) index [idx]. Two attempts
    with the same key request the same negated path, so only the first
    should be tried. Exposed for the parallel executor ([Dice_exec]),
    whose shared dedup table must agree with the sequential explorer on
    attempt identity. *)

val coverage_ratio : report -> float
(** Covered (site, direction) pairs over [2 * sites seen] — a progress
    measure for the coverage experiments. *)

val pp_report : Format.formatter -> report -> unit
