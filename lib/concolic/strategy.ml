type t =
  | Dfs
  | Generational
  | Random_negation of int64
  | Cover_new

(* Scoring for the generational heap: flipping toward an unseen direction
   is worth much more than re-flipping a hot site, and rarely-taken
   directions keep a small edge so the frontier spreads before it deepens. *)
let coverage_bonus ~hits = if hits = 0 then 8 else if hits < 4 then 2 else 0

let to_string = function
  | Dfs -> "dfs"
  | Generational -> "generational"
  | Random_negation seed -> Printf.sprintf "random(seed=%Ld)" seed
  | Cover_new -> "cover-new"

let pp ppf t = Format.pp_print_string ppf (to_string t)
