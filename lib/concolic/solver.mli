(** Constraint solver for path conditions.

    Plays the role the STP-style solver plays for Oasis/Crest: given the
    conjunction of constraints recorded along a path prefix plus one negated
    branch predicate, find concrete input values that satisfy them.

    The implementation is a repair-loop search seeded by the hint
    assignment (the inputs of the run that produced the path — which
    already satisfy every constraint except the negated one):

    - constraints are checked by evaluation;
    - a violated constraint is reduced to a single candidate variable by
      substituting the current values of all others, then {e structurally
      inverted} (addition, xor, masks, shifts, odd multiplication, boolean
      structure over comparisons) to enumerate candidate values;
    - deterministic boundary and sampled candidates back the cases
      inversion cannot reach;
    - the loop repairs violated constraints until all hold or a budget is
      exhausted.

    The explorer tolerates incompleteness: a wrong model merely produces a
    divergent execution whose {e actual} path is recorded and explored. *)

type outcome =
  | Sat of Sym.env  (** a model: every constraint evaluates as required *)
  | Unsat
      (** proven contradiction: a variable-free constraint failed, interval
          propagation derived an empty domain, or a single-variable
          constraint was refuted by exhaustive enumeration of its (small)
          interval domain. Never returned merely because the candidate
          search ran dry — that is {!Gave_up}. *)
  | Gave_up  (** budget or candidates exhausted without a model or a proof *)

type stats = {
  mutable calls : int;
  mutable sat : int;
  mutable unsat : int;
  mutable gave_up : int;
  mutable candidates_tried : int;
  mutable candidates_deduped : int;
      (** duplicate candidate values dropped before evaluation *)
  mutable prefix_reuses : int;
      (** solves that started from a non-empty already-satisfied prefix *)
  mutable simplifications : int;
      (** constraints rewritten or discharged by implied-literal
          substitution *)
  mutable first_violated_skips : int;
      (** constraint evaluations avoided by the incremental
          first-violated scan (summed over repair rounds) *)
}

val stats_create : unit -> stats
val global_stats : stats
(** Accumulated across all [solve] calls (reset with [reset_stats]). *)

val reset_stats : unit -> unit

val solve :
  ?stats:stats -> ?max_repairs:int -> hint:Sym.env -> Path.constr list -> outcome
(** [solve ~hint cs] searches for an assignment satisfying all of [cs],
    starting from [hint] (unmentioned variables default to 0).
    [max_repairs] bounds the repair iterations (default 256). The returned
    environment is fresh (callers may mutate it). *)

val holds_all : Sym.env -> Path.constr list -> bool
(** Check a model (exposed for property tests). *)

(** Incremental, prefix-reusing solving.

    During exploration, consecutive solver queries share long prefixes: the
    query for flipping branch [i] is [seeds @ prefix(i) @ [¬b(i)]], and the
    parent run's solved environment already satisfies everything but the
    negation. [Inc.solve] exploits this: the repair starts from the parent
    model, the first-violated scan begins after the trusted prefix, and a
    per-variable dirty bound re-verifies only the prefix constraints a
    repair could actually invalidate. *)
module Inc : sig
  val solve :
    ?stats:stats ->
    ?max_repairs:int ->
    parent:Sym.env ->
    prefix:Path.constr list ->
    Path.constr list ->
    outcome
  (** [solve ~parent ~prefix rest] searches for a model of
      [prefix @ rest] starting from a copy of [parent], which the caller
      asserts satisfies every constraint in [prefix]. The assertion is
      trusted (not re-verified up front); a wrong assertion can only
      produce a wrong [Sat] model, which the explorer already tolerates as
      a divergence — [Unsat] answers remain sound because they never
      depend on it. Implied-literal substitution may still force a
      re-check of the prefix suffix it rewrites. *)
end
