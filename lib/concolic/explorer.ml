type program = Engine.ctx -> unit

type config = {
  strategy : Strategy.t;
  max_runs : int;
  max_depth : int;
  solver_max_repairs : int;
  incremental : bool;
}

let default_config =
  {
    strategy = Strategy.Dfs;
    max_runs = 512;
    max_depth = 128;
    solver_max_repairs = 256;
    incremental = true;
  }

type run = {
  index : int;
  assignment : (string * int64) list;
  path_length : int;
  new_directions : int;
  diverged : bool;
}

type report = {
  runs : run list;
  executions : int;
  distinct_paths : int;
  negations_attempted : int;
  negations_sat : int;
  negations_unsat : int;
  negations_gave_up : int;
  divergences : int;
  program_exns : int;
  coverage : Coverage.t;
  solver_stats : Solver.stats;
  space : Engine.Space.t;
  elapsed_s : float;
}

(* A pending negation: flip branch [idx] of [parent_path] and solve for
   inputs that reach the other side. *)
type item = {
  parent_path : Path.entry array;
  parent_seeds : Path.constr list;
  hint : Sym.env;
  idx : int;
  bound : int;  (* generational search: children expand indices >= bound *)
  priority : int;
  order : int;  (* tie-break / FIFO ordering *)
  expected : (int * bool) option;  (* (site id, direction) the model should produce *)
}

(* Identity of a negation attempt: the branch-direction prefix plus the
   flipped branch, as the literal (site id, direction) sequence the
   requested path would take. Structural — two attempts compare equal iff
   they request the same path, so a table keyed on this can never drop a
   distinct negation the way a folded-hash key could on collision. *)
let attempt_key parent_path idx =
  let rec go i acc =
    if i < 0 then acc
    else begin
      let e = parent_path.(i) in
      let dir = e.Path.constr.expected_nonzero in
      let dir = if i = idx then not dir else dir in
      go (i - 1) ((Path.Site.id e.Path.site, dir) :: acc)
    end
  in
  go idx []

let explore ?(config = default_config) program =
  let t0 = Unix.gettimeofday () in
  let space = Engine.Space.create () in
  let coverage = Coverage.create () in
  let solver_stats = Solver.stats_create () in
  let attempted : ((int * bool) list, unit) Hashtbl.t = Hashtbl.create 256 in
  let distinct : (int64, unit) Hashtbl.t = Hashtbl.create 256 in
  let rev_runs = ref [] in
  let executions = ref 0 in
  let negations_attempted = ref 0 in
  let negations_sat = ref 0 in
  let negations_unsat = ref 0 in
  let negations_gave_up = ref 0 in
  let divergences = ref 0 in
  let program_exns = ref 0 in
  let next_order = ref 0 in
  (* DFS and Cover_new pop newest-first: a list stack is already O(1) and
     preserves the classic dive-deep order. The prioritized strategies use
     a binary heap — the old fold-for-max + filter-to-remove list made
     every pop O(n) and every generational enqueue O(n) via append. *)
  let stack : item list ref = ref [] in
  let heap : item Pqueue.t = Pqueue.create () in
  let use_heap =
    match config.strategy with
    | Strategy.Generational | Strategy.Random_negation _ -> true
    | Strategy.Dfs | Strategy.Cover_new -> false
  in
  let rng =
    match config.strategy with
    | Strategy.Random_negation seed -> Dice_util.Rng.create seed
    | Strategy.Dfs | Strategy.Generational | Strategy.Cover_new ->
      Dice_util.Rng.create 0L
  in

  (* Execute the program once; returns the info children need. *)
  let execute ~overrides ~expected =
    let ctx = Engine.create ~coverage ~space ~overrides () in
    let before = Coverage.direction_count coverage in
    (try program ctx with
    | (Stack_overflow | Out_of_memory) as fatal ->
      (* resource exhaustion is not a program-under-test outcome; masking
         it would turn a dying explorer into a silent coverage plateau *)
      raise fatal
    | _exn -> incr program_exns);
    let after = Coverage.direction_count coverage in
    let path = Array.of_list (Engine.path ctx) in
    Hashtbl.replace distinct (Path.signature (Array.to_list path)) ();
    let diverged =
      match expected with
      | None -> false
      | Some (site_id, dir) -> begin
        (* the model predicted some prefix; minimal faithful check: the
           flipped branch must appear with the predicted direction at its
           position or the run is a divergence *)
        let found = ref false in
        Array.iter
          (fun e ->
            if
              Path.Site.id e.Path.site = site_id
              && e.Path.constr.expected_nonzero = dir
            then found := true)
          path;
        not !found
      end
    in
    if diverged then incr divergences;
    incr executions;
    let r =
      {
        index = !executions - 1;
        assignment = Engine.assignment ctx ~space;
        path_length = Array.length path;
        new_directions = after - before;
        diverged;
      }
    in
    rev_runs := r :: !rev_runs;
    (path, Engine.seed_constraints ctx, Engine.env ctx, r)
  in

  let enqueue_children ~path ~seeds ~hint ~bound ~priority =
    let n = min (Array.length path) config.max_depth in
    let items = ref [] in
    for idx = n - 1 downto bound do
      let key = attempt_key path idx in
      if not (Hashtbl.mem attempted key) then begin
        let e = path.(idx) in
        let item_priority =
          match config.strategy with
          | Strategy.Generational ->
            (* coverage-guided score: the parent's contribution plus a
               bonus when the flipped direction is unseen or still rare *)
            let flipped = (Path.Site.id e.Path.site, not e.Path.constr.expected_nonzero) in
            priority + Strategy.coverage_bonus ~hits:(Coverage.hits_id coverage flipped)
          | Strategy.Random_negation _ ->
            (* uniform random priorities make heap pops a uniformly random
               draw from the pending set, deterministic per seed *)
            Dice_util.Rng.int rng 0x40000000
          | Strategy.Dfs | Strategy.Cover_new -> priority
        in
        let it =
          {
            parent_path = path;
            parent_seeds = seeds;
            hint;
            idx;
            bound;
            priority = item_priority;
            order = !next_order;
            expected = None;
          }
        in
        incr next_order;
        if use_heap then Pqueue.push heap ~priority:item_priority ~order:it.order it
        else items := it :: !items
      end
    done;
    (* [items] ends up in increasing idx order; for DFS we want the deepest
       first, so prepend reversed *)
    if not use_heap then stack := List.rev_append !items !stack
  in

  let pop () =
    if use_heap then Pqueue.pop heap
    else begin
      match !stack with
      | [] -> None
      | it :: rest ->
        stack := rest;
        Some it
    end
  in

  (* initial run: all defaults *)
  let path0, seeds0, hint0, _r0 = execute ~overrides:(Hashtbl.create 0) ~expected:None in
  enqueue_children ~path:path0 ~seeds:seeds0 ~hint:hint0 ~bound:0 ~priority:0;

  let rec loop () =
    if !executions >= config.max_runs then ()
    else begin
      match pop () with
      | None -> ()
      | Some it -> begin
        let e = it.parent_path.(it.idx) in
        let skip =
          match config.strategy with
          | Strategy.Cover_new ->
            (* only negate if the opposite direction is still uncovered *)
            Coverage.covered coverage e.Path.site (not e.Path.constr.expected_nonzero)
          | Strategy.Dfs | Strategy.Generational | Strategy.Random_negation _ -> false
        in
        if skip then loop ()
        else begin
          let key = attempt_key it.parent_path it.idx in
          if Hashtbl.mem attempted key then loop ()
          else begin
            Hashtbl.add attempted key ();
            incr negations_attempted;
            let prefix = Array.to_list (Array.sub it.parent_path 0 it.idx) in
            let prefix_cs =
              it.parent_seeds @ List.map (fun en -> en.Path.constr) prefix
            in
            let negated = Path.negate e.Path.constr in
            let outcome =
              if config.incremental then
                (* the parent's env satisfied the prefix when the parent
                   ran it, so the incremental solver can start repairing at
                   the negation instead of re-verifying the whole prefix *)
                Solver.Inc.solve ~stats:solver_stats
                  ~max_repairs:config.solver_max_repairs ~parent:it.hint
                  ~prefix:prefix_cs [ negated ]
              else
                Solver.solve ~stats:solver_stats
                  ~max_repairs:config.solver_max_repairs ~hint:it.hint
                  (prefix_cs @ [ negated ])
            in
            match outcome with
            | Solver.Unsat ->
              incr negations_unsat;
              loop ()
            | Solver.Gave_up ->
              incr negations_gave_up;
              if Sys.getenv_opt "DICE_DEBUG_SOLVER" <> None then
                Format.eprintf "[solver gave up]@.%a@."
                  (Format.pp_print_list ~pp_sep:Format.pp_print_cut Path.pp_constr)
                  (prefix_cs @ [ negated ]);
              loop ()
            | Solver.Sat model ->
              incr negations_sat;
              let expected =
                Some (Path.Site.id e.Path.site, not e.Path.constr.expected_nonzero)
              in
              let path, seeds, hint, r = execute ~overrides:model ~expected in
              let bound =
                match config.strategy with
                | Strategy.Generational -> it.idx + 1
                | Strategy.Dfs | Strategy.Cover_new | Strategy.Random_negation _ -> 0
              in
              enqueue_children ~path ~seeds ~hint ~bound ~priority:r.new_directions;
              loop ()
          end
        end
      end
    end
  in
  loop ();
  {
    runs = List.rev !rev_runs;
    executions = !executions;
    distinct_paths = Hashtbl.length distinct;
    negations_attempted = !negations_attempted;
    negations_sat = !negations_sat;
    negations_unsat = !negations_unsat;
    negations_gave_up = !negations_gave_up;
    divergences = !divergences;
    program_exns = !program_exns;
    coverage;
    solver_stats;
    space;
    elapsed_s = Unix.gettimeofday () -. t0;
  }

let coverage_ratio report =
  let sites = Coverage.site_count report.coverage in
  if sites = 0 then 1.0
  else float_of_int (Coverage.direction_count report.coverage) /. float_of_int (2 * sites)

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>executions: %d@,distinct paths: %d@,negations: %d attempted, %d sat, %d unsat, %d \
     gave up@,divergences: %d@,program exceptions: %d@,coverage: %d directions over %d sites \
     (%.1f%%)@,solver: %d prefix reuses, %d simplifications, %d scan skips, %d candidates \
     deduped@,elapsed: %.3f s@]"
    r.executions r.distinct_paths r.negations_attempted r.negations_sat r.negations_unsat
    r.negations_gave_up r.divergences r.program_exns
    (Coverage.direction_count r.coverage)
    (Coverage.site_count r.coverage)
    (100.0 *. coverage_ratio r)
    r.solver_stats.Solver.prefix_reuses r.solver_stats.Solver.simplifications
    r.solver_stats.Solver.first_violated_skips r.solver_stats.Solver.candidates_deduped
    r.elapsed_s
