(** Symbolic expressions.

    Fixed-width unsigned bitvector terms over named input variables. These
    are the "shadow" values a concolic execution accumulates alongside the
    concrete run; branch predicates over them become path constraints.

    Widths are in bits, [1..64]; evaluation wraps results to the expression
    width (two's-complement / unsigned semantics, like machine integers).
    Comparison operators produce width-1 values (0 or 1). *)

type var = private { id : int; name : string; width : int }
(** A symbolic input. Ids are globally unique; names are for reporting and
    for mapping solver models back to program inputs. *)

val var : name:string -> width:int -> var
(** Register a fresh variable. @raise Invalid_argument on bad width. *)

val var_named : id:int -> name:string -> width:int -> var
(** Rebuild a variable with a known id (used when replaying explorations
    across cloned contexts, where input order fixes the ids). *)

type unop =
  | Neg   (** two's-complement negation *)
  | Bnot  (** bitwise complement *)
  | Lnot  (** logical not: 1 if operand is 0, else 0; width 1 *)

type binop =
  | Add | Sub | Mul | Udiv | Urem
  | And | Or | Xor | Shl | Lshr
  | Eq | Ne | Ult | Ule | Ugt | Uge  (** unsigned comparisons, width 1 *)

type t =
  | Const of { value : int64; width : int }
  | Var of var
  | Unop of unop * t
  | Binop of binop * t * t

val const : width:int -> int64 -> t
(** Constant, wrapped to [width]. *)

val of_var : var -> t

val width : t -> int
(** Result width: comparisons and [Lnot] are 1; other operators take the
    max of their operand widths. *)

val wrap : int -> int64 -> int64
(** [wrap w v] truncates [v] to its low [w] bits (unsigned). *)

type env = (int, int64) Hashtbl.t
(** Assignment from variable id to (unsigned, already wrapped) value. *)

val eval : env -> t -> int64
(** Evaluate under an assignment. Unbound variables evaluate to 0.
    Division or remainder by zero yields all-ones (hardware-ish total
    semantics; the program under test guards real divisions). *)

val vars : t -> var list
(** Variables occurring in the term, deduplicated, in first-occurrence
    order. *)

val subst_eval_except : env -> keep:int -> t -> t
(** Partially evaluate: replace every variable except the one with id
    [keep] by its value in [env], folding constants. Used by the solver to
    reduce a constraint to a single-variable term. *)

val subst_partial : env -> t -> t
(** Substitute only the variables bound in [env] by their (width-wrapped)
    values, folding operators whose operands become constant; unbound
    variables stay symbolic. Returns the term physically unchanged when no
    bound variable occurs — callers detect "was simplified" with [==].
    Used by the solver's implied-literal propagation pass. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
