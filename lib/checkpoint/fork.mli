(** Process-style checkpoint/clone lifecycle over the CoW {!Store}.

    Mirrors how the DiCE prototype checkpoints BIRD: [checkpoint] is the
    [fork()] that freezes the live process image; each exploration then
    [spawn]s a clone of that checkpoint, runs, and [finish]es with its
    final (mutated) image, at which point the clone's copy-on-write cost —
    unique pages relative to the checkpoint — is assessed and the clone's
    memory is reclaimed. *)

type manager

val create : ?page_size:int -> ?store:Store.t -> unit -> manager
(** [store] backs this manager with an existing (possibly shared)
    {!Store.t} instead of a private one — a fleet hands every domain's
    manager the same store, so checkpoint pages dedup {e across}
    domains and their explorer clones, not just within one manager.
    @raise Invalid_argument if [page_size] is also given and disagrees
    with the shared store's. *)

val store : manager -> Store.t

type checkpoint

val checkpoint : manager -> live_image:bytes -> checkpoint
(** Freeze the live process image. *)

val checkpoint_stats : checkpoint -> live_image:bytes -> int * float
(** [(unique, fraction)]: pages of the checkpoint not shared with the
    given (current) live image — the paper's "checkpoint process has 3.45%
    unique memory pages" metric. *)

val drop_checkpoint : checkpoint -> unit

val checkpoint_image : checkpoint -> bytes
(** The frozen image. *)

type clone

val spawn : checkpoint -> clone
(** Fork an exploration process from the checkpoint (cheap: all pages
    shared). *)

val image : clone -> bytes
(** The clone's initial image (equal to the checkpoint's). *)

type clone_stats = {
  pages : int;  (** size of the clone's final image, in pages *)
  unique : int;  (** final-image pages not shared with the checkpoint *)
  unique_fraction : float;
  extra_fraction : float;
      (** extra footprint relative to the checkpoint's page count — the
          paper's "36.93% more pages" metric *)
}

val finish : clone -> final_image:bytes -> clone_stats
(** Assess CoW cost and reclaim the clone. A clone can be finished once. *)

val live_clones : manager -> int
