type manager = { st : Store.t; clones : int Atomic.t }

let create ?page_size ?store () =
  let st =
    match store with
    | Some st ->
      (match page_size with
      | Some ps when ps <> Store.page_size st ->
        invalid_arg "Fork.create: page_size conflicts with the shared store's"
      | Some _ | None -> ());
      st
    | None -> Store.create ?page_size ()
  in
  { st; clones = Atomic.make 0 }

let store m = m.st

type checkpoint = { mgr : manager; snap : Store.snapshot }

let checkpoint m ~live_image = { mgr = m; snap = Store.capture m.st live_image }

let checkpoint_stats cp ~live_image =
  let live = Store.capture cp.mgr.st live_image in
  let unique = Store.unique_pages cp.snap ~relative_to:live in
  let frac = Store.unique_fraction cp.snap ~relative_to:live in
  Store.release live;
  (unique, frac)

let drop_checkpoint cp = Store.release cp.snap

let checkpoint_image cp = Store.restore cp.snap

type clone = {
  cp : checkpoint;
  mutable snap : Store.snapshot option;  (* None once finished *)
}

let spawn cp =
  Atomic.incr cp.mgr.clones;
  { cp; snap = Some (Store.clone cp.snap) }

let image c =
  match c.snap with
  | Some s -> Store.restore s
  | None -> invalid_arg "Fork.image: clone finished"

type clone_stats = {
  pages : int;
  unique : int;
  unique_fraction : float;
  extra_fraction : float;
}

let finish c ~final_image =
  match c.snap with
  | None -> invalid_arg "Fork.finish: clone already finished"
  | Some s ->
    let final = Store.capture c.cp.mgr.st final_image in
    let pages = Store.snapshot_pages final in
    let unique = Store.unique_pages final ~relative_to:c.cp.snap in
    let unique_fraction = Store.unique_fraction final ~relative_to:c.cp.snap in
    let base = Store.snapshot_pages c.cp.snap in
    let extra_fraction =
      if base = 0 then 0.0 else float_of_int unique /. float_of_int base
    in
    Store.release final;
    Store.release s;
    c.snap <- None;
    Atomic.decr c.cp.mgr.clones;
    { pages; unique; unique_fraction; extra_fraction }

let live_clones m = Atomic.get m.clones
