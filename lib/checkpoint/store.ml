type key = int64 * int

type entry = { data : bytes; mutable refs : int }

type t = {
  page_size : int;
  lock : Mutex.t;
      (* one store backs every clone of a checkpoint; parallel seed
         explorations capture/clone/release from separate domains *)
  pages : (key, entry) Hashtbl.t;
  mutable live : int;
  (* dedup accounting across every capture this store ever served — how
     the fleet measures that checkpoint pages are shared across explorer
     clones (and across domains) instead of duplicated *)
  mutable captures : int;
  mutable page_hits : int;  (* captured pages found already resident *)
  mutable page_inserts : int;  (* captured pages stored fresh *)
}

type snapshot = {
  store : t;
  table : Page.id array;  (* page ids in address order *)
  total_len : int;
  mutable released : bool;
}

let create ?(page_size = Page.default_size) () =
  if page_size <= 0 then invalid_arg "Store.create: page_size must be positive";
  {
    page_size;
    lock = Mutex.create ();
    pages = Hashtbl.create 1024;
    live = 0;
    captures = 0;
    page_hits = 0;
    page_inserts = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let page_size t = t.page_size

let key_of (id : Page.id) : key = (id.hash, id.len)

let capture t state =
  let pages = Page.split ~page_size:t.page_size state in
  locked t (fun () ->
      let table =
        List.map
          (fun ((id : Page.id), data) ->
            (match Hashtbl.find_opt t.pages (key_of id) with
            | Some e ->
              e.refs <- e.refs + 1;
              t.page_hits <- t.page_hits + 1
            | None ->
              Hashtbl.add t.pages (key_of id) { data; refs = 1 };
              t.page_inserts <- t.page_inserts + 1);
            id)
          pages
        |> Array.of_list
      in
      t.captures <- t.captures + 1;
      t.live <- t.live + 1;
      { store = t; table; total_len = Bytes.length state; released = false })

let restore s =
  locked s.store (fun () ->
      if s.released then invalid_arg "Store.restore: snapshot released";
      let out = Bytes.create s.total_len in
      let off = ref 0 in
      Array.iter
        (fun (id : Page.id) ->
          let e = Hashtbl.find s.store.pages (key_of id) in
          Bytes.blit e.data 0 out !off id.len;
          off := !off + id.len)
        s.table;
      out)

let clone s =
  locked s.store (fun () ->
      if s.released then invalid_arg "Store.clone: snapshot released";
      Array.iter
        (fun id ->
          let e = Hashtbl.find s.store.pages (key_of id) in
          e.refs <- e.refs + 1)
        s.table;
      s.store.live <- s.store.live + 1;
      { s with released = false })

let release s =
  locked s.store (fun () ->
      if s.released then invalid_arg "Store.release: already released";
      s.released <- true;
      s.store.live <- s.store.live - 1;
      Array.iter
        (fun id ->
          let k = key_of id in
          let e = Hashtbl.find s.store.pages k in
          e.refs <- e.refs - 1;
          if e.refs = 0 then Hashtbl.remove s.store.pages k)
        s.table)

let snapshot_pages s = Array.length s.table

(* Multiset of page keys. *)
let key_counts s =
  let h = Hashtbl.create (Array.length s.table) in
  Array.iter
    (fun id ->
      let k = key_of id in
      let c = match Hashtbl.find_opt h k with Some c -> c | None -> 0 in
      Hashtbl.replace h k (c + 1))
    s.table;
  h

let shared_pages a b =
  let ca = key_counts a and cb = key_counts b in
  Hashtbl.fold
    (fun k n acc ->
      match Hashtbl.find_opt cb k with
      | Some m -> acc + min n m
      | None -> acc)
    ca 0

let unique_pages s ~relative_to = snapshot_pages s - shared_pages s relative_to

let unique_fraction s ~relative_to =
  let n = snapshot_pages s in
  if n = 0 then 0.0 else float_of_int (unique_pages s ~relative_to) /. float_of_int n

let stored_pages t = locked t (fun () -> Hashtbl.length t.pages)

let resident_bytes t =
  locked t (fun () -> Hashtbl.fold (fun (_, len) _ acc -> acc + len) t.pages 0)

let live_snapshots t = locked t (fun () -> t.live)

let captures t = locked t (fun () -> t.captures)
let page_hits t = locked t (fun () -> t.page_hits)
let page_inserts t = locked t (fun () -> t.page_inserts)

let dedup_ratio t =
  locked t (fun () ->
      let total = t.page_hits + t.page_inserts in
      if total = 0 then 0.0 else float_of_int t.page_hits /. float_of_int total)
