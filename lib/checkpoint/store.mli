(** Copy-on-write snapshot store.

    A {!snapshot} is an immutable image of a serialized state; taking one
    from a nearly-identical state shares pages with every image already in
    the store. This is the reproduction's stand-in for checkpointing via
    [fork()] (paper §3.2): checkpoints are cheap because the live process
    and its checkpoint share all pages; explorer clones pay only for the
    pages they touch. *)

type t
(** The store: refcounted page contents keyed by content identity. *)

type snapshot
(** An immutable page-table over the store. Release with {!release}. *)

val create : ?page_size:int -> unit -> t
(** [page_size] defaults to {!Page.default_size}. *)

val page_size : t -> int

val capture : t -> bytes -> snapshot
(** Snapshot a serialized state. Pages already present are shared, new
    pages are inserted with refcount 1. *)

val restore : snapshot -> bytes
(** Reassemble the serialized state. *)

val clone : snapshot -> snapshot
(** Cheap logical copy (all pages shared; refcounts bumped). *)

val release : snapshot -> unit
(** Drop a snapshot; pages with no remaining references are evicted.
    Releasing twice is an error. *)

val snapshot_pages : snapshot -> int
(** Pages referenced by this snapshot. *)

val shared_pages : snapshot -> snapshot -> int
(** Pages the two snapshots have in common (by content, position-blind). *)

val unique_pages : snapshot -> relative_to:snapshot -> int
(** Pages of the first snapshot not present in [relative_to] — the paper's
    "unique memory pages" metric for a checkpoint or clone. *)

val unique_fraction : snapshot -> relative_to:snapshot -> float
(** [unique_pages / snapshot_pages], in [\[0, 1\]]; [0.] for an empty
    snapshot. *)

val stored_pages : t -> int
(** Distinct page contents currently resident. *)

val resident_bytes : t -> int
(** Total bytes of distinct resident pages. *)

val live_snapshots : t -> int

(** {1 Cross-capture dedup accounting}

    Lifetime counters over every {!capture} the store served — the
    fleet-scale measurement that checkpoint pages are {e shared} across
    explorer clones (and across the domains of a fleet when they back
    their checkpoints with one store) rather than duplicated. *)

val captures : t -> int
(** {!capture} calls so far. *)

val page_hits : t -> int
(** Captured pages that were already resident (content-identical to a
    page some earlier capture stored) — each one is a page of memory a
    clone did {e not} cost. *)

val page_inserts : t -> int
(** Captured pages stored fresh. *)

val dedup_ratio : t -> float
(** [page_hits / (page_hits + page_inserts)], in [\[0, 1\]]; [0.]
    before any capture. Near [1.0] when clones barely diverge from
    their checkpoint — the flat-memory regime the paper's fork()-style
    checkpointing relies on. *)
