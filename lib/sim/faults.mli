(** Per-link fault models for the simulated network.

    A link with a fault model misbehaves in controlled, reproducible
    ways: frames are dropped, duplicated, reordered (held back behind
    later sends), jittered, or bit-flipped, each decision drawn from the
    network's dedicated deterministic fault RNG stream
    ({!Network.set_fault_seed}) so any failing run replays exactly from
    its seed. This is the hostile inter-AS link of the paper's federated
    setting: the probe protocol must stay correct when the transport
    does not. *)

type t = {
  drop : float;  (** probability a frame is silently lost in transit *)
  duplicate : float;
      (** probability a frame is delivered twice; the copy draws its own
          reorder/jitter hold, so it can arrive before the original *)
  reorder : int;
      (** reorder window: each frame is independently held back for up
          to [reorder] extra link latencies, letting up to roughly
          [reorder] later sends overtake it. Needs a positive link
          latency to have any effect. *)
  jitter : float;
      (** uniform extra delivery latency in [\[0, jitter)] seconds *)
  corrupt : float;
      (** probability one random bit of the frame is flipped in transit
          (the receiver gets the damaged copy; the sender's buffer is
          never touched) *)
}

val none : t
(** The reliable link: all rates zero — byte-identical, exactly-once,
    in-order delivery. *)

val make :
  ?drop:float ->
  ?duplicate:float ->
  ?reorder:int ->
  ?jitter:float ->
  ?corrupt:float ->
  unit ->
  t
(** Build a validated model; omitted fields default to {!none}'s zeros.
    @raise Invalid_argument as {!validate}. *)

val validate : t -> unit
(** @raise Invalid_argument if a probability is outside [\[0, 1\]] or
    NaN, [reorder] is negative, or [jitter] is negative, NaN or
    infinite. *)

val is_none : t -> bool
(** [true] iff the model never perturbs a frame. *)

val pp : Format.formatter -> t -> unit

(** {1 Node crash model}

    Where {!t} perturbs a {e link}, {!node} perturbs a {e node}: with
    probability [crash] per frame arriving at the node, the node crashes
    (is paused) just before processing that frame and restarts
    [downtime] virtual seconds later. The triggering frame and anything
    arriving during the outage are buffered and redelivered on restart
    ({!Network.resume_node} semantics), so a crash costs time, not data
    — lost probes come from the timeouts the outage induces. Crash
    decisions draw from a dedicated RNG stream
    ({!Network.set_crash_seed}), so a crash schedule replays exactly
    from its seed, independently of the link-fault stream. *)

type node = {
  crash : float;  (** probability the node crashes on a frame arrival *)
  downtime : float;  (** virtual seconds until the automatic restart *)
}

val node_none : node
(** The reliable node: never crashes. *)

val node : ?crash:float -> ?downtime:float -> unit -> node
(** Build a validated model; omitted fields default to zero.
    @raise Invalid_argument as {!validate_node}. *)

val validate_node : node -> unit
(** @raise Invalid_argument if [crash] is outside [\[0, 1\]] or NaN, or
    [downtime] is negative, NaN or infinite. *)

val node_is_none : node -> bool
(** [true] iff the node never crashes. *)

val pp_node : Format.formatter -> node -> unit
