(** Discrete-event simulated network.

    Nodes exchange opaque byte messages over point-to-point links with
    latency; a virtual clock advances from event to event. This is the
    stand-in for the paper's testbed of BIRD instances on virtual
    interfaces: deterministic, and fast enough to replay full routing
    tables.

    Links are reliable and in-order by default. A per-link {!Faults.t}
    model ({!set_faults}) makes a link hostile — loss, duplication,
    reordering, jitter, corruption — with every decision drawn from a
    dedicated deterministic RNG stream ({!set_fault_seed}), so a failing
    run replays exactly from its seed. Nodes can also crash and restart
    ({!pause_node}/{!resume_node}). *)

type node_id = int

type t

type handler = t -> self:node_id -> from:node_id -> bytes -> unit
(** Invoked when a message is delivered to a node. *)

val create : unit -> t

val now : t -> float
(** Current virtual time, seconds. *)

val add_node : t -> name:string -> handler:handler -> node_id
(** Register a node. Ids are dense, starting at 0. *)

val set_handler : t -> node_id -> handler -> unit
(** Replace a node's handler (for wiring circular dependencies). *)

val node_name : t -> node_id -> string
val node_count : t -> int

val connect : t -> node_id -> node_id -> latency:float -> unit
(** Create a bidirectional link. Reconnecting updates the latency.
    @raise Invalid_argument if [latency] is negative, NaN or infinite
    (a NaN latency would silently schedule deliveries in the virtual
    past). *)

val disconnect : t -> node_id -> node_id -> unit

val connected : t -> node_id -> node_id -> bool
val neighbors : t -> node_id -> node_id list

(** {1 Fault injection}

    Fault decisions are drawn, in a fixed per-frame order, from one
    dedicated RNG stream per network — separate from every other
    randomized subsystem, so the fault schedule depends only on the
    fault seed and the (deterministic) order of sends. Equal seed, equal
    send sequence: equal drops, duplicates, holds and bit flips. *)

val set_fault_seed : t -> int64 -> unit
(** Reset the fault RNG stream. Networks start from a fixed default
    seed, so fault injection is reproducible even without calling this;
    set it explicitly to explore (and later replay) other schedules. *)

val set_faults : t -> node_id -> node_id -> Faults.t -> unit
(** Attach a fault model to the link between two nodes (both
    directions). Setting {!Faults.none} is the same as {!clear_faults}.
    Applies to frames sent after the call; frames already in flight keep
    the fate they were dealt.
    @raise Invalid_argument as {!Faults.validate}, or if either node is
    unknown. The link itself need not exist yet: faults attach to the
    node pair. *)

val clear_faults : t -> node_id -> node_id -> unit
(** Back to reliable in-order delivery. *)

val link_faults : t -> node_id -> node_id -> Faults.t option

val messages_dropped : t -> int
(** Frames lost to link faults so far. *)

val messages_duplicated : t -> int
(** Extra copies injected by link faults so far. *)

val messages_reordered : t -> int
(** Arrivals that overtook an earlier send on the same directed link: a
    frame (or duplicate) arriving after a later-sent frame has already
    arrived counts once. Only faulty links are tracked. *)

val messages_corrupted : t -> int
(** Frames delivered with a flipped bit so far. *)

(** {1 Node crash/restart}

    [pause_node] models a crashed (or rebooting) node. Queued-delivery
    semantics: frames that {e arrive} while a node is paused are
    buffered at the node, in arrival order, and are not counted as
    delivered; [resume_node] re-enqueues them for immediate delivery in
    that same order (Eventq's FIFO tie-breaking keeps it). A paused node
    cannot transmit — {!send} from it raises — but frames it sent before
    pausing are already in flight and still arrive, and virtual timers
    ({!schedule}) are unaffected: they belong to whoever scheduled them,
    not to a node. Both operations are idempotent.

    Crashes can also be {e scheduled}: a per-node {!Faults.node} model
    ({!set_node_faults}) crashes the node with probability [crash] on
    each frame arrival (the frame is buffered, not lost) and restarts it
    [downtime] virtual seconds later, with every decision drawn from a
    dedicated crash RNG stream ({!set_crash_seed}) — a crash schedule
    replays exactly from its seed, independently of link faults. *)

val pause_node : t -> node_id -> unit
val resume_node : t -> node_id -> unit
(** Resuming a paused node counts one restart, counts its buffered
    frames as requeued ({!messages_requeued}), re-enqueues them, and
    then runs the node's restart hook ({!set_restart_hook}), if any,
    before any redelivered frame is processed. *)

val paused : t -> node_id -> bool

val queued : t -> node_id -> int
(** Frames currently buffered at a paused node (0 when running). *)

val default_crash_seed : int64
(** The crash RNG's fixed default seed. *)

val set_crash_seed : t -> int64 -> unit
(** Reset the crash RNG stream (fixed default seed, like the fault
    stream — distinct from it, so link faults and crash schedules
    replay independently). *)

val set_node_faults : t -> node_id -> Faults.node -> unit
(** Attach a crash model to a node. {!Faults.node_none} clears it.
    @raise Invalid_argument as {!Faults.validate_node}, or on an
    unknown node. *)

val clear_node_faults : t -> node_id -> unit
val node_faults : t -> node_id -> Faults.node option

val set_restart_hook : t -> node_id -> (unit -> unit) -> unit
(** Run a thunk each time the node resumes from a pause — scheduled
    crash or manual {!resume_node} alike. This is where a crashed agent
    rebuilds its state and re-announces liveness. One hook per node;
    setting replaces. *)

val clear_restart_hook : t -> node_id -> unit

val messages_requeued : t -> int
(** Frames redelivered by {!resume_node} so far (buffered during a
    pause, re-enqueued at restart). *)

val node_crashes : t -> int
(** Scheduled crashes fired so far (manual {!pause_node} not
    included). *)

val node_restarts : t -> int
(** Resumes of actually-paused nodes so far (scheduled and manual). *)

val send : t -> src:node_id -> dst:node_id -> bytes -> unit
(** Queue a message for delivery after the link latency, subject to the
    link's fault model, if any.
    @raise Invalid_argument if the nodes are not connected or [src] is
    paused. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Run a thunk after a virtual delay (timers).
    @raise Invalid_argument if [delay] is negative, NaN or infinite. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** @raise Invalid_argument if [time] is in the virtual past or NaN. *)

val step : t -> bool
(** Process the earliest pending event. [false] if none remain. *)

val run : ?until:float -> ?max_events:int -> t -> int
(** Process events until the queue is empty, virtual time would pass
    [until], or [max_events] have fired. Returns events processed. Events
    at exactly [until] do fire. *)

val pending : t -> int

val messages_sent : t -> int
(** [send] calls that were accepted (dropped frames count: they were
    sent, the link lost them; injected duplicates do not). *)

val messages_delivered : t -> int
(** Frames actually handed to a running node's handler. *)
