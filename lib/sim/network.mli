(** Discrete-event simulated network.

    Nodes exchange opaque byte messages over point-to-point links with
    latency; a virtual clock advances from event to event. This is the
    stand-in for the paper's testbed of BIRD instances on virtual
    interfaces: deterministic, and fast enough to replay full routing
    tables.

    Links are reliable and in-order by default. A per-link {!Faults.t}
    model ({!set_faults}) makes a link hostile — loss, duplication,
    reordering, jitter, corruption — with every decision drawn from a
    dedicated deterministic RNG stream ({!set_fault_seed}), so a failing
    run replays exactly from its seed. Nodes can also crash and restart
    ({!pause_node}/{!resume_node}). *)

type node_id = int

type t

type handler = t -> self:node_id -> from:node_id -> bytes -> unit
(** Invoked when a message is delivered to a node. *)

val create : unit -> t

val now : t -> float
(** Current virtual time, seconds. *)

val add_node : t -> name:string -> handler:handler -> node_id
(** Register a node. Ids are dense, starting at 0. *)

val set_handler : t -> node_id -> handler -> unit
(** Replace a node's handler (for wiring circular dependencies). *)

val node_name : t -> node_id -> string
val node_count : t -> int

val connect : t -> node_id -> node_id -> latency:float -> unit
(** Create a bidirectional link. Reconnecting updates the latency.
    @raise Invalid_argument if [latency] is negative, NaN or infinite
    (a NaN latency would silently schedule deliveries in the virtual
    past). *)

val disconnect : t -> node_id -> node_id -> unit

val connected : t -> node_id -> node_id -> bool
val neighbors : t -> node_id -> node_id list

(** {1 Fault injection}

    Fault decisions are drawn, in a fixed per-frame order, from one
    dedicated RNG stream per network — separate from every other
    randomized subsystem, so the fault schedule depends only on the
    fault seed and the (deterministic) order of sends. Equal seed, equal
    send sequence: equal drops, duplicates, holds and bit flips. *)

val set_fault_seed : t -> int64 -> unit
(** Reset the fault RNG stream. Networks start from a fixed default
    seed, so fault injection is reproducible even without calling this;
    set it explicitly to explore (and later replay) other schedules. *)

val set_faults : t -> node_id -> node_id -> Faults.t -> unit
(** Attach a fault model to the link between two nodes (both
    directions). Setting {!Faults.none} is the same as {!clear_faults}.
    Applies to frames sent after the call; frames already in flight keep
    the fate they were dealt.
    @raise Invalid_argument as {!Faults.validate}, or if either node is
    unknown. The link itself need not exist yet: faults attach to the
    node pair. *)

val clear_faults : t -> node_id -> node_id -> unit
(** Back to reliable in-order delivery. *)

val link_faults : t -> node_id -> node_id -> Faults.t option

val messages_dropped : t -> int
(** Frames lost to link faults so far. *)

val messages_duplicated : t -> int
(** Extra copies injected by link faults so far. *)

val messages_reordered : t -> int
(** Arrivals that overtook an earlier send on the same directed link: a
    frame (or duplicate) arriving after a later-sent frame has already
    arrived counts once. Only faulty links are tracked. *)

val messages_corrupted : t -> int
(** Frames delivered with a flipped bit so far. *)

(** {1 Node crash/restart}

    [pause_node] models a crashed (or rebooting) node. Queued-delivery
    semantics: frames that {e arrive} while a node is paused are
    buffered at the node, in arrival order, and are not counted as
    delivered; [resume_node] re-enqueues them for immediate delivery in
    that same order (Eventq's FIFO tie-breaking keeps it). A paused node
    cannot transmit — {!send} from it raises — but frames it sent before
    pausing are already in flight and still arrive, and virtual timers
    ({!schedule}) are unaffected: they belong to whoever scheduled them,
    not to a node. Both operations are idempotent. *)

val pause_node : t -> node_id -> unit
val resume_node : t -> node_id -> unit

val paused : t -> node_id -> bool

val queued : t -> node_id -> int
(** Frames currently buffered at a paused node (0 when running). *)

val send : t -> src:node_id -> dst:node_id -> bytes -> unit
(** Queue a message for delivery after the link latency, subject to the
    link's fault model, if any.
    @raise Invalid_argument if the nodes are not connected or [src] is
    paused. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Run a thunk after a virtual delay (timers).
    @raise Invalid_argument if [delay] is negative, NaN or infinite. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** @raise Invalid_argument if [time] is in the virtual past or NaN. *)

val step : t -> bool
(** Process the earliest pending event. [false] if none remain. *)

val run : ?until:float -> ?max_events:int -> t -> int
(** Process events until the queue is empty, virtual time would pass
    [until], or [max_events] have fired. Returns events processed. Events
    at exactly [until] do fire. *)

val pending : t -> int

val messages_sent : t -> int
(** [send] calls that were accepted (dropped frames count: they were
    sent, the link lost them; injected duplicates do not). *)

val messages_delivered : t -> int
(** Frames actually handed to a running node's handler. *)
