module Rng = Dice_util.Rng

type node_id = int

type event =
  | Deliver of { src : node_id; dst : node_id; msg : bytes; seq : int }
      (* [seq] is the per-directed-link transmission number on faulty
         links, used to detect reordered arrivals; [-1] on reliable
         links and on re-deliveries after a resume (already counted). *)
  | Thunk of (unit -> unit)

type t = {
  mutable clock : float;
  queue : event Eventq.t;
  mutable names : string array;
  mutable handlers : handler array;
  mutable n : int;
  links : (node_id * node_id, float) Hashtbl.t;  (* key has lower id first *)
  faults : (node_id * node_id, Faults.t) Hashtbl.t;  (* same keying *)
  mutable fault_rng : Rng.t;
  node_faults : (node_id, Faults.node) Hashtbl.t;
  mutable crash_rng : Rng.t;  (* crash schedule stream, separate from link faults *)
  restart_hooks : (node_id, unit -> unit) Hashtbl.t;
  send_seq : (node_id * node_id, int) Hashtbl.t;  (* directed, faulty links only *)
  deliv_hi : (node_id * node_id, int) Hashtbl.t;  (* highest seq delivered *)
  paused : (node_id, (node_id * bytes) Queue.t) Hashtbl.t;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable corrupted : int;
  mutable requeued : int;
  mutable crashes : int;
  mutable restarts : int;
}

and handler = t -> self:node_id -> from:node_id -> bytes -> unit

let no_handler : handler = fun _ ~self:_ ~from:_ _ -> ()

let default_fault_seed = 0x0D1CEL
let default_crash_seed = 0xC4A54EL

let create () =
  {
    clock = 0.0;
    queue = Eventq.create ();
    names = [||];
    handlers = [||];
    n = 0;
    links = Hashtbl.create 16;
    faults = Hashtbl.create 4;
    fault_rng = Rng.create default_fault_seed;
    node_faults = Hashtbl.create 4;
    crash_rng = Rng.create default_crash_seed;
    restart_hooks = Hashtbl.create 4;
    send_seq = Hashtbl.create 4;
    deliv_hi = Hashtbl.create 4;
    paused = Hashtbl.create 4;
    sent = 0;
    delivered = 0;
    dropped = 0;
    duplicated = 0;
    reordered = 0;
    corrupted = 0;
    requeued = 0;
    crashes = 0;
    restarts = 0;
  }

let now t = t.clock

let add_node t ~name ~handler =
  let id = t.n in
  if id >= Array.length t.names then begin
    let cap = max 8 (2 * Array.length t.names) in
    let nn = Array.make cap "" and nh = Array.make cap no_handler in
    Array.blit t.names 0 nn 0 t.n;
    Array.blit t.handlers 0 nh 0 t.n;
    t.names <- nn;
    t.handlers <- nh
  end;
  t.names.(id) <- name;
  t.handlers.(id) <- handler;
  t.n <- t.n + 1;
  id

let check_node t id fn =
  if id < 0 || id >= t.n then invalid_arg (Printf.sprintf "Network.%s: unknown node %d" fn id)

let set_handler t id h =
  check_node t id "set_handler";
  t.handlers.(id) <- h

let node_name t id =
  check_node t id "node_name";
  t.names.(id)

let node_count t = t.n

let link_key a b = if a <= b then (a, b) else (b, a)

(* [v < 0.0] alone lets NaN through (every comparison with NaN is
   false), silently scheduling events in the virtual past — reject it
   explicitly. *)
let check_duration v fn what =
  if not (v >= 0.0 && v < Float.infinity) then
    invalid_arg (Printf.sprintf "Network.%s: %s must be finite and non-negative" fn what)

let connect t a b ~latency =
  check_node t a "connect";
  check_node t b "connect";
  if a = b then invalid_arg "Network.connect: self-link";
  check_duration latency "connect" "latency";
  Hashtbl.replace t.links (link_key a b) latency

let disconnect t a b = Hashtbl.remove t.links (link_key a b)

let connected t a b = Hashtbl.mem t.links (link_key a b)

let neighbors t id =
  check_node t id "neighbors";
  Hashtbl.fold
    (fun (a, b) _ acc ->
      if a = id then b :: acc else if b = id then a :: acc else acc)
    t.links []
  |> List.sort compare

(* ---- fault injection ---- *)

let set_fault_seed t seed = t.fault_rng <- Rng.create seed

let set_faults t a b f =
  check_node t a "set_faults";
  check_node t b "set_faults";
  Faults.validate f;
  if Faults.is_none f then Hashtbl.remove t.faults (link_key a b)
  else Hashtbl.replace t.faults (link_key a b) f

let clear_faults t a b = Hashtbl.remove t.faults (link_key a b)

let link_faults t a b = Hashtbl.find_opt t.faults (link_key a b)

(* ---- node crash faults ---- *)

let set_crash_seed t seed = t.crash_rng <- Rng.create seed

let set_node_faults t id nf =
  check_node t id "set_node_faults";
  Faults.validate_node nf;
  if Faults.node_is_none nf then Hashtbl.remove t.node_faults id
  else Hashtbl.replace t.node_faults id nf

let clear_node_faults t id = Hashtbl.remove t.node_faults id

let node_faults t id = Hashtbl.find_opt t.node_faults id

let set_restart_hook t id hook =
  check_node t id "set_restart_hook";
  Hashtbl.replace t.restart_hooks id hook

let clear_restart_hook t id = Hashtbl.remove t.restart_hooks id

let messages_dropped t = t.dropped
let messages_duplicated t = t.duplicated
let messages_reordered t = t.reordered
let messages_corrupted t = t.corrupted
let messages_requeued t = t.requeued
let node_crashes t = t.crashes
let node_restarts t = t.restarts

let paused t id =
  check_node t id "paused";
  Hashtbl.mem t.paused id

let queued t id =
  check_node t id "queued";
  match Hashtbl.find_opt t.paused id with
  | None -> 0
  | Some q -> Queue.length q

let pause_node t id =
  check_node t id "pause_node";
  if not (Hashtbl.mem t.paused id) then Hashtbl.add t.paused id (Queue.create ())

let resume_node t id =
  check_node t id "resume_node";
  match Hashtbl.find_opt t.paused id with
  | None -> ()
  | Some q ->
    Hashtbl.remove t.paused id;
    t.restarts <- t.restarts + 1;
    t.requeued <- t.requeued + Queue.length q;
    (* re-enqueue at the current instant, in arrival order; Eventq's
       FIFO tie-breaking preserves that order against anything else
       scheduled at this time *)
    Queue.iter
      (fun (src, msg) ->
        Eventq.push t.queue ~time:t.clock (Deliver { src; dst = id; msg; seq = -1 }))
      q;
    (* the restart hook runs after the node is live again but before
       any redelivered frame is processed — where an agent rebuilds its
       state and re-announces liveness *)
    match Hashtbl.find_opt t.restart_hooks id with
    | Some hook -> hook ()
    | None -> ()

let flip_random_bit rng msg =
  let b = Bytes.copy msg in
  let i = Rng.int rng (Bytes.length b) in
  let bit = Rng.int rng 8 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
  b

let next_seq t ~src ~dst =
  let key = (src, dst) in
  let s = Option.value (Hashtbl.find_opt t.send_seq key) ~default:0 in
  Hashtbl.replace t.send_seq key (s + 1);
  s

let send t ~src ~dst msg =
  check_node t src "send";
  check_node t dst "send";
  if Hashtbl.mem t.paused src then
    invalid_arg (Printf.sprintf "Network.send: %s is paused" t.names.(src));
  match Hashtbl.find_opt t.links (link_key src dst) with
  | None ->
    invalid_arg
      (Printf.sprintf "Network.send: %s and %s are not connected" t.names.(src) t.names.(dst))
  | Some latency -> begin
    t.sent <- t.sent + 1;
    match Hashtbl.find_opt t.faults (link_key src dst) with
    | None -> Eventq.push t.queue ~time:(t.clock +. latency) (Deliver { src; dst; msg; seq = -1 })
    | Some f ->
      let rng = t.fault_rng in
      if f.Faults.drop > 0.0 && Rng.chance rng f.Faults.drop then
        t.dropped <- t.dropped + 1
      else begin
        let msg =
          if f.Faults.corrupt > 0.0 && Bytes.length msg > 0 && Rng.chance rng f.Faults.corrupt
          then begin
            t.corrupted <- t.corrupted + 1;
            flip_random_bit rng msg
          end
          else msg
        in
        (* each copy draws its own hold, so frames (and duplicates)
           overtake each other within the reorder window *)
        let hold () =
          (if f.Faults.jitter > 0.0 then Rng.float rng f.Faults.jitter else 0.0)
          +.
          if f.Faults.reorder > 0 then
            float_of_int (Rng.int rng (f.Faults.reorder + 1)) *. latency
          else 0.0
        in
        let seq = next_seq t ~src ~dst in
        let deliver () =
          Eventq.push t.queue ~time:(t.clock +. latency +. hold ()) (Deliver { src; dst; msg; seq })
        in
        deliver ();
        if f.Faults.duplicate > 0.0 && Rng.chance rng f.Faults.duplicate then begin
          t.duplicated <- t.duplicated + 1;
          deliver ()
        end
      end
  end

let schedule t ~delay thunk =
  check_duration delay "schedule" "delay";
  Eventq.push t.queue ~time:(t.clock +. delay) (Thunk thunk)

let schedule_at t ~time thunk =
  if Float.is_nan time then invalid_arg "Network.schedule_at: NaN time";
  if time < t.clock then invalid_arg "Network.schedule_at: time in the past";
  Eventq.push t.queue ~time (Thunk thunk)

let dispatch t = function
  | Deliver { src; dst; msg; seq } -> begin
    if seq >= 0 then begin
      (* arrival-order accounting happens when the frame reaches the
         node, whether or not the node is awake to process it *)
      let key = (src, dst) in
      let hi = Option.value (Hashtbl.find_opt t.deliv_hi key) ~default:(-1) in
      if seq < hi then t.reordered <- t.reordered + 1
      else Hashtbl.replace t.deliv_hi key seq
    end;
    (* crash schedule: a crash-prone running node may crash just before
       processing this frame — the frame is buffered, not lost, and the
       node restarts automatically after its downtime *)
    (match Hashtbl.find_opt t.node_faults dst with
    | Some nf
      when (not (Hashtbl.mem t.paused dst))
           && nf.Faults.crash > 0.0
           && Rng.chance t.crash_rng nf.Faults.crash ->
      t.crashes <- t.crashes + 1;
      pause_node t dst;
      Eventq.push t.queue ~time:(t.clock +. nf.Faults.downtime)
        (Thunk (fun () -> resume_node t dst))
    | Some _ | None -> ());
    match Hashtbl.find_opt t.paused dst with
    | Some q -> Queue.push (src, msg) q
    | None ->
      t.delivered <- t.delivered + 1;
      t.handlers.(dst) t ~self:dst ~from:src msg
  end
  | Thunk f -> f ()

let step t =
  match Eventq.pop t.queue with
  | None -> false
  | Some (time, ev) ->
    t.clock <- max t.clock time;
    dispatch t ev;
    true

let run ?until ?max_events t =
  let fired = ref 0 in
  let continue = ref true in
  while !continue do
    let budget_ok =
      match max_events with
      | Some m -> !fired < m
      | None -> true
    in
    if not budget_ok then continue := false
    else begin
      match Eventq.peek_time t.queue with
      | None -> continue := false
      | Some time -> begin
        match until with
        | Some u when time > u ->
          t.clock <- max t.clock u;
          continue := false
        | Some _ | None ->
          ignore (step t);
          incr fired
      end
    end
  done;
  !fired

let pending t = Eventq.size t.queue

let messages_sent t = t.sent
let messages_delivered t = t.delivered
