type t = {
  drop : float;
  duplicate : float;
  reorder : int;
  jitter : float;
  corrupt : float;
}

let none = { drop = 0.0; duplicate = 0.0; reorder = 0; jitter = 0.0; corrupt = 0.0 }

let bad fmt = Printf.ksprintf invalid_arg fmt

let check_probability name p =
  (* [not (p >= 0.0 && p <= 1.0)] also catches NaN *)
  if not (p >= 0.0 && p <= 1.0) then bad "Faults.%s: probability %f outside [0, 1]" name p

let validate t =
  check_probability "drop" t.drop;
  check_probability "duplicate" t.duplicate;
  check_probability "corrupt" t.corrupt;
  if t.reorder < 0 then bad "Faults.reorder: negative window %d" t.reorder;
  if not (t.jitter >= 0.0 && t.jitter < Float.infinity) then
    bad "Faults.jitter: %f is not finite and non-negative" t.jitter

let make ?(drop = 0.0) ?(duplicate = 0.0) ?(reorder = 0) ?(jitter = 0.0) ?(corrupt = 0.0) () =
  let t = { drop; duplicate; reorder; jitter; corrupt } in
  validate t;
  t

let is_none t =
  t.drop = 0.0 && t.duplicate = 0.0 && t.reorder = 0 && t.jitter = 0.0 && t.corrupt = 0.0

let pp ppf t =
  Format.fprintf ppf "drop=%.2f dup=%.2f reorder=%d jitter=%.3fs corrupt=%.2f" t.drop
    t.duplicate t.reorder t.jitter t.corrupt

(* ---- node crash model ---- *)

type node = {
  crash : float;
  downtime : float;
}

let node_none = { crash = 0.0; downtime = 0.0 }

let validate_node n =
  check_probability "crash" n.crash;
  if not (n.downtime >= 0.0 && n.downtime < Float.infinity) then
    bad "Faults.downtime: %f is not finite and non-negative" n.downtime

let node ?(crash = 0.0) ?(downtime = 0.0) () =
  let n = { crash; downtime } in
  validate_node n;
  n

let node_is_none n = n.crash = 0.0

let pp_node ppf n =
  Format.fprintf ppf "crash=%.2f downtime=%.3fs" n.crash n.downtime
