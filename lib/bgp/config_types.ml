open Dice_inet

type policy =
  | All
  | Nothing
  | Use_filter of Filter.t

let pp_policy ppf = function
  | All -> Format.fprintf ppf "all"
  | Nothing -> Format.fprintf ppf "none"
  | Use_filter f -> Format.fprintf ppf "filter %s" f.Filter.name

type peer_cfg = {
  name : string;
  neighbor : Ipv4.t;
  remote_as : int;
  import_policy : policy;
  export_policy : policy;
  hold_time : float;
  keepalive_time : float;
  connect_retry_time : float;
}

type t = {
  router_id : Ipv4.t;
  local_as : int;
  peers : peer_cfg list;
  static_routes : (Prefix.t * Ipv4.t) list;
  filters : Filter.t list;
  anycast : Prefix.t list;
}

let default_peer ~name ~neighbor ~remote_as =
  {
    name;
    neighbor;
    remote_as;
    import_policy = All;
    export_policy = All;
    hold_time = 90.0;
    keepalive_time = 30.0;
    connect_retry_time = 5.0;
  }

(* find_filter/find_peer return the first hit, so a duplicate name would
   silently shadow its twin — refuse it up front. *)
let check_distinct what key l =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun x ->
      let k = key x in
      if Hashtbl.mem seen k then
        invalid_arg (Printf.sprintf "Config_types.make: duplicate %s %S" what k);
      Hashtbl.add seen k ())
    l

let make ~router_id ~local_as ?(peers = []) ?(static_routes = []) ?(filters = [])
    ?(anycast = []) () =
  check_distinct "filter" (fun f -> f.Filter.name) filters;
  check_distinct "peer" (fun p -> p.name) peers;
  check_distinct "peer neighbor" (fun p -> Ipv4.to_string p.neighbor) peers;
  { router_id; local_as; peers; static_routes; filters; anycast }

let find_filter t name = List.find_opt (fun f -> f.Filter.name = name) t.filters

let find_peer t addr = List.find_opt (fun p -> p.neighbor = addr) t.peers
