(** Shared configuration types (split out to keep the filter interpreter
    independent of the config parser). *)

open Dice_inet

type policy =
  | All  (** accept/advertise everything *)
  | Nothing  (** accept/advertise nothing *)
  | Use_filter of Filter.t

val pp_policy : Format.formatter -> policy -> unit

type peer_cfg = {
  name : string;
  neighbor : Ipv4.t;
  remote_as : int;
  import_policy : policy;
  export_policy : policy;
  hold_time : float;  (** seconds; default 90 *)
  keepalive_time : float;  (** seconds; default hold/3 *)
  connect_retry_time : float;  (** seconds; default 5 *)
}

type t = {
  router_id : Ipv4.t;
  local_as : int;
  peers : peer_cfg list;
  static_routes : (Prefix.t * Ipv4.t) list;  (** prefix, next hop *)
  filters : Filter.t list;  (** named filters, for reference *)
  anycast : Prefix.t list;
      (** prefixes whose origin legitimately varies (hijack-checker
          whitelist, paper §4.2) *)
}

val default_peer : name:string -> neighbor:Ipv4.t -> remote_as:int -> peer_cfg
(** Import/export [All], hold 90 s, keepalive 30 s, connect-retry 5 s. *)

val make :
  router_id:Ipv4.t ->
  local_as:int ->
  ?peers:peer_cfg list ->
  ?static_routes:(Prefix.t * Ipv4.t) list ->
  ?filters:Filter.t list ->
  ?anycast:Prefix.t list ->
  unit ->
  t
(** @raise Invalid_argument on a duplicate filter name, peer name, or
    peer neighbor address — {!find_filter}/{!find_peer} return the
    first hit, so duplicates would silently shadow each other. *)

val find_filter : t -> string -> Filter.t option
val find_peer : t -> Ipv4.t -> peer_cfg option
