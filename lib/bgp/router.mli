(** The BGP routing daemon: sessions, RIBs, import/export policy and the
    decision process, behind an explicit-output interface.

    All side effects (messages to send, timers to arm) are returned as
    {!output} values, which keeps the daemon deterministic, testable, and
    — crucially for DiCE — {e checkpointable}: {!snapshot} serializes all
    dynamic state and {!restore} rebuilds an equivalent router, which is
    how exploration clones are created from the live process image.

    Update processing is written against the concolic value API; with the
    default null context it runs purely concretely ("virtually no
    overhead", paper §3.2), while exploration passes a recording context
    and a symbolized route. *)

open Dice_inet
open Dice_concolic

type t

type output =
  | To_peer of Ipv4.t * Msg.t  (** transmit on an (established) session *)
  | Connect_request of Ipv4.t  (** open the transport towards a neighbor *)
  | Close_connection of Ipv4.t
  | Set_timer of Ipv4.t * Fsm.timer * float  (** (re)arm, seconds from now *)
  | Clear_timer of Ipv4.t * Fsm.timer
  | Session_up of Ipv4.t
  | Session_down of Ipv4.t * string

val create : Config_types.t -> t
(** Build a router: static routes are installed in the Loc-RIB; sessions
    start in Idle. *)

val config : t -> Config_types.t
val local_as : t -> int
val router_id : t -> Ipv4.t

(** {1 Session driving} *)

val start : t -> output list
(** ManualStart every configured peer. *)

val handle_event : t -> peer:Ipv4.t -> Fsm.event -> output list
(** Feed one FSM event (transport up/down, timer expiry, ...). Unknown
    peers are ignored (empty output). *)

val handle_msg : ?ctx:Engine.ctx -> t -> peer:Ipv4.t -> Msg.t -> output list
(** Feed a received BGP message; UPDATEs delivered by the FSM go through
    import policy, the decision process, and export. [ctx] defaults to a
    null (non-recording) context. *)

val handle_bytes : ?ctx:Engine.ctx -> t -> peer:Ipv4.t -> bytes -> output list
(** Decode and [handle_msg]; malformed messages produce the RFC-mandated
    NOTIFICATION and session teardown. *)

val peer_state : t -> Ipv4.t -> Fsm.state option
val established_peers : t -> Ipv4.t list

(** {1 RIB inspection} *)

val loc_rib : t -> Rib.Loc.t
val adj_rib_in : t -> Ipv4.t -> Rib.Adj.t option
val adj_rib_out : t -> Ipv4.t -> Rib.Adj.t option
val best_route : t -> Prefix.t -> Rib.Loc.entry option
val updates_processed : t -> int
(** UPDATE messages fully processed since creation (throughput metric). *)

(** {1 Concolic import (the exploration entry point)} *)

type import_outcome = {
  prefix : Prefix.t;  (** concretized NLRI of the explored announcement *)
  accepted : bool;  (** survived loop check and import policy *)
  installed : bool;  (** won the decision process and entered the Loc-RIB *)
  route : Route.t option;  (** the concretized imported route, if accepted *)
  previous_best : Rib.Loc.entry option;
      (** the Loc-RIB entry for [prefix] before this import *)
  outputs : output list;  (** export traffic this import would generate *)
}

val import_concolic :
  ctx:Engine.ctx -> t -> peer:Ipv4.t -> Croute.t -> import_outcome
(** Run one (symbolized) announcement through the full import path —
    loop detection, import filter, decision process, Loc-RIB update and
    export generation — recording path constraints via [ctx]. Mutates this
    router; during exploration, call it on a clone, never on the live
    instance. @raise Invalid_argument if [peer] is not configured. *)

(** {1 Checkpointing} *)

type image
(** A frozen, consistent view of the router's dynamic state. Taking one
    is O(#peers) — the RIBs are persistent tries, so holding references
    is the in-process equivalent of fork()'s copy-on-write. *)

val freeze : t -> image
(** Checkpoint instantly; the live router may keep mutating. *)

val serialize : image -> bytes
(** Serialize a frozen image deterministically (typically off the live
    node's critical path). The byte layout is slot-stable: unchanged
    entries occupy the same offsets across snapshots of the same
    router. *)

val snapshot : t -> bytes
(** [serialize (freeze t)]. *)

val restore : Config_types.t -> bytes -> t
(** Rebuild a router from a snapshot taken of a router with the same
    configuration. @raise Invalid_argument on a corrupt image. *)

val clone : t -> t
(** An independent in-process copy sharing all RIB storage with the
    live router: the Loc-RIB, every Adj-RIB-In/Out and the static table
    are persistent tries, so the clone holds references — O(#peers),
    no serialization. Mutating either side copies only the touched
    path ({!Dice_inet.Prefix_trie} structural sharing); everything else
    stays physically shared. This is the explorer-clone path: memory
    per clone is the write set, not the table. *)
