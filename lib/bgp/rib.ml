open Dice_inet

module Adj = struct
  type t = Route.t Prefix_trie.t

  let empty = Prefix_trie.empty
  let add = Prefix_trie.add
  let remove = Prefix_trie.remove
  let find_opt = Prefix_trie.find_opt
  let cardinal = Prefix_trie.cardinal
  let to_list = Prefix_trie.to_list
  let fold = Prefix_trie.fold
end

module Loc = struct
  type entry = { route : Route.t; src : Route.src }
  type t = entry Prefix_trie.t

  let empty = Prefix_trie.empty
  let set = Prefix_trie.add
  let remove = Prefix_trie.remove
  let find_opt = Prefix_trie.find_opt
  let longest_match = Prefix_trie.longest_match
  let descent = Prefix_trie.descent
  let covering = Prefix_trie.covering
  let covered = Prefix_trie.covered
  let cardinal = Prefix_trie.cardinal
  let to_list = Prefix_trie.to_list
  let fold = Prefix_trie.fold
  let trie_nodes = Prefix_trie.node_count
  let shared_nodes = Prefix_trie.shared_nodes
end
