(** A configuration dialect: one implementation's concrete spelling of
    operator intent.

    Each federated speaker family understands its own configuration
    language. A dialect is the [render]/[parse] pair for one of them:
    [render] spells an {!Intent.t} in the dialect's concrete text,
    [parse] reads that text back into the shared {!Config_types.t}
    vocabulary the engines execute. Both directions deliberately model
    the dialect's {e documented quirks} — default action at end of
    policy, match evaluation order, missing-value semantics — so
    [parse (render intent)] is the configuration {e as that
    implementation would interpret it}, not as the operator meant it.
    Driving one intent through several dialects is what turns the N-way
    panel into a differential test of the filter interpreters. *)

module type S = sig
  val name : string
  (** Lower-case dialect name, e.g. ["bird"]. *)

  val quirks : string list
  (** One line per documented quirk this translator models. *)

  val render : Intent.t -> string
  (** Spell the intent in this dialect's concrete syntax. Total on any
      validated intent. *)

  val parse : string -> Config_types.t
  (** Read this dialect's text as the implementation would, quirks
      included. @raise Config_parser.Parse_error (or
      [Config_lexer.Lex_error]) on malformed input. *)
end

val realize : (module S) -> Intent.t -> Config_types.t
(** [parse (render intent)] — the full translation round trip, i.e. the
    configuration the implementation actually runs. *)
