(** BIRD dialect: filter blocks in the BIRD-style language
    {!Config_parser} already reads.

    Documented quirk modeled here: control falling off the end of a
    filter {e rejects} the route, so an intent policy whose [default] is
    unstated renders with no trailing verdict and silently drops
    unmatched routes. Prefix sets are inlined at each [net ~ \[...\]]
    use site (the language has no named sets), so set membership is
    per-rule, not shared state. *)

include Dialect.S
