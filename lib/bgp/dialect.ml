module type S = sig
  val name : string
  val quirks : string list
  val render : Intent.t -> string
  val parse : string -> Config_types.t
end

let realize (module D : S) intent = D.parse (D.render intent)
