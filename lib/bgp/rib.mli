(** Routing information bases (RFC 4271 §3.2).

    A router keeps one Adj-RIB-In per peer (routes as learned), a Loc-RIB
    (the selected best routes) and one Adj-RIB-Out per peer (routes as
    advertised). All three are prefix tries so that checkpoint clones share
    structure and the hijack checker can run covering-prefix queries. *)

open Dice_inet

module Adj : sig
  (** One peer's in or out table. *)

  type t

  val empty : t
  val add : Prefix.t -> Route.t -> t -> t
  val remove : Prefix.t -> t -> t
  val find_opt : Prefix.t -> t -> Route.t option
  val cardinal : t -> int
  val to_list : t -> (Prefix.t * Route.t) list
  val fold : (Prefix.t -> Route.t -> 'a -> 'a) -> t -> 'a -> 'a
end

module Loc : sig
  (** The Loc-RIB: best route and its provenance per prefix. *)

  type entry = { route : Route.t; src : Route.src }
  type t

  val empty : t
  val set : Prefix.t -> entry -> t -> t
  val remove : Prefix.t -> t -> t
  val find_opt : Prefix.t -> t -> entry option
  val longest_match : Ipv4.t -> t -> (Prefix.t * entry) option

  (** Trie nodes an LPM walk visits (see {!Dice_inet.Prefix_trie.descent});
      the comparisons the concolic import path records. *)
  val descent : Ipv4.t -> t -> (Prefix.t * bool) list
  val covering : Prefix.t -> t -> (Prefix.t * entry) list
  val covered : Prefix.t -> t -> (Prefix.t * entry) list
  val cardinal : t -> int
  val to_list : t -> (Prefix.t * entry) list
  val fold : (Prefix.t -> entry -> 'a -> 'a) -> t -> 'a -> 'a

  val trie_nodes : t -> int
  (** Physical trie nodes backing this table
      ({!Dice_inet.Prefix_trie.node_count}). *)

  val shared_nodes : t -> t -> int
  (** Physically shared nodes between two tables
      ({!Dice_inet.Prefix_trie.shared_nodes}) — how a fleet measures
      that an explorer clone's Loc-RIB still {e is} the live
      speaker's, bar the subtrees the clone wrote. *)
end
