open Dice_inet

let name = "bird"

let quirks =
  [
    "control falling off the end of a filter rejects the route, so an \
     unstated policy default silently drops unmatched routes";
    "no named prefix sets: set members are inlined at every use site";
  ]

let pattern_str p = Format.asprintf "%a" Filter.pp_pattern p

let community_str c =
  Printf.sprintf "%d:%d" (Community.asn_part c) (Community.value_part c)

let cond_str intent m =
  match m with
  | Intent.Prefixes set ->
    let pats = Option.value (Intent.find_prefix_set intent set) ~default:[] in
    Printf.sprintf "net ~ [ %s ]" (String.concat ", " (List.map pattern_str pats))
  | Intent.Transits n -> Printf.sprintf "bgp_path ~ %d" n
  | Intent.Originated_by n -> Printf.sprintf "bgp_path.last = %d" n
  | Intent.Path_longer_than n -> Printf.sprintf "bgp_path.len > %d" n
  | Intent.Has_community c -> "bgp_community ~ " ^ community_str c

let action_str = function
  | Intent.Set_local_pref n -> Printf.sprintf "bgp_local_pref = %d;" n
  | Intent.Set_med n -> Printf.sprintf "bgp_med = %d;" n
  | Intent.Add_community c -> Printf.sprintf "bgp_community.add(%s);" (community_str c)
  | Intent.Delete_community c ->
    Printf.sprintf "bgp_community.delete(%s);" (community_str c)
  | Intent.Prepend n -> Printf.sprintf "bgp_path.prepend(%d);" n

let verdict_str = function Intent.Permit -> "accept;" | Intent.Deny -> "reject;"

let render_policy b intent (p : Intent.policy) =
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "filter %s {" p.Intent.policy_name;
  let rec rules = function
    | [] -> begin
      (* BIRD quirk: an unstated default renders as nothing — execution
         falls off the filter end and the route is rejected. *)
      match p.Intent.default with
      | Some d -> line "  %s" (verdict_str d)
      | None -> ()
    end
    | (r : Intent.rule) :: rest ->
      let arm =
        String.concat " " (List.map action_str r.actions @ [ verdict_str r.decision ])
      in
      if r.matches = [] then line "  %s" arm
      else begin
        line "  if %s then { %s }"
          (String.concat " && " (List.map (cond_str intent) r.matches))
          arm;
        rules rest
      end
  in
  rules p.Intent.rules;
  line "}"

let peering_str verb = function
  | Intent.Open -> Printf.sprintf "%s all;" verb
  | Intent.Block -> Printf.sprintf "%s none;" verb
  | Intent.Apply name -> Printf.sprintf "%s filter %s;" verb name

let render (intent : Intent.t) =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "# bird dialect (rendered from intent)";
  line "router id %s;" (Ipv4.to_string intent.router_id);
  line "local as %d;" intent.local_as;
  List.iter (render_policy b intent) intent.policies;
  if intent.statics <> [] then begin
    line "protocol static {";
    List.iter
      (fun (p, via) ->
        line "  route %s via %s;" (Prefix.to_string p) (Ipv4.to_string via))
      intent.statics;
    line "}"
  end;
  List.iter
    (fun (s : Intent.session) ->
      line "protocol bgp %s {" s.session_name;
      line "  neighbor %s as %d;" (Ipv4.to_string s.neighbor) s.remote_as;
      line "  %s" (peering_str "import" s.import);
      line "  %s" (peering_str "export" s.export);
      line "}")
    intent.sessions;
  List.iter (fun p -> line "anycast [ %s ];" (Prefix.to_string p)) intent.anycast;
  Buffer.contents b

let parse = Config_parser.parse
