(** Dialect-neutral operator intent.

    A federated fleet is heterogeneous precisely because each member
    interprets {e its own} configuration dialect. [Intent.t] is the
    piece the operator actually means — peer sessions, named routing
    policies over prefix-set / AS-path / community predicates, action
    pipelines — kept free of any implementation's spelling. A
    {!Dialect.S} translator renders an intent into one dialect's
    concrete text and parses that text back into the shared
    {!Config_types.t} vocabulary, deliberately modeling the dialect's
    documented quirks (default action, match ordering, value clamping).
    Feeding one intent through several translators is what turns the
    N-way panel into a differential test of the {e filter interpreters}
    themselves, not just the decision processes.

    Smart constructors validate names, ranges and cross-references and
    raise [Invalid_argument] on nonsense; {!parse}/{!to_string} give the
    intent a concrete text format of its own (the [--intent FILE]
    format), and {!compile} is the quirk-free reference realization the
    dialect translators are tested against. *)

open Dice_inet

(** One predicate of a rule; a rule matches when {e all} its predicates
    hold (conjunction). *)
type match_ =
  | Prefixes of string  (** the announced prefix is in the named set *)
  | Transits of int  (** the AS appears anywhere in the AS path *)
  | Originated_by of int  (** the AS originated the route (last in path) *)
  | Path_longer_than of int  (** AS-path length strictly greater *)
  | Has_community of Community.t

(** One attribute rewrite, applied when a permitting rule matches. *)
type action =
  | Set_local_pref of int
  | Set_med of int
  | Add_community of Community.t
  | Delete_community of Community.t
  | Prepend of int  (** prepend the local AS this many extra times *)

type decision =
  | Permit
  | Deny

type rule = {
  matches : match_ list;  (** conjunction; [[]] matches every route *)
  actions : action list;  (** only meaningful on [Permit] rules *)
  decision : decision;
}

type policy = {
  policy_name : string;
  rules : rule list;  (** first matching rule decides, in written order *)
  default : decision option;
      (** what happens when no rule matches. [None] means the operator
          left it unstated — each dialect then applies its own
          documented default (BIRD rejects at filter end, Quagga's
          route-maps end in an implicit deny, XORP's policy statements
          pass unmatched routes), which is exactly the divergence the
          panel hunts. *)
}

(** How a session imports or exports routes. *)
type peering =
  | Open  (** everything passes *)
  | Block  (** nothing passes *)
  | Apply of string  (** the named policy decides *)

type session = {
  session_name : string;
  neighbor : Ipv4.t;
  remote_as : int;
  import : peering;
  export : peering;
}

type t = {
  router_id : Ipv4.t;
  local_as : int;
  prefix_sets : (string * Filter.prefix_pattern list) list;
  policies : policy list;
  sessions : session list;
  statics : (Prefix.t * Ipv4.t) list;
  anycast : Prefix.t list;
}

(** {1 Smart constructors} *)

val rule : ?matches:match_ list -> ?actions:action list -> decision -> rule
(** @raise Invalid_argument on a [Deny] rule carrying actions, a
    negative attribute value, or a prepend count outside [0, 16]. *)

val permit : ?matches:match_ list -> ?actions:action list -> unit -> rule
val deny : ?matches:match_ list -> unit -> rule

val policy : ?default:decision -> string -> rule list -> policy
(** @raise Invalid_argument on a malformed name (names are
    [[a-z0-9_]+], so every dialect can spell them). *)

val session :
  ?import:peering -> ?export:peering -> string -> neighbor:Ipv4.t -> remote_as:int -> session
(** Import and export default to [Open].
    @raise Invalid_argument on a malformed name or an AS outside
    [1, 2^32). *)

val make :
  router_id:Ipv4.t ->
  local_as:int ->
  ?prefix_sets:(string * Filter.prefix_pattern list) list ->
  ?policies:policy list ->
  ?sessions:session list ->
  ?statics:(Prefix.t * Ipv4.t) list ->
  ?anycast:Prefix.t list ->
  unit ->
  t
(** Validates the whole intent: name charsets, duplicate prefix-set /
    policy / session names, duplicate session neighbors, empty prefix
    sets, and dangling references ([Apply] of an unknown policy,
    [Prefixes] of an unknown set). @raise Invalid_argument naming the
    offender. *)

val find_policy : t -> string -> policy option
val find_prefix_set : t -> string -> Filter.prefix_pattern list option

(** {1 Reference semantics} *)

val eval_policy :
  t -> policy -> unstated:decision -> path:int list -> communities:Community.t list ->
  Prefix.t -> bool
(** Neutral first-match evaluation of [policy] against a concrete
    route: rules in written order, [unstated] supplying the verdict for
    routes that fall through a policy whose [default] is [None]. The
    dialect round-trip properties compare each translator's realized
    filter against this. *)

val compile : unstated:decision -> t -> Config_types.t
(** The quirk-free reference realization: written rule order, explicit
    defaults honored, unstated defaults resolved to [unstated]. Dialect
    translators must agree with [compile] on every route whenever the
    intent avoids their documented quirks. *)

(** {1 Text format} *)

val to_string : t -> string
(** Render the intent in its own concrete syntax (the format
    [detect-leaks --intent] reads). [parse (to_string i)] is [i] up to
    list order. *)

val parse : string -> t
(** @raise Config_lexer.Lex_error or {!Config_parser.Parse_error} on
    malformed input; the result passed through {!make}, so dangling
    references raise [Invalid_argument] just as they would in code. *)

val parse_file : string -> t

val pp : Format.formatter -> t -> unit
