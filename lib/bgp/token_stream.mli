(** Token cursor over {!Config_lexer} output — the shared scaffolding
    for the brace-style parsers ({!Intent}, the XORP dialect). Errors
    raise {!Config_parser.Parse_error} carrying the current source
    line. *)

open Dice_inet

type t

val of_string : string -> t
(** Lex [src]. @raise Config_lexer.Lex_error on bad characters. *)

val peek : t -> Config_lexer.token
val advance : t -> unit
val next : t -> Config_lexer.token
val at_eof : t -> bool

val fail : t -> string -> 'a
(** @raise Config_parser.Parse_error at the current token's line. *)

val expect : t -> Config_lexer.token -> string -> unit
val expect_ident : t -> string -> unit

val int_ : t -> string -> int
val ip : t -> string -> Ipv4.t
val ident : t -> string -> string

val prefix : t -> string -> Prefix.t
(** A [PREFIX] token, or an [IP] taken as a /32 host route. *)

val community : t -> Community.t
(** [INT ':' INT], both parts <= 65535. *)

val pattern : t -> Filter.prefix_pattern
(** [PREFIX ('+' | '-' | '{' INT ',' INT '}')?] — the config
    language's prefix-pattern syntax. *)

val pattern_list : t -> Filter.prefix_pattern list
(** ['[' pattern (',' pattern)* ']']. *)
