open Dice_inet
open Dice_concolic

type t = {
  net_addr : Cval.t;
  net_len : Cval.t;
  next_hop : Cval.t;
  med : Cval.t;
  has_med : bool;
  local_pref : Cval.t;
  has_local_pref : bool;
  origin : Cval.t;
  origin_as : Cval.t;
  as_path : Asn.Path.t;
  communities : Community.t list;
  atomic_aggregate : bool;
  aggregator : (int * Ipv4.t) option;
  unknowns : Attr.unknown list;
}

let c32 v = Cval.concrete ~width:32 (Int64.of_int v)
let c8 v = Cval.concrete ~width:8 (Int64.of_int v)

let of_route prefix (r : Route.t) =
  {
    net_addr = c32 (Prefix.network prefix);
    net_len = c8 (Prefix.len prefix);
    next_hop = c32 r.next_hop;
    med = c32 (Option.value r.med ~default:0);
    has_med = r.med <> None;
    local_pref = c32 (Option.value r.local_pref ~default:0);
    has_local_pref = r.local_pref <> None;
    origin = c8 (Attr.origin_code r.origin);
    origin_as = c32 (Option.value (Asn.Path.origin_as r.as_path) ~default:0);
    as_path = r.as_path;
    communities = r.communities;
    atomic_aggregate = r.atomic_aggregate;
    aggregator = r.aggregator;
    unknowns = r.unknowns;
  }

(* Rewrite the final AS of a path (used when the origin AS was symbolized
   and the solver picked a new value). *)
let set_origin_as path asn =
  let rec go = function
    | [] -> [ Asn.Path.Seq [ asn ] ]
    | [ Asn.Path.Seq s ] -> begin
      match List.rev s with
      | _ :: rest -> [ Asn.Path.Seq (List.rev (asn :: rest)) ]
      | [] -> [ Asn.Path.Seq [ asn ] ]
    end
    | [ Asn.Path.Set _ ] as last -> last @ [ Asn.Path.Seq [ asn ] ]
    | seg :: rest -> seg :: go rest
  in
  go path

let prefix_of t =
  let len = min 32 (Cval.to_int t.net_len) in
  Prefix.make (Cval.to_int t.net_addr land 0xFFFFFFFF) len

let to_route t =
  let prefix = prefix_of t in
  let origin =
    match Attr.origin_of_code (Cval.to_int t.origin) with
    | Some o -> o
    | None -> Attr.Incomplete
  in
  let as_path =
    let current = Asn.Path.origin_as t.as_path in
    let chosen = Cval.to_int t.origin_as in
    if current = Some chosen then t.as_path
    else if current = None && chosen = 0 then
      (* an empty path round-trips: 0 is [of_route]'s encoding of "no
         origin AS", not a solver-picked origin to graft on *)
      t.as_path
    else set_origin_as t.as_path chosen
  in
  let route =
    Route.make ~origin
      ~med:(if t.has_med then Some (Cval.to_int t.med) else None)
      ~local_pref:(if t.has_local_pref then Some (Cval.to_int t.local_pref) else None)
      ~communities:t.communities ~atomic_aggregate:t.atomic_aggregate
      ~aggregator:t.aggregator ~unknowns:t.unknowns ~as_path
      ~next_hop:(Cval.to_int t.next_hop) ()
  in
  (prefix, route)

let with_local_pref t v = { t with local_pref = v; has_local_pref = true }
let with_med t v = { t with med = v; has_med = true }

let add_community t c =
  if List.mem c t.communities then t else { t with communities = t.communities @ [ c ] }

let remove_community t c = { t with communities = List.filter (fun x -> x <> c) t.communities }

let prepend_as t asn = { t with as_path = Asn.Path.prepend asn t.as_path }

let pp ppf t =
  let prefix = prefix_of t in
  Format.fprintf ppf "%a path=[%a] lp=%a med=%a" Prefix.pp prefix Asn.Path.pp t.as_path
    Cval.pp t.local_pref Cval.pp t.med
