open Dice_inet

type match_ =
  | Prefixes of string
  | Transits of int
  | Originated_by of int
  | Path_longer_than of int
  | Has_community of Community.t

type action =
  | Set_local_pref of int
  | Set_med of int
  | Add_community of Community.t
  | Delete_community of Community.t
  | Prepend of int

type decision =
  | Permit
  | Deny

type rule = {
  matches : match_ list;
  actions : action list;
  decision : decision;
}

type policy = {
  policy_name : string;
  rules : rule list;
  default : decision option;
}

type peering =
  | Open
  | Block
  | Apply of string

type session = {
  session_name : string;
  neighbor : Ipv4.t;
  remote_as : int;
  import : peering;
  export : peering;
}

type t = {
  router_id : Ipv4.t;
  local_as : int;
  prefix_sets : (string * Filter.prefix_pattern list) list;
  policies : policy list;
  sessions : session list;
  statics : (Prefix.t * Ipv4.t) list;
  anycast : Prefix.t list;
}

(* ------------------------------------------------------------------ *)
(* Smart constructors                                                  *)
(* ------------------------------------------------------------------ *)

let bad fmt = Printf.ksprintf invalid_arg ("Intent: " ^^ fmt)

let name_ok s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let check_name what s = if not (name_ok s) then bad "%s %S: names are [a-z0-9_]+" what s

let check_as what n =
  if n < 1 || n > 0xFFFFFFFF then bad "%s: AS %d out of range [1, 2^32)" what n

let check_match = function
  | Prefixes s -> check_name "prefix-set reference" s
  | Transits n -> check_as "transit match" n
  | Originated_by n -> check_as "origin match" n
  | Path_longer_than n -> if n < 0 then bad "path_longer %d: bound must be >= 0" n
  | Has_community _ -> ()

let check_action = function
  | Set_local_pref n -> if n < 0 then bad "local_pref %d: must be >= 0" n
  | Set_med n -> if n < 0 then bad "med %d: must be >= 0" n
  | Add_community _ | Delete_community _ -> ()
  | Prepend n -> if n < 0 || n > 16 then bad "prepend %d: count outside [0, 16]" n

let rule ?(matches = []) ?(actions = []) decision =
  List.iter check_match matches;
  List.iter check_action actions;
  if decision = Deny && actions <> [] then
    bad "a deny rule carries actions: denied routes have no attributes to rewrite";
  { matches; actions; decision }

let permit ?matches ?actions () = rule ?matches ?actions Permit
let deny ?matches () = rule ?matches Deny

let policy ?default name rules =
  check_name "policy" name;
  { policy_name = name; rules; default }

let session ?(import = Open) ?(export = Open) name ~neighbor ~remote_as =
  check_name "session" name;
  check_as (Printf.sprintf "session %s" name) remote_as;
  { session_name = name; neighbor; remote_as; import; export }

let dup_by what key l =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun x ->
      let k = key x in
      if Hashtbl.mem seen k then bad "duplicate %s %S" what k;
      Hashtbl.add seen k ())
    l

let find_policy t name = List.find_opt (fun p -> p.policy_name = name) t.policies

let find_prefix_set t name =
  Option.map snd (List.find_opt (fun (n, _) -> n = name) t.prefix_sets)

let make ~router_id ~local_as ?(prefix_sets = []) ?(policies = []) ?(sessions = [])
    ?(statics = []) ?(anycast = []) () =
  check_as "local_as" local_as;
  List.iter
    (fun (name, pats) ->
      check_name "prefix_set" name;
      if pats = [] then bad "prefix_set %S is empty" name)
    prefix_sets;
  List.iter (fun p -> check_name "policy" p.policy_name) policies;
  dup_by "prefix_set" fst prefix_sets;
  dup_by "policy" (fun p -> p.policy_name) policies;
  dup_by "session" (fun s -> s.session_name) sessions;
  dup_by "session neighbor" (fun s -> Ipv4.to_string s.neighbor) sessions;
  let t = { router_id; local_as; prefix_sets; policies; sessions; statics; anycast } in
  (* dangling references *)
  List.iter
    (fun p ->
      List.iter
        (fun r ->
          List.iter
            (function
              | Prefixes s when find_prefix_set t s = None ->
                bad "policy %S references unknown prefix_set %S" p.policy_name s
              | _ -> ())
            r.matches)
        p.rules)
    policies;
  List.iter
    (fun s ->
      let check = function
        | Apply name when find_policy t name = None ->
          bad "session %S applies unknown policy %S" s.session_name name
        | Open | Block | Apply _ -> ()
      in
      check s.import;
      check s.export)
    sessions;
  t

(* ------------------------------------------------------------------ *)
(* Reference semantics                                                 *)
(* ------------------------------------------------------------------ *)

let match_holds t ~path ~communities prefix = function
  | Prefixes name ->
    let pats = Option.value (find_prefix_set t name) ~default:[] in
    List.exists (fun pat -> Filter.pattern_matches pat prefix) pats
  | Transits n -> List.mem n path
  | Originated_by n -> ( match List.rev path with last :: _ -> last = n | [] -> false)
  | Path_longer_than n -> List.length path > n
  | Has_community c -> List.mem c communities

let eval_policy t p ~unstated ~path ~communities prefix =
  let rec go = function
    | [] ->
      (match Option.value p.default ~default:unstated with Permit -> true | Deny -> false)
    | r :: rest ->
      if List.for_all (match_holds t ~path ~communities prefix) r.matches then
        r.decision = Permit
      else go rest
  in
  go p.rules

(* ------------------------------------------------------------------ *)
(* Reference compilation                                               *)
(* ------------------------------------------------------------------ *)

let cond_of_match t = function
  | Prefixes name -> Filter.Match_net (Option.value (find_prefix_set t name) ~default:[])
  | Transits n -> Filter.Path_has n
  | Originated_by n -> Filter.Cmp (Filter.Ceq, Filter.Origin_as, Filter.Int_lit n)
  | Path_longer_than n -> Filter.Cmp (Filter.Cgt, Filter.Path_len, Filter.Int_lit n)
  | Has_community c -> Filter.Has_community c

let cond_of_matches t = function
  | [] -> Filter.True
  | m :: rest ->
    List.fold_left (fun acc m -> Filter.And (acc, cond_of_match t m)) (cond_of_match t m) rest

let stmt_of_action = function
  | Set_local_pref n -> Filter.Set_local_pref (Filter.Int_lit n)
  | Set_med n -> Filter.Set_med (Filter.Int_lit n)
  | Add_community c -> Filter.Add_community c
  | Delete_community c -> Filter.Delete_community c
  | Prepend n -> Filter.Prepend n

let terminal = function Permit -> Filter.Accept | Deny -> Filter.Reject

(* First-match chains compile to a flat sequence of [if matched then
   { actions; accept/reject }] statements: the terminal inside the hit
   arm stops execution, so written order is first-match order. A rule
   with no predicates decides unconditionally — anything after it is
   unreachable and not emitted. *)
let filter_of_policy t ~unstated (p : policy) =
  let rec stmts = function
    | [] -> [ terminal (Option.value p.default ~default:unstated) ]
    | r :: rest ->
      let arm = List.map stmt_of_action r.actions @ [ terminal r.decision ] in
      if r.matches = [] then arm
      else Filter.mk_if ~filter_name:p.policy_name (cond_of_matches t r.matches) arm [] :: stmts rest
  in
  { Filter.name = p.policy_name; body = stmts p.rules }

let compile ~unstated t =
  let filters = List.map (filter_of_policy t ~unstated) t.policies in
  let resolve = function
    | Open -> Config_types.All
    | Block -> Config_types.Nothing
    | Apply name -> begin
      match List.find_opt (fun (f : Filter.t) -> f.Filter.name = name) filters with
      | Some f -> Config_types.Use_filter f
      | None -> bad "unknown policy %S" name (* unreachable after make *)
    end
  in
  let peers =
    List.map
      (fun s ->
        { (Config_types.default_peer ~name:s.session_name ~neighbor:s.neighbor
             ~remote_as:s.remote_as)
          with
          Config_types.import_policy = resolve s.import;
          export_policy = resolve s.export;
        })
      t.sessions
  in
  Config_types.make ~router_id:t.router_id ~local_as:t.local_as ~peers
    ~static_routes:t.statics ~filters ~anycast:t.anycast ()

(* ------------------------------------------------------------------ *)
(* Text format                                                         *)
(* ------------------------------------------------------------------ *)

let community_str c =
  Printf.sprintf "%d:%d" (Community.asn_part c) (Community.value_part c)

let match_str = function
  | Prefixes s -> "match prefixes " ^ s
  | Transits n -> Printf.sprintf "match transit %d" n
  | Originated_by n -> Printf.sprintf "match origin %d" n
  | Path_longer_than n -> Printf.sprintf "match path_longer %d" n
  | Has_community c -> "match community " ^ community_str c

let action_str = function
  | Set_local_pref n -> Printf.sprintf "set local_pref %d" n
  | Set_med n -> Printf.sprintf "set med %d" n
  | Add_community c -> "add community " ^ community_str c
  | Delete_community c -> "delete community " ^ community_str c
  | Prepend n -> Printf.sprintf "prepend %d" n

let decision_str = function Permit -> "permit" | Deny -> "deny"

let peering_str = function
  | Open -> "open"
  | Block -> "block"
  | Apply name -> "policy " ^ name

let to_string t =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "intent {";
  line "  router_id %s;" (Ipv4.to_string t.router_id);
  line "  local_as %d;" t.local_as;
  List.iter
    (fun (name, pats) ->
      line "  prefix_set %s [ %s ];" name
        (String.concat ", "
           (List.map (fun p -> Format.asprintf "%a" Filter.pp_pattern p) pats)))
    t.prefix_sets;
  List.iter
    (fun p ->
      line "  policy %s {" p.policy_name;
      List.iter
        (fun r ->
          line "    rule %s {%s%s }" (decision_str r.decision)
            (String.concat "" (List.map (fun m -> " " ^ match_str m ^ ";") r.matches))
            (String.concat "" (List.map (fun a -> " " ^ action_str a ^ ";") r.actions)))
        p.rules;
      (match p.default with
      | Some d -> line "    default %s;" (decision_str d)
      | None -> ());
      line "  }")
    t.policies;
  List.iter
    (fun s ->
      line "  session %s { neighbor %s as %d; import %s; export %s; }" s.session_name
        (Ipv4.to_string s.neighbor) s.remote_as (peering_str s.import)
        (peering_str s.export))
    t.sessions;
  List.iter
    (fun (p, via) -> line "  static %s via %s;" (Prefix.to_string p) (Ipv4.to_string via))
    t.statics;
  List.iter (fun p -> line "  anycast %s;" (Prefix.to_string p)) t.anycast;
  line "}";
  Buffer.contents b

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* -- parsing: same lexer as the BIRD-style config language -- *)

module L = Config_lexer
module T = Token_stream

let peek = T.peek
let advance = T.advance
let next = T.next
let fail = T.fail
let expect = T.expect
let expect_ident = T.expect_ident
let parse_int = T.int_
let parse_ip = T.ip
let parse_name = T.ident
let parse_prefix = T.prefix
let parse_community st = T.community st
let parse_pattern_list st = T.pattern_list st

let parse_decision st =
  match next st with
  | L.IDENT "permit" -> Permit
  | L.IDENT "deny" -> Deny
  | tk -> fail st (Printf.sprintf "expected permit/deny, got %s" (L.token_to_string tk))

let parse_rule st =
  let decision = parse_decision st in
  expect st L.LBRACE "'{'";
  let matches = ref [] in
  let actions = ref [] in
  let rec go () =
    if peek st = L.RBRACE then advance st
    else begin
      (match next st with
      | L.IDENT "match" -> begin
        match next st with
        | L.IDENT "prefixes" -> matches := Prefixes (parse_name st "prefix-set name") :: !matches
        | L.IDENT "transit" -> matches := Transits (parse_int st "AS number") :: !matches
        | L.IDENT "origin" -> matches := Originated_by (parse_int st "AS number") :: !matches
        | L.IDENT "path_longer" ->
          matches := Path_longer_than (parse_int st "path length") :: !matches
        | L.IDENT "community" -> matches := Has_community (parse_community st) :: !matches
        | tk ->
          fail st
            (Printf.sprintf "unknown match kind %s (prefixes/transit/origin/path_longer/community)"
               (L.token_to_string tk))
      end
      | L.IDENT "set" -> begin
        match next st with
        | L.IDENT "local_pref" -> actions := Set_local_pref (parse_int st "value") :: !actions
        | L.IDENT "med" -> actions := Set_med (parse_int st "value") :: !actions
        | tk -> fail st (Printf.sprintf "unknown attribute %s" (L.token_to_string tk))
      end
      | L.IDENT "add" ->
        expect_ident st "community";
        actions := Add_community (parse_community st) :: !actions
      | L.IDENT "delete" ->
        expect_ident st "community";
        actions := Delete_community (parse_community st) :: !actions
      | L.IDENT "prepend" -> actions := Prepend (parse_int st "prepend count") :: !actions
      | tk -> fail st (Printf.sprintf "unexpected %s in rule" (L.token_to_string tk)));
      expect st L.SEMI "';'";
      go ()
    end
  in
  go ();
  rule ~matches:(List.rev !matches) ~actions:(List.rev !actions) decision

let parse_policy_decl st =
  let name = parse_name st "policy name" in
  expect st L.LBRACE "'{'";
  let rules = ref [] in
  let default = ref None in
  let rec go () =
    if peek st = L.RBRACE then advance st
    else begin
      (match next st with
      | L.IDENT "rule" -> rules := parse_rule st :: !rules
      | L.IDENT "default" ->
        default := Some (parse_decision st);
        expect st L.SEMI "';'"
      | tk -> fail st (Printf.sprintf "unexpected %s in policy" (L.token_to_string tk)));
      go ()
    end
  in
  go ();
  policy ?default:!default name (List.rev !rules)

let parse_peering st =
  match next st with
  | L.IDENT "open" -> Open
  | L.IDENT "block" -> Block
  | L.IDENT "policy" -> Apply (parse_name st "policy name")
  | tk -> fail st (Printf.sprintf "expected open/block/policy, got %s" (L.token_to_string tk))

let parse_session_decl st =
  let name = parse_name st "session name" in
  expect st L.LBRACE "'{'";
  let neighbor = ref None in
  let remote_as = ref None in
  let import = ref Open in
  let export = ref Open in
  let rec go () =
    if peek st = L.RBRACE then advance st
    else begin
      (match next st with
      | L.IDENT "neighbor" ->
        neighbor := Some (parse_ip st "neighbor address");
        expect_ident st "as";
        remote_as := Some (parse_int st "AS number")
      | L.IDENT "import" -> import := parse_peering st
      | L.IDENT "export" -> export := parse_peering st
      | tk -> fail st (Printf.sprintf "unexpected %s in session" (L.token_to_string tk)));
      expect st L.SEMI "';'";
      go ()
    end
  in
  go ();
  match (!neighbor, !remote_as) with
  | Some neighbor, Some remote_as ->
    session ~import:!import ~export:!export name ~neighbor ~remote_as
  | _ -> fail st (Printf.sprintf "session %s: missing neighbor" name)

let parse src =
  let st = T.of_string src in
  expect_ident st "intent";
  expect st L.LBRACE "'{'";
  let router_id = ref None in
  let local_as = ref None in
  let prefix_sets = ref [] in
  let policies = ref [] in
  let sessions = ref [] in
  let statics = ref [] in
  let anycast = ref [] in
  let rec go () =
    if peek st = L.RBRACE then advance st
    else begin
      (match next st with
      | L.IDENT "router_id" ->
        router_id := Some (parse_ip st "router id");
        expect st L.SEMI "';'"
      | L.IDENT "local_as" ->
        local_as := Some (parse_int st "AS number");
        expect st L.SEMI "';'"
      | L.IDENT "prefix_set" ->
        let name = parse_name st "prefix-set name" in
        let pats = parse_pattern_list st in
        expect st L.SEMI "';'";
        prefix_sets := (name, pats) :: !prefix_sets
      | L.IDENT "policy" -> policies := parse_policy_decl st :: !policies
      | L.IDENT "session" -> sessions := parse_session_decl st :: !sessions
      | L.IDENT "static" ->
        let p = parse_prefix st "static route prefix" in
        expect_ident st "via";
        let via = parse_ip st "next hop" in
        expect st L.SEMI "';'";
        statics := (p, via) :: !statics
      | L.IDENT "anycast" ->
        anycast := parse_prefix st "anycast prefix" :: !anycast;
        expect st L.SEMI "';'"
      | tk -> fail st (Printf.sprintf "unexpected %s in intent" (L.token_to_string tk)));
      go ()
    end
  in
  go ();
  if peek st <> L.EOF then fail st "trailing input after intent block";
  match (!router_id, !local_as) with
  | Some router_id, Some local_as ->
    make ~router_id ~local_as ~prefix_sets:(List.rev !prefix_sets)
      ~policies:(List.rev !policies) ~sessions:(List.rev !sessions)
      ~statics:(List.rev !statics) ~anycast:(List.rev !anycast) ()
  | None, _ -> fail st "missing 'router_id'"
  | _, None -> fail st "missing 'local_as'"

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse src
