open Dice_inet

type prefix_pattern = { base : Prefix.t; low : int; high : int }

let pattern_matches pat p =
  let l = Prefix.len p in
  l >= pat.low && l <= pat.high
  &&
  let k = min (Prefix.len pat.base) l in
  Dice_inet.Ipv4.apply_mask (Prefix.network p) k = Ipv4.apply_mask (Prefix.network pat.base) k

let pp_pattern ppf pat =
  let bl = Prefix.len pat.base in
  if pat.low = bl && pat.high = bl then Prefix.pp ppf pat.base
  else if pat.low = bl && pat.high = 32 then Format.fprintf ppf "%a+" Prefix.pp pat.base
  else if pat.low = 0 && pat.high = bl then Format.fprintf ppf "%a-" Prefix.pp pat.base
  else Format.fprintf ppf "%a{%d,%d}" Prefix.pp pat.base pat.low pat.high

type cmpop =
  | Ceq
  | Cne
  | Clt
  | Cle
  | Cgt
  | Cge

type term =
  | Int_lit of int
  | Net_len
  | Local_pref_t
  | Med_t
  | Origin_t
  | Path_len
  | Neighbor_as
  | Origin_as
  | Source_as

type cond =
  | True
  | False
  | Cmp of cmpop * term * term
  | Match_net of prefix_pattern list
  | Path_has of int
  | Has_community of Community.t
  | And of cond * cond
  | Or of cond * cond
  | Not of cond

type stmt =
  | If of { site : string; cond : cond; then_ : stmt list; else_ : stmt list }
  | Accept
  | Reject
  | Set_local_pref of term
  | Set_med of term
  | Add_community of Community.t
  | Delete_community of Community.t
  | Prepend of int

type t = { name : string; body : stmt list }

let if_counters_lock = Mutex.create ()
let if_counters : (string, int) Hashtbl.t = Hashtbl.create 16

let mk_if ~filter_name cond then_ else_ =
  Mutex.lock if_counters_lock;
  let k =
    match Hashtbl.find_opt if_counters filter_name with
    | Some k -> k
    | None -> 0
  in
  Hashtbl.replace if_counters filter_name (k + 1);
  Mutex.unlock if_counters_lock;
  If { site = Printf.sprintf "filter:%s:if%d" filter_name k; cond; then_; else_ }

let accept_all name = { name; body = [ Accept ] }
let reject_all name = { name; body = [ Reject ] }

let cmpop_str = function
  | Ceq -> "="
  | Cne -> "!="
  | Clt -> "<"
  | Cle -> "<="
  | Cgt -> ">"
  | Cge -> ">="

let term_str = function
  | Int_lit n -> string_of_int n
  | Net_len -> "net.len"
  | Local_pref_t -> "bgp_local_pref"
  | Med_t -> "bgp_med"
  | Origin_t -> "bgp_origin"
  | Path_len -> "bgp_path.len"
  | Neighbor_as -> "bgp_path.first"
  | Origin_as -> "bgp_path.last"
  | Source_as -> "source_as"

let rec pp_cond ppf = function
  | True -> Format.fprintf ppf "true"
  | False -> Format.fprintf ppf "false"
  | Cmp (op, a, b) -> Format.fprintf ppf "%s %s %s" (term_str a) (cmpop_str op) (term_str b)
  | Match_net pats ->
    Format.fprintf ppf "net ~ [ %s ]"
      (String.concat ", " (List.map (fun p -> Format.asprintf "%a" pp_pattern p) pats))
  | Path_has asn -> Format.fprintf ppf "bgp_path ~ %d" asn
  | Has_community c -> Format.fprintf ppf "bgp_community ~ %s" (Community.to_string c)
  | And (a, b) -> Format.fprintf ppf "(%a && %a)" pp_cond a pp_cond b
  | Or (a, b) -> Format.fprintf ppf "(%a || %a)" pp_cond a pp_cond b
  | Not c -> Format.fprintf ppf "!(%a)" pp_cond c

let rec pp_stmt ppf = function
  | If { cond; then_; else_; _ } ->
    Format.fprintf ppf "@[<v 2>if %a then {@,%a@]@,}" pp_cond cond pp_body then_;
    if else_ <> [] then Format.fprintf ppf "@[<v 2> else {@,%a@]@,}" pp_body else_
  | Accept -> Format.fprintf ppf "accept;"
  | Reject -> Format.fprintf ppf "reject;"
  | Set_local_pref tm -> Format.fprintf ppf "bgp_local_pref = %s;" (term_str tm)
  | Set_med tm -> Format.fprintf ppf "bgp_med = %s;" (term_str tm)
  | Add_community c -> Format.fprintf ppf "bgp_community.add(%s);" (Community.to_string c)
  | Delete_community c ->
    Format.fprintf ppf "bgp_community.delete(%s);" (Community.to_string c)
  | Prepend n -> Format.fprintf ppf "bgp_path.prepend(%d);" n

and pp_body ppf body =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt ppf body

let pp ppf t = Format.fprintf ppf "@[<v 2>filter %s {@,%a@]@,}" t.name pp_body t.body
