open Dice_inet
open Dice_concolic
module Wbuf = Dice_wire.Wbuf
module Rbuf = Dice_wire.Rbuf

type output =
  | To_peer of Ipv4.t * Msg.t
  | Connect_request of Ipv4.t
  | Close_connection of Ipv4.t
  | Set_timer of Ipv4.t * Fsm.timer * float
  | Clear_timer of Ipv4.t * Fsm.timer
  | Session_up of Ipv4.t
  | Session_down of Ipv4.t * string

type peer_rt = {
  pcfg : Config_types.peer_cfg;
  mutable fsm : Fsm.state;
  mutable adj_in : Rib.Adj.t;
  mutable adj_out : Rib.Adj.t;
  mutable as4 : bool;
}

(* slot bookkeeping for stable-layout snapshots (see the Checkpointing
   section): every RIB entry owns a fixed-size slot, keyed by table and
   prefix, so snapshots have a stable page layout *)
type slot_key =
  | Slot_loc of Prefix.t
  | Slot_adj_in of Ipv4.t * Prefix.t
  | Slot_adj_out of Ipv4.t * Prefix.t

type t = {
  cfg : Config_types.t;
  peers : (Ipv4.t, peer_rt) Hashtbl.t;
  statics : Rib.Loc.entry Dice_inet.Prefix_trie.t;
  mutable loc : Rib.Loc.t;
  mutable updates : int;
  slots : (slot_key, int) Hashtbl.t;
  mutable next_slot : int;
  mutable free_slots : int list;
}

let config t = t.cfg
let local_as t = t.cfg.Config_types.local_as
let router_id t = t.cfg.Config_types.router_id

let create cfg =
  let statics =
    List.fold_left
      (fun acc (p, via) ->
        Prefix_trie.add p
          {
            Rib.Loc.route =
              Route.make ~origin:Attr.Igp ~as_path:Asn.Path.empty ~next_hop:via
                ~local_pref:(Some 100) ();
            src = Route.static_src;
          }
          acc)
      Prefix_trie.empty cfg.Config_types.static_routes
  in
  let t =
    {
      cfg;
      peers = Hashtbl.create 8;
      statics;
      loc = Prefix_trie.fold (fun p e acc -> Rib.Loc.set p e acc) statics Rib.Loc.empty;
      updates = 0;
      slots = Hashtbl.create 256;
      next_slot = 0;
      free_slots = [];
    }
  in
  List.iter
    (fun pcfg ->
      Hashtbl.replace t.peers pcfg.Config_types.neighbor
        { pcfg; fsm = Fsm.initial; adj_in = Rib.Adj.empty; adj_out = Rib.Adj.empty; as4 = true })
    cfg.Config_types.peers;
  t

let peer_exn t addr =
  match Hashtbl.find_opt t.peers addr with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Router: unknown peer %s" (Ipv4.to_string addr))

let peer_state t addr = Option.map (fun p -> p.fsm) (Hashtbl.find_opt t.peers addr)

let established_peers t =
  Hashtbl.fold (fun addr p acc -> if p.fsm = Fsm.Established then addr :: acc else acc)
    t.peers []
  |> List.sort compare

let loc_rib t = t.loc
let adj_rib_in t addr = Option.map (fun p -> p.adj_in) (Hashtbl.find_opt t.peers addr)
let adj_rib_out t addr = Option.map (fun p -> p.adj_out) (Hashtbl.find_opt t.peers addr)
let best_route t prefix = Rib.Loc.find_opt prefix t.loc
let updates_processed t = t.updates

(* ------------------------------------------------------------------ *)
(* Decision process                                                    *)
(* ------------------------------------------------------------------ *)

let src_of_peer t p =
  {
    Route.peer_addr = p.pcfg.Config_types.neighbor;
    peer_asn = p.pcfg.Config_types.remote_as;
    peer_bgp_id = p.pcfg.Config_types.neighbor (* stand-in until OPEN is seen *);
    ebgp = p.pcfg.Config_types.remote_as <> t.cfg.Config_types.local_as;
  }

let candidates t prefix =
  let from_static =
    match Prefix_trie.find_opt prefix t.statics with
    | Some e -> [ (e.Rib.Loc.route, e.Rib.Loc.src) ]
    | None -> []
  in
  Hashtbl.fold
    (fun _ p acc ->
      match Rib.Adj.find_opt prefix p.adj_in with
      | Some r -> (r, src_of_peer t p) :: acc
      | None -> acc)
    t.peers from_static

let decide t prefix =
  match Decision.best (candidates t prefix) with
  | Some (route, src) -> Some { Rib.Loc.route; src }
  | None -> None

(* ------------------------------------------------------------------ *)
(* Export path                                                         *)
(* ------------------------------------------------------------------ *)

(* Transform the best route for advertisement to [dst]: eBGP prepends the
   local AS, rewrites next-hop to self, and strips LOCAL_PREF and MED;
   iBGP forwards LOCAL_PREF unchanged. *)
let export_view t (dst : peer_rt) (route : Route.t) =
  let ebgp = dst.pcfg.Config_types.remote_as <> t.cfg.Config_types.local_as in
  if ebgp then
    {
      route with
      Route.as_path = Asn.Path.prepend t.cfg.Config_types.local_as route.Route.as_path;
      next_hop = t.cfg.Config_types.router_id;
      local_pref = None;
      med = None;
    }
  else route

(* Would advertising [route] to [dst] loop straight back? *)
let split_horizon (dst : peer_rt) (src : Route.src) =
  src.Route.peer_addr = dst.pcfg.Config_types.neighbor

let no_export_blocked (dst : peer_rt) local_as (route : Route.t) =
  let ebgp = dst.pcfg.Config_types.remote_as <> local_as in
  (ebgp && Route.has_community route Community.no_export)
  || Route.has_community route Community.no_advertise

(* Compute the UPDATE (if any) for [prefix]'s new best towards [dst], and
   update the Adj-RIB-Out. *)
let export_to ?(ctx = Engine.null ()) t (dst : peer_rt) prefix best =
  if dst.fsm <> Fsm.Established then []
  else begin
    let previously = Rib.Adj.find_opt prefix dst.adj_out in
    let advert =
      match best with
      | None -> None
      | Some { Rib.Loc.route; src } ->
        if split_horizon dst src then None
        else if no_export_blocked dst t.cfg.Config_types.local_as route then None
        else begin
          let view = export_view t dst route in
          let croute = Croute.of_route prefix view in
          match
            Filter_interp.run_policy ctx
              ~source_as:src.Route.peer_asn
              ~local_as:t.cfg.Config_types.local_as
              dst.pcfg.Config_types.export_policy croute
          with
          | Filter_interp.Accepted cr ->
            let _, r = Croute.to_route cr in
            Some r
          | Filter_interp.Rejected -> None
        end
    in
    match (previously, advert) with
    | None, None -> []
    | Some old, Some r when Route.equal old r -> []
    | _, Some r ->
      dst.adj_out <- Rib.Adj.add prefix r dst.adj_out;
      [ To_peer
          ( dst.pcfg.Config_types.neighbor,
            Msg.Update { withdrawn = []; attrs = Route.to_attrs r; nlri = [ prefix ] } );
      ]
    | Some _, None ->
      dst.adj_out <- Rib.Adj.remove prefix dst.adj_out;
      [ To_peer
          ( dst.pcfg.Config_types.neighbor,
            Msg.Update { withdrawn = [ prefix ]; attrs = []; nlri = [] } );
      ]
  end

let export_all ?ctx t prefix best =
  Hashtbl.fold (fun _ dst acc -> acc @ export_to ?ctx t dst prefix best) t.peers []

(* Recompute the best route for [prefix]; update Loc-RIB and export. *)
let reconsider ?ctx t prefix =
  let old_best = Rib.Loc.find_opt prefix t.loc in
  let new_best = decide t prefix in
  let changed =
    match (old_best, new_best) with
    | None, None -> false
    | Some a, Some b -> not (Route.equal a.Rib.Loc.route b.Rib.Loc.route && a.src = b.src)
    | None, Some _ | Some _, None -> true
  in
  if changed then begin
    (match new_best with
    | Some e -> t.loc <- Rib.Loc.set prefix e t.loc
    | None -> t.loc <- Rib.Loc.remove prefix t.loc);
    export_all ?ctx t prefix new_best
  end
  else []

(* ------------------------------------------------------------------ *)
(* Import path                                                         *)
(* ------------------------------------------------------------------ *)

(* Concolic pre-decision: would the candidate beat the incumbent? This
   mirrors the first decision rules over concolic values so exploration
   can steer announcements into (or out of) the Loc-RIB. The authoritative
   installation still goes through the concrete decision process. *)
let concolic_beats ctx (cr : Croute.t) (incumbent : Rib.Loc.entry option) =
  match incumbent with
  | None -> true
  | Some { Rib.Loc.route = old; _ } -> begin
    let c32 v = Cval.concrete ~width:32 (Int64.of_int v) in
    let lp_new =
      if cr.Croute.has_local_pref then cr.Croute.local_pref else c32 100
    in
    let lp_old = c32 (Option.value old.Route.local_pref ~default:100) in
    if Engine.branchf ctx "decision:local-pref-gt" (Cval.ugt lp_new lp_old) then true
    else if Engine.branchf ctx "decision:local-pref-lt" (Cval.ult lp_new lp_old) then false
    else begin
      let len_new = Asn.Path.length cr.Croute.as_path in
      let len_old = Asn.Path.length old.Route.as_path in
      if len_new <> len_old then len_new < len_old
      else begin
        let org_new = cr.Croute.origin in
        let org_old = c32 (Attr.origin_code old.Route.origin) in
        if Engine.branchf ctx "decision:origin-lt" (Cval.ult org_new org_old) then true
        else not (Engine.branchf ctx "decision:origin-gt" (Cval.ugt org_new org_old))
      end
    end
  end

(* Concolic RIB-lookup probe: a radix-trie LPM walk compares the looked-up
   address against node prefixes bit-range by bit-range; recording those
   comparisons over the *symbolic* NLRI is what lets the explorer construct
   announcements that collide with — or exactly override — address space
   already in the table (the paper's hijack discovery mechanism: Oasis
   manipulates the NLRI until an accepted route conflicts with an existing
   origin). The walk follows the concrete descent; each visited node adds a
   containment branch, and bound nodes also add an exact-prefix branch. *)
let rib_walk_probe ctx t (cr : Croute.t) =
  if Engine.recording ctx then begin
    let addr = cr.Croute.net_addr and len = cr.Croute.net_len in
    let c32 v = Cval.concrete ~width:32 (Int64.of_int v) in
    let concrete_addr = Cval.to_int addr land 0xFFFFFFFF in
    List.iteri
      (fun depth (q, has_value) ->
        let qlen = Prefix.len q in
        if qlen > 0 then begin
          let diff = Cval.logxor addr (c32 (Prefix.network q)) in
          let agree = Cval.eq (Cval.shift_right diff (32 - qlen)) (c32 0) in
          ignore (Engine.branchf ctx (Printf.sprintf "rib:walk%d" depth) agree);
          if has_value then begin
            let exact =
              Cval.and_ agree
                (Cval.eq len (Cval.concrete ~width:8 (Int64.of_int qlen)))
            in
            ignore (Engine.branchf ctx (Printf.sprintf "rib:exact%d" depth) exact)
          end
        end)
      (Rib.Loc.descent concrete_addr t.loc)
  end

type import_outcome = {
  prefix : Prefix.t;
  accepted : bool;
  installed : bool;
  route : Route.t option;
  previous_best : Rib.Loc.entry option;
  outputs : output list;
}

let import_concolic ~ctx t ~peer croute =
  let p = peer_exn t peer in
  t.updates <- t.updates + 1;
  let rejected why =
    ignore why;
    {
      prefix = Croute.prefix_of croute;
      accepted = false;
      installed = false;
      route = None;
      previous_best = Rib.Loc.find_opt (Croute.prefix_of croute) t.loc;
      outputs = [];
    }
  in
  (* AS-loop detection (concrete: the path is not symbolized) *)
  if Asn.Path.contains croute.Croute.as_path t.cfg.Config_types.local_as then
    rejected `Loop
  else begin
    match
      Filter_interp.run_policy ctx
        ~source_as:p.pcfg.Config_types.remote_as
        ~local_as:t.cfg.Config_types.local_as
        p.pcfg.Config_types.import_policy croute
    with
    | Filter_interp.Rejected -> rejected `Policy
    | Filter_interp.Accepted cr ->
      let cr =
        if cr.Croute.has_local_pref then cr
        else
          Croute.with_local_pref cr (Cval.concrete ~width:32 100L)
      in
      let prefix, route = Croute.to_route cr in
      rib_walk_probe ctx t cr;
      let previous_best = Rib.Loc.find_opt prefix t.loc in
      (* record the concolic would-beat constraints for the explorer *)
      let _would_beat = concolic_beats ctx cr previous_best in
      p.adj_in <- Rib.Adj.add prefix route p.adj_in;
      let outputs = reconsider ~ctx t prefix in
      let installed =
        match Rib.Loc.find_opt prefix t.loc with
        | Some e -> e.Rib.Loc.src.Route.peer_addr = peer && Route.equal e.Rib.Loc.route route
        | None -> false
      in
      { prefix; accepted = true; installed; route = Some route; previous_best; outputs }
  end

(* Normal-path UPDATE processing. *)
let process_update ?(ctx = Engine.null ()) t ~peer (u : Msg.update) =
  let p = peer_exn t peer in
  let outs = ref [] in
  (* withdrawals *)
  List.iter
    (fun prefix ->
      if Rib.Adj.find_opt prefix p.adj_in <> None then begin
        p.adj_in <- Rib.Adj.remove prefix p.adj_in;
        outs := !outs @ reconsider ~ctx t prefix
      end)
    u.Msg.withdrawn;
  (* announcements *)
  if u.Msg.nlri <> [] then begin
    match Route.of_attrs u.Msg.attrs with
    | Error _ ->
      (* treat-as-withdraw (RFC 7606 spirit) for the announced prefixes *)
      List.iter
        (fun prefix ->
          if Rib.Adj.find_opt prefix p.adj_in <> None then begin
            p.adj_in <- Rib.Adj.remove prefix p.adj_in;
            outs := !outs @ reconsider ~ctx t prefix
          end)
        u.Msg.nlri
    | Ok route ->
      List.iter
        (fun prefix ->
          let croute = Croute.of_route prefix route in
          let outcome = import_concolic ~ctx t ~peer croute in
          outs := !outs @ outcome.outputs;
          if not outcome.accepted then begin
            (* policy-rejected: ensure any previous version is gone *)
            if Rib.Adj.find_opt prefix p.adj_in <> None then begin
              p.adj_in <- Rib.Adj.remove prefix p.adj_in;
              outs := !outs @ reconsider ~ctx t prefix
            end
          end)
        u.Msg.nlri
  end
  else t.updates <- t.updates + if u.Msg.withdrawn <> [] then 1 else 0;
  !outs

(* ------------------------------------------------------------------ *)
(* Session management                                                  *)
(* ------------------------------------------------------------------ *)

let timer_duration (p : peer_rt) = function
  | Fsm.Connect_retry -> p.pcfg.Config_types.connect_retry_time
  | Fsm.Hold -> p.pcfg.Config_types.hold_time
  | Fsm.Keepalive_timer -> p.pcfg.Config_types.keepalive_time

let open_msg t =
  Msg.Open
    {
      Msg.version = 4;
      my_as = (if t.cfg.Config_types.local_as > 0xFFFF then 23456 else t.cfg.Config_types.local_as);
      hold_time = 90;
      bgp_id = t.cfg.Config_types.router_id;
      capabilities = [ Msg.Cap_as4 t.cfg.Config_types.local_as ];
    }

(* Announce the whole Loc-RIB to a newly established peer. *)
let initial_advertisement ?ctx t (p : peer_rt) =
  Rib.Loc.fold
    (fun prefix entry acc -> acc @ export_to ?ctx t p prefix (Some entry))
    t.loc []

let flush_peer ?ctx t (p : peer_rt) =
  let prefixes = List.map fst (Rib.Adj.to_list p.adj_in) in
  p.adj_in <- Rib.Adj.empty;
  p.adj_out <- Rib.Adj.empty;
  List.concat_map (fun prefix -> reconsider ?ctx t prefix) prefixes

let rec apply_actions ?ctx t (p : peer_rt) actions =
  List.concat_map
    (fun action ->
      let addr = p.pcfg.Config_types.neighbor in
      match action with
      | Fsm.Send_open -> [ To_peer (addr, open_msg t) ]
      | Fsm.Send_keepalive -> [ To_peer (addr, Msg.Keepalive) ]
      | Fsm.Send_notification n -> [ To_peer (addr, Msg.Notification n) ]
      | Fsm.Start_timer tm -> [ Set_timer (addr, tm, timer_duration p tm) ]
      | Fsm.Stop_timer tm -> [ Clear_timer (addr, tm) ]
      | Fsm.Initiate_connect -> [ Connect_request addr ]
      | Fsm.Drop_connection -> [ Close_connection addr ]
      | Fsm.Session_established -> Session_up addr :: initial_advertisement ?ctx t p
      | Fsm.Session_down reason -> Session_down (addr, reason) :: flush_peer ?ctx t p
      | Fsm.Deliver_update u -> process_update ?ctx t ~peer:addr u)
    actions

and feed_event ?ctx t (p : peer_rt) ev =
  let state', actions = Fsm.step p.fsm ev in
  p.fsm <- state';
  apply_actions ?ctx t p actions

let start t =
  Hashtbl.fold (fun _ p acc -> acc @ feed_event t p Fsm.Manual_start) t.peers []

let handle_event t ~peer ev =
  match Hashtbl.find_opt t.peers peer with
  | None -> []
  | Some p -> feed_event t p ev

let handle_msg ?ctx t ~peer msg =
  match Hashtbl.find_opt t.peers peer with
  | None -> []
  | Some p -> begin
    match msg with
    | Msg.Open o ->
      (* validate the peer AS against configuration *)
      let claimed =
        match List.find_map (function Msg.Cap_as4 a -> Some a | _ -> None) o.Msg.capabilities with
        | Some real -> real
        | None -> o.Msg.my_as
      in
      p.as4 <-
        List.exists (function Msg.Cap_as4 _ -> true | _ -> false) o.Msg.capabilities;
      if claimed <> p.pcfg.Config_types.remote_as then begin
        let n = { Msg.code = 2; subcode = 2; data = Bytes.empty } in
        let outs = feed_event ?ctx t p (Fsm.Recv_notification n) in
        To_peer (p.pcfg.Config_types.neighbor, Msg.Notification n) :: outs
      end
      else feed_event ?ctx t p (Fsm.Recv_open o)
    | Msg.Update u -> feed_event ?ctx t p (Fsm.Recv_update u)
    | Msg.Keepalive -> feed_event ?ctx t p Fsm.Recv_keepalive
    | Msg.Notification n -> feed_event ?ctx t p (Fsm.Recv_notification n)
  end

let handle_bytes ?ctx t ~peer bytes =
  match Hashtbl.find_opt t.peers peer with
  | None -> []
  | Some p -> begin
    match Msg.decode ~as4:p.as4 bytes with
    | Ok msg -> handle_msg ?ctx t ~peer msg
    | Error e ->
      let n = Msg.error_notification e in
      let outs = feed_event ?ctx t p (Fsm.Recv_notification n) in
      To_peer (peer, Msg.Notification n) :: outs
  end

(* ------------------------------------------------------------------ *)
(* Checkpointing                                                       *)
(* ------------------------------------------------------------------ *)

(* The snapshot models a process address space: every RIB entry lives in
   a fixed-size *slot* whose position is stable across snapshots (slots
   are assigned on first appearance and recycled on removal, like heap
   allocations). A router that installs or withdraws one route therefore
   dirties only the pages holding the affected slots — which is what
   makes the copy-on-write checkpoint accounting behave like fork() on
   the real daemon, instead of every page changing because a linear
   serialization shifted. Entries too large for one slot go to a linear
   overflow region (rare). *)

let magic = "DICERTR2"
let slot_size = 256

let compare_slot_key a b =
  let rank = function
    | Slot_loc _ -> 0
    | Slot_adj_in _ -> 1
    | Slot_adj_out _ -> 2
  in
  match (a, b) with
  | Slot_loc p, Slot_loc q -> Prefix.compare p q
  | Slot_adj_in (x, p), Slot_adj_in (y, q) | Slot_adj_out (x, p), Slot_adj_out (y, q) ->
    let c = Int.compare x y in
    if c <> 0 then c else Prefix.compare p q
  | _, _ -> Int.compare (rank a) (rank b)

let encode_prefix w p =
  Wbuf.u8 w (Prefix.len p);
  Wbuf.u32 w (Prefix.network p)

let decode_prefix r =
  let len = Rbuf.u8 ~what:"snapshot prefix len" r in
  let addr = Rbuf.u32 ~what:"snapshot prefix addr" r in
  Prefix.make addr len

let encode_route w route =
  let attrs = Wbuf.create () in
  Attr.encode_list ~as4:true attrs (Route.to_attrs route);
  let b = Wbuf.contents attrs in
  Wbuf.u16 w (Bytes.length b);
  Wbuf.bytes w b

let decode_route r =
  let len = Rbuf.u16 ~what:"snapshot route len" r in
  let body = Rbuf.sub r len in
  match Attr.decode_list ~as4:true body with
  | Error e -> invalid_arg ("Router.restore: bad route: " ^ Attr.error_to_string e)
  | Ok attrs -> begin
    match Route.of_attrs attrs with
    | Error e -> invalid_arg ("Router.restore: bad route: " ^ Attr.error_to_string e)
    | Ok route -> route
  end

let fsm_code = function
  | Fsm.Idle -> 0
  | Fsm.Connect -> 1
  | Fsm.Active -> 2
  | Fsm.Open_sent -> 3
  | Fsm.Open_confirm -> 4
  | Fsm.Established -> 5

let fsm_of_code = function
  | 0 -> Fsm.Idle
  | 1 -> Fsm.Connect
  | 2 -> Fsm.Active
  | 3 -> Fsm.Open_sent
  | 4 -> Fsm.Open_confirm
  | 5 -> Fsm.Established
  | c -> invalid_arg (Printf.sprintf "Router.restore: bad FSM code %d" c)

(* slot payload: kind(1) peer(4) prefix(5) [src(13)] route — without the
   slot header byte *)
let encode_slot_payload w key payload_route src_opt =
  (match key with
  | Slot_loc prefix ->
    Wbuf.u8 w 1;
    Wbuf.u32 w 0;
    encode_prefix w prefix
  | Slot_adj_in (peer, prefix) ->
    Wbuf.u8 w 2;
    Wbuf.u32 w peer;
    encode_prefix w prefix
  | Slot_adj_out (peer, prefix) ->
    Wbuf.u8 w 3;
    Wbuf.u32 w peer;
    encode_prefix w prefix);
  (match src_opt with
  | Some (src : Route.src) ->
    Wbuf.u32 w src.Route.peer_addr;
    Wbuf.u32 w src.Route.peer_asn;
    Wbuf.u32 w src.Route.peer_bgp_id;
    Wbuf.u8 w (if src.Route.ebgp then 1 else 0)
  | None -> ());
  encode_route w payload_route

(* A frozen image: O(#peers) to take, because the RIBs are persistent
   tries — holding references to the current versions is exactly the
   copy-on-write semantics of fork(). The live router may keep mutating;
   this image stays consistent. Serialization happens later, off the
   live node's critical path. *)
type image = {
  of_router : t;  (* slot map owner: keeps the byte layout stable *)
  img_updates : int;
  img_loc : Rib.Loc.t;
  img_peers : (Ipv4.t * Fsm.state * bool * Rib.Adj.t * Rib.Adj.t) list;
}

let freeze t =
  {
    of_router = t;
    img_updates = t.updates;
    img_loc = t.loc;
    img_peers =
      Hashtbl.fold
        (fun addr p acc -> (addr, p.fsm, p.as4, p.adj_in, p.adj_out) :: acc)
        t.peers []
      |> List.sort (fun (a, _, _, _, _) (b, _, _, _, _) -> compare a b);
  }

(* current entries of all tables, with their serialized payloads *)
let live_entries img =
  let out = ref [] in
  Rib.Loc.fold
    (fun prefix e () ->
      let w = Wbuf.create () in
      encode_slot_payload w (Slot_loc prefix) e.Rib.Loc.route (Some e.Rib.Loc.src);
      out := (Slot_loc prefix, Wbuf.contents w) :: !out)
    img.img_loc ();
  List.iter
    (fun (addr, _, _, adj_in, adj_out) ->
      Rib.Adj.fold
        (fun prefix route () ->
          let w = Wbuf.create () in
          encode_slot_payload w (Slot_adj_in (addr, prefix)) route None;
          out := (Slot_adj_in (addr, prefix), Wbuf.contents w) :: !out)
        adj_in ();
      Rib.Adj.fold
        (fun prefix route () ->
          let w = Wbuf.create () in
          encode_slot_payload w (Slot_adj_out (addr, prefix)) route None;
          out := (Slot_adj_out (addr, prefix), Wbuf.contents w) :: !out)
        adj_out ())
    img.img_peers;
  !out

let serialize img =
  let t = img.of_router in
  let entries = live_entries img in
  let live = Hashtbl.create (List.length entries) in
  List.iter (fun (k, payload) -> Hashtbl.replace live k payload) entries;
  (* free slots whose entry disappeared *)
  let stale =
    Hashtbl.fold (fun k idx acc -> if Hashtbl.mem live k then acc else (k, idx) :: acc)
      t.slots []
  in
  List.iter
    (fun (k, idx) ->
      Hashtbl.remove t.slots k;
      t.free_slots <- idx :: t.free_slots)
    stale;
  t.free_slots <- List.sort_uniq Int.compare t.free_slots;
  (* assign slots to new keys in deterministic order *)
  let fresh =
    List.filter (fun (k, _) -> not (Hashtbl.mem t.slots k)) entries
    |> List.sort (fun (a, _) (b, _) -> compare_slot_key a b)
  in
  List.iter
    (fun (k, _) ->
      match t.free_slots with
      | idx :: rest ->
        t.free_slots <- rest;
        Hashtbl.replace t.slots k idx
      | [] ->
        Hashtbl.replace t.slots k t.next_slot;
        t.next_slot <- t.next_slot + 1)
    fresh;
  (* header *)
  let header = Wbuf.create () in
  Wbuf.string header magic;
  Wbuf.u32 header img.img_updates;
  Wbuf.u16 header (List.length img.img_peers);
  List.iter
    (fun (addr, fsm, as4, _, _) ->
      Wbuf.u32 header addr;
      Wbuf.u8 header (fsm_code fsm);
      Wbuf.u8 header (if as4 then 1 else 0))
    img.img_peers;
  Wbuf.u32 header t.next_slot;
  let header_bytes = Wbuf.contents header in
  let header_room = ((Bytes.length header_bytes / slot_size) + 1) * slot_size in
  (* slot region + overflow *)
  let region = Bytes.make (header_room + (t.next_slot * slot_size)) '\000' in
  Bytes.blit header_bytes 0 region 0 (Bytes.length header_bytes);
  let overflow = Wbuf.create () in
  let n_overflow = ref 0 in
  Hashtbl.iter
    (fun k idx ->
      let payload = Hashtbl.find live k in
      let off = header_room + (idx * slot_size) in
      if Bytes.length payload <= slot_size - 1 then begin
        Bytes.set region off '\001';
        Bytes.blit payload 0 region (off + 1) (Bytes.length payload)
      end
      else begin
        (* oversized: mark the slot as spilled and store linearly *)
        Bytes.set region off '\002';
        Wbuf.u16 overflow (Bytes.length payload);
        Wbuf.bytes overflow payload;
        incr n_overflow
      end)
    t.slots;
  let tail = Wbuf.create () in
  Wbuf.u32 tail !n_overflow;
  Wbuf.bytes tail (Wbuf.contents overflow);
  Bytes.cat region (Wbuf.contents tail)

let snapshot t = serialize (freeze t)

let decode_slot_payload t r =
  let kind = Rbuf.u8 ~what:"slot kind" r in
  let peer_addr = Rbuf.u32 ~what:"slot peer" r in
  let prefix = decode_prefix r in
  match kind with
  | 1 ->
    let sa = Rbuf.u32 ~what:"src addr" r in
    let sasn = Rbuf.u32 ~what:"src asn" r in
    let sid = Rbuf.u32 ~what:"src id" r in
    let ebgp = Rbuf.u8 ~what:"src ebgp" r = 1 in
    let route = decode_route r in
    t.loc <-
      Rib.Loc.set prefix
        { Rib.Loc.route;
          src = { Route.peer_addr = sa; peer_asn = sasn; peer_bgp_id = sid; ebgp } }
        t.loc;
    Slot_loc prefix
  | 2 | 3 -> begin
    let route = decode_route r in
    match Hashtbl.find_opt t.peers peer_addr with
    | Some p ->
      if kind = 2 then p.adj_in <- Rib.Adj.add prefix route p.adj_in
      else p.adj_out <- Rib.Adj.add prefix route p.adj_out;
      if kind = 2 then Slot_adj_in (peer_addr, prefix) else Slot_adj_out (peer_addr, prefix)
    | None ->
      invalid_arg
        (Printf.sprintf "Router.restore: snapshot peer %s not in configuration"
           (Ipv4.to_string peer_addr))
  end
  | k -> invalid_arg (Printf.sprintf "Router.restore: bad slot kind %d" k)

let restore cfg image =
  let r = Rbuf.of_bytes image in
  let m = Bytes.to_string (Rbuf.take ~what:"magic" r (String.length magic)) in
  if m <> magic then invalid_arg "Router.restore: bad magic";
  let t = create cfg in
  t.loc <- Rib.Loc.empty;  (* statics come back through the loc slots *)
  t.updates <- Rbuf.u32 ~what:"updates" r;
  let n_peers = Rbuf.u16 ~what:"peer count" r in
  for _ = 1 to n_peers do
    let addr = Rbuf.u32 ~what:"peer addr" r in
    let fsm = fsm_of_code (Rbuf.u8 ~what:"fsm" r) in
    let as4 = Rbuf.u8 ~what:"as4" r = 1 in
    match Hashtbl.find_opt t.peers addr with
    | Some p ->
      p.fsm <- fsm;
      p.as4 <- as4
    | None ->
      invalid_arg
        (Printf.sprintf "Router.restore: snapshot peer %s not in configuration"
           (Ipv4.to_string addr))
  done;
  let n_slots = Rbuf.u32 ~what:"slot count" r in
  let header_len = Rbuf.pos r in
  let header_room = ((header_len / slot_size) + 1) * slot_size in
  if Bytes.length image < header_room + (n_slots * slot_size) + 4 then
    invalid_arg "Router.restore: image shorter than its slot region";
  t.next_slot <- n_slots;
  let spilled = ref [] in
  for idx = 0 to n_slots - 1 do
    let off = header_room + (idx * slot_size) in
    match Bytes.get image off with
    | '\000' -> t.free_slots <- idx :: t.free_slots
    | '\001' ->
      let sr = Rbuf.of_bytes (Bytes.sub image (off + 1) (slot_size - 1)) in
      let key = decode_slot_payload t sr in
      Hashtbl.replace t.slots key idx
    | '\002' -> spilled := idx :: !spilled
    | c -> invalid_arg (Printf.sprintf "Router.restore: bad slot marker %C" c)
  done;
  t.free_slots <- List.sort_uniq Int.compare t.free_slots;
  (* overflow region *)
  let tail_off = header_room + (n_slots * slot_size) in
  let tail = Rbuf.of_bytes (Bytes.sub image tail_off (Bytes.length image - tail_off)) in
  let n_overflow = Rbuf.u32 ~what:"overflow count" tail in
  if n_overflow <> List.length !spilled then
    invalid_arg "Router.restore: overflow count does not match spilled slots";
  (* spilled slots were recorded in Hashtbl.iter order at snapshot time;
     we cannot recover that order, so overflow entries carry their own
     payloads and we re-associate by decoding in file order and assigning
     the spilled slot indices in ascending order (both sides sort) *)
  let spilled = List.sort Int.compare !spilled in
  List.iter
    (fun idx ->
      let len = Rbuf.u16 ~what:"overflow len" tail in
      let body = Rbuf.sub tail len in
      let key = decode_slot_payload t body in
      Hashtbl.replace t.slots key idx)
    spilled;
  t

(* ------------------------------------------------------------------ *)
(* In-process cloning                                                  *)
(* ------------------------------------------------------------------ *)

let clone t =
  let peers = Hashtbl.create (Hashtbl.length t.peers) in
  Hashtbl.iter
    (fun addr p ->
      (* fresh mutable cell per peer; the Adj-RIB tries inside are
         persistent and stay physically shared with the live router *)
      Hashtbl.replace peers addr
        { pcfg = p.pcfg; fsm = p.fsm; adj_in = p.adj_in; adj_out = p.adj_out; as4 = p.as4 })
    t.peers;
  {
    cfg = t.cfg;
    peers;
    statics = t.statics;
    loc = t.loc;
    updates = t.updates;
    slots = Hashtbl.copy t.slots;
    next_slot = t.next_slot;
    free_slots = t.free_slots;
  }
