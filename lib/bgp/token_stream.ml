open Dice_inet
module L = Config_lexer

type t = { toks : (L.token * int) array; mutable pos : int }

let of_string src = { toks = Array.of_list (L.lex src); pos = 0 }
let peek st = fst st.toks.(st.pos)
let cur_line st = snd st.toks.(st.pos)
let fail st msg = raise (Config_parser.Parse_error { line = cur_line st; msg })
let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1
let at_eof st = peek st = L.EOF

let next st =
  let tk = peek st in
  advance st;
  tk

let expect st tok what =
  let tk = next st in
  if tk <> tok then fail st (Printf.sprintf "expected %s, got %s" what (L.token_to_string tk))

let expect_ident st kw =
  match next st with
  | L.IDENT s when s = kw -> ()
  | tk -> fail st (Printf.sprintf "expected %S, got %s" kw (L.token_to_string tk))

let int_ st what =
  match next st with
  | L.INT n -> n
  | tk -> fail st (Printf.sprintf "expected %s, got %s" what (L.token_to_string tk))

let ip st what =
  match next st with
  | L.IP a -> a
  | tk -> fail st (Printf.sprintf "expected %s, got %s" what (L.token_to_string tk))

let ident st what =
  match next st with
  | L.IDENT s -> s
  | tk -> fail st (Printf.sprintf "expected %s, got %s" what (L.token_to_string tk))

let prefix st what =
  match next st with
  | L.PREFIX p -> p
  | L.IP a -> Prefix.host a
  | tk -> fail st (Printf.sprintf "expected %s, got %s" what (L.token_to_string tk))

let community st =
  let a = int_ st "community AS part" in
  expect st L.COLON "':'";
  let v = int_ st "community value part" in
  if a > 0xFFFF || v > 0xFFFF then fail st "community parts must be <= 65535";
  Community.make a v

let pattern st =
  let base = prefix st "prefix pattern" in
  let bl = Prefix.len base in
  match peek st with
  | L.PLUS ->
    advance st;
    { Filter.base; low = bl; high = 32 }
  | L.MINUS ->
    advance st;
    { Filter.base; low = 0; high = bl }
  | L.LBRACE ->
    advance st;
    let low = int_ st "pattern low bound" in
    expect st L.COMMA "','";
    let high = int_ st "pattern high bound" in
    expect st L.RBRACE "'}'";
    if low > high || high > 32 then fail st "bad pattern bounds";
    { Filter.base; low; high }
  | _ -> { Filter.base; low = bl; high = bl }

let pattern_list st =
  expect st L.LBRACK "'['";
  let rec go acc =
    let p = pattern st in
    match peek st with
    | L.COMMA ->
      advance st;
      go (p :: acc)
    | L.RBRACK ->
      advance st;
      List.rev (p :: acc)
    | _ -> fail st "expected ',' or ']' in prefix set"
  in
  go []
