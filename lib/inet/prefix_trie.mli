(** A binary radix trie keyed by CIDR prefixes: the data structure behind
    the routing tables.

    Supports exact lookup, longest-prefix match, enumeration of covering
    (less-specific) and covered (more-specific) entries — the queries the
    RIB and the hijack checker need. Purely functional so that checkpoint
    clones can share structure. *)

type 'a t

val empty : 'a t

val is_empty : 'a t -> bool

val cardinal : 'a t -> int
(** Number of bound prefixes. O(1). *)

val add : Prefix.t -> 'a -> 'a t -> 'a t
(** Bind (or replace the binding of) a prefix. *)

val remove : Prefix.t -> 'a t -> 'a t
(** Remove a binding; identity if absent. *)

val find_opt : Prefix.t -> 'a t -> 'a option
(** Exact-prefix lookup. *)

val mem : Prefix.t -> 'a t -> bool

val update : Prefix.t -> ('a option -> 'a option) -> 'a t -> 'a t
(** [update p f t] applies [f] to the current binding of [p]; [f None]
    inserts, [f (Some v) = None] deletes. *)

val longest_match : Ipv4.t -> 'a t -> (Prefix.t * 'a) option
(** The most-specific bound prefix containing the address — the forwarding
    lookup. *)

val descent : Ipv4.t -> 'a t -> (Prefix.t * bool) list
(** The node prefixes an LPM walk for the address visits, in root-to-leaf
    order, each with whether the node is bound. Includes the first
    non-containing node where the walk stops (if any) — the comparisons a
    real radix-trie lookup performs, which the concolic import path
    instruments. *)

val covering : Prefix.t -> 'a t -> (Prefix.t * 'a) list
(** All bound prefixes that subsume the argument (including an exact match),
    shortest first. *)

val covered : Prefix.t -> 'a t -> (Prefix.t * 'a) list
(** All bound prefixes subsumed by the argument (including an exact match),
    in prefix order. *)

val fold : (Prefix.t -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
(** Fold over bindings in prefix order. *)

val iter : (Prefix.t -> 'a -> unit) -> 'a t -> unit

val to_list : 'a t -> (Prefix.t * 'a) list
(** Bindings in prefix order. *)

val of_list : (Prefix.t * 'a) list -> 'a t

val map : ('a -> 'b) -> 'a t -> 'b t

val filter : (Prefix.t -> 'a -> bool) -> 'a t -> 'a t

val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool

val node_count : 'a t -> int
(** Trie nodes (bound and fork), not bindings — the unit {!shared_nodes}
    counts in. *)

val shared_nodes : 'a t -> 'a t -> int
(** Nodes of the second trie that are {e physically} ([==]) subtrees of
    the first — the memory two persistent tries actually share. After a
    copy-on-write clone plus one insert, everything off the insert path
    is shared: [shared_nodes live clone] approaches
    [node_count clone]. O(n) in the two tries' sizes. *)
