(* Path-compressed binary radix trie. Each [Node] stores the full prefix it
   represents; children hold strictly longer prefixes that agree with the
   parent's bits and differ at bit [len parent]: [left] for a 0 bit, [right]
   for 1. A node either carries a value, or is a fork with two non-empty
   children (internal join points are never kept when redundant). *)

type 'a t =
  | Empty
  | Node of { prefix : Prefix.t; value : 'a option; left : 'a t; right : 'a t; count : int }

let empty = Empty

let is_empty t = t = Empty

let cardinal = function
  | Empty -> 0
  | Node n -> n.count

let count_of = cardinal

let mk prefix value left right =
  let c = (match value with Some _ -> 1 | None -> 0) + count_of left + count_of right in
  Node { prefix; value; left; right; count = c }

(* Rebuild a node, collapsing it if it carries no value and has at most one
   child (path compression). *)
let node prefix value left right =
  match (value, left, right) with
  | None, Empty, Empty -> Empty
  | None, (Node _ as child), Empty | None, Empty, (Node _ as child) -> child
  | Some _, _, _ | None, Node _, Node _ -> mk prefix value left right

(* Length of the longest common prefix of [p] and [q]. *)
let common_len p q =
  let limit = min (Prefix.len p) (Prefix.len q) in
  let x = Ipv4.to_int32 (Prefix.network p) and y = Ipv4.to_int32 (Prefix.network q) in
  let diff = Int32.to_int (Int32.logxor x y) land 0xFFFFFFFF in
  if diff = 0 then limit
  else begin
    (* index of highest set bit, counting bit 0 as the MSB of the word *)
    let rec top i = if diff lsr (31 - i) <> 0 then i else top (i + 1) in
    min limit (top 0)
  end

(* Bit [i] of prefix [q]'s network address (valid for i < 32, even beyond
   [len q] since the tail is zero — callers only use i < len q). *)
let qbit q i = Ipv4.bit (Prefix.network q) i

let rec add p v t =
  match t with
  | Empty -> mk p (Some v) Empty Empty
  | Node n ->
    if Prefix.equal p n.prefix then mk p (Some v) n.left n.right
    else begin
      let c = common_len p n.prefix in
      if c = Prefix.len n.prefix then
        (* p is strictly below n.prefix *)
        if qbit p (Prefix.len n.prefix) then mk n.prefix n.value n.left (add p v n.right)
        else mk n.prefix n.value (add p v n.left) n.right
      else if c = Prefix.len p then
        (* n.prefix is strictly below p: insert p above n *)
        if qbit n.prefix (Prefix.len p) then mk p (Some v) Empty t
        else mk p (Some v) t Empty
      else begin
        (* fork at the common prefix *)
        let join = Prefix.make (Prefix.network p) c in
        let leaf = mk p (Some v) Empty Empty in
        if qbit p c then mk join None t leaf else mk join None leaf t
      end
    end

let rec remove p t =
  match t with
  | Empty -> Empty
  | Node n ->
    if Prefix.equal p n.prefix then node n.prefix None n.left n.right
    else if Prefix.subsumes n.prefix p && Prefix.len n.prefix < Prefix.len p then
      if qbit p (Prefix.len n.prefix) then node n.prefix n.value n.left (remove p n.right)
      else node n.prefix n.value (remove p n.left) n.right
    else t

let rec find_opt p t =
  match t with
  | Empty -> None
  | Node n ->
    if Prefix.equal p n.prefix then n.value
    else if Prefix.subsumes n.prefix p && Prefix.len n.prefix < Prefix.len p then
      find_opt p (if qbit p (Prefix.len n.prefix) then n.right else n.left)
    else None

let mem p t = find_opt p t <> None

let update p f t =
  match f (find_opt p t) with
  | Some v -> add p v t
  | None -> remove p t

let longest_match addr t =
  let rec go best t =
    match t with
    | Empty -> best
    | Node n ->
      if Prefix.contains n.prefix addr then begin
        let best =
          match n.value with
          | Some v -> Some (n.prefix, v)
          | None -> best
        in
        if Prefix.len n.prefix >= 32 then best
        else go best (if Ipv4.bit addr (Prefix.len n.prefix) then n.right else n.left)
      end
      else best
  in
  go None t

let descent addr t =
  let rec go acc t =
    match t with
    | Empty -> List.rev acc
    | Node n ->
      let acc = (n.prefix, n.value <> None) :: acc in
      if Prefix.contains n.prefix addr && Prefix.len n.prefix < 32 then
        go acc (if Ipv4.bit addr (Prefix.len n.prefix) then n.right else n.left)
      else List.rev acc
  in
  go [] t

let covering p t =
  let rec go acc t =
    match t with
    | Empty -> List.rev acc
    | Node n ->
      if Prefix.subsumes n.prefix p then begin
        let acc =
          match n.value with
          | Some v -> (n.prefix, v) :: acc
          | None -> acc
        in
        if Prefix.len n.prefix >= Prefix.len p then List.rev acc
        else go acc (if qbit p (Prefix.len n.prefix) then n.right else n.left)
      end
      else List.rev acc
  in
  go [] t

let rec fold f t acc =
  match t with
  | Empty -> acc
  | Node n ->
    let acc =
      match n.value with
      | Some v -> f n.prefix v acc
      | None -> acc
    in
    fold f n.right (fold f n.left acc)

let covered p t =
  (* descend to the subtree rooted at/below p, then collect everything *)
  let rec go t =
    match t with
    | Empty -> []
    | Node n ->
      if Prefix.subsumes p n.prefix then
        List.rev (fold (fun q v acc -> (q, v) :: acc) t [])
      else if Prefix.subsumes n.prefix p then
        if Prefix.len n.prefix = Prefix.len p then
          (* same prefix: n.prefix = p, handled by first branch *)
          []
        else go (if qbit p (Prefix.len n.prefix) then n.right else n.left)
      else []
  in
  go t

let iter f t = fold (fun p v () -> f p v) t ()

let to_list t = List.rev (fold (fun p v acc -> (p, v) :: acc) t [])

let of_list l = List.fold_left (fun t (p, v) -> add p v t) Empty l

let rec map f t =
  match t with
  | Empty -> Empty
  | Node n ->
    Node
      { prefix = n.prefix;
        value = Option.map f n.value;
        left = map f n.left;
        right = map f n.right;
        count = n.count;
      }

let filter pred t =
  fold (fun p v acc -> if pred p v then add p v acc else acc) t Empty

let equal eq a b =
  let la = to_list a and lb = to_list b in
  List.length la = List.length lb
  && List.for_all2 (fun (p, v) (q, w) -> Prefix.equal p q && eq v w) la lb

(* ------------------------------------------------------------------ *)
(* Physical structural sharing                                         *)
(* ------------------------------------------------------------------ *)

let rec node_count = function
  | Empty -> 0
  | Node n -> 1 + node_count n.left + node_count n.right

let shared_nodes a b =
  (* Index [a]'s subtree roots by their prefix, then walk [b]: a node of
     [b] that is physically ([==]) a subtree of [a] contributes its whole
     subtree (physical equality is hereditary — a shared block's children
     are reachable from [a] too) and the walk stops there. *)
  let tbl : (Prefix.t, 'a t list) Hashtbl.t = Hashtbl.create 256 in
  let rec index t =
    match t with
    | Empty -> ()
    | Node n ->
      let bucket = match Hashtbl.find_opt tbl n.prefix with Some l -> l | None -> [] in
      Hashtbl.replace tbl n.prefix (t :: bucket);
      index n.left;
      index n.right
  in
  index a;
  let rec walk acc t =
    match t with
    | Empty -> acc
    | Node n ->
      let hit =
        match Hashtbl.find_opt tbl n.prefix with
        | Some bucket -> List.exists (fun x -> x == t) bucket
        | None -> false
      in
      if hit then acc + node_count t else walk (walk acc n.left) n.right
  in
  walk 0 b
