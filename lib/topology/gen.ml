open Dice_inet
module Rng = Dice_util.Rng
module Spec = Topology.Spec

let base_asn = 3000

let default_speakers = Dice_core.Speakers.names

let auto_tier1 n = min 8 (max 1 (n / 4))

(* Preferential attachment over the already-placed domains, as in
   Dice_trace.Asgraph: roulette over degree+1, so early well-connected
   providers keep attracting customers and the degree distribution goes
   heavy-tailed like the real AS graph. *)
let roulette rng deg upto =
  let total = ref 0 in
  for j = 0 to upto - 1 do
    total := !total + deg.(j) + 1
  done;
  let r = Rng.int rng !total in
  let acc = ref 0 and hit = ref 0 in
  (try
     for j = 0 to upto - 1 do
       acc := !acc + deg.(j) + 1;
       if r < !acc then begin
         hit := j;
         raise Exit
       end
     done
   with Exit -> ());
  !hit

let generate ?(speakers = default_speakers) ?n_tier1 ~seed ~domains () =
  if domains < 1 then invalid_arg "Gen.generate: domains must be positive";
  if domains > Spec.max_domains then
    invalid_arg
      (Printf.sprintf "Gen.generate: at most %d domains" Spec.max_domains);
  if speakers = [] then invalid_arg "Gen.generate: empty speaker list";
  let rng = Rng.create seed in
  let n = domains in
  let t1 =
    match n_tier1 with
    | Some k ->
      if k < 1 then invalid_arg "Gen.generate: n_tier1 must be positive";
      min k n
    | None -> auto_tier1 n
  in
  let speaker_arr = Array.of_list speakers in
  let name i = Printf.sprintf "d%d" i in
  let prefix_of i octet1 =
    Prefix.make (Ipv4.of_octets octet1 (64 + (i / 256)) (i mod 256) 0) 24
  in
  let specs =
    List.init n (fun i ->
        let prefixes =
          if Rng.chance rng 0.3 then [ prefix_of i 100; prefix_of i 101 ]
          else [ prefix_of i 100 ]
        in
        Spec.domain ~speaker:(Rng.pick rng speaker_arr) ~prefixes (name i)
          ~asn:(base_asn + i))
  in
  let deg = Array.make n 0 in
  let linked = Hashtbl.create (4 * n) in
  let links = ref [] in
  let add_link l i j =
    links := l :: !links;
    deg.(i) <- deg.(i) + 1;
    deg.(j) <- deg.(j) + 1;
    Hashtbl.replace linked (min i j, max i j) ()
  in
  (* tier-1 core: a full settlement-free mesh *)
  for i = 1 to t1 - 1 do
    for j = 0 to i - 1 do
      add_link (Spec.peering (name j) (name i)) i j
    done
  done;
  (* everyone below the core buys transit from one or two established
     providers, then sometimes peers sideways with an unrelated domain *)
  for i = t1 to n - 1 do
    let p1 = roulette rng deg i in
    add_link (Spec.transit ~customer:(name i) ~provider:(name p1) ()) i p1;
    if Rng.chance rng 0.3 then begin
      let p2 = roulette rng deg i in
      if not (Hashtbl.mem linked (min i p2, max i p2)) then
        add_link (Spec.transit ~customer:(name i) ~provider:(name p2) ()) i p2
    end;
    if i > t1 && Rng.chance rng 0.15 then begin
      let j = t1 + Rng.int rng (i - t1) in
      if j <> i && not (Hashtbl.mem linked (min i j, max i j)) then
        add_link (Spec.peering (name i) (name j)) i j
    end
  done;
  Spec.make ~domains:specs ~links:(List.rev !links) ()
