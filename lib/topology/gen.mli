(** Seeded AS-level topology synthesis.

    Builds fleet-scale {!Topology.Spec} graphs the way the Internet
    grew: a small tier-1 clique of settlement-free peers, every later
    domain buying transit from one or two providers picked by
    preferential attachment (so degree goes heavy-tailed), plus
    occasional sideways peering. The graph is connected by
    construction, valley-free by the spec's export policies, and a pure
    function of the seed — the same [(seed, domains)] pair regenerates
    the identical spec, byte-for-byte through
    {!Topology.Spec.to_string}, which is what lets
    [gen-topology --seed S --domains N] emit a file any run can replay.

    Domains are named [d0..dN-1] with ASNs [3000+i], originate one
    (sometimes two) /24s from the 100/101.x test ranges, and draw their
    speaker implementation from [speakers] — heterogeneous by
    default. *)

val base_asn : int
(** 3000. *)

val default_speakers : string list
(** The full {!Dice_core.Speakers.names} registry. *)

val auto_tier1 : int -> int
(** The default tier-1 clique size for an [n]-domain fleet:
    [min 8 (max 1 (n / 4))]. *)

val generate :
  ?speakers:string list ->
  ?n_tier1:int ->
  seed:int64 ->
  domains:int ->
  unit ->
  Topology.Spec.t
(** @raise Invalid_argument on a non-positive domain count, a count
    beyond {!Topology.Spec.max_domains}, an empty speaker list, or a
    non-positive [n_tier1]. *)
