(** The paper's experimental topology (Figure 2): a Customer AS, a
    Provider AS running the DiCE-enabled router, and a "Rest of the
    Internet" AS that replays a (RouteViews-style) BGP trace into the
    provider.

    {v
         Customer ---- Provider ---- Rest of the Internet
         (AS 64501)    (AS 64510,     (AS 64700, trace collector)
                        DiCE here)
    v}

    The provider applies customer route filtering on import from the
    customer — "a best common practice currently adopted by several large
    ISPs to defend against BGP prefix hijacking" (§4). The filter can be
    built correct, partially correct, or missing, to reproduce the
    misconfigurations of §4.2. *)

open Dice_inet
open Dice_bgp

val customer_as : int
(** 64501 *)

val provider_as : int
(** 64510 *)

val internet_as : int
(** 64700 *)

val customer_addr : Ipv4.t
[@@deprecated "use Topology.Spec.address (spec f) ~of_:\"customer\" ~toward:\"provider\""]
(** 10.0.1.2 *)

val provider_addr_customer_side : Ipv4.t
[@@deprecated "use Topology.Spec.address (spec f) ~of_:\"provider\" ~toward:\"customer\""]
(** 10.0.1.1 *)

val provider_addr_internet_side : Ipv4.t
[@@deprecated "use Topology.Spec.address (spec f) ~of_:\"provider\" ~toward:\"internet\""]
(** 10.0.2.1 *)

val internet_addr : Ipv4.t
[@@deprecated "use Topology.Spec.address (spec f) ~of_:\"internet\" ~toward:\"provider\""]
(** 10.0.2.2 *)

val customer_prefixes : Prefix.t list
(** The address space the customer legitimately holds
    (203.0.113.0/24 and 198.51.100.0/22). *)

(** How the provider filters customer announcements. *)
type filtering =
  | Correct  (** only the customer's own space, max length /28 *)
  | Partially_correct
      (** the paper's scenario: one customer block is matched too
          loosely, so covering space can be hijacked through it *)
  | Missing  (** no customer route filtering at all (import all) *)

val filtering_to_string : filtering -> string

val provider_config : filtering -> Config_types.t
val customer_config : unit -> Config_types.t
val internet_config : unit -> Config_types.t

val spec : filtering -> Topology.Spec.t
(** The topology as a 3-domain {!Topology.Spec}: the hand-written
    configurations above attached as programmatic overrides, the
    historical addressing as link address overrides. [build] is
    [Topology.Sim.realize] over it — the one construction path. *)

type t = {
  net : Dice_sim.Network.t;
  customer : Router_node.t;
  provider : Router_node.t;
  internet : Router_node.t;
}

val build : filtering -> t
(** Create the three simulated routers, link and bind them. Sessions are
    not yet started. *)

val start : t -> unit
(** Start all sessions and run the simulation until they establish.
    @raise Failure if they do not establish within simulated 60 s. *)

val load_table : t -> Dice_trace.Gen.t -> int
(** Replay a trace dump from the Internet node into the provider
    (simulated traffic); runs the network until quiescent. Returns the
    provider's Loc-RIB size afterwards. *)

val provider_router : t -> Router.t
