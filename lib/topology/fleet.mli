(** The fleet runner: N DiCE-enabled domains over one {!Topology.Spec}.

    [realize] instantiates every domain's speaker (each through its own
    implementation and dialect — heterogeneous by construction), wraps
    each as a {!Dice_core.Distributed} agent, and builds the switching
    fabric that routes speaker output messages to the neighbor sessions
    the spec's links imply. [drive] then pushes a seeded
    RouteViews-style update stream through every domain's collector
    feed concurrently on the worker pool; exports ripple through the
    fleet in synchronous waves until quiescence.

    Crash tolerance follows the panel's rule ({!Dice_core.Panel.eligible}):
    a member whose health monitor says {!Dice_core.Health.Down} is
    excluded from the drive loop itself — its feeds are skipped and
    messages routed to it are dropped and counted, never waited on — so
    a crashed domain cannot silently stall the stream.

    Memory at fleet scale stays flat two ways, both measurable here:
    probes and explorer clones share the live speaker's route storage
    through {!Dice_inet.Prefix_trie} structural sharing
    ([rib_sharing]), and checkpoint pages dedup {e across} explorer
    clones and domains in one content-addressed
    {!Dice_checkpoint.Store} ([checkpoint_all] + the store's dedup
    counters). *)

open Dice_inet
open Dice_core

type t

val realize : ?rpc:bool -> ?store:Dice_checkpoint.Store.t -> Topology.Spec.t -> t
(** Build every speaker and agent. [store] (default: a fresh one) backs
    the whole fleet's checkpoint pages — pass a shared store to dedup
    across fleets too. [rpc] (default [false]) additionally puts every
    member behind a {!Probe_rpc} server on one simulated network, wired
    to an exploring client with heartbeats every 0.5 virtual seconds —
    the cross-network probing fabric of the paper's §2.4.
    @raise Invalid_argument if a domain's speaker or configuration is
    rejected by its implementation. *)

val establish : t -> unit
(** Drive every configured session (links and collector feeds) to
    Established, administratively. *)

val spec : t -> Topology.Spec.t
val size : t -> int
val store : t -> Dice_checkpoint.Store.t

val speaker : t -> string -> Speaker.instance
(** @raise Invalid_argument on an unknown domain. *)

val agent : t -> string -> Distributed.agent
(** The domain's [Local] agent — probe it, read its stats, or mark its
    health down to crash it out of the drive loop.
    @raise Invalid_argument on an unknown domain. *)

val agents : t -> Distributed.agent list
(** Every member's agent, in domain order. *)

(** {1 RPC fabric} (when realized with [~rpc:true]) *)

val rpc_net : t -> Dice_sim.Network.t option
val rpc_client : t -> Probe_rpc.client option
val rpc_server : t -> string -> Probe_rpc.server option

val remote_agent : t -> string -> Distributed.agent option
(** A [Remote] agent reaching the domain's server over the wire — the
    same speaker as {!agent}, probed through {!Probe_wire} frames. *)

val remote_agents : t -> (string * Distributed.agent) list

(** {1 Driving} *)

type stats = {
  domains : int;
  fed : int;  (** collector updates injected across all feeds *)
  delivered : int;  (** messages processed by members, propagation included *)
  emitted : int;  (** messages members emitted in response *)
  to_collector : int;  (** emissions addressed outside the fleet *)
  dropped_down : int;  (** messages dropped because their target was Down *)
  skipped_feeds : int;  (** collector updates withheld from Down members *)
  probes : int;  (** online probes issued (with [probe_every]) *)
  verdicts : int;  (** per-prefix verdicts those probes returned *)
  rounds : int;  (** propagation waves until quiescence *)
}

val default_updates_per_domain : int
(** 64. *)

val drive :
  ?jobs:int ->
  ?max_rounds:int ->
  ?probe_every:int ->
  ?updates_per_domain:int ->
  ?seed:int64 ->
  t ->
  stats
(** Generate each live domain a seeded trace ([seed + domain index], so
    streams differ but the whole run replays from one seed), feed them
    concurrently ([jobs] workers, each speaker owned by one worker per
    wave), and propagate to quiescence (or [max_rounds], default 64).
    [probe_every = k > 0] first probes every k-th routed message
    against its target agent — DiCE's online test running inside the
    stream — and counts the verdicts. *)

val originate :
  ?jobs:int -> ?max_rounds:int -> t -> domain:string -> Prefix.t -> (string * string * Prefix.t) list
(** Announce [prefix] as originated by [domain] (injected on its
    collector feed with the domain's own AS as path) and propagate to
    quiescence, returning every resulting announcement hop as
    [(sender, receiver, prefix)] in delivery order — the observable the
    valley-free property is asserted on.
    @raise Invalid_argument on an unknown domain. *)

(** {1 Memory accounting} *)

val rib_sharing : t -> domain:string -> int * int
(** [(shared, total)]: take an explorer clone of the domain's live
    speaker, let it import one synthetic announcement, and count the
    Loc-RIB trie nodes the clone still physically shares with the live
    table versus the clone's total — near-total sharing is the
    flat-memory claim. Implementations that materialize their Loc-RIB
    view on demand (mutable-table speakers) report 0 shared; measure on
    a persistent-trie domain ([bird]). *)

val checkpoint_all : ?clones:int -> t -> unit
(** Capture every member's snapshot — plus [clones] (default 1)
    mutated explorer-clone snapshots each — into the fleet's shared
    store, holding them live so {!Dice_checkpoint.Store.dedup_ratio}
    and {!Dice_checkpoint.Store.resident_bytes} measure cross-clone,
    cross-domain page dedup. Release with {!release_checkpoints}. *)

val release_checkpoints : t -> unit
