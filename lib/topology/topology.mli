(** The topology API: declarative AS-level specs and their realizations.

    A {!Spec.t} says {e what} the federation looks like — domains
    (one BGP speaker each) and inter-domain links carrying Gao-Rexford
    business roles (customer / provider / peer) — and nothing about how
    it runs. Realizations consume it: {!Spec.intent_of} emits each
    domain's dialect-neutral {!Dice_bgp.Intent.t} (valley-free export
    policies included, so any registered speaker implementation can
    realize its domain), {!Sim} builds a simulated-network testbed of
    BIRD-style routers from it, and {!Fleet} instantiates N DiCE-enabled
    speakers over it for fleet-scale online testing.

    Specs also have a concrete text format ([gen-topology -o FILE] /
    [detect-leaks --topology FILE]): {!Spec.parse} and {!Spec.to_string}
    round-trip byte-for-byte on the canonical rendering, which is what
    makes a generated topology replayable from its seed. *)

open Dice_inet
open Dice_bgp

module Spec : sig
  (** What one endpoint of a link {e is} to the other, in Gao-Rexford
      terms: a [Customer] buys transit from a [Provider]; [Peer]s
      exchange their customer cones settlement-free. *)
  type role =
    | Customer
    | Provider
    | Peer

  val role_to_string : role -> string

  type domain = {
    name : string;  (** [[a-z0-9_]+], at most 32 chars *)
    asn : int;
    speaker : string;  (** a {!Dice_core.Speakers} registry name *)
    prefixes : Prefix.t list;  (** the address space this domain originates *)
    config : Config_types.t option;
        (** programmatic override: run this concrete configuration
            instead of realizing {!intent_of} — how {!Threerouter}
            keeps its hand-written filters. Not part of the text
            format. *)
  }

  type link = {
    a : string;
    b : string;
    a_role : role;  (** what [a] is to [b] *)
    b_role : role;
    addrs : (Ipv4.t * Ipv4.t) option;
        (** programmatic override of the auto address plan:
            [(a]'s address, [b]'s address[)]. Not part of the text
            format. *)
    latency : float;  (** seconds, for simulated realizations *)
  }

  type t = { domains : domain list; links : link list }

  exception Parse_error of string

  val feed_as : int
  (** 64700 — the collector ("rest of the Internet") AS every domain's
      feed session peers with. *)

  val default_latency : float
  (** 0.005 s; links at this latency render without a latency clause. *)

  val max_domains : int
  (** 4096 — the feed/router-id address carve-outs' capacity. *)

  val max_links : int
  (** 16384 — the auto link address plan's capacity. *)

  (** {1 Smart constructors} *)

  val domain :
    ?speaker:string ->
    ?prefixes:Prefix.t list ->
    ?config:Config_types.t ->
    string ->
    asn:int ->
    domain
  (** [speaker] defaults to ["bird"].
      @raise Invalid_argument on a malformed name or an AS outside
      [1, 2^32). *)

  val transit :
    ?addrs:Ipv4.t * Ipv4.t ->
    ?latency:float ->
    customer:string ->
    provider:string ->
    unit ->
    link
  (** A transit link: the customer buys full-table service from the
      provider. @raise Invalid_argument on a self-link. *)

  val peering : ?addrs:Ipv4.t * Ipv4.t -> ?latency:float -> string -> string -> link
  (** A settlement-free peer link. @raise Invalid_argument on a
      self-link. *)

  val make : domains:domain list -> links:link list -> unit -> t
  (** Validate the whole spec: at least one domain, unique names and
      ASNs, registered speakers, per-domain duplicate
      prefixes, link endpoints that exist, no self or duplicate links,
      symmetric role pairs ([Customer]/[Provider] or [Peer]/[Peer]),
      finite non-negative latencies, and the address-plan bounds
      (4096 domains, 16384 links). @raise Invalid_argument naming the
      offender. *)

  (** {1 Lookups and the address plan} *)

  val find_domain : t -> string -> domain option
  val find_domain_exn : t -> string -> domain

  val domain_index : t -> string -> int
  (** Position in [t.domains] — the stable index the address plan is
      keyed on. @raise Invalid_argument on an unknown name. *)

  val link_addrs : t -> link -> Ipv4.t * Ipv4.t
  (** The link's [(a, b)] addresses: the override if given, else the
      auto plan [10.(64+i/256).(i mod 256).{1,2}] for link index [i] —
      disjoint from hand-addressed specs in 10.0–10.63 and from the
      feed/router-id carve-outs. *)

  val feed_addr : t -> string -> Ipv4.t
  (** The address of the domain's trace-collector peer
      ([10.(128+j/256).(j mod 256).1] for domain index [j]) — where a
      fleet injects RouteViews-style update streams. *)

  val router_id : t -> string -> Ipv4.t
  (** [10.(160+j/256).(j mod 256).1] for domain index [j]. *)

  type neighbor = {
    peer_name : string;
    peer_role : role;  (** what the neighbor is {e to this domain} *)
    my_addr : Ipv4.t;
    peer_addr : Ipv4.t;
    link_latency : float;
  }

  val neighbors : t -> string -> neighbor list
  (** One entry per incident link, in link order.
      @raise Invalid_argument on an unknown name. *)

  val address : t -> of_:string -> toward:string -> Ipv4.t
  (** [of_]'s address on the link between the two domains.
      @raise Invalid_argument if no such link exists. *)

  (** {1 Intent realization} *)

  val relationship_communities : Community.t list
  (** The (65010, 1|2|3) tags [intent_of] marks customer-, peer- and
      provider-learned routes with. *)

  val intent_of : t -> string -> Intent.t
  (** The domain's dialect-neutral configuration: one session per
      incident link plus the collector feed session, statics for its
      prefixes, and valley-free policies — import tags the relationship
      community and ranks customer (local-pref 120) over peer (100)
      over provider (80); export to a customer is open; export toward a
      peer or provider permits only customer-learned and
      self-originated routes, default deny. Any registered speaker can
      realize it through its own dialect. *)

  (** {1 Text format} *)

  val to_string : t -> string
  (** Canonical rendering: domains then links, one construct per line,
      transit links normalized to [customer -> provider]. Programmatic
      overrides ([config], [addrs]) are not representable.
      [to_string (parse s)] equals [to_string spec] for any [spec] that
      produced [s] — byte-for-byte, which is what seed-replayable
      generated topologies rely on. *)

  val parse : string -> t
  (** Parse the text format ([#] comments allowed); the result passes
      through {!make}. @raise Parse_error on malformed input or a spec
      {!make} rejects. *)

  val parse_file : string -> t

  val equal : t -> t -> bool
  (** Canonical-text equality (ignores programmatic overrides). *)
end

(** The simulated-testbed realization: every domain as a BIRD-style
    {!Dice_bgp.Router_node} on one {!Dice_sim.Network}, links bound
    with their latencies. Domains without a [config] override run
    {!Spec.intent_of} through the reference compiler. *)
module Sim : sig
  type t

  val realize : Spec.t -> t
  (** Build and wire the routers. Sessions are not yet started. *)

  val net : t -> Dice_sim.Network.t
  val spec : t -> Spec.t

  val node : t -> string -> Router_node.t
  (** @raise Invalid_argument on an unknown domain. *)

  val start : t -> unit
  (** Start every router and run the simulation until each domain has
      established one session per incident link.
      @raise Failure if they do not establish within simulated 60 s. *)
end
