open Dice_inet
open Dice_bgp
open Dice_core
module Net = Dice_sim.Network
module Store = Dice_checkpoint.Store
module Pool = Dice_exec.Pool
module Trace_gen = Dice_trace.Gen
module Spec = Topology.Spec

type member = {
  index : int;
  domain : Spec.domain;
  speaker : Speaker.instance;
  agent : Distributed.agent;
  feed_peer : Ipv4.t;
  neighbors : Spec.neighbor list;
  mutable inbox : (Ipv4.t * Msg.t) list;  (* next wave's arrivals, in order *)
}

type rpc = {
  net : Net.t;
  client : Probe_rpc.client;
  servers : (string * Probe_rpc.server) list;
  remote_agents : (string * Distributed.agent) list;
}

type t = {
  spec : Spec.t;
  members : member array;
  by_name : (string, int) Hashtbl.t;
  (* a member's address on some link -> (member index, arrival session):
     the fleet's switching fabric for speaker output messages *)
  routes : (Ipv4.t, int * Ipv4.t) Hashtbl.t;
  store : Store.t;
  mutable snaps : Store.snapshot list;
  rpc : rpc option;
}

let spec t = t.spec
let store t = t.store
let size t = Array.length t.members

let member t name =
  match Hashtbl.find_opt t.by_name name with
  | Some i -> t.members.(i)
  | None -> invalid_arg (Printf.sprintf "Fleet: unknown domain %s" name)

let speaker t name = (member t name).speaker
let agent t name = (member t name).agent
let agents t = Array.to_list t.members |> List.map (fun m -> m.agent)

let rpc_net t = Option.map (fun r -> r.net) t.rpc

let rpc_client t = Option.map (fun r -> r.client) t.rpc

let rpc_server t name =
  Option.bind t.rpc (fun r -> List.assoc_opt name r.servers)

let remote_agent t name =
  Option.bind t.rpc (fun r -> List.assoc_opt name r.remote_agents)

let remote_agents t =
  match t.rpc with None -> [] | Some r -> r.remote_agents

let heartbeat_horizon = 3600.0

let realize ?(rpc = false) ?store:st (spec : Spec.t) =
  let store = match st with Some s -> s | None -> Store.create () in
  let members =
    Array.of_list
      (List.mapi
         (fun i (d : Spec.domain) ->
           let source =
             match d.config with
             | Some c -> Speaker.Config c
             | None -> Speaker.Intent (Spec.intent_of spec d.name)
           in
           let speaker = Speakers.create_exn d.speaker source in
           let agent =
             Distributed.agent ~name:d.name ~addr:(Spec.router_id spec d.name)
               ~explorer_addr:(Spec.feed_addr spec d.name)
               (Distributed.Local speaker)
           in
           { index = i; domain = d; speaker; agent;
             feed_peer = Spec.feed_addr spec d.name;
             neighbors = Spec.neighbors spec d.name; inbox = [] })
         spec.domains)
  in
  let by_name = Hashtbl.create (Array.length members) in
  Array.iter (fun m -> Hashtbl.add by_name m.domain.name m.index) members;
  let routes = Hashtbl.create (4 * Array.length members) in
  Array.iter
    (fun m ->
      List.iter
        (fun (n : Spec.neighbor) ->
          (* a message addressed to my [my_addr] is mine, arriving on the
             session my config knows as the neighbor's address *)
          Hashtbl.replace routes n.my_addr (m.index, n.peer_addr))
        m.neighbors)
    members;
  let rpc =
    if not rpc then None
    else begin
      let net = Net.create () in
      let client = Probe_rpc.client net ~name:"explorer" in
      let servers, remote_agents =
        Array.to_list members
        |> List.map (fun m ->
               let server = Distributed.serve net m.agent in
               Net.connect net (Probe_rpc.client_node client)
                 (Probe_rpc.server_node server) ~latency:0.001;
               let ep =
                 Probe_rpc.endpoint client ~server:(Probe_rpc.server_node server)
               in
               Probe_rpc.start_heartbeats ~until:heartbeat_horizon server
                 ~to_:(Probe_rpc.client_node client) ~period:0.5
                 ~incarnation:(fun () -> 0)
                 ~state_version:(fun () -> Speaker.updates_processed m.speaker)
                 ()
               |> ignore;
               let remote =
                 Distributed.agent ~name:(m.domain.name ^ "_rpc")
                   ~addr:(Spec.router_id spec m.domain.name)
                   ~explorer_addr:m.feed_peer (Distributed.Remote ep)
               in
               ((m.domain.name, server), (m.domain.name, remote)))
        |> List.split
      in
      Some { net; client; servers; remote_agents }
    end
  in
  { spec; members; by_name; routes; store; snaps = []; rpc }

let establish t =
  Array.iter
    (fun m ->
      List.iter
        (fun (n : Spec.neighbor) -> Speaker.establish m.speaker ~peer:n.peer_addr)
        m.neighbors;
      Speaker.establish m.speaker ~peer:m.feed_peer)
    t.members

(* ------------------------------------------------------------------ *)
(* The update-stream drive loop                                        *)
(* ------------------------------------------------------------------ *)

type stats = {
  domains : int;
  fed : int;
  delivered : int;
  emitted : int;
  to_collector : int;
  dropped_down : int;
  skipped_feeds : int;
  probes : int;
  verdicts : int;
  rounds : int;
}

let live_names t =
  let live, _down = Panel.eligible (agents t) in
  let s = Hashtbl.create (List.length live) in
  List.iter (fun a -> Hashtbl.replace s (Distributed.agent_name a) ()) live;
  s

(* Synchronous waves: every live member with queued arrivals processes its
   whole batch on the worker pool (one worker per member, so a speaker is
   only ever touched by one domain at a time), then the emitted messages
   are routed — in deterministic member order — into the receivers'
   inboxes for the next wave. BGP's loop detection makes the flood
   terminate; [max_rounds] bounds it anyway. *)
let run_waves ?(jobs = 1) ?(max_rounds = 64) ?(probe_every = 0) ?record t =
  let delivered = ref 0 and emitted = ref 0 and to_collector = ref 0 in
  let dropped_down = ref 0 and probes = ref 0 and verdicts = ref 0 in
  let rounds = ref 0 in
  let pending () = Array.exists (fun m -> m.inbox <> []) t.members in
  while pending () && !rounds < max_rounds do
    incr rounds;
    let live = live_names t in
    let work =
      Array.to_list t.members
      |> List.filter_map (fun m ->
             if m.inbox = [] then None
             else if not (Hashtbl.mem live m.domain.name) then begin
               (* a crashed domain can't stall the stream: its arrivals
                  are dropped, not waited on *)
               dropped_down := !dropped_down + List.length m.inbox;
               m.inbox <- [];
               None
             end
             else begin
               let batch = m.inbox in
               m.inbox <- [];
               Some (m, batch)
             end)
    in
    let outputs =
      Pool.map ~jobs
        (fun (m, batch) ->
          let outs =
            List.concat_map
              (fun (peer, msg) -> Speaker.feed m.speaker ~peer msg)
              batch
          in
          (m, List.length batch, outs))
        work
    in
    let next = Array.make (Array.length t.members) [] in
    List.iter
      (fun (m, n_in, outs) ->
        delivered := !delivered + n_in;
        List.iter
          (fun (dst, msg) ->
            incr emitted;
            match Hashtbl.find_opt t.routes dst with
            | None -> incr to_collector
            | Some (j, arrival) ->
              let target = t.members.(j) in
              if not (Hashtbl.mem live target.domain.name) then incr dropped_down
              else begin
                if probe_every > 0 && !emitted mod probe_every = 0 then begin
                  incr probes;
                  match Distributed.probe target.agent ~from:arrival msg with
                  | Distributed.Verdicts vs -> verdicts := !verdicts + List.length vs
                  | Distributed.Declined _ | Distributed.Timeout -> ()
                end;
                (match record with
                | Some log ->
                  List.iter
                    (fun (u : Msg.update) ->
                      List.iter
                        (fun p -> log := (m.domain.name, target.domain.name, p) :: !log)
                        u.nlri)
                    (match msg with Msg.Update u -> [ u ] | _ -> [])
                | None -> ());
                next.(j) <- (arrival, msg) :: next.(j)
              end)
          outs)
      outputs;
    Array.iteri
      (fun j arrivals ->
        if arrivals <> [] then
          t.members.(j).inbox <- t.members.(j).inbox @ List.rev arrivals)
      next
  done;
  ( !delivered, !emitted, !to_collector, !dropped_down, !probes, !verdicts, !rounds )

let default_updates_per_domain = 64

let drive ?(jobs = 1) ?max_rounds ?probe_every ?(updates_per_domain = default_updates_per_domain)
    ?(seed = 7L) t =
  let live = live_names t in
  let fed = ref 0 and skipped_feeds = ref 0 in
  Array.iter
    (fun m ->
      let trace =
        Trace_gen.generate
          { Trace_gen.default_params with
            Trace_gen.seed = Int64.add seed (Int64.of_int m.index);
            n_prefixes = updates_per_domain;
            n_ases = 100;
            duration = 0.0 }
      in
      let msgs =
        Trace_gen.to_updates trace ~peer_as:Spec.feed_as ~next_hop:m.feed_peer
      in
      if Hashtbl.mem live m.domain.name then begin
        fed := !fed + List.length msgs;
        m.inbox <- m.inbox @ List.map (fun msg -> (m.feed_peer, msg)) msgs
      end
      else skipped_feeds := !skipped_feeds + List.length msgs)
    t.members;
  let delivered, emitted, to_collector, dropped_down, probes, verdicts, rounds =
    run_waves ~jobs ?max_rounds ?probe_every t
  in
  { domains = Array.length t.members; fed = !fed; delivered; emitted; to_collector;
    dropped_down; skipped_feeds = !skipped_feeds; probes; verdicts; rounds }

let originate ?(jobs = 1) ?max_rounds t ~domain:name prefix =
  let m = member t name in
  (* An empty AS path: the injection looks locally sourced, so it clears
     the origin's own loop detection, and once the origin prepends its AS
     on export the valley-free policies see it as self-originated. *)
  let msg =
    Msg.Update
      { withdrawn = [];
        attrs =
          [ Attr.Origin Attr.Igp; Attr.As_path []; Attr.Next_hop m.feed_peer ];
        nlri = [ prefix ] }
  in
  m.inbox <- m.inbox @ [ (m.feed_peer, msg) ];
  let log = ref [] in
  let _ = run_waves ~jobs ?max_rounds ~record:log t in
  List.rev !log

(* ------------------------------------------------------------------ *)
(* Memory accounting                                                   *)
(* ------------------------------------------------------------------ *)

let probe_prefix = Prefix.of_string "192.0.2.0/24"

let clone_mutated m =
  let c = Speaker.clone m.speaker in
  let msg =
    Msg.Update
      { withdrawn = [];
        attrs =
          [ Attr.Origin Attr.Igp;
            Attr.As_path [ Asn.Path.Seq [ Spec.feed_as; 65400 ] ];
            Attr.Next_hop m.feed_peer ];
        nlri = [ probe_prefix ] }
  in
  ignore (Speaker.feed c ~peer:m.feed_peer msg);
  c

let rib_sharing t ~domain:name =
  let m = member t name in
  let c = clone_mutated m in
  let live = Speaker.loc_rib m.speaker and cl = Speaker.loc_rib c in
  (Rib.Loc.shared_nodes live cl, Rib.Loc.trie_nodes cl)

let checkpoint_all ?(clones = 1) t =
  Array.iter
    (fun m ->
      t.snaps <- Store.capture t.store (Speaker.snapshot m.speaker) :: t.snaps;
      for _ = 1 to clones do
        t.snaps <-
          Store.capture t.store (Speaker.snapshot (clone_mutated m)) :: t.snaps
      done)
    t.members

let release_checkpoints t =
  List.iter Store.release t.snaps;
  t.snaps <- []
