open Dice_inet
open Dice_bgp
module Net = Dice_sim.Network

module Spec = struct
  type role =
    | Customer
    | Provider
    | Peer

  let role_to_string = function
    | Customer -> "customer"
    | Provider -> "provider"
    | Peer -> "peer"

  type domain = {
    name : string;
    asn : int;
    speaker : string;
    prefixes : Prefix.t list;
    config : Config_types.t option;
  }

  type link = {
    a : string;
    b : string;
    a_role : role;
    b_role : role;
    addrs : (Ipv4.t * Ipv4.t) option;
    latency : float;
  }

  type t = { domains : domain list; links : link list }

  exception Parse_error of string

  let feed_as = 64700
  let default_latency = 0.005
  let max_domains = 4096
  let max_links = 16384

  let name_ok s =
    s <> ""
    && String.length s <= 32
    && String.for_all
         (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_')
         s

  let domain ?(speaker = "bird") ?(prefixes = []) ?config name ~asn =
    if not (name_ok name) then
      invalid_arg (Printf.sprintf "Spec.domain: bad name %S (want [a-z0-9_]+)" name);
    if asn < 1 || asn > 0xFFFF_FFFF then
      invalid_arg (Printf.sprintf "Spec.domain %s: AS %d out of range" name asn);
    { name; asn; speaker; prefixes; config }

  let transit ?addrs ?(latency = default_latency) ~customer ~provider () =
    if customer = provider then
      invalid_arg (Printf.sprintf "Spec.transit: %s linked to itself" customer);
    { a = customer; b = provider; a_role = Customer; b_role = Provider; addrs; latency }

  let peering ?addrs ?(latency = default_latency) x y =
    if x = y then invalid_arg (Printf.sprintf "Spec.peering: %s linked to itself" x);
    { a = x; b = y; a_role = Peer; b_role = Peer; addrs; latency }

  let make ~domains ~links () =
    if domains = [] then invalid_arg "Spec.make: no domains";
    if List.length domains > max_domains then
      invalid_arg
        (Printf.sprintf "Spec.make: more than %d domains" max_domains);
    if List.length links > max_links then
      invalid_arg (Printf.sprintf "Spec.make: more than %d links" max_links);
    let seen = Hashtbl.create 64 and asns = Hashtbl.create 64 in
    List.iter
      (fun d ->
        if not (name_ok d.name) then
          invalid_arg (Printf.sprintf "Spec.make: bad domain name %S" d.name);
        if Hashtbl.mem seen d.name then
          invalid_arg (Printf.sprintf "Spec.make: duplicate domain %s" d.name);
        Hashtbl.add seen d.name ();
        if d.asn < 1 || d.asn > 0xFFFF_FFFF then
          invalid_arg (Printf.sprintf "Spec.make: %s: AS %d out of range" d.name d.asn);
        if Hashtbl.mem asns d.asn then
          invalid_arg (Printf.sprintf "Spec.make: duplicate AS %d (%s)" d.asn d.name);
        Hashtbl.add asns d.asn ();
        if not (List.mem d.speaker Dice_core.Speakers.names) then
          invalid_arg
            (Printf.sprintf "Spec.make: %s: unknown speaker %S" d.name d.speaker);
        let ps = Hashtbl.create 8 in
        List.iter
          (fun p ->
            if Hashtbl.mem ps p then
              invalid_arg
                (Printf.sprintf "Spec.make: %s: duplicate prefix %s" d.name
                   (Prefix.to_string p));
            Hashtbl.add ps p ())
          d.prefixes)
      domains;
    let pairs = Hashtbl.create 64 in
    List.iter
      (fun l ->
        if not (Hashtbl.mem seen l.a) then
          invalid_arg (Printf.sprintf "Spec.make: link endpoint %s is not a domain" l.a);
        if not (Hashtbl.mem seen l.b) then
          invalid_arg (Printf.sprintf "Spec.make: link endpoint %s is not a domain" l.b);
        if l.a = l.b then
          invalid_arg (Printf.sprintf "Spec.make: %s linked to itself" l.a);
        (match (l.a_role, l.b_role) with
        | Customer, Provider | Provider, Customer | Peer, Peer -> ()
        | _ ->
          invalid_arg
            (Printf.sprintf "Spec.make: link %s(%s) -- %s(%s): asymmetric roles" l.a
               (role_to_string l.a_role) l.b (role_to_string l.b_role)));
        let key = if l.a < l.b then (l.a, l.b) else (l.b, l.a) in
        if Hashtbl.mem pairs key then
          invalid_arg (Printf.sprintf "Spec.make: duplicate link %s -- %s" l.a l.b);
        Hashtbl.add pairs key ();
        if not (Float.is_finite l.latency) || l.latency < 0.0 then
          invalid_arg (Printf.sprintf "Spec.make: link %s -- %s: bad latency" l.a l.b))
      links;
    { domains; links }

  let find_domain t name = List.find_opt (fun d -> d.name = name) t.domains

  let find_domain_exn t name =
    match find_domain t name with
    | Some d -> d
    | None -> invalid_arg (Printf.sprintf "Spec: unknown domain %s" name)

  let domain_index t name =
    let rec go i = function
      | [] -> invalid_arg (Printf.sprintf "Spec: unknown domain %s" name)
      | d :: _ when d.name = name -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 t.domains

  (* Address plan: three disjoint carve-outs of 10/8, so generated fleets
     never collide with hand-addressed specs living in 10.0-10.63.
       link i (auto)   10.(64 + i/256).(i mod 256).{1,2}
       feed, domain j  10.(128 + j/256).(j mod 256).1
       router-id, j    10.(160 + j/256).(j mod 256).1 *)
  let link_addrs t l =
    match l.addrs with
    | Some ab -> ab
    | None ->
      let rec index i = function
        | [] -> invalid_arg "Spec.link_addrs: link not in spec"
        | x :: _ when x == l || (x.a = l.a && x.b = l.b) -> i
        | _ :: tl -> index (i + 1) tl
      in
      let i = index 0 t.links in
      let o2 = 64 + (i / 256) and o3 = i mod 256 in
      (Ipv4.of_octets 10 o2 o3 1, Ipv4.of_octets 10 o2 o3 2)

  let feed_addr t name =
    let j = domain_index t name in
    Ipv4.of_octets 10 (128 + (j / 256)) (j mod 256) 1

  let router_id t name =
    let j = domain_index t name in
    Ipv4.of_octets 10 (160 + (j / 256)) (j mod 256) 1

  type neighbor = {
    peer_name : string;
    peer_role : role;
    my_addr : Ipv4.t;
    peer_addr : Ipv4.t;
    link_latency : float;
  }

  let neighbors t name =
    ignore (find_domain_exn t name);
    List.filter_map
      (fun l ->
        let aa, ba = link_addrs t l in
        if l.a = name then
          Some
            { peer_name = l.b; peer_role = l.b_role; my_addr = aa; peer_addr = ba;
              link_latency = l.latency }
        else if l.b = name then
          Some
            { peer_name = l.a; peer_role = l.a_role; my_addr = ba; peer_addr = aa;
              link_latency = l.latency }
        else None)
      t.links

  let address t ~of_ ~toward =
    let ns = neighbors t of_ in
    match List.find_opt (fun n -> n.peer_name = toward) ns with
    | Some n -> n.my_addr
    | None ->
      invalid_arg (Printf.sprintf "Spec.address: no link between %s and %s" of_ toward)

  (* Valley-free realization, as dialect-neutral intent (Gao-Rexford
     export rules). Import from each neighbor class tags the route with a
     relationship community and ranks it customer > peer > provider;
     export to a customer is open, export toward a peer or provider
     passes only customer-learned and self-originated routes. *)
  let c_customer = Community.make 65010 1
  let c_peer = Community.make 65010 2
  let c_provider = Community.make 65010 3

  let relationship_communities = [ c_customer; c_peer; c_provider ]

  let import_policy name tag lp =
    Intent.policy ~default:Intent.Deny name
      [ Intent.permit
          ~actions:
            [ Intent.Delete_community c_customer;
              Intent.Delete_community c_peer;
              Intent.Delete_community c_provider;
              Intent.Add_community tag;
              Intent.Set_local_pref lp ]
          () ]

  let intent_of t name =
    let d = find_domain_exn t name in
    let ns = neighbors t name in
    let exp_up =
      Intent.policy ~default:Intent.Deny "exp_up"
        [ Intent.permit ~matches:[ Intent.Has_community c_customer ] ();
          Intent.permit ~matches:[ Intent.Originated_by d.asn ] ();
          Intent.deny () ]
    in
    let policies =
      [ import_policy "imp_customer" c_customer 120;
        import_policy "imp_peer" c_peer 100;
        import_policy "imp_provider" c_provider 80;
        exp_up ]
    in
    let sessions =
      List.map
        (fun n ->
          let peer_asn = (find_domain_exn t n.peer_name).asn in
          let import, export =
            match n.peer_role with
            | Customer -> (Intent.Apply "imp_customer", Intent.Open)
            | Peer -> (Intent.Apply "imp_peer", Intent.Apply "exp_up")
            | Provider -> (Intent.Apply "imp_provider", Intent.Apply "exp_up")
          in
          Intent.session ("n_" ^ n.peer_name) ~neighbor:n.peer_addr
            ~remote_as:peer_asn ~import ~export)
        ns
      @ [ Intent.session "feed" ~neighbor:(feed_addr t name) ~remote_as:feed_as
            ~import:Intent.Open ~export:Intent.Block ]
    in
    let rid = router_id t name in
    Intent.make ~router_id:rid ~local_as:d.asn ~policies ~sessions
      ~statics:(List.map (fun p -> (p, rid)) d.prefixes)
      ()

  (* ---------------------------------------------------------------- *)
  (* Text format                                                       *)
  (* ---------------------------------------------------------------- *)

  let to_string t =
    let b = Buffer.create 1024 in
    Buffer.add_string b "topology {\n";
    List.iter
      (fun d ->
        Printf.bprintf b "  domain %s {\n" d.name;
        Printf.bprintf b "    as %d;\n" d.asn;
        Printf.bprintf b "    speaker %s;\n" d.speaker;
        List.iter (fun p -> Printf.bprintf b "    prefix %s;\n" (Prefix.to_string p)) d.prefixes;
        Buffer.add_string b "  }\n")
      t.domains;
    List.iter
      (fun l ->
        let lhs, op, rhs =
          match (l.a_role, l.b_role) with
          | Customer, Provider -> (l.a, "->", l.b)
          | Provider, Customer -> (l.b, "->", l.a)
          | _ -> (l.a, "--", l.b)
        in
        if l.latency = default_latency then Printf.bprintf b "  link %s %s %s;\n" lhs op rhs
        else Printf.bprintf b "  link %s %s %s latency %.6g;\n" lhs op rhs l.latency)
      t.links;
    Buffer.add_string b "}\n";
    Buffer.contents b

  let tokenize s =
    let toks = ref [] in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      let c = s.[!i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
      else if c = '#' then begin
        while !i < n && s.[!i] <> '\n' do incr i done
      end
      else if c = '{' || c = '}' || c = ';' then begin
        toks := String.make 1 c :: !toks;
        incr i
      end
      else begin
        let start = !i in
        while
          !i < n
          &&
          let c = s.[!i] in
          not
            (c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = '{' || c = '}'
           || c = ';' || c = '#')
        do
          incr i
        done;
        toks := String.sub s start (!i - start) :: !toks
      end
    done;
    List.rev !toks

  let parse text =
    let toks = ref (tokenize text) in
    let peek () = match !toks with [] -> None | t :: _ -> Some t in
    let next what =
      match !toks with
      | [] -> raise (Parse_error (Printf.sprintf "unexpected end of input, wanted %s" what))
      | t :: tl ->
        toks := tl;
        t
    in
    let expect tok =
      let got = next (Printf.sprintf "%S" tok) in
      if got <> tok then
        raise (Parse_error (Printf.sprintf "expected %S, got %S" tok got))
    in
    let int_field what s =
      match int_of_string_opt s with
      | Some n -> n
      | None -> raise (Parse_error (Printf.sprintf "bad %s %S" what s))
    in
    let parse_domain () =
      let name = next "domain name" in
      expect "{";
      let asn = ref None and speaker = ref "bird" and prefixes = ref [] in
      let rec fields () =
        match next "domain field" with
        | "}" -> ()
        | "as" ->
          asn := Some (int_field "AS number" (next "AS number"));
          expect ";";
          fields ()
        | "speaker" ->
          speaker := next "speaker name";
          expect ";";
          fields ()
        | "prefix" ->
          let p = next "prefix" in
          (match Prefix.of_string_opt p with
          | Some p -> prefixes := p :: !prefixes
          | None -> raise (Parse_error (Printf.sprintf "bad prefix %S" p)));
          expect ";";
          fields ()
        | t -> raise (Parse_error (Printf.sprintf "unexpected %S in domain %s" t name))
      in
      fields ();
      match !asn with
      | None -> raise (Parse_error (Printf.sprintf "domain %s: missing \"as\"" name))
      | Some asn ->
        (try domain ~speaker:!speaker ~prefixes:(List.rev !prefixes) name ~asn
         with Invalid_argument m -> raise (Parse_error m))
    in
    let parse_link () =
      let x = next "link endpoint" in
      let op = next "link operator" in
      let y = next "link endpoint" in
      let latency =
        match peek () with
        | Some "latency" ->
          ignore (next "latency");
          let v = next "latency value" in
          (match float_of_string_opt v with
          | Some f -> f
          | None -> raise (Parse_error (Printf.sprintf "bad latency %S" v)))
        | _ -> default_latency
      in
      expect ";";
      try
        match op with
        | "->" -> transit ~latency ~customer:x ~provider:y ()
        | "--" -> peering ~latency x y
        | _ -> raise (Parse_error (Printf.sprintf "expected \"->\" or \"--\", got %S" op))
      with Invalid_argument m -> raise (Parse_error m)
    in
    expect "topology";
    expect "{";
    let domains = ref [] and links = ref [] in
    let rec body () =
      match next "\"domain\", \"link\" or \"}\"" with
      | "}" -> ()
      | "domain" ->
        domains := parse_domain () :: !domains;
        body ()
      | "link" ->
        links := parse_link () :: !links;
        body ()
      | t -> raise (Parse_error (Printf.sprintf "unexpected %S at top level" t))
    in
    body ();
    (match !toks with
    | [] -> ()
    | t :: _ -> raise (Parse_error (Printf.sprintf "trailing input at %S" t)));
    try make ~domains:(List.rev !domains) ~links:(List.rev !links) ()
    with Invalid_argument m -> raise (Parse_error m)

  let parse_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> parse (really_input_string ic (in_channel_length ic)))

  let equal a b = to_string a = to_string b
end

module Sim = struct
  type t = { spec : Spec.t; net : Net.t; nodes : (string * Router_node.t) list }

  let realize (spec : Spec.t) =
    let net = Net.create () in
    let nodes =
      List.map
        (fun (d : Spec.domain) ->
          let cfg =
            match d.config with
            | Some c -> c
            | None -> Intent.compile ~unstated:Intent.Deny (Spec.intent_of spec d.name)
          in
          (d.name, Router_node.attach net ~name:d.name (Router.create cfg)))
        spec.domains
    in
    let node_of name = List.assoc name nodes in
    List.iter
      (fun (l : Spec.link) ->
        let aa, ba = Spec.link_addrs spec l in
        let na = node_of l.a and nb = node_of l.b in
        Net.connect net (Router_node.node_id na) (Router_node.node_id nb)
          ~latency:l.latency;
        Router_node.bind_peer na ~neighbor:ba ~node:(Router_node.node_id nb);
        Router_node.bind_peer nb ~neighbor:aa ~node:(Router_node.node_id na))
      spec.links;
    { spec; net; nodes }

  let net t = t.net
  let spec t = t.spec

  let node t name =
    match List.assoc_opt name t.nodes with
    | Some n -> n
    | None -> invalid_arg (Printf.sprintf "Sim.node: unknown domain %s" name)

  let start t =
    List.iter (fun (_, n) -> Router_node.start n) t.nodes;
    let expected =
      List.map
        (fun (name, n) -> (n, List.length (Spec.neighbors t.spec name)))
        t.nodes
    in
    let established () =
      List.for_all (fun (n, want) -> Router_node.sessions_established n >= want) expected
    in
    let deadline = Net.now t.net +. 60.0 in
    let rec drive () =
      if established () then ()
      else if Net.now t.net >= deadline then
        failwith "Topology.Sim.start: sessions did not establish"
      else begin
        ignore (Net.run ~until:(Net.now t.net +. 1.0) ~max_events:100_000 t.net);
        drive ()
      end
    in
    drive ()
end
