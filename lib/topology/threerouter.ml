open Dice_inet
open Dice_bgp
module Net = Dice_sim.Network

let customer_as = 64501
let provider_as = 64510
let internet_as = 64700

let customer_addr = Ipv4.of_string "10.0.1.2"
let provider_addr_customer_side = Ipv4.of_string "10.0.1.1"
let provider_addr_internet_side = Ipv4.of_string "10.0.2.1"
let internet_addr = Ipv4.of_string "10.0.2.2"

let customer_prefixes =
  [ Prefix.of_string "203.0.113.0/24"; Prefix.of_string "198.51.100.0/22" ]

type filtering =
  | Correct
  | Partially_correct
  | Missing

let filtering_to_string = function
  | Correct -> "correct"
  | Partially_correct -> "partially-correct"
  | Missing -> "missing"

let provider_config filtering =
  let customer_import =
    match filtering with
    | Correct ->
      (* exactly the customer's space, allowing reasonable deaggregation *)
      {|
      filter customer_in {
        if net ~ [ 203.0.113.0/24{24,28}, 198.51.100.0/22{22,28} ] then {
          bgp_local_pref = 120;
          accept;
        }
        reject;
      }
      |}
    | Partially_correct ->
      (* the paper's §4.2 misconfiguration: the second block's filter is
         erroneously loose — it matches on the first 8 bits only, so the
         customer session can originate most of 198/8 (and in particular
         override space the provider already routes) *)
      {|
      filter customer_in {
        if net ~ [ 203.0.113.0/24{24,28}, 198.0.0.0/8{8,28} ] then {
          bgp_local_pref = 120;
          accept;
        }
        reject;
      }
      |}
    | Missing -> ""
  in
  let import_clause =
    match filtering with
    | Missing -> "import all;"
    | Correct | Partially_correct -> "import filter customer_in;"
  in
  Config_parser.parse
    (Printf.sprintf
       {|
       router id 10.0.2.1;
       local as %d;
       %s
       protocol bgp customer {
         neighbor 10.0.1.2 as %d;
         %s
         export all;
         hold time 90;
         keepalive time 30;
       }
       protocol bgp internet {
         neighbor 10.0.2.2 as %d;
         import all;
         export all;
         hold time 90;
         keepalive time 30;
       }
       anycast [ 192.88.99.0/24 ];
       |}
       provider_as customer_import customer_as import_clause internet_as)

let customer_config () =
  Config_parser.parse
    (Printf.sprintf
       {|
       router id 10.0.1.2;
       local as %d;
       protocol static {
         route 203.0.113.0/24 via 10.0.1.2;
         route 198.51.100.0/22 via 10.0.1.2;
       }
       protocol bgp provider {
         neighbor 10.0.1.1 as %d;
         import all;
         export all;
       }
       |}
       customer_as provider_as)

let internet_config () =
  Config_parser.parse
    (Printf.sprintf
       {|
       router id 10.0.2.2;
       local as %d;
       protocol bgp provider {
         neighbor 10.0.2.1 as %d;
         import all;
         export none;
       }
       |}
       internet_as provider_as)

(* The paper's Figure 2 topology, as a 3-domain spec: the hand-written
   dialect configurations above ride along as programmatic overrides, and
   the historical 10.0.{1,2}.x addressing as link address overrides. *)
let spec filtering =
  Topology.Spec.make
    ~domains:
      [ Topology.Spec.domain ~prefixes:customer_prefixes
          ~config:(customer_config ()) "customer" ~asn:customer_as;
        Topology.Spec.domain ~config:(provider_config filtering) "provider"
          ~asn:provider_as;
        Topology.Spec.domain ~config:(internet_config ()) "internet" ~asn:internet_as ]
    ~links:
      [ Topology.Spec.transit
          ~addrs:(customer_addr, provider_addr_customer_side)
          ~latency:0.005 ~customer:"customer" ~provider:"provider" ();
        Topology.Spec.transit
          ~addrs:(provider_addr_internet_side, internet_addr)
          ~latency:0.010 ~customer:"provider" ~provider:"internet" () ]
    ()

type t = {
  net : Net.t;
  customer : Router_node.t;
  provider : Router_node.t;
  internet : Router_node.t;
}

let build filtering =
  let sim = Topology.Sim.realize (spec filtering) in
  { net = Topology.Sim.net sim;
    customer = Topology.Sim.node sim "customer";
    provider = Topology.Sim.node sim "provider";
    internet = Topology.Sim.node sim "internet" }

let start t =
  Router_node.start t.customer;
  Router_node.start t.provider;
  Router_node.start t.internet;
  let deadline = Net.now t.net +. 60.0 in
  let established () =
    Router.established_peers (Router_node.router t.provider)
    |> List.length = 2
  in
  let rec drive () =
    if established () then ()
    else if Net.now t.net >= deadline then
      failwith "Threerouter.start: sessions did not establish"
    else begin
      ignore (Net.run ~until:(Net.now t.net +. 1.0) ~max_events:100_000 t.net);
      drive ()
    end
  in
  drive ()

let load_table t trace =
  let scheduled =
    Dice_trace.Replay.schedule t.net
      ~from_node:(Router_node.node_id t.internet)
      ~to_node:(Router_node.node_id t.provider)
      ~start_at:(Net.now t.net) ~dump_pace:0.0005 ~next_hop:internet_addr
      { trace with Dice_trace.Gen.events = [||] }
  in
  ignore scheduled;
  let horizon =
    Net.now t.net +. (0.0005 *. float_of_int (Array.length trace.Dice_trace.Gen.dump)) +. 5.0
  in
  ignore (Net.run ~until:horizon ~max_events:max_int t.net);
  Rib.Loc.cardinal (Router.loc_rib (Router_node.router t.provider))

let provider_router t = Router_node.router t.provider
