type 'a shard = {
  lock : Mutex.t;
  (* [`Fifo]: push appends to [back], pop drains [front], refilling it from
     [List.rev back]. [`Lifo]: push and pop both use [front]. *)
  mutable front : 'a list;
  mutable back : 'a list;
  mutable size : int;
}

type 'a t = {
  shards : 'a shard array;
  mode : [ `Fifo | `Lifo ];
  master : Mutex.t;  (* guards [inflight], [closed] and the condition *)
  wake : Condition.t;
  mutable inflight : int;
  mutable closed : bool;
  push_cursor : int Atomic.t;
  pop_cursor : int Atomic.t;
}

let create ?(shards = 4) ?(mode = `Fifo) () =
  if shards < 1 then invalid_arg "Jobq.create: shards must be >= 1";
  {
    shards =
      Array.init shards (fun _ ->
          { lock = Mutex.create (); front = []; back = []; size = 0 });
    mode;
    master = Mutex.create ();
    wake = Condition.create ();
    inflight = 0;
    closed = false;
    push_cursor = Atomic.make 0;
    pop_cursor = Atomic.make 0;
  }

let shards t = Array.length t.shards

let shard_push t s x =
  Mutex.lock s.lock;
  (match t.mode with
  | `Fifo -> s.back <- x :: s.back
  | `Lifo -> s.front <- x :: s.front);
  s.size <- s.size + 1;
  Mutex.unlock s.lock

let shard_pop t s =
  Mutex.lock s.lock;
  let item =
    if s.size = 0 then None
    else begin
      (match (t.mode, s.front) with
      | _, [] ->
        s.front <- List.rev s.back;
        s.back <- []
      | _, _ -> ());
      match s.front with
      | [] -> None
      | x :: rest ->
        s.front <- rest;
        s.size <- s.size - 1;
        Some x
    end
  in
  Mutex.unlock s.lock;
  item

let push t x =
  Mutex.lock t.master;
  if t.closed then begin
    Mutex.unlock t.master;
    false
  end
  else begin
    t.inflight <- t.inflight + 1;
    Mutex.unlock t.master;
    let i = Atomic.fetch_and_add t.push_cursor 1 in
    shard_push t t.shards.(i mod Array.length t.shards) x;
    Mutex.lock t.master;
    Condition.signal t.wake;
    Mutex.unlock t.master;
    true
  end

(* Scan every shard once, starting from a rotating cursor. *)
let try_pop t =
  let n = Array.length t.shards in
  let start = Atomic.fetch_and_add t.pop_cursor 1 in
  let rec go k =
    if k = n then None
    else begin
      match shard_pop t t.shards.((start + k) mod n) with
      | Some _ as r -> r
      | None -> go (k + 1)
    end
  in
  go 0

let pop t =
  (* Holding [master] across the scan (shard locks nest briefly inside)
     closes the missed-wakeup window: a push inserts its item before
     signalling under [master], so a scanning pop either sees the item or
     is woken after its wait begins. *)
  Mutex.lock t.master;
  let rec loop () =
    if t.closed || t.inflight = 0 then begin
      Mutex.unlock t.master;
      None
    end
    else begin
      match try_pop t with
      | Some _ as r ->
        Mutex.unlock t.master;
        r
      | None ->
        Condition.wait t.wake t.master;
        loop ()
    end
  in
  loop ()

let task_done t =
  Mutex.lock t.master;
  t.inflight <- t.inflight - 1;
  if t.inflight <= 0 then begin
    t.closed <- true;
    Condition.broadcast t.wake
  end;
  Mutex.unlock t.master

let close t =
  Mutex.lock t.master;
  t.closed <- true;
  (* Discard queued items so [length] agrees with "pops return None";
     shard locks nest inside [master], same order as [pop]. *)
  Array.iter
    (fun s ->
      Mutex.lock s.lock;
      s.front <- [];
      s.back <- [];
      s.size <- 0;
      Mutex.unlock s.lock)
    t.shards;
  Condition.broadcast t.wake;
  Mutex.unlock t.master

let length t =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.lock;
      let n = s.size in
      Mutex.unlock s.lock;
      acc + n)
    0 t.shards
