module E = Dice_concolic.Explorer
module Engine = Dice_concolic.Engine
module Coverage = Dice_concolic.Coverage
module Path = Dice_concolic.Path
module Solver = Dice_concolic.Solver
module Strategy = Dice_concolic.Strategy

(* A pending negation, the parallel counterpart of the sequential
   explorer's worklist item. No [priority]/[order]: ordering lives in the
   queue discipline, and the determinism contract only covers strategies
   whose final result is order-independent. *)
type job = {
  parent_path : Path.entry array;
  parent_seeds : Path.constr list;
  hint : Dice_concolic.Sym.env;
  idx : int;
}

let run_parallel ?(config = E.default_config) ?qcache ~jobs program =
  if jobs < 1 then invalid_arg "Explorer.run_parallel: jobs must be >= 1";
  match config.strategy with
  | Strategy.Cover_new ->
    (* Cover_new's greedy skip consults coverage state at pop time, so
       even its final path set is schedule-dependent; parallel execution
       would silently change results. Delegate to the sequential loop. *)
    E.explore ~config program
  | Strategy.Dfs | Strategy.Generational | Strategy.Random_negation _ ->
    let t0 = Unix.gettimeofday () in
    let qcache = match qcache with Some q -> q | None -> Qcache.create () in
    let space = Engine.Space.create () in
    let coverage = Coverage.create () in
    let attempted : (int * bool) list Dedup.t = Dedup.create ~shards:(max 4 jobs) () in
    let distinct : int64 Dedup.t = Dedup.create ~shards:(max 4 jobs) () in
    let executions = Atomic.make 0 in
    let program_exns = Atomic.make 0 in
    let mode =
      match config.strategy with
      | Strategy.Dfs -> `Lifo (* newest (deepest) negations first *)
      | Strategy.Generational | Strategy.Random_negation _ | Strategy.Cover_new
        ->
        `Fifo
    in
    let queue : job Jobq.t =
      Jobq.create ~shards:(max 1 (min jobs 8)) ~mode ()
    in
    (* Reserve an execution slot against the budget; on exhaustion close
       the queue so blocked workers drain out. *)
    let rec claim_run () =
      let n = Atomic.get executions in
      if n >= config.max_runs then begin
        Jobq.close queue;
        false
      end
      else if Atomic.compare_and_set executions n (n + 1) then true
      else claim_run ()
    in
    (* Run the program once. Coverage is recorded privately and absorbed
       into the shared table afterwards, which also yields this run's
       newly-covered direction count without a racy before/after read. *)
    let execute ~overrides ~expected =
      let private_cov = Coverage.create () in
      let ctx = Engine.create ~coverage:private_cov ~space ~overrides () in
      (try program ctx with
      | (Stack_overflow | Out_of_memory) as fatal ->
        (* resource exhaustion is the explorer's problem, not a
           program-under-test outcome; Pool.run propagates it *)
        raise fatal
      | _exn -> Atomic.incr program_exns);
      let new_directions = Coverage.absorb ~into:coverage private_cov in
      let path = Array.of_list (Engine.path ctx) in
      ignore (Dedup.claim distinct (Path.signature (Array.to_list path)));
      let diverged =
        match expected with
        | None -> false
        | Some (site_id, dir) ->
          not
            (Array.exists
               (fun e ->
                 Path.Site.id e.Path.site = site_id
                 && e.Path.constr.expected_nonzero = dir)
               path)
      in
      let r : E.run =
        {
          index = 0 (* reindexed by Merge.merge *);
          assignment = Engine.assignment ctx ~space;
          path_length = Array.length path;
          new_directions;
          diverged;
        }
      in
      (path, Engine.seed_constraints ctx, Engine.env ctx, r)
    in
    let enqueue_children ~path ~seeds ~hint ~bound =
      let n = min (Array.length path) config.max_depth in
      (* Ascending idx: under `Lifo the deepest lands on top (DFS order),
         under `Fifo shallow-first matches the sequential append. The
         [mem] check is advisory (prunes already-claimed work early); the
         authoritative claim happens when a worker pops the job. *)
      for idx = bound to n - 1 do
        if not (Dedup.mem attempted (E.attempt_key path idx)) then
          (* a [false] return means the budget closed the queue: the
             child is intentionally abandoned, nothing to account *)
          ignore
            (Jobq.push queue { parent_path = path; parent_seeds = seeds; hint; idx })
      done
    in
    let process (tally : Merge.worker_tally) job =
      if Dedup.claim attempted (E.attempt_key job.parent_path job.idx) then begin
        tally.negations_attempted <- tally.negations_attempted + 1;
        let e = job.parent_path.(job.idx) in
        let prefix = Array.to_list (Array.sub job.parent_path 0 job.idx) in
        let prefix_cs =
          job.parent_seeds @ List.map (fun en -> en.Path.constr) prefix
        in
        let negated = Path.negate e.Path.constr in
        let outcome =
          if config.incremental then
            Qcache.solve_inc qcache ~stats:tally.solver_stats
              ~max_repairs:config.solver_max_repairs ~parent:job.hint
              ~prefix:prefix_cs [ negated ]
          else
            Qcache.solve qcache ~stats:tally.solver_stats
              ~max_repairs:config.solver_max_repairs ~hint:job.hint
              (prefix_cs @ [ negated ])
        in
        match outcome with
        | Solver.Unsat -> tally.negations_unsat <- tally.negations_unsat + 1
        | Solver.Gave_up -> tally.negations_gave_up <- tally.negations_gave_up + 1
        | Solver.Sat model ->
          tally.negations_sat <- tally.negations_sat + 1;
          if claim_run () then begin
            let expected =
              Some (Path.Site.id e.Path.site, not e.Path.constr.expected_nonzero)
            in
            let path, seeds, hint, r = execute ~overrides:model ~expected in
            if r.diverged then tally.divergences <- tally.divergences + 1;
            tally.rev_runs <- r :: tally.rev_runs;
            let bound =
              match config.strategy with
              | Strategy.Generational -> job.idx + 1
              | Strategy.Dfs | Strategy.Cover_new | Strategy.Random_negation _
                ->
                0
            in
            enqueue_children ~path ~seeds ~hint ~bound
          end
      end
    in
    let tallies = Array.init jobs (fun w -> Merge.tally_create ~worker:w) in
    let worker w =
      let tally = tallies.(w) in
      let rec loop () =
        match Jobq.pop queue with
        | None -> ()
        | Some job ->
          (* [task_done] must run even if the program under test escapes
             with an exception the engine did not absorb — a stuck
             in-flight count would deadlock every other worker. *)
          Fun.protect
            ~finally:(fun () -> Jobq.task_done queue)
            (fun () -> process tally job);
          loop ()
      in
      loop ()
    in
    (* Initial run: all defaults, executed before any worker starts. *)
    ignore (claim_run ());
    let path0, seeds0, hint0, r0 = execute ~overrides:(Hashtbl.create 0) ~expected:None in
    enqueue_children ~path:path0 ~seeds:seeds0 ~hint:hint0 ~bound:0;
    Pool.run ~jobs worker;
    Merge.merge ~initial_run:r0 ~coverage ~space
      ~distinct_paths:(Dedup.size distinct)
      ~program_exns:(Atomic.get program_exns)
      ~elapsed_s:(Unix.gettimeofday () -. t0)
      tallies
