let available_parallelism () = max 1 (Domain.recommended_domain_count ())

let run ~jobs f =
  if jobs < 1 then invalid_arg "Pool.run: jobs must be >= 1";
  if jobs = 1 then f 0
  else begin
    let failures = Array.make jobs None in
    let domains =
      List.init jobs (fun w ->
          Domain.spawn (fun () ->
              try f w
              with exn ->
                (* captured in the worker, where the original trace still
                   exists — [raise] after the join would rebuild it from
                   the joining domain's (useless) stack *)
                let bt = Printexc.get_raw_backtrace () in
                failures.(w) <- Some (exn, bt)))
    in
    List.iter Domain.join domains;
    Array.iter
      (function
        | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
        | None -> ())
      failures
  end

let map ~jobs f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let jobs = max 1 (min jobs n) in
  if jobs = 1 then List.map f items
  else begin
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    run ~jobs (fun _w ->
        let rec loop () =
          let i = Atomic.fetch_and_add cursor 1 in
          if i < n then begin
            results.(i) <- Some (f arr.(i));
            loop ()
          end
        in
        loop ());
    Array.to_list results
    |> List.map (function
         | Some r -> r
         | None -> assert false (* every index was claimed and completed *))
  end

let iter ~jobs f items = ignore (map ~jobs (fun x -> f x) items)
