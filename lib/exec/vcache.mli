(** A versioned memo cache — the verdict-side sibling of {!Qcache}.

    {!Qcache} memoizes solver queries, whose answers are properties of
    the constraint set alone. Verdicts from a cooperating remote node are
    different: they are computed against that node's {e live state}, so a
    memoized answer is only valid while that state has not moved. Every
    entry therefore carries the version (e.g.
    {!Dice_bgp.Router.updates_processed}) of the state it was computed
    against; a {!find} presenting a newer version misses, and the stale
    entry is evicted. There is no explicit flush: advancing the version
    {e is} the invalidation.

    Polymorphic in key and value; keys are compared structurally and
    hashed with [Hashtbl.hash], so callers should present canonicalized
    keys (e.g. a message's encoded wire bytes rather than its AST).

    Safe for concurrent use from many domains: entries live in sharded
    mutex-protected tables and the hit/miss counters are atomic. *)

type ('k, 'v) t

val create : ?shards:int -> unit -> ('k, 'v) t
(** [shards] defaults to 8.
    @raise Invalid_argument if [shards < 1]. *)

val find : ('k, 'v) t -> version:int -> 'k -> 'v option
(** [find t ~version key] returns the cached value stored for [key] at
    exactly [version]. An entry from any other version counts as a miss
    and is removed. Updates the hit/miss counters. *)

val store : ('k, 'v) t -> version:int -> 'k -> 'v -> unit
(** Record a value computed against [version]. A stale entry for the same
    key is replaced; at the same version the first writer wins (concurrent
    writers compute equal values). *)

val invalidate : ('k, 'v) t -> unit
(** Open a new epoch: every entry stored before this call misses (and
    evicts) from now on, whatever version it carries. This is the
    crash-recovery hatch — a speaker rebuilt from a checkpoint can
    present an [updates_processed] counter that {e collides} with a
    pre-crash value while holding different state, so version stamps
    alone cannot be trusted across a restart. Entries are dropped
    lazily, on their next lookup. *)

val invalidations : ('k, 'v) t -> int
(** {!invalidate} calls so far (the current epoch). *)

val hits : ('k, 'v) t -> int
val misses : ('k, 'v) t -> int

val hit_rate : ('k, 'v) t -> float
(** [hits / (hits + misses)]; [0.] before any query. *)

val size : ('k, 'v) t -> int
(** Entries currently resident (stale ones included until evicted). *)
