(** A sharded, mutex/condition-protected job queue with work tracking.

    Items live in [shards] independent lock-protected queues; pushes are
    spread round-robin and pops scan from a rotating cursor, so concurrent
    workers mostly touch different locks. A single queue-wide condition
    variable handles sleeping when every shard is empty.

    The queue tracks {e in-flight} work: an item counts from [push] until
    the worker that popped it calls {!task_done} (after enqueueing any
    follow-up items). When in-flight reaches zero no work exists and none
    can be created, so the queue finishes and every blocked {!pop} returns
    [None]. This is how the parallel explorer detects saturation of the
    negation worklist without a coordinator.

    Ordering is per-shard [`Fifo] or [`Lifo]; across shards no total order
    is guaranteed — exploration strategies tolerate reordering by design
    (scheduling may reorder runs, never change what is covered). *)

type 'a t

val create : ?shards:int -> ?mode:[ `Fifo | `Lifo ] -> unit -> 'a t
(** [shards] defaults to 4; [mode] defaults to [`Fifo]. [`Lifo] gives the
    newest-first order depth-first exploration wants.
    @raise Invalid_argument if [shards < 1]. *)

val push : 'a t -> 'a -> bool
(** Enqueue an item and account it in-flight; [true] on success. Pushing
    to a closed queue returns [false] and drops the item: by then the
    consumers have decided no further work is wanted — but the caller gets
    to know, instead of the drop being silent. *)

val pop : 'a t -> 'a option
(** Dequeue an item, blocking while the queue is empty but work is still
    in flight. Returns [None] once the queue is closed or drained (no
    items queued and none in flight). The caller must eventually call
    {!task_done} for every [Some] it receives. *)

val task_done : 'a t -> unit
(** Mark one popped item fully processed (including any pushes of child
    work it performed). When the last in-flight item completes the queue
    finishes and wakes every blocked {!pop}. *)

val close : 'a t -> unit
(** Finish the queue early: blocked and future pops return [None]
    (remaining queued items are discarded). Used when an execution budget
    is exhausted. Idempotent. *)

val length : 'a t -> int
(** Items currently queued (not counting popped-but-unfinished ones). *)

val shards : 'a t -> int
