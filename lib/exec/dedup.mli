(** A sharded claim table: concurrent first-writer-wins deduplication.

    The parallel explorer uses two of these — one over negation-attempt
    keys so two workers never re-explore the same negated path, and one
    over path-condition signatures to count distinct executed paths. Keys
    are the 64-bit FNV-style hashes {!Dice_concolic.Path.signature} and
    {!Dice_concolic.Explorer.attempt_key} already produce. *)

type t

val create : ?shards:int -> unit -> t
(** [shards] defaults to 8.
    @raise Invalid_argument if [shards < 1]. *)

val claim : t -> int64 -> bool
(** [claim t key] returns [true] iff this call is the first to present
    [key] — exactly one claimant wins under contention. *)

val mem : t -> int64 -> bool
(** Advisory membership test (racy by nature: a [false] may be stale the
    moment it returns; use {!claim} for the authoritative decision). *)

val size : t -> int
(** Number of distinct keys claimed so far. *)
