(** A sharded claim table: concurrent first-writer-wins deduplication.

    The parallel explorer uses two of these — one over structural
    negation-attempt keys ({!Dice_concolic.Explorer.attempt_key}) so two
    workers never re-explore the same negated path, and one over the
    64-bit path-condition signatures {!Dice_concolic.Path.signature}
    produces, to count distinct executed paths. Keys are hashed to a shard
    with [Hashtbl.hash]; equality within a shard is structural, so
    distinct keys are never conflated. *)

type 'k t

val create : ?shards:int -> unit -> 'k t
(** [shards] defaults to 8.
    @raise Invalid_argument if [shards < 1]. *)

val claim : 'k t -> 'k -> bool
(** [claim t key] returns [true] iff this call is the first to present
    [key] — exactly one claimant wins under contention. *)

val mem : 'k t -> 'k -> bool
(** Advisory membership test (racy by nature: a [false] may be stale the
    moment it returns; use {!claim} for the authoritative decision). *)

val size : 'k t -> int
(** Number of distinct keys claimed so far. *)
