(* Entries carry the version of the authoritative state they were
   computed against. A lookup presents the *current* version; an entry
   stored under any other version is stale — the remote router has
   processed updates since, so the memoized verdict may no longer hold —
   and is evicted on sight rather than left to shadow the slot. *)

type ('k, 'v) shard = { lock : Mutex.t; tbl : ('k, int * int * 'v) Hashtbl.t }
(* entries are (epoch, version, value) *)

type ('k, 'v) t = {
  shards : ('k, 'v) shard array;
  hit_count : int Atomic.t;
  miss_count : int Atomic.t;
  epoch : int Atomic.t;
}

let create ?(shards = 8) () =
  if shards < 1 then invalid_arg "Vcache.create: shards must be >= 1";
  {
    shards =
      Array.init shards (fun _ ->
          { lock = Mutex.create (); tbl = Hashtbl.create 64 });
    hit_count = Atomic.make 0;
    miss_count = Atomic.make 0;
    epoch = Atomic.make 0;
  }

let shard_of t key =
  t.shards.((Hashtbl.hash key land max_int) mod Array.length t.shards)

let find t ~version key =
  let s = shard_of t key in
  let epoch = Atomic.get t.epoch in
  Mutex.lock s.lock;
  let r =
    match Hashtbl.find_opt s.tbl key with
    | Some (e, v, value) when e = epoch && v = version -> Some value
    | Some _ ->
      Hashtbl.remove s.tbl key;
      None
    | None -> None
  in
  Mutex.unlock s.lock;
  (match r with
  | Some _ -> Atomic.incr t.hit_count
  | None -> Atomic.incr t.miss_count);
  r

let store t ~version key value =
  let s = shard_of t key in
  let epoch = Atomic.get t.epoch in
  Mutex.lock s.lock;
  (* Replace stale entries; at the same (epoch, version) the first
     writer wins — concurrent computations of the same key produce
     equal values, so dropping the loser is fine. *)
  (match Hashtbl.find_opt s.tbl key with
  | Some (e, v, _) when e = epoch && v = version -> ()
  | Some _ | None -> Hashtbl.replace s.tbl key (epoch, version, value));
  Mutex.unlock s.lock

let invalidate t = Atomic.incr t.epoch
let invalidations t = Atomic.get t.epoch

let hits t = Atomic.get t.hit_count
let misses t = Atomic.get t.miss_count

let hit_rate t =
  let h = hits t and m = misses t in
  if h + m = 0 then 0. else float_of_int h /. float_of_int (h + m)

let size t =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.lock;
      let n = Hashtbl.length s.tbl in
      Mutex.unlock s.lock;
      acc + n)
    0 t.shards
