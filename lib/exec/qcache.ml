module Lincons = Dice_concolic.Lincons
module Path = Dice_concolic.Path
module Solver = Dice_concolic.Solver
module Sym = Dice_concolic.Sym

(* Keys and stored models identify variables by NAME, not id: ids are
   fresh per input space, so an id-keyed cache could never hit across
   explorations of the same program (the main sharing opportunity — see
   the [qcache] argument of {!Explorer.run_parallel}). Names are what the
   space keeps stable. A model is rehydrated onto the presented
   constraints' ids before being returned, and re-verified, so a name
   collision between unrelated variables degrades to a miss. *)

(* One canonicalized constraint. Linear predicates reduce to their exact
   normal form (so [x + 1 > 0] under different spellings coincide);
   everything else keys on the term with every variable id erased —
   [Sym.t] is a pure algebraic type, so structural comparison and hashing
   of the canonical term are well-defined. *)
type atom =
  | Lin of (string * int64) list * int64 * int * bool
      (** (var name, coefficient) name-sorted, const, width, expected_nonzero *)
  | Raw of Sym.t * bool

type key = atom list

let rec erase_ids : Sym.t -> Sym.t = function
  | Sym.Const _ as c -> c
  | Sym.Var v -> Sym.Var (Sym.var_named ~id:0 ~name:v.Sym.name ~width:v.Sym.width)
  | Sym.Unop (op, a) -> Sym.Unop (op, erase_ids a)
  | Sym.Binop (op, a, b) -> Sym.Binop (op, erase_ids a, erase_ids b)

let atom_of_constr (c : Path.constr) =
  match Lincons.of_sym c.expr with
  | Some l ->
    let name_of =
      let tbl = Hashtbl.create 8 in
      List.iter (fun (v : Sym.var) -> Hashtbl.replace tbl v.Sym.id v.Sym.name)
        (Sym.vars c.expr);
      fun id -> Hashtbl.find tbl id (* of_sym only emits ids from the term *)
    in
    let coeffs =
      List.sort compare (List.map (fun (id, co) -> (name_of id, co)) l.coeffs)
    in
    Lin (coeffs, l.const, l.width, c.expected_nonzero)
  | None -> Raw (erase_ids c.expr, c.expected_nonzero)

let key_of_constrs cs : key =
  (* Conjunction is order- and multiplicity-insensitive. *)
  List.sort_uniq compare (List.map atom_of_constr cs)

(* Variables of the whole constraint set, as name -> id. *)
let var_ids cs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (c : Path.constr) ->
      List.iter
        (fun (v : Sym.var) -> Hashtbl.replace tbl v.Sym.name v.Sym.id)
        (Sym.vars c.expr))
    cs;
  tbl

type entry = Cached_sat of (string * int64) list | Cached_unsat

type shard = { lock : Mutex.t; tbl : (key, entry) Hashtbl.t }

type t = {
  shards : shard array;
  hit_count : int Atomic.t;
  miss_count : int Atomic.t;
  prefix_hit_count : int Atomic.t;
}

let create ?(shards = 8) () =
  if shards < 1 then invalid_arg "Qcache.create: shards must be >= 1";
  {
    shards =
      Array.init shards (fun _ ->
          { lock = Mutex.create (); tbl = Hashtbl.create 64 });
    hit_count = Atomic.make 0;
    miss_count = Atomic.make 0;
    prefix_hit_count = Atomic.make 0;
  }

let shard_of t key =
  t.shards.((Hashtbl.hash key land max_int) mod Array.length t.shards)

let lookup t key =
  let s = shard_of t key in
  Mutex.lock s.lock;
  let r = Hashtbl.find_opt s.tbl key in
  Mutex.unlock s.lock;
  r

let store t key entry =
  let s = shard_of t key in
  Mutex.lock s.lock;
  (* First writer wins; concurrent solvers of the same key produce
     equally valid entries, so dropping the loser is fine. *)
  if not (Hashtbl.mem s.tbl key) then Hashtbl.replace s.tbl key entry;
  Mutex.unlock s.lock

(* A model as stored: the constrained variables' values, by name. *)
let bindings_of_model cs (env : Sym.env) =
  let names = var_ids cs in
  Hashtbl.fold
    (fun name id acc ->
      match Hashtbl.find_opt env id with
      | Some v -> (name, v) :: acc
      | None -> acc)
    names []
  |> List.sort compare

(* ...and rehydrated onto the ids the presented constraints use. *)
let model_of_bindings cs bindings : Sym.env =
  let names = var_ids cs in
  let env = Hashtbl.create (List.length bindings) in
  List.iter
    (fun (name, v) ->
      match Hashtbl.find_opt names name with
      | Some id -> Hashtbl.replace env id v
      | None -> ())
    bindings;
  env

let full_lookup t key cs =
  match lookup t key with
  | Some (Cached_sat bindings) ->
    let env = model_of_bindings cs bindings in
    (* The re-check costs one evaluation pass and makes a
       canonicalization defect a performance bug, not a soundness bug. *)
    if Solver.holds_all env cs then Some (Solver.Sat env) else None
  | Some Cached_unsat -> Some Solver.Unsat
  | None -> None

let store_outcome t key cs outcome =
  match (outcome : Solver.outcome) with
  | Sat env -> store t key (Cached_sat (bindings_of_model cs env))
  | Unsat -> store t key Cached_unsat
  | Gave_up -> () (* hint-dependent: a better hint may succeed later *)

(* Longest cached list-prefix of [cs]. During exploration a child's query
   extends its parent's query (seeds, then the path prefix through the
   parent's flipped branch, then the new negation), so the parent's
   full-key entry IS a list-prefix of the child's constraint list — no
   separate prefix table is needed, only prefix-keyed lookups. Bounded to
   [max_prefix_drops] tail drops: each probe canonicalizes a sublist. *)
let max_prefix_drops = 8

type prefix_hit =
  | P_unsat  (** a cached-unsat prefix refutes the whole conjunction *)
  | P_model of Path.constr list * Path.constr list * Sym.env
      (** (prefix, rest, verified model of the prefix) *)

let longest_cached_prefix t cs =
  let arr = Array.of_list cs in
  let n = Array.length arr in
  let rec probe k =
    if k < 1 || k <= n - 1 - max_prefix_drops then None
    else begin
      let pre = Array.to_list (Array.sub arr 0 k) in
      match lookup t (key_of_constrs pre) with
      | Some Cached_unsat -> Some P_unsat
      | Some (Cached_sat bindings) ->
        let env = model_of_bindings cs bindings in
        if Solver.holds_all env pre then
          Some (P_model (pre, Array.to_list (Array.sub arr k (n - k)), env))
        else probe (k - 1)
      | None -> probe (k - 1)
    end
  in
  probe (n - 1)

let solve t ?stats ?max_repairs ~hint cs =
  let key = key_of_constrs cs in
  match full_lookup t key cs with
  | Some outcome ->
    Atomic.incr t.hit_count;
    outcome
  | None ->
    Atomic.incr t.miss_count;
    let outcome =
      match longest_cached_prefix t cs with
      | Some P_unsat ->
        Atomic.incr t.prefix_hit_count;
        Solver.Unsat
      | Some (P_model (pre, rest, env)) ->
        (* prime the incremental solver: the cached model satisfies the
           prefix, so repair starts at the first uncached constraint *)
        Atomic.incr t.prefix_hit_count;
        Solver.Inc.solve ?stats ?max_repairs ~parent:env ~prefix:pre rest
      | None -> Solver.solve ?stats ?max_repairs ~hint cs
    in
    store_outcome t key cs outcome;
    outcome

let solve_inc t ?stats ?max_repairs ~parent ~prefix rest =
  let cs = prefix @ rest in
  let key = key_of_constrs cs in
  match full_lookup t key cs with
  | Some outcome ->
    Atomic.incr t.hit_count;
    outcome
  | None ->
    Atomic.incr t.miss_count;
    (* the caller's parent model covers the whole prefix — at least as
       much as any cached sub-prefix could, so no prefix probing here *)
    let outcome = Solver.Inc.solve ?stats ?max_repairs ~parent ~prefix rest in
    store_outcome t key cs outcome;
    outcome

let hits t = Atomic.get t.hit_count
let misses t = Atomic.get t.miss_count
let prefix_hits t = Atomic.get t.prefix_hit_count

let hit_rate t =
  let h = hits t and m = misses t in
  if h + m = 0 then 0. else float_of_int h /. float_of_int (h + m)

let size t =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.lock;
      let n = Hashtbl.length s.tbl in
      Mutex.unlock s.lock;
      acc + n)
    0 t.shards
