module Explorer = Dice_concolic.Explorer
module Solver = Dice_concolic.Solver

type worker_tally = {
  worker : int;
  mutable rev_runs : Explorer.run list;
  mutable negations_attempted : int;
  mutable negations_sat : int;
  mutable negations_unsat : int;
  mutable negations_gave_up : int;
  mutable divergences : int;
  solver_stats : Solver.stats;
}

let tally_create ~worker =
  {
    worker;
    rev_runs = [];
    negations_attempted = 0;
    negations_sat = 0;
    negations_unsat = 0;
    negations_gave_up = 0;
    divergences = 0;
    solver_stats = Solver.stats_create ();
  }

let merge ~initial_run ~coverage ~space ~distinct_paths ~program_exns ~elapsed_s tallies :
    Explorer.report =
  let tallies =
    let t = Array.copy tallies in
    Array.sort (fun a b -> compare a.worker b.worker) t;
    t
  in
  let runs =
    initial_run
    :: List.concat_map (fun t -> List.rev t.rev_runs) (Array.to_list tallies)
  in
  let runs = List.mapi (fun i (r : Explorer.run) -> { r with index = i }) runs in
  let sum f = Array.fold_left (fun acc t -> acc + f t) 0 tallies in
  let solver_stats = Solver.stats_create () in
  Array.iter
    (fun t ->
      let s = t.solver_stats in
      solver_stats.calls <- solver_stats.calls + s.calls;
      solver_stats.sat <- solver_stats.sat + s.sat;
      solver_stats.unsat <- solver_stats.unsat + s.unsat;
      solver_stats.gave_up <- solver_stats.gave_up + s.gave_up;
      solver_stats.candidates_tried <-
        solver_stats.candidates_tried + s.candidates_tried;
      solver_stats.candidates_deduped <-
        solver_stats.candidates_deduped + s.candidates_deduped;
      solver_stats.prefix_reuses <- solver_stats.prefix_reuses + s.prefix_reuses;
      solver_stats.simplifications <- solver_stats.simplifications + s.simplifications;
      solver_stats.first_violated_skips <-
        solver_stats.first_violated_skips + s.first_violated_skips)
    tallies;
  {
    runs;
    executions = List.length runs;
    distinct_paths;
    negations_attempted = sum (fun t -> t.negations_attempted);
    negations_sat = sum (fun t -> t.negations_sat);
    negations_unsat = sum (fun t -> t.negations_unsat);
    negations_gave_up = sum (fun t -> t.negations_gave_up);
    divergences = sum (fun t -> t.divergences);
    program_exns;
    coverage;
    solver_stats;
    space;
    elapsed_s;
  }
