(** Parallel concolic exploration.

    [run_parallel] distributes the negation worklist of
    {!Dice_concolic.Explorer.explore} over a {!Pool} of domains sharing a
    {!Jobq}, two {!Dedup} claim tables (attempted negations, distinct path
    signatures) and a {!Qcache}. Each worker loops pop → claim → solve
    (through the cache) → execute → enqueue children, and the queue
    finishes when the worklist saturates or the execution budget is spent.

    {b Determinism contract.} Scheduling may reorder runs, but never
    changes what is covered: for [Dfs], [Generational] and
    [Random_negation] the worklist at saturation closes over {e every}
    feasible negation reachable within [max_depth], regardless of the
    order attempts were processed in, so a saturating budget yields the
    same [distinct_paths] and branch-coverage set as the sequential
    explorer. ([Random_negation]'s seed only permutes processing order —
    it cannot add or remove feasible paths.) [Cover_new] is the exception:
    its greedy skip rule consults coverage state at pop time, which makes
    even its {e final} path set order-dependent — so it is delegated to
    the sequential explorer verbatim, whatever [jobs] says.

    Run indices in the merged report are stable (initial run first, then
    worker-id order — see {!Merge}), and counters are exact: every
    negation is attempted exactly once across all workers. *)

val run_parallel :
  ?config:Dice_concolic.Explorer.config ->
  ?qcache:Qcache.t ->
  jobs:int ->
  Dice_concolic.Explorer.program ->
  Dice_concolic.Explorer.report
(** [run_parallel ~jobs program] explores with [jobs] worker domains
    ([jobs = 1] degrades to a single-domain run of the same machinery).
    [qcache] defaults to a fresh cache; pass one in to share solver
    results across explorations or to read its hit rate afterwards.
    @raise Invalid_argument if [jobs < 1]. *)
