type 'k shard = { lock : Mutex.t; keys : ('k, unit) Hashtbl.t }

type 'k t = 'k shard array

let create ?(shards = 8) () =
  if shards < 1 then invalid_arg "Dedup.create: shards must be >= 1";
  Array.init shards (fun _ -> { lock = Mutex.create (); keys = Hashtbl.create 64 })

let shard_of t key = t.((Hashtbl.hash key land max_int) mod Array.length t)

let claim t key =
  let s = shard_of t key in
  Mutex.lock s.lock;
  let fresh = not (Hashtbl.mem s.keys key) in
  if fresh then Hashtbl.add s.keys key ();
  Mutex.unlock s.lock;
  fresh

let mem t key =
  let s = shard_of t key in
  Mutex.lock s.lock;
  let r = Hashtbl.mem s.keys key in
  Mutex.unlock s.lock;
  r

let size t =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.lock;
      let n = Hashtbl.length s.keys in
      Mutex.unlock s.lock;
      acc + n)
    0 t
