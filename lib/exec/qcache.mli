(** A memoizing solver-query cache.

    Keyed on the {e canonicalized} constraint set: every constraint is
    normalized to its {!Dice_concolic.Lincons} linear form when one exists
    (so syntactically different but semantically identical linear
    predicates share an entry), non-linear constraints fall back to their
    structural term identity, and the set is sorted and deduplicated —
    conjunction is order- and multiplicity-insensitive. Variables are
    identified by {e name}, not id: ids are fresh per input space, names
    are what a space keeps stable, so name-keying lets entries hit across
    explorations of the same program (commuting branch prefixes within one
    exploration are the other hit source).

    Cached outcomes are [Sat] models and proven [Unsat] verdicts — both
    properties of the constraint set alone. [Gave_up] is {e not} cached:
    it depends on the starting hint, and a later query with a better hint
    may well succeed. A stored model keeps the {e constrained} variables'
    values by name; on a hit it is rehydrated onto the ids the presented
    constraints use (a fresh table — callers may mutate it) and
    re-verified by evaluation before being returned, so a canonicalization
    defect or name collision costs a cache miss, never correctness.

    Safe for concurrent use from many domains: entries live in sharded
    mutex-protected tables and the hit/miss counters are atomic. *)

type t

val create : ?shards:int -> unit -> t
(** [shards] defaults to 8.
    @raise Invalid_argument if [shards < 1]. *)

val solve :
  t ->
  ?stats:Dice_concolic.Solver.stats ->
  ?max_repairs:int ->
  hint:Dice_concolic.Sym.env ->
  Dice_concolic.Path.constr list ->
  Dice_concolic.Solver.outcome
(** Like {!Dice_concolic.Solver.solve}, answering from the cache when the
    canonicalized constraint set has been solved before. On a full-key
    miss, the longest cached {e list-prefix} of the query is consulted: a
    cached-unsat prefix refutes the whole conjunction outright, and a
    cached model (verified by evaluation) primes {!Dice_concolic.Solver.Inc}
    so repair starts after the cached prefix instead of from scratch.
    [stats] counts only real solver invocations (misses), so it keeps
    meaning "solver work performed". *)

val solve_inc :
  t ->
  ?stats:Dice_concolic.Solver.stats ->
  ?max_repairs:int ->
  parent:Dice_concolic.Sym.env ->
  prefix:Dice_concolic.Path.constr list ->
  Dice_concolic.Path.constr list ->
  Dice_concolic.Solver.outcome
(** {!Dice_concolic.Solver.Inc.solve} through the cache: the full
    conjunction [prefix @ rest] is looked up first; on a miss the parent
    model (which the caller asserts satisfies [prefix]) seeds the
    incremental solve, and the outcome is cached under the full key. *)

val hits : t -> int
val misses : t -> int

val prefix_hits : t -> int
(** Full-key misses answered or primed via a cached prefix. *)

val hit_rate : t -> float
(** [hits / (hits + misses)]; [0.] before any query. *)

val size : t -> int
(** Cached constraint sets currently resident. *)
