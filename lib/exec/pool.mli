(** A domain-based worker pool.

    OCaml 5 domains are heavyweight (one OS thread each), so the pool is
    spawn–work–join: [run] starts [jobs] domains, each executes the worker
    body to completion, and the call returns once every domain has joined.
    Exploration workloads are long-lived relative to domain spawn cost
    (milliseconds of solving per job), which makes this the right shape —
    no need for a resident pool with work handoff. *)

val available_parallelism : unit -> int
(** What the runtime recommends for this machine
    ({!Domain.recommended_domain_count}), never below 1. The CLI default
    for [--jobs]. *)

val run : jobs:int -> (int -> unit) -> unit
(** [run ~jobs f] executes [f 0 .. f (jobs-1)] concurrently, one domain
    each, and waits for all of them. [f] receives its worker index.
    [jobs = 1] runs [f 0] on the calling domain (no spawn). If any worker
    raises, the first exception (by worker index) is re-raised after all
    workers have joined, with the worker's original backtrace attached.
    @raise Invalid_argument if [jobs < 1]. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] applies [f] to every item, distributing items
    across [min jobs (List.length items)] workers, and returns the results
    in input order. Items are claimed dynamically (an atomic cursor), so
    uneven item costs balance across workers. [f] must be safe to call
    from concurrent domains. Exceptions propagate as in {!run}. *)

val iter : jobs:int -> ('a -> unit) -> 'a list -> unit
(** [map] for effects: apply [f] to every item across [jobs] workers and
    wait for all of them — the shape of a fleet's drive wave, where each
    item is one domain's batch of updates and results accumulate in the
    items themselves. Same claiming, safety and exception rules as
    {!map}. *)
