(** Deterministic merging of per-worker exploration results.

    Each worker accumulates a {!worker_tally} privately (no locks on the
    hot path); when the pool drains, {!merge} folds the tallies into a
    single {!Dice_concolic.Explorer.report}. The fold is deterministic in
    the tallies' content: runs are ordered initial-run-first, then by
    worker id, then by each worker's execution order, and reindexed
    [0..n-1] — so two parallel explorations that performed the same work
    produce byte-identical reports regardless of interleaving. *)

type worker_tally = {
  worker : int;
  mutable rev_runs : Dice_concolic.Explorer.run list;
      (** this worker's runs, most recent first; [index] fields are
          placeholders until {!merge} reindexes *)
  mutable negations_attempted : int;
  mutable negations_sat : int;
  mutable negations_unsat : int;
  mutable negations_gave_up : int;
  mutable divergences : int;
  solver_stats : Dice_concolic.Solver.stats;
}

val tally_create : worker:int -> worker_tally

val merge :
  initial_run:Dice_concolic.Explorer.run ->
  coverage:Dice_concolic.Coverage.t ->
  space:Dice_concolic.Engine.Space.t ->
  distinct_paths:int ->
  program_exns:int ->
  elapsed_s:float ->
  worker_tally array ->
  Dice_concolic.Explorer.report
(** Counters are summed across tallies; solver stats fold into a fresh
    record (the per-worker records are not mutated). [program_exns] is
    tallied by the pool itself (a shared atomic, not per-worker). *)
