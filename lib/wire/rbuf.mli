(** Bounds-checked big-endian binary reader. *)

exception Truncated of string
(** Raised when a read runs past the end of the region; the payload names
    the field being read and the byte offset the read started at
    (["nlri at byte 23"]), so failures inside length-framed structures
    are locatable. *)

type t

val of_bytes : bytes -> t
(** Read over the whole byte sequence (not copied). *)

val sub : t -> int -> t
(** [sub t n] takes the next [n] bytes as a new reader and advances [t].
    @raise Truncated if fewer than [n] bytes remain. *)

val remaining : t -> int
val pos : t -> int
val eof : t -> bool

val u8 : ?what:string -> t -> int
val u16 : ?what:string -> t -> int
val u32 : ?what:string -> t -> int

val take : ?what:string -> t -> int -> bytes
(** Read [n] raw bytes. *)

val skip : ?what:string -> t -> int -> unit
