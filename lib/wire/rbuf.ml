exception Truncated of string

type t = { buf : bytes; limit : int; mutable cur : int }

let of_bytes b = { buf = b; limit = Bytes.length b; cur = 0 }

let remaining t = t.limit - t.cur
let pos t = t.cur
let eof t = t.cur >= t.limit

(* The payload names the field *and* the offset the read started at, so a
   decode failure deep inside a length-framed structure (a probe frame, a
   BGP attribute list) is locatable without re-parsing by hand. *)
let need what t n =
  if remaining t < n then
    raise (Truncated (Printf.sprintf "%s at byte %d" what t.cur))

let sub t n =
  need "sub" t n;
  let r = { buf = t.buf; limit = t.cur + n; cur = t.cur } in
  t.cur <- t.cur + n;
  r

let u8 ?(what = "u8") t =
  need what t 1;
  let v = Char.code (Bytes.get t.buf t.cur) in
  t.cur <- t.cur + 1;
  v

let u16 ?(what = "u16") t =
  need what t 2;
  let v = (Char.code (Bytes.get t.buf t.cur) lsl 8) lor Char.code (Bytes.get t.buf (t.cur + 1)) in
  t.cur <- t.cur + 2;
  v

let u32 ?(what = "u32") t =
  need what t 4;
  let b i = Char.code (Bytes.get t.buf (t.cur + i)) in
  let v = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  t.cur <- t.cur + 4;
  v

let take ?(what = "bytes") t n =
  need what t n;
  let b = Bytes.sub t.buf t.cur n in
  t.cur <- t.cur + n;
  b

let skip ?(what = "skip") t n =
  need what t n;
  t.cur <- t.cur + n
