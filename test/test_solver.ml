(* Tests for the constraint solver and interval domain. *)
open Dice_concolic

let mk_env bindings =
  let e : Sym.env = Hashtbl.create 8 in
  List.iter (fun (v, x) -> Hashtbl.replace e v.Sym.id x) bindings;
  e

let nonzero expr = { Path.expr; expected_nonzero = true }
let zero expr = { Path.expr; expected_nonzero = false }

let solve ?(hint = []) cs =
  Solver.solve ~hint:(mk_env hint) cs

let expect_sat ?hint cs =
  match solve ?hint cs with
  | Solver.Sat env ->
    Alcotest.(check bool) "model satisfies all" true (Solver.holds_all env cs);
    env
  | Solver.Unsat -> Alcotest.fail "expected SAT, got UNSAT"
  | Solver.Gave_up -> Alcotest.fail "expected SAT, solver gave up"

let expect_no_model ?hint cs =
  match solve ?hint cs with
  | Solver.Sat env ->
    Alcotest.failf "expected no model, got one (holds=%b)" (Solver.holds_all env cs)
  | Solver.Unsat | Solver.Gave_up -> ()

let c w v = Sym.const ~width:w v
let v32 name = Sym.var ~name ~width:32
let v8 name = Sym.var ~name ~width:8

(* ---- Interval ---- *)

let test_interval_basic () =
  let i = Interval.make 3L 10L in
  Alcotest.(check bool) "mem lo" true (Interval.mem 3L i);
  Alcotest.(check bool) "mem hi" true (Interval.mem 10L i);
  Alcotest.(check bool) "not below" false (Interval.mem 2L i);
  Alcotest.(check bool) "not above" false (Interval.mem 11L i)

let test_interval_inter () =
  let a = Interval.make 0L 10L and b = Interval.make 5L 20L in
  (match Interval.inter a b with
  | Some i ->
    Alcotest.(check int64) "lo" 5L i.Interval.lo;
    Alcotest.(check int64) "hi" 10L i.Interval.hi
  | None -> Alcotest.fail "expected overlap");
  Alcotest.(check bool) "disjoint" true
    (Interval.inter (Interval.make 0L 2L) (Interval.make 5L 9L) = None)

let test_interval_unsigned () =
  let i = Interval.full 64 in
  Alcotest.(check bool) "all-ones in full" true (Interval.mem (-1L) i)

let test_interval_seq_clamp () =
  let i = Interval.make 3L 5L in
  Alcotest.(check (list int64)) "enumerate" [ 3L; 4L; 5L ] (List.of_seq (Interval.to_seq i));
  Alcotest.(check int64) "clamp low" 3L (Interval.clamp i 1L);
  Alcotest.(check int64) "clamp in" 4L (Interval.clamp i 4L);
  Alcotest.(check int64) "clamp high" 5L (Interval.clamp i 100L);
  Alcotest.(check bool) "size" true (Interval.size_le i 3);
  Alcotest.(check bool) "size strict" false (Interval.size_le i 2)

(* ---- Solver: single variable, structural inversion ---- *)

let test_solve_eq_const () =
  let x = v32 "x0" in
  let env = expect_sat [ nonzero (Sym.Binop (Sym.Eq, Sym.of_var x, c 32 1234L)) ] in
  Alcotest.(check int64) "x = 1234" 1234L (Hashtbl.find env x.Sym.id)

let test_solve_eq_through_add_xor () =
  let x = v32 "x1" in
  (* (x + 100) ^ 0xFF == 4242 *)
  let expr =
    Sym.Binop
      (Sym.Eq, Sym.Binop (Sym.Xor, Sym.Binop (Sym.Add, Sym.of_var x, c 32 100L), c 32 0xFFL),
       c 32 4242L)
  in
  ignore (expect_sat [ nonzero expr ])

let test_solve_eq_through_mul_odd () =
  let x = v32 "x2" in
  (* 7 * x == 21 -> derivable via modular inverse *)
  let expr = Sym.Binop (Sym.Eq, Sym.Binop (Sym.Mul, c 32 7L, Sym.of_var x), c 32 21L) in
  let env = expect_sat [ nonzero expr ] in
  Alcotest.(check int64) "x = 3" 3L (Hashtbl.find env x.Sym.id)

let test_solve_eq_through_shift () =
  let x = v32 "x3" in
  (* x >> 8 == 0xAB -> x in [0xAB00, 0xABFF] *)
  let expr =
    Sym.Binop (Sym.Eq, Sym.Binop (Sym.Lshr, Sym.of_var x, c 8 8L), c 32 0xABL)
  in
  let env = expect_sat [ nonzero expr ] in
  let x_val = Hashtbl.find env x.Sym.id in
  Alcotest.(check int64) "high byte" 0xABL (Int64.shift_right_logical x_val 8)

let test_solve_eq_through_mask () =
  let x = v8 "x4" in
  (* x & 0xF0 == 0xA0 *)
  let expr =
    Sym.Binop (Sym.Eq, Sym.Binop (Sym.And, Sym.of_var x, c 8 0xF0L), c 8 0xA0L)
  in
  ignore (expect_sat [ nonzero expr ])

let test_solve_inequalities () =
  let x = v8 "x5" in
  let gt = nonzero (Sym.Binop (Sym.Ugt, Sym.of_var x, c 8 200L)) in
  let lt = nonzero (Sym.Binop (Sym.Ult, Sym.of_var x, c 8 250L)) in
  let env = expect_sat [ gt; lt ] in
  let xv = Hashtbl.find env x.Sym.id in
  Alcotest.(check bool) "in (200,250)" true
    (Int64.unsigned_compare xv 200L > 0 && Int64.unsigned_compare xv 250L < 0)

let test_solve_negated_eq () =
  let x = v32 "x6" in
  let hint = [ (x, 5L) ] in
  let env = expect_sat ~hint [ zero (Sym.Binop (Sym.Eq, Sym.of_var x, c 32 5L)) ] in
  Alcotest.(check bool) "x <> 5" true (Hashtbl.find env x.Sym.id <> 5L)

let test_solve_unsat_range () =
  let x = v8 "x7" in
  (* x < 0 unsigned: impossible *)
  expect_no_model [ nonzero (Sym.Binop (Sym.Ult, Sym.of_var x, c 8 0L)) ]

let test_solve_unsat_contradiction () =
  let x = v8 "x8" in
  expect_no_model
    [ nonzero (Sym.Binop (Sym.Eq, Sym.of_var x, c 8 1L));
      nonzero (Sym.Binop (Sym.Eq, Sym.of_var x, c 8 2L))
    ]

let test_solve_varfree_contradiction () =
  match solve [ nonzero (Sym.Binop (Sym.Eq, c 8 1L, c 8 2L)) ] with
  | Solver.Unsat -> ()
  | Solver.Sat _ -> Alcotest.fail "expected UNSAT"
  | Solver.Gave_up -> Alcotest.fail "expected UNSAT, not give-up"

let test_solve_boolean_and () =
  let x = v8 "x9" and y = v8 "y9" in
  (* (x == 3) & (y == 4), width-1 conjunction *)
  let conj =
    Sym.Binop
      (Sym.And, Sym.Binop (Sym.Eq, Sym.of_var x, c 8 3L),
       Sym.Binop (Sym.Eq, Sym.of_var y, c 8 4L))
  in
  let env = expect_sat [ nonzero conj ] in
  Alcotest.(check int64) "x" 3L (Hashtbl.find env x.Sym.id);
  Alcotest.(check int64) "y" 4L (Hashtbl.find env y.Sym.id)

let test_solve_boolean_or_negated () =
  let x = v8 "xa" in
  (* !(x == 1 | x == 2): both disjuncts must fail *)
  let disj =
    Sym.Binop
      (Sym.Or, Sym.Binop (Sym.Eq, Sym.of_var x, c 8 1L),
       Sym.Binop (Sym.Eq, Sym.of_var x, c 8 2L))
  in
  let env = expect_sat ~hint:[ (x, 1L) ] [ zero disj ] in
  let xv = Hashtbl.find env x.Sym.id in
  Alcotest.(check bool) "neither" true (xv <> 1L && xv <> 2L)

let test_solve_respects_prefix () =
  (* classic concolic query: keep the path prefix, flip the last branch *)
  let x = v32 "xb" in
  let p1 = nonzero (Sym.Binop (Sym.Ugt, Sym.of_var x, c 32 100L)) in
  let p2 = nonzero (Sym.Binop (Sym.Ult, Sym.of_var x, c 32 1000L)) in
  let flip = nonzero (Sym.Binop (Sym.Eq, Sym.of_var x, c 32 777L)) in
  let env = expect_sat ~hint:[ (x, 500L) ] [ p1; p2; flip ] in
  Alcotest.(check int64) "pinned" 777L (Hashtbl.find env x.Sym.id)

let test_solve_hint_untouched_vars () =
  let x = v32 "xc" and y = v32 "yc" in
  let cs = [ nonzero (Sym.Binop (Sym.Eq, Sym.of_var x, c 32 9L)) ] in
  let env = expect_sat ~hint:[ (x, 1L); (y, 55L) ] cs in
  Alcotest.(check int64) "unconstrained var keeps hint" 55L (Hashtbl.find env y.Sym.id)

let test_solve_two_var_chain () =
  let x = v8 "xd" and y = v8 "yd" in
  (* x + y == 10 and x == 3 *)
  let cs =
    [ nonzero
        (Sym.Binop
           (Sym.Eq, Sym.Binop (Sym.Add, Sym.of_var x, Sym.of_var y), c 8 10L));
      nonzero (Sym.Binop (Sym.Eq, Sym.of_var x, c 8 3L))
    ]
  in
  let env = expect_sat cs in
  Alcotest.(check int64) "x" 3L (Hashtbl.find env x.Sym.id);
  Alcotest.(check int64) "y" 7L (Hashtbl.find env y.Sym.id)

let test_solver_stats () =
  Solver.reset_stats ();
  let x = v8 "xe" in
  ignore (solve [ nonzero (Sym.Binop (Sym.Eq, Sym.of_var x, c 8 1L)) ]);
  Alcotest.(check int) "calls" 1 Solver.global_stats.Solver.calls;
  Alcotest.(check int) "sat" 1 Solver.global_stats.Solver.sat

let test_prefix_agreement_shape () =
  (* the exact shape the RIB probe emits:
     ((addr ^ base) >> (32-k)) == 0 for nested k, then flip one *)
  let addr = v32 "addr_shape" in
  let base = 0xC6336400L (* 198.51.100.0 *) in
  let agree k =
    nonzero
      (Sym.Binop
         (Sym.Eq,
          Sym.Binop (Sym.Lshr, Sym.Binop (Sym.Xor, Sym.of_var addr, c 32 base), c 8 (Int64.of_int (32 - k))),
          c 32 0L))
  in
  (* agree on /8 and /16 but NOT on /24 *)
  let cs = [ agree 8; agree 16; Path.negate (agree 24) ] in
  let env = expect_sat ~hint:[ (addr, base) ] cs in
  let a = Hashtbl.find env addr.Sym.id in
  Alcotest.(check int64) "first 16 bits match" (Int64.shift_right_logical base 16)
    (Int64.shift_right_logical a 16);
  Alcotest.(check bool) "differs within /24" true
    (Int64.shift_right_logical a 8 <> Int64.shift_right_logical base 8)

(* ---- interval propagation ---- *)

let test_interval_unsat_detected () =
  (* x <= 10 and x >= 20: the domains cannot intersect; the solver must
     prove UNSAT without search *)
  let x = v8 "ivx" in
  match
    solve
      [ nonzero (Sym.Binop (Sym.Ule, Sym.of_var x, c 8 10L));
        nonzero (Sym.Binop (Sym.Uge, Sym.of_var x, c 8 20L))
      ]
  with
  | Solver.Unsat -> ()
  | Solver.Sat _ -> Alcotest.fail "expected UNSAT"
  | Solver.Gave_up -> Alcotest.fail "interval propagation should prove UNSAT"

let test_interval_negated_bound_unsat () =
  (* !(x <= 255) on an 8-bit variable: empty *)
  let x = v8 "ivy" in
  match solve [ zero (Sym.Binop (Sym.Ule, Sym.of_var x, c 8 255L)) ] with
  | Solver.Unsat -> ()
  | Solver.Sat _ -> Alcotest.fail "expected UNSAT"
  | Solver.Gave_up -> Alcotest.fail "expected UNSAT via intervals"

let test_interval_tiny_domain_enumerated () =
  (* x in [100, 102] and (x ^ 3) % 2 == 1 — the xor breaks structural
     inversion, but the 3-value domain is enumerated exhaustively *)
  let x = v8 "ivz" in
  let odd_xor =
    nonzero
      (Sym.Binop
         (Sym.Eq,
          Sym.Binop (Sym.Urem, Sym.Binop (Sym.Xor, Sym.of_var x, c 8 3L), c 8 2L),
          c 8 1L))
  in
  let cs =
    [ nonzero (Sym.Binop (Sym.Uge, Sym.of_var x, c 8 100L));
      nonzero (Sym.Binop (Sym.Ule, Sym.of_var x, c 8 102L));
      odd_xor
    ]
  in
  let env = expect_sat cs in
  let xv = Hashtbl.find env x.Sym.id in
  Alcotest.(check bool) "in the tiny domain" true
    (Int64.unsigned_compare xv 100L >= 0 && Int64.unsigned_compare xv 102L <= 0)

let test_interval_point_domain () =
  (* x >= 7 and x <= 7 pins x even when the violated constraint is opaque *)
  let x = v8 "ivp" in
  let cs =
    [ nonzero (Sym.Binop (Sym.Uge, Sym.of_var x, c 8 7L));
      nonzero (Sym.Binop (Sym.Ule, Sym.of_var x, c 8 7L));
      nonzero (Sym.Binop (Sym.Eq, Sym.Binop (Sym.And, Sym.of_var x, c 8 0xFFL), c 8 7L))
    ]
  in
  let env = expect_sat cs in
  Alcotest.(check int64) "pinned" 7L (Hashtbl.find env x.Sym.id)

let test_linear_doubled_var () =
  (* x + x == 24: needs the linear normal form (single-occurrence
     structural inversion cannot see through the doubled variable) *)
  let x = v32 "ivd" in
  let cs =
    [ nonzero
        (Sym.Binop
           (Sym.Eq, Sym.Binop (Sym.Add, Sym.of_var x, Sym.of_var x), c 32 24L))
    ]
  in
  let env = expect_sat cs in
  let xv = Hashtbl.find env x.Sym.id in
  Alcotest.(check bool) "2x = 24" true
    (Int64.equal (Sym.wrap 32 (Int64.mul 2L xv)) 24L)

(* ---- Unsat soundness: incomplete search must not claim refutation ---- *)

let test_opaque_single_var_not_unsat () =
  (* x * x == 1521 (= 39^2) over 32 bits is satisfiable, but squaring is
     opaque to structural inversion and the domain is far too large to
     enumerate. Giving up is acceptable; claiming UNSAT is the bug this
     guards against (a cached UNSAT would then poison every later query). *)
  let x = v32 "sqx" in
  let stats = Solver.stats_create () in
  let cs =
    [ nonzero
        (Sym.Binop (Sym.Eq, Sym.Binop (Sym.Mul, Sym.of_var x, Sym.of_var x), c 32 1521L))
    ]
  in
  (match Solver.solve ~stats ~hint:(mk_env []) cs with
  | Solver.Unsat -> Alcotest.fail "UNSAT claimed for a satisfiable opaque constraint"
  | Solver.Sat env -> Alcotest.(check bool) "model holds" true (Solver.holds_all env cs)
  | Solver.Gave_up -> ());
  Alcotest.(check bool) "fallback duplicates were deduped" true
    (stats.Solver.candidates_deduped > 0)

let test_tiny_domain_exhaustion_still_unsat () =
  (* x <= 3 and x * x == 5: all four domain values are enumerated and
     refuted, so this must remain a proven UNSAT, not a give-up *)
  let x = v8 "sqy" in
  match
    solve
      [ nonzero (Sym.Binop (Sym.Ule, Sym.of_var x, c 8 3L));
        nonzero
          (Sym.Binop (Sym.Eq, Sym.Binop (Sym.Mul, Sym.of_var x, Sym.of_var x), c 8 5L))
      ]
  with
  | Solver.Unsat -> ()
  | Solver.Sat _ -> Alcotest.fail "expected UNSAT"
  | Solver.Gave_up -> Alcotest.fail "exhaustive enumeration should prove UNSAT"

(* ---- implied-literal simplification ---- *)

let test_simplification_counted () =
  let x = v8 "simx" in
  let stats = Solver.stats_create () in
  let cs =
    [ nonzero (Sym.Binop (Sym.Uge, Sym.of_var x, c 8 7L));
      nonzero (Sym.Binop (Sym.Ule, Sym.of_var x, c 8 7L));
      nonzero (Sym.Binop (Sym.Eq, Sym.Binop (Sym.And, Sym.of_var x, c 8 0xFFL), c 8 7L))
    ]
  in
  (match Solver.solve ~stats ~hint:(mk_env []) cs with
  | Solver.Sat env -> Alcotest.(check int64) "pinned" 7L (Hashtbl.find env x.Sym.id)
  | _ -> Alcotest.fail "expected SAT");
  Alcotest.(check bool) "substitution discharged constraints" true
    (stats.Solver.simplifications > 0)

let test_implied_literal_linear_eq () =
  (* 3*x + 5 == 20 (mod 2^8) pins x by modular inversion before search;
     the opaque second constraint is then satisfied by substitution *)
  let x = v8 "limx" in
  let lin =
    nonzero
      (Sym.Binop
         (Sym.Eq, Sym.Binop (Sym.Add, Sym.Binop (Sym.Mul, c 8 3L, Sym.of_var x), c 8 5L),
          c 8 20L))
  in
  let opaque =
    nonzero
      (Sym.Binop
         (Sym.Eq, Sym.Binop (Sym.Urem, Sym.Binop (Sym.Mul, Sym.of_var x, Sym.of_var x), c 8 7L),
          c 8 4L))
  in
  (* x = 5: 3*5+5 = 20; 25 mod 7 = 4 *)
  let env = expect_sat [ lin; opaque ] in
  Alcotest.(check int64) "x = 5" 5L (Hashtbl.find env x.Sym.id)

(* ---- incremental solving ---- *)

let test_inc_solve_reuses_prefix () =
  let x = v32 "incx" in
  let p1 = nonzero (Sym.Binop (Sym.Ugt, Sym.of_var x, c 32 100L)) in
  let p2 = nonzero (Sym.Binop (Sym.Ult, Sym.of_var x, c 32 1000L)) in
  let flipped = zero (Sym.Binop (Sym.Eq, Sym.of_var x, c 32 500L)) in
  let parent = mk_env [ (x, 500L) ] in
  let stats = Solver.stats_create () in
  (match Solver.Inc.solve ~stats ~parent ~prefix:[ p1; p2 ] [ flipped ] with
  | Solver.Sat env ->
    Alcotest.(check bool) "model holds" true
      (Solver.holds_all env [ p1; p2; flipped ]);
    Alcotest.(check int64) "parent untouched" 500L (Hashtbl.find parent x.Sym.id)
  | _ -> Alcotest.fail "expected SAT");
  Alcotest.(check bool) "prefix reused" true (stats.Solver.prefix_reuses > 0);
  Alcotest.(check bool) "scan skipped prefix constraints" true
    (stats.Solver.first_violated_skips > 0)

let test_inc_solve_unsat () =
  let x = v8 "incy" in
  let p1 = nonzero (Sym.Binop (Sym.Ule, Sym.of_var x, c 8 10L)) in
  let parent = mk_env [ (x, 5L) ] in
  match
    Solver.Inc.solve ~parent ~prefix:[ p1 ]
      [ nonzero (Sym.Binop (Sym.Uge, Sym.of_var x, c 8 20L)) ]
  with
  | Solver.Unsat -> ()
  | Solver.Sat _ -> Alcotest.fail "expected UNSAT"
  | Solver.Gave_up -> Alcotest.fail "intervals should prove UNSAT incrementally"

(* ---- properties ---- *)

let prop_satisfiable_never_unsat =
  (* single-variable sets constructed around a known solution [m] must
     never be refuted: UNSAT here is always a soundness bug. *)
  QCheck.Test.make ~name:"constructed-satisfiable sets never UNSAT" ~count:1000
    QCheck.(triple (int_bound 0xFFFF) (int_bound 0xFFFF) (list_of_size Gen.(1 -- 4) (int_bound 7)))
    (fun (m, k, shapes) ->
      let m64 = Int64.of_int m and k64 = Int64.of_int k in
      let x = Sym.var ~name:(Printf.sprintf "pn%d_%d" m k) ~width:16 in
      let xe = Sym.of_var x in
      let shape_constr s =
        match s with
        | 0 -> nonzero (Sym.Binop (Sym.Eq, xe, c 16 m64))
        | 1 ->
          if Int64.equal k64 m64 then nonzero (Sym.Binop (Sym.Eq, xe, c 16 m64))
          else zero (Sym.Binop (Sym.Eq, xe, c 16 k64))
        | 2 ->
          nonzero
            (Sym.Binop
               (Sym.Eq, Sym.Binop (Sym.Xor, xe, c 16 k64),
                c 16 (Int64.logxor m64 k64)))
        | 3 ->
          nonzero
            (Sym.Binop
               (Sym.Eq, Sym.Binop (Sym.Add, xe, c 16 k64),
                c 16 (Sym.wrap 16 (Int64.add m64 k64))))
        | 4 ->
          nonzero
            (Sym.Binop
               (Sym.Eq, Sym.Binop (Sym.And, xe, c 16 k64),
                c 16 (Int64.logand m64 k64)))
        | 5 -> nonzero (Sym.Binop (Sym.Ule, xe, c 16 (Int64.max m64 k64)))
        | 6 -> nonzero (Sym.Binop (Sym.Uge, xe, c 16 (Int64.min m64 k64)))
        | _ ->
          if Int64.unsigned_compare m64 k64 < 0 then
            nonzero (Sym.Binop (Sym.Ult, xe, c 16 k64))
          else nonzero (Sym.Binop (Sym.Uge, xe, c 16 k64))
      in
      let cs = List.map shape_constr shapes in
      match solve cs with
      | Solver.Unsat -> false (* m itself satisfies every constraint *)
      | Solver.Sat env -> Solver.holds_all env cs
      | Solver.Gave_up -> true)

let prop_inc_agrees_with_scratch =
  (* incremental and from-scratch solving may differ in models and in
     giving up, but must never disagree SAT-vs-UNSAT; SAT models must
     verify. The prefix is generated the way the explorer records paths:
     each constraint's direction is whatever the parent value [v] actually
     takes, so [v] satisfies the prefix by construction. *)
  QCheck.Test.make ~name:"incremental agrees with from-scratch" ~count:1000
    QCheck.(
      triple (int_bound 0xFFFF)
        (list_of_size Gen.(0 -- 5) (pair (int_bound 0xFFFF) (int_bound 2)))
        (pair (int_bound 0xFFFF) (int_bound 3)))
    (fun (v, prefix_spec, (k, neg_shape)) ->
      let v64 = Int64.of_int v in
      let x = Sym.var ~name:(Printf.sprintf "pi%d_%d" v k) ~width:16 in
      let xe = Sym.of_var x in
      let record expr =
        (* direction = the branch the concrete parent value takes *)
        if Sym.eval (mk_env [ (x, v64) ]) expr <> 0L then nonzero expr else zero expr
      in
      let prefix =
        List.map
          (fun (kp, shape) ->
            let kp64 = Int64.of_int kp in
            record
              (match shape with
              | 0 -> Sym.Binop (Sym.Ule, xe, c 16 kp64)
              | 1 -> Sym.Binop (Sym.Eq, Sym.Binop (Sym.Xor, xe, c 16 kp64), c 16 0x1234L)
              | _ -> Sym.Binop (Sym.Ugt, Sym.Binop (Sym.Add, xe, c 16 kp64), c 16 100L)))
          prefix_spec
      in
      let k64 = Int64.of_int k in
      let last =
        match neg_shape with
        | 0 -> Sym.Binop (Sym.Eq, xe, c 16 k64)
        | 1 -> Sym.Binop (Sym.Ult, xe, c 16 k64)
        | 2 -> Sym.Binop (Sym.Eq, Sym.Binop (Sym.And, xe, c 16 0xF0FL), c 16 k64)
        | _ -> Sym.Binop (Sym.Uge, Sym.Binop (Sym.Xor, xe, c 16 0xFFL), c 16 k64)
      in
      let negated = Path.negate (record last) in
      let parent = mk_env [ (x, v64) ] in
      let all = prefix @ [ negated ] in
      let inc = Solver.Inc.solve ~parent ~prefix [ negated ] in
      let scratch = Solver.solve ~hint:(mk_env []) all in
      let ok_model = function
        | Solver.Sat env -> Solver.holds_all env all
        | Solver.Unsat | Solver.Gave_up -> true
      in
      let agree =
        match (inc, scratch) with
        | Solver.Sat _, Solver.Unsat | Solver.Unsat, Solver.Sat _ -> false
        | _ -> true
      in
      agree && ok_model inc && ok_model scratch)

let prop_solver_sound =
  (* whatever the solver returns as Sat must actually satisfy the input *)
  QCheck.Test.make ~name:"solver models are sound" ~count:300
    QCheck.(pair (int_bound 0xFFFF) (int_bound 3))
    (fun (k, shape) ->
      let x = Sym.var ~name:(Printf.sprintf "ps%d_%d" k shape) ~width:16 in
      let kc = c 16 (Int64.of_int k) in
      let expr =
        match shape with
        | 0 -> Sym.Binop (Sym.Eq, Sym.Binop (Sym.Add, Sym.of_var x, c 16 17L), kc)
        | 1 -> Sym.Binop (Sym.Ult, Sym.of_var x, kc)
        | 2 -> Sym.Binop (Sym.Eq, Sym.Binop (Sym.And, Sym.of_var x, c 16 0xFF0L), kc)
        | _ -> Sym.Binop (Sym.Ne, Sym.Binop (Sym.Xor, Sym.of_var x, c 16 0xAAL), kc)
      in
      let cs = [ nonzero expr ] in
      match solve cs with
      | Solver.Sat env -> Solver.holds_all env cs
      | Solver.Unsat | Solver.Gave_up -> true)

let suite =
  [ ("interval basics", `Quick, test_interval_basic);
    ("interval intersection", `Quick, test_interval_inter);
    ("interval unsigned", `Quick, test_interval_unsigned);
    ("interval seq/clamp", `Quick, test_interval_seq_clamp);
    ("solve x = const", `Quick, test_solve_eq_const);
    ("solve through add/xor", `Quick, test_solve_eq_through_add_xor);
    ("solve through odd mul", `Quick, test_solve_eq_through_mul_odd);
    ("solve through shift", `Quick, test_solve_eq_through_shift);
    ("solve through mask", `Quick, test_solve_eq_through_mask);
    ("solve inequalities", `Quick, test_solve_inequalities);
    ("solve negated equality", `Quick, test_solve_negated_eq);
    ("unsat: empty range", `Quick, test_solve_unsat_range);
    ("unsat: contradiction", `Quick, test_solve_unsat_contradiction);
    ("unsat: variable-free", `Quick, test_solve_varfree_contradiction);
    ("boolean conjunction", `Quick, test_solve_boolean_and);
    ("negated disjunction", `Quick, test_solve_boolean_or_negated);
    ("respects path prefix", `Quick, test_solve_respects_prefix);
    ("hint preserved for free vars", `Quick, test_solve_hint_untouched_vars);
    ("two-variable chain", `Quick, test_solve_two_var_chain);
    ("stats counters", `Quick, test_solver_stats);
    ("prefix-agreement shape", `Quick, test_prefix_agreement_shape);
    ("interval UNSAT detection", `Quick, test_interval_unsat_detected);
    ("interval negated bound UNSAT", `Quick, test_interval_negated_bound_unsat);
    ("interval tiny-domain enumeration", `Quick, test_interval_tiny_domain_enumerated);
    ("interval point domain", `Quick, test_interval_point_domain);
    ("linear doubled variable", `Quick, test_linear_doubled_var);
    ("opaque single-var is not UNSAT", `Quick, test_opaque_single_var_not_unsat);
    ("tiny-domain exhaustion stays UNSAT", `Quick, test_tiny_domain_exhaustion_still_unsat);
    ("simplification discharges pinned constraints", `Quick, test_simplification_counted);
    ("implied literal via linear equality", `Quick, test_implied_literal_linear_eq);
    ("incremental solve reuses prefix", `Quick, test_inc_solve_reuses_prefix);
    ("incremental solve proves UNSAT", `Quick, test_inc_solve_unsat);
    QCheck_alcotest.to_alcotest prop_solver_sound;
    QCheck_alcotest.to_alcotest prop_satisfiable_never_unsat;
    QCheck_alcotest.to_alcotest prop_inc_agrees_with_scratch
  ]
