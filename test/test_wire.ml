(* Tests for Dice_wire.Wbuf / Rbuf. *)
module Wbuf = Dice_wire.Wbuf
module Rbuf = Dice_wire.Rbuf

let test_roundtrip_scalars () =
  let w = Wbuf.create () in
  Wbuf.u8 w 0xAB;
  Wbuf.u16 w 0xCDEF;
  Wbuf.u32 w 0xDEADBEEF;
  let r = Rbuf.of_bytes (Wbuf.contents w) in
  Alcotest.(check int) "u8" 0xAB (Rbuf.u8 r);
  Alcotest.(check int) "u16" 0xCDEF (Rbuf.u16 r);
  Alcotest.(check int) "u32" 0xDEADBEEF (Rbuf.u32 r);
  Alcotest.(check bool) "eof" true (Rbuf.eof r)

let test_network_byte_order () =
  let w = Wbuf.create () in
  Wbuf.u16 w 0x0102;
  let b = Wbuf.contents w in
  Alcotest.(check char) "big endian high" '\x01' (Bytes.get b 0);
  Alcotest.(check char) "big endian low" '\x02' (Bytes.get b 1)

let test_growth () =
  let w = Wbuf.create ~capacity:2 () in
  for i = 0 to 999 do
    Wbuf.u8 w (i land 0xFF)
  done;
  Alcotest.(check int) "length" 1000 (Wbuf.length w);
  let b = Wbuf.contents w in
  Alcotest.(check int) "content preserved" (999 land 0xFF) (Char.code (Bytes.get b 999))

let test_patch () =
  let w = Wbuf.create () in
  let mark = Wbuf.mark w in
  Wbuf.u16 w 0;
  Wbuf.string w "body";
  Wbuf.patch_u16 w mark (Wbuf.length w);
  let r = Rbuf.of_bytes (Wbuf.contents w) in
  Alcotest.(check int) "patched length" 6 (Rbuf.u16 r)

let test_bytes_and_string () =
  let w = Wbuf.create () in
  Wbuf.bytes w (Bytes.of_string "ab");
  Wbuf.string w "cd";
  Alcotest.(check string) "concatenated" "abcd" (Bytes.to_string (Wbuf.contents w))

let test_reset () =
  let w = Wbuf.create () in
  Wbuf.u32 w 42;
  Wbuf.reset w;
  Alcotest.(check int) "reset empty" 0 (Wbuf.length w)

let test_truncation () =
  let r = Rbuf.of_bytes (Bytes.of_string "\x01") in
  ignore (Rbuf.u8 r);
  Alcotest.check_raises "u16 past end" (Rbuf.Truncated "field at byte 1") (fun () ->
      ignore (Rbuf.u16 ~what:"field" r))

let test_sub_isolation () =
  let r = Rbuf.of_bytes (Bytes.of_string "\x01\x02\x03\x04") in
  let s = Rbuf.sub r 2 in
  Alcotest.(check int) "sub reads" 0x01 (Rbuf.u8 s);
  Alcotest.(check int) "sub reads" 0x02 (Rbuf.u8 s);
  Alcotest.(check bool) "sub bounded" true (Rbuf.eof s);
  Alcotest.(check int) "parent advanced" 0x03 (Rbuf.u8 r)

let test_sub_too_long () =
  let r = Rbuf.of_bytes (Bytes.of_string "\x01") in
  Alcotest.check_raises "sub overruns" (Rbuf.Truncated "sub at byte 0") (fun () ->
      ignore (Rbuf.sub r 2))

(* Regression: the offset in the payload is where the failing read
   started, not zero — what locates a decode failure deep inside a
   length-framed frame. *)
let test_truncation_reports_offset () =
  let r = Rbuf.of_bytes (Bytes.of_string "abcdef") in
  Rbuf.skip r 3;
  Alcotest.check_raises "take past end names pos 3" (Rbuf.Truncated "bytes at byte 3")
    (fun () -> ignore (Rbuf.take r 4));
  ignore (Rbuf.u8 r);
  Alcotest.check_raises "sub past end names pos 4" (Rbuf.Truncated "sub at byte 4")
    (fun () -> ignore (Rbuf.sub r 3))

let test_take_skip () =
  let r = Rbuf.of_bytes (Bytes.of_string "abcdef") in
  Rbuf.skip r 2;
  Alcotest.(check string) "take" "cd" (Bytes.to_string (Rbuf.take r 2));
  Alcotest.(check int) "remaining" 2 (Rbuf.remaining r);
  Alcotest.(check int) "pos" 4 (Rbuf.pos r)

let prop_roundtrip =
  QCheck.Test.make ~name:"wbuf/rbuf u32 list roundtrip" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 50) (int_bound 0xFFFFFF))
    (fun xs ->
      let w = Wbuf.create () in
      List.iter (Wbuf.u32 w) xs;
      let r = Rbuf.of_bytes (Wbuf.contents w) in
      let ys = List.map (fun _ -> Rbuf.u32 r) xs in
      xs = ys && Rbuf.eof r)

let suite =
  [ ("scalar roundtrip", `Quick, test_roundtrip_scalars);
    ("network byte order", `Quick, test_network_byte_order);
    ("growth", `Quick, test_growth);
    ("patch_u16", `Quick, test_patch);
    ("bytes and string", `Quick, test_bytes_and_string);
    ("reset", `Quick, test_reset);
    ("truncation", `Quick, test_truncation);
    ("sub isolation", `Quick, test_sub_isolation);
    ("sub too long", `Quick, test_sub_too_long);
    ("truncation reports offset", `Quick, test_truncation_reports_offset);
    ("take/skip", `Quick, test_take_skip);
    QCheck_alcotest.to_alcotest prop_roundtrip
  ]
