(* The shared SPEAKER conformance suite (ISSUE 5): every registered
   implementation — BIRD and the heterogeneous Quagga-flavored speaker —
   must satisfy the same contract behind {!Dice_core.Speaker}: feeding,
   attribution, version counting, snapshot/restore isolation, freeze
   semantics, serving exploration as the live node, and answering probes
   identically over Local and Remote transports. Plus QCheck properties
   pinning down exactly how far the implementations may diverge:
   acceptance and origin-conflict detection must always agree; full
   verdicts agree whenever no decision tie-breaking is involved. *)
open Dice_inet
open Dice_bgp
open Dice_core
module Network = Dice_sim.Network

let p = Prefix.of_string
let provider_side = Ipv4.of_string "10.0.2.1"
let collector = Ipv4.of_string "10.0.3.2"

let upstream_config () =
  Config_parser.parse
    {|
    router id 10.0.2.2;
    local as 64700;
    protocol bgp provider { neighbor 10.0.2.1 as 64510; import all; export none; }
    protocol bgp collector { neighbor 10.0.3.2 as 64701; import all; export all; }
    anycast [ 192.88.99.0/24 ];
    |}

let create impl =
  match Speakers.create impl (Speaker.Config (upstream_config ())) with
  | Some sp -> sp
  | None -> Alcotest.failf "speaker %s not registered" impl

let incumbents =
  [ ("198.51.0.0/16", 64999); ("8.8.8.0/24", 64888); ("192.88.99.0/24", 64777) ]

let feed_incumbents sp =
  List.iter
    (fun (prefix, origin) ->
      let route =
        Route.make ~origin:Attr.Igp
          ~as_path:[ Asn.Path.Seq [ 64701; origin ] ]
          ~next_hop:collector ()
      in
      ignore
        (Speaker.feed sp ~peer:collector
           (Msg.Update { withdrawn = []; attrs = Route.to_attrs route; nlri = [ p prefix ] })))
    incumbents

let upstream impl =
  let sp = create impl in
  Speaker.establish sp ~peer:provider_side;
  Speaker.establish sp ~peer:collector;
  feed_incumbents sp;
  sp

let announcement ?(origin_asn = 64512) ?(origin = Attr.Igp) prefixes =
  Msg.Update
    {
      withdrawn = [];
      attrs =
        Route.to_attrs
          (Route.make ~origin
             ~as_path:[ Asn.Path.Seq [ 64510; origin_asn ] ]
             ~next_hop:provider_side ());
      nlri = List.map p prefixes;
    }

(* ---- conformance cases, one set per implementation ---- *)

let test_identity impl () =
  let sp = create impl in
  Alcotest.(check string) "id is the registry name" impl (Speaker.id sp);
  Alcotest.(check int) "fresh speaker processed nothing" 0 (Speaker.updates_processed sp);
  Alcotest.(check int) "local AS from config" 64700
    (Speaker.config sp).Config_types.local_as

let test_feed_and_attribution impl () =
  let sp = upstream impl in
  Alcotest.(check int) "every incumbent installed" (List.length incumbents)
    (Rib.Loc.cardinal (Speaker.loc_rib sp));
  List.iter
    (fun (prefix, _) ->
      (match Speaker.best_route sp (p prefix) with
      | Some e ->
        Alcotest.(check bool)
          (prefix ^ " attributed to the collector session") true
          (e.Rib.Loc.src.Route.peer_addr = collector)
      | None -> Alcotest.failf "%s not installed by %s" prefix impl);
      Alcotest.(check bool) "learned from the collector" true
        (Speaker.learned_from sp ~peer:collector (p prefix));
      Alcotest.(check bool) "not learned from the provider" false
        (Speaker.learned_from sp ~peer:provider_side (p prefix)))
    incumbents

let test_version_counter impl () =
  let sp = upstream impl in
  let v0 = Speaker.updates_processed sp in
  Alcotest.(check bool) "feeding advanced the version" true (v0 >= List.length incumbents);
  ignore (Speaker.feed sp ~peer:provider_side (announcement [ "100.0.0.0/16" ]));
  Alcotest.(check bool) "every update advances the version" true
    (Speaker.updates_processed sp > v0);
  let v1 = Speaker.updates_processed sp in
  ignore (Speaker.feed sp ~peer:provider_side Msg.Keepalive);
  Alcotest.(check int) "keepalives do not" v1 (Speaker.updates_processed sp)

let test_snapshot_restore_roundtrip impl () =
  let sp = upstream impl in
  let clone = Speaker.restore_like sp (Speaker.realization sp) (Speaker.snapshot sp) in
  Alcotest.(check string) "clone keeps the implementation" impl (Speaker.id clone);
  Alcotest.(check int) "clone keeps the version counter"
    (Speaker.updates_processed sp) (Speaker.updates_processed clone);
  Alcotest.(check int) "clone keeps the table"
    (Rib.Loc.cardinal (Speaker.loc_rib sp))
    (Rib.Loc.cardinal (Speaker.loc_rib clone));
  Alcotest.(check bytes) "snapshot of the clone is byte-identical"
    (Speaker.snapshot sp) (Speaker.snapshot clone)

let test_clone_isolation impl () =
  let sp = upstream impl in
  let before = Speaker.snapshot sp in
  let clone = Speaker.restore_like sp (Speaker.realization sp) before in
  ignore (Speaker.feed clone ~peer:provider_side (announcement [ "100.66.0.0/16" ]));
  Alcotest.(check bool) "clone took the route" true
    (Speaker.best_route clone (p "100.66.0.0/16") <> None);
  Alcotest.(check bool) "live speaker never saw it" true
    (Speaker.best_route sp (p "100.66.0.0/16") = None);
  Alcotest.(check bytes) "live state untouched" before (Speaker.snapshot sp)

let test_freeze_captures_the_moment impl () =
  let sp = upstream impl in
  let serialize = Speaker.freeze sp in
  (* the live speaker moves on after the freeze *)
  ignore (Speaker.feed sp ~peer:provider_side (announcement [ "100.77.0.0/16" ]));
  let clone = Speaker.restore_like sp (Speaker.realization sp) (serialize ()) in
  Alcotest.(check bool) "live has the post-freeze route" true
    (Speaker.best_route sp (p "100.77.0.0/16") <> None);
  Alcotest.(check bool) "the frozen image does not" true
    (Speaker.best_route clone (p "100.77.0.0/16") = None)

let test_explores_as_live_node impl () =
  (* the full checkpoint–symbolize–explore loop with this implementation
     as the live node: freeze, concolic import over restored clones,
     checking — nothing in the orchestrator may assume BIRD *)
  let sp = upstream impl in
  let cfg =
    { Orchestrator.default_cfg with
      Orchestrator.exploration =
        { Orchestrator.default_exploration with
          Orchestrator.explorer =
            { Dice_concolic.Explorer.default_config with
              Dice_concolic.Explorer.max_runs = 24;
              max_depth = 64;
            };
        };
    }
  in
  let dice = Orchestrator.create ~cfg sp in
  let before = Speaker.snapshot sp in
  Orchestrator.observe dice ~peer:provider_side ~prefix:(p "100.80.0.0/16")
    ~route:
      (Route.make ~origin:Attr.Igp
         ~as_path:[ Asn.Path.Seq [ 64510; 64512 ] ]
         ~next_hop:provider_side ());
  let report = Orchestrator.explore dice in
  Alcotest.(check int) "the seed was explored" 1
    (List.length report.Orchestrator.seed_reports);
  Alcotest.(check bytes) "exploration never touches the live speaker" before
    (Speaker.snapshot sp)

(* ---- Local/Remote equivalence, per implementation (ISSUE 5: the new
   speaker must answer identically over both transports) ---- *)

let render outcome =
  match outcome with
  | Distributed.Timeout -> "timeout"
  | Distributed.Declined r -> "declined:" ^ r
  | Distributed.Verdicts vs ->
    String.concat ";"
      (List.map
         (fun (q, v) -> Prefix.to_string q ^ "=" ^ Verdict.to_string v)
         vs)

let local_agent sp =
  Distributed.agent ~name:"up-local" ~addr:(Ipv4.of_string "10.0.2.2")
    ~explorer_addr:provider_side (Distributed.Local sp)

let remote_agent net sp =
  let serving =
    Distributed.agent ~name:"up-serving" ~addr:(Ipv4.of_string "10.0.2.2")
      ~explorer_addr:provider_side (Distributed.Local sp)
  in
  let srv = Distributed.serve net serving in
  let cl = Probe_rpc.client net ~name:"explorer" in
  Network.connect net (Probe_rpc.client_node cl) (Probe_rpc.server_node srv)
    ~latency:0.001;
  let ep = Probe_rpc.endpoint cl ~server:(Probe_rpc.server_node srv) in
  Distributed.agent ~name:"up-remote" ~addr:(Ipv4.of_string "10.0.2.2")
    ~explorer_addr:provider_side (Distributed.Remote ep)

let equivalence_workload =
  [ announcement [ "198.51.100.0/24" ];  (* origin conflict *)
    announcement [ "198.0.0.0/8" ];  (* coverage leak *)
    announcement [ "100.0.0.0/16" ];  (* clean *)
    announcement [ "198.51.100.0/24"; "100.0.0.0/16" ];  (* multi-prefix *)
    announcement [ "192.88.99.0/24" ];  (* whitelisted *)
    announcement ~origin_asn:64888 [ "8.8.8.0/24" ];  (* same origin *)
    Msg.Keepalive  (* declined *) ]

let test_local_remote_equivalence impl () =
  let la = local_agent (upstream impl) in
  let ra = remote_agent (Network.create ()) (upstream impl) in
  List.iteri
    (fun i msg ->
      Alcotest.(check string)
        (Printf.sprintf "message %d answers identically over both transports" i)
        (render (Distributed.probe la ~from:provider_side msg))
        (render (Distributed.probe ra ~from:provider_side msg)))
    equivalence_workload

(* ---- wire tap: a quagga agent interoperates over unmodified
   Probe_wire frames — no new frame kinds, responses stay small ---- *)

let test_wire_tap_no_new_frame_types impl () =
  let net = Network.create () in
  let serving =
    Distributed.agent ~name:"up-serving" ~addr:(Ipv4.of_string "10.0.2.2")
      ~explorer_addr:provider_side (Distributed.Local (upstream impl))
  in
  let srv = Distributed.serve net serving in
  let cl = Probe_rpc.client net ~name:"explorer" in
  let client_id = Probe_rpc.client_node cl in
  let server_id = Probe_rpc.server_node srv in
  let crossed = ref [] in
  let tap =
    Network.add_node net ~name:"tap" ~handler:(fun net ~self ~from b ->
        crossed := Bytes.copy b :: !crossed;
        let dst = if from = client_id then server_id else client_id in
        Network.send net ~src:self ~dst b)
  in
  Network.connect net client_id tap ~latency:0.001;
  Network.connect net tap server_id ~latency:0.001;
  let ep = Probe_rpc.endpoint cl ~server:tap in
  let ra =
    Distributed.agent ~name:"up-remote" ~addr:(Ipv4.of_string "10.0.2.2")
      ~explorer_addr:provider_side (Distributed.Remote ep)
  in
  List.iter
    (fun msg -> ignore (Distributed.probe ra ~from:provider_side msg))
    [ announcement [ "198.51.100.0/24" ];
      announcement [ "198.0.0.0/8"; "100.0.0.0/16" ] ];
  Alcotest.(check bool) "traffic crossed the tap" true (List.length !crossed >= 4);
  List.iter
    (fun b ->
      match Probe_wire.decode b with
      | Probe_wire.Request _ | Probe_wire.Decline _ | Probe_wire.Error _
      | Probe_wire.Heartbeat _ -> ()
      | Probe_wire.Response { verdicts; _ } ->
        Alcotest.(check bool) "responses carry per-prefix verdicts only" true
          (List.length verdicts <= 2);
        Alcotest.(check bool) "response size independent of the RIB behind it" true
          (Bytes.length b < 128)
      | exception Dice_wire.Rbuf.Truncated msg ->
        Alcotest.failf "%s emitted a non-Probe_wire frame: %s" impl msg)
    !crossed

(* ---- QCheck: how far may the implementations diverge? ---- *)

let verdicts_for agent msg =
  Distributed.verdicts (Distributed.probe agent ~from:provider_side msg)

let arb_announcement ~allow_incumbent_prefixes =
  (* prefixes under the incumbents' umbrella (more-specifics), in unheld
     space, and — when allowed — the incumbents themselves, where the
     probe competes head-on with an installed route and decision
     tie-breaking kicks in *)
  let open QCheck.Gen in
  let more_specific =
    let* len = int_range 17 24 in
    let* bits = int_bound ((1 lsl (len - 16)) - 1) in
    return (Prefix.make ((198 lsl 24) lor (51 lsl 16) lor (bits lsl (32 - len))) len)
  in
  let unheld =
    let* block = int_range 0 255 in
    return (Prefix.make (100 lsl 24 lor (block lsl 16)) 16)
  in
  let incumbent = oneofl (List.map (fun (q, _) -> p q) incumbents) in
  let prefix =
    if allow_incumbent_prefixes then oneof [ more_specific; unheld; incumbent ]
    else oneof [ more_specific; unheld ]
  in
  let gen =
    let* prefix = prefix in
    let* origin_asn = oneofl [ 64512; 64513; 64888; 64999 ] in
    let* origin = oneofl [ Attr.Igp; Attr.Egp; Attr.Incomplete ] in
    let* med = oneofl [ None; Some 0; Some 50 ] in
    return
      (Msg.Update
         {
           withdrawn = [];
           attrs =
             Route.to_attrs
               (Route.make ~origin ~med
                  ~as_path:[ Asn.Path.Seq [ 64510; origin_asn ] ]
                  ~next_hop:provider_side ());
           nlri = [ prefix ];
         })
  in
  QCheck.make gen ~print:(fun m ->
      match m with
      | Msg.Update u -> String.concat "," (List.map Prefix.to_string u.Msg.nlri)
      | _ -> "<non-update>")

(* Property B: whatever the announcement, BIRD and Quagga always agree
   on acceptance and on origin-conflict detection — the facts the
   narrow interface promises to mean the same thing everywhere. *)
let prop_origin_conflict_agreement =
  let bird = local_agent (upstream "bird") in
  let quagga = local_agent (upstream "quagga") in
  QCheck.Test.make ~name:"bird/quagga agree on acceptance and origin conflicts"
    ~count:150
    (arb_announcement ~allow_incumbent_prefixes:true)
    (fun msg ->
      List.for_all2
        (fun (ql, vl) (qr, vr) ->
          Prefix.equal ql qr
          && vl.Verdict.accepted = vr.Verdict.accepted
          && vl.Verdict.origin_conflict = vr.Verdict.origin_conflict)
        (verdicts_for bird msg) (verdicts_for quagga msg))

(* Property A: away from head-on competition with an installed route
   (no decision tie-breaking involved), the whole verdict must agree —
   divergences are *only* the documented tie-break cases. *)
let prop_tie_free_full_agreement =
  let bird = local_agent (upstream "bird") in
  let quagga = local_agent (upstream "quagga") in
  QCheck.Test.make ~name:"bird/quagga verdicts identical off the tie-break paths"
    ~count:150
    (arb_announcement ~allow_incumbent_prefixes:false)
    (fun msg ->
      List.for_all2
        (fun (ql, vl) (qr, vr) -> Prefix.equal ql qr && Verdict.equal vl vr)
        (verdicts_for bird msg) (verdicts_for quagga msg))

(* Property C: the whole registered triple — not just one pair — agrees
   on acceptance and origin-conflict detection, announcement by
   announcement. This is the invariant the N-way panel's taxonomy
   rests on: a majority vote can only ever split downstream of the
   decision process (tie-break divergences), never on the policy- and
   origin-level facts. *)
let prop_panel_origin_conflict_agreement =
  let agents = List.map (fun impl -> local_agent (upstream impl)) Speakers.names in
  QCheck.Test.make
    ~name:"all registered speakers agree on acceptance and origin conflicts"
    ~count:150
    (arb_announcement ~allow_incumbent_prefixes:true)
    (fun msg ->
      match List.map (fun a -> verdicts_for a msg) agents with
      | [] -> true
      | reference :: rest ->
        List.for_all
          (List.for_all2
             (fun (ql, vl) (qr, vr) ->
               Prefix.equal ql qr
               && vl.Verdict.accepted = vr.Verdict.accepted
               && vl.Verdict.origin_conflict = vr.Verdict.origin_conflict)
             reference)
          rest)

let conformance impl =
  [ (impl ^ ": registry identity and config", `Quick, test_identity impl);
    (impl ^ ": feed installs with session attribution", `Quick,
      test_feed_and_attribution impl);
    (impl ^ ": update-version counter", `Quick, test_version_counter impl);
    (impl ^ ": snapshot/restore roundtrip", `Quick, test_snapshot_restore_roundtrip impl);
    (impl ^ ": restored clones are isolated", `Quick, test_clone_isolation impl);
    (impl ^ ": freeze captures the moment", `Quick, test_freeze_captures_the_moment impl);
    (impl ^ ": serves as the explored live node", `Quick, test_explores_as_live_node impl);
    (impl ^ ": local/remote transport equivalence", `Quick,
      test_local_remote_equivalence impl);
    (impl ^ ": wire tap sees only Probe_wire frames", `Quick,
      test_wire_tap_no_new_frame_types impl)
  ]

let suite =
  List.concat_map conformance Speakers.names
  @ [ QCheck_alcotest.to_alcotest prop_origin_conflict_agreement;
      QCheck_alcotest.to_alcotest prop_tie_free_full_agreement;
      QCheck_alcotest.to_alcotest prop_panel_origin_conflict_agreement
    ]
