(* Tests for Dice_util.Stats, Hashutil, Timeline. *)
module Stats = Dice_util.Stats
module Hashutil = Dice_util.Hashutil
module Timeline = Dice_util.Timeline

let feq = Alcotest.(check (float 1e-9))

(* ---- Stats ---- *)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check int) "count" 0 (Stats.count s);
  feq "mean" 0.0 (Stats.mean s);
  Alcotest.(check bool) "min nan" true (Float.is_nan (Stats.min s));
  Alcotest.(check bool) "percentile nan" true (Float.is_nan (Stats.percentile s 50.0))

let test_stats_single () =
  let s = Stats.create () in
  Stats.add s 4.0;
  feq "mean" 4.0 (Stats.mean s);
  feq "stddev" 0.0 (Stats.stddev s);
  feq "min" 4.0 (Stats.min s);
  feq "max" 4.0 (Stats.max s);
  feq "median" 4.0 (Stats.median s)

let test_stats_known () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  feq "mean" 5.0 (Stats.mean s);
  feq "total" 40.0 (Stats.total s);
  (* sample stddev of this classic data set: sqrt(32/7) *)
  feq "stddev" (sqrt (32.0 /. 7.0)) (Stats.stddev s)

let test_stats_percentile_interp () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 10.0; 20.0; 30.0; 40.0 ];
  feq "p0" 10.0 (Stats.percentile s 0.0);
  feq "p100" 40.0 (Stats.percentile s 100.0);
  feq "p50" 25.0 (Stats.percentile s 50.0);
  (* rank 1/3 between elements *)
  feq "p25" 17.5 (Stats.percentile s 25.0)

let test_stats_order_independent () =
  let a = Stats.create () and b = Stats.create () in
  List.iter (Stats.add a) [ 1.0; 5.0; 3.0 ];
  List.iter (Stats.add b) [ 5.0; 3.0; 1.0 ];
  feq "median" (Stats.median a) (Stats.median b)

let test_stats_to_list () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0 ];
  Alcotest.(check (list (float 0.0))) "insertion order" [ 1.0; 2.0; 3.0 ] (Stats.to_list s)

let test_stats_summary () =
  let s = Stats.create () in
  Alcotest.(check string) "empty" "n=0" (Stats.summary s);
  Stats.add s 1.0;
  Alcotest.(check bool) "mentions n" true
    (String.length (Stats.summary s) > 0
    && String.sub (Stats.summary s) 0 3 = "n=1")

let test_stats_percentile_out_of_range () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 10.0; 20.0; 30.0 ];
  (* out-of-range p clamps to the extrema instead of indexing out of
     bounds (the pre-fix behaviour raised Invalid_argument) *)
  feq "p<0 clamps to min" 10.0 (Stats.percentile s (-5.0));
  feq "p>100 clamps to max" 30.0 (Stats.percentile s 200.0);
  feq "nan p clamps to min" 10.0 (Stats.percentile s Float.nan)

(* Property: an accumulator never crashes and stays self-consistent on
   the degenerate sizes (empty handled above; here 1+ samples with
   arbitrary percentile requests). *)
let prop_stats_single_sample =
  QCheck.Test.make ~name:"stats: single-sample accumulator is the sample everywhere"
    ~count:200
    QCheck.(pair (float_bound_exclusive 1e6) (float_bound_inclusive 300.0))
    (fun (x, p) ->
      let s = Stats.create () in
      Stats.add s x;
      let pct = Stats.percentile s (p -. 100.0) (* range [-100, 200] *) in
      Stats.count s = 1
      && Stats.mean s = x
      && Stats.min s = x
      && Stats.max s = x
      && Stats.stddev s = 0.0
      && Stats.median s = x
      && pct = x)

let prop_stats_percentile_bounded =
  QCheck.Test.make ~name:"stats: percentile stays within extrema for any p" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 50) (float_bound_exclusive 1e6))
        (float_bound_inclusive 300.0))
    (fun (xs, p) ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let v = Stats.percentile s (p -. 100.0) in
      Stats.min s <= v && v <= Stats.max s)

(* ---- Hashutil ---- *)

let test_fnv_known () =
  (* FNV-1a 64 of empty input is the offset basis *)
  Alcotest.(check int64) "empty" 0xCBF29CE484222325L (Hashutil.fnv1a_string "")

let test_fnv_differs () =
  Alcotest.(check bool) "a vs b" true
    (Hashutil.fnv1a_string "a" <> Hashutil.fnv1a_string "b")

let test_fnv_bytes_window () =
  let b = Bytes.of_string "xxhelloyy" in
  Alcotest.(check int64) "windowed" (Hashutil.fnv1a_string "hello")
    (Hashutil.fnv1a_bytes b 2 5)

let test_combine_order () =
  let a = 123L and b = 456L in
  Alcotest.(check bool) "order sensitive" true
    (Hashutil.combine a b <> Hashutil.combine b a)

(* ---- Timeline ---- *)

let test_timeline_counts () =
  let t = Timeline.create () in
  Timeline.record t 1.0 10.0;
  Timeline.record t 2.0 20.0;
  Timeline.record t 3.0 30.0;
  Alcotest.(check int) "count [1,3)" 2 (Timeline.count_in t 1.0 3.0);
  feq "sum [1,3)" 30.0 (Timeline.sum_in t 1.0 3.0);
  feq "rate [0,4)" 0.75 (Timeline.rate_in t 0.0 4.0)

let test_timeline_span () =
  let t = Timeline.create () in
  Alcotest.(check (pair (float 0.0) (float 0.0))) "empty" (0.0, 0.0) (Timeline.span t);
  Timeline.record t 1.5 0.0;
  Timeline.record t 9.0 0.0;
  Alcotest.(check (pair (float 0.0) (float 0.0))) "span" (1.5, 9.0) (Timeline.span t)

let test_timeline_points_order () =
  let t = Timeline.create () in
  Timeline.record t 1.0 1.0;
  Timeline.record t 1.0 2.0;
  Alcotest.(check (list (pair (float 0.0) (float 0.0))))
    "chronological" [ (1.0, 1.0); (1.0, 2.0) ] (Timeline.points t)

let test_timeline_empty_rate () =
  let t = Timeline.create () in
  feq "empty window" 0.0 (Timeline.rate_in t 5.0 5.0)

let suite =
  [ ("stats empty", `Quick, test_stats_empty);
    ("stats single", `Quick, test_stats_single);
    ("stats known values", `Quick, test_stats_known);
    ("stats percentile interpolation", `Quick, test_stats_percentile_interp);
    ("stats order independent", `Quick, test_stats_order_independent);
    ("stats to_list", `Quick, test_stats_to_list);
    ("stats summary", `Quick, test_stats_summary);
    ("stats percentile out of range", `Quick, test_stats_percentile_out_of_range);
    QCheck_alcotest.to_alcotest prop_stats_single_sample;
    QCheck_alcotest.to_alcotest prop_stats_percentile_bounded;
    ("fnv known", `Quick, test_fnv_known);
    ("fnv differs", `Quick, test_fnv_differs);
    ("fnv bytes window", `Quick, test_fnv_bytes_window);
    ("combine order", `Quick, test_combine_order);
    ("timeline counts", `Quick, test_timeline_counts);
    ("timeline span", `Quick, test_timeline_span);
    ("timeline points order", `Quick, test_timeline_points_order);
    ("timeline empty rate", `Quick, test_timeline_empty_rate)
  ]
