(* Tests for the DiCE core: symbolization, the byte-level concolic parser,
   the hijack checker, and the orchestrator. *)
open Dice_inet
open Dice_bgp
open Dice_concolic
open Dice_core

(* Figure-2 addressing, resolved through the topology spec *)
let tr_f2_spec = Dice_topology.Threerouter.spec Dice_topology.Threerouter.Correct
let tr_customer_addr = Dice_topology.Topology.Spec.address tr_f2_spec ~of_:"customer" ~toward:"provider"


let p = Prefix.of_string

let base_route =
  Route.make ~origin:Attr.Igp
    ~as_path:[ Asn.Path.Seq [ 64501; 64777 ] ]
    ~med:(Some 10)
    ~next_hop:(Ipv4.of_string "10.0.1.2")
    ()

(* ---- Symbolize ---- *)

let recording_ctx () =
  let space = Engine.Space.create () in
  (space, Engine.create ~space ~overrides:(Hashtbl.create 0) ())

let test_symbolize_defaults () =
  let _, ctx = recording_ctx () in
  let cr = Symbolize.croute ctx ~tag:"s" ~prefix:(p "203.0.113.0/24") ~route:base_route in
  Alcotest.(check string) "prefix preserved" "203.0.113.0/24"
    (Prefix.to_string (Croute.prefix_of cr));
  Alcotest.(check bool) "addr symbolic" true (Cval.is_symbolic cr.Croute.net_addr);
  Alcotest.(check bool) "len symbolic" true (Cval.is_symbolic cr.Croute.net_len);
  Alcotest.(check bool) "origin symbolic" true (Cval.is_symbolic cr.Croute.origin);
  Alcotest.(check bool) "origin_as symbolic" true (Cval.is_symbolic cr.Croute.origin_as);
  Alcotest.(check bool) "med symbolic (was present)" true (Cval.is_symbolic cr.Croute.med);
  Alcotest.(check int) "origin_as default" 64777 (Cval.to_int cr.Croute.origin_as)

let test_symbolize_seed_constraints () =
  let _, ctx = recording_ctx () in
  ignore (Symbolize.croute ctx ~tag:"s2" ~prefix:(p "10.0.0.0/8") ~route:base_route);
  (* len <= 32 and origin <= 2 *)
  Alcotest.(check int) "two seed constraints" 2
    (List.length (Engine.seed_constraints ctx))

let test_symbolize_no_med () =
  let route = { base_route with Route.med = None } in
  let _, ctx = recording_ctx () in
  let cr = Symbolize.croute ctx ~tag:"s3" ~prefix:(p "10.0.0.0/8") ~route in
  Alcotest.(check bool) "med stays concrete" false (Cval.is_symbolic cr.Croute.med);
  Alcotest.(check bool) "has_med false" false cr.Croute.has_med

let test_symbolize_overrides () =
  let space = Engine.Space.create () in
  let ctx0 = Engine.create ~space ~overrides:(Hashtbl.create 0) () in
  ignore (Symbolize.croute ctx0 ~tag:"s4" ~prefix:(p "10.0.0.0/8") ~route:base_route);
  let addr_var =
    match Engine.Space.find space "s4.addr" with
    | Some v -> v
    | None -> Alcotest.fail "addr input not registered"
  in
  let overrides : Sym.env = Hashtbl.create 4 in
  Hashtbl.replace overrides addr_var.Sym.id (Int64.of_int (Prefix.network (p "198.51.0.0/16")));
  let ctx = Engine.create ~space ~overrides () in
  let cr = Symbolize.croute ctx ~tag:"s4" ~prefix:(p "10.0.0.0/8") ~route:base_route in
  Alcotest.(check string) "override applied (len still /8)" "198.0.0.0/8"
    (Prefix.to_string (Croute.prefix_of cr))

let test_symbolize_message_bytes () =
  let _, ctx = recording_ctx () in
  let observed = Msg.encode Msg.Keepalive in
  let cvals = Symbolize.message_bytes ctx ~tag:"m" observed in
  Alcotest.(check int) "one input per byte" (Bytes.length observed) (Array.length cvals);
  Alcotest.(check bytes) "concretize is identity" observed (Symbolize.concretize_bytes cvals);
  Alcotest.(check bool) "all symbolic" true
    (Array.for_all Cval.is_symbolic cvals)

(* ---- Concolic_parser ---- *)

let validate bytes =
  let _, ctx = recording_ctx () in
  let cvals = Symbolize.message_bytes ctx ~tag:"v" bytes in
  let depth = Concolic_parser.validate ctx cvals in
  (depth, Path.length (Engine.path ctx))

let update_msg =
  Msg.encode
    (Msg.Update
       { withdrawn = [];
         attrs = Route.to_attrs base_route;
         nlri = [ p "203.0.113.0/24" ] })

let test_parser_valid_update () =
  let depth, constraints = validate update_msg in
  Alcotest.(check string) "valid" "valid-update" (Concolic_parser.depth_to_string depth);
  Alcotest.(check bool) "constraints recorded" true (constraints > 16)

let test_parser_valid_keepalive () =
  let depth, _ = validate (Msg.encode Msg.Keepalive) in
  Alcotest.(check string) "other" "valid-other" (Concolic_parser.depth_to_string depth)

let test_parser_bad_marker () =
  let b = Bytes.copy update_msg in
  Bytes.set b 5 '\x00';
  let depth, _ = validate b in
  Alcotest.(check string) "header" "bad-header" (Concolic_parser.depth_to_string depth)

let test_parser_bad_length () =
  let b = Bytes.copy update_msg in
  Bytes.set b 17 '\x00';
  let depth, _ = validate b in
  Alcotest.(check string) "header" "bad-header" (Concolic_parser.depth_to_string depth)

let test_parser_bad_type () =
  let b = Bytes.copy update_msg in
  Bytes.set b 18 '\x07';
  let depth, _ = validate b in
  Alcotest.(check string) "header" "bad-header" (Concolic_parser.depth_to_string depth)

let test_parser_bad_nlri () =
  let b = Bytes.copy update_msg in
  (* NLRI length byte is 4 bytes from the end (len 24 -> 3 addr bytes) *)
  Bytes.set b (Bytes.length b - 4) (Char.chr 60);
  let depth, _ = validate b in
  Alcotest.(check string) "nlri" "bad-nlri" (Concolic_parser.depth_to_string depth)

let test_parser_agrees_with_decoder () =
  (* on random single-byte corruptions, "valid-update" must imply the real
     decoder accepts the bytes *)
  let rng = Dice_util.Rng.create 11L in
  for _ = 1 to 200 do
    let b = Bytes.copy update_msg in
    let i = Dice_util.Rng.int rng (Bytes.length b) in
    Bytes.set b i (Char.chr (Dice_util.Rng.int rng 256));
    let depth, _ = validate b in
    match depth with
    | Concolic_parser.Valid_update ->
      (* structural validity must rule out header errors; value-level
         attribute errors (e.g. a corrupted AS_PATH segment count) are
         beyond the structural checks and acceptable here *)
      Alcotest.(check bool)
        (Printf.sprintf "byte %d: no header error" i)
        true
        (match Msg.decode b with
        | Ok _ -> true
        | Error (Msg.Header_error _) -> false
        | Error (Msg.Open_error _ | Msg.Update_error _ | Msg.Update_malformed _) -> true)
    | _ -> ()
  done

(* ---- Hijack checker ---- *)

let loc_with entries =
  List.fold_left
    (fun acc (prefix, origin_asn) ->
      let route =
        Route.make ~origin:Attr.Igp
          ~as_path:[ Asn.Path.Seq [ 64700; origin_asn ] ]
          ~next_hop:(Ipv4.of_string "10.0.2.2") ()
      in
      Rib.Loc.set (p prefix)
        { Rib.Loc.route;
          src = { Route.peer_addr = 2; peer_asn = 64700; peer_bgp_id = 2; ebgp = true } }
        acc)
    Rib.Loc.empty entries

let outcome ?(accepted = true) ?(installed = true) ~prefix ~origin_asn () =
  let route =
    Route.make ~origin:Attr.Igp
      ~as_path:[ Asn.Path.Seq [ 64501; origin_asn ] ]
      ~next_hop:(Ipv4.of_string "10.0.1.2") ()
  in
  { Speaker.prefix = p prefix;
    accepted;
    installed;
    route = (if accepted then Some route else None);
    previous_best = None;
    outputs = [];
  }

let ctx_with ?(anycast = []) entries =
  { Checker.pre_loc_rib = loc_with entries;
    anycast = List.map p anycast;
    peer = Ipv4.of_string "10.0.1.2";
    peer_as = 64501;
  }

let run_checker cctx oc = Hijack.checker.Checker.check cctx oc

let test_hijack_same_origin_clean () =
  let cctx = ctx_with [ ("198.51.100.0/22", 64501) ] in
  let faults = run_checker cctx (outcome ~prefix:"198.51.100.0/22" ~origin_asn:64501 ()) in
  Alcotest.(check int) "no fault" 0 (List.length faults)

let test_hijack_exact_override () =
  let cctx = ctx_with [ ("198.51.100.0/22", 64999) ] in
  let faults = run_checker cctx (outcome ~prefix:"198.51.100.0/22" ~origin_asn:64501 ()) in
  match faults with
  | [ f ] ->
    Alcotest.(check string) "checker" "origin-hijack" f.Checker.checker;
    Alcotest.(check bool) "critical" true (f.Checker.severity = Checker.Critical)
  | _ -> Alcotest.failf "expected one fault, got %d" (List.length faults)

let test_hijack_more_specific () =
  (* the YouTube pattern: /24 announced inside an existing /22 *)
  let cctx = ctx_with [ ("198.51.100.0/22", 64999) ] in
  let faults = run_checker cctx (outcome ~prefix:"198.51.101.0/24" ~origin_asn:64501 ()) in
  Alcotest.(check int) "flagged" 1 (List.length faults);
  match faults with
  | [ f ] ->
    Alcotest.(check (option string)) "names the victim" (Some "198.51.100.0/22")
      (List.assoc_opt "existing-prefix" f.Checker.details)
  | _ -> ()

let test_hijack_rejected_no_fault () =
  let cctx = ctx_with [ ("198.51.100.0/22", 64999) ] in
  let faults =
    run_checker cctx
      (outcome ~accepted:false ~installed:false ~prefix:"198.51.100.0/22" ~origin_asn:64501 ())
  in
  Alcotest.(check int) "no fault when rejected" 0 (List.length faults)

let test_hijack_anycast_whitelisted () =
  let cctx = ctx_with ~anycast:[ "192.88.99.0/24" ] [ ("192.88.99.0/24", 64999) ] in
  let faults = run_checker cctx (outcome ~prefix:"192.88.99.0/24" ~origin_asn:64501 ()) in
  Alcotest.(check int) "whitelisted" 0 (List.length faults)

let test_filter_leak_for_unheld_space () =
  let cctx = ctx_with [ ("8.8.8.0/24", 64999) ] in
  let faults = run_checker cctx (outcome ~prefix:"100.100.0.0/16" ~origin_asn:64501 ()) in
  match faults with
  | [ f ] ->
    Alcotest.(check string) "leak" "filter-leak" f.Checker.checker;
    Alcotest.(check bool) "warning" true (f.Checker.severity = Checker.Warning)
  | _ -> Alcotest.failf "expected one leak, got %d" (List.length faults)

let test_leakable_summary () =
  let f prefix =
    { Checker.checker = "origin-hijack"; severity = Checker.Critical; prefix = p prefix;
      description = "d"; details = [] }
  in
  let summary = Hijack.leakable_summary [ f "10.0.0.0/8"; f "10.0.0.0/8"; f "9.0.0.0/8" ] in
  Alcotest.(check (list (pair string int))) "aggregated"
    [ ("9.0.0.0/8", 1); ("10.0.0.0/8", 2) ]
    (List.map (fun (q, c) -> (Prefix.to_string q, c)) summary)

(* ---- Orchestrator (on the 3-router testbed) ---- *)

let testbed filtering =
  let topo = Dice_topology.Threerouter.build filtering in
  Dice_topology.Threerouter.start topo;
  let trace =
    Dice_trace.Gen.generate
      { Dice_trace.Gen.default_params with Dice_trace.Gen.n_prefixes = 1500; duration = 30.0 }
  in
  ignore (Dice_topology.Threerouter.load_table topo trace);
  topo

let observe_customer dice =
  let route =
    Route.make ~origin:Attr.Igp
      ~as_path:[ Asn.Path.Seq [ Dice_topology.Threerouter.customer_as ] ]
      ~next_hop:tr_customer_addr ()
  in
  Orchestrator.observe dice ~peer:tr_customer_addr
    ~prefix:(p "203.0.113.0/24") ~route

let explore_cfg ?(mode = Symbolize.Selective) ?(runs = 192) () =
  { Orchestrator.default_cfg with
    Orchestrator.exploration =
      { Orchestrator.default_exploration with
        Orchestrator.mode;
        explorer =
          { Explorer.default_config with Explorer.max_runs = runs; max_depth = 96 };
      };
  }

let test_orchestrator_seeding () =
  let topo = testbed Dice_topology.Threerouter.Partially_correct in
  let dice = Orchestrator.create (Speakers.bird (Dice_topology.Threerouter.provider_router topo)) in
  Alcotest.(check int) "empty" 0 (Orchestrator.pending_seeds dice);
  observe_customer dice;
  Alcotest.(check int) "one" 1 (Orchestrator.pending_seeds dice);
  Orchestrator.observe_update dice ~peer:tr_customer_addr
    { Msg.withdrawn = [];
      attrs = Route.to_attrs base_route;
      nlri = [ p "203.0.113.0/24"; p "198.51.100.0/22" ];
    };
  Alcotest.(check int) "three" 3 (Orchestrator.pending_seeds dice);
  ignore (Orchestrator.explore dice);
  Alcotest.(check int) "drained" 0 (Orchestrator.pending_seeds dice)

let test_orchestrator_finds_hijacks_with_broken_filter () =
  let topo = testbed Dice_topology.Threerouter.Partially_correct in
  let dice =
    Orchestrator.create ~cfg:(explore_cfg ())
      (Speakers.bird (Dice_topology.Threerouter.provider_router topo))
  in
  observe_customer dice;
  let report = Orchestrator.explore dice in
  let criticals =
    List.filter (fun (f : Checker.fault) -> f.Checker.severity = Checker.Critical)
      report.Orchestrator.faults
  in
  Alcotest.(check bool) "found hijackable ranges" true (List.length criticals > 0);
  List.iter
    (fun (f : Checker.fault) ->
      Alcotest.(check bool) "inside the leaky 198/8 block" true
        (Prefix.subsumes (p "198.0.0.0/8") f.Checker.prefix))
    report.Orchestrator.faults

let test_orchestrator_clean_with_correct_filter () =
  let topo = testbed Dice_topology.Threerouter.Correct in
  let dice =
    Orchestrator.create ~cfg:(explore_cfg ())
      (Speakers.bird (Dice_topology.Threerouter.provider_router topo))
  in
  observe_customer dice;
  let report = Orchestrator.explore dice in
  let criticals =
    List.filter (fun (f : Checker.fault) -> f.Checker.severity = Checker.Critical)
      report.Orchestrator.faults
  in
  Alcotest.(check int) "nothing hijackable" 0 (List.length criticals)

let test_orchestrator_live_router_untouched () =
  let topo = testbed Dice_topology.Threerouter.Partially_correct in
  let provider = Dice_topology.Threerouter.provider_router topo in
  let before = Router.snapshot provider in
  let dice = Orchestrator.create ~cfg:(explore_cfg ()) (Speakers.bird provider) in
  observe_customer dice;
  ignore (Orchestrator.explore dice);
  Alcotest.(check bytes) "exploration never mutates the live router" before
    (Router.snapshot provider)

let test_orchestrator_isolation () =
  let topo = testbed Dice_topology.Threerouter.Partially_correct in
  let net = topo.Dice_topology.Threerouter.net in
  let sent_before = Dice_sim.Network.messages_sent net in
  let dice =
    Orchestrator.create ~cfg:(explore_cfg ())
      (Speakers.bird (Dice_topology.Threerouter.provider_router topo))
  in
  observe_customer dice;
  let report = Orchestrator.explore dice in
  Alcotest.(check int) "no exploration traffic on the live network" sent_before
    (Dice_sim.Network.messages_sent net);
  (* but exploration did produce (intercepted) messages *)
  let intercepted =
    List.fold_left
      (fun acc (sr : Orchestrator.seed_report) -> acc + sr.Orchestrator.intercepted)
      0 report.Orchestrator.seed_reports
  in
  Alcotest.(check bool) "sandbox captured exploration traffic" true (intercepted > 0)

let test_orchestrator_clone_stats () =
  let topo = testbed Dice_topology.Threerouter.Partially_correct in
  let dice =
    Orchestrator.create ~cfg:(explore_cfg ())
      (Speakers.bird (Dice_topology.Threerouter.provider_router topo))
  in
  observe_customer dice;
  let report = Orchestrator.explore dice in
  match report.Orchestrator.seed_reports with
  | [ sr ] ->
    Alcotest.(check bool) "clone stats sampled" true (sr.Orchestrator.clone_stats <> []);
    List.iter
      (fun (cs : Dice_checkpoint.Fork.clone_stats) ->
        Alcotest.(check bool) "unique pages positive" true (cs.Dice_checkpoint.Fork.unique > 0))
      sr.Orchestrator.clone_stats
  | _ -> Alcotest.fail "expected one seed report"

let test_orchestrator_whole_message_mode () =
  let topo = testbed Dice_topology.Threerouter.Partially_correct in
  let dice =
    Orchestrator.create
      ~cfg:(explore_cfg ~mode:Symbolize.Whole_message ~runs:96 ())
      (Speakers.bird (Dice_topology.Threerouter.provider_router topo))
  in
  observe_customer dice;
  let report = Orchestrator.explore dice in
  match report.Orchestrator.seed_reports with
  | [ sr ] ->
    (* the initial run is the observed (valid) message; negated runs land
       overwhelmingly in the parser *)
    let total = List.fold_left (fun a (_, c) -> a + c) 0 sr.Orchestrator.depth_counts in
    let invalid =
      List.fold_left
        (fun a (k, c) -> if k <> "valid-update" then a + c else a)
        0 sr.Orchestrator.depth_counts
    in
    Alcotest.(check bool) "ran" true (total > 10);
    Alcotest.(check bool) "most runs die in the parser" true
      (float_of_int invalid >= 0.5 *. float_of_int total)
  | _ -> Alcotest.fail "expected one seed report"

let suite =
  [ ("symbolize defaults", `Quick, test_symbolize_defaults);
    ("symbolize seed constraints", `Quick, test_symbolize_seed_constraints);
    ("symbolize without MED", `Quick, test_symbolize_no_med);
    ("symbolize overrides", `Quick, test_symbolize_overrides);
    ("symbolize message bytes", `Quick, test_symbolize_message_bytes);
    ("parser: valid update", `Quick, test_parser_valid_update);
    ("parser: keepalive", `Quick, test_parser_valid_keepalive);
    ("parser: bad marker", `Quick, test_parser_bad_marker);
    ("parser: bad length", `Quick, test_parser_bad_length);
    ("parser: bad type", `Quick, test_parser_bad_type);
    ("parser: bad nlri", `Quick, test_parser_bad_nlri);
    ("parser agrees with decoder", `Quick, test_parser_agrees_with_decoder);
    ("hijack: same origin clean", `Quick, test_hijack_same_origin_clean);
    ("hijack: exact override", `Quick, test_hijack_exact_override);
    ("hijack: more specific", `Quick, test_hijack_more_specific);
    ("hijack: rejected no fault", `Quick, test_hijack_rejected_no_fault);
    ("hijack: anycast whitelisted", `Quick, test_hijack_anycast_whitelisted);
    ("filter-leak for unheld space", `Quick, test_filter_leak_for_unheld_space);
    ("leakable summary", `Quick, test_leakable_summary);
    ("orchestrator seeding", `Quick, test_orchestrator_seeding);
    ("orchestrator finds hijacks (broken filter)", `Slow,
     test_orchestrator_finds_hijacks_with_broken_filter);
    ("orchestrator clean (correct filter)", `Slow, test_orchestrator_clean_with_correct_filter);
    ("live router untouched", `Slow, test_orchestrator_live_router_untouched);
    ("exploration isolated", `Slow, test_orchestrator_isolation);
    ("clone stats sampled", `Slow, test_orchestrator_clone_stats);
    ("whole-message mode", `Slow, test_orchestrator_whole_message_mode)
  ]
