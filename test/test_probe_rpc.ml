(* Tests for the probe RPC layer and the Remote transport: Local/Remote
   equivalence over a connected link, timeout degradation over a cut
   link, backoff recovery over a slow link, and the confidentiality
   assertion — in remote mode the exploring side holds no router, and
   every octet that crosses the inter-domain link decodes as a
   Probe_wire frame. *)
open Dice_inet
open Dice_bgp
open Dice_core
module Network = Dice_sim.Network

let p = Prefix.of_string
let provider_side = Ipv4.of_string "10.0.2.1"
let collector = Ipv4.of_string "10.0.3.2"

let establish router peer remote_as =
  ignore (Router.handle_event router ~peer Fsm.Manual_start);
  ignore (Router.handle_event router ~peer Fsm.Tcp_connected);
  ignore
    (Router.handle_msg router ~peer
       (Msg.Open
          { Msg.version = 4; my_as = remote_as land 0xFFFF; hold_time = 90; bgp_id = peer;
            capabilities = [ Msg.Cap_as4 remote_as ] }));
  ignore (Router.handle_msg router ~peer Msg.Keepalive)

let upstream () =
  let r =
    Router.create
      (Config_parser.parse
         {|
         router id 10.0.2.2;
         local as 64700;
         protocol bgp provider { neighbor 10.0.2.1 as 64510; import all; export none; }
         protocol bgp collector { neighbor 10.0.3.2 as 64701; import all; export all; }
         anycast [ 192.88.99.0/24 ];
         |})
  in
  establish r provider_side 64510;
  establish r collector 64701;
  List.iter
    (fun (prefix, origin) ->
      let route =
        Route.make ~origin:Attr.Igp
          ~as_path:[ Asn.Path.Seq [ 64701; origin ] ]
          ~next_hop:collector ()
      in
      ignore
        (Router.handle_msg r ~peer:collector
           (Msg.Update { withdrawn = []; attrs = Route.to_attrs route; nlri = [ p prefix ] })))
    [ ("198.51.0.0/16", 64999); ("8.8.8.0/24", 64888); ("192.88.99.0/24", 64777) ];
  r

let announcement ?(origin_asn = 64510) prefixes =
  Msg.Update
    {
      withdrawn = [];
      attrs =
        Route.to_attrs
          (Route.make ~origin:Attr.Igp
             ~as_path:[ Asn.Path.Seq [ 64510; origin_asn ] ]
             ~next_hop:provider_side ());
      nlri = List.map p prefixes;
    }

let local_agent ?(name = "up") router =
  Distributed.agent ~name ~addr:(Ipv4.of_string "10.0.2.2")
    ~explorer_addr:provider_side (Distributed.Local (Speakers.bird router))

(* A served upstream plus a Remote agent reaching it over [latency]
   links. Returns (remote agent, serving agent, net, client, server). *)
let remote_setup ?config ?(latency = 0.001) router =
  let net = Network.create () in
  let serving = local_agent ~name:"up-serving" router in
  let srv = Distributed.serve net serving in
  let cl = Probe_rpc.client net ~name:"explorer" in
  Network.connect net (Probe_rpc.client_node cl) (Probe_rpc.server_node srv) ~latency;
  let ep = Probe_rpc.endpoint ?config cl ~server:(Probe_rpc.server_node srv) in
  let ra =
    Distributed.agent ~name:"up-remote" ~addr:(Ipv4.of_string "10.0.2.2")
      ~explorer_addr:provider_side (Distributed.Remote ep)
  in
  (ra, serving, net, cl, srv)

let render outcome =
  match outcome with
  | Distributed.Timeout -> "timeout"
  | Distributed.Declined r -> "declined:" ^ r
  | Distributed.Verdicts vs ->
    String.concat ";"
      (List.map
         (fun (q, (v : Distributed.verdict)) ->
           Printf.sprintf "%s=%b|%b|%b|%d|%d" (Prefix.to_string q) v.Distributed.accepted
             v.Distributed.installed v.Distributed.origin_conflict
             v.Distributed.covers_foreign v.Distributed.would_propagate)
         vs)

let workload =
  [ announcement [ "198.51.100.0/24" ];  (* origin conflict *)
    announcement [ "198.0.0.0/8" ];  (* coverage leak *)
    announcement [ "100.0.0.0/16" ];  (* clean *)
    announcement [ "198.51.100.0/24"; "100.0.0.0/16" ];  (* multi-prefix *)
    announcement [ "192.88.99.0/24" ];  (* whitelisted *)
    announcement ~origin_asn:64888 [ "8.8.8.0/24" ];  (* same origin *)
    Msg.Keepalive  (* declined *) ]

let test_local_remote_equivalence () =
  let up = upstream () in
  let la = local_agent up in
  let ra, _, _, _, _ = remote_setup (upstream ()) in
  List.iteri
    (fun i msg ->
      Alcotest.(check string)
        (Printf.sprintf "message %d answers identically over both transports" i)
        (render (Distributed.probe la ~from:provider_side msg))
        (render (Distributed.probe ra ~from:provider_side msg)))
    workload

let test_probe_all_mixed_transports () =
  (* interleaved local and remote requests: identical verdicts, request
     order preserved whatever the transport mix *)
  let la = local_agent (upstream ()) in
  let ra, _, _, _, _ = remote_setup (upstream ()) in
  let reqs agent = List.map (fun m -> (agent, provider_side, m)) workload in
  let interleaved =
    List.concat_map (fun (x, y) -> [ x; y ]) (List.combine (reqs ra) (reqs la))
  in
  let answers = Distributed.probe_all ~jobs:2 interleaved in
  List.iteri
    (fun i (outcome, (_, _, _msg)) ->
      let expected =
        render (List.nth answers (if i mod 2 = 0 then i + 1 else i - 1))
      in
      Alcotest.(check string)
        (Printf.sprintf "request %d matches its other-transport twin" i)
        expected (render outcome))
    (List.combine answers interleaved)

let test_disconnected_times_out () =
  let config = { Probe_rpc.default_config with Probe_rpc.timeout = 0.5; retries = 2 } in
  let ra, _, net, cl, srv = remote_setup ~config (upstream ()) in
  Network.disconnect net (Probe_rpc.client_node cl) (Probe_rpc.server_node srv);
  (match Distributed.probe ra ~from:provider_side (announcement [ "198.51.100.0/24" ]) with
  | Distributed.Timeout -> ()
  | o -> Alcotest.failf "expected a timeout over the cut link, got %s" (render o));
  let s = Distributed.stats ra in
  Alcotest.(check int) "all configured retries spent" config.Probe_rpc.retries
    s.Distributed.retries;
  Alcotest.(check int) "one timeout recorded" 1 s.Distributed.timeouts;
  (* declines never touch the wire, so they still answer *)
  match Distributed.probe ra ~from:provider_side Msg.Keepalive with
  | Distributed.Declined _ -> ()
  | o -> Alcotest.failf "decline should not need the link, got %s" (render o)

let test_checker_survives_partition () =
  (* an unreachable agent degrades the checker to zero findings — no
     exception escapes, exploration would continue *)
  let up = upstream () in
  let config = { Probe_rpc.default_config with Probe_rpc.retries = 1 } in
  let ra, _, net, cl, srv = remote_setup ~config up in
  Network.disconnect net (Probe_rpc.client_node cl) (Probe_rpc.server_node srv);
  let chk = Distributed.checker ~jobs:1 ~agents:[ ra ] in
  let ctx =
    { Checker.pre_loc_rib = Router.loc_rib up;
      anycast = [];
      peer = Ipv4.of_string "10.0.1.2";
      peer_as = 64501;
    }
  in
  let outcome : Speaker.import_outcome =
    { Speaker.prefix = p "203.0.113.0/24";
      accepted = true;
      installed = true;
      route = None;
      previous_best = None;
      outputs = [ (Distributed.agent_addr ra, announcement [ "198.51.100.0/24" ]) ];
    }
  in
  Alcotest.(check int) "no findings, no exception" 0
    (List.length (chk.Checker.check ctx outcome));
  Alcotest.(check int) "the probe timed out" 1 (Distributed.stats ra).Distributed.timeouts

let test_slow_link_backoff_recovers () =
  (* 80 ms links: the 160 ms round trip always outlives the 50 ms first
     attempt; the stable request id lets a late response to attempt 0
     complete the call while backoff is still widening the window *)
  let config =
    { Probe_rpc.default_config with Probe_rpc.timeout = 0.05; retries = 3 }
  in
  let ra, _, _, _, _ = remote_setup ~config ~latency:0.08 (upstream ()) in
  (match Distributed.probe ra ~from:provider_side (announcement [ "198.51.100.0/24" ]) with
  | Distributed.Verdicts [ (_, v) ] ->
    Alcotest.(check bool) "verdict intact after retries" true v.Distributed.origin_conflict
  | o -> Alcotest.failf "expected verdicts over the slow link, got %s" (render o));
  let s = Distributed.stats ra in
  Alcotest.(check bool) "retries were needed" true (s.Distributed.retries >= 1);
  Alcotest.(check int) "but nothing timed out" 0 s.Distributed.timeouts

let test_server_error_becomes_decline () =
  let net = Network.create () in
  let srv =
    Probe_rpc.serve net ~name:"flaky" ~answer:(fun ~from:_ _ -> failwith "boom")
  in
  let cl = Probe_rpc.client net ~name:"cl" in
  Network.connect net (Probe_rpc.client_node cl) (Probe_rpc.server_node srv)
    ~latency:0.001;
  let ep = Probe_rpc.endpoint cl ~server:(Probe_rpc.server_node srv) in
  (match
     Probe_rpc.call ep
       (Probe_wire.canonical_request ~from:provider_side
          (announcement [ "198.51.100.0/24" ]))
   with
  | Probe_rpc.Declined reason ->
    Alcotest.(check bool) "reason carried across" true
      (String.length reason > 0)
  | Probe_rpc.Verdicts _ | Probe_rpc.Timeout ->
    Alcotest.fail "a raising answer must surface as a decline");
  Alcotest.(check int) "the frame was served" 1 (Probe_rpc.frames_served srv)

let test_garbage_frames_counted_not_fatal () =
  let ra, _, net, cl, srv = remote_setup (upstream ()) in
  Network.send net ~src:(Probe_rpc.client_node cl) ~dst:(Probe_rpc.server_node srv)
    (Bytes.of_string "not a frame");
  ignore (Network.run net);
  Alcotest.(check int) "garbage counted" 1 (Probe_rpc.bad_frames srv);
  (* the server still answers real probes afterwards *)
  match Distributed.probe ra ~from:provider_side (announcement [ "8.8.8.0/24" ]) with
  | Distributed.Verdicts _ -> ()
  | o -> Alcotest.failf "server should survive garbage, got %s" (render o)

module Faults = Dice_sim.Faults

let test_duplicating_link_at_most_once () =
  (* dup=1.0: the request arrives twice, so does each response. The
     server must execute once (dedup cache) and the client must complete
     once, counting every duplicate response as late. *)
  let ra, serving, net, cl, srv = remote_setup (upstream ()) in
  Network.set_faults net (Probe_rpc.client_node cl) (Probe_rpc.server_node srv)
    (Faults.make ~duplicate:1.0 ());
  (match Distributed.probe ra ~from:provider_side (announcement [ "198.51.100.0/24" ]) with
  | Distributed.Verdicts [ (_, v) ] ->
    Alcotest.(check bool) "verdict intact" true v.Distributed.origin_conflict
  | o -> Alcotest.failf "expected verdicts, got %s" (render o));
  ignore (Network.run net);  (* drain the in-flight duplicates *)
  Alcotest.(check int) "two request frames arrived" 2 (Probe_rpc.frames_served srv);
  Alcotest.(check int) "the probe executed once" 1 (Probe_rpc.frames_executed srv);
  Alcotest.(check int) "the duplicate answered from the reply cache" 1
    (Probe_rpc.dedup_hits srv);
  (* the serving agent's stats did not double-count *)
  Alcotest.(check int) "agent probed once" 1 (Distributed.stats serving).Distributed.probes;
  let ep =
    match Distributed.agent_transport ra with
    | Distributed.Remote ep -> ep
    | Distributed.Local _ -> assert false
  in
  let s = Probe_rpc.stats ep in
  (* 2 requests -> 2 responses, each duplicated -> 4 arrivals: 1
     completes the call, 3 are late *)
  Alcotest.(check int) "late responses dropped and counted" 3 s.Probe_rpc.late_responses;
  Alcotest.(check int) "no retry was needed" 0 s.Probe_rpc.retries

let test_retry_hits_dedup_cache () =
  (* the slow-link scenario again, now asserting at-most-once on the
     server: the 160 ms round trip outlives the 50 ms first attempt, so
     retries re-send the same request id — the server must not re-probe *)
  let config =
    { Probe_rpc.default_config with Probe_rpc.timeout = 0.05; retries = 3 }
  in
  let ra, _, net, _, srv = remote_setup ~config ~latency:0.08 (upstream ()) in
  (match Distributed.probe ra ~from:provider_side (announcement [ "198.51.100.0/24" ]) with
  | Distributed.Verdicts _ -> ()
  | o -> Alcotest.failf "expected verdicts over the slow link, got %s" (render o));
  ignore (Network.run net);  (* let the in-flight retries reach the server *)
  let retries = (Distributed.stats ra).Distributed.retries in
  Alcotest.(check bool) "retries happened" true (retries >= 1);
  Alcotest.(check int) "every retry answered from the reply cache, none re-probed"
    retries (Probe_rpc.dedup_hits srv);
  Alcotest.(check int) "executed exactly once" 1 (Probe_rpc.frames_executed srv)

let test_server_crash_restart_recovers () =
  (* pause the server mid-federation: requests queue at the crashed
     node, the call degrades to a timeout; on restart the queued frames
     drain (executing once, deduping the retries) and their responses
     arrive late — dropped and counted, never applied to the completed
     call. A fresh probe then succeeds. *)
  let config =
    { Probe_rpc.default_config with Probe_rpc.timeout = 0.05; retries = 2 }
  in
  let ra, _, net, _, srv = remote_setup ~config (upstream ()) in
  Network.pause_node net (Probe_rpc.server_node srv);
  (match Distributed.probe ra ~from:provider_side (announcement [ "198.51.100.0/24" ]) with
  | Distributed.Timeout -> ()
  | o -> Alcotest.failf "expected a timeout while the server is down, got %s" (render o));
  Alcotest.(check int) "all three attempts queued at the crashed node" 3
    (Network.queued net (Probe_rpc.server_node srv));
  Network.resume_node net (Probe_rpc.server_node srv);
  ignore (Network.run net);
  Alcotest.(check int) "queued requests executed once after restart" 1
    (Probe_rpc.frames_executed srv);
  Alcotest.(check int) "the retries hit the reply cache" 2 (Probe_rpc.dedup_hits srv);
  let ep =
    match Distributed.agent_transport ra with
    | Distributed.Remote ep -> ep
    | Distributed.Local _ -> assert false
  in
  Alcotest.(check int) "post-restart responses dropped as late" 3
    (Probe_rpc.stats ep).Probe_rpc.late_responses;
  (* the restarted server answers fresh probes *)
  match Distributed.probe ra ~from:provider_side (announcement [ "8.8.8.0/24" ]) with
  | Distributed.Verdicts _ -> ()
  | o -> Alcotest.failf "restarted server should answer, got %s" (render o)

let test_corrupting_link_counted_not_fatal () =
  (* every frame is bit-flipped in transit: whatever each flip does —
     fails frame decode (counted malformed), fails Msg.decode (an Error
     frame comes back), or survives — no exception may escape the event
     loop and the call must return *)
  let config =
    { Probe_rpc.default_config with Probe_rpc.timeout = 0.05; retries = 3 }
  in
  let ra, _, net, cl, srv = remote_setup ~config (upstream ()) in
  Network.set_fault_seed net 42L;
  Network.set_faults net (Probe_rpc.client_node cl) (Probe_rpc.server_node srv)
    (Faults.make ~corrupt:1.0 ());
  let outcome = Distributed.probe ra ~from:provider_side (announcement [ "198.51.100.0/24" ]) in
  ignore (render outcome);  (* any outcome, as long as it returned *)
  Alcotest.(check bool) "every frame on the link was corrupted" true
    (Network.messages_corrupted net > 0);
  let ep =
    match Distributed.agent_transport ra with
    | Distributed.Remote ep -> ep
    | Distributed.Local _ -> assert false
  in
  let s = Probe_rpc.stats ep in
  Alcotest.(check bool) "the damage was noticed and counted somewhere" true
    (Probe_rpc.bad_frames srv + s.Probe_rpc.wire_errors + s.Probe_rpc.declines
       + s.Probe_rpc.timeouts
    > 0);
  (* determinism: the same fault seed replays the same outcome *)
  let ra2, _, net2, cl2, srv2 = remote_setup ~config (upstream ()) in
  Network.set_fault_seed net2 42L;
  Network.set_faults net2 (Probe_rpc.client_node cl2) (Probe_rpc.server_node srv2)
    (Faults.make ~corrupt:1.0 ());
  let outcome2 =
    Distributed.probe ra2 ~from:provider_side (announcement [ "198.51.100.0/24" ])
  in
  Alcotest.(check string) "same seed, same outcome" (render outcome) (render outcome2);
  Alcotest.(check int) "same seed, same corruption count"
    (Network.messages_corrupted net) (Network.messages_corrupted net2)

let test_serve_rejects_remote_agent () =
  let ra, _, net, _, _ = remote_setup (upstream ()) in
  Alcotest.check_raises "no probe relays"
    (Invalid_argument "Distributed.serve: agent is already remote")
    (fun () -> ignore (Distributed.serve net ra))

(* The confidentiality assertion. In remote mode the exploring side's
   agent holds an endpoint, not a router — the only way remote state
   could reach it is over the link. So tap the link: every octet that
   crosses must decode as a Probe_wire frame, and responses must stay
   small (per-prefix verdicts), however big the remote RIB is. *)
let test_wire_tap_only_probe_frames_cross () =
  let up = upstream () in
  (* widen the private RIB so "the whole table leaked" would be obvious *)
  List.iter
    (fun i ->
      let route =
        Route.make ~origin:Attr.Igp
          ~as_path:[ Asn.Path.Seq [ 64701; 65000 + (i mod 400) ] ]
          ~next_hop:collector ()
      in
      ignore
        (Router.handle_msg up ~peer:collector
           (Msg.Update
              { withdrawn = [];
                attrs = Route.to_attrs route;
                nlri = [ Prefix.make ((i * 65536) + 0x0A000000) 24 ];
              })))
    (List.init 200 Fun.id);
  let net = Network.create () in
  let serving = local_agent ~name:"up-serving" up in
  let srv = Distributed.serve net serving in
  let cl = Probe_rpc.client net ~name:"explorer" in
  let crossed = ref [] in
  (* a tap between the domains: records and forwards every byte *)
  let client_id = Probe_rpc.client_node cl in
  let server_id = Probe_rpc.server_node srv in
  let tap =
    Network.add_node net ~name:"tap" ~handler:(fun net ~self ~from b ->
        crossed := Bytes.copy b :: !crossed;
        let dst = if from = client_id then server_id else client_id in
        Network.send net ~src:self ~dst b)
  in
  Network.connect net client_id tap ~latency:0.001;
  Network.connect net tap server_id ~latency:0.001;
  let ep = Probe_rpc.endpoint cl ~server:tap in
  let ra =
    Distributed.agent ~name:"up-remote" ~addr:(Ipv4.of_string "10.0.2.2")
      ~explorer_addr:provider_side (Distributed.Remote ep)
  in
  (* the exploring side holds no router at all *)
  (match Distributed.agent_transport ra with
  | Distributed.Remote _ -> ()
  | Distributed.Local _ -> Alcotest.fail "remote agent must not hold a router");
  List.iter
    (fun msg -> ignore (Distributed.probe ra ~from:provider_side msg))
    [ announcement [ "198.51.100.0/24" ];
      announcement [ "198.0.0.0/8"; "100.0.0.0/16" ];
      announcement [ "10.3.0.0/24" ] ];
  Alcotest.(check bool) "traffic crossed the tap" true (List.length !crossed >= 6);
  List.iter
    (fun b ->
      match Probe_wire.decode b with
      | Probe_wire.Request _ | Probe_wire.Decline _ | Probe_wire.Error _
      | Probe_wire.Heartbeat _ -> ()
      | Probe_wire.Response { verdicts; _ } ->
        Alcotest.(check bool) "responses carry per-prefix verdicts only" true
          (List.length verdicts <= 2);
        (* 14-byte header/prefix envelope + 14 bytes per verdict, with
           slack: nowhere near the ~200-route RIB behind it *)
        Alcotest.(check bool) "response size independent of remote RIB" true
          (Bytes.length b < 128)
      | exception Dice_wire.Rbuf.Truncated msg ->
        Alcotest.failf "non-frame bytes crossed the domain boundary: %s" msg)
    !crossed

let suite =
  [ ("local and remote transports answer identically", `Quick, test_local_remote_equivalence);
    ("probe_all over mixed transports keeps order", `Quick, test_probe_all_mixed_transports);
    ("cut link degrades to a timeout after retries", `Quick, test_disconnected_times_out);
    ("checker survives a partitioned agent", `Quick, test_checker_survives_partition);
    ("slow link recovered by retry backoff", `Quick, test_slow_link_backoff_recovers);
    ("server-side exception becomes a decline", `Quick, test_server_error_becomes_decline);
    ("garbage frames counted, not fatal", `Quick, test_garbage_frames_counted_not_fatal);
    ("duplicating link: at-most-once execution", `Quick, test_duplicating_link_at_most_once);
    ("retries answered from the reply cache", `Quick, test_retry_hits_dedup_cache);
    ("server crash/restart: queued frames drain once", `Quick,
      test_server_crash_restart_recovers);
    ("corrupting link counted, not fatal", `Quick, test_corrupting_link_counted_not_fatal);
    ("serve rejects an already-remote agent", `Quick, test_serve_rejects_remote_agent);
    ("only probe frames cross the domain boundary", `Quick,
      test_wire_tap_only_probe_frames_cross)
  ]
