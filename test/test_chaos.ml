(* Chaos soak for the federated probe path (ISSUE 4 acceptance
   criteria): hundreds of probes over a link that drops 30% of frames,
   duplicates 20% and reorders within a 3-frame window must

   - complete with zero hangs (virtual time: the batch pump terminates),
   - execute every probe at most once on the serving side (request-id
     dedup, no double-counted agent stats),
   - agree with a fault-free Local agent on every non-timeout verdict,
   - and replay bit-identical fault schedules, stats and results when
     rerun with the same fault seed.

   The seed comes from DICE_FAULT_SEED when set (CI runs a small seed
   matrix), default 42. *)
open Dice_inet
open Dice_bgp
open Dice_core
module Network = Dice_sim.Network
module Faults = Dice_sim.Faults

let p = Prefix.of_string
let provider_side = Ipv4.of_string "10.0.2.1"
let collector = Ipv4.of_string "10.0.3.2"

let fault_seed =
  match Sys.getenv_opt "DICE_FAULT_SEED" with
  | Some s -> Int64.of_string s
  | None -> 42L

(* Speaker-generic upstream: the soak runs once with the BIRD speaker
   and once with the heterogeneous Quagga speaker serving probes — the
   probe path must not care which implementation answers. *)
let upstream impl =
  let cfg =
    Config_parser.parse
      {|
      router id 10.0.2.2;
      local as 64700;
      protocol bgp provider { neighbor 10.0.2.1 as 64510; import all; export none; }
      protocol bgp collector { neighbor 10.0.3.2 as 64701; import all; export all; }
      anycast [ 192.88.99.0/24 ];
      |}
  in
  let sp =
    match Speakers.create impl (Speaker.Config cfg) with
    | Some sp -> sp
    | None -> invalid_arg ("unknown speaker: " ^ impl)
  in
  Speaker.establish sp ~peer:provider_side;
  Speaker.establish sp ~peer:collector;
  List.iter
    (fun (prefix, origin) ->
      let route =
        Route.make ~origin:Attr.Igp
          ~as_path:[ Asn.Path.Seq [ 64701; origin ] ]
          ~next_hop:collector ()
      in
      ignore
        (Speaker.feed sp ~peer:collector
           (Msg.Update { withdrawn = []; attrs = Route.to_attrs route; nlri = [ p prefix ] })))
    [ ("198.51.0.0/16", 64999); ("8.8.8.0/24", 64888); ("192.88.99.0/24", 64777) ];
  sp

let announcement prefix =
  Msg.Update
    {
      withdrawn = [];
      attrs =
        Route.to_attrs
          (Route.make ~origin:Attr.Igp
             ~as_path:[ Asn.Path.Seq [ 64510; 64512 ] ]
             ~next_hop:provider_side ());
      nlri = [ p prefix ];
    }

(* 300 distinct prefixes, some under the RIB's 198.51/16 umbrella *)
let probes = 300

let workload =
  List.init probes (fun i ->
      announcement (Printf.sprintf "198.%d.%d.0/24" (51 + (i / 200)) (i mod 200)))

let render outcome =
  match outcome with
  | Distributed.Timeout -> "timeout"
  | Distributed.Declined r -> "declined:" ^ r
  | Distributed.Verdicts vs ->
    String.concat ";"
      (List.map
         (fun (q, (v : Distributed.verdict)) ->
           Printf.sprintf "%s=%b|%b|%b|%d|%d" (Prefix.to_string q) v.Distributed.accepted
             v.Distributed.installed v.Distributed.origin_conflict
             v.Distributed.covers_foreign v.Distributed.would_propagate)
         vs)

type soak = {
  results : string list;  (* rendered, in workload order *)
  executed : int;
  served : int;
  dedup : int;
  agent_probes : int;  (* serving agent's own probe count *)
  rpc : Probe_rpc.stats;
  counters : int * int * int * int;  (* dropped, duplicated, reordered, corrupted *)
}

let run_soak ?(impl = "bird") seed =
  let net = Network.create () in
  Network.set_fault_seed net seed;
  let serving = Distributed.agent ~name:"up-serving" ~addr:(Ipv4.of_string "10.0.2.2")
      ~explorer_addr:provider_side (Distributed.Local (upstream impl))
  in
  let srv = Distributed.serve net serving in
  let cl = Probe_rpc.client net ~name:"explorer" in
  Network.connect net (Probe_rpc.client_node cl) (Probe_rpc.server_node srv)
    ~latency:0.001;
  Network.set_faults net (Probe_rpc.client_node cl) (Probe_rpc.server_node srv)
    (Faults.make ~drop:0.3 ~duplicate:0.2 ~reorder:3 ());
  let config =
    { Probe_rpc.default_config with Probe_rpc.timeout = 0.05; retries = 6 }
  in
  let ep = Probe_rpc.endpoint ~config cl ~server:(Probe_rpc.server_node srv) in
  let ra =
    Distributed.agent ~name:"up-remote" ~addr:(Ipv4.of_string "10.0.2.2")
      ~explorer_addr:provider_side (Distributed.Remote ep)
  in
  let results =
    List.map (fun m -> render (Distributed.probe ra ~from:provider_side m)) workload
  in
  ignore (Network.run net);  (* drain stragglers: late duplicates, final retries *)
  {
    results;
    executed = Probe_rpc.frames_executed srv;
    served = Probe_rpc.frames_served srv;
    dedup = Probe_rpc.dedup_hits srv;
    agent_probes = (Distributed.stats serving).Distributed.probes;
    rpc = Probe_rpc.stats ep;
    counters =
      ( Network.messages_dropped net, Network.messages_duplicated net,
        Network.messages_reordered net, Network.messages_corrupted net );
  }

let soak_at_most_once_and_equivalence impl () =
  (* fault-free local baseline over the same implementation *)
  let la = Distributed.agent ~name:"up-local" ~addr:(Ipv4.of_string "10.0.2.2")
      ~explorer_addr:provider_side (Distributed.Local (upstream impl))
  in
  let baseline =
    List.map (fun m -> render (Distributed.probe la ~from:provider_side m)) workload
  in
  let s = run_soak ~impl fault_seed in
  (* the chaos actually happened *)
  let dropped, duplicated, reordered, _ = s.counters in
  Alcotest.(check bool) "frames were dropped" true (dropped > 0);
  Alcotest.(check bool) "frames were duplicated" true (duplicated > 0);
  Alcotest.(check bool) "frames were reordered" true (reordered > 0);
  Alcotest.(check bool) "duplicates hit the reply cache" true (s.dedup > 0);
  (* at-most-once: no request id executed twice, stats not double-counted *)
  Alcotest.(check bool) "zero double-executed probes" true (s.executed <= probes);
  Alcotest.(check int) "agent stats count each probe once" s.executed s.agent_probes;
  Alcotest.(check int) "every served frame either executed or deduped"
    s.served (s.executed + s.dedup);
  (* every non-timeout remote verdict equals its local equivalent; the
     fault mix (no corruption) cannot silently alter a verdict *)
  let timeouts = ref 0 in
  List.iteri
    (fun i (local, remote) ->
      if remote = "timeout" then incr timeouts
      else
        Alcotest.(check string)
          (Printf.sprintf "probe %d: remote verdict equals local" i)
          local remote)
    (List.combine baseline s.results);
  Alcotest.(check int) "rpc stats agree on the timeout count" !timeouts
    s.rpc.Probe_rpc.timeouts;
  (* losing 30% of frames must not starve the soak: the retry budget
     (6 retries, p_fail ~ 0.51^7) recovers nearly everything *)
  Alcotest.(check bool)
    (Printf.sprintf "most probes completed (%d/%d timed out)" !timeouts probes)
    true
    (!timeouts * 10 < probes)

let test_soak_seed_replay () =
  let a = run_soak fault_seed and b = run_soak fault_seed in
  Alcotest.(check (list string)) "same seed: identical results" a.results b.results;
  Alcotest.(check (pair (pair int int) (pair int int))) "same seed: identical fault counters"
    (let d, u, r, c = a.counters in ((d, u), (r, c)))
    (let d, u, r, c = b.counters in ((d, u), (r, c)));
  Alcotest.(check int) "same seed: identical executions" a.executed b.executed;
  Alcotest.(check int) "same seed: identical dedup hits" a.dedup b.dedup;
  Alcotest.(check int) "same seed: identical retries" a.rpc.Probe_rpc.retries
    b.rpc.Probe_rpc.retries;
  Alcotest.(check int) "same seed: identical late responses"
    a.rpc.Probe_rpc.late_responses b.rpc.Probe_rpc.late_responses;
  let c = run_soak (Int64.add fault_seed 1L) in
  Alcotest.(check bool) "different seed: different fault schedule" true
    (a.counters <> c.counters || a.rpc.Probe_rpc.retries <> c.rpc.Probe_rpc.retries)

(* ---- crash soak (ISSUE 9): the 3-member panel under a seeded crash
   schedule. Crash-prone serving nodes buffer (never lose) arriving
   frames, restart after a fixed downtime, and rebuild their speaker
   from snapshot + journal through the recovery harness. The soak must
   terminate (no hangs), never double-execute, keep verdict
   completeness >= 95%, agree with never-crashed local baselines on
   every completed verdict, and replay bit-identically per seed. ---- *)

let crash_seed =
  match Sys.getenv_opt "DICE_CRASH_SEED" with
  | Some s -> Int64.of_string s
  | None -> Network.default_crash_seed

let panel_members = [ "bird"; "quagga"; "xorp" ]

type crash_soak = {
  member_results : (string * string list) list;  (* impl -> rendered outcomes *)
  crashes : int;
  restarts : int;
  requeued : int;
  incarnations : (string * int) list;
  executed : (string * int) list;
  served_balance : bool;  (* served = executed + dedup on every member *)
  fail_fast : int;
  complete : int;  (* outcomes that came back as verdicts *)
  total : int;
}

let run_crash_soak seed =
  let net = Network.create () in
  Network.set_crash_seed net seed;
  let cl = Probe_rpc.client net ~name:"explorer" in
  let config =
    { Probe_rpc.default_config with
      Probe_rpc.timeout = 0.05;
      retries = 6;
      jitter = 0.1;
      breaker_threshold = 3;
      breaker_cooldown = 0.2;
    }
  in
  let made =
    List.map
      (fun impl ->
        let serving =
          Distributed.agent ~name:("up-" ^ impl) ~addr:(Ipv4.of_string "10.0.2.2")
            ~explorer_addr:provider_side
            (Distributed.Local (upstream impl))
        in
        let srv = Distributed.serve net serving in
        Network.connect net (Probe_rpc.client_node cl) (Probe_rpc.server_node srv)
          ~latency:0.001;
        let harness = Distributed.Recovery.attach serving in
        Network.set_restart_hook net (Probe_rpc.server_node srv) (fun () ->
            Distributed.Recovery.crash_restart harness);
        let _stop : unit -> unit =
          Probe_rpc.start_heartbeats ~until:120.0 srv
            ~to_:(Probe_rpc.client_node cl) ~period:0.05
            ~incarnation:(fun () -> Distributed.Recovery.incarnation harness)
            ~state_version:(fun () -> Distributed.Recovery.state_version harness)
        in
        Network.set_node_faults net (Probe_rpc.server_node srv)
          (Faults.node ~crash:0.1 ~downtime:0.1 ());
        let ep = Probe_rpc.endpoint ~config cl ~server:(Probe_rpc.server_node srv) in
        let ra =
          Distributed.agent ~name:("up-remote-" ^ impl)
            ~addr:(Ipv4.of_string "10.0.2.2") ~explorer_addr:provider_side
            (Distributed.Remote ep)
        in
        (impl, serving, srv, harness, ep, ra))
      panel_members
  in
  let member_results =
    List.map
      (fun (impl, _, _, _, _, ra) ->
        ( impl,
          List.map
            (fun m -> render (Distributed.probe ra ~from:provider_side m))
            workload ))
      made
  in
  ignore (Network.run net);
  let outcomes = List.concat_map snd member_results in
  {
    member_results;
    crashes = Network.node_crashes net;
    restarts = Network.node_restarts net;
    requeued = Network.messages_requeued net;
    incarnations =
      List.map (fun (impl, _, _, h, _, _) -> (impl, Distributed.Recovery.incarnation h)) made;
    executed =
      List.map (fun (impl, _, srv, _, _, _) -> (impl, Probe_rpc.frames_executed srv)) made;
    served_balance =
      List.for_all
        (fun (_, _, srv, _, _, _) ->
          Probe_rpc.frames_served srv
          = Probe_rpc.frames_executed srv + Probe_rpc.dedup_hits srv)
        made;
    fail_fast =
      List.fold_left
        (fun acc (_, _, _, _, ep, _) -> acc + (Probe_rpc.stats ep).Probe_rpc.fail_fast)
        0 made;
    complete =
      List.length
        (List.filter
           (fun r -> r <> "timeout" && not (String.length r >= 8 && String.sub r 0 8 = "declined"))
           outcomes);
    total = List.length outcomes;
  }

let test_crash_soak () =
  (* never-crashed local baselines, one per member implementation *)
  let baselines =
    List.map
      (fun impl ->
        let la =
          Distributed.agent ~name:("up-local-" ^ impl)
            ~addr:(Ipv4.of_string "10.0.2.2") ~explorer_addr:provider_side
            (Distributed.Local (upstream impl))
        in
        ( impl,
          List.map
            (fun m -> render (Distributed.probe la ~from:provider_side m))
            workload ))
      panel_members
  in
  let s = run_crash_soak crash_seed in
  Alcotest.(check bool) "the crash schedule actually crashed nodes" true (s.crashes > 0);
  Alcotest.(check int) "every crash restarted (no node left down)" s.crashes s.restarts;
  Alcotest.(check bool) "buffered frames were requeued across restarts" true
    (s.requeued > 0);
  Alcotest.(check bool) "at least one member recovered at a bumped incarnation" true
    (List.exists (fun (_, inc) -> inc > 0) s.incarnations);
  (* at-most-once survives the crash/restart cycle: the reply cache
     lives on the server, not in the speaker that gets rebuilt *)
  List.iter
    (fun (impl, executed) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: zero double-executed probes" impl)
        true (executed <= probes))
    s.executed;
  Alcotest.(check bool) "served = executed + dedup on every member" true
    s.served_balance;
  (* verdict completeness: >= 95% of the 3 x 300 outcomes are verdicts *)
  Alcotest.(check bool)
    (Printf.sprintf "verdict completeness >= 0.95 (%d/%d)" s.complete s.total)
    true
    (s.complete * 100 >= s.total * 95);
  (* recovered agents answer exactly like agents that never crashed:
     snapshot + journal rebuilds byte-equivalent speaker state *)
  List.iter
    (fun (impl, results) ->
      let baseline = List.assoc impl baselines in
      List.iteri
        (fun i (local, remote) ->
          if remote <> "timeout" && not (String.length remote >= 8 && String.sub remote 0 8 = "declined")
          then
            Alcotest.(check string)
              (Printf.sprintf "%s probe %d: recovered verdict equals never-crashed" impl i)
              local remote)
        (List.combine baseline results))
    s.member_results

let test_crash_soak_seed_replay () =
  let a = run_crash_soak crash_seed and b = run_crash_soak crash_seed in
  Alcotest.(check bool) "same crash seed: identical outcomes" true
    (a.member_results = b.member_results);
  Alcotest.(check int) "same crash seed: identical crash count" a.crashes b.crashes;
  Alcotest.(check bool) "same crash seed: identical incarnations" true
    (a.incarnations = b.incarnations);
  Alcotest.(check int) "same crash seed: identical requeues" a.requeued b.requeued;
  let c = run_crash_soak (Int64.add crash_seed 1L) in
  Alcotest.(check bool) "different crash seed: different schedule" true
    (a.crashes <> c.crashes || a.incarnations <> c.incarnations
    || a.member_results <> c.member_results)

(* ---- circuit breaker: a down member fails fast ---- *)

let test_breaker_fail_fast () =
  let net = Network.create () in
  let serving =
    Distributed.agent ~name:"up-serving" ~addr:(Ipv4.of_string "10.0.2.2")
      ~explorer_addr:provider_side
      (Distributed.Local (upstream "bird"))
  in
  let srv = Distributed.serve net serving in
  let cl = Probe_rpc.client net ~name:"explorer" in
  Network.connect net (Probe_rpc.client_node cl) (Probe_rpc.server_node srv)
    ~latency:0.001;
  let config =
    { Probe_rpc.default_config with
      Probe_rpc.timeout = 0.05;
      retries = 2;
      backoff = 2.0;
      breaker_threshold = 2;
      breaker_cooldown = 0.2;
    }
  in
  (* one full call burns timeout * (1 + 2 + 4) = 0.35 virtual seconds *)
  let budget = 0.05 *. (1.0 +. 2.0 +. 4.0) in
  let ep = Probe_rpc.endpoint ~config cl ~server:(Probe_rpc.server_node srv) in
  let ra =
    Distributed.agent ~name:"up-remote" ~addr:(Ipv4.of_string "10.0.2.2")
      ~explorer_addr:provider_side (Distributed.Remote ep)
  in
  (match Distributed.probe ra ~from:provider_side (announcement "198.51.1.0/24") with
  | Distributed.Verdicts _ -> ()
  | _ -> Alcotest.fail "healthy probe must answer");
  Alcotest.(check bool) "breaker closed while healthy" true
    (Probe_rpc.breaker_state ep = `Closed);
  (* the member crashes and stays down *)
  Network.pause_node net (Probe_rpc.server_node srv);
  List.iter
    (fun prefix ->
      match Distributed.probe ra ~from:provider_side (announcement prefix) with
      | Distributed.Timeout -> ()
      | _ -> Alcotest.fail "probe at a down node must time out")
    [ "198.51.2.0/24"; "198.51.3.0/24" ];
  Alcotest.(check bool) "two consecutive timeouts open the breaker" true
    (Probe_rpc.breaker_state ep = `Open);
  Alcotest.(check bool) "the breaker declares the endpoint down" true
    (Health.state (Probe_rpc.endpoint_health ep) = Health.Down);
  (* while open, probes fail fast: Declined, no wire, no timeout burn *)
  let t1 = Network.now net in
  List.iter
    (fun i ->
      match
        Distributed.probe ra ~from:provider_side
          (announcement (Printf.sprintf "198.51.%d.0/24" (10 + i)))
      with
      | Distributed.Declined _ -> ()
      | _ -> Alcotest.fail "open breaker must decline")
    (List.init 10 Fun.id);
  let elapsed = Network.now net -. t1 in
  Alcotest.(check bool)
    (Printf.sprintf "10 fail-fast probes burn < 1 timeout budget (%.3fs)" elapsed)
    true (elapsed < budget);
  Alcotest.(check int) "fail-fast declines counted" 10
    (Probe_rpc.stats ep).Probe_rpc.fail_fast;
  (* recovery: the node restarts, the cooldown passes, the half-open
     trial heals the breaker *)
  Network.resume_node net (Probe_rpc.server_node srv);
  ignore (Network.run net);
  Network.schedule net ~delay:1.0 (fun () -> ());
  ignore (Network.run net);
  (match Distributed.probe ra ~from:provider_side (announcement "198.51.99.0/24") with
  | Distributed.Verdicts _ -> ()
  | _ -> Alcotest.fail "half-open trial after recovery must answer");
  Alcotest.(check bool) "breaker closed again after the trial" true
    (Probe_rpc.breaker_state ep = `Closed);
  Alcotest.(check bool) "health recovered on positive evidence" true
    (Health.state (Probe_rpc.endpoint_health ep) = Health.Alive)

let suite =
  [ ("soak: at-most-once + local/remote equivalence", `Quick,
      soak_at_most_once_and_equivalence "bird");
    ("soak: quagga agent in the fleet", `Quick,
      soak_at_most_once_and_equivalence "quagga");
    ("soak: fault seed replays bit-identically", `Quick, test_soak_seed_replay);
    ("crash soak: 3-member panel survives a seeded crash schedule", `Quick,
      test_crash_soak);
    ("crash soak: crash seed replays bit-identically", `Quick,
      test_crash_soak_seed_replay);
    ("breaker: down member fails fast, heals half-open", `Quick,
      test_breaker_fail_fast)
  ]
