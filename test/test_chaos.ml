(* Chaos soak for the federated probe path (ISSUE 4 acceptance
   criteria): hundreds of probes over a link that drops 30% of frames,
   duplicates 20% and reorders within a 3-frame window must

   - complete with zero hangs (virtual time: the batch pump terminates),
   - execute every probe at most once on the serving side (request-id
     dedup, no double-counted agent stats),
   - agree with a fault-free Local agent on every non-timeout verdict,
   - and replay bit-identical fault schedules, stats and results when
     rerun with the same fault seed.

   The seed comes from DICE_FAULT_SEED when set (CI runs a small seed
   matrix), default 42. *)
open Dice_inet
open Dice_bgp
open Dice_core
module Network = Dice_sim.Network
module Faults = Dice_sim.Faults

let p = Prefix.of_string
let provider_side = Ipv4.of_string "10.0.2.1"
let collector = Ipv4.of_string "10.0.3.2"

let fault_seed =
  match Sys.getenv_opt "DICE_FAULT_SEED" with
  | Some s -> Int64.of_string s
  | None -> 42L

(* Speaker-generic upstream: the soak runs once with the BIRD speaker
   and once with the heterogeneous Quagga speaker serving probes — the
   probe path must not care which implementation answers. *)
let upstream impl =
  let cfg =
    Config_parser.parse
      {|
      router id 10.0.2.2;
      local as 64700;
      protocol bgp provider { neighbor 10.0.2.1 as 64510; import all; export none; }
      protocol bgp collector { neighbor 10.0.3.2 as 64701; import all; export all; }
      anycast [ 192.88.99.0/24 ];
      |}
  in
  let sp =
    match Speakers.create impl (Speaker.Config cfg) with
    | Some sp -> sp
    | None -> invalid_arg ("unknown speaker: " ^ impl)
  in
  Speaker.establish sp ~peer:provider_side;
  Speaker.establish sp ~peer:collector;
  List.iter
    (fun (prefix, origin) ->
      let route =
        Route.make ~origin:Attr.Igp
          ~as_path:[ Asn.Path.Seq [ 64701; origin ] ]
          ~next_hop:collector ()
      in
      ignore
        (Speaker.feed sp ~peer:collector
           (Msg.Update { withdrawn = []; attrs = Route.to_attrs route; nlri = [ p prefix ] })))
    [ ("198.51.0.0/16", 64999); ("8.8.8.0/24", 64888); ("192.88.99.0/24", 64777) ];
  sp

let announcement prefix =
  Msg.Update
    {
      withdrawn = [];
      attrs =
        Route.to_attrs
          (Route.make ~origin:Attr.Igp
             ~as_path:[ Asn.Path.Seq [ 64510; 64512 ] ]
             ~next_hop:provider_side ());
      nlri = [ p prefix ];
    }

(* 300 distinct prefixes, some under the RIB's 198.51/16 umbrella *)
let probes = 300

let workload =
  List.init probes (fun i ->
      announcement (Printf.sprintf "198.%d.%d.0/24" (51 + (i / 200)) (i mod 200)))

let render outcome =
  match outcome with
  | Distributed.Timeout -> "timeout"
  | Distributed.Declined r -> "declined:" ^ r
  | Distributed.Verdicts vs ->
    String.concat ";"
      (List.map
         (fun (q, (v : Distributed.verdict)) ->
           Printf.sprintf "%s=%b|%b|%b|%d|%d" (Prefix.to_string q) v.Distributed.accepted
             v.Distributed.installed v.Distributed.origin_conflict
             v.Distributed.covers_foreign v.Distributed.would_propagate)
         vs)

type soak = {
  results : string list;  (* rendered, in workload order *)
  executed : int;
  served : int;
  dedup : int;
  agent_probes : int;  (* serving agent's own probe count *)
  rpc : Probe_rpc.stats;
  counters : int * int * int * int;  (* dropped, duplicated, reordered, corrupted *)
}

let run_soak ?(impl = "bird") seed =
  let net = Network.create () in
  Network.set_fault_seed net seed;
  let serving = Distributed.agent ~name:"up-serving" ~addr:(Ipv4.of_string "10.0.2.2")
      ~explorer_addr:provider_side (Distributed.Local (upstream impl))
  in
  let srv = Distributed.serve net serving in
  let cl = Probe_rpc.client net ~name:"explorer" in
  Network.connect net (Probe_rpc.client_node cl) (Probe_rpc.server_node srv)
    ~latency:0.001;
  Network.set_faults net (Probe_rpc.client_node cl) (Probe_rpc.server_node srv)
    (Faults.make ~drop:0.3 ~duplicate:0.2 ~reorder:3 ());
  let config =
    { Probe_rpc.default_config with Probe_rpc.timeout = 0.05; retries = 6 }
  in
  let ep = Probe_rpc.endpoint ~config cl ~server:(Probe_rpc.server_node srv) in
  let ra =
    Distributed.agent ~name:"up-remote" ~addr:(Ipv4.of_string "10.0.2.2")
      ~explorer_addr:provider_side (Distributed.Remote ep)
  in
  let results =
    List.map (fun m -> render (Distributed.probe ra ~from:provider_side m)) workload
  in
  ignore (Network.run net);  (* drain stragglers: late duplicates, final retries *)
  {
    results;
    executed = Probe_rpc.frames_executed srv;
    served = Probe_rpc.frames_served srv;
    dedup = Probe_rpc.dedup_hits srv;
    agent_probes = (Distributed.stats serving).Distributed.probes;
    rpc = Probe_rpc.stats ep;
    counters =
      ( Network.messages_dropped net, Network.messages_duplicated net,
        Network.messages_reordered net, Network.messages_corrupted net );
  }

let soak_at_most_once_and_equivalence impl () =
  (* fault-free local baseline over the same implementation *)
  let la = Distributed.agent ~name:"up-local" ~addr:(Ipv4.of_string "10.0.2.2")
      ~explorer_addr:provider_side (Distributed.Local (upstream impl))
  in
  let baseline =
    List.map (fun m -> render (Distributed.probe la ~from:provider_side m)) workload
  in
  let s = run_soak ~impl fault_seed in
  (* the chaos actually happened *)
  let dropped, duplicated, reordered, _ = s.counters in
  Alcotest.(check bool) "frames were dropped" true (dropped > 0);
  Alcotest.(check bool) "frames were duplicated" true (duplicated > 0);
  Alcotest.(check bool) "frames were reordered" true (reordered > 0);
  Alcotest.(check bool) "duplicates hit the reply cache" true (s.dedup > 0);
  (* at-most-once: no request id executed twice, stats not double-counted *)
  Alcotest.(check bool) "zero double-executed probes" true (s.executed <= probes);
  Alcotest.(check int) "agent stats count each probe once" s.executed s.agent_probes;
  Alcotest.(check int) "every served frame either executed or deduped"
    s.served (s.executed + s.dedup);
  (* every non-timeout remote verdict equals its local equivalent; the
     fault mix (no corruption) cannot silently alter a verdict *)
  let timeouts = ref 0 in
  List.iteri
    (fun i (local, remote) ->
      if remote = "timeout" then incr timeouts
      else
        Alcotest.(check string)
          (Printf.sprintf "probe %d: remote verdict equals local" i)
          local remote)
    (List.combine baseline s.results);
  Alcotest.(check int) "rpc stats agree on the timeout count" !timeouts
    s.rpc.Probe_rpc.timeouts;
  (* losing 30% of frames must not starve the soak: the retry budget
     (6 retries, p_fail ~ 0.51^7) recovers nearly everything *)
  Alcotest.(check bool)
    (Printf.sprintf "most probes completed (%d/%d timed out)" !timeouts probes)
    true
    (!timeouts * 10 < probes)

let test_soak_seed_replay () =
  let a = run_soak fault_seed and b = run_soak fault_seed in
  Alcotest.(check (list string)) "same seed: identical results" a.results b.results;
  Alcotest.(check (pair (pair int int) (pair int int))) "same seed: identical fault counters"
    (let d, u, r, c = a.counters in ((d, u), (r, c)))
    (let d, u, r, c = b.counters in ((d, u), (r, c)));
  Alcotest.(check int) "same seed: identical executions" a.executed b.executed;
  Alcotest.(check int) "same seed: identical dedup hits" a.dedup b.dedup;
  Alcotest.(check int) "same seed: identical retries" a.rpc.Probe_rpc.retries
    b.rpc.Probe_rpc.retries;
  Alcotest.(check int) "same seed: identical late responses"
    a.rpc.Probe_rpc.late_responses b.rpc.Probe_rpc.late_responses;
  let c = run_soak (Int64.add fault_seed 1L) in
  Alcotest.(check bool) "different seed: different fault schedule" true
    (a.counters <> c.counters || a.rpc.Probe_rpc.retries <> c.rpc.Probe_rpc.retries)

let suite =
  [ ("soak: at-most-once + local/remote equivalence", `Quick,
      soak_at_most_once_and_equivalence "bird");
    ("soak: quagga agent in the fleet", `Quick,
      soak_at_most_once_and_equivalence "quagga");
    ("soak: fault seed replays bit-identically", `Quick, test_soak_seed_replay)
  ]
