(* Tests for the continuous-testing daemon, config-change validation, and
   the additional checkers. *)
open Dice_inet
open Dice_bgp
open Dice_core
module Threerouter = Dice_topology.Threerouter
module Net = Dice_sim.Network

(* Figure-2 addressing, resolved through the topology spec *)
let tr_f2_spec = Threerouter.spec Threerouter.Correct
let tr_customer_addr = Dice_topology.Topology.Spec.address tr_f2_spec ~of_:"customer" ~toward:"provider"
let tr_internet_addr = Dice_topology.Topology.Spec.address tr_f2_spec ~of_:"internet" ~toward:"provider"


let p = Prefix.of_string

(* ---- Checks ---- *)

let cctx =
  { Checker.pre_loc_rib = Rib.Loc.empty;
    anycast = [];
    peer = Ipv4.of_string "10.0.1.2";
    peer_as = 64501;
  }

let outcome ?(accepted = true) ?(path = [ 64501 ]) ?(next_hop = "10.0.1.2") prefix =
  let route =
    Route.make ~origin:Attr.Igp
      ~as_path:[ Asn.Path.Seq path ]
      ~next_hop:(Ipv4.of_string next_hop) ()
  in
  { Speaker.prefix = p prefix;
    accepted;
    installed = accepted;
    route = (if accepted then Some route else None);
    previous_best = None;
    outputs = [];
  }

let test_bogon_fires () =
  let c = Checks.bogon ~bogons:Checks.default_bogons in
  List.iter
    (fun prefix ->
      Alcotest.(check int) (prefix ^ " flagged") 1
        (List.length (c.Checker.check cctx (outcome prefix))))
    [ "10.1.0.0/16"; "127.0.0.0/8"; "224.1.0.0/16"; "192.168.5.0/24"; "169.254.0.0/16" ]

let test_bogon_clean_for_public () =
  let c = Checks.bogon ~bogons:Checks.default_bogons in
  List.iter
    (fun prefix ->
      Alcotest.(check int) (prefix ^ " clean") 0
        (List.length (c.Checker.check cctx (outcome prefix))))
    [ "8.8.8.0/24"; "203.0.113.0/24"; "198.51.100.0/22" ]

let test_bogon_overlap_counts () =
  (* a covering announcement that contains bogon space is also flagged *)
  let c = Checks.bogon ~bogons:Checks.default_bogons in
  Alcotest.(check int) "/7 containing 10/8" 1
    (List.length (c.Checker.check cctx (outcome "10.0.0.0/7")))

let test_bogon_rejected_outcome_ignored () =
  let c = Checks.bogon ~bogons:Checks.default_bogons in
  Alcotest.(check int) "rejected is fine" 0
    (List.length (c.Checker.check cctx (outcome ~accepted:false "10.0.0.0/8")))

let test_path_sanity () =
  let c = Checks.path_sanity ~max_length:Checks.default_max_path_length in
  Alcotest.(check int) "AS0" 1
    (List.length (c.Checker.check cctx (outcome ~path:[ 64501; 0 ] "8.8.8.0/24")));
  Alcotest.(check int) "AS_TRANS" 1
    (List.length (c.Checker.check cctx (outcome ~path:[ 64501; 23456 ] "8.8.8.0/24")));
  let long_path = List.init 40 (fun i -> 64501 + i) in
  Alcotest.(check int) "absurd length" 1
    (List.length (c.Checker.check cctx (outcome ~path:long_path "8.8.8.0/24")));
  Alcotest.(check int) "normal path clean" 0
    (List.length (c.Checker.check cctx (outcome ~path:[ 64501; 64502 ] "8.8.8.0/24")))

let test_path_sanity_custom_bound () =
  let c = Checks.path_sanity ~max_length:2 in
  Alcotest.(check int) "3 hops over a bound of 2" 1
    (List.length (c.Checker.check cctx (outcome ~path:[ 1; 2; 3 ] "8.8.8.0/24")))

let test_prefix_length () =
  let c = Checks.prefix_length ~max_len:Checks.default_max_prefix_len in
  Alcotest.(check int) "/25 flagged" 1
    (List.length (c.Checker.check cctx (outcome "8.8.8.0/25")));
  Alcotest.(check int) "/24 fine" 0
    (List.length (c.Checker.check cctx (outcome "8.8.8.0/24")))

let test_next_hop_sanity () =
  let c = Checks.next_hop_sanity in
  Alcotest.(check int) "self-referential" 1
    (List.length (c.Checker.check cctx (outcome ~next_hop:"8.8.8.1" "8.8.8.0/24")));
  Alcotest.(check int) "loopback next hop" 1
    (List.length (c.Checker.check cctx (outcome ~next_hop:"127.0.0.1" "8.8.8.0/24")));
  Alcotest.(check int) "sane next hop" 0
    (List.length (c.Checker.check cctx (outcome ~next_hop:"10.0.1.2" "8.8.8.0/24")))

let test_standard_set () =
  Alcotest.(check int) "five checkers" 5 (List.length Checks.standard)

(* ---- Validate ---- *)

let establish router peer remote_as =
  ignore (Router.handle_event router ~peer Fsm.Manual_start);
  ignore (Router.handle_event router ~peer Fsm.Tcp_connected);
  ignore
    (Router.handle_msg router ~peer
       (Msg.Open
          { Msg.version = 4; my_as = remote_as land 0xFFFF; hold_time = 90; bgp_id = peer;
            capabilities = [ Msg.Cap_as4 remote_as ] }));
  ignore (Router.handle_msg router ~peer Msg.Keepalive)

let provider_cfg filtering = Threerouter.provider_config filtering

let live_provider filtering =
  let r = Router.create (provider_cfg filtering) in
  establish r tr_customer_addr Threerouter.customer_as;
  establish r tr_internet_addr Threerouter.internet_as;
  let customer_route =
    Route.make ~origin:Attr.Igp
      ~as_path:[ Asn.Path.Seq [ Threerouter.customer_as ] ]
      ~next_hop:tr_customer_addr ()
  in
  List.iter
    (fun prefix ->
      ignore
        (Router.handle_msg r ~peer:tr_customer_addr
           (Msg.Update
              { Msg.withdrawn = []; attrs = Route.to_attrs customer_route; nlri = [ prefix ] })))
    Threerouter.customer_prefixes;
  let trace =
    Dice_trace.Gen.generate
      { Dice_trace.Gen.default_params with Dice_trace.Gen.n_prefixes = 1_200 }
  in
  ignore
    (Dice_trace.Replay.feed_dump r ~peer:tr_internet_addr
       ~next_hop:tr_internet_addr trace);
  (r, customer_route)

let seeds_for route =
  List.map
    (fun prefix ->
      { Orchestrator.tag = "s-" ^ Prefix.to_string prefix;
        peer = tr_customer_addr;
        prefix;
        route;
      })
    Threerouter.customer_prefixes

let vcfg =
  { Orchestrator.default_cfg with
    Orchestrator.exploration =
      { Orchestrator.default_exploration with
        Orchestrator.explorer =
          { Dice_concolic.Explorer.default_config with
            Dice_concolic.Explorer.max_runs = 128;
            max_depth = 96;
          };
      };
  }

let test_validate_good_fix_safe () =
  let live, route = live_provider Threerouter.Partially_correct in
  let proposed = provider_cfg Threerouter.Correct in
  let c = Validate.config_change ~cfg:vcfg ~live:(Speakers.bird live) ~proposed:(Speaker.Config proposed) ~seeds:(seeds_for route) () in
  Alcotest.(check bool) "fixes something" true (List.length c.Validate.fixed > 0);
  Alcotest.(check int) "introduces nothing" 0 (List.length c.Validate.introduced);
  Alcotest.(check int) "breaks nothing" 0 (List.length c.Validate.regressions);
  Alcotest.(check bool) "verdict" true (Validate.verdict c = `Safe)

let test_validate_noop_ineffective () =
  let live, route = live_provider Threerouter.Partially_correct in
  let proposed = provider_cfg Threerouter.Partially_correct in
  let c = Validate.config_change ~cfg:vcfg ~live:(Speakers.bird live) ~proposed:(Speaker.Config proposed) ~seeds:(seeds_for route) () in
  Alcotest.(check bool) "verdict" true (Validate.verdict c = `Ineffective);
  Alcotest.(check bool) "same faults persist" true (List.length c.Validate.persisting > 0)

let test_validate_overblocking_harmful () =
  let live, route = live_provider Threerouter.Partially_correct in
  (* a proposed config whose customer import drops everything: closes the
     leaks but breaks the observed announcements *)
  let proposed =
    Config_parser.parse
      (Printf.sprintf
         {|
         router id 10.0.2.1;
         local as %d;
         protocol bgp customer { neighbor 10.0.1.2 as %d; import none; export all; }
         protocol bgp internet { neighbor 10.0.2.2 as %d; import all; export all; }
         anycast [ 192.88.99.0/24 ];
         |}
         Threerouter.provider_as Threerouter.customer_as Threerouter.internet_as)
  in
  let c = Validate.config_change ~cfg:vcfg ~live:(Speakers.bird live) ~proposed:(Speaker.Config proposed) ~seeds:(seeds_for route) () in
  Alcotest.(check bool) "regressions found" true (List.length c.Validate.regressions > 0);
  Alcotest.(check bool) "verdict" true (Validate.verdict c = `Harmful)

let test_validate_live_untouched () =
  let live, route = live_provider Threerouter.Partially_correct in
  let before = Router.snapshot live in
  let proposed = provider_cfg Threerouter.Correct in
  ignore (Validate.config_change ~cfg:vcfg ~live:(Speakers.bird live) ~proposed:(Speaker.Config proposed) ~seeds:(seeds_for route) ());
  Alcotest.(check bytes) "live unchanged" before (Router.snapshot live)

let test_validate_peer_change_rejected () =
  let live, route = live_provider Threerouter.Partially_correct in
  let proposed =
    Config_parser.parse
      "router id 10.0.2.1; local as 64510;\n\
       protocol bgp other { neighbor 1.2.3.4 as 999; import all; export all; }"
  in
  match Validate.config_change ~cfg:vcfg ~live:(Speakers.bird live) ~proposed:(Speaker.Config proposed) ~seeds:(seeds_for route) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of a peer-set change"

(* ---- Daemon ---- *)

let daemon_testbed () =
  let topo = Threerouter.build Threerouter.Partially_correct in
  Threerouter.start topo;
  let trace =
    Dice_trace.Gen.generate
      { Dice_trace.Gen.default_params with Dice_trace.Gen.n_prefixes = 1_500; duration = 30.0 }
  in
  ignore (Threerouter.load_table topo trace);
  topo

let daemon_cfg =
  { Daemon.default_cfg with
    Daemon.explore_every = 30.0;
    seed_sample = 1;
    observe_peers = Some [ tr_customer_addr ];
    orchestrator =
      { Orchestrator.default_cfg with
        Orchestrator.exploration =
          { Orchestrator.default_exploration with
            Orchestrator.explorer =
              { Dice_concolic.Explorer.default_config with
                Dice_concolic.Explorer.max_runs = 256;
                max_depth = 96;
              };
          };
      };
  }

let customer_announces topo prefix =
  (* inject a customer announcement into the simulation as real traffic *)
  let route =
    Route.make ~origin:Attr.Igp
      ~as_path:[ Asn.Path.Seq [ Threerouter.customer_as ] ]
      ~next_hop:tr_customer_addr ()
  in
  let msg =
    Msg.Update { withdrawn = []; attrs = Route.to_attrs route; nlri = [ p prefix ] }
  in
  Net.send topo.Threerouter.net
    ~src:(Router_node.node_id topo.Threerouter.customer)
    ~dst:(Router_node.node_id topo.Threerouter.provider)
    (Router_node.frame_bgp msg)

let test_daemon_detects_automatically () =
  let topo = daemon_testbed () in
  let daemon = Daemon.attach ~cfg:daemon_cfg topo.Threerouter.provider in
  let notified = ref 0 in
  Daemon.on_fault daemon (fun _ -> incr notified);
  (* routine customer traffic flows; the daemon taps it *)
  customer_announces topo "203.0.113.0/24";
  ignore (Net.run ~until:(Net.now topo.Threerouter.net +. 100.0) topo.Threerouter.net);
  Alcotest.(check bool) "observed seeds" true (Daemon.observed daemon > 0);
  Alcotest.(check bool) "episodes ran" true (Daemon.explorations daemon >= 1);
  Alcotest.(check bool) "faults found without operator action" true
    (List.length (Daemon.faults daemon) > 0);
  Alcotest.(check int) "operator notified once per distinct fault"
    (List.length (Daemon.faults daemon))
    !notified

let test_daemon_zero_seed_sample_observes_everything () =
  (* seed_sample <= 0 used to hit Division_by_zero on the live message
     path (announcement_counter mod 0); attach now clamps it to 1 *)
  let topo = daemon_testbed () in
  let daemon =
    Daemon.attach ~cfg:{ daemon_cfg with Daemon.seed_sample = 0 } topo.Threerouter.provider
  in
  customer_announces topo "203.0.113.0/24";
  customer_announces topo "203.0.113.128/25";
  ignore (Net.run ~until:(Net.now topo.Threerouter.net +. 10.0) topo.Threerouter.net);
  Alcotest.(check int) "every announcement observed" 2 (Daemon.observed daemon);
  let topo2 = daemon_testbed () in
  let daemon2 =
    Daemon.attach ~cfg:{ daemon_cfg with Daemon.seed_sample = -3 } topo2.Threerouter.provider
  in
  customer_announces topo2 "203.0.113.0/24";
  ignore (Net.run ~until:(Net.now topo2.Threerouter.net +. 10.0) topo2.Threerouter.net);
  Alcotest.(check int) "negative sample clamped too" 1 (Daemon.observed daemon2)

let test_daemon_no_seeds_no_episode () =
  let topo = daemon_testbed () in
  let daemon = Daemon.attach ~cfg:daemon_cfg topo.Threerouter.provider in
  (* nothing observed on the customer session -> no exploration *)
  ignore (Net.run ~until:(Net.now topo.Threerouter.net +. 100.0) topo.Threerouter.net);
  Alcotest.(check int) "no episodes" 0 (Daemon.explorations daemon)

let test_daemon_stop () =
  let topo = daemon_testbed () in
  let daemon = Daemon.attach ~cfg:daemon_cfg topo.Threerouter.provider in
  customer_announces topo "203.0.113.0/24";
  Daemon.stop daemon;
  ignore (Net.run ~until:(Net.now topo.Threerouter.net +. 100.0) topo.Threerouter.net);
  Alcotest.(check int) "stopped before any episode" 0 (Daemon.explorations daemon)

let test_daemon_live_router_untouched () =
  let topo = daemon_testbed () in
  let provider = Threerouter.provider_router topo in
  let daemon = Daemon.attach ~cfg:daemon_cfg topo.Threerouter.provider in
  customer_announces topo "203.0.113.0/24";
  ignore (Net.run ~until:(Net.now topo.Threerouter.net +. 65.0) topo.Threerouter.net);
  Alcotest.(check bool) "episodes ran" true (Daemon.explorations daemon >= 1);
  (* the provider still works: another customer announcement installs *)
  customer_announces topo "203.0.113.128/25";
  ignore (Net.run ~until:(Net.now topo.Threerouter.net +. 5.0) topo.Threerouter.net);
  Alcotest.(check bool) "live keeps routing" true
    (Router.best_route provider (p "203.0.113.128/25") <> None)

let suite =
  [ ("bogon fires", `Quick, test_bogon_fires);
    ("bogon clean for public space", `Quick, test_bogon_clean_for_public);
    ("bogon overlap counts", `Quick, test_bogon_overlap_counts);
    ("bogon ignores rejected", `Quick, test_bogon_rejected_outcome_ignored);
    ("path sanity", `Quick, test_path_sanity);
    ("path sanity custom bound", `Quick, test_path_sanity_custom_bound);
    ("prefix length", `Quick, test_prefix_length);
    ("next hop sanity", `Quick, test_next_hop_sanity);
    ("standard set", `Quick, test_standard_set);
    ("validate: good fix is safe", `Slow, test_validate_good_fix_safe);
    ("validate: no-op is ineffective", `Slow, test_validate_noop_ineffective);
    ("validate: over-blocking is harmful", `Slow, test_validate_overblocking_harmful);
    ("validate: live untouched", `Slow, test_validate_live_untouched);
    ("validate: peer change rejected", `Quick, test_validate_peer_change_rejected);
    ("daemon detects automatically", `Slow, test_daemon_detects_automatically);
    ("daemon: no seeds, no episode", `Quick, test_daemon_no_seeds_no_episode);
    ("daemon: zero/negative seed_sample observes everything", `Quick,
      test_daemon_zero_seed_sample_observes_everything);
    ("daemon stop", `Quick, test_daemon_stop);
    ("daemon: live router untouched", `Slow, test_daemon_live_router_untouched)
  ]
