(* Tests for cross-network exploration (Distributed): remote agents,
   narrow-interface verdicts, per-prefix attribution, parallel probe
   fan-out, the verdict cache, and the system-wide checker. *)
open Dice_inet
open Dice_bgp
open Dice_core

(* Figure-2 addressing, resolved through the topology spec *)
let tr_f2_spec = Dice_topology.Threerouter.spec Dice_topology.Threerouter.Correct
let tr_customer_addr = Dice_topology.Topology.Spec.address tr_f2_spec ~of_:"customer" ~toward:"provider"
let tr_internet_addr = Dice_topology.Topology.Spec.address tr_f2_spec ~of_:"internet" ~toward:"provider"


let p = Prefix.of_string
let provider_side = Ipv4.of_string "10.0.2.1"
let collector = Ipv4.of_string "10.0.3.2"

let establish router peer remote_as =
  ignore (Router.handle_event router ~peer Fsm.Manual_start);
  ignore (Router.handle_event router ~peer Fsm.Tcp_connected);
  ignore
    (Router.handle_msg router ~peer
       (Msg.Open
          { Msg.version = 4; my_as = remote_as land 0xFFFF; hold_time = 90; bgp_id = peer;
            capabilities = [ Msg.Cap_as4 remote_as ] }));
  ignore (Router.handle_msg router ~peer Msg.Keepalive)

(* An upstream with a private table: routes for 198.51.0.0/16 and
   8.8.8.0/24 learned from its collector, nothing exported to the
   provider. *)
let upstream () =
  let r =
    Router.create
      (Config_parser.parse
         {|
         router id 10.0.2.2;
         local as 64700;
         protocol bgp provider { neighbor 10.0.2.1 as 64510; import all; export none; }
         protocol bgp collector { neighbor 10.0.3.2 as 64701; import all; export all; }
         anycast [ 192.88.99.0/24 ];
         |})
  in
  establish r provider_side 64510;
  establish r collector 64701;
  List.iter
    (fun (prefix, origin) ->
      let route =
        Route.make ~origin:Attr.Igp
          ~as_path:[ Asn.Path.Seq [ 64701; origin ] ]
          ~next_hop:collector ()
      in
      ignore
        (Router.handle_msg r ~peer:collector
           (Msg.Update { withdrawn = []; attrs = Route.to_attrs route; nlri = [ p prefix ] })))
    [ ("198.51.0.0/16", 64999); ("8.8.8.0/24", 64888); ("192.88.99.0/24", 64777) ];
  r

let mk_agent ?(name = "up") router =
  Distributed.agent ~name ~addr:(Ipv4.of_string "10.0.2.2")
    ~explorer_addr:provider_side (Distributed.Local (Speakers.bird router))

let announcement ?(origin_asn = 64510) prefixes =
  Msg.Update
    {
      withdrawn = [];
      attrs =
        Route.to_attrs
          (Route.make ~origin:Attr.Igp
             ~as_path:[ Asn.Path.Seq [ 64510; origin_asn ] ]
             ~next_hop:provider_side ());
      nlri = List.map p prefixes;
    }

let probe_verdicts agent msg =
  Distributed.verdicts (Distributed.probe agent ~from:provider_side msg)

let test_probe_conflict () =
  let up = upstream () in
  let agent = mk_agent up in
  match probe_verdicts agent (announcement [ "198.51.100.0/24" ]) with
  | [ (q, v) ] ->
    Alcotest.(check string) "verdict names its prefix" "198.51.100.0/24" (Prefix.to_string q);
    Alcotest.(check bool) "accepted" true v.Distributed.accepted;
    Alcotest.(check bool) "conflicts with the private /16" true v.Distributed.origin_conflict;
    Alcotest.(check bool) "would propagate to the collector" true
      (v.Distributed.would_propagate >= 1)
  | vs -> Alcotest.failf "expected one verdict, got %d" (List.length vs)

let test_probe_coverage_leak () =
  let up = upstream () in
  let agent = mk_agent up in
  (* a /8 super-block covering the remote's 198.51.0.0/16 (origin 64999) *)
  match probe_verdicts agent (announcement [ "198.0.0.0/8" ]) with
  | [ (_, v) ] ->
    Alcotest.(check bool) "no covering conflict" false v.Distributed.origin_conflict;
    Alcotest.(check bool) "covers the /16" true (v.Distributed.covers_foreign >= 1)
  | _ -> Alcotest.fail "expected one verdict"

let test_probe_no_conflict_unheld_space () =
  let up = upstream () in
  let agent = mk_agent up in
  match probe_verdicts agent (announcement [ "100.0.0.0/16" ]) with
  | [ (_, v) ] ->
    Alcotest.(check bool) "accepted" true v.Distributed.accepted;
    Alcotest.(check bool) "no conflict" false v.Distributed.origin_conflict;
    Alcotest.(check int) "covers nothing" 0 v.Distributed.covers_foreign
  | _ -> Alcotest.fail "expected one verdict"

let test_probe_same_origin_no_conflict () =
  let up = upstream () in
  let agent = mk_agent up in
  match probe_verdicts agent (announcement ~origin_asn:64888 [ "8.8.8.0/24" ]) with
  | [ (_, v) ] -> Alcotest.(check bool) "same origin" false v.Distributed.origin_conflict
  | _ -> Alcotest.fail "expected one verdict"

let test_probe_anycast_whitelisted () =
  let up = upstream () in
  let agent = mk_agent up in
  match probe_verdicts agent (announcement [ "192.88.99.0/24" ]) with
  | [ (_, v) ] ->
    Alcotest.(check bool) "whitelisted by the remote" false v.Distributed.origin_conflict
  | _ -> Alcotest.fail "expected one verdict"

(* A multi-prefix exploratory UPDATE: each verdict must be attributed to
   the NLRI prefix it concerns (the pre-fix dropped the pairing and the
   checker blamed the local seed prefix for everything). *)
let test_probe_multi_prefix_attribution () =
  let up = upstream () in
  let agent = mk_agent up in
  match probe_verdicts agent (announcement [ "198.51.100.0/24"; "100.0.0.0/16" ]) with
  | [ (q1, v1); (q2, v2) ] ->
    Alcotest.(check string) "first verdict for first NLRI prefix" "198.51.100.0/24"
      (Prefix.to_string q1);
    Alcotest.(check string) "second verdict for second NLRI prefix" "100.0.0.0/16"
      (Prefix.to_string q2);
    Alcotest.(check bool) "conflict on the covered prefix" true v1.Distributed.origin_conflict;
    Alcotest.(check bool) "no conflict on unheld space" false v2.Distributed.origin_conflict
  | vs -> Alcotest.failf "expected two verdicts, got %d" (List.length vs)

let test_probe_never_mutates_live () =
  let up = upstream () in
  let agent = mk_agent up in
  let before = Router.snapshot up in
  ignore (probe_verdicts agent (announcement [ "198.51.100.0/24" ]));
  ignore (probe_verdicts agent (announcement [ "1.2.3.0/24" ]));
  Alcotest.(check bytes) "remote live state untouched" before (Router.snapshot up)

let test_probe_non_update () =
  let up = upstream () in
  let agent = mk_agent up in
  (match Distributed.probe agent ~from:provider_side Msg.Keepalive with
  | Distributed.Declined _ -> ()
  | Distributed.Verdicts _ | Distributed.Timeout ->
    Alcotest.fail "keepalive must be declined");
  let s = Distributed.stats agent in
  Alcotest.(check int) "decline counted" 1 s.Distributed.declines;
  Alcotest.(check int) "no clone probed" 0 s.Distributed.checkpoints

let test_checkpoint_caching () =
  let up = upstream () in
  let agent = mk_agent up in
  ignore (probe_verdicts agent (announcement [ "1.1.1.0/24" ]));
  ignore (probe_verdicts agent (announcement [ "2.2.2.0/24" ]));
  Alcotest.(check int) "one checkpoint for two probes" 1
    (Distributed.stats agent).Distributed.checkpoints;
  (* remote live router moves on -> re-checkpoint *)
  let route =
    Route.make ~origin:Attr.Igp ~as_path:[ Asn.Path.Seq [ 64701 ] ] ~next_hop:collector ()
  in
  ignore
    (Router.handle_msg up ~peer:collector
       (Msg.Update { withdrawn = []; attrs = Route.to_attrs route; nlri = [ p "3.3.3.0/24" ] }));
  ignore (probe_verdicts agent (announcement [ "4.4.4.0/24" ]));
  Alcotest.(check int) "fresh checkpoint after remote progress" 2
    (Distributed.stats agent).Distributed.checkpoints

(* ---- the verdict cache ---- *)

let test_vcache_repeated_probe_hits () =
  let up = upstream () in
  let agent = mk_agent up in
  let msg = announcement [ "198.51.100.0/24" ] in
  let first = Distributed.probe agent ~from:provider_side msg in
  Alcotest.(check int) "cold probe misses" 0 (Distributed.stats agent).Distributed.vcache_hits;
  let second = Distributed.probe agent ~from:provider_side msg in
  Alcotest.(check int) "repeat answered from the cache" 1
    (Distributed.stats agent).Distributed.vcache_hits;
  Alcotest.(check bool) "cached verdicts identical" true (first = second);
  Alcotest.(check int) "both counted as probes" 2 (Distributed.stats agent).Distributed.probes;
  (* a different claimed session is a different probe *)
  ignore (Distributed.probe agent ~from:collector msg);
  Alcotest.(check int) "different session, no hit" 1
    (Distributed.stats agent).Distributed.vcache_hits

let test_vcache_invalidated_by_remote_progress () =
  let up = upstream () in
  let agent = mk_agent up in
  let msg = announcement [ "198.51.100.0/24" ] in
  ignore (Distributed.probe agent ~from:provider_side msg);
  (* the remote live router processes a new update: cached verdicts are
     stale, the next probe must recompute *)
  let route =
    Route.make ~origin:Attr.Igp ~as_path:[ Asn.Path.Seq [ 64701; 64555 ] ]
      ~next_hop:collector ()
  in
  ignore
    (Router.handle_msg up ~peer:collector
       (Msg.Update
          { withdrawn = []; attrs = Route.to_attrs route; nlri = [ p "198.51.100.0/25" ] }));
  match probe_verdicts agent msg with
  | [ (_, v) ] ->
    Alcotest.(check int) "stale verdict not served" 0
      (Distributed.stats agent).Distributed.vcache_hits;
    (* the recomputed verdict sees the remote's new covering state *)
    Alcotest.(check bool) "recomputed against fresh state" true v.Distributed.origin_conflict
  | _ -> Alcotest.fail "expected one verdict"

(* ---- parallel fan-out ---- *)

let flatten_verdicts results =
  List.concat_map
    (fun outcome ->
      List.map
        (fun (q, (v : Distributed.verdict)) ->
          ( Prefix.to_string q,
            Printf.sprintf "%b|%b|%b|%d|%d" v.Distributed.accepted v.Distributed.installed
              v.Distributed.origin_conflict v.Distributed.covers_foreign
              v.Distributed.would_propagate ))
        (Distributed.verdicts outcome))
    results

let probe_workload () =
  (* two agents over distinct upstreams, repeated messages included so the
     vcache sees hits under contention *)
  let a1 = mk_agent ~name:"up1" (upstream ()) in
  let a2 = mk_agent ~name:"up2" (upstream ()) in
  let msgs =
    [ announcement [ "198.51.100.0/24" ];
      announcement [ "198.0.0.0/8" ];
      announcement [ "100.0.0.0/16" ];
      announcement [ "198.51.100.0/24"; "100.0.0.0/16" ];
      announcement [ "198.51.100.0/24" ];  (* repeat: vcache hit *)
      announcement ~origin_asn:64888 [ "8.8.8.0/24" ];
    ]
  in
  ( (a1, a2),
    List.concat_map (fun a -> List.map (fun m -> (a, provider_side, m)) msgs) [ a1; a2 ] )

let test_probe_all_parallel_matches_sequential () =
  let _, seq_reqs = probe_workload () in
  let (a1, a2), par_reqs = probe_workload () in
  let seq = Distributed.probe_all ~jobs:1 seq_reqs in
  let par = Distributed.probe_all ~jobs:4 par_reqs in
  Alcotest.(check (list (pair string string)))
    "parallel verdicts equal sequential, in request order"
    (flatten_verdicts seq) (flatten_verdicts par);
  Alcotest.(check int) "every request probed (a1)" 6 (Distributed.stats a1).Distributed.probes;
  Alcotest.(check int) "every request probed (a2)" 6 (Distributed.stats a2).Distributed.probes;
  Alcotest.(check bool) "repeated messages hit the vcache under contention" true
    ((Distributed.stats a1).Distributed.vcache_hits
     + (Distributed.stats a2).Distributed.vcache_hits
    > 0)

(* ---- the checker, directly on crafted outcomes ---- *)

let direct_ctx up =
  { Checker.pre_loc_rib = Router.loc_rib up;
    anycast = [];
    peer = Ipv4.of_string "10.0.1.2";
    peer_as = 64501;
  }

let outcome_sending ?(accepted = true) ~local_prefix msgs : Speaker.import_outcome =
  {
    Speaker.prefix = p local_prefix;
    accepted;
    installed = accepted;
    route = None;
    previous_best = None;
    outputs = msgs;
  }

let detail f k = List.assoc k f.Checker.details

let test_checker_direct_multi_prefix_attribution () =
  let up = upstream () in
  let agent = mk_agent up in
  let chk = Distributed.checker ~jobs:1 ~agents:[ agent ] in
  let outcome =
    outcome_sending ~local_prefix:"203.0.113.0/24"
      [ (Distributed.agent_addr agent, announcement [ "198.51.100.0/24"; "100.0.0.0/16" ]) ]
  in
  let faults = chk.Checker.check (direct_ctx up) outcome in
  let conflicts =
    List.filter (fun f -> f.Checker.checker = "remote-origin-conflict") faults
  in
  (match conflicts with
  | [ f ] ->
    Alcotest.(check string) "finding attributed to the conflicting remote prefix"
      "198.51.100.0/24"
      (Prefix.to_string f.Checker.prefix);
    Alcotest.(check string) "remote-prefix detail" "198.51.100.0/24" (detail f "remote-prefix");
    Alcotest.(check string) "local seed prefix kept in details" "203.0.113.0/24"
      (detail f "local-prefix")
  | l -> Alcotest.failf "expected exactly one remote conflict, got %d" (List.length l));
  (* the clean prefix must not inherit the conflicting one's verdict *)
  Alcotest.(check bool) "no finding blames the clean prefix" true
    (List.for_all
       (fun f -> not (Prefix.equal f.Checker.prefix (p "100.0.0.0/16")) || f.Checker.severity = Checker.Warning)
       faults)

let test_checker_direct_whitelist_suppression () =
  let up = upstream () in
  let agent = mk_agent up in
  let chk = Distributed.checker ~jobs:1 ~agents:[ agent ] in
  let outcome =
    outcome_sending ~local_prefix:"203.0.113.0/24"
      [ (Distributed.agent_addr agent, announcement [ "192.88.99.0/24" ]) ]
  in
  let faults = chk.Checker.check (direct_ctx up) outcome in
  Alcotest.(check int) "remote anycast whitelist suppresses criticals" 0
    (List.length (List.filter (fun f -> f.Checker.severity = Checker.Critical) faults))

let test_checker_direct_warning_only_propagation () =
  let up = upstream () in
  let agent = mk_agent up in
  let chk = Distributed.checker ~jobs:1 ~agents:[ agent ] in
  (* unheld space: accepted, no conflict, no coverage — but the upstream
     re-exports to its collector, so the leak would cross a second
     domain boundary *)
  let outcome =
    outcome_sending ~local_prefix:"203.0.113.0/24"
      [ (Distributed.agent_addr agent, announcement [ "100.0.0.0/16" ]) ]
  in
  match chk.Checker.check (direct_ctx up) outcome with
  | [ f ] ->
    Alcotest.(check string) "warning-only path" "remote-propagation" f.Checker.checker;
    Alcotest.(check bool) "severity warning" true (f.Checker.severity = Checker.Warning);
    Alcotest.(check string) "attributed to the probed prefix" "100.0.0.0/16"
      (Prefix.to_string f.Checker.prefix)
  | l -> Alcotest.failf "expected exactly the propagation warning, got %d findings" (List.length l)

let test_checker_direct_rejected_outcome_skipped () =
  let up = upstream () in
  let agent = mk_agent up in
  let chk = Distributed.checker ~jobs:1 ~agents:[ agent ] in
  let outcome =
    outcome_sending ~accepted:false ~local_prefix:"203.0.113.0/24"
      [ (Distributed.agent_addr agent, announcement [ "198.51.100.0/24" ]) ]
  in
  Alcotest.(check int) "rejected outcomes probe nothing" 0
    (List.length (chk.Checker.check (direct_ctx up) outcome));
  Alcotest.(check int) "no probe crossed the boundary" 0
    (Distributed.stats agent).Distributed.probes

let fault_keys faults =
  List.sort compare (List.map Checker.fault_key faults)

let test_checker_parallel_matches_sequential () =
  (* same crafted outcome through ~jobs:1 and ~jobs:4 over two agents:
     identical finding sets, same per-prefix attribution *)
  let mk () =
    let a1 = mk_agent ~name:"up1" (upstream ()) in
    let a2 = mk_agent ~name:"up2" (upstream ()) in
    (a1, a2)
  in
  let outcome a1 a2 =
    outcome_sending ~local_prefix:"203.0.113.0/24"
      [ (Distributed.agent_addr a1, announcement [ "198.51.100.0/24"; "100.0.0.0/16" ]);
        (Distributed.agent_addr a2, announcement [ "198.0.0.0/8" ]) ]
  in
  let s1, s2 = mk () in
  let seq =
    (Distributed.checker ~jobs:1 ~agents:[ s1; s2 ]).Checker.check (direct_ctx (upstream ()))
      (outcome s1 s2)
  in
  let p1, p2 = mk () in
  let par =
    (Distributed.checker ~jobs:4 ~agents:[ p1; p2 ]).Checker.check (direct_ctx (upstream ()))
      (outcome p1 p2)
  in
  Alcotest.(check (list string)) "same fault keys" (fault_keys seq) (fault_keys par);
  Alcotest.(check (list (list (pair string string)))) "same details, same order"
    (List.map (fun f -> f.Checker.details) seq)
    (List.map (fun f -> f.Checker.details) par);
  Alcotest.(check bool) "found the multi-prefix conflict" true
    (List.exists
       (fun f ->
         f.Checker.checker = "remote-origin-conflict"
         && Prefix.equal f.Checker.prefix (p "198.51.100.0/24"))
       seq)

(* ---- the checker, end to end on the provider ---- *)

let provider_with_customer () =
  let r =
    Router.create
      (Dice_topology.Threerouter.provider_config
         Dice_topology.Threerouter.Partially_correct)
  in
  establish r tr_customer_addr 64501;
  establish r tr_internet_addr 64700;
  let customer_route =
    Route.make ~origin:Attr.Igp
      ~as_path:[ Asn.Path.Seq [ Dice_topology.Threerouter.customer_as ] ]
      ~next_hop:tr_customer_addr ()
  in
  List.iter
    (fun prefix ->
      ignore
        (Router.handle_msg r ~peer:tr_customer_addr
           (Msg.Update
              { Msg.withdrawn = []; attrs = Route.to_attrs customer_route; nlri = [ prefix ] })))
    Dice_topology.Threerouter.customer_prefixes;
  (r, customer_route)

let test_checker_finds_remote_conflicts () =
  let up = upstream () in
  let agent =
    Distributed.agent ~name:"up" ~addr:tr_internet_addr
      ~explorer_addr:provider_side (Distributed.Local (Speakers.bird up))
  in
  let provider, customer_route = provider_with_customer () in
  let cfg =
    { Orchestrator.default_cfg with
      Orchestrator.checkers = [ Hijack.checker ];
      federation = Orchestrator.federation ~agents:[ agent ] ~probe_jobs:1;
      exploration =
        { Orchestrator.default_exploration with
          Orchestrator.explorer =
            { Dice_concolic.Explorer.default_config with
              Dice_concolic.Explorer.max_runs = 256;
              max_depth = 96;
            };
        };
    }
  in
  let dice = Orchestrator.create ~cfg (Speakers.bird provider) in
  Orchestrator.observe dice ~peer:tr_customer_addr
    ~prefix:(p "203.0.113.0/24") ~route:customer_route;
  let report = Orchestrator.explore dice in
  let remote =
    List.filter
      (fun (f : Checker.fault) -> f.Checker.checker = "remote-origin-conflict")
      report.Orchestrator.faults
  in
  let local =
    List.filter
      (fun (f : Checker.fault) -> f.Checker.checker = "origin-hijack")
      report.Orchestrator.faults
  in
  (* the conflicting state lives only at the remote: local checking is
     blind, the narrow interface is not *)
  Alcotest.(check int) "no local origin conflicts possible" 0 (List.length local);
  Alcotest.(check bool) "remote conflicts found" true (List.length remote > 0);
  Alcotest.(check bool) "probes happened" true
    ((Distributed.stats agent).Distributed.probes > 0);
  (* every remote finding names the remote prefix it concerns *)
  Alcotest.(check bool) "remote-prefix detail present" true
    (List.for_all
       (fun (f : Checker.fault) -> List.mem_assoc "remote-prefix" f.Checker.details)
       remote);
  (* live routers untouched *)
  Alcotest.(check bool) "remote live untouched" true
    ((Distributed.stats agent).Distributed.checkpoints >= 1)

let test_checker_ignores_unknown_destinations () =
  let up = upstream () in
  let agent =
    Distributed.agent ~name:"up" ~addr:(Ipv4.of_string "9.9.9.9")
      ~explorer_addr:provider_side (Distributed.Local (Speakers.bird up))
  in
  let provider, customer_route = provider_with_customer () in
  let cfg =
    { Orchestrator.default_cfg with
      Orchestrator.checkers = [];
      Orchestrator.federation = Orchestrator.federation ~agents:[ agent ] ~probe_jobs:1;
    }
  in
  let dice = Orchestrator.create ~cfg (Speakers.bird provider) in
  Orchestrator.observe dice ~peer:tr_customer_addr
    ~prefix:(p "203.0.113.0/24") ~route:customer_route;
  ignore (Orchestrator.explore dice);
  Alcotest.(check int) "no probe reaches a mismatched address" 0
    (Distributed.stats agent).Distributed.probes

let suite =
  [ ("probe: conflict with private RIB", `Quick, test_probe_conflict);
    ("probe: coverage leak through a super-block", `Quick, test_probe_coverage_leak);
    ("probe: unheld space accepted, no conflict", `Quick, test_probe_no_conflict_unheld_space);
    ("probe: same origin clean", `Quick, test_probe_same_origin_no_conflict);
    ("probe: remote anycast whitelist", `Quick, test_probe_anycast_whitelisted);
    ("probe: multi-prefix verdicts keep their pairing", `Quick,
      test_probe_multi_prefix_attribution);
    ("probe: never mutates the remote live router", `Quick, test_probe_never_mutates_live);
    ("probe: non-update declined", `Quick, test_probe_non_update);
    ("checkpoint caching", `Quick, test_checkpoint_caching);
    ("vcache: repeated probe answered from cache", `Quick, test_vcache_repeated_probe_hits);
    ("vcache: invalidated when the remote moves on", `Quick,
      test_vcache_invalidated_by_remote_progress);
    ("probe_all: parallel matches sequential", `Quick,
      test_probe_all_parallel_matches_sequential);
    ("checker: multi-prefix attribution (direct)", `Quick,
      test_checker_direct_multi_prefix_attribution);
    ("checker: remote whitelist suppression (direct)", `Quick,
      test_checker_direct_whitelist_suppression);
    ("checker: warning-only propagation path (direct)", `Quick,
      test_checker_direct_warning_only_propagation);
    ("checker: rejected outcomes skipped (direct)", `Quick,
      test_checker_direct_rejected_outcome_skipped);
    ("checker: parallel matches sequential", `Quick, test_checker_parallel_matches_sequential);
    ("checker finds remote-only conflicts", `Slow, test_checker_finds_remote_conflicts);
    ("checker ignores unknown destinations", `Quick, test_checker_ignores_unknown_destinations)
  ]
