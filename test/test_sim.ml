(* Tests for the discrete-event simulator: event queue, network,
   isolation sandboxes. *)
module Eventq = Dice_sim.Eventq
module Net = Dice_sim.Network
module Isolation = Dice_sim.Isolation

(* ---- Eventq ---- *)

let test_eventq_order () =
  let q = Eventq.create () in
  Eventq.push q ~time:3.0 "c";
  Eventq.push q ~time:1.0 "a";
  Eventq.push q ~time:2.0 "b";
  let pop () =
    match Eventq.pop q with
    | Some (_, x) -> x
    | None -> "?"
  in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] [ first; second; third ];
  Alcotest.(check bool) "empty" true (Eventq.pop q = None)

let test_eventq_fifo_ties () =
  let q = Eventq.create () in
  List.iter (fun s -> Eventq.push q ~time:1.0 s) [ "first"; "second"; "third" ];
  let pop () =
    match Eventq.pop q with
    | Some (_, x) -> x
    | None -> "?"
  in
  let x1 = pop () in
  let x2 = pop () in
  let x3 = pop () in
  Alcotest.(check (list string)) "insertion order" [ "first"; "second"; "third" ] [ x1; x2; x3 ]

let test_eventq_interleaved () =
  let q = Eventq.create () in
  for i = 99 downto 0 do
    Eventq.push q ~time:(float_of_int i) i
  done;
  let out = ref [] in
  let rec drain () =
    match Eventq.pop q with
    | Some (_, x) ->
      out := x :: !out;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" (List.init 100 Fun.id) (List.rev !out)

let test_eventq_size_clear () =
  let q = Eventq.create () in
  Eventq.push q ~time:1.0 ();
  Eventq.push q ~time:2.0 ();
  Alcotest.(check int) "size" 2 (Eventq.size q);
  Alcotest.(check (option (float 0.0))) "peek" (Some 1.0) (Eventq.peek_time q);
  Eventq.clear q;
  Alcotest.(check bool) "cleared" true (Eventq.is_empty q)

(* ---- Network ---- *)

let two_nodes () =
  let net = Net.create () in
  let received = ref [] in
  let handler _ ~self ~from msg = received := (self, from, Bytes.to_string msg) :: !received in
  let a = Net.add_node net ~name:"a" ~handler in
  let b = Net.add_node net ~name:"b" ~handler in
  Net.connect net a b ~latency:0.5;
  (net, a, b, received)

let test_network_delivery () =
  let net, a, b, received = two_nodes () in
  Net.send net ~src:a ~dst:b (Bytes.of_string "hi");
  ignore (Net.run net);
  Alcotest.(check (list (triple int int string))) "delivered" [ (b, a, "hi") ] !received;
  Alcotest.(check (float 1e-9)) "clock advanced by latency" 0.5 (Net.now net);
  Alcotest.(check int) "sent" 1 (Net.messages_sent net);
  Alcotest.(check int) "delivered count" 1 (Net.messages_delivered net)

let test_network_unconnected_send_rejected () =
  let net = Net.create () in
  let a = Net.add_node net ~name:"a" ~handler:(fun _ ~self:_ ~from:_ _ -> ()) in
  let b = Net.add_node net ~name:"b" ~handler:(fun _ ~self:_ ~from:_ _ -> ()) in
  Alcotest.check_raises "not connected"
    (Invalid_argument "Network.send: a and b are not connected") (fun () ->
      Net.send net ~src:a ~dst:b Bytes.empty)

let test_network_disconnect () =
  let net, a, b, _ = two_nodes () in
  Alcotest.(check bool) "connected" true (Net.connected net a b);
  Net.disconnect net a b;
  Alcotest.(check bool) "disconnected" false (Net.connected net a b)

let test_network_neighbors () =
  let net = Net.create () in
  let h _ ~self:_ ~from:_ _ = () in
  let a = Net.add_node net ~name:"a" ~handler:h in
  let b = Net.add_node net ~name:"b" ~handler:h in
  let c = Net.add_node net ~name:"c" ~handler:h in
  Net.connect net a b ~latency:0.1;
  Net.connect net a c ~latency:0.1;
  Alcotest.(check (list int)) "neighbors of a" [ b; c ] (Net.neighbors net a);
  Alcotest.(check (list int)) "neighbors of b" [ a ] (Net.neighbors net b)

let test_network_schedule_order () =
  let net = Net.create () in
  let log = ref [] in
  Net.schedule net ~delay:2.0 (fun () -> log := "late" :: !log);
  Net.schedule net ~delay:1.0 (fun () -> log := "early" :: !log);
  ignore (Net.run net);
  Alcotest.(check (list string)) "order" [ "late"; "early" ] !log

let test_network_run_until () =
  let net = Net.create () in
  let fired = ref 0 in
  Net.schedule net ~delay:1.0 (fun () -> incr fired);
  Net.schedule net ~delay:10.0 (fun () -> incr fired);
  ignore (Net.run ~until:5.0 net);
  Alcotest.(check int) "only the early one" 1 !fired;
  Alcotest.(check (float 0.0)) "clock at horizon" 5.0 (Net.now net);
  ignore (Net.run net);
  Alcotest.(check int) "rest fires later" 2 !fired

let test_network_max_events () =
  let net = Net.create () in
  let fired = ref 0 in
  for i = 1 to 10 do
    Net.schedule net ~delay:(float_of_int i) (fun () -> incr fired)
  done;
  let n = Net.run ~max_events:3 net in
  Alcotest.(check int) "three processed" 3 n;
  Alcotest.(check int) "fired three" 3 !fired;
  Alcotest.(check int) "pending rest" 7 (Net.pending net)

let test_network_schedule_past_rejected () =
  let net = Net.create () in
  Net.schedule net ~delay:1.0 (fun () -> ());
  ignore (Net.run net);
  Alcotest.check_raises "past" (Invalid_argument "Network.schedule_at: time in the past")
    (fun () -> Net.schedule_at net ~time:0.5 (fun () -> ()))

let test_network_node_names () =
  let net = Net.create () in
  let a = Net.add_node net ~name:"alpha" ~handler:(fun _ ~self:_ ~from:_ _ -> ()) in
  Alcotest.(check string) "name" "alpha" (Net.node_name net a);
  Alcotest.(check int) "count" 1 (Net.node_count net)

let test_network_latency_ordering () =
  (* a message on a slow link must arrive after a later message on a fast
     link *)
  let net = Net.create () in
  let log = ref [] in
  let h tag _ ~self:_ ~from:_ _ = log := tag :: !log in
  let hub = Net.add_node net ~name:"hub" ~handler:(fun _ ~self:_ ~from:_ _ -> ()) in
  let slow = Net.add_node net ~name:"slow" ~handler:(h "slow") in
  let fast = Net.add_node net ~name:"fast" ~handler:(h "fast") in
  Net.connect net hub slow ~latency:2.0;
  Net.connect net hub fast ~latency:0.1;
  Net.send net ~src:hub ~dst:slow Bytes.empty;
  Net.send net ~src:hub ~dst:fast Bytes.empty;
  ignore (Net.run net);
  Alcotest.(check (list string)) "fast first" [ "slow"; "fast" ] !log

(* ---- fault injection ---- *)

module Faults = Dice_sim.Faults

let test_faults_validation () =
  Alcotest.(check bool) "none is none" true (Faults.is_none Faults.none);
  List.iter
    (fun f ->
      match f () with
      | exception Invalid_argument _ -> ()
      | (_ : Faults.t) -> Alcotest.fail "invalid fault model accepted")
    [ (fun () -> Faults.make ~drop:1.5 ());
      (fun () -> Faults.make ~drop:(-0.1) ());
      (fun () -> Faults.make ~duplicate:Float.nan ());
      (fun () -> Faults.make ~corrupt:2.0 ());
      (fun () -> Faults.make ~reorder:(-1) ());
      (fun () -> Faults.make ~jitter:(-1.0) ());
      (fun () -> Faults.make ~jitter:Float.infinity ()) ]

let test_connect_rejects_nan_latency () =
  let net, a, b, _ = two_nodes () in
  List.iter
    (fun l ->
      match Net.connect net a b ~latency:l with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.failf "latency %f accepted" l)
    [ Float.nan; -1.0; Float.infinity ];
  List.iter
    (fun d ->
      match Net.schedule net ~delay:d (fun () -> ()) with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.failf "delay %f accepted" d)
    [ Float.nan; -0.5; Float.infinity ];
  match Net.schedule_at net ~time:Float.nan (fun () -> ()) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "NaN time accepted"

let test_faults_drop_all () =
  let net, a, b, received = two_nodes () in
  Net.set_faults net a b (Faults.make ~drop:1.0 ());
  for _ = 1 to 10 do
    Net.send net ~src:a ~dst:b (Bytes.of_string "x")
  done;
  ignore (Net.run net);
  Alcotest.(check (list (triple int int string))) "nothing delivered" [] !received;
  Alcotest.(check int) "all counted dropped" 10 (Net.messages_dropped net);
  Alcotest.(check int) "sent still counts the sends" 10 (Net.messages_sent net);
  Alcotest.(check int) "delivered none" 0 (Net.messages_delivered net);
  (* clearing restores reliable delivery *)
  Net.clear_faults net a b;
  Net.send net ~src:a ~dst:b (Bytes.of_string "y");
  ignore (Net.run net);
  Alcotest.(check int) "reliable again" 1 (List.length !received)

let test_faults_duplicate_all () =
  let net, a, b, received = two_nodes () in
  Net.set_faults net a b (Faults.make ~duplicate:1.0 ());
  for _ = 1 to 5 do
    Net.send net ~src:a ~dst:b (Bytes.of_string "d")
  done;
  ignore (Net.run net);
  Alcotest.(check int) "every frame delivered twice" 10 (List.length !received);
  Alcotest.(check int) "duplicates counted" 5 (Net.messages_duplicated net);
  Alcotest.(check int) "sent counts send calls only" 5 (Net.messages_sent net)

let test_faults_corrupt_flips_one_bit () =
  let net, a, b, received = two_nodes () in
  Net.set_faults net a b (Faults.make ~corrupt:1.0 ());
  let payload = "payload-payload" in
  Net.send net ~src:a ~dst:b (Bytes.of_string payload);
  ignore (Net.run net);
  (match !received with
  | [ (_, _, got) ] ->
    Alcotest.(check int) "same length" (String.length payload) (String.length got);
    let diff_bits = ref 0 in
    String.iteri
      (fun i c ->
        let x = Char.code c lxor Char.code payload.[i] in
        for bit = 0 to 7 do
          if x land (1 lsl bit) <> 0 then incr diff_bits
        done)
      got;
    Alcotest.(check int) "exactly one bit flipped" 1 !diff_bits
  | l -> Alcotest.failf "expected one delivery, got %d" (List.length l));
  Alcotest.(check int) "corruption counted" 1 (Net.messages_corrupted net);
  (* the sender's buffer is never touched *)
  let original = Bytes.of_string "untouched" in
  Net.send net ~src:a ~dst:b original;
  ignore (Net.run net);
  Alcotest.(check string) "sender copy intact" "untouched" (Bytes.to_string original)

let test_faults_reorder_window () =
  let net = Net.create () in
  let received = ref [] in
  let a = Net.add_node net ~name:"a" ~handler:(fun _ ~self:_ ~from:_ _ -> ()) in
  let b =
    Net.add_node net ~name:"b" ~handler:(fun _ ~self:_ ~from:_ msg ->
        received := Bytes.to_string msg :: !received)
  in
  Net.connect net a b ~latency:0.01;
  Net.set_faults net a b (Faults.make ~reorder:4 ());
  let n = 50 in
  for i = 0 to n - 1 do
    Net.send net ~src:a ~dst:b (Bytes.of_string (string_of_int i))
  done;
  ignore (Net.run net);
  let got = List.rev !received in
  Alcotest.(check int) "every frame arrives exactly once" n (List.length got);
  Alcotest.(check (list string)) "delivery is a permutation of the sends"
    (List.sort compare (List.init n string_of_int))
    (List.sort compare got);
  Alcotest.(check bool) "the order actually changed" true
    (got <> List.init n string_of_int);
  Alcotest.(check bool) "reordered arrivals counted" true (Net.messages_reordered net > 0)

let test_faults_seed_replay () =
  let counters seed =
    let net = Net.create () in
    let a = Net.add_node net ~name:"a" ~handler:(fun _ ~self:_ ~from:_ _ -> ()) in
    let b = Net.add_node net ~name:"b" ~handler:(fun _ ~self:_ ~from:_ _ -> ()) in
    Net.connect net a b ~latency:0.01;
    Net.set_fault_seed net seed;
    Net.set_faults net a b
      (Faults.make ~drop:0.3 ~duplicate:0.2 ~reorder:3 ~jitter:0.002 ~corrupt:0.1 ());
    for i = 0 to 199 do
      Net.send net ~src:a ~dst:b (Bytes.make 20 (Char.chr (i land 0xFF)))
    done;
    ignore (Net.run net);
    ( Net.messages_dropped net,
      Net.messages_duplicated net,
      Net.messages_reordered net,
      Net.messages_corrupted net,
      Net.messages_delivered net )
  in
  let r1 = counters 42L and r2 = counters 42L and r3 = counters 7L in
  Alcotest.(check bool) "same seed, identical fault schedule" true (r1 = r2);
  Alcotest.(check bool) "different seed, different schedule" true (r1 <> r3);
  let d, u, r, c, _ = r1 in
  Alcotest.(check bool) "all fault classes exercised" true (d > 0 && u > 0 && r > 0 && c > 0)

let test_pause_resume_queues_delivery () =
  let net, a, b, received = two_nodes () in
  Net.pause_node net b;
  Net.pause_node net b;  (* idempotent *)
  Alcotest.(check bool) "paused" true (Net.paused net b);
  List.iter (fun s -> Net.send net ~src:a ~dst:b (Bytes.of_string s)) [ "1"; "2"; "3" ];
  ignore (Net.run net);
  Alcotest.(check (list (triple int int string))) "nothing delivered while down" []
    !received;
  Alcotest.(check int) "frames buffered at the node" 3 (Net.queued net b);
  Alcotest.(check int) "not counted delivered" 0 (Net.messages_delivered net);
  (* a crashed node cannot transmit *)
  (match Net.send net ~src:b ~dst:a Bytes.empty with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "send from a paused node must raise");
  Net.resume_node net b;
  Alcotest.(check bool) "running again" false (Net.paused net b);
  Alcotest.(check int) "buffer drained into the event queue" 0 (Net.queued net b);
  ignore (Net.run net);
  Alcotest.(check (list string)) "queued frames delivered in arrival order"
    [ "1"; "2"; "3" ]
    (List.rev_map (fun (_, _, m) -> m) !received);
  Net.resume_node net b  (* idempotent *)

(* ---- node crash model ---- *)

(* The pause/resume buffer preserves arrival order across a restart:
   frames from links with different latencies arrive at a paused node
   out of send order, and resume re-enqueues them at one instant — only
   the event queue's FIFO tie-break keeps them from shuffling. *)
let test_resume_requeue_ordering () =
  let net = Net.create () in
  let received = ref [] in
  let handler _ ~self:_ ~from:_ msg = received := Bytes.to_string msg :: !received in
  let a = Net.add_node net ~name:"a" ~handler in
  let b = Net.add_node net ~name:"b" ~handler in
  let c = Net.add_node net ~name:"c" ~handler in
  Net.connect net a b ~latency:0.05;
  Net.connect net c b ~latency:0.01;
  Net.send net ~src:a ~dst:b (Bytes.of_string "slow");
  Net.schedule net ~delay:0.02 (fun () -> Net.pause_node net b);
  Net.schedule net ~delay:0.03 (fun () ->
      Net.send net ~src:c ~dst:b (Bytes.of_string "fast"));
  (* both frames arrive while b is down: fast at 0.04, slow at 0.05 *)
  Net.schedule net ~delay:0.1 (fun () -> Net.resume_node net b);
  ignore (Net.run net);
  Alcotest.(check (list string)) "arrival order survives the restart"
    [ "fast"; "slow" ] (List.rev !received);
  Alcotest.(check int) "requeued frames counted" 2 (Net.messages_requeued net);
  Alcotest.(check int) "manual resume counts a restart" 1 (Net.node_restarts net);
  Alcotest.(check int) "no scheduled crash fired" 0 (Net.node_crashes net)

let crash_counters seed =
  let net = Net.create () in
  let delivered = ref 0 in
  let handler _ ~self:_ ~from:_ _ = incr delivered in
  let a = Net.add_node net ~name:"a" ~handler in
  let b = Net.add_node net ~name:"b" ~handler in
  Net.connect net a b ~latency:0.01;
  Net.set_crash_seed net seed;
  Net.set_node_faults net b (Faults.node ~crash:0.3 ~downtime:0.05 ());
  let hook_fired = ref 0 in
  Net.set_restart_hook net b (fun () -> incr hook_fired);
  for i = 0 to 99 do
    Net.schedule net ~delay:(0.001 *. float_of_int i) (fun () ->
        Net.send net ~src:a ~dst:b (Bytes.make 4 'x'))
  done;
  ignore (Net.run net);
  (Net.node_crashes net, Net.node_restarts net, Net.messages_requeued net, !delivered, !hook_fired)

let test_crash_schedule_replays () =
  let c1 = crash_counters 1L and c2 = crash_counters 1L and c3 = crash_counters 9L in
  Alcotest.(check bool) "same seed, identical crash schedule" true (c1 = c2);
  Alcotest.(check bool) "different seed, different schedule" true (c1 <> c3);
  let crashes, restarts, requeued, delivered, hook_fired = c1 in
  Alcotest.(check bool) "crashes fired" true (crashes > 0);
  Alcotest.(check int) "every crash restarted" crashes restarts;
  Alcotest.(check int) "restart hook fired per restart" restarts hook_fired;
  Alcotest.(check bool) "crashing frames were buffered, so some requeued" true
    (requeued > 0);
  (* frames are buffered across downtime, never lost *)
  Alcotest.(check int) "all 100 frames delivered despite the crashes" 100 delivered

let test_crash_model_validation () =
  let net = Net.create () in
  let b = Net.add_node net ~name:"b" ~handler:(fun _ ~self:_ ~from:_ _ -> ()) in
  (match Net.set_node_faults net b (Faults.node_none) with
  | () -> ()
  | exception Invalid_argument _ -> Alcotest.fail "node_none must clear, not raise");
  (match Faults.node ~crash:1.5 () with
  | _ -> Alcotest.fail "crash probability > 1 must be rejected"
  | exception Invalid_argument _ -> ());
  (match Faults.node ~crash:0.1 ~downtime:(-1.0) () with
  | _ -> Alcotest.fail "negative downtime must be rejected"
  | exception Invalid_argument _ -> ());
  match Net.set_node_faults net 999 (Faults.node ~crash:0.1 ()) with
  | _ -> Alcotest.fail "unknown node must be rejected"
  | exception Invalid_argument _ -> ()

(* ---- Isolation ---- *)

let test_isolation_captures () =
  let sandbox = Isolation.create ~name:"test" in
  Isolation.send sandbox ~src:1 ~dst:2 (Bytes.of_string "a");
  Isolation.send sandbox ~src:1 ~dst:3 (Bytes.of_string "b");
  Alcotest.(check int) "count" 2 (Isolation.count sandbox);
  let captured = Isolation.captured sandbox in
  Alcotest.(check (list int)) "destinations in order" [ 2; 3 ]
    (List.map (fun c -> c.Isolation.dst) captured)

let test_isolation_never_delivers () =
  (* a sandboxed send must not touch any live network counters *)
  let net, a, b, received = two_nodes () in
  let sandbox = Isolation.create ~name:"iso" in
  Isolation.send sandbox ~src:a ~dst:b (Bytes.of_string "leak?");
  ignore (Net.run net);
  Alcotest.(check int) "nothing sent on the wire" 0 (Net.messages_sent net);
  Alcotest.(check (list (triple int int string))) "nothing delivered" [] !received

let test_isolation_drain () =
  let sandbox = Isolation.create ~name:"drain" in
  Isolation.send sandbox ~src:0 ~dst:1 Bytes.empty;
  let drained = Isolation.drain sandbox in
  Alcotest.(check int) "drained one" 1 (List.length drained);
  Alcotest.(check int) "now empty" 0 (Isolation.count sandbox)

let test_isolation_clear () =
  let sandbox = Isolation.create ~name:"clear" in
  Isolation.send sandbox ~src:0 ~dst:1 Bytes.empty;
  Isolation.clear sandbox;
  Alcotest.(check int) "cleared" 0 (Isolation.count sandbox)

let suite =
  [ ("eventq order", `Quick, test_eventq_order);
    ("eventq FIFO ties", `Quick, test_eventq_fifo_ties);
    ("eventq interleaved", `Quick, test_eventq_interleaved);
    ("eventq size/clear", `Quick, test_eventq_size_clear);
    ("network delivery", `Quick, test_network_delivery);
    ("network unconnected rejected", `Quick, test_network_unconnected_send_rejected);
    ("network disconnect", `Quick, test_network_disconnect);
    ("network neighbors", `Quick, test_network_neighbors);
    ("network schedule order", `Quick, test_network_schedule_order);
    ("network run until", `Quick, test_network_run_until);
    ("network max events", `Quick, test_network_max_events);
    ("network schedule past rejected", `Quick, test_network_schedule_past_rejected);
    ("network node names", `Quick, test_network_node_names);
    ("network latency ordering", `Quick, test_network_latency_ordering);
    ("fault model validation", `Quick, test_faults_validation);
    ("connect/schedule reject NaN and negatives", `Quick, test_connect_rejects_nan_latency);
    ("faults: drop everything", `Quick, test_faults_drop_all);
    ("faults: duplicate everything", `Quick, test_faults_duplicate_all);
    ("faults: corruption flips exactly one bit", `Quick, test_faults_corrupt_flips_one_bit);
    ("faults: reorder window permutes, loses nothing", `Quick, test_faults_reorder_window);
    ("faults: seed replays the exact schedule", `Quick, test_faults_seed_replay);
    ("pause/resume: queued-delivery semantics", `Quick, test_pause_resume_queues_delivery);
    ("pause/resume: requeue preserves arrival order", `Quick, test_resume_requeue_ordering);
    ("crashes: seed replays the exact schedule", `Quick, test_crash_schedule_replays);
    ("crashes: model validation", `Quick, test_crash_model_validation);
    ("isolation captures", `Quick, test_isolation_captures);
    ("isolation never delivers", `Quick, test_isolation_never_delivers);
    ("isolation drain", `Quick, test_isolation_drain);
    ("isolation clear", `Quick, test_isolation_clear)
  ]
