(* Property and fuzz tests for the probe wire protocol: every frame
   roundtrips byte-exactly, and decode fails loudly (Rbuf.Truncated) on
   every malformed input — truncations, bit flips, random garbage,
   trailing bytes — without ever crashing differently or looping. *)
open Dice_inet
open Dice_bgp
open Dice_core
module Rbuf = Dice_wire.Rbuf

let ip = Ipv4.of_string

(* ---- generators ---- *)

let gen_prefix =
  QCheck.Gen.(
    map
      (fun (a, l) -> Prefix.make ((a * 2654435761) land 0xFFFFFFFF) (l mod 33))
      (pair (int_bound 100_000) (int_bound 32)))

let gen_verdict =
  QCheck.Gen.(
    map
      (fun (accepted, installed, origin_conflict, covers, prop) ->
        { Probe_wire.accepted; installed; origin_conflict;
          covers_foreign = covers; would_propagate = prop })
      (tup5 bool bool bool (int_bound 100_000) (int_bound 64)))

let gen_req_id = QCheck.Gen.int_bound 0xFFFFFFFF

let gen_addr =
  QCheck.Gen.map
    (fun n -> Ipv4.of_int32 (Int32.of_int ((n * 48271) land 0xFFFFFFFF)))
    (QCheck.Gen.int_bound 1_000_000)

(* valid BGP messages: announcements (the probeable case) of 1..4
   prefixes, plus the whole non-update family *)
let gen_msg =
  QCheck.Gen.(
    let announcement =
      map
        (fun (prefixes, origin) ->
          Msg.Update
            { Msg.withdrawn = [];
              attrs =
                Route.to_attrs
                  (Route.make ~origin:Attr.Igp
                     ~as_path:[ Asn.Path.Seq [ 64510; 64800 + (origin mod 50) ] ]
                     ~next_hop:(ip "10.0.2.1") ());
              nlri = prefixes;
            })
        (pair (list_size (int_range 1 4) gen_prefix) (int_bound 100))
    in
    oneof
      [ announcement;
        return Msg.Keepalive;
        return
          (Msg.Open
             { Msg.version = 4; my_as = 64510; hold_time = 90; bgp_id = ip "10.0.2.1";
               capabilities = [] });
        return (Msg.Notification { Msg.code = 6; subcode = 2; data = Bytes.empty }) ])

let gen_reason = QCheck.Gen.(string_size ~gen:printable (int_bound 80))

(* ---- encode/decode = id ---- *)

let prop_request_roundtrip =
  QCheck.Test.make ~name:"request frames roundtrip (req_id, from, message bytes)"
    ~count:200
    (QCheck.make QCheck.Gen.(tup3 gen_req_id gen_addr gen_msg))
    (fun (req_id, from, msg) ->
      let canonical = Probe_wire.canonical_request ~from msg in
      match Probe_wire.decode (Probe_wire.encode_request ~req_id canonical) with
      | Probe_wire.Request r ->
        r.req_id = req_id && Ipv4.compare r.from from = 0 && r.msg = Msg.encode msg
      | _ -> false)

let prop_response_roundtrip =
  QCheck.Test.make
    ~name:"response frames roundtrip (incl. empty and multi-prefix verdict lists)"
    ~count:200
    (QCheck.make
       QCheck.Gen.(pair gen_req_id (list_size (int_bound 6) (pair gen_prefix gen_verdict))))
    (fun (req_id, verdicts) ->
      match Probe_wire.decode (Probe_wire.encode_response ~req_id verdicts) with
      | Probe_wire.Response r ->
        r.req_id = req_id
        && List.length r.verdicts = List.length verdicts
        && List.for_all2
             (fun (p, v) (p', v') -> Prefix.equal p p' && v = v')
             verdicts r.verdicts
      | _ -> false)

let prop_decline_error_roundtrip =
  QCheck.Test.make ~name:"decline and error frames roundtrip" ~count:200
    (QCheck.make QCheck.Gen.(tup3 gen_req_id gen_reason bool))
    (fun (req_id, reason, declined) ->
      if declined then begin
        match Probe_wire.decode (Probe_wire.encode_decline ~req_id reason) with
        | Probe_wire.Decline d -> d.req_id = req_id && d.reason = reason
        | _ -> false
      end
      else begin
        match Probe_wire.decode (Probe_wire.encode_error ~req_id reason) with
        | Probe_wire.Error e -> e.req_id = req_id && e.reason = reason
        | _ -> false
      end)

let prop_heartbeat_roundtrip =
  QCheck.Test.make ~name:"heartbeat frames roundtrip (seq, incarnation, state version)"
    ~count:200
    (QCheck.make
       QCheck.Gen.(tup3 gen_req_id (int_bound 0xFFFFFFFF) (int_bound 0xFFFFFFFF)))
    (fun (seq, incarnation, state_version) ->
      match
        Probe_wire.decode
          (Probe_wire.encode_heartbeat ~seq ~incarnation ~state_version)
      with
      | Probe_wire.Heartbeat h ->
        h.seq = seq && h.incarnation = incarnation && h.state_version = state_version
      | _ -> false)

(* the canonical request is what vcaches key on: it must be a function of
   the encoded message, not the AST — two messages that encode identically
   canonicalize identically *)
let prop_canonical_is_wire_keyed =
  QCheck.Test.make ~name:"canonical request determined by (from, encoded message)"
    ~count:100
    (QCheck.make QCheck.Gen.(pair gen_addr gen_msg))
    (fun (from, msg) ->
      match Msg.decode (Msg.encode msg) with
      | Error _ -> QCheck.assume_fail ()
      | Ok msg' ->
        Probe_wire.canonical_request ~from msg
        = Probe_wire.canonical_request ~from msg')

(* ---- malformed input: always Truncated, never anything else ---- *)

let decodes_loudly b =
  match Probe_wire.decode b with
  | (_ : Probe_wire.frame) -> true
  | exception Rbuf.Truncated _ -> true
  | exception _ -> false

let gen_valid_frame =
  QCheck.Gen.(
    oneof
      [ map2
          (fun req_id (from, msg) ->
            Probe_wire.encode_request ~req_id (Probe_wire.canonical_request ~from msg))
          gen_req_id (pair gen_addr gen_msg);
        map2
          (fun req_id vs -> Probe_wire.encode_response ~req_id vs)
          gen_req_id
          (list_size (int_bound 4) (pair gen_prefix gen_verdict));
        map2 (fun req_id r -> Probe_wire.encode_decline ~req_id r) gen_req_id gen_reason;
        map2 (fun req_id r -> Probe_wire.encode_error ~req_id r) gen_req_id gen_reason;
        map2
          (fun seq (incarnation, state_version) ->
            Probe_wire.encode_heartbeat ~seq ~incarnation ~state_version)
          gen_req_id
          (pair (int_bound 0xFFFF) (int_bound 0xFFFFFF)) ])

let prop_truncations_fail_loudly =
  QCheck.Test.make ~name:"every proper prefix of a valid frame raises Truncated"
    ~count:80
    (QCheck.make gen_valid_frame)
    (fun frame ->
      let ok = ref true in
      for n = 0 to Bytes.length frame - 1 do
        (match Probe_wire.decode (Bytes.sub frame 0 n) with
        | (_ : Probe_wire.frame) -> ok := false
        | exception Rbuf.Truncated _ -> ()
        | exception _ -> ok := false)
      done;
      !ok)

let prop_trailing_bytes_rejected =
  QCheck.Test.make ~name:"trailing bytes after a valid frame raise Truncated"
    ~count:80
    (QCheck.make QCheck.Gen.(pair gen_valid_frame (int_bound 255)))
    (fun (frame, extra) ->
      match Probe_wire.decode (Bytes.cat frame (Bytes.make 1 (Char.chr extra))) with
      | (_ : Probe_wire.frame) -> false
      | exception Rbuf.Truncated _ -> true
      | exception _ -> false)

let prop_fuzz_random_bytes =
  QCheck.Test.make ~name:"random bytes never crash or loop the decoder" ~count:500
    (QCheck.make
       QCheck.Gen.(map Bytes.of_string (string_size ~gen:char (int_bound 64))))
    decodes_loudly

let prop_fuzz_bit_flips =
  QCheck.Test.make ~name:"single corrupted byte in a valid frame fails loudly"
    ~count:200
    (QCheck.make QCheck.Gen.(tup3 gen_valid_frame (int_bound 10_000) (int_range 1 255)))
    (fun (frame, pos, delta) ->
      let b = Bytes.copy frame in
      let i = pos mod Bytes.length b in
      Bytes.set b i (Char.chr ((Char.code (Bytes.get b i) + delta) land 0xFF));
      decodes_loudly b)

(* deterministic spot checks for the loud failures the fuzzers reach
   only probabilistically *)
let test_alien_version () =
  let b = Probe_wire.encode_decline ~req_id:7 "nope" in
  Bytes.set b 0 (Char.chr (Probe_wire.version + 1));
  match Probe_wire.decode b with
  | (_ : Probe_wire.frame) -> Alcotest.fail "alien version accepted"
  | exception Rbuf.Truncated msg ->
    Alcotest.(check bool) "failure payload names the field and offset" true
      (String.length msg > 0)

(* heartbeats arrived with wire version 2: a frame claiming version 1
   cannot carry one, however well-formed its body *)
let test_heartbeat_version_gated () =
  let b = Probe_wire.encode_heartbeat ~seq:3 ~incarnation:1 ~state_version:7 in
  Bytes.set b 0 (Char.chr 1);
  (match Probe_wire.decode b with
  | (_ : Probe_wire.frame) -> Alcotest.fail "v1 heartbeat accepted"
  | exception Rbuf.Truncated _ -> ());
  (* v1 frames of the original kinds still decode under the v2 decoder *)
  let d = Probe_wire.encode_decline ~req_id:7 "nope" in
  Bytes.set d 0 (Char.chr 1);
  match Probe_wire.decode d with
  | Probe_wire.Decline { req_id = 7; reason = "nope" } -> ()
  | _ -> Alcotest.fail "v1 decline no longer decodes"
  | exception Rbuf.Truncated msg -> Alcotest.failf "v1 decline rejected: %s" msg

let test_unknown_kind () =
  let b = Probe_wire.encode_decline ~req_id:7 "nope" in
  Bytes.set b 1 (Char.chr 9);
  Alcotest.check_raises "unknown kind" (Failure "truncated")
    (fun () ->
      match Probe_wire.decode b with
      | (_ : Probe_wire.frame) -> ()
      | exception Rbuf.Truncated _ -> raise (Failure "truncated"))

let suite =
  [ QCheck_alcotest.to_alcotest prop_request_roundtrip;
    QCheck_alcotest.to_alcotest prop_response_roundtrip;
    QCheck_alcotest.to_alcotest prop_decline_error_roundtrip;
    QCheck_alcotest.to_alcotest prop_heartbeat_roundtrip;
    QCheck_alcotest.to_alcotest prop_canonical_is_wire_keyed;
    QCheck_alcotest.to_alcotest prop_truncations_fail_loudly;
    QCheck_alcotest.to_alcotest prop_trailing_bytes_rejected;
    QCheck_alcotest.to_alcotest prop_fuzz_random_bytes;
    QCheck_alcotest.to_alcotest prop_fuzz_bit_flips;
    ("alien version rejected", `Quick, test_alien_version);
    ("heartbeat gated on wire version 2", `Quick, test_heartbeat_version_gated);
    ("unknown kind rejected", `Quick, test_unknown_kind)
  ]
