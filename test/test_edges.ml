(* Edge-case tests across modules: AS2 sessions, split-horizon corners,
   export filters, trace withdraw bookkeeping, orchestrator seed limits. *)
open Dice_inet
open Dice_bgp

let p = Prefix.of_string
let ip = Ipv4.of_string

(* ---- as4 = false end to end ---- *)

let test_as2_session_roundtrip () =
  (* a session without the AS4 capability uses 2-byte path encoding both
     ways; 16-bit ASNs survive *)
  let u =
    Msg.Update
      { withdrawn = [];
        attrs =
          [ Attr.Origin Attr.Igp;
            Attr.As_path [ Asn.Path.Seq [ 65001; 65002 ] ];
            Attr.Next_hop (ip "10.0.0.1") ];
        nlri = [ p "10.0.0.0/8" ];
      }
  in
  match Msg.decode ~as4:false (Msg.encode ~as4:false u) with
  | Ok u' -> Alcotest.(check bool) "roundtrip" true (u = u')
  | Error e -> Alcotest.failf "decode: %s" (Msg.error_to_string e)

let test_open_without_as4_drops_capability () =
  let r =
    Router.create
      (Config_parser.parse
         "router id 1.1.1.1; local as 65001;\n\
          protocol bgp x { neighbor 2.2.2.2 as 65002; import all; export all; }")
  in
  ignore (Router.handle_event r ~peer:(ip "2.2.2.2") Fsm.Manual_start);
  ignore (Router.handle_event r ~peer:(ip "2.2.2.2") Fsm.Tcp_connected);
  (* peer OPEN without Cap_as4 *)
  ignore
    (Router.handle_msg r ~peer:(ip "2.2.2.2")
       (Msg.Open
          { Msg.version = 4; my_as = 65002; hold_time = 90; bgp_id = ip "2.2.2.2";
            capabilities = [] }));
  ignore (Router.handle_msg r ~peer:(ip "2.2.2.2") Msg.Keepalive);
  Alcotest.(check (list string)) "established without AS4" [ "2.2.2.2" ]
    (List.map Ipv4.to_string (Router.established_peers r))

(* ---- export filter behavior ---- *)

let exporting_router export_clause =
  let cfg =
    Config_parser.parse
      (Printf.sprintf
         {|
         router id 10.0.0.1;
         local as 65001;
         filter no_long { if net.len > 16 then reject; accept; }
         protocol static { route 10.1.0.0/16 via 10.0.0.1; route 10.2.3.0/24 via 10.0.0.1; }
         protocol bgp out { neighbor 10.0.0.2 as 65002; import all; %s }
         |}
         export_clause)
  in
  let r = Router.create cfg in
  ignore (Router.handle_event r ~peer:(ip "10.0.0.2") Fsm.Manual_start);
  ignore (Router.handle_event r ~peer:(ip "10.0.0.2") Fsm.Tcp_connected);
  ignore
    (Router.handle_msg r ~peer:(ip "10.0.0.2")
       (Msg.Open
          { Msg.version = 4; my_as = 65002; hold_time = 90; bgp_id = ip "10.0.0.2";
            capabilities = [ Msg.Cap_as4 65002 ] }));
  let outs = Router.handle_msg r ~peer:(ip "10.0.0.2") Msg.Keepalive in
  let announced =
    List.filter_map
      (function
        | Router.To_peer (_, Msg.Update u) -> Some u.Msg.nlri
        | _ -> None)
      outs
    |> List.concat
    |> List.map Prefix.to_string
    |> List.sort compare
  in
  (r, announced)

let test_export_filter_applies () =
  let _, announced = exporting_router "export filter no_long;" in
  Alcotest.(check (list string)) "only the /16 crosses" [ "10.1.0.0/16" ] announced

let test_export_none () =
  let _, announced = exporting_router "export none;" in
  Alcotest.(check (list string)) "nothing crosses" [] announced

let test_export_all () =
  let _, announced = exporting_router "export all;" in
  Alcotest.(check (list string)) "both cross" [ "10.1.0.0/16"; "10.2.3.0/24" ] announced

let test_adj_rib_out_tracks_exports () =
  let r, _ = exporting_router "export filter no_long;" in
  match Router.adj_rib_out r (ip "10.0.0.2") with
  | Some adj ->
    Alcotest.(check int) "one entry" 1 (Rib.Adj.cardinal adj);
    Alcotest.(check bool) "the /16" true (Rib.Adj.find_opt (p "10.1.0.0/16") adj <> None)
  | None -> Alcotest.fail "expected an adj-rib-out"

(* ---- trace withdraw bookkeeping ---- *)

let test_gen_withdraw_then_reannounce () =
  (* every withdraw of a prefix is followed (if anything) by an announce
     before any second withdraw of the same prefix *)
  let t =
    Dice_trace.Gen.generate
      { Dice_trace.Gen.default_params with
        Dice_trace.Gen.n_prefixes = 200;
        duration = 600.0;
        update_rate = 1.0;
        withdraw_fraction = 0.5;
      }
  in
  let withdrawn : (Prefix.t, unit) Hashtbl.t = Hashtbl.create 16 in
  let ok = ref true in
  Array.iter
    (fun ev ->
      match ev with
      | Dice_trace.Gen.Withdraw { prefix; _ } ->
        if Hashtbl.mem withdrawn prefix then ok := false;
        Hashtbl.replace withdrawn prefix ()
      | Dice_trace.Gen.Announce { entry; _ } ->
        Hashtbl.remove withdrawn entry.Dice_trace.Gen.prefix)
    t.Dice_trace.Gen.events;
  Alcotest.(check bool) "no double withdraw" true !ok

let test_replay_events_leave_consistent_table () =
  (* after replaying dump + events, the router's table equals the dump
     minus currently-withdrawn prefixes (plus re-announcements) *)
  let cfg =
    Config_parser.parse
      "router id 10.0.2.1; local as 64510;\n\
       protocol bgp i { neighbor 10.0.2.2 as 64700; import all; export none; }"
  in
  let r = Router.create cfg in
  let peer = ip "10.0.2.2" in
  ignore (Router.handle_event r ~peer Fsm.Manual_start);
  ignore (Router.handle_event r ~peer Fsm.Tcp_connected);
  ignore
    (Router.handle_msg r ~peer
       (Msg.Open
          { Msg.version = 4; my_as = 64700; hold_time = 90; bgp_id = peer;
            capabilities = [ Msg.Cap_as4 64700 ] }));
  ignore (Router.handle_msg r ~peer Msg.Keepalive);
  let t =
    Dice_trace.Gen.generate
      { Dice_trace.Gen.default_params with
        Dice_trace.Gen.n_prefixes = 300;
        duration = 300.0;
        update_rate = 1.0;
        withdraw_fraction = 0.4;
      }
  in
  ignore (Dice_trace.Replay.feed_dump r ~peer ~next_hop:peer t);
  ignore (Dice_trace.Replay.feed_events r ~peer ~next_hop:peer t);
  (* recompute expected live set *)
  let live : (Prefix.t, unit) Hashtbl.t = Hashtbl.create 512 in
  Array.iter
    (fun (e : Dice_trace.Gen.entry) -> Hashtbl.replace live e.Dice_trace.Gen.prefix ())
    t.Dice_trace.Gen.dump;
  Array.iter
    (fun ev ->
      match ev with
      | Dice_trace.Gen.Withdraw { prefix; _ } -> Hashtbl.remove live prefix
      | Dice_trace.Gen.Announce { entry; _ } ->
        Hashtbl.replace live entry.Dice_trace.Gen.prefix ())
    t.Dice_trace.Gen.events;
  Alcotest.(check int) "table matches expected live set" (Hashtbl.length live)
    (Rib.Loc.cardinal (Router.loc_rib r))

(* ---- orchestrator seed handling ---- *)

let test_orchestrator_max_seeds () =
  let r =
    Router.create
      (Config_parser.parse
         "router id 1.1.1.1; local as 65001;\n\
          protocol bgp x { neighbor 2.2.2.2 as 65002; import all; export all; }")
  in
  ignore (Router.handle_event r ~peer:(ip "2.2.2.2") Fsm.Manual_start);
  ignore (Router.handle_event r ~peer:(ip "2.2.2.2") Fsm.Tcp_connected);
  ignore
    (Router.handle_msg r ~peer:(ip "2.2.2.2")
       (Msg.Open
          { Msg.version = 4; my_as = 65002; hold_time = 90; bgp_id = ip "2.2.2.2";
            capabilities = [ Msg.Cap_as4 65002 ] }));
  ignore (Router.handle_msg r ~peer:(ip "2.2.2.2") Msg.Keepalive);
  let cfg =
    { Dice_core.Orchestrator.default_cfg with
      Dice_core.Orchestrator.exploration =
        { Dice_core.Orchestrator.default_exploration with
          Dice_core.Orchestrator.max_seeds = 2;
          explorer =
            { Dice_concolic.Explorer.default_config with Dice_concolic.Explorer.max_runs = 4 };
        };
    }
  in
  let dice = Dice_core.Orchestrator.create ~cfg (Dice_core.Speakers.bird r) in
  let route = Route.make ~as_path:[ Asn.Path.Seq [ 65002 ] ] ~next_hop:(ip "2.2.2.2") () in
  for i = 0 to 4 do
    Dice_core.Orchestrator.observe dice ~peer:(ip "2.2.2.2")
      ~prefix:(Prefix.make (i lsl 24) 8) ~route
  done;
  Alcotest.(check int) "five pending" 5 (Dice_core.Orchestrator.pending_seeds dice);
  let report = Dice_core.Orchestrator.explore dice in
  Alcotest.(check int) "only the cap explored" 2
    (List.length report.Dice_core.Orchestrator.seed_reports);
  Alcotest.(check int) "queue drained" 0 (Dice_core.Orchestrator.pending_seeds dice)

let suite =
  [ ("as2 session roundtrip", `Quick, test_as2_session_roundtrip);
    ("open without AS4", `Quick, test_open_without_as4_drops_capability);
    ("export filter applies", `Quick, test_export_filter_applies);
    ("export none", `Quick, test_export_none);
    ("export all", `Quick, test_export_all);
    ("adj-rib-out tracks exports", `Quick, test_adj_rib_out_tracks_exports);
    ("gen: no double withdraw", `Quick, test_gen_withdraw_then_reannounce);
    ("replay leaves consistent table", `Quick, test_replay_events_leave_consistent_table);
    ("orchestrator max_seeds", `Quick, test_orchestrator_max_seeds)
  ]
