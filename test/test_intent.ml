(* The intent IR and its three dialect translators: text round trip,
   validation, per-dialect realization round trips (QCheck), cross-dialect
   agreement on quirk-free intents, and one unit test per documented
   quirk. *)
open Dice_inet
open Dice_bgp
open Dice_concolic

let ip = Ipv4.of_string
let p = Prefix.of_string
let comm = Community.make

let dialects : (module Dialect.S) list =
  [ (module Bird_dialect); (module Dice_bgp2.Quagga_dialect); (module Dice_bgp3.Xorp_dialect) ]

let pat ?low ?high base =
  let base = p base in
  let bl = Prefix.len base in
  { Filter.base; low = Option.value low ~default:bl; high = Option.value high ~default:bl }

let sample_intent ?(default = Some Intent.Deny) () =
  Intent.make ~router_id:(ip "10.0.0.1") ~local_as:64800
    ~prefix_sets:
      [ ("customers", [ pat "203.0.113.0/24"; pat ~high:28 "198.51.100.0/22" ]) ]
    ~policies:
      [
        Intent.policy ?default "customer_in"
          [
            Intent.permit
              ~matches:[ Intent.Prefixes "customers" ]
              ~actions:[ Intent.Set_local_pref 120; Intent.Add_community (comm 64800 100) ]
              ();
            Intent.deny ~matches:[ Intent.Transits 64666 ] ();
            Intent.permit
              ~matches:[ Intent.Path_longer_than 3 ]
              ~actions:[ Intent.Set_med 50; Intent.Prepend 2 ]
              ();
          ];
      ]
    ~sessions:
      [
        Intent.session "customer" ~neighbor:(ip "10.0.1.2") ~remote_as:64501
          ~import:(Intent.Apply "customer_in") ~export:Intent.Open;
        Intent.session "upstream" ~neighbor:(ip "10.0.2.2") ~remote_as:64700
          ~import:Intent.Open ~export:Intent.Block;
      ]
    ~statics:[ (p "192.0.2.0/24", ip "10.0.0.2") ]
    ~anycast:[ p "192.88.99.0/24" ]
    ()

(* ---- text format ---- *)

let test_text_roundtrip () =
  let i = sample_intent () in
  Alcotest.(check bool) "parse (to_string i) = i" true (Intent.parse (Intent.to_string i) = i);
  let i = sample_intent ~default:None () in
  Alcotest.(check bool) "unstated default survives" true (Intent.parse (Intent.to_string i) = i)

let expect_invalid what f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "expected Invalid_argument: %s" what

let test_validation () =
  expect_invalid "deny with actions" (fun () ->
      Intent.rule ~actions:[ Intent.Set_med 1 ] Intent.Deny);
  expect_invalid "prepend 17" (fun () -> Intent.permit ~actions:[ Intent.Prepend 17 ] ());
  expect_invalid "bad policy name" (fun () -> Intent.policy "Bad-Name" []);
  expect_invalid "dangling policy ref" (fun () ->
      Intent.make ~router_id:(ip "10.0.0.1") ~local_as:1
        ~sessions:
          [ Intent.session "s" ~neighbor:(ip "10.0.1.2") ~remote_as:2
              ~import:(Intent.Apply "nope") ~export:Intent.Open ]
        ());
  expect_invalid "dangling prefix-set ref" (fun () ->
      Intent.make ~router_id:(ip "10.0.0.1") ~local_as:1
        ~policies:[ Intent.policy "pol" [ Intent.permit ~matches:[ Intent.Prefixes "nope" ] () ] ]
        ());
  expect_invalid "duplicate session neighbor" (fun () ->
      Intent.make ~router_id:(ip "10.0.0.1") ~local_as:1
        ~sessions:
          [ Intent.session "a" ~neighbor:(ip "10.0.1.2") ~remote_as:2;
            Intent.session "b" ~neighbor:(ip "10.0.1.2") ~remote_as:3 ]
        ());
  expect_invalid "empty prefix set" (fun () ->
      Intent.make ~router_id:(ip "10.0.0.1") ~local_as:1 ~prefix_sets:[ ("s", []) ] ())

let test_config_types_duplicates () =
  let f name = { Filter.name; body = [ Filter.Accept ] } in
  expect_invalid "duplicate filter name" (fun () ->
      Config_types.make ~router_id:(ip "10.0.0.1") ~local_as:1 ~filters:[ f "x"; f "x" ] ());
  expect_invalid "duplicate peer neighbor" (fun () ->
      Config_types.make ~router_id:(ip "10.0.0.1") ~local_as:1
        ~peers:
          [ Config_types.default_peer ~name:"a" ~neighbor:(ip "10.0.1.2") ~remote_as:2;
            Config_types.default_peer ~name:"b" ~neighbor:(ip "10.0.1.2") ~remote_as:3 ]
        ())

(* ---- realization structure ---- *)

let test_realize_structure () =
  let i = sample_intent () in
  List.iter
    (fun (module D : Dialect.S) ->
      let cfg = Dialect.realize (module D) i in
      Alcotest.(check string) (D.name ^ " router id") "10.0.0.1"
        (Ipv4.to_string cfg.Config_types.router_id);
      Alcotest.(check int) (D.name ^ " local as") 64800 cfg.Config_types.local_as;
      Alcotest.(check int) (D.name ^ " peers") 2 (List.length cfg.Config_types.peers);
      Alcotest.(check bool)
        (D.name ^ " has policy filter")
        true
        (Config_types.find_filter cfg "customer_in" <> None);
      Alcotest.(check int) (D.name ^ " statics") 1 (List.length cfg.Config_types.static_routes);
      Alcotest.(check int) (D.name ^ " anycast") 1 (List.length cfg.Config_types.anycast);
      match Config_types.find_peer cfg (ip "10.0.1.2") with
      | None -> Alcotest.failf "%s: customer peer missing" D.name
      | Some peer -> (
        Alcotest.(check int) (D.name ^ " remote as") 64501 peer.Config_types.remote_as;
        match peer.Config_types.import_policy with
        | Config_types.Use_filter _ -> ()
        | _ -> Alcotest.failf "%s: customer import is not a filter" D.name))
    dialects

(* ---- running realized filters ---- *)

let run_filter cfg name croute =
  match Config_types.find_filter cfg name with
  | None -> Alcotest.failf "filter %s missing" name
  | Some f -> Filter_interp.run (Engine.null ()) ~source_as:64501 ~local_as:64800 f croute

let route ?(path = [ 64501 ]) ?med ?(communities = []) () =
  Route.make ~origin:Attr.Igp ~as_path:[ Asn.Path.Seq path ] ~med
    ~communities
    ~next_hop:(ip "10.0.1.2")
    ()

let accepts cfg name prefix r =
  match run_filter cfg name (Croute.of_route (p prefix) r) with
  | Filter_interp.Accepted _ -> true
  | Filter_interp.Rejected -> false

(* Quirk: unstated default — BIRD falls off the filter end (reject),
   Quagga hits the implicit deny (reject), XORP's policy framework
   accepts what no term matched. *)
let test_default_action_quirk () =
  let i = sample_intent ~default:None () in
  let unmatched = route ~path:[ 64501; 64502 ] () in
  let check (module D : Dialect.S) expected =
    let cfg = Dialect.realize (module D) i in
    Alcotest.(check bool)
      (D.name ^ " verdict on unmatched route")
      expected
      (accepts cfg "customer_in" "8.8.8.0/24" unmatched)
  in
  check (module Bird_dialect) false;
  check (module Dice_bgp2.Quagga_dialect) false;
  check (module Dice_bgp3.Xorp_dialect) true;
  (* the same intent with an explicit default is quirk-free *)
  let i = sample_intent ~default:(Some Intent.Permit) () in
  List.iter
    (fun (module D : Dialect.S) ->
      Alcotest.(check bool)
        (D.name ^ " explicit permit default")
        true
        (accepts (Dialect.realize (module D) i) "customer_in" "8.8.8.0/24" unmatched))
    dialects

(* Quirk: Quagga prefix-list lower bounds clamp to the mask length, so a
   [P-] pattern (match anything containing P) degrades to exact-match. *)
let test_quagga_clamp_quirk () =
  let i =
    Intent.make ~router_id:(ip "10.0.0.1") ~local_as:64800
      ~prefix_sets:[ ("covering", [ pat ~low:0 "192.0.2.0/24" ]) ]
      ~policies:
        [ Intent.policy ~default:Intent.Deny "pol"
            [ Intent.permit ~matches:[ Intent.Prefixes "covering" ] () ] ]
      ()
  in
  let covering = route () in
  let bird = Dialect.realize (module Bird_dialect) i in
  let quagga = Dialect.realize (module Dice_bgp2.Quagga_dialect) i in
  Alcotest.(check bool) "bird matches the covering /16" true
    (accepts bird "pol" "192.0.0.0/16" covering);
  Alcotest.(check bool) "quagga clamps it away" false
    (accepts quagga "pol" "192.0.0.0/16" covering);
  Alcotest.(check bool) "both still match the exact /24" true
    (accepts bird "pol" "192.0.2.0/24" covering
    && accepts quagga "pol" "192.0.2.0/24" covering)

(* Quirk: XORP terms evaluate in lexicographic name order — with ten or
   more rules, t10 runs before t2, flipping first-match. *)
let test_xorp_ordering_quirk () =
  let filler n = Intent.permit ~matches:[ Intent.Transits (60000 + n) ] () in
  let rules =
    [ filler 1;
      Intent.permit ~matches:[ Intent.Transits 64666 ] () ]
    @ List.map filler [ 3; 4; 5; 6; 7; 8; 9 ]
    @ [ Intent.deny ~matches:[ Intent.Transits 64666 ] () ]
  in
  let i =
    Intent.make ~router_id:(ip "10.0.0.1") ~local_as:64800
      ~policies:[ Intent.policy ~default:Intent.Deny "pol" rules ]
      ()
  in
  let r = route ~path:[ 64501; 64666 ] () in
  let bird = Dialect.realize (module Bird_dialect) i in
  let quagga = Dialect.realize (module Dice_bgp2.Quagga_dialect) i in
  let xorp = Dialect.realize (module Dice_bgp3.Xorp_dialect) i in
  Alcotest.(check bool) "bird: written order, rule 2 permits" true (accepts bird "pol" "8.8.8.0/24" r);
  Alcotest.(check bool) "quagga: sequence order, rule 2 permits" true
    (accepts quagga "pol" "8.8.8.0/24" r);
  Alcotest.(check bool) "xorp: t10 sorts before t2 and denies" false
    (accepts xorp "pol" "8.8.8.0/24" r)

(* ---- QCheck: realization round trips on quirk-free intents ---- *)

(* Quirk-free: explicit default, at most nine rules, pattern lower
   bounds at or above the mask length. Every dialect must then agree
   with Intent.compile — including modified attributes. *)
let as_pool = [| 64501; 64666; 64999; 65010 |]
let comm_pool = [| comm 64800 100; comm 64800 200 |]

let pat_gen =
  let open QCheck.Gen in
  let bases = [| "10.0.0.0/8"; "192.0.2.0/24"; "198.51.100.0/22"; "203.0.113.0/24" |] in
  let* base = oneofa bases in
  let base = p base in
  let bl = Prefix.len base in
  let* low = int_range bl (min 32 (bl + 4)) in
  let* high = int_range low 32 in
  return { Filter.base; low; high }

let match_gen =
  let open QCheck.Gen in
  frequency
    [
      (2, return (Intent.Prefixes "set_a"));
      (2, map (fun i -> Intent.Transits as_pool.(i)) (int_bound 3));
      (1, map (fun i -> Intent.Originated_by as_pool.(i)) (int_bound 3));
      (1, map (fun n -> Intent.Path_longer_than n) (int_bound 4));
      (1, map (fun i -> Intent.Has_community comm_pool.(i)) (int_bound 1));
    ]

let action_gen =
  let open QCheck.Gen in
  frequency
    [
      (2, map (fun n -> Intent.Set_local_pref n) (int_bound 200));
      (2, map (fun n -> Intent.Set_med n) (int_bound 200));
      (1, map (fun i -> Intent.Add_community comm_pool.(i)) (int_bound 1));
      (1, map (fun i -> Intent.Delete_community comm_pool.(i)) (int_bound 1));
      (1, map (fun n -> Intent.Prepend n) (int_range 1 3));
    ]

let rule_gen =
  let open QCheck.Gen in
  let* matches = list_size (int_range 0 2) match_gen in
  let* permit = bool in
  if permit then
    let* actions = list_size (int_range 0 2) action_gen in
    return (Intent.permit ~matches ~actions ())
  else return (Intent.deny ~matches ())

let intent_gen =
  let open QCheck.Gen in
  let* pats = list_size (int_range 1 3) pat_gen in
  let* rules = list_size (int_range 1 9) rule_gen in
  let* default = oneofl [ Intent.Permit; Intent.Deny ] in
  return
    (Intent.make ~router_id:(ip "10.0.0.1") ~local_as:64800
       ~prefix_sets:[ ("set_a", pats) ]
       ~policies:[ Intent.policy ~default "pol" rules ]
       ~sessions:
         [ Intent.session "peer_a" ~neighbor:(ip "10.0.1.2") ~remote_as:64501
             ~import:(Intent.Apply "pol") ~export:Intent.Open ]
       ())

let route_gen =
  let open QCheck.Gen in
  let prefixes =
    [| "10.0.0.0/8"; "10.1.0.0/16"; "192.0.2.0/24"; "192.0.2.128/25"; "198.51.100.0/24";
       "203.0.113.0/24"; "8.8.8.0/24" |]
  in
  let* prefix = oneofa prefixes in
  let* path = list_size (int_range 1 4) (map (fun i -> as_pool.(i)) (int_bound 3)) in
  let* communities = list_size (int_bound 2) (map (fun i -> comm_pool.(i)) (int_bound 1)) in
  let* med = opt (int_bound 300) in
  return (p prefix, route ~path ?med ~communities ())

let arb_case =
  QCheck.make
    QCheck.Gen.(pair intent_gen (list_size (int_range 1 8) route_gen))
    ~print:(fun (i, routes) ->
      Printf.sprintf "%s\non %d routes" (Intent.to_string i) (List.length routes))

let flat_path (r : Route.t) =
  List.concat_map (function Asn.Path.Seq l -> l | Asn.Path.Set l -> l) r.Route.as_path

let verdict cfg prefix r =
  match Config_types.find_filter cfg "pol" with
  | None -> Alcotest.fail "realized config lost the policy"
  | Some f -> Filter_interp.run (Engine.null ()) ~source_as:64501 ~local_as:64800 f
                (Croute.of_route prefix r)

let verdict_equal va vb =
  match (va, vb) with
  | Filter_interp.Rejected, Filter_interp.Rejected -> true
  | Filter_interp.Accepted a, Filter_interp.Accepted b ->
    let pa, ra = Croute.to_route a and pb, rb = Croute.to_route b in
    pa = pb && Route.equal ra rb
  | _ -> false

let prop_dialect_roundtrip (module D : Dialect.S) =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "%s: realize agrees with Intent.compile on quirk-free intents" D.name)
    ~count:120 arb_case
    (fun (i, routes) ->
      let reference = Intent.compile ~unstated:Intent.Deny i in
      let realized = Dialect.realize (module D) i in
      List.for_all
        (fun (prefix, r) ->
          let vr = verdict reference prefix r and vd = verdict realized prefix r in
          let pol = Option.get (Intent.find_policy i "pol") in
          let eval =
            Intent.eval_policy i pol ~unstated:Intent.Deny ~path:(flat_path r)
              ~communities:r.Route.communities prefix
          in
          verdict_equal vr vd
          && eval = (match vd with Filter_interp.Accepted _ -> true | _ -> false))
        routes)

let prop_cross_dialect_agreement =
  QCheck.Test.make ~name:"cross-dialect: all three realizations agree on quirk-free intents"
    ~count:120 arb_case
    (fun (i, routes) ->
      let cfgs = List.map (fun (module D : Dialect.S) -> Dialect.realize (module D) i) dialects in
      List.for_all
        (fun (prefix, r) ->
          match List.map (fun cfg -> verdict cfg prefix r) cfgs with
          | [ a; b; c ] -> verdict_equal a b && verdict_equal b c
          | _ -> false)
        routes)

let suite =
  [
    Alcotest.test_case "intent text round trip" `Quick test_text_roundtrip;
    Alcotest.test_case "smart-constructor validation" `Quick test_validation;
    Alcotest.test_case "Config_types.make rejects duplicates" `Quick test_config_types_duplicates;
    Alcotest.test_case "realized structure per dialect" `Quick test_realize_structure;
    Alcotest.test_case "quirk: unstated default action" `Quick test_default_action_quirk;
    Alcotest.test_case "quirk: quagga prefix-list clamp" `Quick test_quagga_clamp_quirk;
    Alcotest.test_case "quirk: xorp lexicographic terms" `Quick test_xorp_ordering_quirk;
  ]
  @ List.map (fun d -> QCheck_alcotest.to_alcotest (prop_dialect_roundtrip d)) dialects
  @ [ QCheck_alcotest.to_alcotest prop_cross_dialect_agreement ]
