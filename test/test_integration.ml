(* End-to-end integration tests over the simulated network. *)
open Dice_inet
open Dice_bgp
module Net = Dice_sim.Network
module Threerouter = Dice_topology.Threerouter

(* Figure-2 addressing, resolved through the topology spec *)
let tr_f2_spec = Threerouter.spec Threerouter.Correct
let tr_internet_addr = Dice_topology.Topology.Spec.address tr_f2_spec ~of_:"internet" ~toward:"provider"


let p = Prefix.of_string

let simple_pair () =
  let cfg_a =
    Config_parser.parse
      {|
      router id 10.0.0.1;
      local as 65001;
      protocol static { route 198.51.100.0/24 via 10.0.0.1; }
      protocol bgp b { neighbor 10.0.0.2 as 65002; import all; export all; }
      |}
  in
  let cfg_b =
    Config_parser.parse
      {|
      router id 10.0.0.2;
      local as 65002;
      protocol bgp a { neighbor 10.0.0.1 as 65001; import all; export all; }
      |}
  in
  let net = Net.create () in
  let a = Router_node.attach net ~name:"A" (Router.create cfg_a) in
  let b = Router_node.attach net ~name:"B" (Router.create cfg_b) in
  Net.connect net (Router_node.node_id a) (Router_node.node_id b) ~latency:0.01;
  Router_node.bind_peer a ~neighbor:(Ipv4.of_string "10.0.0.2") ~node:(Router_node.node_id b);
  Router_node.bind_peer b ~neighbor:(Ipv4.of_string "10.0.0.1") ~node:(Router_node.node_id a);
  (net, a, b)

let test_pair_establish_and_propagate () =
  let net, a, b = simple_pair () in
  Router_node.start a;
  Router_node.start b;
  ignore (Net.run ~until:30.0 net);
  Alcotest.(check (option string)) "A established" (Some "Established")
    (Option.map Fsm.state_to_string
       (Router.peer_state (Router_node.router a) (Ipv4.of_string "10.0.0.2")));
  match Router.best_route (Router_node.router b) (p "198.51.100.0/24") with
  | Some e ->
    Alcotest.(check (option int)) "learned via A's AS" (Some 65001)
      (Route.neighbor_as e.Rib.Loc.route)
  | None -> Alcotest.fail "static route did not propagate"

let test_pair_keepalives_sustain_session () =
  let net, a, b = simple_pair () in
  Router_node.start a;
  Router_node.start b;
  (* run well past the hold time: keepalives must keep the session up *)
  ignore (Net.run ~until:400.0 net);
  Alcotest.(check (option string)) "still established" (Some "Established")
    (Option.map Fsm.state_to_string
       (Router.peer_state (Router_node.router a) (Ipv4.of_string "10.0.0.2")));
  ignore b

let test_threerouter_full_propagation () =
  let topo = Threerouter.build Threerouter.Partially_correct in
  Threerouter.start topo;
  ignore (Net.run ~until:(Net.now topo.Threerouter.net +. 10.0) topo.Threerouter.net);
  (* the customer's static routes must be visible at the internet router
     with the provider + customer AS path *)
  let internet = Router_node.router topo.Threerouter.internet in
  match Router.best_route internet (p "203.0.113.0/24") with
  | Some e ->
    Alcotest.(check (list int)) "AS path through provider"
      [ Threerouter.provider_as; Threerouter.customer_as ]
      (Asn.Path.as_list e.Rib.Loc.route.Route.as_path)
  | None -> Alcotest.fail "customer route did not reach the internet"

let test_threerouter_table_load () =
  let topo = Threerouter.build Threerouter.Missing in
  Threerouter.start topo;
  let trace =
    Dice_trace.Gen.generate
      { Dice_trace.Gen.default_params with Dice_trace.Gen.n_prefixes = 800; duration = 10.0 }
  in
  let n = Threerouter.load_table topo trace in
  (* every distinct dump prefix, plus the customer's two statics *)
  let distinct =
    Array.to_list trace.Dice_trace.Gen.dump
    |> List.map (fun (e : Dice_trace.Gen.entry) -> e.Dice_trace.Gen.prefix)
    |> List.sort_uniq Prefix.compare
    |> List.length
  in
  Alcotest.(check bool) "table loaded" true (n >= distinct);
  (* and the customer sees routes re-exported by the provider *)
  let customer = Router_node.router topo.Threerouter.customer in
  Alcotest.(check bool) "customer sees the table" true
    (Rib.Loc.cardinal (Router.loc_rib customer) >= distinct / 2)

let test_scheduled_replay_in_sim () =
  let topo = Threerouter.build Threerouter.Missing in
  Threerouter.start topo;
  let trace =
    Dice_trace.Gen.generate
      { Dice_trace.Gen.default_params with
        Dice_trace.Gen.n_prefixes = 100;
        duration = 5.0;
        update_rate = 2.0;
      }
  in
  let scheduled =
    Dice_trace.Replay.schedule topo.Threerouter.net
      ~from_node:(Router_node.node_id topo.Threerouter.internet)
      ~to_node:(Router_node.node_id topo.Threerouter.provider)
      ~start_at:(Net.now topo.Threerouter.net)
      ~next_hop:tr_internet_addr trace
  in
  Alcotest.(check int) "dump + events scheduled"
    (100 + Array.length trace.Dice_trace.Gen.events)
    scheduled;
  ignore (Net.run ~until:(Net.now topo.Threerouter.net +. 30.0) topo.Threerouter.net);
  let provider = Threerouter.provider_router topo in
  Alcotest.(check bool) "provider processed them" true
    (Router.updates_processed provider >= 100)

let test_session_recovery_after_drop () =
  let net, a, b = simple_pair () in
  Router_node.start a;
  Router_node.start b;
  ignore (Net.run ~until:30.0 net);
  (* simulate a transport failure on A's side: FSM goes Idle, and since
     ManualStart is not re-issued automatically, the session stays down
     from A's perspective until restarted *)
  ignore
    (Router.handle_event (Router_node.router a) ~peer:(Ipv4.of_string "10.0.0.2")
       Fsm.Tcp_failed);
  Alcotest.(check (option string)) "down" (Some "Idle")
    (Option.map Fsm.state_to_string
       (Router.peer_state (Router_node.router a) (Ipv4.of_string "10.0.0.2")));
  Router_node.start a;
  ignore (Net.run ~until:(Net.now net +. 60.0) net);
  Alcotest.(check (option string)) "re-established" (Some "Established")
    (Option.map Fsm.state_to_string
       (Router.peer_state (Router_node.router a) (Ipv4.of_string "10.0.0.2")))

let suite =
  [ ("pair: establish and propagate", `Quick, test_pair_establish_and_propagate);
    ("pair: keepalives sustain session", `Quick, test_pair_keepalives_sustain_session);
    ("three-router: full propagation", `Quick, test_threerouter_full_propagation);
    ("three-router: table load", `Slow, test_threerouter_table_load);
    ("scheduled replay in sim", `Quick, test_scheduled_replay_in_sim);
    ("session recovery after drop", `Quick, test_session_recovery_after_drop)
  ]
