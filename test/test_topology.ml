(* The Topology API: spec building and validation, the text-format
   round-trip, seeded generation (determinism, connectivity), the fleet
   runner (valley-free export, Down-member exclusion, online probing),
   and the shared-memory claims (trie structural sharing, cross-clone
   checkpoint page dedup). *)

open Dice_inet
open Dice_bgp
open Dice_core
module Topology = Dice_topology.Topology
module Spec = Dice_topology.Topology.Spec
module Tgen = Dice_topology.Gen
module Fleet = Dice_topology.Fleet
module Threerouter = Dice_topology.Threerouter
module Store = Dice_checkpoint.Store
module Fork = Dice_checkpoint.Fork

let p = Prefix.of_string
let ip = Ipv4.of_string

let check_invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

(* ------------------------------------------------------------------ *)
(* Spec building and validation                                        *)
(* ------------------------------------------------------------------ *)

let two_domains () =
  [ Spec.domain "left" ~asn:65001 ~prefixes:[ p "203.0.113.0/24" ];
    Spec.domain "right" ~asn:65002 ]

let test_spec_smart_constructors () =
  let s =
    Spec.make ~domains:(two_domains ())
      ~links:[ Spec.transit ~customer:"left" ~provider:"right" () ]
      ()
  in
  Alcotest.(check int) "domains" 2 (List.length s.Spec.domains);
  let ns = Spec.neighbors s "left" in
  Alcotest.(check int) "left has one neighbor" 1 (List.length ns);
  let n = List.hd ns in
  Alcotest.(check string) "neighbor name" "right" n.Spec.peer_name;
  Alcotest.(check bool) "right is left's provider" true (n.Spec.peer_role = Spec.Provider);
  (* the two sides agree on the shared link's addresses *)
  Alcotest.(check bool) "addresses pair up" true
    (Spec.address s ~of_:"left" ~toward:"right" = n.Spec.my_addr
    && Spec.address s ~of_:"right" ~toward:"left" = n.Spec.peer_addr);
  (* distinct carve-outs *)
  let all =
    [ Spec.address s ~of_:"left" ~toward:"right";
      Spec.address s ~of_:"right" ~toward:"left";
      Spec.feed_addr s "left"; Spec.feed_addr s "right";
      Spec.router_id s "left"; Spec.router_id s "right" ]
  in
  Alcotest.(check int) "all plan addresses distinct" 6
    (List.length (List.sort_uniq Ipv4.compare all))

let test_spec_validation () =
  check_invalid "bad name" (fun () -> Spec.domain "Left!" ~asn:65001);
  check_invalid "bad asn" (fun () -> Spec.domain "left" ~asn:0);
  check_invalid "duplicate name" (fun () ->
      Spec.make
        ~domains:[ Spec.domain "a" ~asn:1; Spec.domain "a" ~asn:2 ]
        ~links:[] ());
  check_invalid "duplicate asn" (fun () ->
      Spec.make
        ~domains:[ Spec.domain "a" ~asn:7; Spec.domain "b" ~asn:7 ]
        ~links:[] ());
  check_invalid "unknown speaker" (fun () ->
      Spec.make ~domains:[ Spec.domain ~speaker:"cisco" "a" ~asn:1 ] ~links:[] ());
  check_invalid "dangling endpoint" (fun () ->
      Spec.make ~domains:(two_domains ())
        ~links:[ Spec.transit ~customer:"left" ~provider:"ghost" () ]
        ());
  check_invalid "self link" (fun () ->
      Spec.transit ~customer:"left" ~provider:"left" ());
  check_invalid "duplicate link" (fun () ->
      Spec.make ~domains:(two_domains ())
        ~links:
          [ Spec.transit ~customer:"left" ~provider:"right" ();
            Spec.peering "right" "left" ]
        ());
  check_invalid "asymmetric roles" (fun () ->
      let l = Spec.peering "left" "right" in
      Spec.make ~domains:(two_domains ())
        ~links:[ { l with Spec.a_role = Spec.Customer } ]
        ());
  check_invalid "no domains" (fun () -> Spec.make ~domains:[] ~links:[] ())

let test_spec_text_roundtrip () =
  let s =
    Spec.make
      ~domains:
        [ Spec.domain "core1" ~asn:100;
          Spec.domain ~speaker:"quagga" "core2" ~asn:200;
          Spec.domain ~speaker:"xorp"
            ~prefixes:[ p "203.0.113.0/24"; p "198.51.100.0/22" ] "leaf" ~asn:300 ]
      ~links:
        [ Spec.peering "core1" "core2";
          Spec.transit ~customer:"leaf" ~provider:"core1" ();
          Spec.transit ~latency:0.02 ~customer:"leaf" ~provider:"core2" () ]
      ()
  in
  let text = Spec.to_string s in
  let s' = Spec.parse text in
  Alcotest.(check string) "byte-for-byte round trip" text (Spec.to_string s');
  Alcotest.(check bool) "equal" true (Spec.equal s s');
  (* comments and odd whitespace are tolerated *)
  let s'' = Spec.parse ("# header\n" ^ text) in
  Alcotest.(check bool) "comment tolerated" true (Spec.equal s s'')

let test_spec_parse_errors () =
  let bad text =
    match Spec.parse text with
    | exception Spec.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected Parse_error on %S" text
  in
  bad "";
  bad "topology {";
  bad "topology { domain a { speaker bird; } }" (* missing as *);
  bad "topology { domain a { as 1; } link a -> b; }" (* dangling *);
  bad "topology { domain a { as 1; } domain b { as 1; } }" (* dup asn *);
  bad "topology { domain a { as 1; prefix nonsense; } }";
  bad "topology { domain a { as 1; } } trailing"

let test_threerouter_spec () =
  let s = Threerouter.spec Threerouter.Correct in
  Alcotest.(check int) "three domains" 3 (List.length s.Spec.domains);
  (* the spec resolves to the paper's historical figure-2 addressing *)
  Alcotest.(check string) "customer side" "10.0.1.2"
    (Ipv4.to_string (Spec.address s ~of_:"customer" ~toward:"provider"));
  Alcotest.(check string) "provider's customer side" "10.0.1.1"
    (Ipv4.to_string (Spec.address s ~of_:"provider" ~toward:"customer"));
  Alcotest.(check string) "provider's internet side" "10.0.2.1"
    (Ipv4.to_string (Spec.address s ~of_:"provider" ~toward:"internet"));
  Alcotest.(check string) "internet side" "10.0.2.2"
    (Ipv4.to_string (Spec.address s ~of_:"internet" ~toward:"provider"))

let test_intent_of_realizes_everywhere () =
  let s = Tgen.generate ~seed:11L ~domains:5 () in
  List.iter
    (fun (d : Spec.domain) ->
      let intent = Spec.intent_of s d.Spec.name in
      List.iter
        (fun impl ->
          let sp = Speakers.create_exn impl (Speaker.Intent intent) in
          ignore (Speaker.config sp))
        Speakers.names)
    s.Spec.domains

(* ------------------------------------------------------------------ *)
(* Generation properties                                               *)
(* ------------------------------------------------------------------ *)

let arb_gen_input =
  QCheck.(pair (map Int64.of_int int) (int_range 1 48))

let prop_gen_deterministic =
  QCheck.Test.make ~name:"same seed generates the identical topology" ~count:25
    arb_gen_input
    (fun (seed, domains) ->
      let a = Tgen.generate ~seed ~domains () in
      let b = Tgen.generate ~seed ~domains () in
      Spec.to_string a = Spec.to_string b)

let connected (s : Spec.t) =
  let n = List.length s.Spec.domains in
  let idx = Hashtbl.create n in
  List.iteri (fun i (d : Spec.domain) -> Hashtbl.replace idx d.Spec.name i) s.Spec.domains;
  let adj = Array.make n [] in
  List.iter
    (fun (l : Spec.link) ->
      let a = Hashtbl.find idx l.Spec.a and b = Hashtbl.find idx l.Spec.b in
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    s.Spec.links;
  let seen = Array.make n false in
  let rec dfs i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter dfs adj.(i)
    end
  in
  dfs 0;
  Array.for_all Fun.id seen

let prop_gen_connected =
  QCheck.Test.make ~name:"generated topology is connected" ~count:25 arb_gen_input
    (fun (seed, domains) -> connected (Tgen.generate ~seed ~domains ()))

let prop_gen_text_roundtrip =
  QCheck.Test.make ~name:"generated topology round-trips through the text format"
    ~count:25 arb_gen_input
    (fun (seed, domains) ->
      let s = Tgen.generate ~seed ~domains () in
      let text = Spec.to_string s in
      Spec.to_string (Spec.parse text) = text)

(* ------------------------------------------------------------------ *)
(* Valley-free propagation                                             *)
(* ------------------------------------------------------------------ *)

let role_of (s : Spec.t) ~viewer ~peer =
  (List.find (fun (n : Spec.neighbor) -> n.Spec.peer_name = peer)
     (Spec.neighbors s viewer))
    .Spec.peer_role

(* Soundness of the Gao-Rexford export policies: replay the propagation
   log and require every "uphill or sideways" hop (toward a peer or
   provider) to be justified — the sender is the origin or has, earlier
   in the log, learned the prefix from one of its own customers. *)
let valley_free (s : Spec.t) ~origin log =
  let cust_ok = Hashtbl.create 16 in
  Hashtbl.replace cust_ok origin ();
  List.for_all
    (fun (sender, receiver, _) ->
      let ok =
        match role_of s ~viewer:sender ~peer:receiver with
        | Spec.Customer -> true (* downhill: always exportable *)
        | Spec.Peer | Spec.Provider -> Hashtbl.mem cust_ok sender
      in
      (match role_of s ~viewer:receiver ~peer:sender with
      | Spec.Customer -> Hashtbl.replace cust_ok receiver ()
      | Spec.Peer | Spec.Provider -> ());
      ok)
    log

let pick_leaf (s : Spec.t) =
  (* a domain with a provider, i.e. anything below the tier-1 clique *)
  match
    List.find_opt
      (fun (d : Spec.domain) ->
        List.exists
          (fun (n : Spec.neighbor) -> n.Spec.peer_role = Spec.Provider)
          (Spec.neighbors s d.Spec.name))
      (List.rev s.Spec.domains)
  with
  | Some d -> d.Spec.name
  | None -> (List.hd s.Spec.domains).Spec.name

let prop_no_valley_survives_export =
  QCheck.Test.make
    ~name:"no valley path survives export (leaf announcement reaches all, never \
           provider->peer->provider)"
    ~count:5
    QCheck.(pair (map Int64.of_int int) (int_range 4 14))
    (fun (seed, domains) ->
      let s = Tgen.generate ~seed ~domains () in
      let fl = Fleet.realize s in
      Fleet.establish fl;
      let origin = pick_leaf s in
      let prefix = p "203.0.113.0/24" in
      let log = Fleet.originate fl ~domain:origin prefix in
      let receivers = Hashtbl.create 16 in
      Hashtbl.replace receivers origin ();
      List.iter (fun (_, r, _) -> Hashtbl.replace receivers r ()) log;
      valley_free s ~origin log
      && Hashtbl.length receivers = List.length s.Spec.domains)

(* ------------------------------------------------------------------ *)
(* Structural sharing                                                  *)
(* ------------------------------------------------------------------ *)

let test_trie_clone_shares_untouched_subtrees () =
  let prefixes =
    List.init 256 (fun i -> Prefix.make (Ipv4.of_octets 10 (i / 16) (i mod 16 * 16) 0) 24)
  in
  let t =
    List.fold_left (fun acc pfx -> Prefix_trie.add pfx (Prefix.to_string pfx) acc)
      Prefix_trie.empty prefixes
  in
  let n = Prefix_trie.node_count t in
  Alcotest.(check int) "self-sharing is total" n (Prefix_trie.shared_nodes t t);
  (* a persistent "clone" is the same value; one insert must reuse every
     untouched subtree physically, paying only the spine to the new leaf *)
  let t' = Prefix_trie.add (p "192.0.2.0/24") "probe" t in
  let shared = Prefix_trie.shared_nodes t t' in
  let n' = Prefix_trie.node_count t' in
  Alcotest.(check bool)
    (Printf.sprintf "insert shares untouched subtrees (%d/%d shared)" shared n')
    true
    (shared >= n' - 33);
  (* and the original is untouched entirely *)
  Alcotest.(check int) "original unchanged" n (Prefix_trie.node_count t)

let announce ~peer_as ~next_hop ~prefix =
  Msg.Update
    { withdrawn = [];
      attrs =
        [ Attr.Origin Attr.Igp;
          Attr.As_path [ Asn.Path.Seq [ peer_as ] ];
          Attr.Next_hop next_hop ];
      nlri = [ prefix ] }

let clone_speaker impl =
  let neighbor = ip "10.9.0.2" in
  let intent =
    Intent.make ~router_id:(ip "10.9.0.1") ~local_as:65001
      ~sessions:[ Intent.session "up" ~neighbor ~remote_as:65002 ]
      ~statics:[ (p "203.0.113.0/24", ip "10.9.0.1") ]
      ()
  in
  let sp = Speakers.create_exn impl (Speaker.Intent intent) in
  Speaker.establish sp ~peer:neighbor;
  ignore
    (Speaker.feed sp ~peer:neighbor
       (announce ~peer_as:65002 ~next_hop:neighbor ~prefix:(p "198.51.100.0/24")));
  (sp, neighbor)

let test_speaker_clone_equivalent_and_isolated () =
  List.iter
    (fun impl ->
      let sp, neighbor = clone_speaker impl in
      let c = Speaker.clone sp in
      Alcotest.(check bool)
        (impl ^ ": clone answers like the original") true
        (Rib.Loc.to_list (Speaker.loc_rib c) = Rib.Loc.to_list (Speaker.loc_rib sp));
      (* mutating the clone must not leak into the live speaker *)
      ignore
        (Speaker.feed c ~peer:neighbor
           (announce ~peer_as:65002 ~next_hop:neighbor ~prefix:(p "198.51.101.0/24")));
      Alcotest.(check bool) (impl ^ ": clone diverged") true
        (Speaker.best_route c (p "198.51.101.0/24") <> None);
      Alcotest.(check bool) (impl ^ ": original untouched") true
        (Speaker.best_route sp (p "198.51.101.0/24") = None);
      (* and the other way round *)
      ignore
        (Speaker.feed sp ~peer:neighbor
           (announce ~peer_as:65002 ~next_hop:neighbor ~prefix:(p "198.51.102.0/24")));
      Alcotest.(check bool) (impl ^ ": clone isolated from original") true
        (Speaker.best_route c (p "198.51.102.0/24") = None))
    Speakers.names

let test_store_dedup_counters () =
  let st = Store.create ~page_size:64 () in
  Alcotest.(check (float 0.0)) "no captures yet" 0.0 (Store.dedup_ratio st);
  let img = Bytes.init 640 (fun i -> Char.chr (i mod 251)) in
  let s1 = Store.capture st img in
  Alcotest.(check int) "first capture all fresh" 10 (Store.page_inserts st);
  Alcotest.(check int) "first capture no hits" 0 (Store.page_hits st);
  let s2 = Store.capture st img in
  Alcotest.(check int) "identical capture all hits" 10 (Store.page_hits st);
  Alcotest.(check int) "captures counted" 2 (Store.captures st);
  Alcotest.(check (float 0.01)) "dedup ratio" 0.5 (Store.dedup_ratio st);
  Store.release s1;
  Store.release s2

let test_fork_shared_store () =
  let st = Store.create ~page_size:64 () in
  let m1 = Fork.create ~store:st () in
  let m2 = Fork.create ~store:st () in
  Alcotest.(check bool) "both managers share the store" true
    (Fork.store m1 == st && Fork.store m2 == st);
  (* distinct page contents, so dedup below is strictly cross-capture *)
  let img = Bytes.init 640 (fun i -> Char.chr (i / 64 * 7 mod 256)) in
  let c1 = Fork.checkpoint m1 ~live_image:img in
  let c2 = Fork.checkpoint m2 ~live_image:img in
  (* the second manager's checkpoint found every page already resident *)
  Alcotest.(check int) "cross-manager page dedup" 10 (Store.page_hits st);
  Alcotest.(check int) "first capture inserted them" 10 (Store.page_inserts st);
  Alcotest.(check int) "one copy of each page resident" 10 (Store.stored_pages st);
  Fork.drop_checkpoint c1;
  Fork.drop_checkpoint c2;
  check_invalid "page_size conflict" (fun () ->
      Fork.create ~page_size:128 ~store:st ())

(* ------------------------------------------------------------------ *)
(* The fleet                                                           *)
(* ------------------------------------------------------------------ *)

let small_fleet ?(speakers = [ "bird" ]) ?(domains = 6) ?(seed = 5L) () =
  let s = Tgen.generate ~speakers ~seed ~domains () in
  let fl = Fleet.realize s in
  Fleet.establish fl;
  fl

let test_fleet_drive_quiesces () =
  let fl = small_fleet ~speakers:Speakers.names ~domains:8 () in
  let st = Fleet.drive ~jobs:2 ~updates_per_domain:12 fl in
  Alcotest.(check int) "every feed injected" (8 * 12) st.Fleet.fed;
  Alcotest.(check bool) "stream propagated beyond the feeds" true
    (st.Fleet.delivered > st.Fleet.fed);
  Alcotest.(check bool) "quiesced before the round bound" true (st.Fleet.rounds < 64);
  Alcotest.(check int) "nothing dropped" 0
    (st.Fleet.dropped_down + st.Fleet.skipped_feeds)

let test_fleet_online_probes () =
  let fl = small_fleet ~domains:6 () in
  let st = Fleet.drive ~updates_per_domain:8 ~probe_every:3 fl in
  Alcotest.(check bool) "probes issued" true (st.Fleet.probes > 0);
  Alcotest.(check bool) "verdicts returned" true (st.Fleet.verdicts > 0);
  (* probing ran over explorer clones of the live speakers *)
  let clones =
    List.fold_left
      (fun acc a -> acc + (Distributed.stats a).Distributed.clones)
      0 (Fleet.agents fl)
  in
  Alcotest.(check bool) "probes cloned, never serialized" true (clones >= st.Fleet.probes)

let test_fleet_down_member_excluded () =
  let fl = small_fleet ~domains:6 () in
  let victim = "d3" in
  let before = Speaker.updates_processed (Fleet.speaker fl victim) in
  Health.note_down (Distributed.agent_health (Fleet.agent fl victim)) ~now:0.0;
  let live, down = Panel.eligible (Fleet.agents fl) in
  Alcotest.(check int) "one down" 1 (List.length down);
  Alcotest.(check int) "rest live" 5 (List.length live);
  let st = Fleet.drive ~updates_per_domain:8 fl in
  Alcotest.(check int) "down member's feed withheld" 8 st.Fleet.skipped_feeds;
  Alcotest.(check int) "live feeds still injected" (5 * 8) st.Fleet.fed;
  Alcotest.(check bool) "stream not stalled" true (st.Fleet.rounds < 64);
  Alcotest.(check int) "down member never driven" before
    (Speaker.updates_processed (Fleet.speaker fl victim));
  Alcotest.(check bool) "messages to the crashed domain dropped, not queued" true
    (st.Fleet.dropped_down > 0)

let test_fleet_rib_sharing () =
  let fl = small_fleet ~domains:4 () in
  ignore (Fleet.drive ~updates_per_domain:32 fl);
  let shared, total = Fleet.rib_sharing fl ~domain:"d0" in
  Alcotest.(check bool)
    (Printf.sprintf "clone shares most of the live Loc-RIB (%d/%d)" shared total)
    true
    (total > 0 && shared * 2 > total)

let test_fleet_checkpoint_dedup () =
  let fl = small_fleet ~domains:4 () in
  ignore (Fleet.drive ~updates_per_domain:32 fl);
  Fleet.checkpoint_all ~clones:2 fl;
  let st = Fleet.store fl in
  Alcotest.(check int) "captures" (4 * 3) (Store.captures st);
  Alcotest.(check bool) "clone pages dedup against the live checkpoint" true
    (Store.dedup_ratio st > 0.5);
  Fleet.release_checkpoints fl;
  Alcotest.(check int) "all snapshots released" 0 (Store.live_snapshots st)

let test_fleet_rpc_fabric () =
  let s = Tgen.generate ~speakers:[ "bird" ] ~seed:9L ~domains:3 () in
  let fl = Fleet.realize ~rpc:true s in
  Fleet.establish fl;
  Alcotest.(check int) "one remote agent per domain" 3
    (List.length (Fleet.remote_agents fl));
  match Fleet.remote_agent fl "d0" with
  | None -> Alcotest.fail "missing remote agent"
  | Some agent ->
    let m = Fleet.speaker fl "d0" in
    ignore m;
    let from = Spec.feed_addr (Fleet.spec fl) "d0" in
    (match
       Distributed.probe agent ~from
         (announce ~peer_as:Spec.feed_as ~next_hop:from ~prefix:(p "198.51.100.0/24"))
     with
    | Distributed.Verdicts vs ->
      Alcotest.(check int) "one verdict over the wire" 1 (List.length vs)
    | Distributed.Declined r -> Alcotest.failf "declined: %s" r
    | Distributed.Timeout -> Alcotest.fail "probe timed out")

let suite =
  [ Alcotest.test_case "spec smart constructors" `Quick test_spec_smart_constructors;
    Alcotest.test_case "spec validation" `Quick test_spec_validation;
    Alcotest.test_case "spec text round-trip" `Quick test_spec_text_roundtrip;
    Alcotest.test_case "spec parse errors" `Quick test_spec_parse_errors;
    Alcotest.test_case "threerouter as a spec" `Quick test_threerouter_spec;
    Alcotest.test_case "intent realizes through every dialect" `Quick
      test_intent_of_realizes_everywhere;
    QCheck_alcotest.to_alcotest prop_gen_deterministic;
    QCheck_alcotest.to_alcotest prop_gen_connected;
    QCheck_alcotest.to_alcotest prop_gen_text_roundtrip;
    QCheck_alcotest.to_alcotest prop_no_valley_survives_export;
    Alcotest.test_case "trie clone shares untouched subtrees" `Quick
      test_trie_clone_shares_untouched_subtrees;
    Alcotest.test_case "speaker clones are equivalent and isolated" `Quick
      test_speaker_clone_equivalent_and_isolated;
    Alcotest.test_case "store dedup counters" `Quick test_store_dedup_counters;
    Alcotest.test_case "fork managers share a store" `Quick test_fork_shared_store;
    Alcotest.test_case "fleet drive quiesces" `Quick test_fleet_drive_quiesces;
    Alcotest.test_case "fleet online probes" `Quick test_fleet_online_probes;
    Alcotest.test_case "down member excluded from the drive loop" `Quick
      test_fleet_down_member_excluded;
    Alcotest.test_case "fleet rib sharing" `Quick test_fleet_rib_sharing;
    Alcotest.test_case "fleet checkpoint dedup" `Quick test_fleet_checkpoint_dedup;
    Alcotest.test_case "fleet rpc fabric" `Quick test_fleet_rpc_fabric ]
