(* Divergence hunting as a product: the N-way differential panel names
   the outlier implementation, the delta-debugging minimizer shrinks
   the triggering schedule, and the replay artifact re-executes the
   repro bit-identically — against the whole panel or any subset. *)
open Dice_inet
open Dice_bgp
open Dice_core

let p = Prefix.of_string
let provider_side = Ipv4.of_string "10.0.2.1"
let collector = Ipv4.of_string "10.0.3.2"
let panel_addr = Ipv4.of_string "10.0.2.2"

let panel_config_src =
  {|
  router id 10.0.2.2;
  local as 64700;
  protocol bgp provider { neighbor 10.0.2.1 as 64510; import all; export none; }
  protocol bgp collector { neighbor 10.0.3.2 as 64701; import all; export all; }
  |}

let panel_config () = Config_parser.parse panel_config_src

(* The seeded tie-break scenario: an incumbent learned from the
   collector with a *lower* next hop than the probed announcement, equal
   on every decision step before the tie-breaks. Implementations that
   break ties on peer identity (bird: bgp id; quagga: peer address)
   switch to the probe; xorp consults IGP cost (the next-hop proxy)
   first and keeps the incumbent — a 2-vs-1 split naming xorp. *)
let incumbent_update ~path =
  Msg.Update
    {
      Msg.withdrawn = [];
      attrs =
        Route.to_attrs
          (Route.make ~origin:Attr.Igp ~as_path:[ Asn.Path.Seq path ]
             ~next_hop:(Ipv4.of_string "10.0.0.1") ());
      nlri = [ p "203.0.113.0/24" ];
    }

let trigger_update ~path =
  Msg.Update
    {
      Msg.withdrawn = [];
      attrs =
        Route.to_attrs
          (Route.make ~origin:Attr.Igp ~as_path:[ Asn.Path.Seq path ]
             ~next_hop:provider_side ());
      nlri = [ p "203.0.113.0/24" ];
    }

let default_setup = [ (collector, incumbent_update ~path:[ 64701; 64512 ]) ]

let member ?(config = panel_config ()) ~setup name impl =
  let sp = Speakers.create_exn impl (Speaker.Config config) in
  Speaker.establish sp ~peer:provider_side;
  Speaker.establish sp ~peer:collector;
  List.iter (fun (peer, msg) -> ignore (Speaker.feed sp ~peer msg)) setup;
  Distributed.agent ~name ~addr:panel_addr ~explorer_addr:provider_side
    (Distributed.Local sp)

let full_panel ?(setup = default_setup) () =
  List.map (fun impl -> member ~setup impl impl) Speakers.names

(* ---- the registry error path (create_exn) ---- *)

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_create_exn_unknown () =
  (match Speakers.create "frr" (Speaker.Config (panel_config ())) with
  | Some _ -> Alcotest.fail "create accepted an unknown name"
  | None -> ());
  match Speakers.create_exn "frr" (Speaker.Config (panel_config ())) with
  | _ -> Alcotest.fail "create_exn accepted an unknown name"
  | exception Invalid_argument msg ->
    List.iter
      (fun known ->
        Alcotest.(check bool)
          (Printf.sprintf "error lists %s" known)
          true (contains msg known))
      Speakers.names;
    Alcotest.(check bool) "error names the offender" true (contains msg "frr")

let test_dialect_registry () =
  List.iter
    (fun name ->
      match Speakers.dialect name with
      | Some (module D : Dialect.S) ->
        Alcotest.(check string) (name ^ " dialect carries its name") name D.name
      | None -> Alcotest.failf "no dialect registered for %s" name)
    Speakers.names;
  Alcotest.(check int) "one dialect per implementation"
    (List.length Speakers.names)
    (List.length Speakers.dialects);
  match Speakers.dialect_exn "frr" with
  | _ -> Alcotest.fail "dialect_exn accepted an unknown name"
  | exception Invalid_argument msg ->
    List.iter
      (fun known ->
        Alcotest.(check bool)
          (Printf.sprintf "error lists %s" known)
          true (contains msg known))
      Speakers.names;
    Alcotest.(check bool) "error names the offender" true (contains msg "frr")

(* ---- outlier naming and classification ---- *)

let test_panel_names_outlier () =
  let agents = full_panel () in
  let ds =
    Panel.probe ~jobs:1 ~agents
      [ (provider_side, trigger_update ~path:[ 64510; 64512 ]) ]
  in
  match ds with
  | [ d ] ->
    Alcotest.(check bool) "tie-break class" true d.Panel.tie_break_only;
    Alcotest.(check (list string)) "xorp is the named outlier" [ "xorp" ]
      d.Panel.outliers;
    Alcotest.(check bool) "majority installed" true
      d.Panel.majority.Verdict.installed;
    Alcotest.(check int) "every member answered" (List.length Speakers.names)
      (List.length (List.filter_map snd d.Panel.answers));
    Alcotest.(check string) "stable signature"
      "203.0.113.0/24|tiebreak|xorp" (Panel.signature d)
  | ds -> Alcotest.failf "expected exactly one divergence, got %d" (List.length ds)

let test_panel_semantic_outlier () =
  (* same implementation three times, one member behind a deny-all
     import policy: it rejects what the others accept — a semantic
     divergence (disagreement on the policy-level facts) naming the
     deviant member *)
  let deny_config =
    Config_parser.parse
      {|
      router id 10.0.2.2;
      local as 64700;
      protocol bgp provider { neighbor 10.0.2.1 as 64510; import none; export none; }
      protocol bgp collector { neighbor 10.0.3.2 as 64701; import all; export all; }
      |}
  in
  let agents =
    [ member ~setup:default_setup "bird-a" "bird";
      member ~setup:default_setup "bird-b" "bird";
      member ~config:deny_config ~setup:default_setup "bird-deny" "bird" ]
  in
  let ds =
    Panel.probe ~jobs:1 ~agents
      [ (provider_side, trigger_update ~path:[ 64510; 64512 ]) ]
  in
  match ds with
  | [ d ] ->
    Alcotest.(check bool) "semantic, not tie-break" false d.Panel.tie_break_only;
    Alcotest.(check (list string)) "the deny member is the outlier"
      [ "bird-deny" ] d.Panel.outliers;
    Alcotest.(check bool) "majority accepted" true d.Panel.majority.Verdict.accepted
  | ds -> Alcotest.failf "expected exactly one divergence, got %d" (List.length ds)

let test_panel_agreement_is_silent () =
  let agents = full_panel () in
  (* longer path than the incumbent: everyone keeps the incumbent *)
  let ds =
    Panel.probe ~jobs:1 ~agents
      [ (provider_side, trigger_update ~path:[ 64510; 64513; 64512 ]) ]
  in
  Alcotest.(check int) "no divergence when the panel agrees" 0 (List.length ds)

(* ---- determinism of divergence reports under parallel probing ---- *)

let noise i =
  Msg.Update
    {
      Msg.withdrawn = [];
      attrs =
        Route.to_attrs
          (Route.make ~origin:Attr.Igp
             ~as_path:[ Asn.Path.Seq [ 64510; 64512 ] ]
             ~next_hop:provider_side ());
      nlri = [ Prefix.make ((100 lsl 24) lor (i lsl 16)) 16 ];
    }

let test_probe_pair_sorted_deterministic () =
  (* exchanges arrive in descending prefix order; reports must come out
     prefix-sorted and identical whatever the job count *)
  let mk () =
    let setup =
      [ (collector, incumbent_update ~path:[ 64701; 64512 ]);
        ( collector,
          Msg.Update
            {
              Msg.withdrawn = [];
              attrs =
                Route.to_attrs
                  (Route.make ~origin:Attr.Igp
                     ~as_path:[ Asn.Path.Seq [ 64701; 64512 ] ]
                     ~next_hop:(Ipv4.of_string "10.0.0.1") ());
              nlri = [ p "100.1.0.0/16" ];
            } ) ]
    in
    (member ~setup "left" "bird", member ~setup "right" "xorp")
  in
  let exchanges =
    [ (provider_side, trigger_update ~path:[ 64510; 64512 ]);
      (provider_side, noise 9);
      ( provider_side,
        Msg.Update
          {
            Msg.withdrawn = [];
            attrs =
              Route.to_attrs
                (Route.make ~origin:Attr.Igp
                   ~as_path:[ Asn.Path.Seq [ 64510; 64512 ] ]
                   ~next_hop:provider_side ());
            nlri = [ p "100.1.0.0/16" ];
          } ) ]
  in
  let run jobs =
    let left, right = mk () in
    List.map
      (fun (d : Differential.divergence) -> Prefix.to_string d.Differential.prefix)
      (Differential.probe_pair ~jobs ~left ~right exchanges)
  in
  let sequential = run 1 in
  Alcotest.(check (list string))
    "divergences sorted by prefix" [ "100.1.0.0/16"; "203.0.113.0/24" ] sequential;
  Alcotest.(check (list string)) "jobs=4 report identical" sequential (run 4)

(* ---- ddmin ---- *)

let test_ddmin_synthetic () =
  let tests = ref 0 in
  let pred l =
    incr tests;
    List.mem 3 l && List.mem 27 l
  in
  let input = List.init 40 (fun i -> i) in
  let minimal = Minimize.ddmin pred input in
  Alcotest.(check (list int)) "exactly the two relevant elements" [ 3; 27 ] minimal;
  Alcotest.(check bool) "1-minimal: dropping either breaks it" true
    (List.for_all
       (fun x -> not (pred (List.filter (fun y -> y <> x) minimal)))
       minimal)

let test_ddmin_requires_failing_input () =
  match Minimize.ddmin (fun _ -> false) [ 1; 2; 3 ] with
  | _ -> Alcotest.fail "ddmin accepted a predicate that fails on the input"
  | exception Invalid_argument _ -> ()

(* ---- end-to-end minimization of a panel hit ---- *)

let test_minimize_panel_divergence () =
  (* the triggering message hides in 40 messages of noise and carries
     droppable baggage: MED, communities — and a 3-hop path matching
     the (3-hop) incumbent, whose middle hop must NOT be dropped or the
     path-length tie (and with it the divergence) disappears *)
  let setup = [ (collector, incumbent_update ~path:[ 64701; 64800; 64512 ]) ] in
  let agents3 = List.map (fun impl -> member ~setup impl impl) Speakers.names in
  let trigger =
    Msg.Update
      {
        Msg.withdrawn = [];
        attrs =
          Route.to_attrs
            (Route.make ~origin:Attr.Igp ~med:(Some 50)
               ~communities:[ Community.make 64510 77 ]
               ~as_path:[ Asn.Path.Seq [ 64510; 64777; 64512 ] ]
               ~next_hop:provider_side ());
        nlri = [ p "203.0.113.0/24" ];
      }
  in
  let schedule =
    List.init 20 (fun i -> (provider_side, noise i))
    @ [ (provider_side, trigger) ]
    @ List.init 19 (fun i -> (provider_side, noise (20 + i)))
  in
  let ds = Panel.probe ~jobs:1 ~agents:agents3 schedule in
  let d =
    match ds with
    | [ d ] -> d
    | ds -> Alcotest.failf "expected one divergence in the noise, got %d" (List.length ds)
  in
  let minimal, st =
    Minimize.divergence ~jobs:1 ~agents:agents3
      { Panel.schedule; divergence = d }
  in
  Alcotest.(check int) "started from the full schedule" 40 st.Minimize.initial_len;
  Alcotest.(check bool) "ddmin got to at most 3 messages" true
    (st.Minimize.final_len <= 3);
  Alcotest.(check bool) "some attribute shrinking happened" true
    (st.Minimize.shrunk >= 2);
  (match minimal with
  | [ (_, Msg.Update u) ] ->
    let r = Result.get_ok (Route.of_attrs u.Msg.attrs) in
    Alcotest.(check bool) "MED stripped" true (r.Route.med = None);
    Alcotest.(check (list string)) "communities stripped" []
      (List.map Community.to_string r.Route.communities);
    Alcotest.(check int) "load-bearing 3-hop path kept" 3
      (Asn.Path.length r.Route.as_path)
  | _ -> Alcotest.fail "expected a single-update minimal schedule");
  let again = Panel.probe ~jobs:1 ~agents:agents3 minimal in
  Alcotest.(check bool) "minimal schedule still reproduces the signature" true
    (List.exists (fun d' -> Panel.signature d' = Panel.signature d) again)

(* ---- quorum-degraded voting ---- *)

let test_degraded_vote_excludes_down_member () =
  let agents = full_panel () in
  let quagga = List.find (fun a -> Distributed.agent_name a = "quagga") agents in
  Health.note_down (Distributed.agent_health quagga) ~now:1.0;
  (match Panel.quorum_of agents with
  | `Degraded [ "quagga" ] -> ()
  | _ -> Alcotest.fail "expected a degraded quorum naming quagga");
  let ds =
    Panel.probe ~jobs:1 ~agents
      [ (provider_side, trigger_update ~path:[ 64510; 64512 ]) ]
  in
  match ds with
  | [ d ] ->
    Alcotest.(check bool) "tagged degraded" true
      (d.Panel.quorum = Panel.Degraded [ "quagga" ]);
    Alcotest.(check (list string)) "only survivors voted" [ "bird"; "xorp" ]
      (List.map fst d.Panel.answers);
    (* bird and xorp still split on the tie-break, so the divergence
       survives the absence — and its signature must match a capture
       from the full panel (quorum is not part of identity) *)
    Alcotest.(check bool) "tie-break class survives" true d.Panel.tie_break_only;
    (* positive evidence brings quagga back: next vote is full again *)
    Health.note_ok (Distributed.agent_health quagga) ~now:2.0;
    Alcotest.(check bool) "recovered member restores full quorum" true
      (Panel.quorum_of agents = `Full);
    let full =
      Panel.probe ~jobs:1 ~agents
        [ (provider_side, trigger_update ~path:[ 64510; 64512 ]) ]
    in
    Alcotest.(check int) "full vote again" 3
      (List.length (List.hd full).Panel.answers)
  | ds -> Alcotest.failf "expected one degraded divergence, got %d" (List.length ds)

let test_quorum_loss_pauses_hunt () =
  let agents = full_panel () in
  List.iter
    (fun a ->
      if Distributed.agent_name a <> "bird" then
        Health.note_down (Distributed.agent_health a) ~now:1.0)
    agents;
  (match Panel.quorum_of agents with
  | `Lost down -> Alcotest.(check int) "both absentees named" 2 (List.length down)
  | _ -> Alcotest.fail "expected quorum lost with 2 of 3 down");
  let paused = ref [] in
  let hits = ref [] in
  let chk =
    Panel.hunt
      ~on_pause:(fun down -> paused := down :: !paused)
      ~jobs:1 ~agents
      ~sink:(fun h -> hits := h :: !hits)
      ()
  in
  let cctx =
    { Checker.pre_loc_rib = Rib.Loc.empty;
      anycast = [];
      peer = provider_side;
      peer_as = 64510;
    }
  in
  let trigger = trigger_update ~path:[ 64510; 64512 ] in
  let outcome =
    { Speaker.prefix = p "203.0.113.0/24";
      accepted = true;
      installed = true;
      route = None;
      previous_best = None;
      outputs = [ (panel_addr, trigger) ];
    }
  in
  Alcotest.(check int) "no findings while paused" 0
    (List.length (chk.Checker.check cctx outcome));
  Alcotest.(check int) "pause reported once with the down members" 1
    (List.length !paused);
  Alcotest.(check int) "nothing probed, nothing sunk" 0 (List.length !hits);
  (* survivors recover: the same checker resumes on the next outcome *)
  List.iter
    (fun a -> Health.note_ok (Distributed.agent_health a) ~now:2.0)
    agents;
  let findings = chk.Checker.check cctx outcome in
  Alcotest.(check bool) "hunt resumed after recovery" true (findings <> []);
  Alcotest.(check bool) "resumed findings reach the sink" true (!hits <> [])

(* ---- replay artifacts ---- *)

let artifact ~schedule ~signature =
  {
    Panel.Artifact.speakers = Speakers.names;
    source = Panel.Artifact.Config_text panel_config_src;
    setup = default_setup;
    schedule;
    signature;
    absent = [];
  }

let test_artifact_roundtrip () =
  let a =
    artifact
      ~schedule:[ (provider_side, trigger_update ~path:[ 64510; 64512 ]) ]
      ~signature:"203.0.113.0/24|tiebreak|xorp"
  in
  let encoded = Panel.Artifact.encode a in
  let decoded = Panel.Artifact.decode encoded in
  Alcotest.(check bool) "decode inverts encode" true (decoded = a);
  Alcotest.(check bytes) "encoding is canonical" encoded
    (Panel.Artifact.encode decoded);
  let file = Filename.temp_file "dice-panel" ".repro" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Panel.Artifact.save file a;
      Alcotest.(check bool) "save/load roundtrip" true (Panel.Artifact.load file = a))

let test_artifact_rejects_malformed () =
  let a =
    artifact
      ~schedule:[ (provider_side, trigger_update ~path:[ 64510; 64512 ]) ]
      ~signature:"sig"
  in
  let encoded = Panel.Artifact.encode a in
  let raises what b =
    match Panel.Artifact.decode b with
    | _ -> Alcotest.failf "%s decoded" what
    | exception Dice_wire.Rbuf.Truncated _ -> ()
  in
  raises "truncated artifact" (Bytes.sub encoded 0 (Bytes.length encoded - 3));
  raises "foreign magic" (Bytes.of_string "NOTDICE0rest");
  (let wrong_version = Bytes.copy encoded in
   Bytes.set wrong_version 8 '\x63';
   raises "alien version" wrong_version);
  let trailing = Bytes.cat encoded (Bytes.of_string "\x00") in
  raises "trailing bytes" trailing

let test_artifact_v1_and_intent_sources () =
  let a =
    artifact
      ~schedule:[ (provider_side, trigger_update ~path:[ 64510; 64512 ]) ]
      ~signature:"sig"
  in
  (* a version-2 artifact is the same encoding minus the trailing
     absent list; version 1 additionally lacks the source-kind byte and
     must decode as shared config text *)
  let v3 = Panel.Artifact.encode a in
  let kind_pos =
    11 + List.fold_left (fun acc n -> acc + 2 + String.length n) 0 Speakers.names
  in
  let v2 = Bytes.sub v3 0 (Bytes.length v3 - 2) in
  Bytes.set v2 8 '\x02';
  Alcotest.(check bool) "v2 decodes with nobody absent" true
    (Panel.Artifact.decode v2 = a);
  let v1 =
    Bytes.cat (Bytes.sub v2 0 kind_pos)
      (Bytes.sub v2 (kind_pos + 1) (Bytes.length v2 - kind_pos - 1))
  in
  Bytes.set v1 8 '\x01';
  Alcotest.(check bool) "v1 decodes as config text" true
    (Panel.Artifact.decode v1 = a);
  (* an intent-sourced artifact round-trips with its kind intact *)
  let ai = { a with Panel.Artifact.source = Panel.Artifact.Intent_text "intent {}" } in
  Alcotest.(check bool) "intent source round-trips" true
    (Panel.Artifact.decode (Panel.Artifact.encode ai) = ai);
  (* an alien source kind raises loudly *)
  let bad = Panel.Artifact.encode a in
  Bytes.set bad kind_pos '\x07';
  match Panel.Artifact.decode bad with
  | _ -> Alcotest.fail "alien source kind decoded"
  | exception Dice_wire.Rbuf.Truncated _ -> ()

let test_artifact_replay_and_subsets () =
  let a =
    artifact
      ~schedule:[ (provider_side, trigger_update ~path:[ 64510; 64512 ]) ]
      ~signature:"203.0.113.0/24|tiebreak|xorp"
  in
  let full = Panel.Artifact.replay ~jobs:1 a in
  Alcotest.(check bool) "full-panel replay reproduces" true
    (Panel.Artifact.reproduces a full);
  let agree = Panel.Artifact.replay ~speakers:[ "bird"; "quagga" ] ~jobs:1 a in
  Alcotest.(check int) "the two peer-identity tie-breakers agree" 0
    (List.length agree);
  let split = Panel.Artifact.replay ~speakers:[ "quagga"; "xorp" ] ~jobs:1 a in
  Alcotest.(check int) "quagga vs xorp still splits" 1 (List.length split);
  match Panel.Artifact.build ~speakers:[ "frr" ] a with
  | _ -> Alcotest.fail "built a panel member the artifact does not carry"
  | exception Invalid_argument _ -> ()

let test_artifact_degraded_capture () =
  let a =
    { (artifact
         ~schedule:[ (provider_side, trigger_update ~path:[ 64510; 64512 ]) ]
         ~signature:"203.0.113.0/24|tiebreak|xorp")
      with Panel.Artifact.absent = [ "quagga" ]
    }
  in
  Alcotest.(check int) "artifacts are version 3" 3 Panel.Artifact.version;
  let encoded = Panel.Artifact.encode a in
  Alcotest.(check bool) "absent list round-trips" true
    (Panel.Artifact.decode encoded = a);
  (* truncating inside the absent list fails loudly, like every field *)
  (match Panel.Artifact.decode (Bytes.sub encoded 0 (Bytes.length encoded - 1)) with
  | _ -> Alcotest.fail "truncated absent list decoded"
  | exception Dice_wire.Rbuf.Truncated _ -> ());
  (* the default rebuild is the vote that happened: quagga sat out, and
     bird vs xorp still split on the recorded tie-break *)
  let voting = Panel.Artifact.build a in
  Alcotest.(check (list string)) "build defaults to the voting members"
    [ "bird"; "xorp" ]
    (List.map Distributed.agent_name voting);
  let replayed = Panel.Artifact.replay ~jobs:1 a in
  Alcotest.(check bool) "degraded replay reproduces the recorded signature" true
    (Panel.Artifact.reproduces a replayed)

let suite =
  [ ("create_exn: unknown name lists the registry", `Quick, test_create_exn_unknown);
    ("dialect registry: per-implementation, errors enumerate", `Quick,
      test_dialect_registry);
    ("panel: names the outlier on a tie-break split", `Quick, test_panel_names_outlier);
    ("panel: semantic divergence names the deviant", `Quick, test_panel_semantic_outlier);
    ("panel: agreement produces no divergence", `Quick, test_panel_agreement_is_silent);
    ("probe_pair: prefix-sorted, jobs-independent", `Quick,
      test_probe_pair_sorted_deterministic);
    ("ddmin: 1-minimal on a synthetic predicate", `Quick, test_ddmin_synthetic);
    ("ddmin: rejects a non-failing input", `Quick, test_ddmin_requires_failing_input);
    ("minimize: 40-message hit shrinks to the trigger", `Quick,
      test_minimize_panel_divergence);
    ("artifact: canonical encode/decode/save/load", `Quick, test_artifact_roundtrip);
    ("artifact: malformed inputs raise loudly", `Quick, test_artifact_rejects_malformed);
    ("artifact: v1 compat and intent source kind", `Quick,
      test_artifact_v1_and_intent_sources);
    ("artifact: replays against panel and subsets", `Quick,
      test_artifact_replay_and_subsets);
    ("panel: degraded vote excludes the down member", `Quick,
      test_degraded_vote_excludes_down_member);
    ("panel: quorum loss pauses the hunt, recovery resumes it", `Quick,
      test_quorum_loss_pauses_hunt);
    ("artifact: v3 degraded capture round-trips and replays", `Quick,
      test_artifact_degraded_capture)
  ]
