(* Tests for the endpoint liveness monitor: heartbeat-gap demotion,
   positive-evidence promotion, incarnation monotonicity, bounded
   transition history, and determinism under virtual time. *)
open Dice_core

let mk ?config () = Health.create ?config ~name:"upstream" ()

let test_initial_state () =
  let h = mk () in
  Alcotest.(check string) "alive at birth" "alive"
    (Health.state_to_string (Health.state h));
  Alcotest.(check (float 0.0)) "seen at the origin" 0.0 (Health.last_seen h);
  Alcotest.(check int) "no incarnation heard yet" 0 (Health.incarnation h);
  Alcotest.(check int) "history starts with the birth transition" 1
    (List.length (Health.transitions h))

let test_config_validation () =
  let bad config =
    match Health.create ~config ~name:"x" () with
    | _ -> Alcotest.fail "invalid config accepted"
    | exception Invalid_argument _ -> ()
  in
  bad { Health.suspect_after = 0.0; down_after = 2.0; history = 32 };
  bad { Health.suspect_after = 1.0; down_after = 0.5; history = 32 };
  bad { Health.suspect_after = 0.5; down_after = 2.0; history = 0 }

let test_heartbeat_gap_demotes () =
  let h = mk () in
  Health.note_heartbeat h ~now:1.0 ~incarnation:0 ~state_version:3;
  Alcotest.(check bool) "fresh heartbeat keeps alive" true
    (Health.check h ~now:1.2 = Health.Alive);
  Alcotest.(check bool) "gap past suspect_after demotes" true
    (Health.check h ~now:1.8 = Health.Suspect);
  (* check never promotes: still suspect even though another check runs *)
  Alcotest.(check bool) "still suspect" true (Health.check h ~now:1.9 = Health.Suspect);
  Alcotest.(check bool) "gap past down_after is down" true
    (Health.check h ~now:3.5 = Health.Down);
  (* a fresh heartbeat is the only way back *)
  Health.note_heartbeat h ~now:3.6 ~incarnation:0 ~state_version:3;
  Alcotest.(check bool) "heartbeat revives" true (Health.state h = Health.Alive)

let test_probe_evidence () =
  let h = mk () in
  Health.note_timeout h ~now:0.5;
  Alcotest.(check bool) "timeout demotes alive to suspect" true
    (Health.state h = Health.Suspect);
  Health.note_timeout h ~now:0.6;
  Alcotest.(check bool) "a timeout alone never declares down" true
    (Health.state h = Health.Suspect);
  Health.note_ok h ~now:0.7;
  Alcotest.(check bool) "an answered probe promotes" true
    (Health.state h = Health.Alive);
  Health.note_down h ~now:0.8;
  Alcotest.(check bool) "the breaker declares down" true
    (Health.state h = Health.Down);
  Health.note_ok h ~now:0.9;
  Alcotest.(check bool) "positive evidence recovers from down" true
    (Health.state h = Health.Alive)

let test_incarnation_monotone () =
  let h = mk () in
  Health.note_heartbeat h ~now:1.0 ~incarnation:2 ~state_version:10;
  Alcotest.(check int) "incarnation recorded" 2 (Health.incarnation h);
  Alcotest.(check int) "state version recorded" 10 (Health.state_version h);
  (* a straggler heartbeat from the previous life cannot roll back *)
  Health.note_heartbeat h ~now:1.1 ~incarnation:1 ~state_version:4;
  Alcotest.(check int) "late heartbeat cannot roll incarnation back" 2
    (Health.incarnation h)

let test_history_bounded () =
  let h =
    mk ~config:{ Health.suspect_after = 0.5; down_after = 2.0; history = 4 } ()
  in
  for i = 1 to 50 do
    let t = float_of_int i in
    Health.note_down h ~now:t;
    Health.note_ok h ~now:(t +. 0.1)
  done;
  let ts = Health.transitions h in
  Alcotest.(check int) "history bounded" 4 (List.length ts);
  Alcotest.(check bool) "oldest first" true
    (List.sort compare (List.map fst ts) = List.map fst ts);
  let s = Health.stats h in
  (* 100 down/ok flips plus the birth transition *)
  Alcotest.(check int) "total transitions counted beyond history" 101
    s.Health.transitions;
  Alcotest.(check int) "ok probes counted" 50 s.Health.probes_ok

let test_deterministic () =
  let run () =
    let h = mk () in
    List.iter
      (fun i ->
        let t = 0.3 *. float_of_int i in
        if i mod 3 = 0 then Health.note_heartbeat h ~now:t ~incarnation:(i / 10) ~state_version:i
        else if i mod 3 = 1 then Health.note_timeout h ~now:t
        else ignore (Health.check h ~now:t))
      (List.init 40 Fun.id);
    (Health.state h, Health.transitions h, Health.stats h)
  in
  Alcotest.(check bool) "same virtual-time schedule, same health" true (run () = run ())

let suite =
  [ ("initial state", `Quick, test_initial_state);
    ("config validation", `Quick, test_config_validation);
    ("heartbeat gap demotes, heartbeat revives", `Quick, test_heartbeat_gap_demotes);
    ("probe outcomes as evidence", `Quick, test_probe_evidence);
    ("incarnation is monotone", `Quick, test_incarnation_monotone);
    ("transition history bounded", `Quick, test_history_bounded);
    ("deterministic under virtual time", `Quick, test_deterministic)
  ]
